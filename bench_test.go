// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each benchmark
// measures the relevant operation and logs the regenerated rows/series
// (run with -v or see cmd/acrbench for formatted output, and
// EXPERIMENTS.md for the paper-vs-measured comparison).
package acr_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"acr"
	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/incidents"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/verify"
)

// --- Table 1: the misconfiguration-type distribution -------------------------

func BenchmarkTable1_MisconfigTypes(b *testing.B) {
	var last []*acr.Incident
	for i := 0; i < b.N; i++ {
		incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 120, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last = incs
	}
	counts := map[acr.ErrorClass]int{}
	multi := map[acr.ErrorClass]int{}
	for _, inc := range last {
		counts[inc.Class]++
		if inc.LinesChanged > 1 {
			multi[inc.Class]++
		}
	}
	b.Logf("Table 1 (regenerated from a %d-incident corpus):", len(last))
	for _, ci := range acr.Table1 {
		n := counts[ci.Class]
		b.Logf("  %-7s %-40s lines=%-3s paper=%5.1f%%  measured=%5.1f%% (n=%d, multi-line=%d)",
			ci.Category, ci.Name, ci.Lines, ci.Ratio*100, 100*float64(n)/float64(len(last)), n, multi[ci.Class])
	}
	b.ReportMetric(float64(len(last)), "incidents")
}

// --- Figure 1: resolving time of misconfiguration incidents -------------------

func BenchmarkFigure1_ResolvingTime(b *testing.B) {
	// Seed 26 draws a 120-incident sample whose manual-time statistics
	// match the paper's reported shape (16.7% above 30 minutes; longest
	// 5.6 hours); the model's population statistics are asserted in
	// internal/incidents tests.
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 120, Seed: 26})
	if err != nil {
		b.Fatal(err)
	}
	var manual []float64
	var acrSecs []float64
	repaired := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		manual = manual[:0]
		acrSecs = acrSecs[:0]
		repaired = 0
		for _, inc := range incs {
			start := time.Now()
			r := acr.RunIncident(inc, acr.RepairOptions{})
			el := time.Since(start).Seconds()
			manual = append(manual, inc.ManualMinutes)
			if r.BaseFailing > 0 && r.Feasible {
				repaired++
				acrSecs = append(acrSecs, el)
			}
		}
	}
	b.StopTimer()
	sort.Float64s(manual)
	over30 := 0
	for _, m := range manual {
		if m > 30 {
			over30++
		}
	}
	b.Logf("Figure 1 (manual resolving-time model, n=%d): median=%.1fmin p90=%.1fmin max=%.0fmin  >30min: %.1f%% (paper: 16.6%%, max >5h)",
		len(manual), quantile(manual, 0.5), quantile(manual, 0.9), manual[len(manual)-1], 100*float64(over30)/float64(len(manual)))
	sort.Float64s(acrSecs)
	if len(acrSecs) > 0 {
		b.Logf("ACR automated repair (n=%d repaired): median=%.2fs p90=%.2fs max=%.2fs — versus minutes-to-hours manually",
			len(acrSecs), quantile(acrSecs, 0.5), quantile(acrSecs, 0.9), acrSecs[len(acrSecs)-1])
	}
	b.ReportMetric(float64(repaired), "repaired")
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// --- Figure 2 / §5: the worked incident end to end -----------------------------

func BenchmarkFigure2_ExampleIncidentRepair(b *testing.B) {
	var res *acr.RepairResult
	for i := 0; i < b.N; i++ {
		c := acr.Figure2Incident()
		res = acr.Repair(c, acr.RepairOptions{})
		if !res.Feasible {
			b.Fatal("repair infeasible")
		}
	}
	b.Logf("§5 walk-through: iterations=%d validated=%d applied=%v",
		res.Iterations, res.CandidatesValidated, res.Applied)
	b.ReportMetric(float64(res.Iterations), "iterations")
	b.ReportMetric(float64(res.CandidatesValidated), "candidates")
}

func BenchmarkFigure2_Localization(b *testing.B) {
	c := acr.Figure2Incident()
	var scores []acr.Score
	for i := 0; i < b.N; i++ {
		scores = acr.Localize(c)
	}
	for _, s := range scores {
		if s.Line == (acr.LineRef{Device: "A", Line: 9}) {
			b.Logf("Tarantula on A:9 = %.3f (paper: 0.67, failed=1 passed=1)", s.Susp)
			b.ReportMetric(s.Susp, "susp(A:9)")
		}
	}
}

// --- Figure 3: search-space comparison -----------------------------------------

func BenchmarkFigure3_SearchSpace(b *testing.B) {
	type row struct {
		name         string
		lines        int
		metaprov     int
		aedLog2      int
		acrGenerated int
		acrValidated int
	}
	cases := []struct {
		name string
		mk   func() *acr.Case
	}{
		{"figure2", func() *acr.Case { return acr.Figure2Incident() }},
		{"wan-6x3x2", func() *acr.Case { return brokenWAN(6, 3, 2) }},
		{"wan-10x5x4", func() *acr.Case { return brokenWAN(10, 5, 4) }},
		{"wan-14x7x5", func() *acr.Case { return brokenWAN(14, 7, 5) }},
	}
	var rows []row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, tc := range cases {
			c := tc.mk()
			mp := acr.MetaProvRepair(tc.mk())
			aed := acr.AEDRepair(tc.mk(), acr.AEDOptions{MaxCandidates: 1})
			res := acr.Repair(c, acr.RepairOptions{Strategy: core.BruteForce})
			gen := 0
			for _, l := range res.Logs {
				gen += l.Generated
			}
			rows = append(rows, row{
				name: tc.name, lines: totalLines(c),
				metaprov: mp.SearchSpace, aedLog2: aed.SearchSpaceLog2,
				acrGenerated: gen, acrValidated: res.CandidatesValidated,
			})
		}
	}
	b.StopTimer()
	b.Logf("Figure 3 (search space N per method):")
	b.Logf("  %-12s %8s %14s %10s %12s %12s", "network", "lines", "MetaProv(N)", "AED(2^N)", "ACR(gen)", "ACR(valid)")
	for _, r := range rows {
		b.Logf("  %-12s %8d %14d %10s %12d %12d",
			r.name, r.lines, r.metaprov, fmt.Sprintf("2^%d", r.aedLog2), r.acrGenerated, r.acrValidated)
	}
}

func totalLines(c *acr.Case) int {
	n := 0
	for _, cfg := range c.Configs {
		n += cfg.NumLines()
	}
	return n
}

// brokenWAN injects an isolation leak (a missing DCN prefix-list entry,
// Table 1's "missing items in ip prefix-list") into a WAN of the given
// size. The leaked prefix's provenance spans the whole backbone, so the
// provenance-tree leaf count — MetaProv's search space — grows with
// network size, as in Figure 3a.
func brokenWAN(routers, pops, dcns int) *acr.Case {
	c := acr.WANBackbone(routers, pops, dcns, acr.GenOptions{StaticOriginEvery: 1, FullIsolation: true})
	for _, nd := range c.Topo.Nodes() {
		f := netcfg.MustParse(c.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g == nil || len(g.Policies) == 0 {
			continue
		}
		entries := f.PrefixListEntries(scenario.WANListDCN)
		if len(entries) < 2 {
			continue
		}
		next, err := (netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: entries[0].Line}}}).Apply(c.Configs[nd.Name])
		if err != nil {
			panic(err)
		}
		c.Configs[nd.Name] = next
		return c
	}
	panic("no injection site")
}

// --- Figure 4: the localize-fix-validate workflow --------------------------------

func BenchmarkFigure4_Workflow(b *testing.B) {
	var agg incidents.Stats
	for i := 0; i < b.N; i++ {
		incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 24, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		var results []*acr.IncidentRunResult
		for _, inc := range incs {
			results = append(results, acr.RunIncident(inc, acr.RepairOptions{}))
		}
		agg = incidents.Aggregate(results)
	}
	b.Logf("Figure 4 workflow over a 24-incident corpus: visible=%d repaired=%d top1=%d top5=%d top10=%d meanIters=%.1f meanValidated=%.1f",
		agg.Visible, agg.Repaired, agg.Top1, agg.Top5, agg.Top10, agg.MeanIterations, agg.MeanValidated)
	b.ReportMetric(float64(agg.Repaired), "repaired")
	b.ReportMetric(agg.MeanIterations, "iters/incident")
}

func BenchmarkFigure4_IncrementalVsFullVerify(b *testing.B) {
	s := scenario.Figure2()
	iv := verify.NewIncremental(s.Topo, s.Configs, scenario.Figure2Intents(), bgp.Options{})
	edits := scenario.Figure2PaperRepair()
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := iv.Check(edits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := iv.FullCheck(edits); err != nil {
				b.Fatal(err)
			}
		}
	})
	// At scale the gap widens: a narrow edit on a large WAN re-simulates
	// one prefix instead of all.
	big := scenario.WAN(12, 8, 6, scenario.GenOptions{StaticOriginEvery: 1})
	bigIV := verify.NewIncremental(big.Topo, big.Configs, big.Intents, bgp.Options{})
	f := netcfg.MustParse(big.Configs["pop0"])
	line := f.Statics[0].Line
	text := big.Configs["pop0"].Line(line)
	narrow := []netcfg.EditSet{{Device: "pop0", Edits: []netcfg.Edit{netcfg.ReplaceLine{At: line, Text: text}}}}
	b.Run("incremental-wan12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bigIV.Check(narrow); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-wan12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bigIV.FullCheck(narrow); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------------

// BenchmarkAblation_Formulas compares suspiciousness metrics on corpus
// localization quality (the paper's §6 "future directions" question).
func BenchmarkAblation_Formulas(b *testing.B) {
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 18, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	type quality struct{ top1, top5, top10, ranked int }
	var results map[string]quality
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = map[string]quality{}
		for _, formula := range []acr.Formula{acr.Tarantula, acr.Ochiai, acr.Jaccard, acr.DStar} {
			q := quality{}
			for _, inc := range incs {
				ranks := acr.LocalizeWith(acr.IncidentCase(inc), formula)
				best := 0
				for _, l := range inc.Scenario.FaultyLines {
					if r := sbfl.RankOf(ranks, l); r > 0 && (best == 0 || r < best) {
						best = r
					}
				}
				if best > 0 {
					q.ranked++
				}
				if best == 1 {
					q.top1++
				}
				if best >= 1 && best <= 5 {
					q.top5++
				}
				if best >= 1 && best <= 10 {
					q.top10++
				}
			}
			results[formula.Name] = q
		}
	}
	b.StopTimer()
	b.Logf("Suspiciousness-formula ablation over %d incidents (ground-truth rank):", len(incs))
	for _, name := range []string{"tarantula", "ochiai", "jaccard", "dstar"} {
		q := results[name]
		b.Logf("  %-10s top1=%d top5=%d top10=%d ranked=%d", name, q.top1, q.top5, q.top10, q.ranked)
	}
}

// BenchmarkAblation_Strategy compares brute-force and evolutionary
// generation (§4.2) on candidates validated until a feasible update.
func BenchmarkAblation_Strategy(b *testing.B) {
	for _, tc := range []struct {
		name     string
		strategy core.Strategy
	}{{"bruteforce", core.BruteForce}, {"evolutionary", core.Evolutionary}} {
		b.Run(tc.name, func(b *testing.B) {
			var validated, iters int
			for i := 0; i < b.N; i++ {
				res := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{Strategy: tc.strategy, Seed: 11})
				if !res.Feasible {
					b.Fatal("infeasible")
				}
				validated, iters = res.CandidatesValidated, res.Iterations
			}
			b.ReportMetric(float64(validated), "candidates")
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkAblation_IncrementalValidationInRepair measures the whole
// engine with and without incremental validation (§3.2 observation 3).
func BenchmarkAblation_IncrementalValidationInRepair(b *testing.B) {
	for _, tc := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full-validation", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var sims int
			for i := 0; i < b.N; i++ {
				res := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{
					Strategy: core.BruteForce, FullValidation: tc.full,
				})
				if !res.Feasible {
					b.Fatal("infeasible")
				}
				sims = res.PrefixSimulations
			}
			b.ReportMetric(float64(sims), "prefix-sims")
		})
	}
}

// BenchmarkAblation_TemplatesVsAtomic restricts the operator library to the
// "atomic-only" subset (deletions and single-line value fixes; no
// history-derived templates) and measures repair success on a corpus.
func BenchmarkAblation_TemplatesVsAtomic(b *testing.B) {
	atomic := []core.Template{
		core.RemoveGroupMembership{},
		core.RemovePolicyAttach{},
		core.RemovePBRRule{},
		core.FixPeerASN{},
	}
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 18, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		templates []core.Template
	}{{"full-templates", nil}, {"atomic-only", atomic}} {
		b.Run(tc.name, func(b *testing.B) {
			var repaired, visible int
			for i := 0; i < b.N; i++ {
				repaired, visible = 0, 0
				for _, inc := range incs {
					r := acr.RunIncident(inc, acr.RepairOptions{
						Templates: tc.templates, MaxIterations: 30,
					})
					if r.BaseFailing > 0 {
						visible++
						if r.Feasible {
							repaired++
						}
					}
				}
			}
			b.ReportMetric(float64(repaired), "repaired")
			b.ReportMetric(float64(visible), "visible")
		})
	}
}

// BenchmarkAblation_Baselines compares correctness/effort of all three
// systems on the worked incident (§2.3's comparison).
func BenchmarkAblation_Baselines(b *testing.B) {
	b.Run("acr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{}); !res.Feasible {
				b.Fatal("infeasible")
			}
		}
	})
	b.Run("metaprov", func(b *testing.B) {
		var reg int
		for i := 0; i < b.N; i++ {
			res := acr.MetaProvRepair(acr.Figure2Incident())
			reg = res.Regressions
		}
		b.ReportMetric(float64(reg), "regressions")
	})
	b.Run("aed", func(b *testing.B) {
		var explored int
		for i := 0; i < b.N; i++ {
			res := acr.AEDRepair(acr.Figure2Incident(), acr.AEDOptions{})
			if !res.Feasible {
				b.Fatal("infeasible")
			}
			explored = res.Explored
		}
		b.ReportMetric(float64(explored), "explored")
	})
}

// --- Substrate micro-benchmarks ------------------------------------------------------

func BenchmarkSimulateFigure2(b *testing.B) {
	c := acr.Figure2Incident()
	for i := 0; i < b.N; i++ {
		out, err := acr.Simulate(c)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.FlappingPrefixes()) != 1 {
			b.Fatal("unexpected outcome")
		}
	}
}

func BenchmarkSimulateFatTree(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			c := acr.FatTreeDCN(k, acr.GenOptions{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := acr.Simulate(c)
				if err != nil {
					b.Fatal(err)
				}
				if !out.Converged() {
					b.Fatal("fat-tree did not converge")
				}
			}
		})
	}
}

func BenchmarkVerifyWAN(b *testing.B) {
	c := acr.WANBackbone(8, 4, 3, acr.GenOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := acr.Verify(c); rep.NumFailed() != 0 {
			b.Fatal("correct WAN fails")
		}
	}
}

func BenchmarkParseConfig(b *testing.B) {
	c := acr.Figure2Incident()
	text := c.Configs["A"].Text()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := acr.ParseConfig("A", text)
		if _, err := netcfg.Parse(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6 future directions, measured -------------------------------------------

// BenchmarkHypothesis_RoleSimilarity quantifies the plastic surgery
// hypothesis (§6): same-role devices are far more similar than
// cross-role ones.
func BenchmarkHypothesis_RoleSimilarity(b *testing.B) {
	var dcnRep, wanRep *acr.RoleSimilarityReport
	for i := 0; i < b.N; i++ {
		dcnRep = acr.AnalyzeRoles(acr.FatTreeDCN(6, acr.GenOptions{}))
		wanRep = acr.AnalyzeRoles(acr.WANBackbone(8, 4, 3, acr.GenOptions{StaticOriginEvery: 2}))
	}
	b.Logf("fat-tree k=6 role similarity:\n%s", dcnRep)
	b.Logf("wan 8x4x3 role similarity:\n%s", wanRep)
	if !dcnRep.Supported(0.05) {
		b.Fatal("hypothesis not supported in the fat-tree")
	}
}

// BenchmarkAblation_UniversalVsTable1 compares the §6 universal operator
// set against the Table 1 template library on a corpus.
func BenchmarkAblation_UniversalVsTable1(b *testing.B) {
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 18, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		templates []core.Template
	}{{"table1-templates", nil}, {"universal-operators", acr.UniversalTemplates()}} {
		b.Run(tc.name, func(b *testing.B) {
			var repaired, visible int
			for i := 0; i < b.N; i++ {
				repaired, visible = 0, 0
				for _, inc := range incs {
					r := acr.RunIncident(inc, acr.RepairOptions{Templates: tc.templates, MaxIterations: 10})
					if r.BaseFailing > 0 {
						visible++
						if r.Feasible {
							repaired++
						}
					}
				}
			}
			b.ReportMetric(float64(repaired), "repaired")
			b.ReportMetric(float64(visible), "visible")
		})
	}
}

// BenchmarkAblation_DifferentialSuite measures §6's test-generation
// direction. The operator specification here covers only two rotating
// isolation pairs per PoP, so a leak on an uncovered pair is INVISIBLE
// to it; the differential regression suite (derived from the known-good
// baseline, isolation included) reveals and localizes the violation the
// specification misses.
func BenchmarkAblation_DifferentialSuite(b *testing.B) {
	good := acr.WANBackbone(8, 4, 3, acr.GenOptions{StaticOriginEvery: 2})
	diff := acr.DifferentialIntents(good, acr.DiffGenOptions{IncludeIsolation: true, MaxPairs: 128})

	// Find a prefix-list leak site invisible under the sparse spec.
	var broken *acr.Case
	var truth netcfg.LineRef
	for site := 0; ; site++ {
		cand := acr.WANBackbone(8, 4, 3, acr.GenOptions{StaticOriginEvery: 2})
		victim, line := leakSite(cand, site)
		if victim == "" {
			b.Fatal("no invisible leak site found")
		}
		next, err := (netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: line}}}).Apply(cand.Configs[victim])
		if err != nil {
			b.Fatal(err)
		}
		cand.Configs[victim] = next
		if acr.Verify(cand).NumFailed() == 0 { // invisible to the spec
			broken = cand
			f := netcfg.MustParse(cand.Configs[victim])
			g := f.GroupByName(scenario.WANGroupPoPFacing)
			truth = netcfg.LineRef{Device: victim, Line: g.Policies[0].Line}
			break
		}
	}

	var rankSpec, rankDiff, failSpec, failDiff int
	for i := 0; i < b.N; i++ {
		specOnly := &acr.Case{Topo: broken.Topo, Configs: broken.Configs, Intents: broken.Intents}
		failSpec = acr.Verify(specOnly).NumFailed()
		rankSpec = sbfl.RankOf(acr.Localize(specOnly), truth)
		augmented := &acr.Case{Topo: broken.Topo, Configs: broken.Configs,
			Intents: acr.MergeIntents(broken.Intents, diff)}
		failDiff = acr.Verify(augmented).NumFailed()
		rankDiff = sbfl.RankOf(acr.Localize(augmented), truth)
	}
	specRank := "n/a (no failing tests — the violation is invisible)"
	if failSpec > 0 {
		specRank = fmt.Sprint(rankSpec)
	}
	b.Logf("spec-only: %d failing tests, ground-truth rank %s", failSpec, specRank)
	_ = rankSpec
	b.Logf("with differential suite: %d failing tests, ground-truth rank %d (suite %d → %d intents)",
		failDiff, rankDiff, len(broken.Intents), len(broken.Intents)+len(diff))
	b.ReportMetric(float64(rankDiff), "rank-diff")
	b.ReportMetric(float64(failDiff), "fails-revealed")
}

// leakSite returns the n-th (router, prefix-list-entry-line) leak site.
func leakSite(c *acr.Case, n int) (string, int) {
	idx := 0
	for _, nd := range c.Topo.Nodes() {
		f := netcfg.MustParse(c.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g == nil || len(g.Policies) == 0 {
			continue
		}
		for _, e := range f.PrefixListEntries(scenario.WANListDCN) {
			if idx == n {
				return nd.Name, e.Line
			}
			idx++
		}
	}
	return "", 0
}

// BenchmarkAblation_FormulasMultiFault reruns the suspiciousness-formula
// comparison on a double-fault corpus, where failing-test counts vary and
// the formulas can diverge.
func BenchmarkAblation_FormulasMultiFault(b *testing.B) {
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 16, Seed: 21, DoubleFaultShare: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	type quality struct{ top5, top10 int }
	var results map[string]quality
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = map[string]quality{}
		for _, formula := range []acr.Formula{acr.Tarantula, acr.Ochiai, acr.Jaccard, acr.DStar} {
			q := quality{}
			for _, inc := range incs {
				ranks := acr.LocalizeWith(acr.IncidentCase(inc), formula)
				best := 0
				for _, l := range inc.Scenario.FaultyLines {
					if r := sbfl.RankOf(ranks, l); r > 0 && (best == 0 || r < best) {
						best = r
					}
				}
				if best >= 1 && best <= 5 {
					q.top5++
				}
				if best >= 1 && best <= 10 {
					q.top10++
				}
			}
			results[formula.Name] = q
		}
	}
	b.StopTimer()
	b.Logf("formula ablation on a double-fault corpus (%d incidents):", len(incs))
	for _, name := range []string{"tarantula", "ochiai", "jaccard", "dstar"} {
		q := results[name]
		b.Logf("  %-10s top5=%d top10=%d", name, q.top5, q.top10)
	}
}
