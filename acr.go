// Package acr is the public API of this reproduction of "Automatic
// Configuration Repair" (HotNets '24): localize–fix–validate repair of
// network configurations.
//
// The typical flow:
//
//	c := acr.Figure2Incident()            // or load/generate your own Case
//	report := acr.Verify(c)               // which intents fail?
//	scores := acr.Localize(c)             // suspicious configuration lines
//	result := acr.Repair(c, acr.RepairOptions{})
//	fmt.Println(result.Summary())         // the feasible update
//
// A Case bundles a topology, one configuration per device, and the
// operator's intent specification. Configurations use the vendor-style
// language of package netcfg (see the README for the grammar); intents
// cover reachability, isolation, waypointing, loop-freedom, and
// blackhole-freedom.
package acr

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"acr/internal/analysis"
	"acr/internal/baselines"
	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/coverage"
	"acr/internal/incidents"
	"acr/internal/journal"
	"acr/internal/netcfg"
	"acr/internal/rolesim"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/service"
	"acr/internal/tmplreg"
	"acr/internal/topo"
	"acr/internal/verify"
)

// Re-exported types: the facade's vocabulary is defined by the internal
// packages; aliases keep a single source of truth.
type (
	// Config is a line-addressable device configuration.
	Config = netcfg.Config
	// LineRef identifies one configuration line on one device.
	LineRef = netcfg.LineRef
	// EditSet is a set of line edits against one device.
	EditSet = netcfg.EditSet
	// Topology is the structural network model.
	Topology = topo.Network
	// Intent is one operator property.
	Intent = verify.Intent
	// Report is a verification report.
	Report = verify.Report
	// Verdict is one intent's verification result.
	Verdict = verify.Verdict
	// IncrementalVerifier is the DNA-style incremental verifier.
	IncrementalVerifier = verify.Incremental
	// Score is one line's suspiciousness.
	Score = sbfl.Score
	// RepairOptions tunes the repair engine.
	RepairOptions = core.Options
	// RepairResult is a repair run's outcome.
	RepairResult = core.Result
	// RepairError is one classified failure absorbed or surfaced by a run.
	RepairError = core.RepairError
	// ErrorKind classifies a RepairError.
	ErrorKind = core.ErrorKind
	// FaultInjector is the chaos seam of the repair engine.
	FaultInjector = core.FaultInjector
	// Template is one change-operator family.
	Template = core.Template
	// SimOptions tunes control-plane simulation.
	SimOptions = bgp.Options
	// Outcome is a control-plane simulation result.
	Outcome = bgp.Outcome
	// Diagnostic is one static-analysis finding.
	Diagnostic = analysis.Diagnostic
	// Severity grades a Diagnostic.
	Severity = analysis.Severity
	// LintResult is a static-analysis run's outcome.
	LintResult = analysis.Result
	// StaticAnalyzer is one pluggable static check.
	StaticAnalyzer = analysis.Analyzer
)

// Static-analysis helpers, re-exported.
var (
	// StaticAnalyzers lists the full analyzer registry.
	StaticAnalyzers = analysis.Analyzers
	// ParseSeverity parses "info", "warning", or "error".
	ParseSeverity = analysis.ParseSeverity
)

// Lint statically analyzes the case's configurations with every registered
// analyzer — no simulation, no intents — and returns the diagnostics. This
// is the `acr lint` entry point; the repair engine runs the same analyzers
// internally as a localization prior (see RepairOptions.NoStaticPrior).
func Lint(c *Case) *LintResult {
	return analysis.Analyze(c.Topo, c.Configs, nil)
}

// Intent constructors, re-exported.
var (
	// ReachIntent asserts packets from src reach dst.
	ReachIntent = verify.ReachIntent
	// IsolationIntent asserts packets from src never reach dst.
	IsolationIntent = verify.IsolationIntent
	// WaypointIntent asserts flows traverse a named router.
	WaypointIntent = verify.WaypointIntent
	// LoopFreeIntent asserts no forwarding loop toward a prefix.
	LoopFreeIntent = verify.LoopFreeIntent
	// BlackholeFreeIntent asserts no blackhole toward a prefix.
	BlackholeFreeIntent = verify.BlackholeFreeIntent
	// ParseConfig parses raw configuration text for a device.
	ParseConfig = netcfg.NewConfig
	// DiffConfigs renders a unified-style diff between two versions.
	DiffConfigs = netcfg.Diff
	// DefaultTemplates is the Table 1 change-template library, resolved
	// through the template registry (internal/tmplreg) so every template
	// carries its registry descriptor.
	DefaultTemplates = tmplreg.Default.EngineTemplates
)

// Case is a complete repair problem: a network and its specification.
type Case struct {
	Name    string
	Topo    *Topology
	Configs map[string]*Config
	Intents []Intent
	// GroundTruth carries known-faulty lines for generated incidents
	// (empty for user-supplied cases).
	GroundTruth []LineRef
	// Notes documents the case.
	Notes string
}

func fromScenario(s *scenario.Scenario) *Case {
	return &Case{
		Name:        s.Name,
		Topo:        s.Topo,
		Configs:     s.Configs,
		Intents:     s.Intents,
		GroundTruth: s.FaultyLines,
		Notes:       s.Notes,
	}
}

func (c *Case) problem() core.Problem {
	return core.Problem{Topo: c.Topo, Configs: c.Configs, Intents: c.Intents}
}

// Figure2Incident returns the paper's worked example (§2.2): the
// four-router backbone whose AS-path override policies on A and C cause a
// route flap for 10.0.0.0/16.
func Figure2Incident() *Case { return fromScenario(scenario.Figure2()) }

// Figure2Repaired returns the same network with the operators' fix.
func Figure2Repaired() *Case { return fromScenario(scenario.Figure2Correct()) }

// GenOptions parameterizes the scenario generators.
type GenOptions = scenario.GenOptions

// FatTreeDCN generates a correct k-ary fat-tree data-center case.
func FatTreeDCN(k int, opts GenOptions) *Case { return fromScenario(scenario.DCN(k, opts)) }

// WANBackbone generates a correct wide-area case with DCN-isolation
// policies.
func WANBackbone(routers, pops, dcns int, opts GenOptions) *Case {
	return fromScenario(scenario.WAN(routers, pops, dcns, opts))
}

// Verify checks every intent of the case against simulated behavior.
func Verify(c *Case) *Report {
	iv := verify.NewIncremental(c.Topo, c.Configs, c.Intents, bgp.Options{})
	return iv.BaseReport()
}

// VerifyContext is Verify with cooperative cancellation: simulation checks
// the context between prefixes and between activation passes. On
// cancellation it returns the context's error and no report.
func VerifyContext(ctx context.Context, c *Case) (*Report, error) {
	iv := verify.NewIncremental(c.Topo, c.Configs, c.Intents, bgp.Options{Ctx: ctx})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return iv.BaseReport(), nil
}

// Simulate runs the BGP control plane and returns the per-prefix outcome
// (including flapping detection). A non-nil error reports configuration
// lines that failed to parse; the outcome is still returned and covers the
// statements that parsed cleanly (a broken line is itself a repair
// candidate).
func Simulate(c *Case) (*Outcome, error) {
	return SimulateContext(context.Background(), c)
}

// SimulateContext is Simulate with cooperative cancellation. On
// cancellation the outcome is abandoned and the context's error returned.
func SimulateContext(ctx context.Context, c *Case) (*Outcome, error) {
	files := map[string]*netcfg.File{}
	var parseErrs []error
	for d, cfg := range c.Configs {
		f, err := netcfg.Parse(cfg)
		if err != nil {
			parseErrs = append(parseErrs, fmt.Errorf("device %s: %w", d, err))
		}
		files[d] = f
	}
	n := bgp.Compile(c.Topo, files)
	out := bgp.Simulate(n, bgp.Options{Ctx: ctx})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, joinErrs(parseErrs)
}

// joinErrs renders a deterministic multi-error: per-device messages are
// sorted so the config map's iteration order does not leak into output.
func joinErrs(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	sort.Strings(msgs)
	return fmt.Errorf("parse errors:\n  %s", strings.Join(msgs, "\n  "))
}

// NewIncrementalVerifier builds a DNA-style incremental verifier over the
// case; use Check to validate candidate edits cheaply and Commit to
// advance the base.
func NewIncrementalVerifier(c *Case) *IncrementalVerifier {
	return verify.NewIncremental(c.Topo, c.Configs, c.Intents, bgp.Options{})
}

// Localize runs spectrum-based fault localization (Tarantula) and returns
// every covered line ranked by suspiciousness.
func Localize(c *Case) []Score {
	return LocalizeWith(c, sbfl.Tarantula)
}

// Formula is a suspiciousness formula.
type Formula = sbfl.Formula

// Suspiciousness formulas, re-exported for the metric ablation.
var (
	Tarantula = sbfl.Tarantula
	Ochiai    = sbfl.Ochiai
	Jaccard   = sbfl.Jaccard
	DStar     = sbfl.DStar
)

// LocalizeWith runs SBFL under a specific formula.
func LocalizeWith(c *Case, f Formula) []Score {
	p := c.problem()
	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	ctx := core.NewContext(p, iv, f, rand.New(rand.NewSource(1)))
	return ctx.Ranks
}

// CoverageMatrix exposes the raw spectrum (tests × lines) for analysis.
type CoverageMatrix = coverage.Matrix

// Coverage builds the spectrum SBFL consumes.
func Coverage(c *Case) *CoverageMatrix {
	p := c.problem()
	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	return coverage.Build(iv.BaseNet(), iv.BaseProvenance(), iv.BaseReport())
}

// Crash-safe session journaling, re-exported (see internal/journal for
// the on-disk format).
type (
	// JournalWriter appends a repair session's write-ahead log; set it on
	// RepairOptions.Journal to make a run crash-safe.
	JournalWriter = journal.Writer
	// JournalSession is a replayed session — possibly one a crash cut
	// short, recovered up to its last intact record.
	JournalSession = journal.Session
	// JournalHeader identifies the case and search a journal belongs to.
	JournalHeader = journal.Header
)

// ErrNoJournalSession reports a directory with no replayable session.
var ErrNoJournalSession = journal.ErrNoSession

// SessionHeader builds the journal header identifying a repair of c under
// opts, carrying the case and search digests resume uses to refuse a
// mismatched continuation.
func SessionHeader(c *Case, opts RepairOptions) JournalHeader {
	return core.SessionHeader(c.Name, c.problem(), opts)
}

// CreateJournal starts a new crash-safe session journal in dir for a
// repair of c under opts. Pass the writer on RepairOptions.Journal and
// Close it after the run; if the process dies mid-run, ReplayJournal +
// ResumeJournal continue the session deterministically.
func CreateJournal(dir string, c *Case, opts RepairOptions) (*JournalWriter, error) {
	return journal.Create(dir, SessionHeader(c, opts))
}

// ReplayJournal recovers the session journaled in dir. It tolerates the
// torn tail a crash can leave — replay stops at the first record that
// fails its checksum and resumes from the last durable checkpoint.
func ReplayJournal(dir string) (*JournalSession, error) {
	return journal.Replay(dir)
}

// ResumeJournal reopens a replayed session's log for appending,
// truncating any torn tail. Pass the writer and the session on
// RepairOptions.Journal / RepairOptions.Resume to continue the run.
func ResumeJournal(dir string, sess *JournalSession) (*JournalWriter, error) {
	return journal.Resume(dir, sess)
}

// Repair runs the localize–fix–validate engine.
func Repair(c *Case, opts RepairOptions) *RepairResult {
	return core.Repair(c.problem(), opts)
}

// RepairContext is Repair with cooperative cancellation and wall-clock
// bounds (opts.Deadline / opts.MaxWallClock). The result is always usable:
// when the run ends on "deadline" or "canceled" it carries the best-effort
// repair found so far (BestEffortConfigs / BestEffortFitness / Improved).
func RepairContext(ctx context.Context, c *Case, opts RepairOptions) *RepairResult {
	return core.RepairContext(ctx, c.problem(), opts)
}

// Baseline results, re-exported.
type (
	// MetaProvResult is the provenance baseline's outcome.
	MetaProvResult = baselines.MetaProvResult
	// AEDResult is the synthesis baseline's outcome.
	AEDResult = baselines.AEDResult
	// AEDOptions tunes the synthesis baseline.
	AEDOptions = baselines.AEDOptions
)

// MetaProvRepair runs the provenance-based baseline (§2.3).
func MetaProvRepair(c *Case) *MetaProvResult { return baselines.MetaProv(c.problem()) }

// MetaProvRepairContext is MetaProvRepair with cooperative cancellation.
func MetaProvRepairContext(ctx context.Context, c *Case) *MetaProvResult {
	return baselines.MetaProvContext(ctx, c.problem())
}

// AEDRepair runs the synthesis baseline (§2.3).
func AEDRepair(c *Case, opts AEDOptions) *AEDResult { return baselines.AED(c.problem(), opts) }

// AEDRepairContext is AEDRepair with cooperative cancellation.
func AEDRepairContext(ctx context.Context, c *Case, opts AEDOptions) *AEDResult {
	return baselines.AEDContext(ctx, c.problem(), opts)
}

// Incident corpus, re-exported.
type (
	// Incident is one injected misconfiguration.
	Incident = incidents.Incident
	// IncidentRunResult is one incident repair's metrics.
	IncidentRunResult = incidents.RunResult
	// CorpusOptions parameterizes corpus generation.
	CorpusOptions = incidents.CorpusOptions
	// ErrorClass is a Table 1 misconfiguration class.
	ErrorClass = incidents.ErrorClass
)

// Table1 is the paper's Table 1.
var Table1 = incidents.Table1

// GenerateCorpus builds a synthetic incident corpus at Table 1's ratios.
func GenerateCorpus(opts CorpusOptions) ([]*Incident, error) {
	return incidents.GenerateCorpus(opts)
}

// RunIncident repairs one incident and collects metrics.
func RunIncident(inc *Incident, opts RepairOptions) *IncidentRunResult {
	return incidents.Run(inc, opts)
}

// IncidentCase converts an incident into a Case.
func IncidentCase(inc *Incident) *Case { return fromScenario(inc.Scenario) }

// --- §6 future directions, implemented -------------------------------------

// DiffGenOptions tunes differential test generation.
type DiffGenOptions = verify.DiffGenOptions

// DifferentialIntents derives a regression test suite from a known-good
// configuration (§6's open question on test generation): flows the
// baseline delivers become reachability intents; optionally, flows it
// does not deliver become isolation intents.
func DifferentialIntents(c *Case, opts DiffGenOptions) []Intent {
	return verify.DifferentialIntents(c.Topo, c.Configs, opts)
}

// MergeIntents appends intents not already present in base.
var MergeIntents = verify.MergeIntents

// UniversalTemplates is the §6 "universal change operators" library:
// purely syntactic operators (delete-line, copy-from-role-peer) with no
// Table 1 history, resolved through the template registry. See the
// ablation bench for its cost.
var UniversalTemplates = tmplreg.Default.UniversalTemplates

// RoleSimilarityReport quantifies the plastic surgery hypothesis.
type RoleSimilarityReport = rolesim.Report

// AnalyzeRoles measures intra- vs inter-role configuration similarity —
// the §6 hypothesis that makes template repair plausible.
func AnalyzeRoles(c *Case) *RoleSimilarityReport {
	return rolesim.Analyze(c.Topo, c.Configs)
}

// MissingShape is a role-consensus configuration line a device lacks.
type MissingShape = rolesim.MissingShape

// MissingRoleShapes lists role-consensus lines absent from a device.
func MissingRoleShapes(c *Case, device string, quorum float64) []MissingShape {
	return rolesim.MissingShapes(c.Topo, c.Configs, device, quorum)
}

// The repair service daemon (`acr serve`), re-exported so embedders can
// run the daemon in-process (see internal/service for the HTTP API).
type (
	// ServeConfig sizes and wires a repair daemon: state directory,
	// worker-pool size, queue capacity.
	ServeConfig = service.Config
	// ServeServer is the daemon itself: job store + queue + worker pool.
	// Call Start, mount Handler on an http.Server, Shutdown to drain.
	ServeServer = service.Server
	// ServeJob is one repair job's wire (and on-disk) record.
	ServeJob = service.Job
	// ServeJobRequest is a job submission (POST /v1/repairs body).
	ServeJobRequest = service.JobRequest
	// ServeResult is the machine-readable repair result shared by the
	// service API and `acr repair -o json`.
	ServeResult = service.ResultJSON
)

// NewServer opens (or re-opens, resuming in-flight jobs) a repair daemon
// on its state directory.
func NewServer(cfg ServeConfig) (*ServeServer, error) { return service.New(cfg) }

// ResultExitCode classifies a repair result the way `acr repair` exits:
// 0 feasible, 2 improved, 3 no progress, 4 deadline/canceled, 5 feasible
// after resuming a crashed session.
func ResultExitCode(res *RepairResult) int { return service.ExitCode(res) }
