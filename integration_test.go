package acr_test

import (
	"math"
	"strings"
	"testing"

	"acr"
)

// TestEndToEndFigure2 walks the whole §5 pipeline through the public API.
func TestEndToEndFigure2(t *testing.T) {
	c := acr.Figure2Incident()

	// Detect: one failing intent, the flapping prefix.
	rep := acr.Verify(c)
	if rep.NumFailed() != 1 {
		t.Fatalf("failing intents = %d, want 1\n%s", rep.NumFailed(), rep.Summary())
	}
	out, err := acr.Simulate(c)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if len(out.FlappingPrefixes()) != 1 {
		t.Fatalf("flapping prefixes = %v, want exactly 10.0.0.0/16", out.FlappingPrefixes())
	}

	// Localize: the paper's Tarantula value on A's line 9.
	scores := acr.Localize(c)
	var line9 *acr.Score
	for i := range scores {
		if scores[i].Line == (acr.LineRef{Device: "A", Line: 9}) {
			line9 = &scores[i]
		}
	}
	if line9 == nil {
		t.Fatal("A:9 not in localization output")
	}
	if math.Abs(line9.Susp-2.0/3.0) > 1e-9 {
		t.Errorf("A:9 susp = %.4f, want 0.67", line9.Susp)
	}

	// Repair: feasible; repaired network verifies clean.
	res := acr.Repair(c, acr.RepairOptions{})
	if !res.Feasible {
		t.Fatalf("repair infeasible: %s", res.Summary())
	}
	repaired := &acr.Case{Name: "repaired", Topo: c.Topo, Configs: res.FinalConfigs, Intents: c.Intents}
	if got := acr.Verify(repaired); got.NumFailed() != 0 {
		t.Fatalf("repaired network fails:\n%s", got.Summary())
	}
	if repOut, err := acr.Simulate(repaired); err != nil {
		t.Fatalf("simulate repaired: %v", err)
	} else if len(repOut.FlappingPrefixes()) != 0 {
		t.Error("repaired network still flapping")
	}
}

func TestEndToEndGeneratedCases(t *testing.T) {
	for _, c := range []*acr.Case{
		acr.Figure2Repaired(),
		acr.FatTreeDCN(4, acr.GenOptions{WithScrubber: true, StaticOriginEvery: 2}),
		acr.WANBackbone(6, 3, 2, acr.GenOptions{StaticOriginEvery: 2}),
	} {
		rep := acr.Verify(c)
		if rep.NumFailed() != 0 {
			t.Errorf("%s: correct case fails:\n%s", c.Name, rep.Summary())
		}
	}
}

func TestEndToEndIncrementalVerifier(t *testing.T) {
	c := acr.Figure2Incident()
	iv := acr.NewIncrementalVerifier(c)
	if iv.BaseReport().NumFailed() != 1 {
		t.Fatal("base should fail once")
	}
	// A harmless comment insertion must not flip anything and should be
	// cheap.
	rep, stats, err := iv.Check([]acr.EditSet{{Device: "B", Edits: nil}})
	if err != nil || rep.NumFailed() != 1 {
		t.Fatalf("no-op check: err=%v fails=%d", err, rep.NumFailed())
	}
	if stats.PrefixesSimulated != 0 {
		t.Errorf("no-op simulated %d prefixes", stats.PrefixesSimulated)
	}
}

func TestEndToEndBaselines(t *testing.T) {
	c := acr.Figure2Incident()
	mp := acr.MetaProvRepair(c)
	if mp.SearchSpace == 0 {
		t.Error("MetaProv search space empty")
	}
	aed := acr.AEDRepair(c, acr.AEDOptions{MaxCandidates: 500})
	if aed.SearchSpaceLog2 < 12 {
		t.Errorf("AED log2 space = %d, want >= 12 (the paper's 2^12 bound)", aed.SearchSpaceLog2)
	}
}

func TestEndToEndCorpus(t *testing.T) {
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	repaired := 0
	for _, inc := range incs {
		r := acr.RunIncident(inc, acr.RepairOptions{})
		if r.BaseFailing > 0 && r.Feasible {
			repaired++
		}
	}
	if repaired == 0 {
		t.Error("no corpus incident repaired")
	}
	t.Logf("repaired %d/%d sampled incidents", repaired, len(incs))
}

func TestEndToEndCustomCase(t *testing.T) {
	// A downstream-user flow: build a case from raw config text.
	c := acr.FatTreeDCN(4, acr.GenOptions{})
	// Corrupt one leaf by replacing its config wholesale with a version
	// missing the network statement.
	leaf := "leaf1-1"
	cfg := c.Configs[leaf]
	var kept []string
	for i := 1; i <= cfg.NumLines(); i++ {
		if strings.Contains(cfg.Line(i), "network ") {
			continue
		}
		kept = append(kept, cfg.Line(i))
	}
	c.Configs[leaf] = acr.ParseConfig(leaf, strings.Join(kept, "\n"))
	rep := acr.Verify(c)
	if rep.NumFailed() == 0 {
		t.Fatal("deleting the origination should break reachability")
	}
	scores := acr.Localize(c)
	if len(scores) == 0 {
		t.Fatal("no localization output")
	}
	onLeaf := false
	for _, s := range scores[:min(10, len(scores))] {
		if s.Line.Device == leaf {
			onLeaf = true
		}
	}
	if !onLeaf {
		t.Error("no top-10 suspicious line on the corrupted leaf")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEndToEndRoleSimilarity(t *testing.T) {
	rep := acr.AnalyzeRoles(acr.FatTreeDCN(4, acr.GenOptions{}))
	if !rep.Supported(0.05) {
		t.Fatalf("hypothesis unsupported:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "leaf") {
		t.Error("report missing leaf role")
	}
}

func TestEndToEndMissingRoleShapes(t *testing.T) {
	c := acr.FatTreeDCN(4, acr.GenOptions{})
	cfg := c.Configs["leaf0-1"]
	var kept []string
	for i := 1; i <= cfg.NumLines(); i++ {
		if strings.Contains(cfg.Line(i), "network ") {
			continue
		}
		kept = append(kept, cfg.Line(i))
	}
	c.Configs["leaf0-1"] = acr.ParseConfig("leaf0-1", strings.Join(kept, "\n"))
	shapes := acr.MissingRoleShapes(c, "leaf0-1", 0.75)
	if len(shapes) == 0 {
		t.Fatal("no missing role shapes detected")
	}
}

func TestEndToEndDifferentialIntents(t *testing.T) {
	good := acr.WANBackbone(6, 3, 2, acr.GenOptions{})
	diff := acr.DifferentialIntents(good, acr.DiffGenOptions{IncludeIsolation: true})
	if len(diff) == 0 {
		t.Fatal("no differential intents")
	}
	merged := acr.MergeIntents(good.Intents, diff)
	c := &acr.Case{Topo: good.Topo, Configs: good.Configs, Intents: merged}
	if rep := acr.Verify(c); rep.NumFailed() != 0 {
		t.Fatalf("augmented suite fails on its own baseline:\n%s", rep.Summary())
	}
}

func TestEndToEndUniversalTemplates(t *testing.T) {
	c := acr.Figure2Incident()
	res := acr.Repair(c, acr.RepairOptions{Templates: acr.UniversalTemplates(), MaxIterations: 20})
	if !res.Feasible {
		t.Fatalf("universal operators infeasible on figure2: %s", res.Summary())
	}
}

func TestEndToEndDoubleFaultCorpus(t *testing.T) {
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: 10, Seed: 4, DoubleFaultShare: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	doubles := 0
	for _, inc := range incs {
		if inc.DoubleFault {
			doubles++
		}
	}
	if doubles == 0 {
		t.Fatal("no double-fault incidents via the facade")
	}
}
