// Command acrgen generates cases and incident corpora.
//
// Usage:
//
//	acrgen case   -kind figure2|dcn|wan [-k 4] [-routers 6 -pops 4 -dcns 3] -out <dir>
//	acrgen corpus [-size 120] [-seed 1] [-out <dir>]    # one subdirectory per incident
//	acrgen table1 [-size 120] [-seed 1]                 # print the class distribution
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"acr"
	"acr/internal/caseio"
	"acr/internal/incidents"
	"acr/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "case":
		err = runCase(os.Args[2:])
	case "corpus":
		err = runCorpus(os.Args[2:])
	case "table1":
		err = runTable1(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: acrgen <case|corpus|table1> [flags]")
}

func runCase(args []string) error {
	fs := flag.NewFlagSet("case", flag.ExitOnError)
	kind := fs.String("kind", "figure2", "figure2, dcn, or wan")
	k := fs.Int("k", 4, "fat-tree arity (dcn)")
	routers := fs.Int("routers", 6, "backbone routers (wan)")
	pops := fs.Int("pops", 4, "PoP stubs (wan)")
	dcns := fs.Int("dcns", 3, "DCN stubs (wan)")
	out := fs.String("out", "", "output directory (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	var c *acr.Case
	switch *kind {
	case "figure2":
		c = acr.Figure2Incident()
	case "dcn":
		c = acr.FatTreeDCN(*k, acr.GenOptions{WithScrubber: true, StaticOriginEvery: 2})
	case "wan":
		c = acr.WANBackbone(*routers, *pops, *dcns, acr.GenOptions{StaticOriginEvery: 2})
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err := saveCase(*out, c); err != nil {
		return err
	}
	fmt.Printf("wrote case %s (%d devices, %d intents) to %s\n", c.Name, len(c.Configs), len(c.Intents), *out)
	return nil
}

func saveCase(dir string, c *acr.Case) error {
	s := caseScenario(c)
	return caseio.Save(dir, s)
}

func caseScenario(c *acr.Case) *scenario.Scenario {
	return &scenario.Scenario{Name: c.Name, Topo: c.Topo, Configs: c.Configs, Intents: c.Intents, Notes: c.Notes, FaultyLines: c.GroundTruth}
}

func runCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	size := fs.Int("size", 120, "number of incidents")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "write each incident as a case directory here")
	fs.Parse(args)
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: *size, Seed: *seed})
	if err != nil {
		return err
	}
	for _, inc := range incs {
		fmt.Printf("%-20s %-40s lines=%d manual=%.1fmin ground-truth=%v\n",
			inc.ID, inc.Class, inc.LinesChanged, inc.ManualMinutes, inc.Scenario.FaultyLines)
		if *out != "" {
			if err := caseio.Save(filepath.Join(*out, inc.ID), inc.Scenario); err != nil {
				return err
			}
		}
	}
	if *out != "" {
		fmt.Printf("wrote %d incident case directories under %s\n", len(incs), *out)
	}
	return nil
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	size := fs.Int("size", 120, "number of incidents")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: *size, Seed: *seed})
	if err != nil {
		return err
	}
	counts := map[acr.ErrorClass]int{}
	for _, inc := range incs {
		counts[inc.Class]++
	}
	fmt.Printf("%-8s %-42s %-6s %-8s %-8s\n", "Configs", "Types", "Lines", "Paper", "Corpus")
	for _, ci := range incidents.Table1 {
		fmt.Printf("%-8s %-42s %-6s %6.1f%% %7.1f%%\n",
			ci.Category, ci.Name, ci.Lines, ci.Ratio*100, 100*float64(counts[ci.Class])/float64(len(incs)))
	}
	return nil
}
