// Command acrvet runs the repository's determinism-invariant checks (see
// internal/acrvet) over the merge-path packages. Exit status 1 means at
// least one finding; 2 means the checker itself failed (parse or
// type-check error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"acr/internal/acrvet"
)

func main() {
	root := flag.String("root", ".", "module root to vet")
	pkgs := flag.String("pkgs", "", "comma-separated package dirs relative to the module root (default: the merge-path set)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	flag.Parse()

	list := acrvet.DefaultPackages
	if *pkgs != "" {
		list = strings.Split(*pkgs, ",")
	}
	findings, err := acrvet.Run(*root, list)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrvet:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "acrvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("acrvet: %d finding(s) in %d package(s)\n", len(findings), len(list))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
