package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"acr"
)

// flagJSONStatic names the machine-readable output of -exp staticprune.
var flagJSONStatic string

// pruneClassRow aggregates the impact-analysis ablation over one error
// class of the corpus.
type pruneClassRow struct {
	Class         string  `json:"class"`
	Incidents     int     `json:"incidents"`
	SimsImpact    int     `json:"prefixSimsImpact"`
	SimsNoImpact  int     `json:"prefixSimsNoImpact"`
	Reduction     float64 `json:"reduction"`
	Refuted       int     `json:"staticallyRefuted"`
	Scoped        int     `json:"impactScoped"`
	Broad         int     `json:"impactBroad"`
	LeafDerived   int     `json:"leafDerivations"`
	SimsPerCand   float64 `json:"simsPerCandidateImpact"`
	SimsPerCandNo float64 `json:"simsPerCandidateNoImpact"`
}

// pruneReport is the BENCH_staticprune.json schema: the per-class ablation
// sweep plus the headline reduction and the byte-identity verdict, kept as
// a baseline for future impact-analysis changes.
type pruneReport struct {
	GeneratedAt   string          `json:"generatedAt"`
	GoVersion     string          `json:"goVersion"`
	Size          int             `json:"size"`
	Seed          int64           `json:"seed"`
	Short         bool            `json:"short"`
	Classes       []pruneClassRow `json:"classes"`
	Total         pruneClassRow   `json:"total"`
	ByteIdentical bool            `json:"byteIdentical"`
}

// staticPrune regenerates the impact-analysis ablation: every corpus
// incident repaired twice — once with the static impact analysis (the
// default) and once with -no-impact (every candidate fully re-simulated) —
// asserting byte-identical Canonical() output while counting the prefix
// simulations each mode spent. The headline is the reduction ratio the
// acceptance bar pins at >= 3x on the Figure-2 corpus; the per-class rows
// show where the pruning bites (disjoint-impact candidates refuted outright
// vs. slices narrowed to a few prefixes). A Canonical() mismatch is a
// soundness bug, not a perf regression, so it fails the run.
func staticPrune(size int, seed int64) {
	if flagShort {
		size = min(size, 12)
	}
	incs := corpus(size, seed)
	rows := map[string]*pruneClassRow{}
	var total pruneClassRow
	total.Class = "total"
	byteIdentical := true
	var candImpact, candNoImpact int
	for _, inc := range incs {
		c := acr.IncidentCase(inc)
		with := acr.Repair(c, acr.RepairOptions{Seed: seed})
		without := acr.Repair(c, acr.RepairOptions{Seed: seed, NoImpact: true})
		if with.Canonical() != without.Canonical() {
			byteIdentical = false
			fmt.Printf("UNSOUND: %s Canonical() differs between impact and -no-impact runs\n", inc.ID)
		}
		cls := inc.Class.String()
		row := rows[cls]
		if row == nil {
			row = &pruneClassRow{Class: cls}
			rows[cls] = row
		}
		for _, r := range []*pruneClassRow{row, &total} {
			r.Incidents++
			r.SimsImpact += with.PrefixSimulations
			r.SimsNoImpact += without.PrefixSimulations
			r.Refuted += with.StaticallyRefuted
			r.Scoped += with.ImpactScoped
			r.Broad += with.ImpactBroad
			r.LeafDerived += with.LeafDerivations
		}
		candImpact += with.CandidatesValidated
		candNoImpact += without.CandidatesValidated
	}
	finish := func(r *pruneClassRow) {
		if r.SimsImpact > 0 {
			r.Reduction = float64(r.SimsNoImpact) / float64(r.SimsImpact)
		}
	}
	finish(&total)
	if candImpact > 0 {
		total.SimsPerCand = float64(total.SimsImpact) / float64(candImpact)
	}
	if candNoImpact > 0 {
		total.SimsPerCandNo = float64(total.SimsNoImpact) / float64(candNoImpact)
	}

	rep := pruneReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		Size:          len(incs),
		Seed:          seed,
		Short:         flagShort,
		Total:         total,
		ByteIdentical: byteIdentical,
	}
	classes := make([]string, 0, len(rows))
	for cls := range rows { //acrvet:ordered — sorted below
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	fmt.Printf("%-26s %5s %10s %12s %9s %8s %7s %6s %8s\n",
		"class", "n", "simsImpact", "simsNoImpact", "reduction", "refuted", "scoped", "broad", "derived")
	for _, cls := range classes {
		r := rows[cls]
		finish(r)
		rep.Classes = append(rep.Classes, *r)
		fmt.Printf("%-26s %5d %10d %12d %8.2fx %8d %7d %6d %8d\n",
			r.Class, r.Incidents, r.SimsImpact, r.SimsNoImpact, r.Reduction,
			r.Refuted, r.Scoped, r.Broad, r.LeafDerived)
	}
	fmt.Printf("%-26s %5d %10d %12d %8.2fx %8d %7d %6d %8d\n",
		total.Class, total.Incidents, total.SimsImpact, total.SimsNoImpact, total.Reduction,
		total.Refuted, total.Scoped, total.Broad, total.LeafDerived)
	fmt.Printf("\nsims/candidate: %.2f with impact analysis, %.2f without\n",
		total.SimsPerCand, total.SimsPerCandNo)
	fmt.Printf("byte-identity (-no-impact ablation Canonical()): ")
	if byteIdentical {
		fmt.Println("IDENTICAL")
	} else {
		fmt.Println("DIVERGED")
	}

	if flagJSONStatic != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(flagJSONStatic, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", flagJSONStatic)
	}
	if !byteIdentical {
		os.Exit(1)
	}
}
