package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"acr"
	"acr/internal/core"
	"acr/internal/evalstore"
	"acr/internal/netcfg"
)

// Flags shared with main: -short shrinks workloads for CI smoke runs,
// -json names the machine-readable output of -exp parallel.
var (
	flagShort bool
	flagJSON  string
)

// benchReps is the timing discipline for speedup-reporting sweeps: one
// discarded warmup sweep (it absorbs first-touch page faults, allocator
// growth, and scheduler warmup — the noise that once made a single-shot
// `-p 4` reading land below the serial baseline) followed by benchReps
// timed sweeps whose median is reported. The repair itself is
// deterministic, so repetitions reproduce every counter; only the clock
// varies.
const benchReps = 3

func medianWall(sweep func() float64) float64 {
	sweep() // warmup, discarded
	walls := make([]float64, 0, benchReps)
	for i := 0; i < benchReps; i++ {
		walls = append(walls, sweep())
	}
	sort.Float64s(walls)
	return walls[len(walls)/2]
}

// parallelRow is one configuration of the scaling sweep in the JSON output.
// Store/StoreHits/StoreMisses/FleetDedup are set only on the persistent-
// store rows: "cold" writes the evaluations through, "warm" re-runs the
// same case set answered from disk — the fleet-dedup path, where a
// duplicate incident on another peer reuses evaluations a node already
// paid for. FleetDedup is the fraction of the cold run's validation
// simulations the warm run avoided (1.0 = the duplicate was free).
type parallelRow struct {
	Workers          int     `json:"workers"`
	Cache            bool    `json:"cache"`
	Store            string  `json:"store,omitempty"`
	WallSeconds      float64 `json:"wallSeconds"`
	Validated        int     `json:"candidatesValidated"`
	PrefixSims       int     `json:"prefixSimulations"`
	SimsPerCandidate float64 `json:"simsPerCandidate"`
	Refuted          int     `json:"staticallyRefuted"`
	CacheHits        int     `json:"cacheHits"`
	CacheMisses      int     `json:"cacheMisses"`
	StoreHits        int     `json:"storeHits,omitempty"`
	StoreMisses      int     `json:"storeMisses,omitempty"`
	FleetDedup       float64 `json:"fleetDedup,omitempty"`
	SpeedupVsSerial  float64 `json:"speedupVsSerial"`
	CanonicalsSHA256 string  `json:"canonicalsSha256"`
}

// parallelReport is the BENCH_parallel.json schema: environment, the sweep,
// and the derived verdicts, kept as a perf baseline for future changes.
type parallelReport struct {
	GeneratedAt     string        `json:"generatedAt"`
	NumCPU          int           `json:"numCPU"`
	GOMAXPROCS      int           `json:"gomaxprocs"`
	GoVersion       string        `json:"goVersion"`
	Short           bool          `json:"short"`
	Cases           []string      `json:"cases"`
	Rows            []parallelRow `json:"rows"`
	Deterministic   bool          `json:"deterministic"`
	HeadlineSpeedup float64       `json:"headlineSpeedup"` // cache -p8 vs no-cache -p1
	WideningCase    string        `json:"wideningCase"`
	WideningHitRate float64       `json:"wideningHitRate"`
	// FleetDedup echoes the warm store row's dedup fraction: how much of a
	// duplicate incident's validation work the shared store absorbs.
	FleetDedup float64 `json:"fleetDedup,omitempty"`
}

// wrongASNWAN injects a wrong AS number into a WAN peer stanza — a fault
// the universal operator set cannot repair (it needs value solving), so
// the search stagnates and widens, re-proposing duplicates every round.
func wrongASNWAN() *acr.Case {
	c := acr.WANBackbone(6, 3, 2, acr.GenOptions{})
	f := netcfg.MustParse(c.Configs["pop0"])
	peer := f.BGP.Peers[0]
	next, err := (netcfg.EditSet{Edits: []netcfg.Edit{netcfg.ReplaceLine{
		At: peer.ASNLine, Text: " peer " + peer.Addr.String() + " as-number 63999",
	}}}).Apply(c.Configs["pop0"])
	if err != nil {
		panic(err)
	}
	c.Configs["pop0"] = next
	return c
}

// parallelExp measures the parallel validation stage and the evaluation
// cache: the Figure 2 incident, a corpus slice, and a widening-heavy WAN
// leak repaired at 1/2/4/8 validation workers with the cache on and off.
// Every configuration must produce byte-identical Canonical() output per
// cache setting (the cache legitimately changes the hit/miss counters, the
// worker count must change nothing); the sweep prints speedups against the
// serial run of the same cache setting, plus the headline number — the cache
// at -p 8 against the pre-cache serial baseline. The host's core count is
// reported alongside: worker scaling beyond NumCPU only overlaps, it cannot
// multiply.
func parallelExp(size int, seed int64) {
	type benchCase struct {
		name string
		mk   func() *acr.Case
		opts acr.RepairOptions
	}
	n := min(size, 8)
	if flagShort {
		n = 2
	}
	incs := corpus(n, seed)
	cases := []benchCase{
		{"figure2", acr.Figure2Incident, acr.RepairOptions{Strategy: core.BruteForce}},
	}
	for _, inc := range incs {
		inc := inc
		cases = append(cases, benchCase{inc.ID,
			func() *acr.Case { return acr.IncidentCase(inc) },
			acr.RepairOptions{Seed: seed}})
	}
	// The widening-heavy case: a wrong-ASN WAN restricted to the universal
	// (syntactic) operators, which cannot solve it — the search stagnates,
	// widens every iteration, and re-proposes the same survivors' edits,
	// exactly the duplicate stream the cache exists to absorb (~40% of
	// validations answer from the cache at 10 iterations).
	widening := benchCase{"wan-wrong-asn", wrongASNWAN,
		acr.RepairOptions{Seed: seed, MaxIterations: 10, Templates: acr.UniversalTemplates()}}
	cases = append(cases, widening)

	rep := parallelReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Short:       flagShort,
	}
	for _, c := range cases {
		rep.Cases = append(rep.Cases, c.name)
	}
	fmt.Printf("host: NumCPU=%d GOMAXPROCS=%d %s  (speedup from workers is bounded by cores; the cache is not)\n\n",
		rep.NumCPU, rep.GOMAXPROCS, rep.GoVersion)
	fmt.Printf("%-8s %-6s %10s %10s %10s %9s %8s %8s %8s %9s\n",
		"workers", "cache", "wall", "validated", "prefixSim", "sims/cand", "refuted", "hits", "misses", "speedup")

	serialWall := map[bool]float64{}
	shaByCache := map[bool]map[string]bool{true: {}, false: {}}
	var wideningHits, wideningResolved int
	for _, cache := range []bool{false, true} {
		for _, workers := range []int{1, 2, 4, 8} {
			row := parallelRow{Workers: workers, Cache: cache}
			h := sha256.New()
			collected := false
			sweep := func() float64 {
				start := time.Now()
				for _, c := range cases {
					opts := c.opts
					opts.Parallelism = workers
					opts.NoCache = !cache
					res := acr.Repair(c.mk(), opts)
					if collected {
						continue
					}
					row.Validated += res.CandidatesValidated
					row.PrefixSims += res.PrefixSimulations
					row.Refuted += res.StaticallyRefuted
					row.CacheHits += res.CacheHits
					row.CacheMisses += res.CacheMisses
					fmt.Fprintf(h, "case %s\n%s", c.name, res.Canonical())
					if cache && workers == 8 && c.name == widening.name {
						wideningHits = res.CacheHits
						wideningResolved = res.CacheHits + res.CacheMisses
					}
				}
				collected = true
				return time.Since(start).Seconds()
			}
			row.WallSeconds = medianWall(sweep)
			if row.Validated > 0 {
				row.SimsPerCandidate = float64(row.PrefixSims) / float64(row.Validated)
			}
			row.CanonicalsSHA256 = hex.EncodeToString(h.Sum(nil))
			shaByCache[cache][row.CanonicalsSHA256] = true
			if workers == 1 {
				serialWall[cache] = row.WallSeconds
			}
			row.SpeedupVsSerial = serialWall[cache] / row.WallSeconds
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("%-8d %-6v %9.2fs %10d %10d %9.2f %8d %8d %8d %8.2fx\n",
				workers, cache, row.WallSeconds, row.Validated, row.PrefixSims,
				row.SimsPerCandidate, row.Refuted, row.CacheHits, row.CacheMisses, row.SpeedupVsSerial)
		}
	}

	// Persistent-store rows: the full case set again at -p 8 with the cache
	// on, first writing through a cold store, then answered by the warm one.
	// The warm row is the measured fleet-dedup claim, and both rows feed the
	// cache-on determinism set: a store in any state must not move a byte.
	storeDir, err := os.MkdirTemp("", "acrbench-evalstore-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(storeDir)
	fmt.Printf("\npersistent store (cache on, -p 8; warm = duplicate incident on another fleet peer):\n")
	fmt.Printf("%-6s %10s %10s %10s %9s %9s %10s\n",
		"store", "wall", "validated", "prefixSim", "hits", "misses", "fleetDedup")
	var coldSims int
	for _, phase := range []string{"cold", "warm"} {
		st, err := evalstore.Open(storeDir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		row := parallelRow{Workers: 8, Cache: true, Store: phase}
		h := sha256.New()
		for _, c := range cases {
			opts := c.opts
			opts.Parallelism = 8
			opts.Store = st
			start := time.Now()
			res := acr.Repair(c.mk(), opts)
			row.WallSeconds += time.Since(start).Seconds()
			row.Validated += res.CandidatesValidated
			row.PrefixSims += res.PrefixSimulations
			row.Refuted += res.StaticallyRefuted
			row.CacheHits += res.CacheHits
			row.CacheMisses += res.CacheMisses
			row.StoreHits += res.StoreHits
			row.StoreMisses += res.StoreMisses
			fmt.Fprintf(h, "case %s\n%s", c.name, res.Canonical())
		}
		st.Close()
		if row.Validated > 0 {
			row.SimsPerCandidate = float64(row.PrefixSims) / float64(row.Validated)
		}
		row.CanonicalsSHA256 = hex.EncodeToString(h.Sum(nil))
		shaByCache[true][row.CanonicalsSHA256] = true
		row.SpeedupVsSerial = serialWall[true] / row.WallSeconds
		if phase == "cold" {
			coldSims = row.PrefixSims
		} else if coldSims > 0 {
			row.FleetDedup = 1 - float64(row.PrefixSims)/float64(coldSims)
			rep.FleetDedup = row.FleetDedup
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-6s %9.2fs %10d %10d %9d %9d %9.1f%%\n",
			phase, row.WallSeconds, row.Validated, row.PrefixSims,
			row.StoreHits, row.StoreMisses, 100*row.FleetDedup)
	}

	rep.Deterministic = len(shaByCache[true]) == 1 && len(shaByCache[false]) == 1
	fmt.Printf("\ndeterminism (-p 1 vs -p 8 Canonical() SHA per cache setting): ")
	if rep.Deterministic {
		fmt.Println("IDENTICAL")
	} else {
		fmt.Printf("DIVERGED (cache-on %d distinct, cache-off %d distinct)\n",
			len(shaByCache[true]), len(shaByCache[false]))
	}
	// Headline: the optimized configuration (cache, -p 8) against the
	// pre-change behavior (no cache, serial).
	var opt float64
	for _, r := range rep.Rows {
		if r.Cache && r.Workers == 8 {
			opt = r.WallSeconds
		}
	}
	if opt > 0 {
		rep.HeadlineSpeedup = serialWall[false] / opt
		fmt.Printf("headline: cache -p 8 vs no-cache -p 1 = %.2fx\n", rep.HeadlineSpeedup)
	}
	rep.WideningCase = widening.name
	if wideningResolved > 0 {
		rep.WideningHitRate = float64(wideningHits) / float64(wideningResolved)
		fmt.Printf("cache hit rate on widening-heavy %s: %.1f%% (%d of %d validations answered without simulation)\n",
			widening.name, 100*rep.WideningHitRate, wideningHits, wideningResolved)
	}

	if flagJSON != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(flagJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", flagJSON)
	}
}
