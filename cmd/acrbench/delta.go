package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"acr"
	"acr/internal/core"
)

// flagJSONDelta names the machine-readable output of -exp delta.
var flagJSONDelta string

// deltaRow is one ablation mode of the delta sweep. Activations is the
// device·prefix work unit the optimization targets: every router
// activation performed by every prefix simulation across the mode's runs.
type deltaRow struct {
	Mode             string  `json:"mode"` // full | delta | delta+batch
	WallSeconds      float64 `json:"wallSeconds"`
	Validated        int     `json:"candidatesValidated"`
	PrefixSims       int     `json:"prefixSimulations"`
	DeltaReused      int     `json:"deltaReused"`
	DeltaResimulated int     `json:"deltaResimulated"`
	Activations      int     `json:"simActivations"`
	CanonicalsSHA256 string  `json:"canonicalsSha256"`
}

// deltaReport is the BENCH_delta.json schema: the full-vs-delta-vs-
// delta+batch ablation, the byte-identity verdict across modes, and the
// headline activation-reduction ratio.
type deltaReport struct {
	GeneratedAt string     `json:"generatedAt"`
	NumCPU      int        `json:"numCPU"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	GoVersion   string     `json:"goVersion"`
	Short       bool       `json:"short"`
	Cases       []string   `json:"cases"`
	Rows        []deltaRow `json:"rows"`
	// Deterministic is true when all three modes produced the same
	// Canonical() SHA over the case set — delta propagation and batching
	// changed how much work ran, not a single decision.
	Deterministic bool `json:"deterministic"`
	// ActivationRatio is full-mode activations over delta+batch-mode
	// activations: how many device·prefix units of simulation work the
	// delta path avoids per unit it performs.
	ActivationRatio float64 `json:"activationRatio"`
	// WallSpeedup is full-mode wall over delta+batch-mode wall.
	WallSpeedup float64 `json:"wallSpeedup"`
}

// deltaExp measures delta re-simulation and sibling batching: a corpus
// slice plus the Figure 2 incident repaired under three modes — full
// (delta and the parse memo disabled), delta (memo disabled), and
// delta+batch (the default path). All three must produce byte-identical
// Canonical() output; the payoff is counted in router activations, the
// device·prefix work unit, not just wall clock (which also moves with
// interning and parse reuse).
func deltaExp(size int, seed int64) {
	type benchCase struct {
		name string
		mk   func() *acr.Case
		opts acr.RepairOptions
	}
	n := min(size, 12)
	if flagShort {
		n = 4
	}
	incs := corpus(n, seed)
	cases := []benchCase{
		{"figure2", acr.Figure2Incident, acr.RepairOptions{Strategy: core.BruteForce}},
	}
	for _, inc := range incs {
		inc := inc
		cases = append(cases, benchCase{inc.ID,
			func() *acr.Case { return acr.IncidentCase(inc) },
			acr.RepairOptions{Seed: seed}})
	}

	rep := deltaReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Short:       flagShort,
	}
	for _, c := range cases {
		rep.Cases = append(rep.Cases, c.name)
	}

	modes := []struct {
		name    string
		noDelta bool
		noBatch bool
	}{
		{"full", true, true},
		{"delta", false, true},
		{"delta+batch", false, false},
	}
	fmt.Printf("%-12s %10s %10s %10s %8s %8s %12s\n",
		"mode", "wall", "validated", "prefixSim", "delta", "resim", "activations")
	shas := map[string]bool{}
	var fullActs, comboActs int
	var fullWall, comboWall float64
	for _, m := range modes {
		row := deltaRow{Mode: m.name}
		h := sha256.New()
		collected := false
		sweep := func() float64 {
			start := time.Now()
			for _, c := range cases {
				opts := c.opts
				opts.NoDelta = m.noDelta
				opts.NoBatch = m.noBatch
				res := acr.Repair(c.mk(), opts)
				if collected {
					continue
				}
				row.Validated += res.CandidatesValidated
				row.PrefixSims += res.PrefixSimulations
				row.DeltaReused += res.DeltaReused
				row.DeltaResimulated += res.DeltaResimulated
				row.Activations += res.SimActivations
				fmt.Fprintf(h, "case %s\n%s", c.name, res.Canonical())
			}
			collected = true
			return time.Since(start).Seconds()
		}
		row.WallSeconds = medianWall(sweep)
		row.CanonicalsSHA256 = hex.EncodeToString(h.Sum(nil))
		shas[row.CanonicalsSHA256] = true
		switch m.name {
		case "full":
			fullActs, fullWall = row.Activations, row.WallSeconds
		case "delta+batch":
			comboActs, comboWall = row.Activations, row.WallSeconds
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-12s %9.2fs %10d %10d %8d %8d %12d\n",
			m.name, row.WallSeconds, row.Validated, row.PrefixSims,
			row.DeltaReused, row.DeltaResimulated, row.Activations)
	}

	rep.Deterministic = len(shas) == 1
	fmt.Printf("\ndeterminism (Canonical() SHA across full/delta/delta+batch): ")
	if rep.Deterministic {
		fmt.Println("IDENTICAL")
	} else {
		fmt.Printf("DIVERGED (%d distinct)\n", len(shas))
	}
	if comboActs > 0 {
		rep.ActivationRatio = float64(fullActs) / float64(comboActs)
		fmt.Printf("activation reduction: full=%d delta+batch=%d → %.2fx fewer device·prefix units\n",
			fullActs, comboActs, rep.ActivationRatio)
	}
	if comboWall > 0 {
		rep.WallSpeedup = fullWall / comboWall
		fmt.Printf("wall speedup: %.2fx\n", rep.WallSpeedup)
	}

	if flagJSONDelta != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(flagJSONDelta, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", flagJSONDelta)
	}
}
