// Command acrbench regenerates the paper's tables and figures as text
// reports (the same computations as the root bench_test.go benchmarks,
// formatted for reading).
//
// Usage:
//
//	acrbench -exp table1|fig1|fig2|fig3|fig4|ablations|staticprior|resume|serve|parallel|delta|staticprune|templates|all
//	         [-size 48] [-seed 1] [-short] [-json BENCH_parallel.json]
//	         [-json-delta BENCH_delta.json]
//	         [-json-staticprune BENCH_staticprune.json]
//	         [-json-templates BENCH_templates.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"acr"
	"acr/internal/caseio"
	"acr/internal/core"
	"acr/internal/incidents"
	"acr/internal/journal"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/service"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig1, fig2, fig3, fig4, ablations, staticprior, hypothesis, resume, serve, parallel, delta, staticprune, templates, all")
	size := flag.Int("size", 48, "corpus size for corpus-driven experiments")
	seed := flag.Int64("seed", 1, "corpus seed")
	flag.BoolVar(&flagShort, "short", false, "smaller workloads (CI smoke runs)")
	flag.StringVar(&flagJSON, "json", "BENCH_parallel.json", "machine-readable output path for -exp parallel (empty = don't write)")
	flag.StringVar(&flagJSONDelta, "json-delta", "BENCH_delta.json", "machine-readable output path for -exp delta (empty = don't write)")
	flag.StringVar(&flagJSONStatic, "json-staticprune", "BENCH_staticprune.json", "machine-readable output path for -exp staticprune (empty = don't write)")
	flag.StringVar(&flagJSONTemplates, "json-templates", "BENCH_templates.json", "machine-readable output path for -exp templates (empty = don't write)")
	flag.Parse()
	run := func(name string, f func(int, int64)) {
		if *exp == name || *exp == "all" {
			fmt.Printf("==== %s ====\n", name)
			f(*size, *seed)
			fmt.Println()
		}
	}
	ran := false
	for _, e := range []struct {
		name string
		f    func(int, int64)
	}{
		{"table1", table1},
		{"fig1", fig1},
		{"fig2", fig2},
		{"fig3", fig3},
		{"fig4", fig4},
		{"ablations", ablations},
		{"staticprior", staticPrior},
		{"hypothesis", hypothesis},
		{"resume", resumeExp},
		{"serve", serveExp},
		{"parallel", parallelExp},
		{"delta", deltaExp},
		{"staticprune", staticPrune},
		{"templates", templatesExp},
	} {
		if *exp == e.name || *exp == "all" {
			ran = true
		}
		run(e.name, e.f)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "acrbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func corpus(size int, seed int64) []*acr.Incident {
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: size, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrbench:", err)
		os.Exit(1)
	}
	return incs
}

// table1 regenerates Table 1: the misconfiguration-type distribution.
func table1(size int, seed int64) {
	incs := corpus(size, seed)
	counts := map[acr.ErrorClass]int{}
	multi := map[acr.ErrorClass]int{}
	for _, inc := range incs {
		counts[inc.Class]++
		if inc.LinesChanged > 1 {
			multi[inc.Class]++
		}
	}
	fmt.Printf("%-8s %-42s %-6s %8s %9s %6s\n", "Configs", "Types", "Lines", "Paper", "Corpus", "Multi")
	for _, ci := range incidents.Table1 {
		n := counts[ci.Class]
		fmt.Printf("%-8s %-42s %-6s %7.1f%% %8.1f%% %6d\n",
			ci.Category, ci.Name, ci.Lines, ci.Ratio*100, 100*float64(n)/float64(len(incs)), multi[ci.Class])
	}
}

// fig1 regenerates Figure 1: resolving time, manual model vs measured ACR.
func fig1(size int, seed int64) {
	incs := corpus(size, seed)
	var manual, auto []float64
	repaired, visible := 0, 0
	for _, inc := range incs {
		manual = append(manual, inc.ManualMinutes)
		start := time.Now()
		r := acr.RunIncident(inc, acr.RepairOptions{})
		if r.BaseFailing == 0 {
			continue
		}
		visible++
		if r.Feasible {
			repaired++
			auto = append(auto, time.Since(start).Seconds())
		}
	}
	sort.Float64s(manual)
	sort.Float64s(auto)
	over30 := 0
	for _, m := range manual {
		if m > 30 {
			over30++
		}
	}
	fmt.Printf("manual model (n=%d): median=%.1f min  p90=%.1f min  max=%.0f min  >30min=%.1f%%  (paper: 16.6%% over 30 min, max >5h)\n",
		len(manual), q(manual, 0.5), q(manual, 0.9), manual[len(manual)-1], 100*float64(over30)/float64(len(manual)))
	fmt.Printf("ACR measured (n=%d repaired of %d visible): median=%.2f s  p90=%.2f s  max=%.2f s\n",
		len(auto), visible, q(auto, 0.5), q(auto, 0.9), q(auto, 1.0))
	fmt.Println("cumulative manual-time distribution (minutes):")
	for _, p := range []float64{0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		fmt.Printf("  p%02.0f = %8.1f\n", p*100, q(manual, p))
	}
}

func q(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// fig2 replays the §5 walk-through with narration.
func fig2(int, int64) {
	c := acr.Figure2Incident()
	rep := acr.Verify(c)
	fmt.Printf("incident: %d/%d intents failing\n", rep.NumFailed(), len(rep.Verdicts))
	for _, v := range rep.Failed() {
		fmt.Printf("  FAIL %s: %s\n", v.Intent, v.Reason)
	}
	out, err := acr.Simulate(c)
	if err != nil {
		fmt.Println("parse problems:", err)
	}
	fmt.Print(out.Describe())
	fmt.Println("\nstep 1 — localize (Tarantula, router A shown as in Figure 2b):")
	scores := acr.Localize(c)
	for _, s := range scores {
		if s.Line.Device != "A" {
			continue
		}
		fmt.Printf("  A:%2d susp=%.2f  %s\n", s.Line.Line, s.Susp, c.Configs["A"].Line(s.Line.Line))
	}
	fmt.Println("\nstep 2+3 — fix and validate (engine run):")
	res := acr.Repair(c, acr.RepairOptions{Strategy: core.BruteForce})
	fmt.Print(res.Summary())
	for _, d := range res.Diffs {
		fmt.Println(d)
	}
	repaired := &acr.Case{Name: "repaired", Topo: c.Topo, Configs: res.FinalConfigs, Intents: c.Intents}
	repOut, _ := acr.Simulate(repaired)
	fmt.Printf("after repair: %d failing, flapping=%v\n",
		acr.Verify(repaired).NumFailed(), repOut.FlappingPrefixes())
}

// fig3 regenerates the search-space comparison.
func fig3(int, int64) {
	type tc struct {
		name string
		mk   func() *acr.Case
	}
	cases := []tc{
		{"figure2", acr.Figure2Incident},
		{"wan-6x3x2", func() *acr.Case { return brokenWAN(6, 3, 2) }},
		{"wan-10x5x4", func() *acr.Case { return brokenWAN(10, 5, 4) }},
		{"wan-14x7x5", func() *acr.Case { return brokenWAN(14, 7, 5) }},
	}
	fmt.Printf("%-12s %8s %14s %10s %12s %12s\n", "network", "lines", "MetaProv(N)", "AED(2^N)", "ACR(gen)", "ACR(valid)")
	for _, t := range cases {
		c := t.mk()
		lines := 0
		for _, cfg := range c.Configs {
			lines += cfg.NumLines()
		}
		mp := acr.MetaProvRepair(t.mk())
		aed := acr.AEDRepair(t.mk(), acr.AEDOptions{MaxCandidates: 1})
		res := acr.Repair(c, acr.RepairOptions{Strategy: core.BruteForce})
		gen := 0
		for _, l := range res.Logs {
			gen += l.Generated
		}
		fmt.Printf("%-12s %8d %14d %10s %12d %12d\n",
			t.name, lines, mp.SearchSpace, fmt.Sprintf("2^%d", aed.SearchSpaceLog2), gen, res.CandidatesValidated)
	}
}

// brokenWAN injects an isolation leak (missing DCN prefix-list entry), a
// fault whose provenance grows with network size.
func brokenWAN(routers, pops, dcns int) *acr.Case {
	c := acr.WANBackbone(routers, pops, dcns, acr.GenOptions{StaticOriginEvery: 1, FullIsolation: true})
	for _, nd := range c.Topo.Nodes() {
		f := netcfg.MustParse(c.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g == nil || len(g.Policies) == 0 {
			continue
		}
		entries := f.PrefixListEntries(scenario.WANListDCN)
		if len(entries) < 2 {
			continue
		}
		next, err := (netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: entries[0].Line}}}).Apply(c.Configs[nd.Name])
		if err != nil {
			panic(err)
		}
		c.Configs[nd.Name] = next
		return c
	}
	panic("no injection site")
}

// fig4 runs the workflow over a corpus and prints aggregate behavior.
func fig4(size int, seed int64) {
	incs := corpus(size, seed)
	var results []*acr.IncidentRunResult
	perClass := map[acr.ErrorClass][2]int{} // repaired, visible
	for _, inc := range incs {
		r := acr.RunIncident(inc, acr.RepairOptions{})
		results = append(results, r)
		pc := perClass[inc.Class]
		if r.BaseFailing > 0 {
			pc[1]++
			if r.Feasible {
				pc[0]++
			}
		}
		perClass[inc.Class] = pc
	}
	agg := incidents.Aggregate(results)
	fmt.Printf("corpus: %d incidents, %d visible, %d repaired\n", agg.Total, agg.Visible, agg.Repaired)
	fmt.Printf("localization: top1=%d top5=%d top10=%d of %d\n", agg.Top1, agg.Top5, agg.Top10, agg.Visible)
	fmt.Printf("effort: mean iterations=%.2f, mean candidates validated=%.1f\n", agg.MeanIterations, agg.MeanValidated)
	fmt.Printf("robustness: improved-only=%d timed-out=%d candidates-panicked=%d validation-retries=%d\n",
		agg.Improved, agg.TimedOut, agg.CandidatesPanicked, agg.ValidationRetries)
	fmt.Println("per-class repair rate:")
	for _, ci := range incidents.Table1 {
		pc := perClass[ci.Class]
		fmt.Printf("  %-42s %d/%d\n", ci.Name, pc[0], pc[1])
	}
}

// ablations prints the design-choice comparisons of DESIGN.md §5.
func ablations(size int, seed int64) {
	incs := corpus(min(size, 18), seed)
	fmt.Println("suspiciousness formulas (ground-truth rank over corpus):")
	for _, f := range []acr.Formula{acr.Tarantula, acr.Ochiai, acr.Jaccard, acr.DStar} {
		top1, top5, top10 := 0, 0, 0
		for _, inc := range incs {
			ranks := acr.LocalizeWith(acr.IncidentCase(inc), f)
			best := 0
			for _, l := range inc.Scenario.FaultyLines {
				if r := sbfl.RankOf(ranks, l); r > 0 && (best == 0 || r < best) {
					best = r
				}
			}
			if best == 1 {
				top1++
			}
			if best >= 1 && best <= 5 {
				top5++
			}
			if best >= 1 && best <= 10 {
				top10++
			}
		}
		fmt.Printf("  %-10s top1=%2d top5=%2d top10=%2d (of %d)\n", f.Name, top1, top5, top10, len(incs))
	}
	fmt.Println("generation strategy on figure2:")
	for _, s := range []struct {
		name string
		st   core.Strategy
	}{{"bruteforce", core.BruteForce}, {"evolutionary", core.Evolutionary}} {
		res := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{Strategy: s.st, Seed: 11})
		fmt.Printf("  %-12s feasible=%v iterations=%d validated=%d\n", s.name, res.Feasible, res.Iterations, res.CandidatesValidated)
	}
	fmt.Println("validation mode on figure2 (prefix simulations during repair):")
	for _, m := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full", true}} {
		res := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{Strategy: core.BruteForce, FullValidation: m.full})
		fmt.Printf("  %-12s prefix-sims=%d intent-checks=%d\n", m.name, res.PrefixSimulations, res.IntentChecks)
	}
	fmt.Println("baselines on figure2:")
	mp := acr.MetaProvRepair(acr.Figure2Incident())
	fmt.Printf("  %s\n", mp.Summary())
	aed := acr.AEDRepair(acr.Figure2Incident(), acr.AEDOptions{})
	fmt.Printf("  %s\n", aed.Summary())
}

// staticPrior quantifies the static-analysis localization prior: per
// incident, a repair with the prior vs the ablated run, with the pruning
// counters that explain the saving (candidates skipped, iterations saved).
func staticPrior(size int, seed int64) {
	incs := corpus(min(size, 24), seed)
	fmt.Printf("%-34s %6s %12s %12s %10s %10s %8s\n",
		"incident", "diags", "validated", "(no prior)", "iters", "(no prior)", "pruned")
	totOn, totOff, saved := 0, 0, 0
	for _, inc := range incs {
		c := acr.IncidentCase(inc)
		on := acr.Repair(c, acr.RepairOptions{Strategy: core.BruteForce, Seed: seed})
		if on.BaseFailing == 0 {
			continue // injection invisible to the intent suite
		}
		off := acr.Repair(c, acr.RepairOptions{Strategy: core.BruteForce, Seed: seed, NoStaticPrior: true})
		totOn += on.CandidatesValidated
		totOff += off.CandidatesValidated
		saved += off.CandidatesValidated - on.CandidatesValidated
		fmt.Printf("%-34s %6d %12d %12d %10d %10d %8d\n",
			inc.ID, on.StaticDiagnostics, on.CandidatesValidated, off.CandidatesValidated,
			on.Iterations, off.Iterations, on.TemplatesPrunedStatic)
	}
	if totOff > 0 {
		fmt.Printf("total candidates validated: %d with prior vs %d without (%d saved, %.0f%%)\n",
			totOn, totOff, saved, 100*float64(saved)/float64(totOff))
	}
	fmt.Println("\nfigure2:")
	on := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{Strategy: core.BruteForce})
	off := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{Strategy: core.BruteForce, NoStaticPrior: true})
	fmt.Printf("  with prior:    %s", on.Summary())
	fmt.Printf("  without prior: %s", off.Summary())
}

// resumeExp measures the write-ahead journal's overhead: the same corpus
// repairs with journaling off, synced on checkpoints (the default), synced
// on every record, and never synced, plus the WAL footprint per mode.
func resumeExp(size int, seed int64) {
	incs := corpus(min(size, 12), seed)
	modes := []struct {
		name string
		on   bool
		sync journal.SyncMode
	}{
		{"off", false, journal.SyncOnCheckpoint},
		{"sync-checkpoint", true, journal.SyncOnCheckpoint},
		{"sync-always", true, journal.SyncAlways},
		{"sync-never", true, journal.SyncNever},
	}
	fmt.Printf("%-16s %10s %10s %12s %10s %12s\n",
		"journal", "wall", "iters", "iters/s", "records", "WAL bytes")
	var baseline time.Duration
	for _, m := range modes {
		var wall time.Duration
		iters, records, bytes := 0, 0, int64(0)
		for _, inc := range incs {
			c := acr.IncidentCase(inc)
			opts := acr.RepairOptions{Seed: seed}
			dir := ""
			if m.on {
				var err error
				if dir, err = os.MkdirTemp("", "acrbench-journal"); err != nil {
					fmt.Fprintln(os.Stderr, "acrbench:", err)
					os.Exit(1)
				}
				w, err := acr.CreateJournal(dir, c, opts)
				if err != nil {
					fmt.Fprintln(os.Stderr, "acrbench:", err)
					os.Exit(1)
				}
				w.Sync = m.sync
				opts.Journal = w
			}
			start := time.Now()
			res := acr.Repair(c, opts)
			wall += time.Since(start)
			iters += res.Iterations
			if m.on {
				records += opts.Journal.Appends()
				opts.Journal.Close()
				if st, err := os.Stat(journal.WALPath(dir)); err == nil {
					bytes += st.Size()
				}
				os.RemoveAll(dir)
			}
		}
		if !m.on {
			baseline = wall
		}
		rate := 0.0
		if wall > 0 {
			rate = float64(iters) / wall.Seconds()
		}
		fmt.Printf("%-16s %10s %10d %12.1f %10d %12d", m.name, wall.Round(time.Millisecond), iters, rate, records, bytes)
		if m.on && baseline > 0 {
			fmt.Printf("  (%+.1f%% vs off)", 100*(wall.Seconds()-baseline.Seconds())/baseline.Seconds())
		}
		fmt.Println()
	}
}

// hypothesis measures the §6 plastic surgery hypothesis: intra-role vs
// inter-role configuration similarity, and the role-consensus lines a
// deviant device lacks.
func hypothesis(int, int64) {
	fmt.Println("fat-tree k=6:")
	fmt.Print(acr.AnalyzeRoles(acr.FatTreeDCN(6, acr.GenOptions{})).String())
	fmt.Println("\nwan 8x4x3:")
	fmt.Print(acr.AnalyzeRoles(acr.WANBackbone(8, 4, 3, acr.GenOptions{StaticOriginEvery: 2})).String())

	c := acr.FatTreeDCN(4, acr.GenOptions{})
	f := netcfg.MustParse(c.Configs["leaf1-0"])
	next, err := (netcfg.EditSet{Device: "leaf1-0", Edits: []netcfg.Edit{
		netcfg.DeleteLine{At: f.BGP.Networks[0].Line},
	}}).Apply(c.Configs["leaf1-0"])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	c.Configs["leaf1-0"] = next
	fmt.Println("\nafter deleting leaf1-0's origination, its role-consensus gaps:")
	for _, m := range acr.MissingRoleShapes(c, "leaf1-0", 0.75) {
		fmt.Printf("  %-40s e.g. %q (from %s, %.0f%% of peers)\n",
			m.Normalized, m.Example, m.FromDevice, 100*m.PeerShare)
	}
}

// serveExp measures the repair daemon's throughput: a corpus slice
// submitted to an in-process service.Server at several worker-pool sizes,
// reported as jobs/sec. Jobs go through the full service path — admission,
// persistence, journal, engine — so the numbers include the daemon's
// durability tax, not just raw engine time.
func serveExp(size int, seed int64) {
	incs := corpus(min(size, 12), seed)
	fmt.Printf("%-8s %6s %10s %10s %12s\n", "workers", "jobs", "wall", "jobs/s", "speedup")
	var baseline time.Duration
	for _, workers := range []int{1, 4, 8} {
		dir, err := os.MkdirTemp("", "acrbench-serve")
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		srv, err := service.New(service.Config{
			StateDir: dir, Workers: workers, QueueCap: len(incs) + 1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		srv.Start()
		start := time.Now()
		ids := make([]string, 0, len(incs))
		for i, inc := range incs {
			u := caseio.ToUpload(inc.Scenario)
			job, err := srv.Submit(service.JobRequest{Case: &u, Seed: seed + int64(i)})
			if err != nil {
				fmt.Fprintln(os.Stderr, "acrbench:", err)
				os.Exit(1)
			}
			ids = append(ids, job.ID)
		}
		for done := 0; done < len(ids); {
			done = 0
			for _, id := range ids {
				if job, ok := srv.Job(id); ok && job.State.Terminal() {
					done++
				}
			}
			if done < len(ids) {
				time.Sleep(5 * time.Millisecond)
			}
		}
		wall := time.Since(start)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(ctx)
		cancel()
		os.RemoveAll(dir)
		if workers == 1 {
			baseline = wall
		}
		speedup := 1.0
		if wall > 0 && baseline > 0 {
			speedup = baseline.Seconds() / wall.Seconds()
		}
		fmt.Printf("%-8d %6d %10s %10.2f %11.2fx\n",
			workers, len(incs), wall.Round(time.Millisecond),
			float64(len(incs))/wall.Seconds(), speedup)
	}
}
