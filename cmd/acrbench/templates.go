package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"acr/internal/core"
	"acr/internal/incidents"
	"acr/internal/tmplreg"
	"acr/internal/tmplreg/conformance"
	"acr/internal/tmplreg/mine"
)

// flagJSONTemplates names the machine-readable output of -exp templates.
var flagJSONTemplates string

// minedPairsDir is the held-out historical-diff corpus the miner learns
// from (repo-relative; the experiment skips the ablation when absent).
const minedPairsDir = "internal/tmplreg/mine/testdata"

// templateAblationRow compares the builtin library against mined-only
// templates over incidents of one error class.
type templateAblationRow struct {
	Class           string  `json:"class"`
	Incidents       int     `json:"incidents"`
	BuiltinRepaired int     `json:"builtinRepaired"`
	MinedRepaired   int     `json:"minedRepaired"`
	BuiltinIters    float64 `json:"builtinMeanIterations"`
	MinedIters      float64 `json:"minedMeanIterations"`
}

// templatesReport is the BENCH_templates.json schema: the full conformance
// table over the builtin registry plus the mined-vs-builtin ablation,
// kept as a baseline for future registry changes.
type templatesReport struct {
	GeneratedAt    string                       `json:"generatedAt"`
	GoVersion      string                       `json:"goVersion"`
	Seed           int64                        `json:"seed"`
	RegistryDigest string                       `json:"registryDigest"`
	Conformance    []conformance.TemplateResult `json:"conformance"`
	MinedAdmitted  []string                     `json:"minedAdmitted"`
	Ablation       []templateAblationRow        `json:"ablation,omitempty"`
}

// templatesExp regenerates the template-registry experiment: (1) the
// conformance table — every builtin template run by the admission harness
// against injected incidents of its own declared class; (2) the
// mined-vs-builtin ablation — incidents of the classes the miner learned
// from the held-out diff corpus, repaired once with the full builtin
// library and once with ONLY the mined templates, comparing repair rate
// and search effort. The mined library matching the builtin repair rate on
// its classes is the evidence that diff mining recovers working operators.
func templatesExp(size int, seed int64) {
	copts := conformance.Options{Seeds: []int64{seed, seed + 1}, MaxIterations: 30}
	if flagShort {
		copts.Seeds = []int64{seed}
	}
	reg := tmplreg.NewBuiltin()
	rep, err := conformance.Run(reg, copts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrbench:", err)
		os.Exit(1)
	}
	out := templatesReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		Seed:           seed,
		RegistryDigest: reg.Digest(),
		Conformance:    rep.Results,
	}
	fmt.Printf("conformance over registry %.12s (%d templates)\n", reg.Digest(), len(rep.Results))
	fmt.Printf("%-6s %-29s %-42s %-10s %s\n", "", "Template", "Class", "Provenance", "Repaired")
	for _, tr := range rep.Results {
		verdict := "PASS"
		if !tr.Conformant {
			verdict = "FAIL"
		}
		fmt.Printf("%-6s %-29s %-42s %-10s %d/%d\n", verdict, tr.Name, tr.Class, tr.Provenance, tr.Repaired, tr.Attempts)
	}

	// Mined-vs-builtin ablation over the classes the miner learned.
	pairs, err := mine.LoadDir(minedPairsDir)
	if err != nil {
		fmt.Printf("\nablation skipped: %v (run from the repository root)\n", err)
		writeTemplatesJSON(out)
		return
	}
	cands, err := mine.Mine(pairs, mine.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrbench:", err)
		os.Exit(1)
	}
	admitted, _, err := mine.Admit(reg, cands, copts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrbench:", err)
		os.Exit(1)
	}
	out.MinedAdmitted = admitted
	fmt.Printf("\nmined %d candidate(s) from %s, admitted %v\n", len(cands), minedPairsDir, admitted)

	perClass := 8
	if flagShort {
		perClass = 3
	}
	builtinLib := reg.EngineTemplates()
	for _, c := range cands {
		name := c.Meta.Name
		isAdmitted := false
		for _, a := range admitted {
			isAdmitted = isAdmitted || a == name
		}
		if !isAdmitted {
			continue
		}
		minedLib, err := reg.Resolve(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrbench:", err)
			os.Exit(1)
		}
		ic, ok := incidents.ByClass(c.Meta.Class)
		if !ok {
			continue
		}
		row := templateAblationRow{Class: string(c.Meta.Class)}
		var bIters, mIters int
		for i := 0; i < perClass; i++ {
			inc, err := incidents.InjectVariant(ic, 0, incidents.CorpusOptions{}, rand.New(rand.NewSource(seed+int64(i))))
			if err != nil || !incidents.Visible(inc) {
				continue
			}
			row.Incidents++
			p := core.Problem{Topo: inc.Scenario.Topo, Configs: inc.Scenario.Configs, Intents: inc.Scenario.Intents}
			b := core.Repair(p, core.Options{Templates: builtinLib, MaxIterations: 40, Seed: seed + int64(i)})
			m := core.Repair(p, core.Options{Templates: minedLib, MaxIterations: 40, Seed: seed + int64(i)})
			if b.Feasible {
				row.BuiltinRepaired++
			}
			if m.Feasible {
				row.MinedRepaired++
			}
			bIters += b.Iterations
			mIters += m.Iterations
		}
		if row.Incidents > 0 {
			row.BuiltinIters = float64(bIters) / float64(row.Incidents)
			row.MinedIters = float64(mIters) / float64(row.Incidents)
		}
		out.Ablation = append(out.Ablation, row)
	}
	fmt.Printf("%-42s %-10s %-16s %-16s %-10s %s\n", "Class", "Incidents", "Builtin repairs", "Mined repairs", "Iter(b)", "Iter(m)")
	for _, r := range out.Ablation {
		fmt.Printf("%-42s %-10d %-16d %-16d %-10.1f %.1f\n",
			r.Class, r.Incidents, r.BuiltinRepaired, r.MinedRepaired, r.BuiltinIters, r.MinedIters)
	}
	writeTemplatesJSON(out)
}

func writeTemplatesJSON(out templatesReport) {
	if flagJSONTemplates == "" {
		return
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(flagJSONTemplates, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "acrbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", flagJSONTemplates)
}
