package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"acr/internal/tmplreg"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTemplatesListJSONGolden pins the exact JSON of `acr templates list
// -json` over the builtin registry: name-sorted entries, every descriptor
// field, and the registry digest. Any change to a builtin descriptor —
// rename, reclassification, version bump — surfaces here as a reviewed
// diff, because the same digests decide whether journaled sessions can
// resume.
func TestTemplatesListJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := templatesList(&buf, tmplreg.NewBuiltin(), true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "templates_list.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/acr -run TemplatesListJSONGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("templates list JSON drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTemplatesListDeterministic: repeated renders are byte-identical —
// the ordering contract -json consumers rely on.
func TestTemplatesListDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := templatesList(&buf, tmplreg.NewBuiltin(), true); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("render %d differs from the first", i)
		}
	}
}
