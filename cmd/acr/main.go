// Command acr runs the Automatic Configuration Repair pipeline on a case:
// verify intents, localize suspicious configuration lines, or repair.
//
// Usage:
//
//	acr verify   (-builtin <name> | -dir <casedir>)
//	acr simulate (-builtin <name> | -dir <casedir>)
//	acr lint     (-builtin <name> | -dir <casedir>) [-json] [-severity info]
//	acr localize (-builtin <name> | -dir <casedir>) [-formula tarantula] [-top 15]
//	acr repair   (-builtin <name> | -dir <casedir>) [-strategy evolutionary] [-seed 0] [-out <dir>]
//	             [-journal <dir> [-resume]] [-p <workers>] [-no-cache] [-o text|json]
//	             [-cache-dir <dir> [-cache-max-bytes <n>]]
//	acr serve    -state-dir <dir> [-addr 127.0.0.1:7365] [-workers 2] [-queue-cap 64]
//	             [-job-parallelism <n>] [-debug-addr 127.0.0.1:6060]
//	             [-cache-dir <dir>|none] [-cache-max-bytes <n>]
//	             [-peers <addr,addr,...> -fleet-dir <dir> [-advertise <addr>]
//	              [-lease-ttl 15s] [-health-interval 1s]]
//	acr cache    (stats|verify|gc) -cache-dir <dir> [-cache-max-bytes <n>] [-json]
//	acr templates list [-json]
//	acr templates describe [-json] <name>
//	acr templates conform [-names a,b] [-seeds 1,2] [-max-iter 30] [-json]
//	acr templates mine -pairs <dir> [-min-support 1] [-admit] [-json]
//
// templates is the CLI face of the change-template registry
// (internal/tmplreg): list and describe the registered operators, run the
// conformance admission harness (exit 1 when any template is rejected),
// and mine candidate templates from historical before/after config diffs.
//
// lint exits 0 when clean, 1 when findings are at or above the -severity
// threshold, and 2 when a configuration failed to parse.
//
// repair -journal writes a crash-safe write-ahead journal; if the process
// dies mid-run, repair -journal <dir> -resume continues the session from
// its last checkpoint and, with the same -seed, reproduces the exact
// result of an uninterrupted run. A resumed run that reaches feasibility
// exits 5 (see exit.go for the full table).
//
// repair -cache-dir layers a persistent, corruption-tolerant evaluation
// store under the in-memory cache: repeated repairs of the same incident
// read fitness values from disk instead of re-simulating. The store is
// advisory — corrupt or unreadable entries are quarantined and degrade to
// cache misses, and the repair result is byte-identical with or without
// it. serve opens one automatically under -state-dir (or the shared
// -fleet-dir in fleet mode, deduplicating evaluations fleet-wide);
// -cache-dir none disables it. acr cache inspects, verifies, and compacts
// a store directory; cache verify exits 1 when it quarantines entries.
//
// Builtins: figure2 (the paper's worked incident), figure2-repaired,
// dcn4, wan. Case directories follow the format documented in
// internal/caseio.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"acr"
	"acr/internal/caseio"
	"acr/internal/chaos"
	"acr/internal/core"
	"acr/internal/evalstore"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "verify":
		err = runVerify(args)
	case "simulate":
		err = runSimulate(args)
	case "lint":
		err = runLint(args)
	case "localize":
		err = runLocalize(args)
	case "repair":
		err = runRepair(args)
	case "serve":
		err = runServe(args)
	case "cache":
		err = runCache(args)
	case "templates":
		err = runTemplates(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "acr:", err)
		var ee *exitError
		if errors.As(err, &ee) {
			os.Exit(ee.code)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: acr <verify|simulate|lint|localize|repair|serve|cache|templates> [flags]
  -builtin figure2|figure2-repaired|dcn4|wan   use a built-in case
  -dir <casedir>                               load a case directory
run "acr <cmd> -h" for command flags`)
}

func caseFlags(fs *flag.FlagSet) (builtin, dir *string) {
	builtin = fs.String("builtin", "", "built-in case: figure2, figure2-repaired, dcn4, wan")
	dir = fs.String("dir", "", "case directory (see internal/caseio)")
	return
}

func loadCase(builtin, dir string) (*acr.Case, error) {
	switch {
	case builtin != "" && dir != "":
		return nil, fmt.Errorf("-builtin and -dir are mutually exclusive")
	case builtin != "":
		switch builtin {
		case "figure2":
			return acr.Figure2Incident(), nil
		case "figure2-repaired":
			return acr.Figure2Repaired(), nil
		case "dcn4":
			return acr.FatTreeDCN(4, acr.GenOptions{WithScrubber: true, StaticOriginEvery: 2}), nil
		case "wan":
			return acr.WANBackbone(6, 4, 3, acr.GenOptions{StaticOriginEvery: 2}), nil
		default:
			return nil, fmt.Errorf("unknown builtin %q", builtin)
		}
	case dir != "":
		s, err := caseio.Load(dir)
		if err != nil {
			return nil, err
		}
		return &acr.Case{Name: s.Name, Topo: s.Topo, Configs: s.Configs, Intents: s.Intents, Notes: s.Notes}, nil
	default:
		return nil, fmt.Errorf("one of -builtin or -dir is required")
	}
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	builtin, dir := caseFlags(fs)
	fs.Parse(args)
	c, err := loadCase(*builtin, *dir)
	if err != nil {
		return err
	}
	rep := acr.Verify(c)
	fmt.Printf("case %s: %d intents, %d failing\n", c.Name, len(rep.Verdicts), rep.NumFailed())
	fmt.Print(rep.Summary())
	if rep.NumFailed() > 0 {
		os.Exit(1)
	}
	return nil
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	builtin, dir := caseFlags(fs)
	fs.Parse(args)
	c, err := loadCase(*builtin, *dir)
	if err != nil {
		return err
	}
	out, err := acr.Simulate(c)
	if err != nil {
		// Broken lines are repair candidates, not fatal here: report and
		// keep the outcome for the statements that parsed.
		fmt.Fprintln(os.Stderr, "acr: warning:", err)
	}
	fmt.Print(out.Describe())
	return nil
}

func runLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	builtin, dir := caseFlags(fs)
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	sevFlag := fs.String("severity", "info", "minimum severity to report: info, warning, error")
	fs.Parse(args)
	min, err := acr.ParseSeverity(*sevFlag)
	if err != nil {
		return err
	}
	c, err := loadCase(*builtin, *dir)
	if err != nil {
		// A case that cannot be loaded is indistinguishable from one that
		// cannot be parsed: exit 2, like a parse error.
		fmt.Fprintln(os.Stderr, "acr:", err)
		os.Exit(2)
	}
	res := acr.Lint(c)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Case string `json:"case"`
			*acr.LintResult
		}{c.Name, res}); err != nil {
			return err
		}
	} else {
		fmt.Printf("case %s: %d device(s)\n", c.Name, len(c.Configs))
		fmt.Print(res.Format(min))
	}
	switch {
	case len(res.ParseErrors) > 0:
		os.Exit(2)
	case len(res.Filter(min)) > 0:
		os.Exit(1)
	}
	return nil
}

func runLocalize(args []string) error {
	fs := flag.NewFlagSet("localize", flag.ExitOnError)
	builtin, dir := caseFlags(fs)
	formula := fs.String("formula", "tarantula", "suspiciousness formula: tarantula, ochiai, jaccard, dstar")
	top := fs.Int("top", 15, "lines to print")
	fs.Parse(args)
	c, err := loadCase(*builtin, *dir)
	if err != nil {
		return err
	}
	var f acr.Formula
	switch *formula {
	case "tarantula":
		f = acr.Tarantula
	case "ochiai":
		f = acr.Ochiai
	case "jaccard":
		f = acr.Jaccard
	case "dstar":
		f = acr.DStar
	default:
		return fmt.Errorf("unknown formula %q", *formula)
	}
	scores := acr.LocalizeWith(c, f)
	fmt.Printf("case %s: %s ranking, %d covered lines\n", c.Name, *formula, len(scores))
	fmt.Print(sbfl.Format(scores, *top))
	for i, s := range scores {
		if i >= *top {
			break
		}
		fmt.Printf("      %s\n", c.Configs[s.Line.Device].Line(s.Line.Line))
	}
	return nil
}

func runRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	builtin, dir := caseFlags(fs)
	strategy := fs.String("strategy", "evolutionary", "generation strategy: evolutionary or bruteforce")
	seed := fs.Int64("seed", 0, "random seed")
	outDir := fs.String("out", "", "write repaired case to this directory")
	maxIter := fs.Int("max-iterations", 0, "iteration cap (default 500)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the repair (0 = unlimited)")
	parallel := fs.Int("p", 0, "candidate-validation workers (0 = GOMAXPROCS); any value yields the identical repair")
	noCache := fs.Bool("no-cache", false, "disable the content-addressed evaluation cache (including -cache-dir)")
	cacheDir := fs.String("cache-dir", "", "persistent evaluation store directory, shared across runs and processes (empty = in-memory only)")
	cacheMax := fs.Int64("cache-max-bytes", 0, "persistent store byte budget (0 = 256 MiB); oldest entries evict first")
	noImpact := fs.Bool("no-impact", false, "disable static impact analysis (ablation: every candidate is fully scoped by the legacy dependency heuristic)")
	impactDiff := fs.Bool("impact-differential", false, "replay every pruned validation against a full simulation and fail the run on any divergence (soundness audit)")
	noDelta := fs.Bool("no-delta", false, "disable delta re-simulation (ablation: every affected prefix simulates from a cold start)")
	noBatch := fs.Bool("no-batch", false, "disable the sibling-candidate parse memo (ablation: each candidate re-parses its post-edit configs)")
	deltaDiff := fs.Bool("delta-differential", false, "replay every delta-simulated prefix against a cold full simulation and fail the run on any divergence (soundness audit)")
	journalDir := fs.String("journal", "", "write a crash-safe session journal to this directory")
	resume := fs.Bool("resume", false, "resume the crashed session journaled in -journal")
	crashAfter := fs.Int("crash-after-appends", 0, "testing hook: SIGKILL this process after N journal appends")
	output := fs.String("o", "text", "output format: text (human report) or json (the service API's result schema)")
	fs.Parse(args)
	if *output != "text" && *output != "json" {
		return fmt.Errorf("unknown output format %q", *output)
	}
	c, err := loadCase(*builtin, *dir)
	if err != nil {
		return err
	}
	opts := acr.RepairOptions{Seed: *seed, MaxIterations: *maxIter, MaxWallClock: *timeout,
		Parallelism: *parallel, NoCache: *noCache,
		NoImpact: *noImpact, ImpactDifferential: *impactDiff,
		NoDelta: *noDelta, NoBatch: *noBatch, DeltaDifferential: *deltaDiff}
	switch *strategy {
	case "evolutionary":
		opts.Strategy = core.Evolutionary
	case "bruteforce":
		opts.Strategy = core.BruteForce
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	if *resume && *journalDir == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	if *cacheDir != "" {
		// The store is advisory by contract: a directory that cannot be
		// opened costs simulations, not the repair.
		if es, err := evalstore.Open(*cacheDir, *cacheMax); err != nil {
			fmt.Fprintf(os.Stderr, "acr: warning: evaluation store %s unavailable (%v); continuing without it\n", *cacheDir, err)
		} else {
			defer es.Close()
			opts.Store = es
		}
	}
	if *journalDir != "" {
		var w *acr.JournalWriter
		if *resume {
			sess, err := acr.ReplayJournal(*journalDir)
			if err != nil {
				return fmt.Errorf("replay journal %s: %w", *journalDir, err)
			}
			if !sess.Resumable() {
				return fmt.Errorf("session in %s already completed (%s); nothing to resume",
					*journalDir, sess.Terminal.Termination)
			}
			if hdr := acr.SessionHeader(c, opts); sess.Header.CaseDigest != hdr.CaseDigest ||
				sess.Header.OptionsDigest != hdr.OptionsDigest {
				return fmt.Errorf("journal in %s was written for a different case or search (case %q, seed %d); refusing to resume",
					*journalDir, sess.Header.Case, sess.Header.Seed)
			}
			if sess.Truncated {
				fmt.Fprintf(os.Stderr, "acr: journal tail torn (%s); resuming from last checkpoint\n", sess.TruncatedReason)
			}
			if w, err = acr.ResumeJournal(*journalDir, sess); err != nil {
				return err
			}
			opts.Resume = sess
		} else if w, err = acr.CreateJournal(*journalDir, c, opts); err != nil {
			return err
		}
		defer w.Close()
		opts.Journal = w
	}
	if *crashAfter > 0 {
		if *journalDir == "" {
			return fmt.Errorf("-crash-after-appends requires -journal")
		}
		opts = chaos.New(chaos.Plan{CrashAfterAppends: *crashAfter, CrashKill: true}).Wire(opts)
	}
	res := acr.Repair(c, opts)
	if *output == "json" {
		// The same schema the service API returns, so scripts parse one
		// format no matter which front end ran the repair.
		data, err := json.MarshalIndent(service.NewResultJSON(res), "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		if res.Resumed {
			fmt.Printf("resumed journaled session from iteration %d\n", res.ResumedFrom)
		}
		fmt.Print(res.Report(c.Configs))
	}
	if *outDir != "" {
		// Write the best-effort configs even when infeasible: a partial
		// repair that fixes some intents is still worth inspecting.
		configs := res.FinalConfigs
		if configs == nil {
			configs = res.BestEffortConfigs
		}
		if configs != nil {
			s := &scenario.Scenario{Name: c.Name + "-repaired", Topo: c.Topo, Configs: configs, Intents: c.Intents}
			if err := caseio.Save(*outDir, s); err != nil {
				return err
			}
			// In json mode stdout is the machine-readable result; keep
			// human notes off it.
			note := os.Stdout
			if *output == "json" {
				note = os.Stderr
			}
			fmt.Fprintf(note, "repaired case written to %s\n", *outDir)
		}
	}
	if code := repairExitCode(res); code != 0 {
		os.Exit(code)
	}
	return nil
}
