package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"acr/internal/tmplreg"
	"acr/internal/tmplreg/conformance"
	"acr/internal/tmplreg/mine"
)

// runTemplates is `acr templates (list|describe|conform|mine)`: the CLI
// face of the change-template registry.
func runTemplates(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: acr templates <list|describe|conform|mine> [flags]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "list":
		return runTemplatesList(rest)
	case "describe":
		return runTemplatesDescribe(rest)
	case "conform":
		return runTemplatesConform(rest)
	case "mine":
		return runTemplatesMine(rest)
	}
	return fmt.Errorf("unknown templates subcommand %q (want list, describe, conform, or mine)", sub)
}

func runTemplatesList(args []string) error {
	fs := flag.NewFlagSet("templates list", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the registry as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return templatesList(os.Stdout, tmplreg.Default, *asJSON)
}

// templatesList renders the registry. Registry.List is name-sorted, so
// both renderings are deterministic — the -json form is pinned by a golden
// test.
func templatesList(w io.Writer, reg *tmplreg.Registry, asJSON bool) error {
	entries := reg.List()
	if asJSON {
		return writeJSON(w, struct {
			RegistryDigest string          `json:"registryDigest"`
			Templates      []tmplreg.Entry `json:"templates"`
		}{reg.Digest(), entries})
	}
	fmt.Fprintf(w, "%d template(s), registry digest %.12s\n", len(entries), reg.Digest())
	for _, e := range entries {
		fmt.Fprintf(w, "%-28s %-10s %-8s %-45s %s\n", e.Name, e.Version, e.Provenance, e.Class, e.Description)
	}
	return nil
}

func runTemplatesDescribe(args []string) error {
	fs := flag.NewFlagSet("templates describe", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the descriptor as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: acr templates describe [-json] <name>")
	}
	name := fs.Arg(0)
	e, ok := tmplreg.Default.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown template %q (see acr templates list)", name)
	}
	if *asJSON {
		return writeJSON(os.Stdout, e)
	}
	fmt.Printf("name:        %s\nversion:     %s\nprovenance:  %s\nclass:       %s\ndigest:      %s\ndescription: %s\nuse case:    %s\n",
		e.Name, e.Version, e.Provenance, e.Class, e.Digest, e.Description, e.UseCase)
	return nil
}

func runTemplatesConform(args []string) error {
	fs := flag.NewFlagSet("templates conform", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the conformance report as JSON")
	names := fs.String("names", "", "comma-separated template names (default: all registered)")
	seeds := fs.String("seeds", "1,2", "comma-separated engine seeds per fault variant")
	maxIter := fs.Int("max-iter", 30, "iteration budget per single-template repair run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := conformance.Options{MaxIterations: *maxIter}
	for _, s := range strings.Split(*seeds, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return fmt.Errorf("-seeds: %v", err)
		}
		opts.Seeds = append(opts.Seeds, n)
	}
	if *names != "" {
		opts.Names = strings.Split(*names, ",")
	}
	rep, err := conformance.Run(tmplreg.Default, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, rep); err != nil {
			return err
		}
	} else {
		printConformance(os.Stdout, rep)
	}
	if rejected := rep.Rejected(); len(rejected) > 0 {
		return &exitError{code: 1, err: fmt.Errorf("%d template(s) rejected: %s", len(rejected), strings.Join(rejected, ", "))}
	}
	return nil
}

func printConformance(w io.Writer, rep *conformance.Report) {
	fmt.Fprintf(w, "conformance over registry %.12s\n", rep.RegistryDigest)
	for _, tr := range rep.Results {
		verdict := "PASS"
		if !tr.Conformant {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-4s %-28s %-45s repaired %d/%d\n", verdict, tr.Name, tr.Class, tr.Repaired, tr.Attempts)
		for _, r := range tr.Reasons {
			fmt.Fprintf(w, "     - %s\n", r)
		}
	}
}

func runTemplatesMine(args []string) error {
	fs := flag.NewFlagSet("templates mine", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit mined candidates as JSON")
	pairsDir := fs.String("pairs", "", "directory of historical diffs: <pair>/{before,after}/<device>.cfg")
	minSupport := fs.Int("min-support", 1, "pairs that must exhibit a pattern before it is mined")
	admit := fs.Bool("admit", true, "run the conformance harness over mined candidates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pairsDir == "" {
		return fmt.Errorf("usage: acr templates mine -pairs <dir> [-min-support 1] [-admit] [-json]")
	}
	pairs, err := mine.LoadDir(*pairsDir)
	if err != nil {
		return err
	}
	cands, err := mine.Mine(pairs, mine.Options{MinSupport: *minSupport})
	if err != nil {
		return err
	}
	type minedOut struct {
		tmplreg.Meta
		Support  int      `json:"support"`
		Evidence []string `json:"evidence"`
		Admitted bool     `json:"admitted"`
	}
	out := struct {
		Pairs      int                 `json:"pairs"`
		Candidates []minedOut          `json:"candidates"`
		Report     *conformance.Report `json:"conformance,omitempty"`
	}{Pairs: len(pairs)}

	admitted := map[string]bool{}
	if *admit && len(cands) > 0 {
		names, rep, err := mine.Admit(tmplreg.Default, cands, conformance.Options{})
		if err != nil {
			return err
		}
		for _, n := range names {
			admitted[n] = true
		}
		out.Report = rep
	}
	for _, c := range cands {
		out.Candidates = append(out.Candidates, minedOut{
			Meta: c.Meta, Support: c.Support, Evidence: c.Evidence, Admitted: admitted[c.Meta.Name],
		})
	}
	if *asJSON {
		return writeJSON(os.Stdout, out)
	}
	fmt.Printf("mined %d candidate(s) from %d pair(s)\n", len(cands), len(pairs))
	for _, c := range out.Candidates {
		verdict := "candidate"
		if *admit {
			verdict = "REJECTED"
			if c.Admitted {
				verdict = "ADMITTED"
			}
		}
		fmt.Printf("%-9s %-28s %-45s support %d (%s)\n", verdict, c.Name, c.Class, c.Support, strings.Join(c.Evidence, ", "))
	}
	return nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
