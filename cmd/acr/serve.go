package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"acr/internal/chaos"
	"acr/internal/journal"
	"acr/internal/service"
)

// runServe starts the repair daemon: an HTTP/JSON API over a bounded
// worker pool, persisting every job under -state-dir with the crash-safe
// session journal. A SIGKILL'd daemon restarted on the same state
// directory resumes its in-flight jobs from their last checkpoints;
// SIGINT/SIGTERM drain gracefully (running jobs checkpoint and return to
// "queued" for the next boot).
//
// With -peers and -fleet-dir the daemon joins a repair fleet: jobs are
// placed on a consistent-hash ring over the members, leased while
// running, and adopted by a live peer when their owner dies (see
// DESIGN.md §12 and README "Running a fleet").
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7365", "listen address")
	stateDir := fs.String("state-dir", "", "job persistence directory (required)")
	workers := fs.Int("workers", 2, "worker-pool size")
	queueCap := fs.Int("queue-cap", service.DefaultQueueCap, "queued-job cap; a full queue answers 429")
	jobParallel := fs.Int("job-parallelism", 0, "per-job validation-worker budget (0 = GOMAXPROCS/workers)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before hard cancel")
	killAfter := fs.Int("kill-after-appends", 0, "testing hook: SIGKILL the daemon after N journal appends across all jobs")
	holdUntil := fs.String("hold-until", "", "testing hook: block journal appends until this file exists")
	peers := fs.String("peers", "", "comma-separated peer addresses; joins this node to a repair fleet")
	advertise := fs.String("advertise", "", "this node's address as it appears in peers' -peers lists (default -addr)")
	fleetDir := fs.String("fleet-dir", "", "shared fleet directory, same filesystem as every node's -state-dir (required with -peers)")
	leaseTTL := fs.Duration("lease-ttl", service.DefaultLeaseTTL, "job lease duration; expired leases on down nodes are adopted by peers")
	healthInterval := fs.Duration("health-interval", service.DefaultHealthInterval, "peer healthcheck period")
	cacheDir := fs.String("cache-dir", "", "persistent evaluation store directory (default <state-dir>/evalstore, or <fleet-dir>/evalstore in fleet mode; \"none\" disables)")
	cacheMax := fs.Int64("cache-max-bytes", 0, "persistent store byte budget (0 = 256 MiB)")
	fs.Parse(args)
	if *stateDir == "" {
		return fmt.Errorf("serve requires -state-dir")
	}
	// Probe the state dir up front so a bad unit file fails fast with a
	// distinct code instead of a generic error from deep in the store.
	if err := os.MkdirAll(*stateDir, 0o755); err != nil {
		return &exitError{exitServeState, fmt.Errorf("state dir: %w", err)}
	}
	cfg := service.Config{StateDir: *stateDir, Workers: *workers, QueueCap: *queueCap,
		JobParallelism: *jobParallel}
	if *peers != "" || *fleetDir != "" {
		if *fleetDir == "" {
			return &exitError{exitServeFleet, fmt.Errorf("-peers requires -fleet-dir")}
		}
		self := *advertise
		if self == "" {
			self = *addr
		}
		cfg.Fleet = &service.FleetConfig{
			Self:           self,
			Peers:          strings.Split(*peers, ","),
			Dir:            *fleetDir,
			LeaseTTL:       *leaseTTL,
			HealthInterval: *healthInterval,
		}
	}
	// The evaluation store defaults on: under the shared fleet directory in
	// fleet mode (every peer reads every peer's evaluations — a duplicate
	// incident costs the fleet one simulation set) or under the node's own
	// state directory otherwise.
	switch *cacheDir {
	case "none":
	case "":
		if cfg.Fleet != nil {
			cfg.CacheDir = filepath.Join(*fleetDir, "evalstore")
		} else {
			cfg.CacheDir = filepath.Join(*stateDir, "evalstore")
		}
	default:
		cfg.CacheDir = *cacheDir
	}
	cfg.CacheMaxBytes = *cacheMax
	var hooks []journal.AppendHook
	if *holdUntil != "" {
		// Crash tests submit a batch and then release it, so the kill
		// switch below cannot fire before the batch is fully submitted.
		hold := *holdUntil
		hooks = append(hooks, func(int, *journal.Record) error {
			for {
				if _, err := os.Stat(hold); err == nil {
					return nil
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
	if *killAfter > 0 {
		hooks = append(hooks, chaos.NewKillSwitch(*killAfter).Hook)
	}
	if len(hooks) > 0 {
		cfg.JournalHook = func(n int, rec *journal.Record) error {
			for _, h := range hooks {
				if err := h(n, rec); err != nil {
					return err
				}
			}
			return nil
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		if errors.Is(err, service.ErrFleetSetup) {
			return &exitError{exitServeFleet, err}
		}
		return &exitError{exitServeState, err}
	}
	if *debugAddr != "" {
		// The pprof import registers its handlers on http.DefaultServeMux;
		// serving that mux on a separate listener keeps profiling endpoints
		// off the API address. Anything other than loopback exposes heap and
		// goroutine dumps to the network, so warn rather than refuse.
		if host, _, err := net.SplitHostPort(*debugAddr); err != nil || !isLoopbackHost(host) {
			fmt.Fprintf(os.Stderr, "acr: warning: -debug-addr %s is not loopback; pprof exposes process internals\n", *debugAddr)
		}
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return &exitError{exitServeBind, fmt.Errorf("debug listener: %w", err)}
		}
		fmt.Printf("acr: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, nil)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return &exitError{exitServeBind, fmt.Errorf("listen %s: %w", *addr, err)}
	}
	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	if cfg.Fleet != nil {
		fmt.Printf("acr: serving on http://%s (state %s, %d workers, fleet %s + %d peers)\n",
			ln.Addr(), *stateDir, *workers, cfg.Fleet.Self, len(cfg.Fleet.Peers))
	} else {
		fmt.Printf("acr: serving on http://%s (state %s, %d workers)\n", ln.Addr(), *stateDir, *workers)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "acr: %s: draining (budget %s)\n", sig, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "acr: drain incomplete: %v (journals remain resumable)\n", err)
	}
	return nil
}

// isLoopbackHost reports whether host names or addresses the loopback
// interface (used to warn when -debug-addr would expose pprof).
func isLoopbackHost(host string) bool {
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}
