package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"acr/internal/chaos"
	"acr/internal/journal"
	"acr/internal/service"
)

// runServe starts the repair daemon: an HTTP/JSON API over a bounded
// worker pool, persisting every job under -state-dir with the crash-safe
// session journal. A SIGKILL'd daemon restarted on the same state
// directory resumes its in-flight jobs from their last checkpoints;
// SIGINT/SIGTERM drain gracefully (running jobs checkpoint and return to
// "queued" for the next boot).
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7365", "listen address")
	stateDir := fs.String("state-dir", "", "job persistence directory (required)")
	workers := fs.Int("workers", 2, "worker-pool size")
	queueCap := fs.Int("queue-cap", service.DefaultQueueCap, "queued-job cap; a full queue answers 429")
	jobParallel := fs.Int("job-parallelism", 0, "per-job validation-worker budget (0 = GOMAXPROCS/workers)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before hard cancel")
	killAfter := fs.Int("kill-after-appends", 0, "testing hook: SIGKILL the daemon after N journal appends across all jobs")
	holdUntil := fs.String("hold-until", "", "testing hook: block journal appends until this file exists")
	fs.Parse(args)
	if *stateDir == "" {
		return fmt.Errorf("serve requires -state-dir")
	}
	cfg := service.Config{StateDir: *stateDir, Workers: *workers, QueueCap: *queueCap,
		JobParallelism: *jobParallel}
	var hooks []journal.AppendHook
	if *holdUntil != "" {
		// Crash tests submit a batch and then release it, so the kill
		// switch below cannot fire before the batch is fully submitted.
		hold := *holdUntil
		hooks = append(hooks, func(int, *journal.Record) error {
			for {
				if _, err := os.Stat(hold); err == nil {
					return nil
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
	if *killAfter > 0 {
		hooks = append(hooks, chaos.NewKillSwitch(*killAfter).Hook)
	}
	if len(hooks) > 0 {
		cfg.JournalHook = func(n int, rec *journal.Record) error {
			for _, h := range hooks {
				if err := h(n, rec); err != nil {
					return err
				}
			}
			return nil
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		// The pprof import registers its handlers on http.DefaultServeMux;
		// serving that mux on a separate listener keeps profiling endpoints
		// off the API address. Anything other than loopback exposes heap and
		// goroutine dumps to the network, so warn rather than refuse.
		if host, _, err := net.SplitHostPort(*debugAddr); err != nil || !isLoopbackHost(host) {
			fmt.Fprintf(os.Stderr, "acr: warning: -debug-addr %s is not loopback; pprof exposes process internals\n", *debugAddr)
		}
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Printf("acr: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, nil)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("acr: serving on http://%s (state %s, %d workers)\n", ln.Addr(), *stateDir, *workers)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "acr: %s: draining (budget %s)\n", sig, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "acr: drain incomplete: %v (journals remain resumable)\n", err)
	}
	return nil
}

// isLoopbackHost reports whether host names or addresses the loopback
// interface (used to warn when -debug-addr would expose pprof).
func isLoopbackHost(host string) bool {
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}
