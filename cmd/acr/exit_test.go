package main

import (
	"testing"

	"acr/internal/core"
)

func TestRepairExitCode(t *testing.T) {
	cases := []struct {
		name string
		res  core.Result
		want int
	}{
		{"feasible", core.Result{Feasible: true, Termination: "feasible"}, exitFeasible},
		{"feasible after resume", core.Result{Feasible: true, Termination: "feasible", Resumed: true}, exitResumed},
		{"resumed but infeasible", core.Result{Termination: "exhausted", Resumed: true, Improved: true}, exitImproved},
		{"improved but exhausted", core.Result{Termination: "exhausted", Improved: true}, exitImproved},
		{"improved but iteration-capped", core.Result{Termination: "iteration-cap", Improved: true}, exitImproved},
		{"no progress, exhausted", core.Result{Termination: "exhausted"}, exitNoProgress},
		{"no progress, iteration-capped", core.Result{Termination: "iteration-cap"}, exitNoProgress},
		{"deadline with no progress", core.Result{Termination: "deadline"}, exitDeadline},
		{"deadline outranks improved", core.Result{Termination: "deadline", Improved: true}, exitDeadline},
		{"canceled", core.Result{Termination: "canceled"}, exitDeadline},
		{"canceled outranks improved", core.Result{Termination: "canceled", Improved: true}, exitDeadline},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := repairExitCode(&tc.res); got != tc.want {
				t.Errorf("repairExitCode(%+v) = %d, want %d", tc.res, got, tc.want)
			}
		})
	}
}
