package main

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"

	"acr/internal/core"
)

func TestRepairExitCode(t *testing.T) {
	cases := []struct {
		name string
		res  core.Result
		want int
	}{
		{"feasible", core.Result{Feasible: true, Termination: "feasible"}, exitFeasible},
		{"feasible after resume", core.Result{Feasible: true, Termination: "feasible", Resumed: true}, exitResumed},
		{"resumed but infeasible", core.Result{Termination: "exhausted", Resumed: true, Improved: true}, exitImproved},
		{"improved but exhausted", core.Result{Termination: "exhausted", Improved: true}, exitImproved},
		{"improved but iteration-capped", core.Result{Termination: "iteration-cap", Improved: true}, exitImproved},
		{"no progress, exhausted", core.Result{Termination: "exhausted"}, exitNoProgress},
		{"no progress, iteration-capped", core.Result{Termination: "iteration-cap"}, exitNoProgress},
		{"deadline with no progress", core.Result{Termination: "deadline"}, exitDeadline},
		{"deadline outranks improved", core.Result{Termination: "deadline", Improved: true}, exitDeadline},
		{"canceled", core.Result{Termination: "canceled"}, exitDeadline},
		{"canceled outranks improved", core.Result{Termination: "canceled", Improved: true}, exitDeadline},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := repairExitCode(&tc.res); got != tc.want {
				t.Errorf("repairExitCode(%+v) = %d, want %d", tc.res, got, tc.want)
			}
		})
	}
}

// serveExitCode runs runServe on a failing configuration and extracts the
// exitError code (0 = no exitError). Only startup-failure paths return
// from runServe, so these tests never block on a serving daemon.
func serveExitCode(t *testing.T, args []string) int {
	t.Helper()
	err := runServe(args)
	if err == nil {
		t.Fatalf("runServe(%v) succeeded, want startup failure", args)
	}
	var ee *exitError
	if !errors.As(err, &ee) {
		return 0
	}
	return ee.code
}

func TestServeStartupExitCodes(t *testing.T) {
	t.Run("state dir is a file", func(t *testing.T) {
		f := filepath.Join(t.TempDir(), "state")
		if err := os.WriteFile(f, []byte("not a dir"), 0o644); err != nil {
			t.Fatal(err)
		}
		if got := serveExitCode(t, []string{"-state-dir", f}); got != exitServeState {
			t.Errorf("exit code = %d, want %d (exitServeState)", got, exitServeState)
		}
	})
	t.Run("bind conflict", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		args := []string{"-state-dir", t.TempDir(), "-addr", ln.Addr().String()}
		if got := serveExitCode(t, args); got != exitServeBind {
			t.Errorf("exit code = %d, want %d (exitServeBind)", got, exitServeBind)
		}
	})
	t.Run("debug bind conflict", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		args := []string{"-state-dir", t.TempDir(), "-debug-addr", ln.Addr().String()}
		if got := serveExitCode(t, args); got != exitServeBind {
			t.Errorf("exit code = %d, want %d (exitServeBind)", got, exitServeBind)
		}
	})
	t.Run("peers without fleet dir", func(t *testing.T) {
		args := []string{"-state-dir", t.TempDir(), "-peers", "127.0.0.1:7366"}
		if got := serveExitCode(t, args); got != exitServeFleet {
			t.Errorf("exit code = %d, want %d (exitServeFleet)", got, exitServeFleet)
		}
	})
	t.Run("fleet dir is a file", func(t *testing.T) {
		f := filepath.Join(t.TempDir(), "fleet")
		if err := os.WriteFile(f, []byte("not a dir"), 0o644); err != nil {
			t.Fatal(err)
		}
		args := []string{"-state-dir", t.TempDir(), "-peers", "127.0.0.1:7366", "-fleet-dir", f}
		if got := serveExitCode(t, args); got != exitServeFleet {
			t.Errorf("exit code = %d, want %d (exitServeFleet)", got, exitServeFleet)
		}
	})
}
