package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"acr/internal/evalstore"
)

// runCache administers a persistent evaluation store directory:
//
//	acr cache stats  -cache-dir <dir>   entry count, bytes, quarantine size
//	acr cache verify -cache-dir <dir>   read+verify every entry; exit 1 if any fail
//	acr cache gc     -cache-dir <dir>   enforce the byte budget, purge quarantine
//
// All three adopt entries written by other processes (repairs, daemons,
// fleet peers) since the directory was last scanned.
func runCache(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cache requires a subcommand: stats, verify, or gc")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("cache "+sub, flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "persistent evaluation store directory (required)")
	cacheMax := fs.Int64("cache-max-bytes", 0, "store byte budget for gc (0 = 256 MiB)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fs.Parse(args)
	if *cacheDir == "" {
		return fmt.Errorf("cache %s requires -cache-dir", sub)
	}
	st, err := evalstore.Open(*cacheDir, *cacheMax)
	if err != nil {
		return fmt.Errorf("open evaluation store %s: %w", *cacheDir, err)
	}
	defer st.Close()

	emit := func(v any) error {
		if *asJSON {
			data, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		}
		return nil
	}
	switch sub {
	case "stats":
		s := st.Stats()
		if err := emit(s); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Printf("store %s: %d entries, %d bytes, %d quarantined\n",
				st.Dir(), s.Entries, s.Bytes, s.Quarantined)
		}
	case "verify":
		rep := st.Verify()
		if err := emit(rep); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Printf("store %s: checked %d, intact %d, corrupt %d, unreadable %d (%d bytes, %d quarantined)\n",
				st.Dir(), rep.Checked, rep.Intact, rep.Corrupt, rep.Unreadable, rep.Bytes, rep.Quarantined)
		}
		if rep.Corrupt+rep.Unreadable > 0 {
			os.Exit(1)
		}
	case "gc":
		rep := st.GC()
		if err := emit(rep); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Printf("store %s: %d entries, %d bytes after gc (evicted %d, purged %d quarantined, freed %d bytes)\n",
				st.Dir(), rep.Entries, rep.Bytes, rep.Evicted, rep.Purged, rep.FreedBytes)
		}
	default:
		return fmt.Errorf("unknown cache subcommand %q (want stats, verify, or gc)", sub)
	}
	return nil
}
