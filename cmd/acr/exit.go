package main

import "acr/internal/core"

// Exit codes for `acr repair`, so scripts can branch on the outcome
// without parsing the report.
const (
	exitFeasible   = 0 // all intents pass on the repaired configs
	exitImproved   = 2 // infeasible, but the best-effort repair fixes some intents
	exitNoProgress = 3 // infeasible and nothing improved
	exitDeadline   = 4 // the run was cut short by a deadline or cancellation
	exitResumed    = 5 // feasible, and the run resumed a crashed session (-resume)
)

// repairExitCode maps a repair result to the process exit code. A
// deadline/cancellation outranks "improved": a truncated run is a
// different operational condition than a completed-but-stuck one, and
// callers that care about partial progress can read Improved from the
// report. A feasible run that recovered a crashed session exits with the
// distinct exitResumed so recovery scripts can tell "repaired after a
// crash" from "repaired in one run".
func repairExitCode(res *core.Result) int {
	switch {
	case res.Feasible && res.Resumed:
		return exitResumed
	case res.Feasible:
		return exitFeasible
	case res.Termination == "deadline" || res.Termination == "canceled":
		return exitDeadline
	case res.Improved:
		return exitImproved
	default:
		return exitNoProgress
	}
}
