package main

import (
	"acr/internal/core"
	"acr/internal/service"
)

// Exit codes for `acr repair`, so scripts can branch on the outcome
// without parsing the report. The classification lives in
// internal/service (service.ExitCode): the daemon's API reports the same
// codes in ResultJSON.ExitCode, so a result means the same thing whether
// the CLI or the service produced it.
const (
	exitFeasible   = service.ExitFeasible        // all intents pass on the repaired configs
	exitImproved   = service.ExitImproved        // infeasible, but the best-effort repair fixes some intents
	exitNoProgress = service.ExitNoProgress      // infeasible and nothing improved
	exitDeadline   = service.ExitDeadline        // the run was cut short by a deadline or cancellation
	exitResumed    = service.ExitResumedFeasible // feasible, and the run resumed a crashed session (-resume)
)

// repairExitCode maps a repair result to the process exit code.
func repairExitCode(res *core.Result) int {
	return service.ExitCode(res)
}

// Exit codes for `acr serve` startup failures, so a supervisor can tell a
// misconfigured node (do not restart, fix the unit file) from a transient
// one (restart may help) without parsing stderr. They sit above the repair
// outcome codes (0-5).
const (
	exitServeState = 6 // -state-dir unusable (missing parent, not a directory, unwritable)
	exitServeBind  = 7 // listen address unavailable (-addr or -debug-addr)
	exitServeFleet = 8 // fleet configuration rejected (-peers / -advertise / -fleet-dir)
)

// exitError carries a specific process exit code up through main's single
// error path alongside the one-line diagnostic.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }
