// Quickstart: the smallest end-to-end use of the acr library.
//
// We generate a correct wide-area network, break it the way operators
// most often do (Table 1's top row: a static route that is no longer
// redistributed into BGP), then detect, localize, and repair the
// misconfiguration automatically.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"acr"
	"acr/internal/netcfg"
)

func main() {
	// A small WAN: 6 backbone routers, 3 PoPs, 2 DCNs. Every stub
	// originates its prefix via `ip route static ... null0` plus
	// `redistribute static`.
	c := acr.WANBackbone(6, 3, 2, acr.GenOptions{StaticOriginEvery: 1})
	fmt.Printf("generated %q: %d devices, %d intents\n", c.Name, len(c.Configs), len(c.Intents))

	// Sanity: the correct network satisfies its specification.
	if n := acr.Verify(c).NumFailed(); n != 0 {
		log.Fatalf("correct network fails %d intents?!", n)
	}

	// Break it: delete pop1's `redistribute static` line.
	f := netcfg.MustParse(c.Configs["pop1"])
	broken, err := (acr.EditSet{Device: "pop1", Edits: []netcfg.Edit{
		netcfg.DeleteLine{At: f.BGP.Redistribute.Line},
	}}).Apply(c.Configs["pop1"])
	if err != nil {
		log.Fatal(err)
	}
	c.Configs["pop1"] = broken

	// 1. Detect.
	report := acr.Verify(c)
	fmt.Printf("\nafter the misconfiguration, %d intents fail:\n", report.NumFailed())
	for _, v := range report.Failed() {
		fmt.Printf("  FAIL %s (%s)\n", v.Intent, v.Reason)
	}

	// 2. Localize: the suspicious lines point at pop1.
	fmt.Println("\ntop suspicious configuration lines (Tarantula):")
	for i, s := range acr.Localize(c) {
		if i == 5 {
			break
		}
		fmt.Printf("  %-12s susp=%.2f  %s\n", s.Line, s.Susp,
			c.Configs[s.Line.Device].Line(s.Line.Line))
	}

	// 3. Repair.
	res := acr.Repair(c, acr.RepairOptions{})
	if !res.Feasible {
		log.Fatalf("repair failed: %s", res.Summary())
	}
	fmt.Printf("\nrepaired in %d iteration(s), %d candidates validated:\n",
		res.Iterations, res.CandidatesValidated)
	for _, a := range res.Applied {
		fmt.Println("  applied:", a)
	}
	for _, d := range res.Diffs {
		fmt.Println(d)
	}

	// 4. Confirm.
	repaired := &acr.Case{Name: "repaired", Topo: c.Topo, Configs: res.FinalConfigs, Intents: c.Intents}
	fmt.Printf("verification after repair: %d failing intents\n", acr.Verify(repaired).NumFailed())
}
