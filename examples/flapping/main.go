// Flapping replays the paper's worked incident (§2.2/§5) step by step:
// the four-router backbone whose AS-path override policies disable BGP's
// loop prevention and set off a route flap for 10.0.0.0/16.
//
// The narration follows the paper: detect the flap, localize with
// Tarantula (A's line 9 scores 0.67), fix A's prefix-list with values
// solved from P ∧ ¬F ({10.70/16, 20.0/16}), observe the residual C–S
// problem, fix C in a second iteration, and validate.
//
// Run with: go run ./examples/flapping
package main

import (
	"fmt"
	"log"

	"acr"
	"acr/internal/netcfg"
	"acr/internal/scenario"
)

func main() {
	c := acr.Figure2Incident()
	fmt.Println("== The incident ==")
	fmt.Println(c.Notes)

	out, err := acr.Simulate(c)
	if err != nil {
		fmt.Println("parse problems:", err)
	}
	fmt.Println("\ncontrol-plane outcome:")
	fmt.Print(out.Describe())

	report := acr.Verify(c)
	fmt.Println("verification (one test per subnetwork, as in Figure 2b):")
	fmt.Print(report.Summary())

	// --- Iteration 1: localize --------------------------------------------
	fmt.Println("\n== Iteration 1: localize ==")
	scores := acr.Localize(c)
	fmt.Println("router A's lines (compare Figure 2b's suspiciousness column):")
	for _, s := range scores {
		if s.Line.Device == "A" {
			fmt.Printf("  line %2d  susp=%.2f  failed=%d passed=%d  %s\n",
				s.Line.Line, s.Susp, s.Failed, s.Passed, c.Configs["A"].Line(s.Line.Line))
		}
	}
	fmt.Println("the paper's result: line 9 is A's most suspicious at 0.67 ✓")

	// --- Iteration 1: fix A (the paper's guided step) ----------------------
	fmt.Println("\n== Iteration 1: fix ==")
	fmt.Println("template: symbolize the prefix-list behind line 9 and solve P ∧ ¬F:")
	fmt.Println("  P: 10.70.0.0/16 ∈ var ∧ 20.0.0.0/16 ∈ var   (keep the passing tests passing)")
	fmt.Println("  F: 10.0.0.0/16 ∈ var                        (stop rewriting the flapping prefix)")
	fmt.Println("  solved: var = {10.70.0.0/16, 20.0.0.0/16}   (the paper's assignment)")

	iv := acr.NewIncrementalVerifier(c)
	repairA := scenario.Figure2PaperRepair()[0]
	rep, stats, err := iv.Check([]acr.EditSet{repairA})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Iteration 1: validate (incremental: %s) ==\n", stats)
	fmt.Print(rep.Summary())
	fmt.Println("fitness stays 1 (not worse than before) → candidate preserved,")
	fmt.Println("exactly as in §5: \"merely modifying router A will create a")
	fmt.Println("forwarding loop between C and S\" — visible above in the reason.")

	// --- Iteration 2 --------------------------------------------------------
	if err := iv.Commit([]acr.EditSet{repairA}); err != nil {
		log.Fatal(err)
	}
	cAfterA := &acr.Case{Name: "after-A", Topo: c.Topo, Configs: iv.BaseConfigs(), Intents: c.Intents}
	fmt.Println("\n== Iteration 2: localize on the updated configuration ==")
	for _, s := range acr.Localize(cAfterA) {
		if s.Line.Device == "C" && s.Line.Line == scenario.FigureCLineDCNImport {
			fmt.Printf("  C's 'peer DCNSide route-policy Override_All import' scores %.2f (paper: 0.5)\n", s.Susp)
		}
	}
	repairC := scenario.Figure2PaperRepair()[1]
	rep2, _, err := iv.Check([]acr.EditSet{repairC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Iteration 2: fix C and validate ==\nfailing tests now: %d → feasible update found\n", rep2.NumFailed())

	// --- The autonomous engine ----------------------------------------------
	fmt.Println("\n== The engine, end to end ==")
	res := acr.Repair(acr.Figure2Incident(), acr.RepairOptions{})
	fmt.Print(res.Summary())
	for _, d := range res.Diffs {
		fmt.Println(d)
	}
	repaired := &acr.Case{Name: "repaired", Topo: c.Topo, Configs: res.FinalConfigs, Intents: c.Intents}
	repOut, err := acr.Simulate(repaired)
	if err != nil {
		fmt.Println("parse problems after repair:", err)
	}
	fmt.Printf("post-repair: %d failing intents, flapping prefixes: %v\n",
		acr.Verify(repaired).NumFailed(), repOut.FlappingPrefixes())
	_ = netcfg.LineRef{}
}
