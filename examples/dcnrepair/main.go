// DCNRepair exercises the repair pipeline on a data-center fabric: a
// 4-ary fat-tree with a scrubber appliance. Port-9999 flows from
// leaf0-0 must traverse the scrubber (waypoint intents, enforced by PBR
// on spine0-0). We inject the two PBR misconfiguration classes of
// Table 1 and let the engine repair each.
//
// Run with: go run ./examples/dcnrepair
package main

import (
	"fmt"
	"log"

	"acr"
	"acr/internal/netcfg"
)

func main() {
	base := acr.FatTreeDCN(4, acr.GenOptions{WithScrubber: true, StaticOriginEvery: 2})
	fmt.Printf("fabric %q: %d devices, %d links, %d intents\n",
		base.Name, len(base.Configs), len(base.Topo.Links), len(base.Intents))
	if n := acr.Verify(base).NumFailed(); n != 0 {
		log.Fatalf("correct fabric fails %d intents", n)
	}

	fmt.Println("\n--- incident 1: missing permit rule in PBR (Table 1, 12.5%) ---")
	missingRule()

	fmt.Println("\n--- incident 2: extra redirect rule in PBR (Table 1, 4.2%) ---")
	extraRule()
}

func missingRule() {
	c := acr.FatTreeDCN(4, acr.GenOptions{WithScrubber: true, StaticOriginEvery: 2})
	f := netcfg.MustParse(c.Configs["spine0-0"])
	pol := f.PBRPolicyByName("Scrub")
	r := pol.Rules[0]
	var dels []netcfg.Edit
	for l := r.Line; l <= r.End; l++ {
		dels = append(dels, netcfg.DeleteLine{At: l})
	}
	next, err := (acr.EditSet{Device: "spine0-0", Edits: dels}).Apply(c.Configs["spine0-0"])
	if err != nil {
		log.Fatal(err)
	}
	c.Configs["spine0-0"] = next
	runIncident(c)
}

func extraRule() {
	c := acr.FatTreeDCN(4, acr.GenOptions{WithScrubber: true, StaticOriginEvery: 2})
	f := netcfg.MustParse(c.Configs["spine0-0"])
	pol := f.PBRPolicyByName("Scrub")
	var leafAddr string
	for _, adj := range c.Topo.Adjacencies("spine0-0") {
		if adj.PeerNode == "leaf0-0" {
			leafAddr = adj.PeerAddr.String()
		}
	}
	dst := c.Topo.Node("leaf0-1").Originates[0]
	// A redirect bouncing leaf0-1's traffic back toward leaf0-0: loop.
	next, err := (acr.EditSet{Device: "spine0-0", Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: pol.Line + 1, Text: " rule 5 permit"},
		netcfg.InsertBefore{At: pol.Line + 1, Text: "  match destination " + dst.String()},
		netcfg.InsertBefore{At: pol.Line + 1, Text: "  apply next-hop " + leafAddr},
	}}).Apply(c.Configs["spine0-0"])
	if err != nil {
		log.Fatal(err)
	}
	c.Configs["spine0-0"] = next
	runIncident(c)
}

func runIncident(c *acr.Case) {
	rep := acr.Verify(c)
	fmt.Printf("failing intents: %d\n", rep.NumFailed())
	for _, v := range rep.Failed() {
		fmt.Printf("  FAIL %s: %s\n", v.Intent, v.Reason)
	}
	res := acr.Repair(c, acr.RepairOptions{})
	if !res.Feasible {
		log.Fatalf("repair failed: %s", res.Summary())
	}
	fmt.Printf("repaired in %d iteration(s): %v\n", res.Iterations, res.Applied)
	for _, d := range res.Diffs {
		fmt.Println(d)
	}
	repaired := &acr.Case{Name: "repaired", Topo: c.Topo, Configs: res.FinalConfigs, Intents: c.Intents}
	if n := acr.Verify(repaired).NumFailed(); n != 0 {
		log.Fatalf("still %d failing after repair", n)
	}
	fmt.Println("all intents pass after repair ✓")
}
