// Searchspace reproduces the Figure 3 comparison: how large a space each
// method searches for the same incident, as networks grow.
//
//   - MetaProv's space is the leaf predicates of the violated event's
//     provenance tree (Figure 3a) — small, but its single-line fixes are
//     validated only against the target violation.
//   - AED's space is the power set of per-line delta variables (Figure 3b)
//     — 2^N for N configuration lines.
//   - ACR's space is the leaf set of the template forest over the
//     suspicious lines (Figure 3c) — small AND validated against the whole
//     specification.
//
// Run with: go run ./examples/searchspace
package main

import (
	"fmt"
	"log"

	"acr"
	"acr/internal/core"
	"acr/internal/netcfg"
	"acr/internal/scenario"
)

func main() {
	fmt.Printf("%-12s %8s | %12s | %10s | %12s %12s\n",
		"network", "lines", "MetaProv(N)", "AED(2^N)", "ACR(space)", "ACR(tried)")
	for _, size := range []struct {
		name                string
		routers, pops, dcns int
	}{
		{"wan-6x3x2", 6, 3, 2},
		{"wan-8x4x3", 8, 4, 3},
		{"wan-12x6x4", 12, 6, 4},
		{"wan-16x8x6", 16, 8, 6},
	} {
		c := broken(size.routers, size.pops, size.dcns)
		lines := 0
		for _, cfg := range c.Configs {
			lines += cfg.NumLines()
		}
		mp := acr.MetaProvRepair(broken(size.routers, size.pops, size.dcns))
		aed := acr.AEDRepair(broken(size.routers, size.pops, size.dcns), acr.AEDOptions{MaxCandidates: 1})
		res := acr.Repair(c, acr.RepairOptions{Strategy: core.BruteForce})
		if !res.Feasible {
			log.Fatalf("%s: ACR infeasible", size.name)
		}
		gen := 0
		for _, l := range res.Logs {
			gen += l.Generated
		}
		fmt.Printf("%-12s %8d | %12d | %10s | %12d %12d\n",
			size.name, lines, mp.SearchSpace, fmt.Sprintf("2^%d", aed.SearchSpaceLog2),
			gen, res.CandidatesValidated)
	}
	fmt.Println("\nshape check (paper, Figure 3): MetaProv and ACR grow with the provenance /")
	fmt.Println("suspicious-line counts; AED's exponent grows with total configuration size.")
}

// broken injects an isolation leak: one backbone router's DCN prefix-list
// loses an entry, so that DCN prefix escapes toward the router's PoPs.
// The leaked prefix's derivations span the backbone, which is what makes
// the provenance tree (MetaProv's search space) grow with network size.
func broken(routers, pops, dcns int) *acr.Case {
	c := acr.WANBackbone(routers, pops, dcns, acr.GenOptions{StaticOriginEvery: 1, FullIsolation: true})
	for _, nd := range c.Topo.Nodes() {
		f := netcfg.MustParse(c.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g == nil || len(g.Policies) == 0 {
			continue
		}
		entries := f.PrefixListEntries(scenario.WANListDCN)
		if len(entries) < 2 {
			continue
		}
		next, err := (acr.EditSet{Device: nd.Name, Edits: []netcfg.Edit{
			netcfg.DeleteLine{At: entries[0].Line},
		}}).Apply(c.Configs[nd.Name])
		if err != nil {
			log.Fatal(err)
		}
		c.Configs[nd.Name] = next
		return c
	}
	log.Fatal("no injection site found")
	return nil
}
