// Regression demonstrates the paper's §6 test-generation direction on a
// network whose operator specification is too sparse: a configuration
// change leaks a DCN prefix to a PoP pair the specification never covers,
// so verification stays green. A differential regression suite — derived
// automatically from the last-known-good configuration — reveals the
// violation, localizes it, and the engine repairs it.
//
// Run with: go run ./examples/regression
package main

import (
	"fmt"
	"log"

	"acr"
	"acr/internal/netcfg"
	"acr/internal/scenario"
)

func main() {
	// The known-good network. Its operator spec has only two rotating
	// isolation pairs per PoP.
	good := acr.WANBackbone(8, 4, 3, acr.GenOptions{StaticOriginEvery: 2})
	fmt.Printf("baseline %q: %d devices, operator spec has %d intents\n",
		good.Name, len(good.Configs), len(good.Intents))

	// Derive the regression suite from the baseline BEFORE any change.
	diff := acr.DifferentialIntents(good, acr.DiffGenOptions{IncludeIsolation: true, MaxPairs: 128})
	fmt.Printf("differential suite derived from the baseline: %d intents\n", len(diff))

	// A change ships: someone removes an entry from a DCN prefix-list in a
	// spot the operator spec does not watch.
	broken, truth := injectInvisibleLeak()
	fmt.Printf("\nafter the change, the operator spec sees: %d failing intents (all green!)\n",
		acr.Verify(broken).NumFailed())

	// The regression suite sees it.
	augmented := &acr.Case{
		Name: "augmented", Topo: broken.Topo, Configs: broken.Configs,
		Intents: acr.MergeIntents(broken.Intents, diff),
	}
	rep := acr.Verify(augmented)
	fmt.Printf("the differential suite sees:  %d failing intents\n", rep.NumFailed())
	for _, v := range rep.Failed() {
		fmt.Printf("  FAIL %s (%s)\n", v.Intent, v.Reason)
	}

	// Localize and repair against the augmented suite.
	res := acr.Repair(augmented, acr.RepairOptions{})
	if !res.Feasible {
		log.Fatalf("repair failed: %s", res.Summary())
	}
	fmt.Printf("\nrepaired in %d iteration(s): %v\n", res.Iterations, res.Applied)
	for _, d := range res.Diffs {
		fmt.Println(d)
	}
	repairedCase := &acr.Case{Topo: augmented.Topo, Configs: res.FinalConfigs, Intents: augmented.Intents}
	fmt.Printf("after repair: %d failing\n", acr.Verify(repairedCase).NumFailed())
	fmt.Printf("(ground truth was the policy machinery around %v)\n", truth)
}

// injectInvisibleLeak deletes DCN prefix-list entries until one leak is
// invisible to the operator spec.
func injectInvisibleLeak() (*acr.Case, acr.LineRef) {
	for site := 0; site < 64; site++ {
		c := acr.WANBackbone(8, 4, 3, acr.GenOptions{StaticOriginEvery: 2})
		victim, line := leakSite(c, site)
		if victim == "" {
			break
		}
		next, err := (acr.EditSet{Device: victim, Edits: []netcfg.Edit{netcfg.DeleteLine{At: line}}}).Apply(c.Configs[victim])
		if err != nil {
			log.Fatal(err)
		}
		c.Configs[victim] = next
		if acr.Verify(c).NumFailed() == 0 {
			f := netcfg.MustParse(c.Configs[victim])
			g := f.GroupByName(scenario.WANGroupPoPFacing)
			return c, acr.LineRef{Device: victim, Line: g.Policies[0].Line}
		}
	}
	log.Fatal("no invisible leak site found")
	return nil, acr.LineRef{}
}

func leakSite(c *acr.Case, n int) (string, int) {
	idx := 0
	for _, nd := range c.Topo.Nodes() {
		f := netcfg.MustParse(c.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g == nil || len(g.Policies) == 0 {
			continue
		}
		for _, e := range f.PrefixListEntries(scenario.WANListDCN) {
			if idx == n {
				return nd.Name, e.Line
			}
			idx++
		}
	}
	return "", 0
}
