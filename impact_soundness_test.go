package acr_test

import (
	"testing"

	acr "acr"
)

// TestImpactDifferentialCorpus is the impact analysis's soundness
// regression net: every corpus incident is repaired with differential mode
// on, so every pruned validation (statically refuted candidates included)
// is replayed against a from-scratch full simulation and any disagreement
// terminates the run with "impact-divergence". In -short mode a sample
// runs; the full 120-incident sweep is the CI nightly job.
func TestImpactDifferentialCorpus(t *testing.T) {
	size := 120
	if testing.Short() {
		size = 12
	}
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: size, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	refuted, scoped, broad := 0, 0, 0
	for _, inc := range incs {
		r := acr.RunIncident(inc, acr.RepairOptions{ImpactDifferential: true})
		if r.Termination == "impact-divergence" {
			t.Errorf("%s: impact analysis diverged from full simulation", inc.ID)
		}
		refuted += r.StaticallyRefuted
		scoped += r.ImpactScoped
		broad += r.ImpactBroad
	}
	t.Logf("%d incidents: %d candidates statically refuted, %d impact-scoped, %d broad",
		len(incs), refuted, scoped, broad)
	if refuted+scoped == 0 {
		t.Error("impact analysis never pruned anything across the corpus; the differential net is vacuous")
	}
}

// TestImpactAblationByteIdentical pins the acceptance contract of the
// static pruning: with and without impact analysis, the search must make
// byte-identical decisions (same Canonical() output) while the impact run
// does strictly less simulation work.
func TestImpactAblationByteIdentical(t *testing.T) {
	size := 24
	if testing.Short() {
		size = 8
	}
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: size, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	simsWith, simsWithout := 0, 0
	for _, inc := range incs {
		c := acr.IncidentCase(inc)
		with := acr.Repair(c, acr.RepairOptions{})
		without := acr.Repair(c, acr.RepairOptions{NoImpact: true})
		if with.Canonical() != without.Canonical() {
			t.Errorf("%s: Canonical() differs between impact and -no-impact runs:\n--- impact:\n%s\n--- no-impact:\n%s",
				inc.ID, with.Canonical(), without.Canonical())
		}
		simsWith += with.PrefixSimulations
		simsWithout += without.PrefixSimulations
	}
	ratio := float64(simsWithout) / float64(max(simsWith, 1))
	t.Logf("prefix simulations: %d with impact analysis, %d without (%.2fx reduction)",
		simsWith, simsWithout, ratio)
	if simsWith >= simsWithout {
		t.Errorf("impact analysis did not reduce simulation work: %d with vs %d without", simsWith, simsWithout)
	}
	// The acceptance bar: >= 3x fewer prefix simulations on the corpus.
	// The -short sample is too small to pin a ratio; the full run is not.
	if !testing.Short() && ratio < 3.0 {
		t.Errorf("simulation reduction regressed below the 3x acceptance bar: %.2fx", ratio)
	}
}
