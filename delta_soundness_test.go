package acr_test

import (
	"testing"

	acr "acr"
)

// TestDeltaDifferentialCorpus is the delta simulator's soundness
// regression net, mirroring TestImpactDifferentialCorpus: every corpus
// incident is repaired with delta-differential mode on, so every prefix
// the delta propagation answers is replayed against a cold full
// simulation and any fixpoint disagreement terminates the run with
// "delta-divergence". In -short mode a sample runs; the full 120-incident
// sweep is the delta-soundness CI job.
func TestDeltaDifferentialCorpus(t *testing.T) {
	size := 120
	if testing.Short() {
		size = 12
	}
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: size, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reused, resimulated := 0, 0
	for _, inc := range incs {
		r := acr.RunIncident(inc, acr.RepairOptions{DeltaDifferential: true})
		if r.Termination == "delta-divergence" {
			t.Errorf("%s: delta simulation diverged from full simulation", inc.ID)
		}
		reused += r.DeltaReused
		resimulated += r.DeltaResimulated
	}
	t.Logf("%d incidents: %d prefixes answered by delta propagation, %d fell back to cold simulation",
		len(incs), reused, resimulated)
	if reused == 0 {
		t.Error("delta propagation never answered a prefix across the corpus; the differential net is vacuous")
	}
}

// TestDeltaAblationByteIdentical pins the tentpole acceptance contract:
// with and without delta re-simulation (and sibling batching), the search
// makes byte-identical decisions — same Canonical() output — while the
// delta run performs at least 5x fewer router activations, the
// device·prefix unit of simulation work.
func TestDeltaAblationByteIdentical(t *testing.T) {
	size := 24
	if testing.Short() {
		size = 8
	}
	incs, err := acr.GenerateCorpus(acr.CorpusOptions{Size: size, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	actsWith, actsWithout := 0, 0
	for _, inc := range incs {
		c := acr.IncidentCase(inc)
		with := acr.Repair(c, acr.RepairOptions{})
		without := acr.Repair(c, acr.RepairOptions{NoDelta: true, NoBatch: true})
		if with.Canonical() != without.Canonical() {
			t.Errorf("%s: Canonical() differs between delta and -no-delta runs:\n--- delta:\n%s\n--- no-delta:\n%s",
				inc.ID, with.Canonical(), without.Canonical())
		}
		actsWith += with.SimActivations
		actsWithout += without.SimActivations
	}
	ratio := float64(actsWithout) / float64(max(actsWith, 1))
	t.Logf("router activations: %d with delta, %d without (%.2fx reduction)",
		actsWith, actsWithout, ratio)
	if actsWith >= actsWithout {
		t.Errorf("delta re-simulation did not reduce activation work: %d with vs %d without", actsWith, actsWithout)
	}
	// The acceptance bar: >= 5x fewer router activations on the corpus.
	// The -short sample is too small to pin a ratio; the full run is not.
	if !testing.Short() && ratio < 5.0 {
		t.Errorf("activation reduction regressed below the 5x acceptance bar: %.2fx", ratio)
	}
}
