package bgp

import (
	"fmt"
	"net/netip"
	"sort"

	"acr/internal/netcfg"
	"acr/internal/topo"
)

// Session is an established eBGP session as seen from one router. Sessions
// are directional views: an A–B session yields one Session on A and one on
// B.
type Session struct {
	LocalAddr netip.Addr
	PeerName  string
	PeerAddr  netip.Addr
	PeerASN   uint32
	PeerRID   netip.Addr
	// LocalLines are the config lines on this router establishing the
	// session; RemoteLines the peer's counterpart lines. Both are tagged on
	// import derivations so coverage reaches the session predicates of both
	// ends.
	LocalLines  []netcfg.LineRef
	RemoteLines []netcfg.LineRef
	// stanza is the local peer statement, used to resolve policies.
	stanza *netcfg.Peer
}

// FailedSession records a configured-but-down session and why. The repair
// pipeline uses these as negative provenance: a failing test's coverage
// includes the lines of sessions that should have carried its routes.
type FailedSession struct {
	Router   string
	PeerName string
	PeerAddr netip.Addr
	Reason   string
	Lines    []netcfg.LineRef
}

// Origination is one locally injected prefix.
type Origination struct {
	Prefix  netip.Prefix
	Origin  RouteOrigin
	NextHop netip.Addr // static next hop; invalid for network statements
	Policy  string     // redistribute policy, "" when none
	Lines   []netcfg.LineRef
}

// Router is one compiled router.
type Router struct {
	Name string
	ASN  uint32
	RID  netip.Addr
	File *netcfg.File

	Sessions []*Session
	Origins  []Origination
	Statics  []*netcfg.StaticRoute

	// interns points at the owning Net's intern table so the policy
	// pipeline (which only sees Routers) can stamp and dedupe finalized
	// routes. Nil for hand-built Routers in tests.
	interns *internTable
}

// Net is a compiled network: topology plus parsed configurations resolved
// into sessions and originations. Compile it once per configuration
// version; simulation runs against it.
type Net struct {
	Topo    *topo.Network
	Files   map[string]*netcfg.File
	Routers map[string]*Router
	Order   []string // deterministic activation order (topology insertion order)
	Failed  []*FailedSession

	// intern dedupes route keys and AS paths across this Net's
	// simulations; see internTable for the sharing and concurrency rules.
	intern *internTable
}

// Compile resolves configurations against the topology. Configurations
// that fail to parse entirely are treated as empty (their router runs no
// BGP); callers interested in parse errors should Parse first.
func Compile(t *topo.Network, files map[string]*netcfg.File) *Net {
	n := &Net{Topo: t, Files: files, Routers: map[string]*Router{}, intern: newInternTable()}
	for _, nd := range t.Nodes() {
		f := files[nd.Name]
		if f == nil {
			f = &netcfg.File{Device: nd.Name}
		}
		r := &Router{Name: nd.Name, RID: nd.RouterID, File: f, interns: n.intern}
		if f.BGP != nil {
			r.ASN = f.BGP.ASN
			if f.BGP.RouterID.IsValid() {
				r.RID = f.BGP.RouterID
			}
		}
		r.Statics = f.Statics
		n.Routers[nd.Name] = r
		n.Order = append(n.Order, nd.Name)
	}
	n.resolveSessions()
	n.resolveOrigins()
	return n
}

// ifaceUp reports whether the interface carrying adj on router r is
// administratively up in its configuration. An interface with no config
// block is considered up (the generators always emit blocks, but analyses
// on partial configs should not lose links).
func ifaceUp(f *netcfg.File, iface string) bool {
	itf := f.InterfaceByName(iface)
	return itf == nil || !itf.Shutdown
}

func (n *Net) resolveSessions() {
	for _, name := range n.Order {
		r := n.Routers[name]
		if r.File.BGP == nil {
			continue
		}
		for _, adj := range n.Topo.Adjacencies(name) {
			stanza := r.File.PeerByAddr(adj.PeerAddr)
			if stanza == nil || stanza.ASNLine == 0 {
				continue // no session configured toward this neighbor
			}
			peer := n.Routers[adj.PeerNode]
			fail := func(reason string) {
				n.Failed = append(n.Failed, &FailedSession{
					Router:   name,
					PeerName: adj.PeerNode,
					PeerAddr: adj.PeerAddr,
					Reason:   reason,
					Lines:    r.File.PeerSessionLines(stanza),
				})
			}
			if !ifaceUp(r.File, adj.Iface) {
				fail(fmt.Sprintf("local interface %s is shut down", adj.Iface))
				continue
			}
			if peer.File.BGP == nil {
				fail(fmt.Sprintf("neighbor %s runs no BGP", adj.PeerNode))
				continue
			}
			if stanza.ASN != peer.ASN {
				fail(fmt.Sprintf("configured as-number %d but neighbor %s is AS %d", stanza.ASN, adj.PeerNode, peer.ASN))
				continue
			}
			remote := peer.File.PeerByAddr(adj.LocalAddr)
			if remote == nil || remote.ASNLine == 0 {
				fail(fmt.Sprintf("neighbor %s has no peer stanza for %s", adj.PeerNode, adj.LocalAddr))
				continue
			}
			if remote.ASN != r.ASN {
				fail(fmt.Sprintf("neighbor %s configures as-number %d for us but we are AS %d", adj.PeerNode, remote.ASN, r.ASN))
				continue
			}
			if !ifaceUp(peer.File, adj.PeerIface) {
				fail(fmt.Sprintf("neighbor interface %s is shut down", adj.PeerIface))
				continue
			}
			r.Sessions = append(r.Sessions, &Session{
				LocalAddr:   adj.LocalAddr,
				PeerName:    adj.PeerNode,
				PeerAddr:    adj.PeerAddr,
				PeerASN:     peer.ASN,
				PeerRID:     peer.RID,
				LocalLines:  r.File.PeerSessionLines(stanza),
				RemoteLines: peer.File.PeerSessionLines(remote),
				stanza:      stanza,
			})
		}
		sort.Slice(r.Sessions, func(i, j int) bool {
			return r.Sessions[i].PeerAddr.Less(r.Sessions[j].PeerAddr)
		})
	}
}

func (n *Net) resolveOrigins() {
	for _, name := range n.Order {
		r := n.Routers[name]
		b := r.File.BGP
		if b == nil {
			continue
		}
		for _, ns := range b.Networks {
			if !ns.Prefix.IsValid() {
				continue
			}
			r.Origins = append(r.Origins, Origination{
				Prefix: ns.Prefix,
				Origin: OriginIGP,
				Lines:  []netcfg.LineRef{{Device: name, Line: ns.Line}},
			})
		}
		if b.Redistribute != nil {
			for _, s := range r.File.Statics {
				if !s.Prefix.IsValid() {
					continue
				}
				r.Origins = append(r.Origins, Origination{
					Prefix:  s.Prefix,
					Origin:  OriginIncomplete,
					NextHop: s.NextHop,
					Policy:  b.Redistribute.Policy,
					Lines: []netcfg.LineRef{
						{Device: name, Line: s.Line},
						{Device: name, Line: b.Redistribute.Line},
					},
				})
			}
		}
	}
}

// AllPrefixes returns every prefix originated anywhere, sorted. The
// simulator runs once per prefix.
func (n *Net) AllPrefixes() []netip.Prefix {
	seen := map[netip.Prefix]bool{}
	var out []netip.Prefix
	for _, name := range n.Order {
		for _, o := range n.Routers[name].Origins {
			if !seen[o.Prefix] {
				seen[o.Prefix] = true
				out = append(out, o.Prefix)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// SessionBetween returns the session from a to b, or nil.
func (n *Net) SessionBetween(a, b string) *Session {
	ra := n.Routers[a]
	if ra == nil {
		return nil
	}
	for _, s := range ra.Sessions {
		if s.PeerName == b {
			return s
		}
	}
	return nil
}

// FailedSessionLines returns the negative-provenance line set of every
// failed session, on both sides where available.
func (n *Net) FailedSessionLines() []netcfg.LineRef {
	var out []netcfg.LineRef
	for _, fs := range n.Failed {
		out = append(out, fs.Lines...)
	}
	return out
}
