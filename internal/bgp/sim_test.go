package bgp

import (
	"net/netip"
	"sort"
	"testing"

	"acr/internal/netcfg"
	"acr/internal/topo"
)

// testNetBuilder assembles configurations for a topo network in tests.
type testNetBuilder struct {
	net      *topo.Network
	builders map[string]*netcfg.Builder
	bgps     map[string]*netcfg.BGPBuilder
}

// newTestNet creates standard configs for every node: a bgp block with the
// node's ASN and router-id, a plain peer stanza per adjacency, and network
// statements for originated prefixes. Tests then customize via bgp()/raw().
func newTestNet(net *topo.Network) *testNetBuilder {
	tb := &testNetBuilder{net: net, builders: map[string]*netcfg.Builder{}, bgps: map[string]*netcfg.BGPBuilder{}}
	for _, nd := range net.Nodes() {
		b := netcfg.NewBuilder(nd.Name)
		g := b.BGP(nd.ASN).RouterID(nd.RouterID)
		for _, adj := range net.Adjacencies(nd.Name) {
			g.Peer(adj.PeerAddr, net.Node(adj.PeerNode).ASN)
		}
		for _, p := range nd.Originates {
			g.Network(p)
		}
		tb.builders[nd.Name] = b
		tb.bgps[nd.Name] = g
	}
	return tb
}

// bgp exposes the node's open bgp block for customization.
func (tb *testNetBuilder) bgp(name string) *netcfg.BGPBuilder { return tb.bgps[name] }

// builder exposes the node's top-level builder (the bgp block stays open
// until compile; top-level statements added here land after it).
func (tb *testNetBuilder) builder(name string) *netcfg.Builder { return tb.builders[name] }

// peerAddr returns the interface address of `peer` on its link to `name`.
func (tb *testNetBuilder) peerAddr(name, peer string) netip.Addr {
	for _, adj := range tb.net.Adjacencies(name) {
		if adj.PeerNode == peer {
			return adj.PeerAddr
		}
	}
	panic("no adjacency " + name + "-" + peer)
}

// compile finishes interface blocks and compiles the network.
func (tb *testNetBuilder) compile(t *testing.T) *Net {
	t.Helper()
	files := map[string]*netcfg.File{}
	for _, nd := range tb.net.Nodes() {
		b := tb.builders[nd.Name]
		names := make([]string, 0, len(nd.Ifaces))
		for ifn := range nd.Ifaces {
			names = append(names, ifn)
		}
		sort.Strings(names)
		for _, ifn := range names {
			b.Interface(ifn).Address(nd.Ifaces[ifn]).End()
		}
		cfg := b.Build()
		f, err := netcfg.Parse(cfg)
		if err != nil {
			t.Fatalf("config for %s does not parse: %v\n%s", nd.Name, err, cfg.Text())
		}
		files[nd.Name] = f
	}
	return Compile(tb.net, files)
}

// chainNet builds O(origin of 10.0.0.0/16) — X — Y.
func chainNet() *topo.Network {
	n := topo.New("chain")
	o := n.AddNode("O", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	o.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.AddNode("X", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("Y", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.3"))
	n.Connect("O", "X")
	n.Connect("X", "Y")
	return n
}

func TestChainPropagation(t *testing.T) {
	net := chainNet()
	bn := newTestNet(net).compile(t)
	out := Simulate(bn, Options{})
	p := netip.MustParsePrefix("10.0.0.0/16")
	po := out.ByPrefix[p]
	if po == nil || !po.Converged {
		t.Fatalf("prefix did not converge: %+v", po)
	}
	rO, rX, rY := po.Final["O"], po.Final["X"], po.Final["Y"]
	if rO == nil || rO.Src != SrcLocal {
		t.Fatalf("O best = %+v, want local origination", rO)
	}
	if rX == nil || rX.PathString() != "[64500]" {
		t.Fatalf("X best = %+v, want path [64500]", rX)
	}
	if rY == nil || rY.PathString() != "[65001 64500]" {
		t.Fatalf("Y best = %+v, want path [65001 64500]", rY)
	}
	if rY.NextHop != bnAddr(net, "Y", "X") {
		t.Errorf("Y next hop = %v, want X's address", rY.NextHop)
	}
}

func bnAddr(net *topo.Network, from, to string) netip.Addr {
	for _, adj := range net.Adjacencies(from) {
		if adj.PeerNode == to {
			return adj.PeerAddr
		}
	}
	panic("no adjacency")
}

func TestSessionWrongASNFails(t *testing.T) {
	net := chainNet()
	tb := newTestNet(net)
	// Rebuild X's config with a wrong as-number toward O.
	nd := net.Node("X")
	b := netcfg.NewBuilder("X")
	g := b.BGP(nd.ASN).RouterID(nd.RouterID)
	for _, adj := range net.Adjacencies("X") {
		asn := net.Node(adj.PeerNode).ASN
		if adj.PeerNode == "O" {
			asn = 64999 // wrong
		}
		g.Peer(adj.PeerAddr, asn)
	}
	tb.builders["X"] = b
	tb.bgps["X"] = g
	bn := tb.compile(t)

	if s := bn.SessionBetween("X", "O"); s != nil {
		t.Fatal("session X–O established despite wrong as-number")
	}
	found := false
	for _, fs := range bn.Failed {
		if fs.Router == "X" && fs.PeerName == "O" {
			found = true
			if len(fs.Lines) == 0 {
				t.Error("failed session carries no config lines")
			}
		}
	}
	if !found {
		t.Error("no FailedSession recorded for X–O")
	}
	// And the prefix never reaches Y.
	out := Simulate(bn, Options{})
	po := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")]
	if !po.Converged {
		t.Fatal("expected convergence")
	}
	if po.Final["Y"] != nil {
		t.Errorf("Y unexpectedly has route %v", po.Final["Y"])
	}
}

func TestSessionShutdownInterfaceFails(t *testing.T) {
	net := chainNet()
	tb := newTestNet(net)
	// Shut down O's interface: override the standard interface emission by
	// building O's config manually.
	nd := net.Node("O")
	b := netcfg.NewBuilder("O")
	g := b.BGP(nd.ASN).RouterID(nd.RouterID)
	for _, adj := range net.Adjacencies("O") {
		g.Peer(adj.PeerAddr, net.Node(adj.PeerNode).ASN)
	}
	for _, p := range nd.Originates {
		g.Network(p)
	}
	b = g.End()
	for ifn, addr := range nd.Ifaces {
		b.Interface(ifn).Address(addr).Shutdown().End()
	}
	f, err := netcfg.Parse(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]*netcfg.File{"O": f}
	for _, other := range []string{"X", "Y"} {
		onb := tb.builders[other]
		for ifn, addr := range net.Node(other).Ifaces {
			onb.Interface(ifn).Address(addr).End()
		}
		of, err := netcfg.Parse(onb.Build())
		if err != nil {
			t.Fatal(err)
		}
		files[other] = of
	}
	bn := Compile(net, files)
	if bn.SessionBetween("O", "X") != nil {
		t.Error("session up despite shutdown interface")
	}
}

func TestImportPolicyDeny(t *testing.T) {
	net := chainNet()
	tb := newTestNet(net)
	// Y denies 10.0.0.0/16 on import from X.
	tb.bgp("Y").PeerPolicy(tb.peerAddr("Y", "X"), "Block", netcfg.Import)
	tb.builder("Y").
		RoutePolicy("Block", false, 10).
		MatchIPPrefix("bad").
		End().
		PrefixListEntry("bad", 10, true, netip.MustParsePrefix("10.0.0.0/16"), 0, 0)
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	po := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")]
	if !po.Converged {
		t.Fatal("expected convergence")
	}
	if po.Final["Y"] != nil {
		t.Errorf("Y has route %v despite import deny", po.Final["Y"])
	}
	if po.Final["X"] == nil {
		t.Error("X lost its route")
	}
}

func TestExportPolicySuppresses(t *testing.T) {
	net := chainNet()
	tb := newTestNet(net)
	// X refuses to export 10.0.0.0/16 to Y.
	tb.bgp("X").PeerPolicy(tb.peerAddr("X", "Y"), "NoLeak", netcfg.Export)
	tb.builder("X").
		RoutePolicy("NoLeak", false, 10).
		MatchIPPrefix("priv").
		End().
		PrefixListEntry("priv", 10, true, netip.MustParsePrefix("10.0.0.0/16"), 0, 0)
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	po := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")]
	if po.Final["Y"] != nil {
		t.Errorf("Y has route %v despite export suppression", po.Final["Y"])
	}
}

func TestLocalPrefSteersSelection(t *testing.T) {
	// Diamond: O — X — D and O — Y — D; D prefers via Y by local-pref even
	// though router-id would pick X.
	n := topo.New("diamond")
	o := n.AddNode("O", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	o.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.AddNode("X", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("Y", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.3"))
	n.AddNode("D", topo.Backbone, 65003, netip.MustParseAddr("1.0.0.4"))
	n.Connect("O", "X")
	n.Connect("O", "Y")
	n.Connect("X", "D")
	n.Connect("Y", "D")
	tb := newTestNet(n)
	tb.bgp("D").PeerPolicy(tb.peerAddr("D", "Y"), "Prefer", netcfg.Import)
	tb.builder("D").
		RoutePolicy("Prefer", true, 10).
		ApplyLocalPref(200).
		End()
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	po := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")]
	if !po.Converged {
		t.Fatal("diamond did not converge")
	}
	d := po.Final["D"]
	if d == nil || d.PeerAddr != tb.peerAddr("D", "Y") {
		t.Fatalf("D best = %+v, want via Y", d)
	}
	if d.LocalPref != 200 {
		t.Errorf("D local-pref = %d, want 200", d.LocalPref)
	}
}

func TestASPathPrependLengthens(t *testing.T) {
	// Diamond again: X prepends on export to D, so D picks via Y.
	n := topo.New("diamond2")
	o := n.AddNode("O", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	o.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.AddNode("X", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("Y", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.3"))
	n.AddNode("D", topo.Backbone, 65003, netip.MustParseAddr("1.0.0.4"))
	n.Connect("O", "X")
	n.Connect("O", "Y")
	n.Connect("X", "D")
	n.Connect("Y", "D")
	tb := newTestNet(n)
	tb.bgp("X").PeerPolicy(tb.peerAddr("X", "D"), "Depref", netcfg.Export)
	tb.builder("X").
		RoutePolicy("Depref", true, 10).
		ApplyASPathPrepend(65001, 3).
		End()
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	d := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")].Final["D"]
	if d == nil || d.PeerAddr != tb.peerAddr("D", "Y") {
		t.Fatalf("D best = %+v, want via Y after X's prepend", d)
	}
}

func TestLoopPreventionRejectsOwnAS(t *testing.T) {
	// Triangle: all plain. Route must not loop; every router converges with
	// a loop-free path.
	n := topo.New("tri")
	o := n.AddNode("O", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	o.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.AddNode("X", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("Y", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.3"))
	n.Connect("O", "X")
	n.Connect("X", "Y")
	n.Connect("Y", "O")
	bn := newTestNet(n).compile(t)
	out := Simulate(bn, Options{})
	po := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")]
	if !po.Converged {
		t.Fatal("triangle did not converge")
	}
	for name, r := range po.Final {
		asn := bn.Routers[name].ASN
		if r.Src == SrcPeer && r.HasAS(asn) {
			t.Errorf("%s selected a route containing its own AS: %s", name, r.PathString())
		}
	}
}

// overrideGadget builds the minimal version of the Figure 2 incident: a
// square A–B–C–S–A with the origin stub PB behind B, and AS-path override
// on A's and C's imports from S. As analyzed in the paper (§2.2), this
// instance has no stable state: the prefix flaps.
func overrideGadget(t *testing.T) (*Net, *testNetBuilder, *topo.Network) {
	t.Helper()
	n := topo.New("gadget")
	n.AddNode("A", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.1"))
	n.AddNode("B", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("C", topo.Backbone, 65003, netip.MustParseAddr("1.0.0.3"))
	n.AddNode("S", topo.Backbone, 65004, netip.MustParseAddr("1.0.0.4"))
	pb := n.AddNode("PB", topo.PoP, 64602, netip.MustParseAddr("1.0.0.6"))
	pb.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.Connect("A", "B")
	n.Connect("B", "C")
	n.Connect("A", "S")
	n.Connect("C", "S")
	n.Connect("PB", "B")

	tb := newTestNet(n)
	for _, router := range []string{"A", "C"} {
		asn := n.Node(router).ASN
		tb.bgp(router).PeerPolicy(tb.peerAddr(router, "S"), "Override_All", netcfg.Import)
		tb.builder(router).
			RoutePolicy("Override_All", true, 10).
			MatchIPPrefix("default_all").
			ApplyASPathOverwrite(asn).
			End().
			PrefixListEntry("default_all", 10, true, netip.MustParsePrefix("0.0.0.0/0"), 0, 32)
	}
	return tb.compile(t), tb, n
}

func TestOverrideGadgetFlaps(t *testing.T) {
	bn, _, _ := overrideGadget(t)
	out := Simulate(bn, Options{})
	p := netip.MustParsePrefix("10.0.0.0/16")
	po := out.ByPrefix[p]
	if po.Converged {
		t.Fatalf("override gadget converged; want route flapping. final: %+v", po.Final)
	}
	if len(po.Cycle) < 2 {
		t.Fatalf("cycle has %d states, want >= 2", len(po.Cycle))
	}
	flapping := po.FlappingRouters()
	if len(flapping) == 0 {
		t.Fatal("no flapping routers identified")
	}
	// The paper's transient C–S forwarding loop: some phase has C's best
	// via S while S's best is via C.
	sAddrOfC := bnAddr(out.Net.Topo, "C", "S")
	cAddrOfS := bnAddr(out.Net.Topo, "S", "C")
	foundLoopPhase := false
	for _, ph := range po.Cycle {
		c, s := ph["C"], ph["S"]
		if c != nil && s != nil && c.PeerAddr == sAddrOfC && s.PeerAddr == cAddrOfS {
			foundLoopPhase = true
		}
	}
	if !foundLoopPhase {
		t.Error("no cycle phase exhibits the C–S forwarding loop")
	}
}

func TestOverrideGadgetRepairConverges(t *testing.T) {
	// The repaired configuration (the paper's fix): restrict the override
	// prefix-lists so 10.0.0.0/16 is no longer rewritten. Here nothing
	// legitimate needs rewriting, so the list matches only a harmless
	// prefix; the gadget must converge loop-free.
	n := topo.New("gadget-fixed")
	n.AddNode("A", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.1"))
	n.AddNode("B", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("C", topo.Backbone, 65003, netip.MustParseAddr("1.0.0.3"))
	n.AddNode("S", topo.Backbone, 65004, netip.MustParseAddr("1.0.0.4"))
	pb := n.AddNode("PB", topo.PoP, 64602, netip.MustParseAddr("1.0.0.6"))
	pb.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.Connect("A", "B")
	n.Connect("B", "C")
	n.Connect("A", "S")
	n.Connect("C", "S")
	n.Connect("PB", "B")
	tb := newTestNet(n)
	for _, router := range []string{"A", "C"} {
		asn := n.Node(router).ASN
		tb.bgp(router).PeerPolicy(tb.peerAddr(router, "S"), "Override_All", netcfg.Import)
		tb.builder(router).
			RoutePolicy("Override_All", true, 10).
			MatchIPPrefix("default_all").
			ApplyASPathOverwrite(asn).
			End().
			PrefixListEntry("default_all", 10, true, netip.MustParsePrefix("20.0.0.0/16"), 0, 0)
	}
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	po := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")]
	if !po.Converged {
		t.Fatalf("repaired gadget still flapping after %d passes", po.Passes)
	}
	// S ties between via A and via C (both length 3); A's lower router-id
	// must win deterministically.
	s := po.Final["S"]
	if s == nil || s.PeerAddr != bnAddr(n, "S", "A") {
		t.Errorf("S best = %+v, want via A by router-id tie-break", s)
	}
}

func TestSimulateAllPrefixesIndependent(t *testing.T) {
	// Two prefixes; one flaps (gadget), one converges (plain origin at S).
	n := topo.New("gadget-two")
	n.AddNode("A", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.1"))
	n.AddNode("B", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("C", topo.Backbone, 65003, netip.MustParseAddr("1.0.0.3"))
	s := n.AddNode("S", topo.Backbone, 65004, netip.MustParseAddr("1.0.0.4"))
	s.Originates = []netip.Prefix{netip.MustParsePrefix("20.0.0.0/16")}
	pb := n.AddNode("PB", topo.PoP, 64602, netip.MustParseAddr("1.0.0.6"))
	pb.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.Connect("A", "B")
	n.Connect("B", "C")
	n.Connect("A", "S")
	n.Connect("C", "S")
	n.Connect("PB", "B")
	tb := newTestNet(n)
	for _, router := range []string{"A", "C"} {
		asn := n.Node(router).ASN
		tb.bgp(router).PeerPolicy(tb.peerAddr(router, "S"), "Override_All", netcfg.Import)
		tb.builder(router).
			RoutePolicy("Override_All", true, 10).
			MatchIPPrefix("default_all").
			ApplyASPathOverwrite(asn).
			End().
			PrefixListEntry("default_all", 10, true, netip.MustParsePrefix("0.0.0.0/0"), 0, 32)
	}
	bn2 := tb.compile(t)
	out := Simulate(bn2, Options{})
	if out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")].Converged {
		t.Error("gadget prefix should flap")
	}
	if !out.ByPrefix[netip.MustParsePrefix("20.0.0.0/16")].Converged {
		t.Error("independent prefix should converge")
	}
	if out.Converged() {
		t.Error("Outcome.Converged should be false")
	}
	if got := out.FlappingPrefixes(); len(got) != 1 || got[0] != netip.MustParsePrefix("10.0.0.0/16") {
		t.Errorf("FlappingPrefixes = %v", got)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	for i := 0; i < 3; i++ {
		bn, _, _ := overrideGadget(t)
		out := Simulate(bn, Options{})
		po := out.ByPrefix[netip.MustParsePrefix("10.0.0.0/16")]
		if po.Converged {
			t.Fatal("nondeterministic: converged on some run")
		}
		if len(po.Cycle) != 2 {
			t.Fatalf("run %d: cycle length %d, want 2 (deterministic)", i, len(po.Cycle))
		}
	}
}

func TestRedistributeStatic(t *testing.T) {
	net := chainNet()
	tb := newTestNet(net)
	// X redistributes a static route for 30.0.0.0/16.
	tb.bgp("X").RedistributeStatic("")
	tb.builder("X").StaticRoute(netip.MustParsePrefix("30.0.0.0/16"), tb.peerAddr("X", "O"))
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	po := out.ByPrefix[netip.MustParsePrefix("30.0.0.0/16")]
	if po == nil || !po.Converged {
		t.Fatal("redistributed prefix missing or flapping")
	}
	x := po.Final["X"]
	if x == nil || x.Src != SrcLocal || x.Origin != OriginIncomplete {
		t.Fatalf("X best = %+v, want local incomplete", x)
	}
	y := po.Final["Y"]
	if y == nil || y.PathString() != "[65001]" {
		t.Fatalf("Y best = %+v, want [65001]", y)
	}
}

func TestNoRedistributeNoOrigin(t *testing.T) {
	net := chainNet()
	tb := newTestNet(net)
	// Static exists but redistribution is missing — the paper's most common
	// misconfiguration (20.8% of incidents).
	tb.builder("X").StaticRoute(netip.MustParsePrefix("30.0.0.0/16"), tb.peerAddr("X", "O"))
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	if out.ByPrefix[netip.MustParsePrefix("30.0.0.0/16")] != nil {
		t.Error("prefix originated despite missing redistribution")
	}
	lines := MissingOriginLines(bn, netip.MustParsePrefix("30.0.0.0/16"))
	if len(lines) == 0 {
		t.Fatal("MissingOriginLines empty; negative provenance lost")
	}
	foundStatic := false
	for _, l := range lines {
		if l.Device == "X" {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Errorf("negative provenance does not reference X: %v", lines)
	}
}
