package bgp

import "net/netip"

// RederiveLeaves recomputes, against network n, the best routes of the
// given non-transit (leaf) routers from an already-converged base outcome
// for prefix, leaving every other router's entry untouched. It exists for
// the impact analysis's leaf-local slices: when a candidate edit can only
// change what a leaf hears (an export-policy delta on its neighbor), the
// global fixed point is identical to the base everywhere else, so the
// candidate outcome is the base outcome with just the leaf entries
// re-derived — no full prefix simulation needed.
//
// Exactness, not approximation: a leaf that originates nothing for prefix
// only ever holds learned routes, and every route it re-exports carries
// its neighbor's ASN (processExport prepends the sender's AS), so AS-path
// loop detection rejects it at the neighbor in any simulation trajectory.
// The non-leaf part of the candidate run therefore evolves exactly as the
// base run did, and each leaf's stable state is the one computed here:
// imports of its neighbors' stable exports, selected by the same best-path
// function the simulator uses.
//
// The false return refuses the shortcut and the caller must fall back to
// a full simulation: a non-converged base, an unknown router, a leaf that
// originates the prefix (its best-route flip could leak back out), or a
// leaf session terminating at another router in the patch set (whose
// entry is itself being replaced) all break the argument above.
func RederiveLeaves(n *Net, base *PrefixOutcome, prefix netip.Prefix, leaves []string) (*PrefixOutcome, bool) {
	if base == nil || !base.Converged || base.Final == nil {
		return nil, false
	}
	patched := map[string]bool{}
	for _, l := range leaves {
		patched[l] = true
	}
	final := make(map[string]*Route, len(base.Final))
	for d, r := range base.Final { //acrvet:ordered — map copy
		final[d] = r
	}
	for _, leaf := range leaves {
		r := n.Routers[leaf]
		if r == nil {
			return nil, false
		}
		for _, o := range r.Origins {
			if o.Prefix == prefix {
				return nil, false
			}
		}
		// Rebuild the leaf's stable adj-in exactly as the simulator's
		// activation step fills it: one entry per sender session, keyed by
		// the sender's local address, imported through the leaf session
		// looked up by that address.
		adjIn := map[netip.Addr]*Route{}
		for _, ls := range r.Sessions {
			if patched[ls.PeerName] {
				return nil, false
			}
			ns := n.sessionFrom(ls.PeerName, ls.LocalAddr)
			if ns == nil {
				continue
			}
			recv := n.sessionFrom(leaf, ns.LocalAddr)
			if recv == nil {
				continue
			}
			nbBest := base.Final[ls.PeerName]
			if nbBest == nil {
				continue
			}
			adv, ok := processExport(n.Routers[ls.PeerName], ns, nbBest, nil)
			if !ok {
				continue
			}
			in, ok, _ := processImport(r, recv, adv, nil)
			if !ok {
				continue
			}
			adjIn[ns.LocalAddr] = in
		}
		candidates := make([]*Route, 0, len(adjIn))
		for _, rt := range adjIn { //acrvet:ordered — SelectBest is order-insensitive
			candidates = append(candidates, rt)
		}
		if best := SelectBest(candidates); best != nil {
			final[leaf] = best
		} else {
			delete(final, leaf)
		}
	}
	return &PrefixOutcome{Prefix: prefix, Converged: true, Passes: base.Passes, Final: final}, true
}
