package bgp

import (
	"net/netip"

	"acr/internal/netcfg"
)

// matchPrefixList evaluates prefix p against the named list in file f.
// Entries evaluate in ascending index order; the first entry that matches
// decides (permit/deny); an empty or missing list denies. The deciding
// entry's line is traced.
func matchPrefixList(f *netcfg.File, name string, p netip.Prefix, tr *lineRefs) bool {
	for _, e := range f.PrefixListEntries(name) {
		if e.Matches(p) {
			tr.add(f.Device, e.Line)
			return e.Permit
		}
	}
	return false
}

// evalPolicy applies route-policy `name` of file f to route r.
//
// Semantics (documented in DESIGN.md): nodes evaluate in ascending node
// order; the first node whose match clauses all hold decides. A permit
// node applies its apply clauses; a deny node rejects the route. When no
// node matches, the route is accepted UNCHANGED (implicit permit). This
// matches the paper's narrative for the Figure 2 repair: after the
// prefix-list is restricted, non-matching routes are imported un-rewritten
// rather than dropped. A reference to an undefined policy is a no-op
// permit (File.Validate flags it).
//
// The returned route is a copy when modified; the input is never mutated.
func evalPolicy(f *netcfg.File, name string, r *Route, tr *lineRefs) (*Route, bool) {
	nodes := f.PolicyNodes(name)
	if len(nodes) == 0 {
		return r, true
	}
	for _, n := range nodes {
		if !nodeMatches(f, n, r, tr) {
			continue
		}
		tr.add(f.Device, n.Line)
		if !n.Permit {
			return nil, false
		}
		out := r.clone()
		for _, a := range n.Applies {
			tr.add(f.Device, a.Line)
			switch a.Kind {
			case netcfg.ApplyASPathOverwrite:
				out.ASPath = []uint32{a.ASN}
			case netcfg.ApplyASPathPrepend:
				pre := make([]uint32, 0, a.Count+len(out.ASPath))
				for i := 0; i < a.Count; i++ {
					pre = append(pre, a.ASN)
				}
				out.ASPath = append(pre, out.ASPath...)
			case netcfg.ApplyLocalPref:
				out.LocalPref = a.Value
			case netcfg.ApplyMED:
				out.MED = a.Value
			}
		}
		return out, true
	}
	return r, true
}

// nodeMatches reports whether every match clause of node n holds for r.
// A node with no match clauses always matches. Match lines are traced only
// when the whole node matches (the trace is rebuilt on success so partial
// matches leave nothing behind).
func nodeMatches(f *netcfg.File, n *netcfg.RoutePolicy, r *Route, tr *lineRefs) bool {
	var local lineRefs
	for _, m := range n.Matches {
		switch m.Kind {
		case netcfg.MatchIPPrefix:
			local.add(f.Device, m.Line)
			if !matchPrefixList(f, m.PrefixList, r.Prefix, &local) {
				return false
			}
		}
	}
	tr.addRefs(local.refs)
	return true
}

// applyPolicies runs each attachment in order. The first deny rejects the
// route; apply effects accumulate across attachments (in practice a peer
// has at most one policy per direction).
func applyPolicies(f *netcfg.File, attaches []*netcfg.PolicyAttach, r *Route, tr *lineRefs) (*Route, bool) {
	cur := r
	for _, a := range attaches {
		tr.add(f.Device, a.Line)
		next, ok := evalPolicy(f, a.Policy, cur, tr)
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// processImport models the receive side of an advertisement arriving over
// session s at router r: AS-path loop detection first (standard BGP loop
// prevention — checked on the path as received, BEFORE import policy,
// which is why `apply as-path overwrite` on a previous hop can defeat it),
// then import policies. On acceptance the returned route carries the
// session's next hop, peer identity, and the default local preference
// unless a policy set one.
//
// The boolean reports acceptance; reason distinguishes loop rejection from
// policy denial for negative provenance.
func processImport(r *Router, s *Session, adv *Route, tr *lineRefs) (*Route, bool, string) {
	if adv.HasAS(r.ASN) {
		return nil, false, "as-path loop"
	}
	in := adv.clone()
	in.LocalPref = DefaultLocalPref
	tr.addRefs(s.LocalLines)
	tr.addRefs(s.RemoteLines)
	res, ok := applyPolicies(r.File, r.File.EffectivePolicies(s.stanza, netcfg.Import), in, tr)
	if !ok {
		return nil, false, "import policy deny"
	}
	out := res.clone()
	out.Src = SrcPeer
	out.PeerAddr = s.PeerAddr
	out.PeerRID = s.PeerRID
	out.NextHop = s.PeerAddr
	return finalizeRoute(r.interns, out), true, ""
}

// processExport models the send side: export policies, then the sender
// prepends its own AS (so an export-policy prepend adds extras on top).
// Local preference does not cross eBGP sessions and is cleared.
// Returns nil/false when policy suppresses the advertisement.
// The sender's session lines are traced: they are preconditions of the
// advertisement (and of an export-policy suppression — negative
// provenance must reach the group membership that attached the policy).
func processExport(r *Router, s *Session, best *Route, tr *lineRefs) (*Route, bool) {
	tr.addRefs(s.LocalLines)
	res, ok := applyPolicies(r.File, r.File.EffectivePolicies(s.stanza, netcfg.Export), best, tr)
	if !ok {
		return nil, false
	}
	out := res.clone()
	out.ASPath = append([]uint32{r.ASN}, out.ASPath...)
	out.LocalPref = 0
	out.Src = SrcPeer
	out.PeerAddr = netip.Addr{}
	out.PeerRID = netip.Addr{}
	out.NextHop = netip.Addr{}
	return finalizeRoute(r.interns, out), true
}

// originRoute materializes an origination as a local route.
func originRoute(r *Router, o Origination, tr *lineRefs) (*Route, bool) {
	tr.addRefs(o.Lines)
	rt := &Route{
		Prefix:    o.Prefix,
		ASPath:    nil,
		LocalPref: DefaultLocalPref,
		Origin:    o.Origin,
		NextHop:   o.NextHop,
		Src:       SrcLocal,
		PeerRID:   r.RID,
	}
	if o.Policy != "" {
		res, ok := evalPolicy(r.File, o.Policy, rt, tr)
		if !ok {
			return nil, false
		}
		return finalizeRoute(r.interns, res), true
	}
	return finalizeRoute(r.interns, rt), true
}
