package bgp

import (
	"net/netip"
	"testing"

	"acr/internal/netcfg"
	"acr/internal/topo"
)

// squareNet builds O (origin of 10.0.0.0/16) with two equal-length paths
// to D: O—A—D and O—B—D. D's choice between them comes down to the
// advertising peers' router IDs.
func squareNet() *topo.Network {
	n := topo.New("square")
	o := n.AddNode("O", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	o.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	n.AddNode("A", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	n.AddNode("B", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.3"))
	n.AddNode("D", topo.Backbone, 65003, netip.MustParseAddr("1.0.0.4"))
	n.Connect("O", "A")
	n.Connect("O", "B")
	n.Connect("A", "D")
	n.Connect("B", "D")
	return n
}

// assertDeltaMatchesCold runs the prefix cold and via delta from base on
// the candidate net and requires identical stable state, down to the
// tie-breaking router IDs Key() omits. Returns the delta outcome.
func assertDeltaMatchesCold(t *testing.T, cand *Net, base *PrefixOutcome, dirty []string, p netip.Prefix) *PrefixOutcome {
	t.Helper()
	cold := SimulatePrefix(cand, p, Options{})
	po, ok := DeltaSimulatePrefix(cand, base, dirty, p, Options{})
	if !ok {
		t.Fatalf("delta refused the shortcut for %s (dirty %v)", p, dirty)
	}
	if po.Converged != cold.Converged {
		t.Fatalf("delta converged=%v, cold converged=%v", po.Converged, cold.Converged)
	}
	for _, name := range cand.Order {
		d, c := po.Final[name], cold.Final[name]
		if routeKey(d) != routeKey(c) {
			t.Errorf("%s: delta %s vs cold %s", name, routeKey(d), routeKey(c))
		}
		if d != nil && c != nil && d.PeerRID != c.PeerRID {
			t.Errorf("%s: delta PeerRID %s vs cold %s", name, d.PeerRID, c.PeerRID)
		}
	}
	return po
}

func TestDeltaImportPolicyChange(t *testing.T) {
	net := chainNet()
	p := netip.MustParsePrefix("10.0.0.0/16")
	base := Simulate(newTestNet(net).compile(t), Options{})

	// Candidate: Y raises local-preference on routes imported from X.
	tb := newTestNet(net)
	tb.bgp("Y").PeerPolicy(tb.peerAddr("Y", "X"), "lp200", netcfg.Import)
	tb.builder("Y").RoutePolicy("lp200", true, 10).ApplyLocalPref(200).End()
	cand := tb.compile(t)

	po := assertDeltaMatchesCold(t, cand, base.ByPrefix[p], []string{"Y"}, p)
	if r := po.Final["Y"]; r == nil || r.LocalPref != 200 {
		t.Errorf("Y best after delta = %+v, want local-pref 200", r)
	}
}

func TestDeltaExportPolicyOnlyChange(t *testing.T) {
	// X prepends toward Y: X's own best is untouched, so only the forced
	// push of the dirty device can surface the change at Y.
	net := chainNet()
	p := netip.MustParsePrefix("10.0.0.0/16")
	base := Simulate(newTestNet(net).compile(t), Options{})

	tb := newTestNet(net)
	tb.bgp("X").PeerPolicy(tb.peerAddr("X", "Y"), "prep", netcfg.Export)
	tb.builder("X").RoutePolicy("prep", true, 10).ApplyASPathPrepend(65001, 2).End()
	cand := tb.compile(t)

	po := assertDeltaMatchesCold(t, cand, base.ByPrefix[p], []string{"X"}, p)
	if r := po.Final["Y"]; r == nil || r.PathString() != "[65001 65001 65001 64500]" {
		t.Errorf("Y best after delta = %+v, want twice-prepended path", r)
	}
}

func TestDeltaRouterIDChangeFlipsTieBreak(t *testing.T) {
	net := squareNet()
	p := netip.MustParsePrefix("10.0.0.0/16")
	base := Simulate(newTestNet(net).compile(t), Options{})
	if got := base.ByPrefix[p].Final["D"]; got == nil || got.PeerRID != netip.MustParseAddr("1.0.0.2") {
		t.Fatalf("base D best = %+v, want via A (RID 1.0.0.2)", got)
	}

	// Candidate: A's router ID jumps above B's, so D's RID tie-break must
	// flip to B. Key() omits PeerRID — this is exactly the staleness the
	// delta path's stronger change predicate exists for.
	tb := newTestNet(net)
	nd := net.Node("A")
	b := netcfg.NewBuilder("A")
	g := b.BGP(nd.ASN).RouterID(netip.MustParseAddr("9.9.9.9"))
	for _, adj := range net.Adjacencies("A") {
		g.Peer(adj.PeerAddr, net.Node(adj.PeerNode).ASN)
	}
	tb.builders["A"] = b
	tb.bgps["A"] = g
	cand := tb.compile(t)

	po := assertDeltaMatchesCold(t, cand, base.ByPrefix[p], []string{"A"}, p)
	if r := po.Final["D"]; r == nil || r.PeerRID != netip.MustParseAddr("1.0.0.3") {
		t.Errorf("D best after delta = %+v, want via B (RID 1.0.0.3)", r)
	}
}

func TestDeltaInertEditTouchesOnlyDirtyDevices(t *testing.T) {
	// A behaviorally inert change (an unattached route-policy) must leave
	// the wave at the dirty device: seed activations only, base state
	// reused structurally everywhere else.
	net := chainNet()
	p := netip.MustParsePrefix("10.0.0.0/16")
	base := Simulate(newTestNet(net).compile(t), Options{})

	tb := newTestNet(net)
	tb.builder("X").RoutePolicy("unused", true, 10).ApplyMED(7).End()
	cand := tb.compile(t)

	po := assertDeltaMatchesCold(t, cand, base.ByPrefix[p], []string{"X"}, p)
	if po.Activations != 1 {
		t.Errorf("inert edit cost %d activations, want 1 (the dirty device's forced pass)", po.Activations)
	}
	cold := SimulatePrefix(cand, p, Options{})
	if po.Activations >= cold.Activations {
		t.Errorf("delta did %d activations, cold %d — no work saved", po.Activations, cold.Activations)
	}
	// Untouched routers share the base outcome's route pointers.
	if po.Final["Y"] != base.ByPrefix[p].Final["Y"] {
		t.Error("Y's route was rebuilt instead of structurally reused")
	}
}

func TestDeltaRefusals(t *testing.T) {
	net := chainNet()
	cand := newTestNet(net).compile(t)
	p := netip.MustParsePrefix("10.0.0.0/16")
	if _, ok := DeltaSimulatePrefix(cand, nil, []string{"X"}, p, Options{}); ok {
		t.Error("delta accepted a nil base")
	}
	if _, ok := DeltaSimulatePrefix(cand, &PrefixOutcome{Prefix: p}, []string{"X"}, p, Options{}); ok {
		t.Error("delta accepted a non-converged base")
	}
	conv := SimulatePrefix(cand, p, Options{})
	noAdj := &PrefixOutcome{Prefix: p, Converged: true, Final: conv.Final}
	if _, ok := DeltaSimulatePrefix(cand, noAdj, []string{"X"}, p, Options{}); ok {
		t.Error("delta accepted a base without AdjIn")
	}
	if _, ok := DeltaSimulatePrefix(cand, conv, []string{"nosuch"}, p, Options{}); ok {
		t.Error("delta accepted an unknown dirty router")
	}
}

func TestDeltaBaseOutcomeUnmutated(t *testing.T) {
	net := chainNet()
	p := netip.MustParsePrefix("10.0.0.0/16")
	base := Simulate(newTestNet(net).compile(t), Options{})
	bp := base.ByPrefix[p]
	beforeBest := make(map[string]string)
	for d, r := range bp.Final { //acrvet:ordered — test snapshot
		beforeBest[d] = r.Key()
	}
	beforeAdj := make(map[string]int)
	for d, m := range bp.AdjIn { //acrvet:ordered — test snapshot
		beforeAdj[d] = len(m)
	}

	tb := newTestNet(net)
	tb.bgp("Y").PeerPolicy(tb.peerAddr("Y", "X"), "lp200", netcfg.Import)
	tb.builder("Y").RoutePolicy("lp200", true, 10).ApplyLocalPref(200).End()
	cand := tb.compile(t)
	if _, ok := DeltaSimulatePrefix(cand, bp, []string{"Y"}, p, Options{}); !ok {
		t.Fatal("delta refused")
	}

	for d, k := range beforeBest {
		if bp.Final[d] == nil || bp.Final[d].Key() != k {
			t.Errorf("delta mutated base Final[%s]", d)
		}
	}
	for d, n := range beforeAdj {
		if len(bp.AdjIn[d]) != n {
			t.Errorf("delta mutated base AdjIn[%s]", d)
		}
	}
}
