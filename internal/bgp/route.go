// Package bgp implements a deterministic path-vector BGP control-plane
// simulator over topo networks and netcfg configurations. It reproduces
// the semantics the HotNets '24 ACR paper's worked incident depends on:
//
//   - eBGP sessions established from `peer` stanzas (a session only comes
//     up when both ends configure each other with the correct AS numbers —
//     so the "override to wrong AS number" misconfiguration manifests as a
//     session that never establishes);
//   - import/export route-policies with prefix-list matching and, in
//     particular, `apply as-path overwrite`, the policy at the heart of the
//     Figure 2 incident;
//   - receiver-side AS-path loop detection as the only loop prevention
//     (senders advertise their best route to every peer) — which is exactly
//     what AS-path overwrite silently disables, making both the route flap
//     and the transient C–S forwarding loop of the paper reproducible;
//   - deterministic sequential (round-robin) activation to a fixpoint, with
//     state-cycle detection: a prefix whose state sequence repeats without
//     converging is reported as flapping, per prefix — BGP computation is
//     independent across prefixes, which also enables DNA-style incremental
//     re-verification at prefix granularity.
package bgp

import (
	"fmt"
	"net/netip"
	"strings"

	"acr/internal/netcfg"
)

// RouteOrigin is the BGP origin attribute (lower is preferred).
type RouteOrigin uint8

// Origin values.
const (
	OriginIGP        RouteOrigin = 0 // network statement
	OriginIncomplete RouteOrigin = 2 // redistributed static
)

// SourceKind says where a route came from.
type SourceKind uint8

// Route sources.
const (
	SrcLocal SourceKind = iota // originated on this router
	SrcPeer                    // learned from a neighbor
)

// Route is one BGP route as held in a router's Adj-RIB-In or Loc-RIB.
// Routes are treated as immutable; policy application copies.
type Route struct {
	Prefix    netip.Prefix
	ASPath    []uint32
	LocalPref uint32
	MED       uint32
	Origin    RouteOrigin
	// NextHop is the address packets are forwarded to: the advertising
	// peer's interface address for learned routes, the static next hop for
	// redistributed statics, or invalid for locally attached prefixes.
	NextHop netip.Addr
	Src     SourceKind
	// PeerAddr is the advertising neighbor (SrcPeer only).
	PeerAddr netip.Addr
	// PeerRID is the advertising neighbor's router ID, used in best-path
	// tie-breaking (SrcPeer only; for local routes the router's own ID).
	PeerRID netip.Addr
	// key memoizes the canonical Key() rendering. Stamped by finalizeRoute
	// once a route becomes an immutable RIB value; empty on mid-policy
	// clones, which are still mutable.
	key string
}

// DefaultLocalPref is the local preference assigned when no policy sets one.
const DefaultLocalPref = 100

// clone returns a mutable copy. The AS path is shared, not copied: every
// mutation site (policy overwrite/prepend, the export prepend) replaces
// the slice with a freshly built one rather than writing through it, so
// structural sharing is safe and the hot path stops allocating a slice
// per clone. The memoized key is reset because the copy may be mutated.
func (r *Route) clone() *Route {
	cp := *r
	cp.key = ""
	return &cp
}

// HasAS reports whether asn appears in the route's AS path.
func (r *Route) HasAS(asn uint32) bool {
	for _, a := range r.ASPath {
		if a == asn {
			return true
		}
	}
	return false
}

// PathString renders the AS path for reports, e.g. "[65001 65002]".
func (r *Route) PathString() string {
	parts := make([]string, len(r.ASPath))
	for i, a := range r.ASPath {
		parts[i] = fmt.Sprint(a)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Key renders a canonical string for state hashing: every field that can
// influence future behavior must appear. Finalized routes answer from the
// memoized interned key; unstamped routes (hand-built in tests, or
// mid-policy copies) compute a fresh rendering without memoizing, which
// keeps Key race-free on routes shared across verifier clones.
func (r *Route) Key() string {
	if r.key != "" {
		return r.key
	}
	return buildKey(r)
}

// Better reports whether route a is preferred over b under the standard
// decision process:
//
//  1. higher LocalPref
//  2. locally originated over learned
//  3. shorter AS path
//  4. lower origin (IGP < incomplete)
//  5. lower MED
//  6. lower advertising-peer router ID
//  7. lower peer address (final deterministic tie break)
//
// b may be nil, in which case a wins.
func Better(a, b *Route) bool {
	if b == nil {
		return true
	}
	if a == nil {
		return false
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.Src != b.Src {
		return a.Src == SrcLocal
	}
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	if a.PeerRID != b.PeerRID {
		return a.PeerRID.Less(b.PeerRID)
	}
	if a.PeerAddr != b.PeerAddr {
		return a.PeerAddr.Less(b.PeerAddr)
	}
	return false
}

// SelectBest returns the most preferred route, or nil for an empty slice.
// Selection is deterministic regardless of input order.
func SelectBest(routes []*Route) *Route {
	var best *Route
	for _, r := range routes {
		if Better(r, best) {
			best = r
		}
	}
	return best
}

// lineRefs is a tiny helper collecting LineRefs during policy evaluation
// and session compilation.
type lineRefs struct {
	refs []netcfg.LineRef
}

func (t *lineRefs) add(device string, line int) {
	if t == nil || line == 0 {
		return
	}
	t.refs = append(t.refs, netcfg.LineRef{Device: device, Line: line})
}

func (t *lineRefs) addRefs(rs []netcfg.LineRef) {
	if t == nil {
		return
	}
	t.refs = append(t.refs, rs...)
}
