package bgp

import (
	"fmt"
	"net/netip"

	"acr/internal/netcfg"
	"acr/internal/provenance"
)

// BuildProvenance reconstructs the derivation graph of an outcome. It is a
// post-convergence analysis pass (the simulation itself carries no
// tracing): for every prefix and every phase of its outcome, it replays
// each router's originations, each session's export→import processing, and
// each best-route selection, with line tracing enabled — producing exactly
// the provenance that systems like Y! record online. Derivations identical
// across phases are deduplicated, so a flapping prefix's graph is the
// union of the derivations of all its cycle states.
func BuildProvenance(n *Net, out *Outcome) *provenance.Graph {
	g := provenance.NewGraph()
	for _, p := range n.AllPrefixes() {
		po := out.ByPrefix[p]
		if po == nil {
			continue
		}
		buildPrefixProvenance(g, n, p, po)
	}
	return g
}

func buildPrefixProvenance(g *provenance.Graph, n *Net, prefix netip.Prefix, po *PrefixOutcome) {
	ids := map[string]int{} // dedup key → node id
	add := func(key string, node provenance.Node) int {
		if id, ok := ids[key]; ok {
			return id
		}
		id := g.Add(node)
		ids[key] = id
		return id
	}

	for _, phase := range po.Phases() {
		// Origination and selection nodes first, so imports can reference
		// the advertising neighbor's selection as a parent.
		selIDs := map[string]int{} // router → selection node id for this phase
		for _, name := range n.Order {
			r := n.Routers[name]
			for _, o := range r.Origins {
				if o.Prefix != prefix {
					continue
				}
				var tr lineRefs
				if rt, ok := originRoute(r, o, &tr); ok {
					key := fmt.Sprintf("orig|%s|%s", name, rt.Key())
					add(key, provenance.Node{
						Kind: provenance.Origination, Router: name, Prefix: prefix,
						Detail: "originates " + rt.PathString(), Lines: tr.refs,
					})
				}
			}
			if best := phase[name]; best != nil {
				key := fmt.Sprintf("sel|%s|%s", name, best.Key())
				// The selection's parent is filled in below once the
				// supporting import/origination node exists; we record the
				// selection itself here.
				selIDs[name] = add(key, provenance.Node{
					Kind: provenance.Selection, Router: name, Prefix: prefix,
					Detail: fmt.Sprintf("selects %s via %s", best.PathString(), bestVia(best)),
				})
			}
		}
		// Import / rejection derivations: replay each established session.
		for _, name := range n.Order {
			r := n.Routers[name]
			for _, s := range r.Sessions {
				nbBest := phase[s.PeerName]
				if nbBest == nil {
					continue
				}
				nbRouter := n.Routers[s.PeerName]
				nbSess := n.sessionFrom(s.PeerName, s.LocalAddr)
				if nbSess == nil {
					continue
				}
				var exTr lineRefs
				adv, ok := processExport(nbRouter, nbSess, nbBest, &exTr)
				if !ok {
					// Export suppressed: negative provenance on the sender.
					key := fmt.Sprintf("exdeny|%s->%s|%s", s.PeerName, name, nbBest.Key())
					node := provenance.Node{
						Kind: provenance.Rejection, Router: s.PeerName, Prefix: prefix,
						Peer: s.LocalAddr, Detail: "export policy suppressed advertisement",
						Lines: exTr.refs,
					}
					if pid, ok := selIDs[s.PeerName]; ok {
						node.Parents = []int{pid}
					}
					add(key, node)
					continue
				}
				var imTr lineRefs
				imTr.addRefs(exTr.refs)
				in, accepted, reason := processImport(r, s, adv, &imTr)
				if accepted {
					key := fmt.Sprintf("imp|%s|%s|%s", name, s.PeerAddr, in.Key())
					node := provenance.Node{
						Kind: provenance.Import, Router: name, Prefix: prefix,
						Peer: s.PeerAddr, Detail: fmt.Sprintf("imports %s from %s", in.PathString(), s.PeerName),
						Lines: imTr.refs,
					}
					if pid, ok := selIDs[s.PeerName]; ok {
						node.Parents = []int{pid}
					}
					id := add(key, node)
					// Wire this import as a parent of the receiver's
					// selection when it is the route selected.
					if best := phase[name]; best != nil && best.Src == SrcPeer && best.PeerAddr == s.PeerAddr && best.Key() == in.Key() {
						if sid, ok := selIDs[name]; ok {
							g.Node(sid).Parents = appendUnique(g.Node(sid).Parents, id)
						}
					}
				} else {
					key := fmt.Sprintf("rej|%s|%s|%s|%s", name, s.PeerAddr, adv.Key(), reason)
					node := provenance.Node{
						Kind: provenance.Rejection, Router: name, Prefix: prefix,
						Peer: s.PeerAddr, Detail: fmt.Sprintf("rejects %s from %s: %s", adv.PathString(), s.PeerName, reason),
						Lines: imTr.refs,
					}
					if pid, ok := selIDs[s.PeerName]; ok {
						node.Parents = []int{pid}
					}
					add(key, node)
				}
			}
			// Local selections supported by originations.
			if best := phase[name]; best != nil && best.Src == SrcLocal {
				for _, o := range r.Origins {
					if o.Prefix != prefix {
						continue
					}
					var tr lineRefs
					if rt, ok := originRoute(r, o, &tr); ok && rt.Key() == best.Key() {
						okey := fmt.Sprintf("orig|%s|%s", name, rt.Key())
						if oid, ok := ids[okey]; ok {
							if sid, ok := selIDs[name]; ok {
								g.Node(sid).Parents = appendUnique(g.Node(sid).Parents, oid)
							}
						}
					}
				}
			}
		}
	}
}

func bestVia(r *Route) string {
	if r.Src == SrcLocal {
		return "local"
	}
	return r.PeerAddr.String()
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// MissingOriginLines computes negative provenance for a prefix that has no
// derivation at all — typically a missing origination (the paper's most
// common error class, "missing redistribution of static route", 20.8% of
// incidents). It returns the lines an operator would inspect: static
// routes covering the prefix anywhere, the would-be origin router's bgp
// block header, and its redistribute statement if present.
func MissingOriginLines(n *Net, prefix netip.Prefix) []netcfg.LineRef {
	var out []netcfg.LineRef
	origin := n.Topo.OriginOfPrefix(prefix)
	for _, name := range n.Order {
		r := n.Routers[name]
		for _, s := range r.Statics {
			if s.Prefix == prefix || (s.Prefix.IsValid() && s.Prefix.Overlaps(prefix)) {
				out = append(out, netcfg.LineRef{Device: name, Line: s.Line})
				if b := r.File.BGP; b != nil {
					out = append(out, netcfg.LineRef{Device: name, Line: b.Line})
					if b.Redistribute != nil {
						out = append(out, netcfg.LineRef{Device: name, Line: b.Redistribute.Line})
					}
				}
			}
		}
	}
	if origin != nil {
		if b := n.Routers[origin.Name].File.BGP; b != nil {
			out = append(out, netcfg.LineRef{Device: origin.Name, Line: b.Line})
			if b.Redistribute != nil {
				out = append(out, netcfg.LineRef{Device: origin.Name, Line: b.Redistribute.Line})
			}
		}
	}
	return out
}
