package bgp

import (
	"strconv"
	"strings"
)

// internTable dedupes the strings and slices the simulator's hot path
// would otherwise allocate per route: canonical Key() strings and AS-path
// slices. One table lives on each compiled Net (every Router holds a
// pointer to its Net's table), so interned values never leak between
// networks and the table's lifetime matches the Net's.
//
// Concurrency: a Net is simulated by one goroutine at a time — the
// incremental verifier compiles a fresh Net per candidate check and clones
// never share candidate Nets across workers — so the table is deliberately
// unsynchronized. Base-outcome routes are only ever read after their
// simulation completes.
type internTable struct {
	// keys maps a rendered route key to its canonical string instance, so
	// equal keys share one allocation and compare pointer-fast.
	keys map[string]string
	// paths maps the rendered AS-path segment ("[65001 65002]") to a
	// canonical []uint32. Safe to share because policy application always
	// replaces AS-path slices with freshly built ones, never mutating a
	// path in place.
	paths map[string][]uint32
}

func newInternTable() *internTable {
	return &internTable{keys: map[string]string{}, paths: map[string][]uint32{}}
}

// buildKey renders the canonical route key without fmt. The output is
// byte-identical to the historical fmt.Sprintf format in Route.Key —
// provenance node keys and journal state hashes depend on it.
func buildKey(r *Route) string {
	b := make([]byte, 0, 96)
	b = append(b, r.Prefix.String()...)
	b = append(b, '|', '[')
	for i, a := range r.ASPath {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendUint(b, uint64(a), 10)
	}
	b = append(b, "]|lp"...)
	b = strconv.AppendUint(b, uint64(r.LocalPref), 10)
	b = append(b, "|med"...)
	b = strconv.AppendUint(b, uint64(r.MED), 10)
	b = append(b, "|o"...)
	b = strconv.AppendUint(b, uint64(r.Origin), 10)
	b = append(b, "|nh"...)
	b = append(b, r.NextHop.String()...)
	b = append(b, "|s"...)
	b = strconv.AppendUint(b, uint64(r.Src), 10)
	b = append(b, "|p"...)
	b = append(b, r.PeerAddr.String()...)
	return string(b)
}

// finalizeRoute stamps r's memoized key and, when a table is available,
// interns the key string and AS-path slice. It is called at the three
// points where a route becomes an immutable RIB value: import acceptance,
// export emission, and origination. Mid-policy clones stay unstamped (the
// clone resets the key) because they are still mutable. A nil table is
// tolerated so hand-built Routers in tests keep working.
func finalizeRoute(t *internTable, r *Route) *Route {
	k := buildKey(r)
	if t != nil {
		if ik, ok := t.keys[k]; ok {
			k = ik
		} else {
			t.keys[k] = k
		}
		if len(r.ASPath) > 0 {
			// The path segment sits between the first '|' and its ']'.
			if i := strings.IndexByte(k, '|'); i >= 0 {
				if j := strings.IndexByte(k[i:], ']'); j >= 0 {
					ps := k[i+1 : i+j+1]
					if p, ok := t.paths[ps]; ok {
						r.ASPath = p
					} else {
						t.paths[ps] = r.ASPath
					}
				}
			}
		}
	}
	r.key = k
	return r
}
