package bgp

import (
	"acr/internal/netcfg"
	"acr/internal/provenance"
)

// DeviceGraphOf builds the cross-device provenance layer for a compiled
// network: one session edge per physical adjacency — annotated with the
// session lines of both ends when a session is configured (established or
// failed) — plus a redistribution self-edge per router whose statics flow
// into BGP. Adjacencies without any configured session still yield an edge:
// reachability queries must over-approximate, and a candidate edit can
// create a session where none exists today.
func DeviceGraphOf(n *Net) *provenance.DeviceGraph {
	g := provenance.NewDeviceGraph(n.Order)
	// Index failed sessions by (router, peer) so their negative-provenance
	// lines annotate the adjacency edge.
	failed := map[[2]string]*FailedSession{}
	for _, fs := range n.Failed {
		failed[[2]string{fs.Router, fs.PeerName}] = fs
	}
	seen := map[[2]string]bool{}
	for _, name := range n.Order {
		for _, adj := range n.Topo.Adjacencies(name) {
			key := [2]string{name, adj.PeerNode}
			rev := [2]string{adj.PeerNode, name}
			if seen[key] || seen[rev] {
				continue
			}
			seen[key] = true
			e := provenance.DeviceEdge{From: name, To: adj.PeerNode, Kind: provenance.SessionEdge}
			if s := n.SessionBetween(name, adj.PeerNode); s != nil {
				e.Established = true
				e.Lines = append(append([]netcfg.LineRef{}, s.LocalLines...), s.RemoteLines...)
			} else {
				for _, k := range [][2]string{key, rev} {
					if fs := failed[k]; fs != nil {
						e.Lines = append(e.Lines, fs.Lines...)
					}
				}
			}
			g.AddEdge(e)
		}
	}
	for _, name := range n.Order {
		f := n.Files[name]
		if f == nil || f.BGP == nil || f.BGP.Redistribute == nil {
			continue
		}
		g.AddEdge(provenance.DeviceEdge{
			From: name, To: name, Kind: provenance.RedistributeEdge, Established: true,
			Lines: []netcfg.LineRef{{Device: name, Line: f.BGP.Redistribute.Line}},
		})
	}
	return g.Seal()
}
