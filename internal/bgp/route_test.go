package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mkRoute(mod func(*Route)) *Route {
	r := &Route{
		Prefix:    netip.MustParsePrefix("10.0.0.0/16"),
		ASPath:    []uint32{1, 2},
		LocalPref: DefaultLocalPref,
		Src:       SrcPeer,
		PeerAddr:  netip.MustParseAddr("172.16.0.1"),
		PeerRID:   netip.MustParseAddr("1.0.0.9"),
		NextHop:   netip.MustParseAddr("172.16.0.1"),
	}
	if mod != nil {
		mod(r)
	}
	return r
}

func TestBetterLocalPref(t *testing.T) {
	hi := mkRoute(func(r *Route) { r.LocalPref = 200; r.ASPath = []uint32{1, 2, 3} })
	lo := mkRoute(nil)
	if !Better(hi, lo) {
		t.Error("higher local-pref should win despite longer path")
	}
	if Better(lo, hi) {
		t.Error("Better is not antisymmetric")
	}
}

func TestBetterLocalOverLearned(t *testing.T) {
	local := mkRoute(func(r *Route) { r.Src = SrcLocal; r.ASPath = []uint32{7, 8} })
	learned := mkRoute(nil)
	if !Better(local, learned) {
		t.Error("local origination should beat learned route at equal local-pref")
	}
}

func TestBetterShorterPath(t *testing.T) {
	short := mkRoute(func(r *Route) { r.ASPath = []uint32{1} })
	long := mkRoute(nil)
	if !Better(short, long) {
		t.Error("shorter AS path should win")
	}
}

func TestBetterOriginAndMED(t *testing.T) {
	igp := mkRoute(func(r *Route) { r.Origin = OriginIGP })
	inc := mkRoute(func(r *Route) { r.Origin = OriginIncomplete })
	if !Better(igp, inc) {
		t.Error("IGP origin should beat incomplete")
	}
	lowMED := mkRoute(func(r *Route) { r.MED = 5 })
	hiMED := mkRoute(func(r *Route) { r.MED = 50 })
	if !Better(lowMED, hiMED) {
		t.Error("lower MED should win")
	}
}

func TestBetterRouterIDTieBreak(t *testing.T) {
	a := mkRoute(func(r *Route) { r.PeerRID = netip.MustParseAddr("1.0.0.1") })
	c := mkRoute(func(r *Route) { r.PeerRID = netip.MustParseAddr("1.0.0.3") })
	if !Better(a, c) {
		t.Error("lower peer router-id should win the tie")
	}
}

func TestBetterPeerAddrFinalTieBreak(t *testing.T) {
	a := mkRoute(func(r *Route) { r.PeerAddr = netip.MustParseAddr("172.16.0.1") })
	b := mkRoute(func(r *Route) { r.PeerAddr = netip.MustParseAddr("172.16.0.5") })
	if !Better(a, b) {
		t.Error("lower peer address should win the final tie")
	}
	if Better(b, a) {
		t.Error("tie break not antisymmetric")
	}
}

func TestBetterNil(t *testing.T) {
	r := mkRoute(nil)
	if !Better(r, nil) {
		t.Error("any route beats nil")
	}
	if Better(nil, r) {
		t.Error("nil never beats a route")
	}
}

func TestSelectBestDeterministic(t *testing.T) {
	rs := []*Route{
		mkRoute(func(r *Route) { r.ASPath = []uint32{1, 2, 3} }),
		mkRoute(func(r *Route) { r.ASPath = []uint32{9} }),
		mkRoute(nil),
	}
	want := rs[1]
	for i := 0; i < 10; i++ {
		rand.New(rand.NewSource(int64(i))).Shuffle(len(rs), func(a, b int) { rs[a], rs[b] = rs[b], rs[a] })
		if got := SelectBest(rs); got != want {
			t.Fatalf("SelectBest order-dependent: got %v", got.PathString())
		}
	}
	if SelectBest(nil) != nil {
		t.Error("SelectBest(nil) should be nil")
	}
}

func TestHasAS(t *testing.T) {
	r := mkRoute(nil)
	if !r.HasAS(2) || r.HasAS(3) {
		t.Errorf("HasAS wrong for path %v", r.PathString())
	}
}

func TestCloneIsolation(t *testing.T) {
	r := mkRoute(nil)
	c := r.clone()
	// Scalar fields are copied; the AS path is deliberately shared, and
	// every mutation site replaces the slice instead of writing through it
	// (policy overwrite/prepend and the export prepend all build fresh
	// slices), so replacement must leave the original untouched.
	c.ASPath = []uint32{99}
	c.LocalPref = 7
	if r.ASPath[0] != 1 || r.LocalPref != DefaultLocalPref {
		t.Error("clone shares state with original")
	}
}

func TestCloneResetsMemoizedKey(t *testing.T) {
	r := finalizeRoute(nil, mkRoute(nil))
	if r.key == "" || r.Key() != buildKey(r) {
		t.Fatalf("finalizeRoute did not stamp the key: %q", r.key)
	}
	c := r.clone()
	if c.key != "" {
		t.Errorf("clone kept the memoized key %q; mutations would go unseen", c.key)
	}
	c.LocalPref = 7
	if c.Key() == r.Key() {
		t.Error("mutated clone renders the original's key")
	}
}

func TestInternTableDedupes(t *testing.T) {
	tab := newInternTable()
	a := finalizeRoute(tab, mkRoute(nil))
	b := finalizeRoute(tab, mkRoute(nil))
	if a.Key() != b.Key() {
		t.Fatalf("equal routes got different keys: %q vs %q", a.Key(), b.Key())
	}
	// One canonical key string and one AS-path backing in the table.
	if len(tab.keys) != 1 {
		t.Errorf("table holds %d key strings, want 1", len(tab.keys))
	}
	if len(tab.paths) != 1 {
		t.Errorf("table holds %d AS paths, want 1", len(tab.paths))
	}
	if &a.ASPath[0] != &b.ASPath[0] {
		t.Error("equal AS paths not interned to one slice")
	}
}

func TestKeyDistinguishesFields(t *testing.T) {
	base := mkRoute(nil)
	variants := []*Route{
		mkRoute(func(r *Route) { r.ASPath = []uint32{1} }),
		mkRoute(func(r *Route) { r.LocalPref = 1 }),
		mkRoute(func(r *Route) { r.MED = 1 }),
		mkRoute(func(r *Route) { r.Origin = OriginIncomplete }),
		mkRoute(func(r *Route) { r.NextHop = netip.MustParseAddr("9.9.9.9") }),
		mkRoute(func(r *Route) { r.PeerAddr = netip.MustParseAddr("9.9.9.9") }),
		mkRoute(func(r *Route) { r.Src = SrcLocal }),
	}
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("variant %d has same Key as base: %s", i, v.Key())
		}
	}
}

// Property: Better is a strict weak ordering — irreflexive and
// antisymmetric on random routes.
func TestQuickBetterAntisymmetric(t *testing.T) {
	gen := func(rng *rand.Rand) *Route {
		return mkRoute(func(r *Route) {
			r.ASPath = make([]uint32, rng.Intn(4)+1)
			for i := range r.ASPath {
				r.ASPath[i] = uint32(rng.Intn(5) + 1)
			}
			r.LocalPref = uint32(rng.Intn(3)) * 100
			r.MED = uint32(rng.Intn(3))
			r.Origin = RouteOrigin(rng.Intn(2) * 2)
			if rng.Intn(4) == 0 {
				r.Src = SrcLocal
			}
			r.PeerRID = netip.AddrFrom4([4]byte{1, 0, 0, byte(rng.Intn(4) + 1)})
			r.PeerAddr = netip.AddrFrom4([4]byte{172, 16, 0, byte(rng.Intn(4) + 1)})
		})
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		if Better(a, a) || Better(b, b) {
			return false
		}
		return !(Better(a, b) && Better(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: SelectBest returns a maximal element — nothing in the slice is
// Better than the selection.
func TestQuickSelectBestMaximal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 1
		rs := make([]*Route, n)
		for i := range rs {
			rs[i] = mkRoute(func(r *Route) {
				r.ASPath = make([]uint32, rng.Intn(4)+1)
				for j := range r.ASPath {
					r.ASPath[j] = uint32(rng.Intn(5) + 1)
				}
				r.LocalPref = uint32(rng.Intn(3)) * 100
				r.PeerRID = netip.AddrFrom4([4]byte{1, 0, 0, byte(rng.Intn(100) + 1)})
				r.PeerAddr = netip.AddrFrom4([4]byte{172, 16, byte(i), 1})
			})
		}
		best := SelectBest(rs)
		for _, r := range rs {
			if Better(r, best) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
