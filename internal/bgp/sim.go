package bgp

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"strings"
)

// PrefixOutcome is the control-plane result for one prefix. Once
// SimulatePrefix returns, the outcome (including its Route values) is
// immutable: the incremental verifier shares base outcomes by pointer
// across candidate checks — and, with verify.Incremental.Clone, across
// concurrently validating workers — so nothing may mutate one in place.
type PrefixOutcome struct {
	Prefix    netip.Prefix
	Converged bool
	// Canceled marks an outcome abandoned by cooperative cancellation
	// (Options.Ctx): neither converged nor genuinely flapping.
	Canceled bool
	// Passes is the number of full activation passes executed.
	Passes int
	// Final is the stable best-route map (router name → route, absent when
	// the router has no route). Nil when not converged.
	Final map[string]*Route
	// AdjIn is the stable adj-RIB-in at convergence
	// (router → sender's local address → post-import route), retained so
	// delta re-simulation can seed a candidate's fixpoint from it. Nil
	// when not converged. Immutable like the rest of the outcome.
	AdjIn map[string]map[netip.Addr]*Route
	// Cycle holds the repeating sequence of best-route maps when the
	// prefix flaps: the control plane visits these states forever. Nil
	// when converged.
	Cycle []map[string]*Route
	// Activations counts router activations executed to reach this
	// outcome: the unit of simulation work the delta benchmark compares.
	// Observational only — never part of Canonical() or verdicts.
	Activations int
}

// Phases returns the dataplane-relevant states: the single final state
// when converged, or every state of the cycle when flapping.
func (po *PrefixOutcome) Phases() []map[string]*Route {
	if po.Converged {
		return []map[string]*Route{po.Final}
	}
	return po.Cycle
}

// FlappingRouters lists routers whose best route differs across cycle
// phases (empty when converged).
func (po *PrefixOutcome) FlappingRouters() []string {
	if po.Converged || len(po.Cycle) == 0 {
		return nil
	}
	var out []string
	for name := range po.Cycle[0] {
		first := po.Cycle[0][name]
		for _, ph := range po.Cycle[1:] {
			if routeKey(ph[name]) != routeKey(first) {
				out = append(out, name)
				break
			}
		}
	}
	// Routers absent from phase 0 but present later also flap.
	seen := map[string]bool{}
	for _, n := range out {
		seen[n] = true
	}
	for _, ph := range po.Cycle[1:] {
		for name := range ph {
			if _, ok := po.Cycle[0][name]; !ok && !seen[name] {
				out = append(out, name)
				seen[name] = true
			}
		}
	}
	sort.Strings(out)
	return out
}

// Outcome is the control-plane result for every originated prefix.
type Outcome struct {
	Net      *Net
	ByPrefix map[netip.Prefix]*PrefixOutcome
}

// Canceled reports whether any prefix outcome was abandoned by
// cooperative cancellation. A canceled Outcome reflects a partial
// computation and must not feed verification decisions.
func (o *Outcome) Canceled() bool {
	for _, po := range o.ByPrefix { //acrvet:ordered boolean any-reduction; order cannot change the result

		if po.Canceled {
			return true
		}
	}
	return false
}

// Converged reports whether every prefix converged.
func (o *Outcome) Converged() bool {
	for _, po := range o.ByPrefix { //acrvet:ordered boolean all-reduction; order cannot change the result

		if !po.Converged {
			return false
		}
	}
	return true
}

// FlappingPrefixes lists prefixes that failed to converge, sorted.
func (o *Outcome) FlappingPrefixes() []netip.Prefix {
	var out []netip.Prefix
	for p, po := range o.ByPrefix {
		if !po.Converged {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

// Options tunes simulation.
type Options struct {
	// MaxPasses bounds activation passes per prefix; 0 means automatic
	// (2×routers+20, minimum 32). A prefix that neither converges nor
	// revisits a state within the bound is reported as not converged with
	// the tail of observed states as its Cycle.
	MaxPasses int
	// Ctx, when non-nil, is checked cooperatively between activation
	// passes and between prefixes; on cancellation the simulation stops
	// early and the outcome is marked Canceled. Callers that set a
	// deadline must treat canceled outcomes as unusable, not as flapping.
	Ctx context.Context
	// PrefixHook, when non-nil, runs at the start of every per-prefix
	// simulation. It exists as a seam for the chaos harness (injected
	// panics and delays) and for instrumentation; production runs leave
	// it nil.
	PrefixHook func(netip.Prefix)
}

// canceled reports whether the options' context is done.
func (o Options) canceled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Simulate runs the control plane for every originated prefix.
// BGP computation is independent across prefixes (policies here never
// couple prefixes), which is what makes per-prefix incremental
// re-simulation sound — the DNA-style validator exploits that.
func Simulate(n *Net, opts Options) *Outcome {
	out := &Outcome{Net: n, ByPrefix: map[netip.Prefix]*PrefixOutcome{}}
	for _, p := range n.AllPrefixes() {
		if opts.canceled() {
			out.ByPrefix[p] = &PrefixOutcome{Prefix: p, Canceled: true}
			continue
		}
		out.ByPrefix[p] = SimulatePrefix(n, p, opts)
	}
	return out
}

// prefixState is the full dynamic state of one prefix's computation.
type prefixState struct {
	// adjIn[router][peerAddr] is the post-import route the router holds
	// from that neighbor.
	adjIn map[string]map[netip.Addr]*Route
	best  map[string]*Route
}

func newPrefixState(n *Net) *prefixState {
	st := &prefixState{adjIn: map[string]map[netip.Addr]*Route{}, best: map[string]*Route{}}
	for _, name := range n.Order {
		st.adjIn[name] = map[netip.Addr]*Route{}
	}
	return st
}

func routeKey(r *Route) string {
	if r == nil {
		return "-"
	}
	return r.Key()
}

// hash digests the complete state; any field that can influence future
// transitions must be included. Finalized routes answer Key() from their
// interned stamp, so hashing is a sequence of plain writes — no fmt.
func (st *prefixState) hash(order []string) uint64 {
	h := fnv.New64a()
	var buf []byte
	for _, name := range order {
		h.Write([]byte(name))
		h.Write([]byte{'='})
		h.Write([]byte(routeKey(st.best[name])))
		peers := make([]netip.Addr, 0, len(st.adjIn[name]))
		for a := range st.adjIn[name] {
			peers = append(peers, a)
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i].Less(peers[j]) })
		for _, a := range peers {
			buf = append(buf[:0], '|')
			buf = a.AppendTo(buf)
			buf = append(buf, ':')
			h.Write(buf)
			h.Write([]byte(st.adjIn[name][a].Key()))
		}
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

func (st *prefixState) snapshot(order []string) map[string]*Route {
	snap := make(map[string]*Route, len(order))
	for _, name := range order {
		if r := st.best[name]; r != nil {
			snap[name] = r
		}
	}
	return snap
}

// SimulatePrefix runs one prefix to fixpoint or detected oscillation,
// using deterministic sequential (round-robin) activation: each full pass
// activates every router in topology order; a router that changes its best
// route immediately sends updates (or withdrawals) to every established
// session — BGP has no sender-side split horizon for eBGP; receivers rely
// on AS-path loop detection, applied inside processImport.
func SimulatePrefix(n *Net, prefix netip.Prefix, opts Options) *PrefixOutcome {
	if opts.PrefixHook != nil {
		opts.PrefixHook(prefix)
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 2*len(n.Order) + 20
		if maxPasses < 32 {
			maxPasses = 32
		}
	}
	st := newPrefixState(n)
	seen := map[uint64]int{}       // state hash → pass index it was first seen after
	snaps := []map[string]*Route{} // snapshot after each pass
	acts := 0

	for pass := 1; pass <= maxPasses; pass++ {
		if opts.canceled() {
			return &PrefixOutcome{Prefix: prefix, Canceled: true, Passes: pass, Activations: acts}
		}
		changed := false
		for _, name := range n.Order {
			acts++
			if n.activate(st, name, prefix) {
				changed = true
			}
		}
		if !changed {
			// The state is stable; hand the adj-RIB-in over to the outcome
			// (st is dead from here) so delta re-simulation can seed from it.
			return &PrefixOutcome{Prefix: prefix, Converged: true, Passes: pass,
				Final: st.snapshot(n.Order), AdjIn: st.adjIn, Activations: acts}
		}
		h := st.hash(n.Order)
		if first, ok := seen[h]; ok {
			// States after passes first..pass-1 repeat forever.
			return &PrefixOutcome{Prefix: prefix, Converged: false, Passes: pass, Cycle: snaps[first:], Activations: acts}
		}
		seen[h] = len(snaps)
		snaps = append(snaps, st.snapshot(n.Order))
	}
	// Bound hit without repeat: report the tail as the observed unstable
	// behavior. This indicates maxPasses is too small for the topology.
	tail := snaps
	if len(tail) > 8 {
		tail = tail[len(tail)-8:]
	}
	return &PrefixOutcome{Prefix: prefix, Converged: false, Passes: maxPasses, Cycle: tail, Activations: acts}
}

// activate recomputes router name's best route for prefix and, on change,
// pushes updates to neighbors. Reports whether anything changed (best or
// any neighbor's adj-in).
func (n *Net) activate(st *prefixState, name string, prefix netip.Prefix) bool {
	r := n.Routers[name]
	var candidates []*Route
	for _, o := range r.Origins {
		if o.Prefix != prefix {
			continue
		}
		if rt, ok := originRoute(r, o, nil); ok {
			candidates = append(candidates, rt)
		}
	}
	for _, rt := range st.adjIn[name] { //acrvet:ordered SelectBest applies the Better total order, so candidate collection order is immaterial
		candidates = append(candidates, rt)
	}
	best := SelectBest(candidates)
	if routeKey(best) == routeKey(st.best[name]) {
		return false
	}
	st.best[name] = best
	// Push the new best (or withdrawal) to every session.
	for _, s := range r.Sessions {
		nb := s.PeerName
		prev := st.adjIn[nb][s.LocalAddr]
		var next *Route
		if best != nil {
			if adv, ok := processExport(r, s, best, nil); ok {
				nbRouter := n.Routers[nb]
				nbSess := n.sessionFrom(nb, s.LocalAddr)
				if nbSess != nil {
					if in, ok, _ := processImport(nbRouter, nbSess, adv, nil); ok {
						next = in
					}
				}
			}
		}
		if routeKey(prev) != routeKey(next) {
			if next == nil {
				delete(st.adjIn[nb], s.LocalAddr)
			} else {
				st.adjIn[nb][s.LocalAddr] = next
			}
		}
	}
	return true
}

// sessionFrom returns router `name`'s session whose neighbor address is
// peerAddr, or nil.
func (n *Net) sessionFrom(name string, peerAddr netip.Addr) *Session {
	for _, s := range n.Routers[name].Sessions {
		if s.PeerAddr == peerAddr {
			return s
		}
	}
	return nil
}

// Describe renders a compact multi-line report of an outcome, used by the
// CLI tools and examples.
func (o *Outcome) Describe() string {
	var sb strings.Builder
	prefixes := make([]netip.Prefix, 0, len(o.ByPrefix))
	for p := range o.ByPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr().Less(prefixes[j].Addr()) })
	for _, p := range prefixes {
		po := o.ByPrefix[p]
		if po.Converged {
			fmt.Fprintf(&sb, "%s: converged in %d passes\n", p, po.Passes)
		} else {
			fmt.Fprintf(&sb, "%s: FLAPPING (cycle of %d states; unstable routers: %s)\n",
				p, len(po.Cycle), strings.Join(po.FlappingRouters(), ", "))
		}
	}
	return sb.String()
}
