package bgp

import "net/netip"

// This file implements delta re-simulation: running a candidate
// configuration's per-prefix fixpoint from the base outcome instead of
// from a cold start. The base outcome's stable RIBs (Final + AdjIn) seed
// the state; only the edited ("dirty") devices are re-derived and
// force-activated; from there a worklist propagates re-activations to
// exactly the routers whose inputs actually changed, and the run
// terminates when the frontier goes quiet. Routers the wave never reaches
// keep their base state by structural sharing — their route pointers are
// carried into the candidate outcome untouched.
//
// Soundness rests on two facts. First, a router whose configuration and
// whose entire adj-RIB-in are unchanged recomputes exactly the same best
// route (selection is a pure function of origins + adj-in), so skipping
// its activation cannot lose a transition: any input change reaches it
// through a neighbor's push, which enqueues it. Second, the caller only
// uses delta when the session fingerprint is unchanged (see
// verify.Incremental), so the base adj-in's session structure is the
// candidate's session structure and stale entries can only differ in
// route content, which the dirty-device re-derivation and forced pushes
// rewrite. The one caveat is multi-stability: a network with several
// fixpoints could converge to a different one when started warm. The
// -delta-differential mode, FuzzDeltaSim, and the corpus byte-identity
// gate exist to catch that class; every divergence found is a bug.

// DeltaSimulatePrefix re-simulates one prefix for net n (the candidate
// compilation) starting from base (the converged outcome of the
// pre-edit net), re-deriving and force-activating only the dirty
// routers — the devices whose configuration text changed. The false
// return refuses the shortcut (non-converged or AdjIn-less base, unknown
// dirty router, cancellation, pass bound exhausted) and the caller must
// fall back to a cold SimulatePrefix.
func DeltaSimulatePrefix(n *Net, base *PrefixOutcome, dirty []string, prefix netip.Prefix, opts Options) (*PrefixOutcome, bool) {
	if base == nil || !base.Converged || base.Final == nil || base.AdjIn == nil {
		return nil, false
	}
	for _, d := range dirty {
		if n.Routers[d] == nil {
			return nil, false
		}
	}
	if opts.PrefixHook != nil {
		opts.PrefixHook(prefix)
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 2*len(n.Order) + 20
		if maxPasses < 32 {
			maxPasses = 32
		}
	}

	// Seed the state from the base outcome, copy-on-write: best is a
	// fresh map (snapshots alias it), adj-in inner maps stay shared with
	// the immutable base until a router's first write.
	st := &prefixState{
		adjIn: make(map[string]map[netip.Addr]*Route, len(n.Order)),
		best:  make(map[string]*Route, len(n.Order)),
	}
	owned := make(map[string]bool, len(dirty))
	for _, name := range n.Order {
		if m := base.AdjIn[name]; m != nil {
			st.adjIn[name] = m
		} else {
			st.adjIn[name] = map[netip.Addr]*Route{}
			owned[name] = true
		}
		if r := base.Final[name]; r != nil {
			st.best[name] = r
		}
	}
	ownAdj := func(name string) map[netip.Addr]*Route {
		if !owned[name] {
			cp := make(map[netip.Addr]*Route, len(st.adjIn[name]))
			for a, rt := range st.adjIn[name] { //acrvet:ordered — map copy
				cp[a] = rt
			}
			st.adjIn[name] = cp
			owned[name] = true
		}
		return st.adjIn[name]
	}

	// Phase 1: rebuild each dirty router's entire adj-RIB-in under the
	// candidate's policies from the neighbors' (still-base) best routes —
	// the same reconstruction RederiveLeaves performs. Base entries import
	// through the OLD import policies, so every entry is stale on a device
	// whose config changed.
	acts := 0
	dirtySet := make(map[string]bool, len(dirty))
	for _, d := range dirty {
		dirtySet[d] = true
	}
	for _, name := range n.Order {
		if !dirtySet[name] {
			continue
		}
		r := n.Routers[name]
		adj := ownAdj(name)
		for a := range adj { //acrvet:ordered — clearing for rebuild
			delete(adj, a)
		}
		for _, ls := range r.Sessions {
			ns := n.sessionFrom(ls.PeerName, ls.LocalAddr)
			if ns == nil {
				continue
			}
			nbBest := st.best[ls.PeerName]
			if nbBest == nil {
				continue
			}
			adv, ok := processExport(n.Routers[ls.PeerName], ns, nbBest, nil)
			if !ok {
				continue
			}
			in, ok, _ := processImport(r, ls, adv, nil)
			if !ok {
				continue
			}
			adj[ns.LocalAddr] = in
		}
	}

	// Phase 2: force-activate the dirty routers. Forcing runs the push
	// loop even when the best route is unchanged, because a changed
	// EXPORT policy (or origination attribute, or router ID stamped by
	// the neighbor's import) alters what neighbors hear without moving
	// the local best. Receivers whose adj-in actually changed form the
	// first frontier.
	pending := map[string]bool{}
	for _, name := range n.Order {
		if !dirtySet[name] {
			continue
		}
		acts++
		n.activateDelta(st, name, prefix, true, ownAdj, pending)
	}

	// Phase 3: worklist to fixpoint. Each pass activates the frontier in
	// topology order; a router re-enters the frontier only when a push
	// changed its adj-in. Quiet frontier = converged.
	for pass := 1; len(pending) > 0; pass++ {
		if pass > maxPasses || opts.canceled() {
			return nil, false
		}
		next := map[string]bool{}
		for _, name := range n.Order {
			if !pending[name] {
				continue
			}
			acts++
			n.activateDelta(st, name, prefix, false, ownAdj, next)
		}
		pending = next
	}
	return &PrefixOutcome{Prefix: prefix, Converged: true, Passes: base.Passes,
		Final: st.snapshot(n.Order), AdjIn: st.adjIn, Activations: acts}, true
}

// sameRoute is the delta path's change predicate: canonical key plus the
// advertising router ID. Key() deliberately omits PeerRID (within one
// net, the adj-in slot determines it), but a delta run mixes base-net
// routes into candidate-net slots, so a router-ID edit would otherwise
// leave a key-equal, RID-stale entry in place and corrupt tie-breaking.
func sameRoute(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.PeerRID == b.PeerRID && routeKey(a) == routeKey(b)
}

// activateDelta is activate() for the delta run: it recomputes router
// name's best route and pushes changes to neighbors, marking every
// neighbor whose adj-in changed in frontier. With force set the push loop
// runs even when the best is unchanged (see DeltaSimulatePrefix phase 2).
// Writes to a neighbor's adj-in go through ownAdj to preserve the base
// outcome's immutability.
func (n *Net) activateDelta(st *prefixState, name string, prefix netip.Prefix, force bool, ownAdj func(string) map[netip.Addr]*Route, frontier map[string]bool) {
	r := n.Routers[name]
	var candidates []*Route
	for _, o := range r.Origins {
		if o.Prefix != prefix {
			continue
		}
		if rt, ok := originRoute(r, o, nil); ok {
			candidates = append(candidates, rt)
		}
	}
	for _, rt := range st.adjIn[name] { //acrvet:ordered — SelectBest is order-insensitive
		candidates = append(candidates, rt)
	}
	best := SelectBest(candidates)
	if !force && sameRoute(best, st.best[name]) {
		return
	}
	if best != nil {
		st.best[name] = best
	} else {
		delete(st.best, name)
	}
	for _, s := range r.Sessions {
		nb := s.PeerName
		prev := st.adjIn[nb][s.LocalAddr]
		var next *Route
		if best != nil {
			if adv, ok := processExport(r, s, best, nil); ok {
				nbSess := n.sessionFrom(nb, s.LocalAddr)
				if nbSess != nil {
					if in, ok, _ := processImport(n.Routers[nb], nbSess, adv, nil); ok {
						next = in
					}
				}
			}
		}
		if !sameRoute(prev, next) {
			adj := ownAdj(nb)
			if next == nil {
				delete(adj, s.LocalAddr)
			} else {
				adj[s.LocalAddr] = next
			}
			frontier[nb] = true
		}
	}
}
