package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"acr/internal/topo"
)

// randomStubNet builds a random tree-ish network of backbone routers with
// stubs, all plainly configured (no policies) — such networks must always
// converge loop-free.
func randomStubNet(t *testing.T, rng *rand.Rand) *Net {
	t.Helper()
	n := topo.New("rand")
	nBB := rng.Intn(5) + 2
	for i := 0; i < nBB; i++ {
		n.AddNode(fmt.Sprintf("bb%d", i), topo.Backbone, uint32(65001+i),
			netip.AddrFrom4([4]byte{1, 0, 0, byte(i + 1)}))
	}
	// Random connected backbone: spanning chain + extra random links.
	for i := 1; i < nBB; i++ {
		n.Connect(fmt.Sprintf("bb%d", i), fmt.Sprintf("bb%d", rng.Intn(i)))
	}
	extra := rng.Intn(nBB)
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(nBB), rng.Intn(nBB)
		if a == b {
			continue
		}
		// Avoid duplicate links (parallel links are legal in topo but make
		// the session model ambiguous; production generators avoid them).
		dup := false
		for _, l := range n.Links {
			if (l.A.Node == fmt.Sprintf("bb%d", a) && l.B.Node == fmt.Sprintf("bb%d", b)) ||
				(l.B.Node == fmt.Sprintf("bb%d", a) && l.A.Node == fmt.Sprintf("bb%d", b)) {
				dup = true
			}
		}
		if !dup {
			n.Connect(fmt.Sprintf("bb%d", a), fmt.Sprintf("bb%d", b))
		}
	}
	nStub := rng.Intn(4) + 1
	for i := 0; i < nStub; i++ {
		name := fmt.Sprintf("stub%d", i)
		st := n.AddNode(name, topo.PoP, uint32(64500+i),
			netip.AddrFrom4([4]byte{1, 0, 1, byte(i + 1)}))
		st.Originates = []netip.Prefix{netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))}
		n.Connect(name, fmt.Sprintf("bb%d", rng.Intn(nBB)))
	}
	tb := newTestNet(n)
	return tb.compile(t)
}

// Property: policy-free networks always converge, and every selected
// route is loop-free (no router's own AS in its path).
func TestQuickPlainNetworksConverge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bn := randomStubNet(t, rng)
		out := Simulate(bn, Options{})
		if !out.Converged() {
			return false
		}
		for _, po := range out.ByPrefix {
			for name, r := range po.Final {
				if r.Src == SrcPeer && r.HasAS(bn.Routers[name].ASN) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every router in a connected policy-free network learns every
// originated prefix.
func TestQuickPlainNetworksFullReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bn := randomStubNet(t, rng)
		out := Simulate(bn, Options{})
		if !out.Converged() {
			return false
		}
		for _, po := range out.ByPrefix {
			for _, name := range bn.Order {
				if po.Final[name] == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: simulation is deterministic — identical nets produce
// identical outcomes.
func TestQuickSimulationDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		a := Simulate(randomStubNet(t, rng1), Options{})
		b := Simulate(randomStubNet(t, rng2), Options{})
		if len(a.ByPrefix) != len(b.ByPrefix) {
			return false
		}
		for p, pa := range a.ByPrefix {
			pb := b.ByPrefix[p]
			if pb == nil || pa.Converged != pb.Converged || pa.Passes != pb.Passes {
				return false
			}
			for name, ra := range pa.Final {
				rb := pb.Final[name]
				if rb == nil || ra.Key() != rb.Key() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeDescribeMentionsEverything(t *testing.T) {
	bn, _, _ := overrideGadget(t)
	out := Simulate(bn, Options{})
	desc := out.Describe()
	if desc == "" {
		t.Fatal("empty description")
	}
	for _, want := range []string{"FLAPPING", "10.0.0.0/16"} {
		if !containsStr(desc, want) {
			t.Errorf("Describe() missing %q:\n%s", want, desc)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMaxPassesBound(t *testing.T) {
	bn, _, _ := overrideGadget(t)
	// With a tiny pass budget the cycle cannot be detected; the outcome
	// must still report non-convergence with a bounded tail.
	po := SimulatePrefix(bn, netip.MustParsePrefix("10.0.0.0/16"), Options{MaxPasses: 3})
	if po.Converged {
		t.Fatal("converged under flapping gadget")
	}
	if len(po.Cycle) == 0 || len(po.Cycle) > 8 {
		t.Errorf("tail length = %d, want 1..8", len(po.Cycle))
	}
}

func TestSessionBetweenAndFailedLines(t *testing.T) {
	bn, _, _ := overrideGadget(t)
	if bn.SessionBetween("A", "B") == nil {
		t.Error("A–B session missing")
	}
	if bn.SessionBetween("A", "PB") != nil {
		t.Error("phantom session A–PB")
	}
	if bn.SessionBetween("nope", "B") != nil {
		t.Error("unknown router session")
	}
	if len(bn.FailedSessionLines()) != 0 {
		t.Error("healthy net reports failed-session lines")
	}
}
