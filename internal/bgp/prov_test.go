package bgp

import (
	"net/netip"
	"testing"

	"acr/internal/netcfg"
	"acr/internal/provenance"
)

func TestProvenanceChainCoverage(t *testing.T) {
	net := chainNet()
	tb := newTestNet(net)
	bn := tb.compile(t)
	out := Simulate(bn, Options{})
	g := BuildProvenance(bn, out)
	p := netip.MustParsePrefix("10.0.0.0/16")

	lines := g.LinesForPrefix(p)
	if len(lines) == 0 {
		t.Fatal("no coverage lines for propagated prefix")
	}
	// Coverage must include O's network statement and the peer stanzas of
	// every hop.
	wantDevices := map[string]bool{"O": false, "X": false, "Y": false}
	for _, l := range lines {
		if _, ok := wantDevices[l.Device]; ok {
			wantDevices[l.Device] = true
		}
	}
	for d, seen := range wantDevices {
		if !seen {
			t.Errorf("coverage has no lines on %s: %v", d, lines)
		}
	}
	// The network statement line on O.
	netLine := bn.Routers["O"].Origins[0].Lines[0]
	found := false
	for _, l := range lines {
		if l == netLine {
			found = true
		}
	}
	if !found {
		t.Errorf("origination line %v missing from coverage", netLine)
	}
}

func TestProvenanceNodeKinds(t *testing.T) {
	net := chainNet()
	bn := newTestNet(net).compile(t)
	out := Simulate(bn, Options{})
	g := BuildProvenance(bn, out)
	p := netip.MustParsePrefix("10.0.0.0/16")
	kinds := map[provenance.Kind]int{}
	for _, n := range g.ForPrefix(p) {
		kinds[n.Kind]++
	}
	if kinds[provenance.Origination] != 1 {
		t.Errorf("originations = %d, want 1", kinds[provenance.Origination])
	}
	if kinds[provenance.Selection] != 3 {
		t.Errorf("selections = %d, want 3 (O, X, Y)", kinds[provenance.Selection])
	}
	if kinds[provenance.Import] < 2 {
		t.Errorf("imports = %d, want >= 2", kinds[provenance.Import])
	}
	// Y's advertisement back to X carries X's own AS → a rejection node.
	if kinds[provenance.Rejection] < 1 {
		t.Errorf("rejections = %d, want >= 1 (loop prevention)", kinds[provenance.Rejection])
	}
}

func TestProvenanceSelectionParents(t *testing.T) {
	net := chainNet()
	bn := newTestNet(net).compile(t)
	out := Simulate(bn, Options{})
	g := BuildProvenance(bn, out)
	p := netip.MustParsePrefix("10.0.0.0/16")
	// Y's selection must trace (transitively) back to O's origination.
	var ySel *provenance.Node
	for _, n := range g.ForPrefix(p) {
		if n.Kind == provenance.Selection && n.Router == "Y" {
			ySel = n
		}
	}
	if ySel == nil {
		t.Fatal("no selection node for Y")
	}
	slice := g.Slice(ySel.ID)
	foundOrig := false
	for _, n := range slice {
		if n.Kind == provenance.Origination && n.Router == "O" {
			foundOrig = true
		}
	}
	if !foundOrig {
		t.Errorf("Y's provenance slice does not reach O's origination; slice has %d nodes", len(slice))
	}
	leaves := provenance.LeafLines(g, ySel.ID)
	if len(leaves) == 0 {
		t.Error("no leaf config lines in Y's provenance slice")
	}
}

func TestProvenancePolicyLinesTraced(t *testing.T) {
	// The override gadget: the policy attach line, route-policy node line,
	// apply line, and prefix-list entry line on A must all appear in the
	// flapping prefix's coverage.
	bn, tb, _ := overrideGadget(t)
	out := Simulate(bn, Options{})
	g := BuildProvenance(bn, out)
	p := netip.MustParsePrefix("10.0.0.0/16")
	lines := map[netcfg.LineRef]bool{}
	for _, l := range g.LinesForPrefix(p) {
		lines[l] = true
	}
	fA := bn.Routers["A"].File
	// Attach line on A's peer toward S.
	peerS := fA.PeerByAddr(tb.peerAddr("A", "S"))
	if peerS == nil || len(peerS.Policies) != 1 {
		t.Fatal("test setup: A's peer S policy attach missing")
	}
	checks := []netcfg.LineRef{{Device: "A", Line: peerS.Policies[0].Line}}
	pol := fA.PolicyNodes("Override_All")[0]
	checks = append(checks, netcfg.LineRef{Device: "A", Line: pol.Line})
	checks = append(checks, netcfg.LineRef{Device: "A", Line: pol.Applies[0].Line})
	ple := fA.PrefixListEntries("default_all")[0]
	checks = append(checks, netcfg.LineRef{Device: "A", Line: ple.Line})
	for _, c := range checks {
		if !lines[c] {
			t.Errorf("coverage missing policy line %v", c)
		}
	}
}

func TestProvenanceDedupAcrossPhases(t *testing.T) {
	bn, _, _ := overrideGadget(t)
	out := Simulate(bn, Options{})
	g := BuildProvenance(bn, out)
	p := netip.MustParsePrefix("10.0.0.0/16")
	seen := map[string]bool{}
	for _, n := range g.ForPrefix(p) {
		key := n.Kind.String() + "|" + n.Router + "|" + n.Peer.String() + "|" + n.Detail
		if seen[key] {
			t.Errorf("duplicate derivation: %s", key)
		}
		seen[key] = true
	}
}
