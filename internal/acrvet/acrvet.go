// Package acrvet is the repository's own static-analysis pack: a small
// vet-style checker for the determinism invariants the repair engine's
// byte-identity guarantees rest on. Generic linters cannot know that the
// merge loop is the only place allowed to observe wall-clock time, that
// every random draw must come from a content-derived rand.New source, or
// that iterating a map while producing output silently breaks `-p 1 ≡ -p N`
// — so this package encodes those rules and CI runs it next to the stock
// linters.
//
// The checker type-checks the module from source (no build cache, no
// external tooling): module-internal imports are resolved straight from
// the repository tree and standard-library imports through go/importer's
// source importer, which keeps the whole pack runnable with nothing but
// the Go toolchain's library.
package acrvet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	// Pos is the file:line of the offending node, with the file path
	// relative to the module root.
	Pos string `json:"pos"`
	// Check names the rule that fired.
	Check string `json:"check"`
	// Message explains the violation and how to fix or suppress it.
	Message string `json:"message"`
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Check) }

// pkg is one type-checked package.
type pkg struct {
	path  string // import path ("acr/internal/core")
	dir   string
	files []*ast.File
	info  *types.Info
	// ordered holds the lines carrying an //acrvet:ordered suppression
	// (the comment's own line, so a trailing comment suppresses its line
	// and a standalone comment suppresses the line below).
	ordered map[string]map[int]bool // file -> line set
}

// checker loads and type-checks the module under root.
type checker struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*types.Package
	loaded  map[string]*pkg
}

// Import implements types.Importer: module-internal paths are type-checked
// from source, everything else is delegated to the stdlib source importer.
func (c *checker) Import(path string) (*types.Package, error) {
	if p, ok := c.cache[path]; ok {
		return p, nil
	}
	if path == c.modPath || strings.HasPrefix(path, c.modPath+"/") {
		p, err := c.load(path)
		if err != nil {
			return nil, err
		}
		return p, nil
	}
	p, err := c.std.Import(path)
	if err != nil {
		return nil, err
	}
	c.cache[path] = p
	return p, nil
}

// load parses and type-checks one module-internal package. It is
// idempotent: a package already checked (listed earlier, or pulled in as a
// dependency) returns the cached *types.Package, never a second identity —
// re-checking would make types like verify.Intent unequal to themselves
// across the two copies and fail every downstream importer.
func (c *checker) load(path string) (*types.Package, error) {
	if p, ok := c.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(c.root, strings.TrimPrefix(path, c.modPath))
	if path == c.modPath {
		dir = c.root
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	ordered := map[string]map[int]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build tags and _GOOS suffixes) so
		// mutually-exclusive platform files don't collide in one package.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(c.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if strings.Contains(cm.Text, "acrvet:ordered") {
					pos := c.fset.Position(cm.Pos())
					m := ordered[pos.Filename]
					if m == nil {
						m = map[int]bool{}
						ordered[pos.Filename] = m
					}
					m[pos.Line] = true
				}
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("acrvet: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: c, Error: func(error) {}}
	tp, err := conf.Check(path, c.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("acrvet: type-check %s: %w", path, err)
	}
	c.cache[path] = tp
	c.loaded[path] = &pkg{path: path, dir: dir, files: files, info: info, ordered: ordered}
	return tp, nil
}

// modulePath reads the module path out of root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("acrvet: no module directive in %s/go.mod", root)
}

// Run type-checks the listed module-internal packages (import paths
// relative to the module root, e.g. "internal/core") and applies every
// check. Findings come back sorted by position.
func Run(root string, pkgs []string) ([]Finding, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	c := &checker{
		root:    root,
		modPath: mod,
		fset:    token.NewFileSet(),
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
		cache:   map[string]*types.Package{},
		loaded:  map[string]*pkg{},
	}
	var findings []Finding
	for _, rel := range pkgs {
		path := mod + "/" + rel
		if _, err := c.load(path); err != nil {
			return nil, err
		}
		p := c.loaded[path]
		for _, ch := range checks {
			findings = append(findings, ch(c, p)...)
		}
	}
	for i := range findings {
		if r, err := filepath.Rel(root, strings.SplitN(findings[i].Pos, ":", 2)[0]); err == nil {
			rest := strings.SplitN(findings[i].Pos, ":", 2)
			findings[i].Pos = r
			if len(rest) == 2 {
				findings[i].Pos += ":" + rest[1]
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Check < findings[j].Check
	})
	return findings, nil
}

// DefaultPackages is the merge-path package set CI vets: the engine, the
// verifier, the BGP simulator (including the delta re-simulation and
// route-interning paths), the impact/lint analyzers, the journal, the
// persistent evaluation store, and the template registry — everything
// whose output feeds Canonical(), the write-ahead journal, the store the
// engine reads evaluations from, or the search digest journals resume
// under.
var DefaultPackages = []string{
	"internal/core",
	"internal/verify",
	"internal/bgp",
	"internal/analysis",
	"internal/journal",
	"internal/evalstore",
	"internal/tmplreg",
	"internal/tmplreg/conformance",
	"internal/tmplreg/mine",
}

func (c *checker) pos(n ast.Node) string {
	p := c.fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
