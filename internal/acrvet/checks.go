package acrvet

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// A check inspects one type-checked package and reports violations.
type check func(*checker, *pkg) []Finding

var checks = []check{checkTimeNow, checkGlobalRand, checkJournalAppend, checkMapRange}

// timeNowAllowed lists the files permitted to read the wall clock, per
// package: the engine's merge loop measures run duration (reported outside
// Canonical()), and nothing else in the merge path may observe time — a
// wall-clock read anywhere else is a reproducibility bug waiting for load.
var timeNowAllowed = map[string]map[string]bool{
	"internal/core": {"engine.go": true},
}

// checkTimeNow flags time.Now (and time.Since, which reads the clock) in
// merge-path packages outside the per-package allowlist.
func checkTimeNow(c *checker, p *pkg) []Finding {
	rel := strings.TrimPrefix(p.path, c.modPath+"/")
	allowed := timeNowAllowed[rel]
	var out []Finding
	inspectCalls(p, func(call *ast.CallExpr, pkgPath, sel string) {
		if pkgPath != "time" || (sel != "Now" && sel != "Since") {
			return
		}
		file := filepath.Base(c.fset.Position(call.Pos()).Filename)
		if allowed[file] {
			return
		}
		out = append(out, Finding{
			Pos:     c.pos(call),
			Check:   "timenow",
			Message: fmt.Sprintf("time.%s in the deterministic merge path: results must be a pure function of (case, options); measure wall clock only in the allowlisted engine file", sel),
		})
	})
	return out
}

// checkGlobalRand flags package-level math/rand draws (rand.Int, rand.Perm,
// rand.Shuffle, ...). The engine's reproducibility contract requires every
// random draw to come from a content-derived rand.New(rand.NewSource(...))
// instance; the global source is seeded by the runtime and shared across
// goroutines, so anything read from it diverges run to run.
func checkGlobalRand(c *checker, p *pkg) []Finding {
	var out []Finding
	inspectCalls(p, func(call *ast.CallExpr, pkgPath, sel string) {
		if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
			return
		}
		if sel == "New" || sel == "NewSource" || sel == "NewZipf" {
			return
		}
		out = append(out, Finding{
			Pos:     c.pos(call),
			Check:   "globalrand",
			Message: fmt.Sprintf("rand.%s draws from the process-global source: derive a local rand.New(rand.NewSource(seed)) from content instead", sel),
		})
	})
	return out
}

// checkJournalAppend enforces the merge-serializer invariant: inside
// internal/core, only session.go (the journal sink the merge loop owns) may
// call the journal writer's Append* methods. A second appender would race
// the single-writer journal and break crash-replay ordering.
func checkJournalAppend(c *checker, p *pkg) []Finding {
	rel := strings.TrimPrefix(p.path, c.modPath+"/")
	if rel != "internal/core" {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			se, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !strings.HasPrefix(se.Sel.Name, "Append") {
				return true
			}
			sel := p.info.Selections[se]
			if sel == nil {
				return true
			}
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != c.modPath+"/internal/journal" {
				return true
			}
			file := filepath.Base(c.fset.Position(call.Pos()).Filename)
			if file == "session.go" {
				return true
			}
			out = append(out, Finding{
				Pos:     c.pos(call),
				Check:   "journalappend",
				Message: fmt.Sprintf("journal %s outside the merge serializer (session.go): the merge loop is the journal's only writer", se.Sel.Name),
			})
			return true
		})
	}
	return out
}

// checkMapRange flags `for ... range m` over a map unless the author either
// (a) collects-then-sorts — a sort.* call appears later in the same
// function, the standard deterministic-iteration idiom — or (b) asserts
// order-independence with an //acrvet:ordered comment on the range line or
// the line above it. Map iteration order is randomized per run, so an
// unordered loop that feeds Canonical(), a digest, the journal, or lint
// output breaks byte-identity in a way no test reliably catches.
func checkMapRange(c *checker, p *pkg) []Finding {
	var out []Finding
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var sortCalls []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if pkgPath, _ := calleePkg(p, call); pkgPath == "sort" || pkgPath == "slices" {
						sortCalls = append(sortCalls, call)
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := c.fset.Position(rs.Pos())
				if m := p.ordered[pos.Filename]; m != nil && (m[pos.Line] || m[pos.Line-1]) {
					return true
				}
				for _, sc := range sortCalls {
					if sc.Pos() > rs.End() {
						return true
					}
				}
				out = append(out, Finding{
					Pos:     c.pos(rs),
					Check:   "maprange",
					Message: "map iterated in random order with no sort afterwards: sort the keys, or mark the loop //acrvet:ordered if its effect is provably order-independent",
				})
				return true
			})
		}
	}
	return out
}

// inspectCalls visits every call whose callee is a package-level selector
// (pkg.Func) and reports the callee's import path and name.
func inspectCalls(p *pkg, fn func(call *ast.CallExpr, pkgPath, sel string)) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, sel := calleePkg(p, call); pkgPath != "" {
				fn(call, pkgPath, sel)
			}
			return true
		})
	}
}

// calleePkg resolves call's callee to (import path, selector name) when the
// callee is a package-qualified identifier, and ("", "") otherwise.
func calleePkg(p *pkg, call *ast.CallExpr) (string, string) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), se.Sel.Name
}
