package acrvet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one internal/core package.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module acr\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "core")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "merge.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func findingsByCheck(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Check]++
	}
	return out
}

func TestChecksFireOnViolations(t *testing.T) {
	root := writeModule(t, `package core

import (
	"math/rand"
	"time"
)

func bad() (int64, int) {
	ts := time.Now().UnixNano() // timenow: not in engine.go
	n := rand.Intn(10)          // globalrand: process-global source
	m := map[string]int{"a": 1}
	total := ""
	for k := range m { // maprange: no sort, no annotation
		total += k
	}
	_ = total
	return ts, n
}
`)
	fs, err := Run(root, []string{"internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	got := findingsByCheck(fs)
	for _, want := range []string{"timenow", "globalrand", "maprange"} {
		if got[want] != 1 {
			t.Errorf("%s fired %d times, want 1; findings: %v", want, got[want], fs)
		}
	}
}

func TestChecksAllowTheIdioms(t *testing.T) {
	root := writeModule(t, `package core

import (
	"math/rand"
	"sort"
)

func good(seed int64) []string {
	rng := rand.New(rand.NewSource(seed)) // derived source: allowed
	_ = rng.Intn(10)
	m := map[string]int{"a": 1}
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := map[string]int{}
	for k := range m { //acrvet:ordered
		counts[k]++ // annotated order-independent accumulation: allowed
	}
	return keys
}
`)
	fs, err := Run(root, []string{"internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("idiomatic code flagged: %v", fs)
	}
}

func TestTimeNowAllowedInEngine(t *testing.T) {
	root := writeModule(t, `package core

import "time"

func engineOnly() time.Time { return time.Now() }
`)
	// The file is merge.go, so the engine allowlist must NOT cover it...
	fs, err := Run(root, []string{"internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if findingsByCheck(fs)["timenow"] != 1 {
		t.Fatalf("time.Now outside engine.go not flagged: %v", fs)
	}
	// ...but the same call in engine.go passes.
	if err := os.Rename(
		filepath.Join(root, "internal", "core", "merge.go"),
		filepath.Join(root, "internal", "core", "engine.go")); err != nil {
		t.Fatal(err)
	}
	fs, err = Run(root, []string{"internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("allowlisted engine.go flagged: %v", fs)
	}
}

// TestRepositoryIsClean runs the full pack over this repository's own
// merge-path packages — the same invocation CI uses. A finding here is a
// real determinism hazard (or a loop that needs a conscious
// //acrvet:ordered decision), not a test artifact.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Run(root, DefaultPackages)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		var sb strings.Builder
		for _, f := range fs {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		t.Errorf("acrvet findings in the repository:\n%s", sb.String())
	}
}
