package incidents

import (
	"math"
	"math/rand"
	"testing"

	"acr/internal/core"
)

func TestTable1RatiosSumToOne(t *testing.T) {
	sum := 0.0
	for _, ci := range Table1 {
		sum += ci.Ratio
	}
	if math.Abs(sum-1.0) > 0.005 {
		t.Errorf("Table 1 ratios sum to %.3f, want ~1.0", sum)
	}
}

func TestApportionExact(t *testing.T) {
	counts := apportion(120)
	total := 0
	for i, c := range counts {
		total += c
		exact := Table1[i].Ratio * 120
		if math.Abs(float64(c)-exact) > 1.0 {
			t.Errorf("class %s: count %d vs exact %.1f", Table1[i].Name, c, exact)
		}
	}
	if total != 120 {
		t.Fatalf("apportioned %d, want 120", total)
	}
	// The most common class is the paper's most common.
	if counts[0] != 25 { // 20.8% of 120 = 24.96
		t.Errorf("missing-redistribution count = %d, want 25", counts[0])
	}
}

func TestManualTimeCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200000
	over30, over300 := 0, 0
	maxV := 0.0
	for i := 0; i < n; i++ {
		v := ManualResolutionMinutes(rng)
		if v > 30 {
			over30++
		}
		if v > 300 {
			over300++
		}
		if v > maxV {
			maxV = v
		}
	}
	p30 := float64(over30) / float64(n)
	if p30 < 0.13 || p30 > 0.21 {
		t.Errorf("P(>30min) = %.3f, want ≈ 0.166 (paper)", p30)
	}
	p300 := float64(over300) / float64(n)
	if p300 < 0.003 || p300 > 0.03 {
		t.Errorf("P(>5h) = %.4f, want small but nonzero", p300)
	}
	if maxV < 300 {
		t.Errorf("max = %.0f min, want > 300 somewhere in the tail", maxV)
	}
}

func TestInjectEachClassVisibleAndGroundTruthValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, ci := range Table1 {
		ci := ci
		t.Run(string(ci.Name), func(t *testing.T) {
			inc, err := Inject(ci.Class, CorpusOptions{}, rng)
			if err != nil {
				t.Fatalf("inject: %v", err)
			}
			if !Visible(inc) {
				t.Fatalf("injection caused no failing test")
			}
			if len(inc.Scenario.FaultyLines) == 0 {
				t.Fatal("no ground truth recorded")
			}
			for _, ref := range inc.Scenario.FaultyLines {
				cfg := inc.Scenario.Configs[ref.Device]
				if cfg == nil || ref.Line < 1 || ref.Line > cfg.NumLines() {
					t.Errorf("ground truth %v out of range", ref)
				}
			}
			if inc.LinesChanged == 0 {
				t.Error("LinesChanged = 0")
			}
			// Table 1's S rows are single-statement injections. In this
			// grammar a PBR rule is one statement spanning up to three
			// lines (rule + match + apply), so allow that much.
			if ci.Lines == "S" && inc.LinesChanged > 3 {
				t.Errorf("single-statement class changed %d lines", inc.LinesChanged)
			}
		})
	}
}

func TestGenerateCorpusDistribution(t *testing.T) {
	incs, err := GenerateCorpus(CorpusOptions{Size: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 48 {
		t.Fatalf("corpus size = %d", len(incs))
	}
	counts := map[ErrorClass]int{}
	for _, inc := range incs {
		counts[inc.Class]++
		if inc.ID == "" || inc.ManualMinutes <= 0 {
			t.Errorf("incident %q metadata incomplete", inc.ID)
		}
	}
	for i, ci := range Table1 {
		want := apportion(48)[i]
		if counts[ci.Class] != want {
			t.Errorf("class %s: %d incidents, want %d", ci.Name, counts[ci.Class], want)
		}
	}
}

func TestCorpusDeterministicBySeed(t *testing.T) {
	a, err := GenerateCorpus(CorpusOptions{Size: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(CorpusOptions{Size: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].ManualMinutes != b[i].ManualMinutes ||
			a[i].Scenario.Notes != b[i].Scenario.Notes {
			t.Fatalf("incident %d differs across same-seed runs", i)
		}
	}
}

func TestRunRepairsSampledIncidents(t *testing.T) {
	// One incident per class, repaired end to end.
	rng := rand.New(rand.NewSource(11))
	var results []*RunResult
	for _, ci := range Table1 {
		inc, err := Inject(ci.Class, CorpusOptions{}, rng)
		if err != nil {
			t.Fatalf("%s: %v", ci.Name, err)
		}
		inc.ID = "t-" + ci.Category
		r := Run(inc, core.Options{Strategy: core.BruteForce})
		results = append(results, r)
		if r.BaseFailing == 0 {
			t.Errorf("%s: invisible incident", ci.Name)
			continue
		}
		if !r.Feasible {
			t.Errorf("%s: repair infeasible", ci.Name)
		}
		if r.LocalizationRank == 0 {
			t.Errorf("%s: ground truth not ranked at all", ci.Name)
		}
	}
	st := Aggregate(results)
	if st.Visible != st.Total {
		t.Errorf("visible %d/%d", st.Visible, st.Total)
	}
	if st.Repaired != st.Visible {
		t.Errorf("repaired %d/%d", st.Repaired, st.Visible)
	}
	if st.MeanIterations <= 0 || st.MeanValidated <= 0 {
		t.Errorf("aggregate means empty: %+v", st)
	}
	t.Logf("corpus sample: %+v", st)
}

func TestDoubleFaultCorpus(t *testing.T) {
	incs, err := GenerateCorpus(CorpusOptions{Size: 24, Seed: 4, DoubleFaultShare: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	doubles := 0
	for _, inc := range incs {
		if !inc.DoubleFault {
			continue
		}
		doubles++
		if inc.SecondClass == inc.Class {
			t.Errorf("%s: second class equals first", inc.ID)
		}
		// Ground truth must span two devices.
		devs := map[string]bool{}
		for _, l := range inc.Scenario.FaultyLines {
			devs[l.Device] = true
			cfg := inc.Scenario.Configs[l.Device]
			if cfg == nil || l.Line < 1 || l.Line > cfg.NumLines() {
				t.Errorf("%s: ground truth %v out of range", inc.ID, l)
			}
		}
		if len(devs) < 2 {
			t.Errorf("%s: double fault on a single device: %v", inc.ID, inc.Scenario.FaultyLines)
		}
	}
	if doubles == 0 {
		t.Fatal("no double-fault incidents generated at share 0.5")
	}
	t.Logf("%d/%d double-fault incidents", doubles, len(incs))
}

func TestDoubleFaultRepairable(t *testing.T) {
	incs, err := GenerateCorpus(CorpusOptions{Size: 16, Seed: 8, DoubleFaultShare: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	tried := 0
	for _, inc := range incs {
		if !inc.DoubleFault || tried >= 3 {
			continue
		}
		tried++
		r := Run(inc, core.Options{Strategy: core.BruteForce})
		if r.BaseFailing == 0 {
			t.Errorf("%s: double fault invisible", inc.ID)
			continue
		}
		if !r.Feasible {
			t.Errorf("%s (%v+%v): repair infeasible", inc.ID, inc.Class, inc.SecondClass)
		}
	}
	if tried == 0 {
		t.Fatal("no double incidents to try")
	}
}
