// Package incidents generates and runs a synthetic incident corpus
// standing in for the paper's study of 100+ production incidents: the
// nine misconfiguration classes of Table 1, injected at the paper's
// published ratios into correct generated networks, plus a
// manual-resolution-time model calibrated to Figure 1 (16.6% of cases
// above 30 minutes, the longest above 5 hours).
package incidents

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/verify"
)

// ErrorClass enumerates Table 1's misconfiguration types.
type ErrorClass uint8

// The nine classes of Table 1.
const (
	MissingRedistribution ErrorClass = iota // Route: missing redistribution of static route
	MissingPBRPermit                        // PBR: missing permit rules
	ExtraPBRRedirect                        // PBR: extra redirect rule
	MissingPeerGroup                        // Peer: missing peer group
	ExtraPeerGroupItem                      // Peer: extra items in peer group
	MissingRoutingPolicy                    // Policy: missing a routing policy
	LeftoverRouteMap                        // Policy: fail to dis-enable route map
	WrongASNumber                           // Policy: override to wrong AS number
	MissingPrefixListItem                   // Policy: missing items in ip prefix-list
)

// ClassInfo describes one Table 1 row.
type ClassInfo struct {
	Class ErrorClass
	// Category follows Table 1's "Configs" column; Name is the shared
	// errclass label (Table 1's "Types" column), tying each injector row to
	// the analyzers and templates registered under the same class.
	Category string
	Name     errclass.Class
	// Ratio is the paper's share of incidents (Table 1's "Ratio").
	Ratio float64
	// Lines is Table 1's "Lines" column: M(ultiple) or S(ingle).
	Lines string
}

// Table1 is the paper's Table 1, verbatim. The "missing items in ip
// prefix-list" row merges the paper's S (4.2%) and M (12.5%) variants.
var Table1 = []ClassInfo{
	{MissingRedistribution, "Route", errclass.MissingRedistribution, 0.208, "M"},
	{MissingPBRPermit, "PBR", errclass.MissingPBRPermit, 0.125, "M"},
	{ExtraPBRRedirect, "PBR", errclass.ExtraPBRRedirect, 0.042, "S"},
	{MissingPeerGroup, "Peer", errclass.MissingPeerGroup, 0.166, "M"},
	{ExtraPeerGroupItem, "Peer", errclass.ExtraPeerGroupItem, 0.125, "M"},
	{MissingRoutingPolicy, "Policy", errclass.MissingRoutingPolicy, 0.083, "M"},
	{LeftoverRouteMap, "Policy", errclass.LeftoverRouteMap, 0.042, "S"},
	{WrongASNumber, "Policy", errclass.WrongASNumber, 0.042, "S"},
	{MissingPrefixListItem, "Policy", errclass.MissingPrefixListItem, 0.167, "S/M"},
}

// Info returns the Table 1 row of a class.
func Info(c ErrorClass) ClassInfo {
	for _, ci := range Table1 {
		if ci.Class == c {
			return ci
		}
	}
	return ClassInfo{}
}

// ByClass resolves a shared errclass label back to its Table 1 injector
// class — the reverse of Info(c).Name. The conformance harness uses it to
// turn a template's declared ErrorClass into incidents of that class.
func ByClass(name errclass.Class) (ErrorClass, bool) {
	for _, ci := range Table1 {
		if ci.Name == name {
			return ci.Class, true
		}
	}
	return 0, false
}

// String names the class.
func (c ErrorClass) String() string { return string(Info(c).Name) }

// Incident is one injected misconfiguration.
type Incident struct {
	ID    string
	Class ErrorClass
	// DoubleFault marks incidents carrying a second fault; SecondClass
	// then names it (ErrorClass zero value is a real class, so the flag
	// disambiguates).
	DoubleFault bool
	SecondClass ErrorClass
	// Scenario is the faulty network (its FaultyLines carry ground truth).
	Scenario *scenario.Scenario
	// LinesChanged counts configuration lines touched by the injection —
	// Table 1's single/multiple distinction, measured.
	LinesChanged int
	// ManualMinutes is a sample from the Figure 1 manual-resolution model.
	ManualMinutes float64
}

// CorpusOptions parameterizes GenerateCorpus.
type CorpusOptions struct {
	// Size is the number of incidents (default 120, on the order of the
	// paper's ">100 incidents").
	Size int
	Seed int64
	// WANRouters/WANPoPs/WANDCNs size the WAN substrate (defaults 6/4/3).
	WANRouters, WANPoPs, WANDCNs int
	// FatTreeK sizes the DCN substrate (default 4).
	FatTreeK int
	// DoubleFaultShare is the fraction of WAN incidents carrying a
	// second, independent fault of a different class on a different
	// device (0 disables). Multi-fault incidents exercise the engine's
	// multi-iteration evolution and diversify failing-test counts for
	// the suspiciousness-formula ablation.
	DoubleFaultShare float64
}

func (o CorpusOptions) withDefaults() CorpusOptions {
	if o.Size <= 0 {
		o.Size = 120
	}
	if o.WANRouters == 0 {
		o.WANRouters = 6
	}
	if o.WANPoPs == 0 {
		o.WANPoPs = 4
	}
	if o.WANDCNs == 0 {
		o.WANDCNs = 3
	}
	if o.FatTreeK == 0 {
		o.FatTreeK = 4
	}
	return o
}

// GenerateCorpus builds the incident corpus. Class counts are allocated
// deterministically from Table 1's ratios (largest-remainder rounding), so
// regenerating Table 1 from the corpus reproduces the paper's
// distribution; the injection sites and manual times vary with Seed.
func GenerateCorpus(opts CorpusOptions) ([]*Incident, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	counts := apportion(opts.Size)
	var classes []ErrorClass
	for i, ci := range Table1 {
		for k := 0; k < counts[i]; k++ {
			classes = append(classes, ci.Class)
		}
	}
	rng.Shuffle(len(classes), func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })

	var out []*Incident
	for i, class := range classes {
		inc, err := Inject(class, opts, rng)
		if err != nil {
			return nil, fmt.Errorf("incident %d (%s): %w", i, class, err)
		}
		if opts.DoubleFaultShare > 0 && isWANClass(class) && rng.Float64() < opts.DoubleFaultShare {
			if dbl, err := addSecondFault(inc, opts, rng); err == nil {
				inc = dbl
			}
		}
		inc.ID = fmt.Sprintf("inc-%03d-%s", i, Info(class).Category)
		inc.ManualMinutes = ManualResolutionMinutes(rng)
		out = append(out, inc)
	}
	return out, nil
}

// isWANClass reports whether the class injects into the WAN substrate.
func isWANClass(c ErrorClass) bool {
	return c != MissingPBRPermit && c != ExtraPBRRedirect
}

// addSecondFault layers an independent WAN fault of a different class on
// an already-injected incident, retrying until the second fault lands on
// a different device (so the first fault's ground-truth line numbers stay
// valid). On persistent collision the single-fault incident is kept.
func addSecondFault(inc *Incident, opts CorpusOptions, rng *rand.Rand) (*Incident, error) {
	firstDevices := map[string]bool{}
	for _, l := range inc.Scenario.FaultyLines {
		firstDevices[l.Device] = true
	}
	wanClasses := []ErrorClass{
		MissingRedistribution, MissingPeerGroup, ExtraPeerGroupItem,
		MissingRoutingPolicy, LeftoverRouteMap, WrongASNumber, MissingPrefixListItem,
	}
	for attempt := 0; attempt < 6; attempt++ {
		second := wanClasses[rng.Intn(len(wanClasses))]
		if second == inc.Class {
			continue
		}
		// Inject the second fault into the SAME scenario. The injectors
		// reparse current configs, so their line numbers are correct; we
		// only must avoid the first fault's devices.
		trial := inc.Scenario.Clone()
		trial.FaultyLines = nil
		second2, err := injectWAN(second, trial, rng)
		if err != nil {
			continue
		}
		collide := false
		for _, l := range second2.Scenario.FaultyLines {
			if firstDevices[l.Device] {
				collide = true
			}
		}
		if collide {
			continue
		}
		merged := &Incident{
			Class:        inc.Class,
			DoubleFault:  true,
			SecondClass:  second,
			Scenario:     second2.Scenario,
			LinesChanged: inc.LinesChanged + second2.LinesChanged,
		}
		merged.Scenario.FaultyLines = append(append([]netcfg.LineRef{}, inc.Scenario.FaultyLines...),
			second2.Scenario.FaultyLines...)
		merged.Scenario.Notes = inc.Scenario.Notes + "; " + second2.Scenario.Notes
		return merged, nil
	}
	return inc, fmt.Errorf("no compatible second fault found")
}

// apportion distributes Size incidents over Table 1's ratios with
// largest-remainder rounding.
func apportion(size int) []int {
	counts := make([]int, len(Table1))
	type frac struct {
		idx int
		rem float64
	}
	var fracs []frac
	total := 0
	for i, ci := range Table1 {
		exact := ci.Ratio * float64(size)
		counts[i] = int(exact)
		total += counts[i]
		fracs = append(fracs, frac{i, exact - float64(counts[i])})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for k := 0; total < size; k++ {
		counts[fracs[k%len(fracs)].idx]++
		total++
	}
	return counts
}

// ManualResolutionMinutes samples the Figure 1 model: a lognormal body
// (median ≈ 10 minutes) with a 4% escalation mixture (median ≈ 200
// minutes). Calibration: P(>30 min) ≈ 0.17 (the paper reports 16.6%) and
// a 120-incident corpus is expected to contain at least one case above
// 300 minutes ("the longest one taking more than 5 hours").
func ManualResolutionMinutes(rng *rand.Rand) float64 {
	if rng.Float64() < 0.04 {
		return math.Exp(math.Log(200) + 0.6*rng.NormFloat64())
	}
	return math.Exp(math.Log(10) + 1.0*rng.NormFloat64())
}

// RunResult is the outcome of repairing one incident.
type RunResult struct {
	Incident *Incident
	// BaseFailing is the number of failing tests the injection caused.
	BaseFailing int
	Feasible    bool
	Iterations  int
	// CandidatesValidated counts validator calls during repair.
	CandidatesValidated int
	// PrefixSimulations / IntentChecks expose the incremental verifier's
	// work.
	PrefixSimulations int
	IntentChecks      int
	// StaticallyRefuted / ImpactScoped / ImpactBroad expose the static
	// impact analysis's pruning decisions (all zero under -no-impact).
	StaticallyRefuted int
	ImpactScoped      int
	ImpactBroad       int
	// DeltaReused / DeltaResimulated / SimActivations expose the delta
	// re-simulation's work counters (reused/resimulated zero under
	// -no-delta).
	DeltaReused      int
	DeltaResimulated int
	SimActivations   int
	// LocalizationRank is the best (smallest) SBFL rank over the ground
	// truth lines, computed on the faulty configuration (0 = not ranked).
	LocalizationRank int
	// Termination is how the run ended ("feasible", "exhausted",
	// "iteration-cap", "deadline", "canceled").
	Termination string
	// Improved reports whether the best-effort repair fixes at least one
	// failing intent even when infeasible.
	Improved bool
	// CandidatesPanicked / CandidatesTimedOut / ValidationRetries expose
	// the engine's robustness counters (nonzero under fault injection or
	// hostile templates).
	CandidatesPanicked int
	CandidatesTimedOut int
	ValidationRetries  int
}

// Run repairs one incident with the engine and collects metrics.
func Run(inc *Incident, opts core.Options) *RunResult {
	p := core.Problem{Topo: inc.Scenario.Topo, Configs: inc.Scenario.Configs, Intents: inc.Scenario.Intents}
	res := &RunResult{Incident: inc}
	res.LocalizationRank = LocalizationRank(inc)
	r := core.Repair(p, opts)
	res.BaseFailing = r.BaseFailing
	res.Feasible = r.Feasible
	res.Iterations = r.Iterations
	res.CandidatesValidated = r.CandidatesValidated
	res.PrefixSimulations = r.PrefixSimulations
	res.IntentChecks = r.IntentChecks
	res.StaticallyRefuted = r.StaticallyRefuted
	res.ImpactScoped = r.ImpactScoped
	res.ImpactBroad = r.ImpactBroad
	res.DeltaReused = r.DeltaReused
	res.DeltaResimulated = r.DeltaResimulated
	res.SimActivations = r.SimActivations
	res.Termination = r.Termination
	res.Improved = r.Improved
	res.CandidatesPanicked = r.CandidatesPanicked
	res.CandidatesTimedOut = r.CandidatesTimedOut
	res.ValidationRetries = r.ValidationRetries
	return res
}

// LocalizationRank computes the best Tarantula rank over the incident's
// ground-truth lines.
func LocalizationRank(inc *Incident) int {
	p := core.Problem{Topo: inc.Scenario.Topo, Configs: inc.Scenario.Configs, Intents: inc.Scenario.Intents}
	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	ctx := core.NewContext(p, iv, sbfl.Tarantula, rand.New(rand.NewSource(1)))
	best := 0
	for _, l := range inc.Scenario.FaultyLines {
		if r := sbfl.RankOf(ctx.Ranks, l); r > 0 && (best == 0 || r < best) {
			best = r
		}
	}
	return best
}

// Stats aggregates corpus run results.
type Stats struct {
	Total, Visible, Repaired int
	// TopN counts incidents whose ground truth ranked within N.
	Top1, Top5, Top10 int
	MeanIterations    float64
	MeanValidated     float64
	// Improved counts infeasible-but-improved runs; the robustness
	// counters sum the engine's quarantine/retry tallies over the corpus.
	Improved           int
	CandidatesPanicked int
	ValidationRetries  int
	TimedOut           int // runs ending on "deadline" or "canceled"
}

// Aggregate computes corpus statistics. Incidents whose injection caused
// no failing test (invisible under the intent suite) are counted but
// excluded from repair metrics.
func Aggregate(results []*RunResult) Stats {
	var s Stats
	s.Total = len(results)
	var iters, vals, n float64
	for _, r := range results {
		if r.BaseFailing == 0 {
			continue
		}
		s.Visible++
		if r.Feasible {
			s.Repaired++
		} else if r.Improved {
			s.Improved++
		}
		if r.Termination == "deadline" || r.Termination == "canceled" {
			s.TimedOut++
		}
		s.CandidatesPanicked += r.CandidatesPanicked
		s.ValidationRetries += r.ValidationRetries
		switch {
		case r.LocalizationRank == 1:
			s.Top1++
			s.Top5++
			s.Top10++
		case r.LocalizationRank > 1 && r.LocalizationRank <= 5:
			s.Top5++
			s.Top10++
		case r.LocalizationRank > 5 && r.LocalizationRank <= 10:
			s.Top10++
		}
		iters += float64(r.Iterations)
		vals += float64(r.CandidatesValidated)
		n++
	}
	if n > 0 {
		s.MeanIterations = iters / n
		s.MeanValidated = vals / n
	}
	return s
}
