package incidents

import (
	"math/rand"
	"testing"
)

// TestInjectVariantZeroIsInject: variant 0 must be byte-for-byte the
// standard injector under the same rng stream, so conformance's variant
// sweep and the corpus generator agree on the base shape.
func TestInjectVariantZeroIsInject(t *testing.T) {
	for _, ci := range Table1 {
		a, errA := Inject(ci.Class, CorpusOptions{}, rand.New(rand.NewSource(7)))
		b, errB := InjectVariant(ci.Class, 0, CorpusOptions{}, rand.New(rand.NewSource(7)))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: inject err %v vs variant-0 err %v", ci.Name, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Scenario.Notes != b.Scenario.Notes || len(a.Scenario.FaultyLines) != len(b.Scenario.FaultyLines) {
			t.Errorf("%s: variant 0 diverged from Inject: %q vs %q", ci.Name, a.Scenario.Notes, b.Scenario.Notes)
		}
	}
}

// TestInjectVariantAlternateShapes: every advertised variant injects a
// visible fault with ground truth inside the configs, and the alternate
// shapes keep the construct the standard shape deletes.
func TestInjectVariantAlternateShapes(t *testing.T) {
	for _, ci := range Table1 {
		for v := 0; v < Variants(ci.Class); v++ {
			rng := rand.New(rand.NewSource(11))
			inc, err := InjectVariant(ci.Class, v, CorpusOptions{}, rng)
			if err != nil {
				t.Fatalf("%s variant %d: %v", ci.Name, v, err)
			}
			if inc.Class != ci.Class {
				t.Errorf("%s variant %d: class %v", ci.Name, v, inc.Class)
			}
			if !Visible(inc) {
				t.Errorf("%s variant %d: injection caused no failing test", ci.Name, v)
			}
			if len(inc.Scenario.FaultyLines) == 0 {
				t.Errorf("%s variant %d: no ground truth", ci.Name, v)
			}
			for _, ref := range inc.Scenario.FaultyLines {
				cfg := inc.Scenario.Configs[ref.Device]
				if cfg == nil || ref.Line < 1 || ref.Line > cfg.NumLines() {
					t.Errorf("%s variant %d: ground truth %v out of range", ci.Name, v, ref)
				}
			}
		}
	}
	if _, err := InjectVariant(WrongASNumber, 1, CorpusOptions{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("undeclared variant accepted")
	}
}
