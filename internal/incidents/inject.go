package incidents

import (
	"fmt"
	"math/rand"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/topo"
	"acr/internal/verify"
)

// Inject builds one incident of the given class: a fresh correct scenario
// of the appropriate substrate with the fault injected at a
// randomly chosen (but rng-deterministic) site. The returned scenario's
// FaultyLines are the post-injection ground truth an operator would
// identify.
func Inject(class ErrorClass, opts CorpusOptions, rng *rand.Rand) (*Incident, error) {
	opts = opts.withDefaults()
	switch class {
	case MissingPBRPermit, ExtraPBRRedirect:
		s := scenario.DCN(opts.FatTreeK, scenario.GenOptions{WithScrubber: true, StaticOriginEvery: 3})
		return injectDCN(class, s, rng)
	default:
		s := scenario.WAN(opts.WANRouters, opts.WANPoPs, opts.WANDCNs,
			scenario.GenOptions{StaticOriginEvery: 2, FullIsolation: true})
		return injectWAN(class, s, rng)
	}
}

func injectWAN(class ErrorClass, s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	switch class {
	case MissingRedistribution:
		return injectMissingRedistribution(s, rng)
	case MissingPeerGroup:
		return injectMissingPeerGroup(s, rng)
	case ExtraPeerGroupItem:
		return injectExtraPeerGroupItem(s, rng)
	case MissingRoutingPolicy:
		return injectMissingRoutingPolicy(s, rng)
	case LeftoverRouteMap:
		return injectLeftoverRouteMap(s, rng)
	case WrongASNumber:
		return injectWrongASNumber(s, rng)
	case MissingPrefixListItem:
		return injectMissingPrefixListItem(s, rng)
	}
	return nil, fmt.Errorf("class %v is not a WAN injection", class)
}

func injectDCN(class ErrorClass, s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	switch class {
	case MissingPBRPermit:
		return injectMissingPBRPermit(s, rng)
	case ExtraPBRRedirect:
		return injectExtraPBRRedirect(s, rng)
	}
	return nil, fmt.Errorf("class %v is not a DCN injection", class)
}

// pick selects a deterministic random element.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// apply applies edits to one device and returns the incident skeleton.
func apply(s *scenario.Scenario, class ErrorClass, device string, edits []netcfg.Edit, truth []netcfg.LineRef, note string) (*Incident, error) {
	next, err := netcfg.EditSet{Device: device, Edits: edits}.Apply(s.Configs[device])
	if err != nil {
		return nil, err
	}
	s.Configs[device] = next
	s.FaultyLines = truth
	s.Notes = note
	return &Incident{Class: class, Scenario: s, LinesChanged: len(edits)}, nil
}

// --- Route: missing redistribution of static route ---------------------------

func injectMissingRedistribution(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	var victims []string
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.PoP && nd.Kind != topo.DCN {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		if f.BGP != nil && f.BGP.Redistribute != nil {
			victims = append(victims, nd.Name)
		}
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("no static-originating stubs")
	}
	v := pick(rng, victims)
	f := netcfg.MustParse(s.Configs[v])
	line := f.BGP.Redistribute.Line
	// Ground truth after deletion: the orphaned static lines.
	var truth []netcfg.LineRef
	for _, st := range f.Statics {
		l := st.Line
		if l > line {
			l--
		}
		truth = append(truth, netcfg.LineRef{Device: v, Line: l})
	}
	return apply(s, MissingRedistribution, v,
		[]netcfg.Edit{netcfg.DeleteLine{At: line}}, truth,
		"injected: deleted `redistribute static` on "+v)
}

// --- Peer: missing peer group -------------------------------------------------

func injectMissingPeerGroup(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	type site struct {
		device string
		line   int
	}
	var sites []site
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.Backbone {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		if f.BGP == nil {
			continue
		}
		for _, pe := range f.BGP.Peers {
			if pe.Group == scenario.WANGroupPoPFacing && pe.GroupLine > 0 {
				sites = append(sites, site{nd.Name, pe.GroupLine})
			}
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("no PoPFacing memberships")
	}
	st := pick(rng, sites)
	// Ground truth: the remaining as-number line of that peer (one above
	// the membership in generated configs) — the session whose group is
	// missing.
	truth := []netcfg.LineRef{{Device: st.device, Line: st.line - 1}}
	return apply(s, MissingPeerGroup, st.device,
		[]netcfg.Edit{netcfg.DeleteLine{At: st.line}}, truth,
		"injected: deleted PoPFacing membership on "+st.device)
}

// --- Peer: extra items in peer group -------------------------------------------

func injectExtraPeerGroupItem(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	type site struct {
		device string
		line   int
		addr   string
	}
	var sites []site
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.Backbone {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		if f.BGP == nil || f.GroupByName(scenario.WANGroupPoPFacing) == nil {
			continue
		}
		for _, pe := range f.BGP.Peers {
			if pe.Group == scenario.WANGroupDCNFacing && pe.GroupLine > 0 {
				sites = append(sites, site{nd.Name, pe.GroupLine, pe.Addr.String()})
			}
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("no router with both a DCN peer and a PoPFacing group")
	}
	st := pick(rng, sites)
	truth := []netcfg.LineRef{{Device: st.device, Line: st.line}}
	return apply(s, ExtraPeerGroupItem, st.device,
		[]netcfg.Edit{netcfg.ReplaceLine{At: st.line, Text: " peer " + st.addr + " group " + scenario.WANGroupPoPFacing}},
		truth, "injected: moved DCN peer into PoPFacing on "+st.device)
}

// --- Policy: missing a routing policy -------------------------------------------

func injectMissingRoutingPolicy(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	var victims []string
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.Backbone {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g != nil && len(g.Policies) > 0 &&
			len(f.PolicyNodes(scenario.WANPolicyNoLeak)) > 0 {
			victims = append(victims, nd.Name)
		}
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("no router with the NoLeak policy attached")
	}
	v := pick(rng, victims)
	f := netcfg.MustParse(s.Configs[v])
	var edits []netcfg.Edit
	for _, node := range f.PolicyNodes(scenario.WANPolicyNoLeak) {
		for l := node.Line; l <= node.End; l++ {
			edits = append(edits, netcfg.DeleteLine{At: l})
		}
	}
	// Ground truth: the now-dangling attachment line (its number after the
	// deletions).
	g := f.GroupByName(scenario.WANGroupPoPFacing)
	attach := g.Policies[0].Line
	shift := 0
	for _, e := range edits {
		if d, ok := e.(netcfg.DeleteLine); ok && d.At < attach {
			shift++
		}
	}
	truth := []netcfg.LineRef{{Device: v, Line: attach - shift}}
	return apply(s, MissingRoutingPolicy, v, edits, truth,
		"injected: deleted the NoLeakDCN policy definition on "+v)
}

// --- Policy: fail to dis-enable route map -----------------------------------------

func injectLeftoverRouteMap(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	var victims []string
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind == topo.PoP || nd.Kind == topo.DCN {
			victims = append(victims, nd.Name)
		}
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("no stubs")
	}
	v := pick(rng, victims)
	f := netcfg.MustParse(s.Configs[v])
	peer := f.BGP.Peers[0]
	cfg := s.Configs[v]
	edits := []netcfg.Edit{
		netcfg.InsertBefore{At: peer.ASNLine + 1, Text: netcfg.FormatPeerPolicyLine(peer.Addr.String(), scenario.WANPolicyMaint, netcfg.Import)},
		netcfg.InsertBefore{At: cfg.NumLines() + 1, Text: "route-policy " + scenario.WANPolicyMaint + " deny node 10"},
	}
	truth := []netcfg.LineRef{{Device: v, Line: peer.ASNLine + 1}}
	return apply(s, LeftoverRouteMap, v, edits, truth,
		"injected: left the Maintenance deny policy attached on "+v)
}

// --- Policy: override to wrong AS number --------------------------------------------

func injectWrongASNumber(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	var victims []string
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind == topo.PoP || nd.Kind == topo.DCN {
			victims = append(victims, nd.Name)
		}
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("no stubs")
	}
	v := pick(rng, victims)
	f := netcfg.MustParse(s.Configs[v])
	peer := f.BGP.Peers[0]
	wrong := peer.ASN + 1000 + uint32(rng.Intn(100))
	truth := []netcfg.LineRef{{Device: v, Line: peer.ASNLine}}
	return apply(s, WrongASNumber, v,
		[]netcfg.Edit{netcfg.ReplaceLine{At: peer.ASNLine, Text: fmt.Sprintf(" peer %s as-number %d", peer.Addr, wrong)}},
		truth, "injected: wrong as-number on "+v)
}

// --- Policy: missing items in ip prefix-list -------------------------------------------

func injectMissingPrefixListItem(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	type site struct {
		device string
		line   int
	}
	var sites []site
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.Backbone {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g == nil || len(g.Policies) == 0 {
			continue
		}
		entries := f.PrefixListEntries(scenario.WANListDCN)
		if len(entries) > 1 {
			sites = append(sites, site{nd.Name, entries[rng.Intn(len(entries))].Line})
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("no multi-entry DCN prefix lists on isolating routers")
	}
	st := pick(rng, sites)
	f := netcfg.MustParse(s.Configs[st.device])
	// Ground truth: the policy attachment whose list lost the entry (the
	// remaining entries shift by one when above the deleted line).
	g := f.GroupByName(scenario.WANGroupPoPFacing)
	attach := g.Policies[0].Line
	if attach > st.line {
		attach--
	}
	truth := []netcfg.LineRef{{Device: st.device, Line: attach}}
	return apply(s, MissingPrefixListItem, st.device,
		[]netcfg.Edit{netcfg.DeleteLine{At: st.line}}, truth,
		"injected: removed an entry from "+scenario.WANListDCN+" on "+st.device)
}

// --- PBR: missing permit rules -----------------------------------------------------------

func injectMissingPBRPermit(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	f := netcfg.MustParse(s.Configs["spine0-0"])
	pol := f.PBRPolicyByName("Scrub")
	if pol == nil || len(pol.Rules) == 0 {
		return nil, fmt.Errorf("scrub policy missing")
	}
	r := pol.Rules[rng.Intn(len(pol.Rules))]
	var edits []netcfg.Edit
	for l := r.Line; l <= r.End; l++ {
		edits = append(edits, netcfg.DeleteLine{At: l})
	}
	deleted := r.End - r.Line + 1
	truth := []netcfg.LineRef{{Device: "spine0-0", Line: pol.Line}}
	if pol.Line > r.End {
		truth[0].Line -= deleted
	}
	return apply(s, MissingPBRPermit, "spine0-0", edits, truth,
		"injected: deleted a scrubber redirect rule on spine0-0")
}

// --- PBR: extra redirect rule --------------------------------------------------------------

func injectExtraPBRRedirect(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	f := netcfg.MustParse(s.Configs["spine0-0"])
	pol := f.PBRPolicyByName("Scrub")
	if pol == nil {
		return nil, fmt.Errorf("scrub policy missing")
	}
	var leafAddr string
	for _, adj := range s.Topo.Adjacencies("spine0-0") {
		if adj.PeerNode == "leaf0-0" {
			leafAddr = adj.PeerAddr.String()
		}
	}
	// Redirect a victim leaf's traffic back toward its source: a loop.
	pod0Leaves := []string{}
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind == topo.Leaf && nd.Name != "leaf0-0" && len(nd.Originates) > 0 &&
			len(nd.Name) > 4 && nd.Name[:5] == "leaf0" {
			pod0Leaves = append(pod0Leaves, nd.Name)
		}
	}
	if len(pod0Leaves) == 0 {
		return nil, fmt.Errorf("no pod-0 victim leaves")
	}
	victim := pick(rng, pod0Leaves)
	dst := s.Topo.Node(victim).Originates[0]
	edits := []netcfg.Edit{
		netcfg.InsertBefore{At: pol.Line + 1, Text: " rule 5 permit"},
		netcfg.InsertBefore{At: pol.Line + 1, Text: "  match destination " + dst.String()},
		netcfg.InsertBefore{At: pol.Line + 1, Text: "  apply next-hop " + leafAddr},
	}
	truth := []netcfg.LineRef{
		{Device: "spine0-0", Line: pol.Line + 1},
		{Device: "spine0-0", Line: pol.Line + 2},
		{Device: "spine0-0", Line: pol.Line + 3},
	}
	return apply(s, ExtraPBRRedirect, "spine0-0", edits, truth,
		"injected: extra redirect rule bouncing "+dst.String()+" back to leaf0-0")
}

// Visible reports whether an incident's injection causes at least one
// failing test under the scenario's intent suite.
func Visible(inc *Incident) bool {
	return verifyScenario(inc.Scenario).NumFailed() > 0
}

func verifyScenario(s *scenario.Scenario) *verify.Report {
	iv := verify.NewIncremental(s.Topo, s.Configs, s.Intents, bgp.Options{})
	return iv.BaseReport()
}
