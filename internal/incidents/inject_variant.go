package incidents

import (
	"fmt"
	"math/rand"

	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/topo"
)

// Variants returns the number of distinct fault shapes available for a
// class. Every class has at least the standard Inject shape (variant 0);
// classes whose Table 1 label covers more than one way to break the
// network also expose alternates, so the conformance harness can exercise
// templates whose applicability guard excludes the standard shape (e.g.
// add-static-origination requires `redistribute static` to still be
// present — the very line the standard missing-redistribution injector
// deletes).
func Variants(class ErrorClass) int {
	switch class {
	case MissingRedistribution, MissingRoutingPolicy:
		return 2
	}
	return 1
}

// InjectVariant builds one incident of the given class using its
// variant'th fault shape. Variant 0 is exactly Inject; the corpus
// generator only ever uses variant 0, so adding variants never perturbs
// GenerateCorpus's rng stream or the corpus byte-identity baselines.
func InjectVariant(class ErrorClass, variant int, opts CorpusOptions, rng *rand.Rand) (*Incident, error) {
	if variant == 0 {
		return Inject(class, opts, rng)
	}
	opts = opts.withDefaults()
	switch {
	case class == MissingRedistribution && variant == 1:
		s := scenario.WAN(opts.WANRouters, opts.WANPoPs, opts.WANDCNs,
			scenario.GenOptions{StaticOriginEvery: 2, FullIsolation: true})
		return injectMissingStaticRoute(s, rng)
	case class == MissingRoutingPolicy && variant == 1:
		s := scenario.WAN(opts.WANRouters, opts.WANPoPs, opts.WANDCNs,
			scenario.GenOptions{StaticOriginEvery: 2, FullIsolation: true})
		return injectDetachedPolicy(s, rng)
	}
	return nil, fmt.Errorf("class %v has no variant %d", class, variant)
}

// injectMissingStaticRoute is the complement of the standard
// missing-redistribution shape: `redistribute static` survives, but the
// static route it should announce is gone. Only add-static-origination
// can repair it; add-redistribute-static has nothing to redistribute.
func injectMissingStaticRoute(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	var victims []string
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.PoP && nd.Kind != topo.DCN {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		if f.BGP != nil && f.BGP.Redistribute != nil && len(f.Statics) > 0 {
			victims = append(victims, nd.Name)
		}
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("no static-originating stubs")
	}
	v := pick(rng, victims)
	f := netcfg.MustParse(s.Configs[v])
	st := pick(rng, f.Statics)
	// Ground truth after deletion: the now-idle redistribute line.
	redist := f.BGP.Redistribute.Line
	if redist > st.Line {
		redist--
	}
	truth := []netcfg.LineRef{{Device: v, Line: redist}}
	return apply(s, MissingRedistribution, v,
		[]netcfg.Edit{netcfg.DeleteLine{At: st.Line}}, truth,
		fmt.Sprintf("injected: deleted `ip route static %s` on %s (redistribution kept)", st.Prefix, v))
}

// injectDetachedPolicy is the complement of the standard
// missing-routing-policy shape: the NoLeak policy definition survives, but
// its attachment to the PoP-facing group is gone. Only
// attach-policy-like-peers can repair it (the definition exists locally,
// so copy-policy-from-role has nothing to reconstruct).
func injectDetachedPolicy(s *scenario.Scenario, rng *rand.Rand) (*Incident, error) {
	type site struct {
		device string
		line   int
		group  int
	}
	var sites []site
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.Backbone {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		g := f.GroupByName(scenario.WANGroupPoPFacing)
		if g == nil || len(f.PolicyNodes(scenario.WANPolicyNoLeak)) == 0 {
			continue
		}
		for _, a := range g.Policies {
			if a.Policy == scenario.WANPolicyNoLeak {
				sites = append(sites, site{nd.Name, a.Line, g.Line})
			}
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("no NoLeak attachments on backbones")
	}
	st := pick(rng, sites)
	// Ground truth: the group declaration whose attachment vanished.
	decl := st.group
	if decl > st.line {
		decl--
	}
	truth := []netcfg.LineRef{{Device: st.device, Line: decl}}
	return apply(s, MissingRoutingPolicy, st.device,
		[]netcfg.Edit{netcfg.DeleteLine{At: st.line}}, truth,
		"injected: detached the NoLeakDCN policy from "+scenario.WANGroupPoPFacing+" on "+st.device+" (definition kept)")
}
