package verify_test

import (
	"net/netip"
	"testing"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

func newIV(t *testing.T, s *scenario.Scenario) *verify.Incremental {
	t.Helper()
	return verify.NewIncremental(s.Topo, s.Configs, s.Intents, bgp.Options{})
}

// reportsEqual compares pass/fail vectors.
func reportsEqual(a, b *verify.Report) bool {
	if len(a.Verdicts) != len(b.Verdicts) {
		return false
	}
	for i := range a.Verdicts {
		if a.Verdicts[i].Pass != b.Verdicts[i].Pass {
			return false
		}
	}
	return true
}

func TestIncrementalBaseMatchesFull(t *testing.T) {
	s := scenario.Figure2()
	iv := newIV(t, s)
	if got := iv.BaseReport().NumFailed(); got != 1 {
		t.Fatalf("base failed = %d, want 1", got)
	}
}

func TestIncrementalCheckMatchesFullCheck(t *testing.T) {
	s := scenario.Figure2()
	iv := newIV(t, s)
	edits := scenario.Figure2PaperRepair()

	inc, stats, err := iv.Check(edits)
	if err != nil {
		t.Fatal(err)
	}
	full, err := iv.FullCheck(edits)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(inc, full) {
		t.Fatalf("incremental and full reports disagree:\ninc:\n%s\nfull:\n%s", inc.Summary(), full.Summary())
	}
	if inc.NumFailed() != 0 {
		t.Fatalf("paper repair should pass all intents:\n%s", inc.Summary())
	}
	if stats.Broad {
		t.Errorf("prefix-list replacements should not be broad: %s", stats)
	}
	if stats.PrefixesSimulated >= stats.PrefixesTotal && stats.PrefixesTotal > 1 {
		t.Logf("note: all prefixes re-simulated (%s)", stats)
	}
}

func TestIncrementalScopesPrefixListEdit(t *testing.T) {
	// Repairing only A's prefix-list (which mentions 10.70/16) must not
	// re-verify... it mentions prefixes overlapping everything relevant
	// here; instead test a genuinely narrow edit on a large WAN: replace
	// one stub's static with itself (text identical semantics, distinct
	// prefix) — only that prefix re-simulates.
	s := scenario.WAN(8, 4, 3, scenario.GenOptions{StaticOriginEvery: 1})
	iv := newIV(t, s)
	if iv.BaseReport().NumFailed() != 0 {
		t.Fatalf("base WAN broken:\n%s", iv.BaseReport().Summary())
	}
	// pop0 originates 10.100.0.0/16 via a static; touch that static line.
	f := netcfg.MustParse(s.Configs["pop0"])
	if len(f.Statics) == 0 {
		t.Fatal("pop0 has no static")
	}
	line := f.Statics[0].Line
	text := s.Configs["pop0"].Line(line)
	rep, stats, err := iv.Check([]netcfg.EditSet{{Device: "pop0", Edits: []netcfg.Edit{
		netcfg.ReplaceLine{At: line, Text: text}, // no-op rewrite
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumFailed() != 0 {
		t.Fatalf("no-op edit broke verification:\n%s", rep.Summary())
	}
	if stats.Broad {
		t.Fatalf("static line edit classified broad: %s", stats)
	}
	// The impact analysis sees a semantically identical AST and statically
	// refutes the no-op: zero simulations.
	if !stats.Refuted || stats.PrefixesSimulated != 0 {
		t.Errorf("no-op rewrite not statically refuted (%s)", stats)
	}
	// The legacy dependency heuristic cannot prove that; it re-simulates
	// exactly the touched static's prefix.
	iv.NoImpact = true
	_, stats, err = iv.Check([]netcfg.EditSet{{Device: "pop0", Edits: []netcfg.Edit{
		netcfg.ReplaceLine{At: line, Text: text},
	}}})
	iv.NoImpact = false
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrefixesSimulated != 1 {
		t.Errorf("legacy path simulated %d prefixes, want 1 (%s)", stats.PrefixesSimulated, stats)
	}
	if stats.IntentsReverified >= stats.IntentsTotal {
		t.Errorf("legacy path reverified everything (%s); dependency scoping broken", stats)
	}
}

func TestIncrementalDetectsNewViolation(t *testing.T) {
	s := scenario.Figure2Correct()
	iv := newIV(t, s)
	if iv.BaseReport().NumFailed() != 0 {
		t.Fatal("repaired base should pass")
	}
	// Break A again: widen its prefix-list back to everything.
	edits := []netcfg.EditSet{{Device: "A", Edits: []netcfg.Edit{netcfg.ReplaceLine{
		At:   scenario.FigureALinePrefixList,
		Text: "ip prefix-list default_all index 10 permit 0.0.0.0/0 le 32",
	}}}}
	rep, _, err := iv.Check(edits)
	if err != nil {
		t.Fatal(err)
	}
	full, err := iv.FullCheck(edits)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(rep, full) {
		t.Fatalf("incremental misses the regression:\ninc:\n%s\nfull:\n%s", rep.Summary(), full.Summary())
	}
}

func TestIncrementalSessionEditIsBroad(t *testing.T) {
	s := scenario.Figure2()
	iv := newIV(t, s)
	// Breaking a peer's AS number takes the session down — a broad change.
	f := netcfg.MustParse(s.Configs["S"])
	var asnLine int
	for _, p := range f.BGP.Peers {
		if p.ASN == 65003 { // the S–C session
			asnLine = p.ASNLine
		}
	}
	if asnLine == 0 {
		t.Fatal("S's peer stanza for C not found")
	}
	edits := []netcfg.EditSet{{Device: "S", Edits: []netcfg.Edit{
		netcfg.ReplaceLine{At: asnLine, Text: " peer " + f.BGP.Peers[1].Addr.String() + " as-number 64999"},
	}}}
	_, stats, err := iv.Check(edits)
	if err != nil {
		t.Fatal(err)
	}
	// The impact analysis scopes the session edit to S's connected
	// component rather than declaring it broad; on Figure 2 that is the
	// whole network, so nothing may be pruned.
	if stats.Refuted {
		t.Fatalf("session-affecting edit statically refuted: %s", stats)
	}
	if !stats.Broad && stats.PrefixesSimulated != stats.PrefixesTotal {
		t.Errorf("session-affecting edit under-scoped: %s", stats)
	}
	if !stats.Broad && stats.IntentsReverified != stats.IntentsTotal {
		t.Errorf("session-affecting edit skipped intents: %s", stats)
	}
	// The legacy heuristic classifies the same edit broad outright.
	iv.NoImpact = true
	_, stats, err = iv.Check(edits)
	iv.NoImpact = false
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Broad {
		t.Errorf("legacy path: session-affecting edit not classified broad: %s", stats)
	}
}

func TestIncrementalCommitAdvancesBase(t *testing.T) {
	s := scenario.Figure2()
	iv := newIV(t, s)
	if err := iv.Commit(scenario.Figure2PaperRepair()); err != nil {
		t.Fatal(err)
	}
	if got := iv.BaseReport().NumFailed(); got != 0 {
		t.Fatalf("after commit, base failed = %d, want 0", got)
	}
	// A further no-op check against the new base.
	rep, _, err := iv.Check(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumFailed() != 0 {
		t.Error("check against committed base should pass")
	}
}

func TestIncrementalInsertNewOrigination(t *testing.T) {
	s := scenario.Figure2Correct()
	iv := newIV(t, s)
	// Give PoP-A a second prefix and an intent for it; the insert mentions
	// the new prefix so it must be simulated and the new intent verified.
	s2 := s.Clone()
	_ = s2
	f := netcfg.MustParse(s.Configs["PoP-A"])
	ivWith := verify.NewIncremental(s.Topo, s.Configs,
		append(append([]verify.Intent{}, s.Intents...),
			verify.ReachIntent("reach-new", scenario.PrefixDCNS, netip.MustParsePrefix("10.71.0.0/16"))),
		bgp.Options{})
	if ivWith.BaseReport().NumFailed() != 1 {
		t.Fatalf("new intent should fail before origination exists:\n%s", ivWith.BaseReport().Summary())
	}
	insertAt := f.BGP.End + 1
	rep, stats, err := ivWith.Check([]netcfg.EditSet{{Device: "PoP-A", Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: insertAt, Text: " network 10.71.0.0/16"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// The prefix is now originated by PoP-A... but PoP-A's node does not
	// own it in the topology, so delivery still fails at PoP-A — what
	// matters here is that the incremental verifier re-checked it.
	v := rep.ByID("reach-new")
	if v == nil {
		t.Fatal("new intent verdict missing")
	}
	if stats.PrefixesSimulated == 0 {
		t.Errorf("new origination not simulated: %s", stats)
	}
	_ = iv
}
