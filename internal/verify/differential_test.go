package verify_test

import (
	"strings"
	"testing"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

func TestDifferentialIntentsFromCorrectBaseline(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	intents := verify.DifferentialIntents(s.Topo, s.Configs, verify.DiffGenOptions{})
	if len(intents) == 0 {
		t.Fatal("no differential intents generated")
	}
	// All derived reachability intents must pass on the baseline itself.
	n := bgp.Compile(s.Topo, s.Files())
	out := bgp.Simulate(n, bgp.Options{})
	rep := verify.Verify(n, out, intents)
	if rep.NumFailed() != 0 {
		t.Fatalf("differential suite fails on its own baseline:\n%s", rep.Summary())
	}
	// PoP→DCN flows are isolated in the baseline, so no reach intent may
	// cover them (IncludeIsolation off).
	for _, in := range intents {
		if in.Kind != verify.Reachability {
			t.Errorf("unexpected non-reach intent %s with isolation off", in)
		}
		if strings.HasPrefix(in.ID, "diff-dcn") && strings.Contains(in.ID, "from-pop") {
			t.Errorf("reach intent generated for isolated pair: %s", in)
		}
	}
}

func TestDifferentialIntentsIncludeIsolation(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	intents := verify.DifferentialIntents(s.Topo, s.Configs, verify.DiffGenOptions{IncludeIsolation: true})
	var iso int
	for _, in := range intents {
		if in.Kind == verify.Isolation {
			iso++
		}
	}
	if iso == 0 {
		t.Fatal("no isolation intents despite IncludeIsolation")
	}
	n := bgp.Compile(s.Topo, s.Files())
	out := bgp.Simulate(n, bgp.Options{})
	if rep := verify.Verify(n, out, intents); rep.NumFailed() != 0 {
		t.Fatalf("isolation-augmented suite fails on baseline:\n%s", rep.Summary())
	}
}

func TestDifferentialSuiteCatchesRegression(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	intents := verify.DifferentialIntents(s.Topo, s.Configs, verify.DiffGenOptions{IncludeIsolation: true})
	// Regress: break pop0's uplink AS number.
	f := netcfg.MustParse(s.Configs["pop0"])
	peer := f.BGP.Peers[0]
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.ReplaceLine{
		At: peer.ASNLine, Text: " peer " + peer.Addr.String() + " as-number 63999",
	}}}.Apply(s.Configs["pop0"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop0"] = next
	n := bgp.Compile(s.Topo, s.Files())
	out := bgp.Simulate(n, bgp.Options{})
	rep := verify.Verify(n, out, intents)
	if rep.NumFailed() == 0 {
		t.Fatal("differential suite missed the regression")
	}
}

func TestDifferentialMaxPairs(t *testing.T) {
	s := scenario.WAN(8, 4, 3, scenario.GenOptions{})
	intents := verify.DifferentialIntents(s.Topo, s.Configs, verify.DiffGenOptions{MaxPairs: 5, IncludeIsolation: true})
	if len(intents) != 5 {
		t.Errorf("intents = %d, want capped at 5", len(intents))
	}
}

func TestMergeIntents(t *testing.T) {
	base := scenario.Figure2Intents()
	extras := []verify.Intent{
		base[0], // duplicate by identity
		verify.ReachIntent("reach-pop-a", scenario.PrefixPoPB, scenario.PrefixPoPA), // duplicate ID
		verify.ReachIntent("new-one", scenario.PrefixPoPB, scenario.PrefixPoPA),
	}
	merged := verify.MergeIntents(base, extras)
	if len(merged) != len(base)+1 {
		t.Fatalf("merged = %d, want %d", len(merged), len(base)+1)
	}
	if merged[len(merged)-1].ID != "new-one" {
		t.Errorf("last merged = %s", merged[len(merged)-1].ID)
	}
}

// TestDifferentialImprovesSpectrum: a richer suite gives SBFL more passing
// tests, which can only sharpen (never blur) suspiciousness separation of
// lines exclusive to the failure.
func TestDifferentialImprovesSpectrum(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	diff := verify.DifferentialIntents(s.Topo, s.Configs, verify.DiffGenOptions{IncludeIsolation: true})
	merged := verify.MergeIntents(s.Intents, diff)
	if len(merged) <= len(s.Intents) {
		t.Fatalf("differential suite added nothing: %d vs %d", len(merged), len(s.Intents))
	}
}
