package verify_test

import (
	"context"
	"sync"
	"testing"

	"acr/internal/scenario"
	"acr/internal/verify"
)

// TestCloneConcurrentCheck exercises the parallel-validation contract: any
// number of clones may run CheckCtx concurrently (one clone per goroutine)
// and each must produce the same report the original produces serially.
// Run under -race, this is the proof that Clone shares no mutable state.
func TestCloneConcurrentCheck(t *testing.T) {
	s := scenario.Figure2()
	iv := newIV(t, s)
	edits := scenario.Figure2PaperRepair()
	want, _, err := iv.Check(edits)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	reports := make([]*verify.Report, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := iv.Clone()
			for i := 0; i < 5; i++ {
				rep, _, err := cl.CheckCtx(context.Background(), edits)
				if err != nil {
					errs[w] = err
					return
				}
				reports[w] = rep
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reportsEqual(reports[w], want) {
			t.Errorf("worker %d report disagrees with serial check:\ngot:\n%s\nwant:\n%s",
				w, reports[w].Summary(), want.Summary())
		}
	}
	// The original is untouched: same base report, same serial check.
	if iv.BaseReport().NumFailed() != 1 {
		t.Errorf("original base failing = %d after concurrent clone checks, want 1", iv.BaseReport().NumFailed())
	}
	again, _, err := iv.Check(edits)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(again, want) {
		t.Error("original's check changed after concurrent clone checks")
	}
}

// TestCloneCommitIndependence checks that committing edits to a clone
// rebases only the clone: the original keeps its base configs and report,
// and vice versa.
func TestCloneCommitIndependence(t *testing.T) {
	s := scenario.Figure2()
	iv := newIV(t, s)
	cl := iv.Clone()
	if err := cl.Commit(scenario.Figure2PaperRepair()); err != nil {
		t.Fatal(err)
	}
	if got := cl.BaseReport().NumFailed(); got != 0 {
		t.Fatalf("clone after committing the paper repair: %d failing, want 0", got)
	}
	if got := iv.BaseReport().NumFailed(); got != 1 {
		t.Fatalf("original after clone commit: %d failing, want 1 (commit leaked)", got)
	}
	origText := iv.BaseConfigs()["A"].Text()
	if cl.BaseConfigs()["A"].Text() == origText {
		t.Fatal("clone's A config identical to original after a repair that edits A")
	}
}
