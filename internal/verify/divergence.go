package verify

import (
	"context"
	"fmt"
	"strings"

	"acr/internal/netcfg"
)

// DivergenceError reports that a pruned (impact-scoped or dependency-
// scoped) check and a from-scratch full check disagreed on a verdict —
// the impact analysis was unsound for this edit. It is returned by
// CheckCtx in Differential mode, carries a minimized reproduction, and is
// terminal: retrying cannot help, the run must fail so the defect is
// fixed rather than silently mis-searched.
type DivergenceError struct {
	// IntentID names the first intent whose verdicts differ.
	IntentID string
	// Pruned and Full are the disagreeing Pass verdicts.
	Pruned, Full bool
	// Refuted reports that the pruned path statically refuted the
	// candidate (the strongest — and therefore most suspect — claim).
	Refuted bool
	// Edits is a minimized edit sequence still reproducing the divergence,
	// ready to be turned into a regression case.
	Edits []netcfg.EditSet
}

// Error renders the divergence with its minimized reproduction.
func (e *DivergenceError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "impact divergence on intent %s: pruned=%v full=%v", e.IntentID, e.Pruned, e.Full)
	if e.Refuted {
		sb.WriteString(" (candidate was statically refuted)")
	}
	if len(e.Edits) > 0 {
		sb.WriteString("; minimized repro:")
		for _, es := range e.Edits {
			for _, ed := range es.Edits {
				fmt.Fprintf(&sb, " [%s %s]", es.Device, ed)
			}
		}
	}
	return sb.String()
}

// reportsDiverge compares per-intent Pass verdicts and returns a
// DivergenceError skeleton for the first mismatch, or nil when the
// reports agree.
func reportsDiverge(pruned, full *Report) *DivergenceError {
	if pruned == nil || full == nil {
		return nil
	}
	if len(pruned.Verdicts) != len(full.Verdicts) {
		return &DivergenceError{IntentID: "<verdict-count>"}
	}
	for i := range pruned.Verdicts {
		if pruned.Verdicts[i].Pass != full.Verdicts[i].Pass {
			return &DivergenceError{
				IntentID: pruned.Verdicts[i].Intent.ID,
				Pruned:   pruned.Verdicts[i].Pass,
				Full:     full.Verdicts[i].Pass,
			}
		}
	}
	return nil
}

// minimizeDivergence greedily shrinks a diverging edit sequence: each
// single-line edit is dropped in turn and kept out whenever the remainder
// still diverges. The result is a 1-minimal reproduction (removing any
// one remaining edit makes the divergence disappear or the edits
// inapplicable). Errors during a trial (unapplicable subset, cancellation)
// count as "does not diverge", so minimization only ever returns subsets
// it re-confirmed; if nothing shrinks, the original flattened sequence is
// returned as-is.
func (iv *Incremental) minimizeDivergence(ctx context.Context, edits []netcfg.EditSet) []netcfg.EditSet {
	diverges := func(es []netcfg.EditSet) bool {
		if ctx.Err() != nil {
			return false
		}
		rep, _, err := iv.checkPrunedCtx(ctx, es)
		if err != nil {
			return false
		}
		full, err := iv.FullCheckCtx(ctx, es)
		if err != nil {
			return false
		}
		return reportsDiverge(rep, full) != nil
	}
	cur := flattenEdits(edits)
	for i := 0; i < len(cur); {
		trial := make([]netcfg.EditSet, 0, len(cur)-1)
		trial = append(trial, cur[:i]...)
		trial = append(trial, cur[i+1:]...)
		if len(trial) > 0 && diverges(trial) {
			cur = trial
		} else {
			i++
		}
	}
	return cur
}

// flattenEdits splits every edit set into single-edit sets so the
// minimizer can drop edits one at a time. A subset re-applies as its own
// sequence (anchors within each original set referred to the original
// document; chained single-edit sets shift them), which is fine: every
// candidate subset is re-validated by re-running both checks on it.
func flattenEdits(edits []netcfg.EditSet) []netcfg.EditSet {
	var out []netcfg.EditSet
	for _, es := range edits {
		for _, e := range es.Edits {
			out = append(out, netcfg.EditSet{Device: es.Device, Edits: []netcfg.Edit{e}})
		}
	}
	return out
}
