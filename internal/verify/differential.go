package verify

import (
	"fmt"
	"net/netip"

	"acr/internal/bgp"
	"acr/internal/dataplane"
	"acr/internal/netcfg"
	"acr/internal/topo"
)

// DiffGenOptions tunes DifferentialIntents.
type DiffGenOptions struct {
	// MaxPairs bounds the generated suite (0 = 256). Pairs are taken in a
	// deterministic rotation over (source, destination) originators so
	// coverage spreads across the network.
	MaxPairs int
	// IncludeIsolation also asserts NON-reachability observed in the
	// baseline (off, only delivered flows become intents, which is the
	// safe default: undelivered flows may be accidents of the baseline
	// rather than intended isolation).
	IncludeIsolation bool
	// SimOpts tunes the baseline simulation.
	SimOpts bgp.Options
}

// DifferentialIntents addresses the paper's §6 open question — "how to
// automatically generate a test suite with high coverage" for networks
// without an operator specification. The last-known-good configuration
// becomes the oracle: for sampled (source, destination) pairs, flows the
// baseline delivers become reachability intents (and, optionally, flows
// it does not deliver become isolation intents). Running this suite
// against a changed configuration turns SBFL into regression
// localization.
func DifferentialIntents(t *topo.Network, goodConfigs map[string]*netcfg.Config, opts DiffGenOptions) []Intent {
	maxPairs := opts.MaxPairs
	if maxPairs <= 0 {
		maxPairs = 256
	}
	files := map[string]*netcfg.File{}
	for d, c := range goodConfigs { //acrvet:ordered
		f, _ := netcfg.Parse(c)
		files[d] = f
	}
	n := bgp.Compile(t, files)
	out := bgp.Simulate(n, opts.SimOpts)

	var origins []*topo.Node
	for _, nd := range t.Nodes() {
		if len(nd.Originates) > 0 {
			origins = append(origins, nd)
		}
	}
	var intents []Intent
	// Rotate offsets so pair (i, i+r) coverage spreads before the cap.
	for r := 1; r < len(origins) && len(intents) < maxPairs; r++ {
		for i := 0; i < len(origins) && len(intents) < maxPairs; i++ {
			src := origins[i]
			dst := origins[(i+r)%len(origins)]
			srcP, dstP := src.Originates[0], dst.Originates[0]
			pkt := dataplane.SamplePacket(srcP, dstP)
			prefix, po := coveringOutcome(out, pkt.Dst)
			delivered := false
			if po != nil && po.Converged {
				tr := dataplane.Trace(n, po.Final, prefix, pkt, src.Name)
				delivered = tr.Outcome == dataplane.Delivered
			}
			id := fmt.Sprintf("diff-%s-from-%s", dst.Name, src.Name)
			switch {
			case delivered:
				intents = append(intents, ReachIntent(id, srcP, dstP))
			case opts.IncludeIsolation:
				intents = append(intents, IsolationIntent(id, srcP, dstP))
			}
		}
	}
	return intents
}

// MergeIntents appends the extras whose IDs (or (kind, src, dst) triples)
// are not already present in base.
func MergeIntents(base, extras []Intent) []Intent {
	type key struct {
		kind     IntentKind
		src, dst netip.Prefix
	}
	seen := map[key]bool{}
	ids := map[string]bool{}
	for _, in := range base {
		seen[key{in.Kind, in.SrcPrefix, in.DstPrefix}] = true
		ids[in.ID] = true
	}
	out := append([]Intent{}, base...)
	for _, in := range extras {
		k := key{in.Kind, in.SrcPrefix, in.DstPrefix}
		if seen[k] || ids[in.ID] {
			continue
		}
		seen[k] = true
		ids[in.ID] = true
		out = append(out, in)
	}
	return out
}
