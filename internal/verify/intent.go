// Package verify checks operator intents against simulated network
// behavior. It provides the specification language of §4.1 of the paper
// (reachability, isolation, waypointing, loop-freedom, blackhole-freedom),
// test generation by sampling one packet per property's header space, a
// full verifier, and an incremental verifier in the mold of DNA
// [Zhang et al., NSDI '22]: after a configuration change, only the
// intents whose dependencies (prefixes and dataplane lines) are touched
// are re-verified, and only the affected prefixes are re-simulated.
package verify

import (
	"fmt"
	"net/netip"

	"acr/internal/dataplane"
)

// IntentKind enumerates property types.
type IntentKind uint8

// Intent kinds.
const (
	// Reachability: packets from SrcPrefix must reach DstPrefix, and the
	// destination's route must be stable (a flapping route violates the
	// intent even in phases where delivery succeeds).
	Reachability IntentKind = iota
	// Isolation: packets from SrcPrefix must NOT reach DstPrefix in any
	// control-plane phase.
	Isolation
	// Waypoint: packets from SrcPrefix to DstPrefix must traverse router
	// Via (and be delivered).
	Waypoint
	// LoopFree: no router's forwarding toward Prefix may loop, in any
	// phase.
	LoopFree
	// BlackholeFree: no router holding a route toward Prefix may blackhole
	// packets, in any phase.
	BlackholeFree
)

// String names the kind.
func (k IntentKind) String() string {
	switch k {
	case Reachability:
		return "reachability"
	case Isolation:
		return "isolation"
	case Waypoint:
		return "waypoint"
	case LoopFree:
		return "loop-free"
	case BlackholeFree:
		return "blackhole-free"
	}
	return "unknown"
}

// Intent is one operator property. Flow intents (Reachability, Isolation,
// Waypoint) use SrcPrefix/DstPrefix and optionally Proto/DstPort to narrow
// the header space; per-prefix intents (LoopFree, BlackholeFree) use
// DstPrefix alone.
type Intent struct {
	ID   string
	Kind IntentKind

	SrcPrefix netip.Prefix
	DstPrefix netip.Prefix
	Via       string // Waypoint only

	Proto   string // defaults to "tcp"
	DstPort uint16 // defaults to 80
}

// String renders the intent for reports.
func (i Intent) String() string {
	switch i.Kind {
	case Waypoint:
		return fmt.Sprintf("%s[%s]: %s -> %s via %s", i.Kind, i.ID, i.SrcPrefix, i.DstPrefix, i.Via)
	case LoopFree, BlackholeFree:
		return fmt.Sprintf("%s[%s]: %s", i.Kind, i.ID, i.DstPrefix)
	default:
		return fmt.Sprintf("%s[%s]: %s -> %s", i.Kind, i.ID, i.SrcPrefix, i.DstPrefix)
	}
}

// Packet samples the representative test packet from the intent's header
// space — the paper's test-generation approach (§4.1): "For each property,
// we sample a packet from its header space as a test."
func (i Intent) Packet() dataplane.Packet {
	pkt := dataplane.SamplePacket(i.SrcPrefix, i.DstPrefix)
	if i.Proto != "" {
		pkt.Proto = i.Proto
	}
	if i.DstPort != 0 {
		pkt.DstPort = i.DstPort
	}
	return pkt
}

// Test is one generated test case: an intent plus its sampled packet. The
// SBFL spectrum is built over Tests.
type Test struct {
	Intent Intent
	Packet dataplane.Packet
}

// GenerateTests materializes the test suite from a specification.
func GenerateTests(intents []Intent) []Test {
	out := make([]Test, len(intents))
	for i, in := range intents {
		out[i] = Test{Intent: in, Packet: in.Packet()}
	}
	return out
}

// ReachIntent is a convenience constructor.
func ReachIntent(id string, src, dst netip.Prefix) Intent {
	return Intent{ID: id, Kind: Reachability, SrcPrefix: src, DstPrefix: dst}
}

// IsolationIntent is a convenience constructor.
func IsolationIntent(id string, src, dst netip.Prefix) Intent {
	return Intent{ID: id, Kind: Isolation, SrcPrefix: src, DstPrefix: dst}
}

// WaypointIntent is a convenience constructor.
func WaypointIntent(id string, src, dst netip.Prefix, via string) Intent {
	return Intent{ID: id, Kind: Waypoint, SrcPrefix: src, DstPrefix: dst, Via: via}
}

// LoopFreeIntent is a convenience constructor.
func LoopFreeIntent(id string, p netip.Prefix) Intent {
	return Intent{ID: id, Kind: LoopFree, DstPrefix: p}
}

// BlackholeFreeIntent is a convenience constructor.
func BlackholeFreeIntent(id string, p netip.Prefix) Intent {
	return Intent{ID: id, Kind: BlackholeFree, DstPrefix: p}
}
