package verify

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"acr/internal/bgp"
	"acr/internal/netcfg"
)

// DeltaDivergenceError reports that a delta re-simulation and a cold full
// simulation reached different fixpoints for a prefix — the delta
// propagation was unsound for this edit (or exposed multi-stability).
// Returned by CheckCtx in DeltaDifferential mode with a minimized
// reproduction attached; terminal like *DivergenceError: the run must
// fail so the defect is fixed rather than silently mis-searched.
type DeltaDivergenceError struct {
	// Prefix is the diverging prefix; Device the first router (in
	// activation order) whose stable route differs.
	Prefix netip.Prefix
	Device string
	// Delta and Full are the disagreeing route keys (or convergence
	// summaries when the full run did not converge).
	Delta, Full string
	// Edits is a minimized edit sequence still reproducing the
	// divergence, ready to be turned into a regression case.
	Edits []netcfg.EditSet
}

// Error renders the divergence with its minimized reproduction.
func (e *DeltaDivergenceError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "delta divergence on prefix %s at %s: delta=%s full=%s", e.Prefix, e.Device, e.Delta, e.Full)
	if len(e.Edits) > 0 {
		sb.WriteString("; minimized repro:")
		for _, es := range e.Edits {
			for _, ed := range es.Edits {
				fmt.Fprintf(&sb, " [%s %s]", es.Device, ed)
			}
		}
	}
	return sb.String()
}

// deltaOutcomesDiverge compares a delta outcome against a cold full
// simulation of the same prefix. Only convergence and the stable
// best-route maps are compared — they are everything verdicts read; pass
// counts and work counters legitimately differ. Returns the first
// diverging device (in activation order) with both route keys, or
// ("", "", "") on agreement.
func deltaOutcomesDiverge(delta, full *bgp.PrefixOutcome, order []string) (device, deltaKey, fullKey string) {
	if !full.Converged {
		return "<convergence>", "converged", fmt.Sprintf("cycle of %d states", len(full.Cycle))
	}
	key := func(r *bgp.Route) string {
		if r == nil {
			return "-"
		}
		return r.Key()
	}
	for _, name := range order {
		if dk, fk := key(delta.Final[name]), key(full.Final[name]); dk != fk {
			return name, dk, fk
		}
	}
	return "", "", ""
}

// minimizeDeltaDivergence greedily shrinks a delta-diverging edit
// sequence exactly as minimizeDivergence does for impact divergences:
// each single-line edit is dropped in turn and kept out whenever the
// remainder still reproduces a *DeltaDivergenceError. Trial errors of any
// other kind (unapplicable subset, cancellation) count as "does not
// diverge", so only re-confirmed subsets survive.
func (iv *Incremental) minimizeDeltaDivergence(ctx context.Context, edits []netcfg.EditSet) []netcfg.EditSet {
	diverges := func(es []netcfg.EditSet) bool {
		if ctx.Err() != nil {
			return false
		}
		_, _, err := iv.checkPrunedCtx(ctx, es)
		var dde *DeltaDivergenceError
		return errors.As(err, &dde)
	}
	cur := flattenEdits(edits)
	for i := 0; i < len(cur); {
		trial := make([]netcfg.EditSet, 0, len(cur)-1)
		trial = append(trial, cur[:i]...)
		trial = append(trial, cur[i+1:]...)
		if len(trial) > 0 && diverges(trial) {
			cur = trial
		} else {
			i++
		}
	}
	return cur
}
