package verify

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"acr/internal/bgp"
	"acr/internal/dataplane"
	"acr/internal/netcfg"
)

// Verdict is the result of checking one intent.
type Verdict struct {
	Intent Intent
	Pass   bool
	Reason string
	// Prefix is the originated prefix the intent's destination resolved
	// to (its control-plane dependency); invalid when none covers it.
	Prefix netip.Prefix
	// Flapping reports that the destination prefix failed to converge.
	Flapping bool
	// Traces holds one dataplane trace per control-plane phase for flow
	// intents (per phase and router for global intents, capped).
	Traces []*dataplane.TraceResult
}

// Lines returns every dataplane configuration line the verdict's traces
// executed.
func (v *Verdict) Lines() []netcfg.LineRef {
	var out []netcfg.LineRef
	for _, tr := range v.Traces {
		out = append(out, tr.Lines...)
	}
	return out
}

// Report aggregates verdicts for a whole specification.
type Report struct {
	Verdicts []Verdict
}

// NumFailed counts failing verdicts — the repair engine's fitness function
// (§5: "the fitness of an update is defined as the number of failed
// cases").
func (r *Report) NumFailed() int {
	n := 0
	for _, v := range r.Verdicts {
		if !v.Pass {
			n++
		}
	}
	return n
}

// Failed returns the failing verdicts.
func (r *Report) Failed() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if !v.Pass {
			out = append(out, v)
		}
	}
	return out
}

// Passed returns the passing verdicts.
func (r *Report) Passed() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if v.Pass {
			out = append(out, v)
		}
	}
	return out
}

// ByID returns the verdict for the given intent ID, or nil.
func (r *Report) ByID(id string) *Verdict {
	for i := range r.Verdicts {
		if r.Verdicts[i].Intent.ID == id {
			return &r.Verdicts[i]
		}
	}
	return nil
}

// Summary renders a one-line-per-intent report.
func (r *Report) Summary() string {
	var sb strings.Builder
	for _, v := range r.Verdicts {
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "%s  %s", status, v.Intent)
		if !v.Pass {
			fmt.Fprintf(&sb, "  (%s)", v.Reason)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Verify checks every intent against a simulated outcome.
func Verify(n *bgp.Net, out *bgp.Outcome, intents []Intent) *Report {
	rep := &Report{}
	for _, in := range intents {
		rep.Verdicts = append(rep.Verdicts, checkIntent(n, out, in))
	}
	return rep
}

// coveringOutcome finds the originated prefix covering addr (longest
// match) and its outcome.
func coveringOutcome(out *bgp.Outcome, addr netip.Addr) (netip.Prefix, *bgp.PrefixOutcome) {
	var best netip.Prefix
	var bestPO *bgp.PrefixOutcome
	for p, po := range out.ByPrefix { //acrvet:ordered
		if p.Contains(addr) && (!best.IsValid() || p.Bits() > best.Bits()) {
			best, bestPO = p, po
		}
	}
	return best, bestPO
}

func checkIntent(n *bgp.Net, out *bgp.Outcome, in Intent) Verdict {
	switch in.Kind {
	case Reachability, Isolation, Waypoint:
		return checkFlow(n, out, in)
	case LoopFree, BlackholeFree:
		return checkGlobal(n, out, in)
	}
	return Verdict{Intent: in, Pass: false, Reason: "unknown intent kind"}
}

func checkFlow(n *bgp.Net, out *bgp.Outcome, in Intent) Verdict {
	v := Verdict{Intent: in}
	pkt := in.Packet()
	from := dataplane.InjectionPoint(n.Topo, pkt.Src)
	if from == "" {
		v.Pass = in.Kind == Isolation
		v.Reason = fmt.Sprintf("no injection point for source %s", pkt.Src)
		return v
	}
	prefix, po := coveringOutcome(out, pkt.Dst)
	v.Prefix = prefix
	var phases []map[string]*bgp.Route
	if po != nil {
		v.Flapping = !po.Converged
		phases = po.Phases()
	} else {
		phases = []map[string]*bgp.Route{nil} // statics may still deliver
	}
	delivered, looped := 0, 0
	visitsVia := true
	var failReason string
	for _, ph := range phases {
		tr := dataplane.Trace(n, ph, prefix, pkt, from)
		v.Traces = append(v.Traces, tr)
		switch tr.Outcome {
		case dataplane.Delivered:
			delivered++
			if in.Via != "" && !tr.Visits(in.Via) {
				visitsVia = false
				failReason = fmt.Sprintf("path %s bypasses waypoint %s", tr.PathString(), in.Via)
			}
		case dataplane.Looped:
			looped++
			failReason = tr.Reason + " (" + tr.PathString() + ")"
		default:
			failReason = tr.Reason
		}
	}
	switch in.Kind {
	case Isolation:
		if delivered == 0 {
			v.Pass = true
		} else {
			v.Reason = fmt.Sprintf("delivered in %d/%d phases, must be isolated", delivered, len(phases))
		}
	case Reachability, Waypoint:
		switch {
		case v.Flapping:
			v.Reason = fmt.Sprintf("route flapping for %s; %d/%d phases deliver", prefix, delivered, len(phases))
			if looped > 0 {
				v.Reason += fmt.Sprintf("; %s", failReason)
			}
		case delivered != len(phases):
			v.Reason = failReason
		case in.Kind == Waypoint && !visitsVia:
			v.Reason = failReason
		default:
			v.Pass = true
		}
	}
	return v
}

// globalTraceCap bounds how many failing traces a global verdict retains.
const globalTraceCap = 4

func checkGlobal(n *bgp.Net, out *bgp.Outcome, in Intent) Verdict {
	v := Verdict{Intent: in}
	prefix := in.DstPrefix
	po := out.ByPrefix[prefix]
	v.Prefix = prefix
	if po == nil {
		// Nothing routes toward it: trivially loop-free; blackhole-freedom
		// is judged by reachability intents, not here.
		v.Pass = true
		v.Reason = "prefix not originated"
		return v
	}
	v.Flapping = !po.Converged
	pkt := dataplane.SamplePacket(prefix, prefix) // src unused below
	for _, ph := range po.Phases() {
		names := make([]string, 0, len(ph))
		for name := range ph {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tr := dataplane.Trace(n, ph, prefix, pkt, name)
			bad := (in.Kind == LoopFree && tr.Outcome == dataplane.Looped) ||
				(in.Kind == BlackholeFree && tr.Outcome == dataplane.Blackholed)
			if bad {
				if len(v.Traces) < globalTraceCap {
					v.Traces = append(v.Traces, tr)
				}
				v.Reason = fmt.Sprintf("from %s: %s", name, tr.Reason)
			}
		}
	}
	v.Pass = v.Reason == ""
	if v.Pass && v.Flapping && in.Kind == LoopFree {
		// A flap without a loop phase is still unstable, but that is
		// reachability's concern; loop-freedom judges loops only.
		v.Reason = ""
	}
	return v
}
