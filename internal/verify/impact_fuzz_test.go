package verify_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

// fuzzBases lazily builds the two base verifiers the fuzzer mutates
// against: the Figure 2 incident (small, every intent kind) and a WAN
// with transit/leaf structure (exercises the leaf-local derivation path).
// Check never mutates the verifier, so one instance per base serves every
// fuzz iteration.
var fuzzBases = sync.OnceValue(func() []*verify.Incremental {
	mk := func(s *scenario.Scenario) *verify.Incremental {
		iv := verify.NewIncremental(s.Topo, s.Configs, s.Intents, bgp.Options{})
		iv.Differential = true
		return iv
	}
	return []*verify.Incremental{
		mk(scenario.Figure2()),
		mk(scenario.WAN(4, 3, 2, scenario.GenOptions{})),
	}
})

// FuzzImpactSet throws arbitrary single-line edits — replacements with
// attacker-chosen text, deletions, insertions — at the impact analysis
// with differential mode on: every pruned validation is replayed against a
// from-scratch full simulation, so any fuzz input whose impact set is too
// narrow surfaces as a DivergenceError here instead of a wrong repair in
// production. Inputs the parser rejects outright are fine (the engine
// discards unparseable candidates the same way); what must never happen
// is a *parseable* edit whose pruned verdicts differ from the full ones.
func FuzzImpactSet(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(3), " deny 10.0.0.0/16")
	f.Add(uint8(0), uint8(1), uint16(5), "")
	f.Add(uint8(1), uint8(0), uint16(9), " peer 10.1.0.1 as-number 65099")
	f.Add(uint8(1), uint8(2), uint16(1), " apply as-path 65000")
	f.Add(uint8(0), uint8(2), uint16(7), " permit 0.0.0.0/0 le 32")
	f.Fuzz(func(t *testing.T, base, op uint8, line uint16, text string) {
		if strings.ContainsRune(text, '\n') {
			// A config line is one line by construction; the engine's
			// templates never emit embedded newlines.
			return
		}
		ivs := fuzzBases()
		iv := ivs[int(base)%len(ivs)]
		devices := make([]string, 0, len(iv.BaseConfigs()))
		for d := range iv.BaseConfigs() { //acrvet:ordered — sorted below
			devices = append(devices, d)
		}
		// Deterministic device pick: sort, then index by the op byte's
		// high bits so device choice and edit kind vary independently.
		sort.Strings(devices)
		dev := devices[int(op>>2)%len(devices)]
		cfg := iv.BaseConfigs()[dev]
		n := cfg.NumLines()
		if n == 0 {
			return
		}
		at := 1 + int(line)%n
		var edit netcfg.Edit
		switch op % 3 {
		case 0:
			edit = netcfg.ReplaceLine{At: at, Text: text}
		case 1:
			edit = netcfg.DeleteLine{At: at}
		default:
			edit = netcfg.InsertBefore{At: at, Text: text}
		}
		edits := []netcfg.EditSet{{Device: dev, Edits: []netcfg.Edit{edit}}}

		rep, _, err := iv.Check(edits)
		if err != nil {
			if _, ok := err.(*verify.DivergenceError); ok {
				t.Fatalf("impact analysis diverged from full simulation: %v", err)
			}
			// Parse/apply failure: the candidate is discarded, nothing to
			// cross-check.
			return
		}
		full, err := iv.FullCheck(edits)
		if err != nil {
			t.Fatalf("Check accepted edits FullCheck rejects: %v", err)
		}
		if !reportsEqual(rep, full) {
			t.Fatalf("pruned and full verdicts disagree for %v:\npruned:\n%s\nfull:\n%s",
				edits, rep.Summary(), full.Summary())
		}
	})
}
