package verify_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

// deltaFuzzBases mirrors fuzzBases with DeltaDifferential on instead of
// Differential: every prefix the delta simulator answers is replayed
// against a cold full simulation inside the check itself.
var deltaFuzzBases = sync.OnceValue(func() []*verify.Incremental {
	mk := func(s *scenario.Scenario) *verify.Incremental {
		iv := verify.NewIncremental(s.Topo, s.Configs, s.Intents, bgp.Options{})
		iv.DeltaDifferential = true
		return iv
	}
	return []*verify.Incremental{
		mk(scenario.Figure2()),
		mk(scenario.WAN(4, 3, 2, scenario.GenOptions{})),
	}
})

// FuzzDeltaSim throws arbitrary single-line edits at the delta simulator
// with the per-prefix differential on: any fixpoint the warm-started
// propagation reaches that a cold simulation would not surfaces as a
// DeltaDivergenceError. Independently, the check's verdicts are compared
// against a from-scratch FullCheck, so a wrong structural reuse (a stale
// base outcome answering for a changed prefix) is caught even if each
// delta-simulated prefix individually agreed.
func FuzzDeltaSim(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(3), " deny 10.0.0.0/16")
	f.Add(uint8(0), uint8(1), uint16(5), "")
	f.Add(uint8(1), uint8(0), uint16(9), " peer 10.1.0.1 as-number 65099")
	f.Add(uint8(1), uint8(2), uint16(1), " apply as-path 65000")
	f.Add(uint8(0), uint8(2), uint16(7), " apply local-preference 300")
	f.Add(uint8(1), uint8(1), uint16(4), " router-id 9.9.9.9")
	f.Fuzz(func(t *testing.T, base, op uint8, line uint16, text string) {
		if strings.ContainsRune(text, '\n') {
			return
		}
		ivs := deltaFuzzBases()
		iv := ivs[int(base)%len(ivs)]
		devices := make([]string, 0, len(iv.BaseConfigs()))
		for d := range iv.BaseConfigs() { //acrvet:ordered — sorted below
			devices = append(devices, d)
		}
		sort.Strings(devices)
		dev := devices[int(op>>2)%len(devices)]
		cfg := iv.BaseConfigs()[dev]
		n := cfg.NumLines()
		if n == 0 {
			return
		}
		at := 1 + int(line)%n
		var edit netcfg.Edit
		switch op % 3 {
		case 0:
			edit = netcfg.ReplaceLine{At: at, Text: text}
		case 1:
			edit = netcfg.DeleteLine{At: at}
		default:
			edit = netcfg.InsertBefore{At: at, Text: text}
		}
		edits := []netcfg.EditSet{{Device: dev, Edits: []netcfg.Edit{edit}}}

		rep, _, err := iv.Check(edits)
		if err != nil {
			if _, ok := err.(*verify.DeltaDivergenceError); ok {
				t.Fatalf("delta simulation diverged from full simulation: %v", err)
			}
			// Parse/apply failure: the candidate is discarded, nothing to
			// cross-check.
			return
		}
		full, err := iv.FullCheck(edits)
		if err != nil {
			t.Fatalf("Check accepted edits FullCheck rejects: %v", err)
		}
		if !reportsEqual(rep, full) {
			t.Fatalf("delta-backed and full verdicts disagree for %v:\ndelta:\n%s\nfull:\n%s",
				edits, rep.Summary(), full.Summary())
		}
	})
}
