package verify_test

import (
	"net/netip"
	"testing"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

func run(t *testing.T, s *scenario.Scenario) (*bgp.Net, *bgp.Outcome, *verify.Report) {
	t.Helper()
	n := bgp.Compile(s.Topo, s.Files())
	out := bgp.Simulate(n, bgp.Options{})
	return n, out, verify.Verify(n, out, s.Intents)
}

func TestGenerateTests(t *testing.T) {
	intents := scenario.Figure2Intents()
	tests := verify.GenerateTests(intents)
	if len(tests) != len(intents) {
		t.Fatalf("tests = %d, want %d", len(tests), len(intents))
	}
	for i, tc := range tests {
		if !intents[i].SrcPrefix.Contains(tc.Packet.Src) {
			t.Errorf("test %d: src %v outside %v", i, tc.Packet.Src, intents[i].SrcPrefix)
		}
		if !intents[i].DstPrefix.Contains(tc.Packet.Dst) {
			t.Errorf("test %d: dst %v outside %v", i, tc.Packet.Dst, intents[i].DstPrefix)
		}
	}
}

func TestIntentPacketHonorsHeaderSpace(t *testing.T) {
	in := verify.Intent{
		Kind:      verify.Waypoint,
		SrcPrefix: netip.MustParsePrefix("10.0.0.0/16"),
		DstPrefix: netip.MustParsePrefix("10.1.0.0/16"),
		Proto:     "udp",
		DstPort:   53,
	}
	pkt := in.Packet()
	if pkt.Proto != "udp" || pkt.DstPort != 53 {
		t.Errorf("packet = %v, want udp/53", pkt)
	}
}

func TestVerifyFigure2(t *testing.T) {
	_, _, rep := run(t, scenario.Figure2())
	if rep.NumFailed() != 1 {
		t.Fatalf("failed = %d, want 1\n%s", rep.NumFailed(), rep.Summary())
	}
	failed := rep.Failed()
	if failed[0].Intent.ID != "reach-pop-b" {
		t.Errorf("failing intent = %s", failed[0].Intent.ID)
	}
	if len(rep.Passed()) != 2 {
		t.Errorf("passed = %d, want 2", len(rep.Passed()))
	}
	if rep.ByID("nope") != nil {
		t.Error("ByID of unknown intent should be nil")
	}
	if rep.ByID("reach-pop-b") == nil {
		t.Error("ByID lost the failing intent")
	}
}

func TestVerdictPrefixDependency(t *testing.T) {
	_, _, rep := run(t, scenario.Figure2())
	v := rep.ByID("reach-pop-b")
	if v.Prefix != scenario.PrefixPoPB {
		t.Errorf("verdict prefix = %v, want %v", v.Prefix, scenario.PrefixPoPB)
	}
	if len(v.Traces) < 2 {
		t.Errorf("flapping verdict has %d traces, want one per phase (>=2)", len(v.Traces))
	}
}

func TestIsolationVerdicts(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	_, _, rep := run(t, s)
	sawIsolation := false
	for _, v := range rep.Verdicts {
		if v.Intent.Kind == verify.Isolation {
			sawIsolation = true
			if !v.Pass {
				t.Errorf("isolation intent failed in correct WAN: %s (%s)", v.Intent, v.Reason)
			}
		}
	}
	if !sawIsolation {
		t.Fatal("no isolation intents in WAN scenario")
	}
}

func TestLoopFreeIntentOnFlappingPrefix(t *testing.T) {
	s := scenario.Figure2()
	s.Intents = append(s.Intents, verify.LoopFreeIntent("loopfree-10.0", scenario.PrefixPoPB))
	_, _, rep := run(t, s)
	v := rep.ByID("loopfree-10.0")
	if v == nil || v.Pass {
		t.Fatalf("loop-free intent on the flapping prefix must fail (transient loops exist): %+v", v)
	}
}

func TestLoopFreeOnUnoriginatedPrefix(t *testing.T) {
	s := scenario.Figure2Correct()
	s.Intents = []verify.Intent{verify.LoopFreeIntent("lf", netip.MustParsePrefix("99.0.0.0/16"))}
	_, _, rep := run(t, s)
	if !rep.Verdicts[0].Pass {
		t.Error("loop-freedom of an unoriginated prefix is trivially true")
	}
}

func TestBlackholeFreeIntent(t *testing.T) {
	// A backbone router originating a prefix it cannot deliver (network
	// statement without attachment) blackholes — BlackholeFree catches it.
	s := scenario.Figure2Correct()
	cfg := s.Configs["B"]
	f := netcfg.MustParse(cfg)
	insertAt := f.BGP.End + 1 // append inside the bgp block
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: insertAt, Text: " network 33.0.0.0/16"},
	}}.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["B"] = next
	s.Intents = []verify.Intent{verify.BlackholeFreeIntent("bh", netip.MustParsePrefix("33.0.0.0/16"))}
	_, _, rep := run(t, s)
	if rep.Verdicts[0].Pass {
		t.Error("blackhole-free intent should fail for an undeliverable origination")
	}
}

func TestReachabilityToUnknownDestinationFails(t *testing.T) {
	s := scenario.Figure2Correct()
	s.Intents = []verify.Intent{verify.ReachIntent("unknown", scenario.PrefixDCNS, netip.MustParsePrefix("99.0.0.0/16"))}
	_, _, rep := run(t, s)
	if rep.Verdicts[0].Pass {
		t.Error("reachability to an unoriginated prefix should fail")
	}
}

func TestIsolationOfUnknownSourcePasses(t *testing.T) {
	s := scenario.Figure2Correct()
	s.Intents = []verify.Intent{verify.IsolationIntent("iso", netip.MustParsePrefix("99.0.0.0/16"), scenario.PrefixDCNS)}
	_, _, rep := run(t, s)
	if !rep.Verdicts[0].Pass {
		t.Error("isolation with no injection point is vacuously true")
	}
}
