package verify

import (
	"context"
	"fmt"
	"net/netip"
	"strings"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/provenance"
	"acr/internal/topo"
)

// Stats reports how much work an incremental check performed, for the
// paper's claim that validation is efficient with incremental verifiers
// (§3.2, observation 3).
type Stats struct {
	PrefixesTotal     int
	PrefixesSimulated int
	IntentsTotal      int
	IntentsReverified int
	// Broad marks a change the dependency analysis could not scope (e.g. a
	// session-level edit), forcing full re-verification.
	Broad bool
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("simulated %d/%d prefixes, reverified %d/%d intents (broad=%v)",
		s.PrefixesSimulated, s.PrefixesTotal, s.IntentsReverified, s.IntentsTotal, s.Broad)
}

// Incremental is a DNA-style incremental verifier. It holds a verified
// base configuration; Check evaluates candidate edit sets against that
// base, re-simulating only affected prefixes and re-checking only affected
// intents. Commit advances the base to an accepted candidate.
type Incremental struct {
	Topo    *topo.Network
	Intents []Intent
	SimOpts bgp.Options

	configs map[string]*netcfg.Config
	files   map[string]*netcfg.File
	net     *bgp.Net
	out     *bgp.Outcome
	prov    *provenance.Graph
	report  *Report

	// lineDeps maps each configuration line to the prefixes whose
	// provenance executed it.
	lineDeps map[netcfg.LineRef]map[netip.Prefix]bool
}

// NewIncremental verifies the base configuration fully and builds the
// dependency index.
func NewIncremental(t *topo.Network, configs map[string]*netcfg.Config, intents []Intent, opts bgp.Options) *Incremental {
	iv := &Incremental{Topo: t, Intents: intents, SimOpts: opts}
	iv.rebase(configs)
	return iv
}

func (iv *Incremental) rebase(configs map[string]*netcfg.Config) {
	iv.configs = configs
	iv.files = map[string]*netcfg.File{}
	for d, c := range configs {
		f, _ := netcfg.Parse(c) // partial ASTs are fine; broken lines are repair candidates
		iv.files[d] = f
	}
	iv.net = bgp.Compile(iv.Topo, iv.files)
	iv.out = bgp.Simulate(iv.net, iv.SimOpts)
	iv.prov = bgp.BuildProvenance(iv.net, iv.out)
	iv.report = Verify(iv.net, iv.out, iv.Intents)
	iv.lineDeps = map[netcfg.LineRef]map[netip.Prefix]bool{}
	for _, p := range iv.prov.Prefixes() {
		for _, l := range iv.prov.LinesForPrefix(p) {
			m := iv.lineDeps[l]
			if m == nil {
				m = map[netip.Prefix]bool{}
				iv.lineDeps[l] = m
			}
			m[p] = true
		}
	}
}

// Clone returns an independently usable verifier over the same base.
//
// Everything behind a clone is shared by reference and immutable once
// rebase returns: the parsed files, the compiled bgp.Net, the simulation
// Outcome and its per-prefix outcomes, the provenance graph, the base
// report, and the line-dependency index are built once and only ever read
// afterward (CheckCtx constructs fresh maps for candidate state and reuses
// base entries by pointer; rebase replaces the maps wholesale rather than
// mutating them). Clone therefore only copies the top-level map headers,
// so a Commit on one clone — which rebases that clone onto new maps —
// can never be observed, even partially, by checks running on another.
// Concurrent CheckCtx/FullCheckCtx calls on distinct clones are race-free;
// a single Incremental is still not safe for concurrent use with Commit.
func (iv *Incremental) Clone() *Incremental {
	cp := *iv
	cp.configs = make(map[string]*netcfg.Config, len(iv.configs))
	for d, c := range iv.configs {
		cp.configs[d] = c
	}
	cp.files = make(map[string]*netcfg.File, len(iv.files))
	for d, f := range iv.files {
		cp.files[d] = f
	}
	cp.lineDeps = make(map[netcfg.LineRef]map[netip.Prefix]bool, len(iv.lineDeps))
	for l, m := range iv.lineDeps {
		cp.lineDeps[l] = m // inner maps are read-only after rebase
	}
	return &cp
}

// Base accessors.

// BaseReport returns the verification report of the current base.
func (iv *Incremental) BaseReport() *Report { return iv.report }

// BaseOutcome returns the simulation outcome of the current base.
func (iv *Incremental) BaseOutcome() *bgp.Outcome { return iv.out }

// BaseNet returns the compiled base network.
func (iv *Incremental) BaseNet() *bgp.Net { return iv.net }

// BaseProvenance returns the base derivation graph.
func (iv *Incremental) BaseProvenance() *provenance.Graph { return iv.prov }

// BaseConfigs returns the base configuration documents.
func (iv *Incremental) BaseConfigs() map[string]*netcfg.Config { return iv.configs }

// BaseFiles returns the parsed base configurations.
func (iv *Incremental) BaseFiles() map[string]*netcfg.File { return iv.files }

// applyEdits produces the candidate configuration map.
func (iv *Incremental) applyEdits(edits []netcfg.EditSet) (map[string]*netcfg.Config, error) {
	out := make(map[string]*netcfg.Config, len(iv.configs))
	for d, c := range iv.configs {
		out[d] = c
	}
	for _, es := range edits {
		base, ok := out[es.Device]
		if !ok {
			return nil, fmt.Errorf("edit set for unknown device %q", es.Device)
		}
		next, err := es.Apply(base)
		if err != nil {
			return nil, err
		}
		out[es.Device] = next
	}
	return out, nil
}

// prefixLiterals extracts prefix tokens ("a.b.c.d/len") from a line.
func prefixLiterals(line string) []netip.Prefix {
	var out []netip.Prefix
	for _, tok := range strings.Fields(line) {
		if p, err := netip.ParsePrefix(tok); err == nil {
			out = append(out, p.Masked())
		}
	}
	return out
}

// Check verifies the base with edits applied, incrementally. The returned
// report covers every intent (cached verdicts are reused for unaffected
// ones). The base is not modified.
func (iv *Incremental) Check(edits []netcfg.EditSet) (*Report, Stats, error) {
	return iv.CheckCtx(context.Background(), edits)
}

// CheckCtx is Check with cooperative cancellation: the context is checked
// between per-prefix simulations and threaded into the simulation passes,
// so a deadline interrupts validation mid-candidate. On cancellation it
// returns the context's error and no report.
func (iv *Incremental) CheckCtx(ctx context.Context, edits []netcfg.EditSet) (*Report, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	newConfigs, err := iv.applyEdits(edits)
	if err != nil {
		return nil, Stats{}, err
	}
	// --- dependency analysis -------------------------------------------
	affected := map[netip.Prefix]bool{}
	broad := false
	oldPrefixes := iv.net.AllPrefixes()
	markOverlaps := func(lit netip.Prefix) {
		hit := false
		for _, p := range oldPrefixes {
			if p.Overlaps(lit) {
				affected[p] = true
				hit = true
			}
		}
		_ = hit
	}
	for _, es := range edits {
		baseCfg := iv.configs[es.Device]
		for _, e := range es.Edits {
			var oldText, newText string
			var anchorRef netcfg.LineRef
			switch ed := e.(type) {
			case netcfg.InsertBefore:
				newText = ed.Text
			case netcfg.DeleteLine:
				oldText = baseCfg.Line(ed.At)
				anchorRef = netcfg.LineRef{Device: es.Device, Line: ed.At}
			case netcfg.ReplaceLine:
				oldText = baseCfg.Line(ed.At)
				newText = ed.Text
				anchorRef = netcfg.LineRef{Device: es.Device, Line: ed.At}
			default:
				broad = true
				continue
			}
			scoped := false
			if anchorRef.Line > 0 {
				for p := range iv.lineDeps[anchorRef] {
					affected[p] = true
					scoped = true
				}
			}
			lits := append(prefixLiterals(oldText), prefixLiterals(newText)...)
			for _, lit := range lits {
				markOverlaps(lit)
				scoped = true
			}
			if !scoped {
				// A line with no prefix literal and no provenance history
				// (e.g. a new policy attachment or session stanza) can
				// influence any prefix through that device.
				broad = true
			}
		}
	}

	// --- recompile and re-simulate --------------------------------------
	newFiles := map[string]*netcfg.File{}
	for d, c := range newConfigs {
		if c == iv.configs[d] {
			newFiles[d] = iv.files[d]
			continue
		}
		f, _ := netcfg.Parse(c)
		newFiles[d] = f
	}
	newNet := bgp.Compile(iv.Topo, newFiles)

	newAll := newNet.AllPrefixes()
	newSet := map[netip.Prefix]bool{}
	for _, p := range newAll {
		newSet[p] = true
	}
	oldSet := map[netip.Prefix]bool{}
	for _, p := range oldPrefixes {
		oldSet[p] = true
		if !newSet[p] {
			affected[p] = true // origination removed
		}
	}
	for _, p := range newAll {
		if !oldSet[p] {
			affected[p] = true // new origination
		}
	}
	// Session changes (up or down) affect everything.
	if sessionFingerprint(iv.net) != sessionFingerprint(newNet) {
		broad = true
	}

	stats := Stats{PrefixesTotal: len(newAll), IntentsTotal: len(iv.Intents), Broad: broad}
	simOpts := iv.SimOpts
	simOpts.Ctx = ctx
	newOut := &bgp.Outcome{Net: newNet, ByPrefix: map[netip.Prefix]*bgp.PrefixOutcome{}}
	for _, p := range newAll {
		if broad || affected[p] {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
			po := bgp.SimulatePrefix(newNet, p, simOpts)
			if po.Canceled {
				return nil, stats, ctx.Err()
			}
			newOut.ByPrefix[p] = po
			stats.PrefixesSimulated++
		} else {
			newOut.ByPrefix[p] = iv.out.ByPrefix[p]
		}
	}

	// --- re-verify affected intents --------------------------------------
	editedLines := map[netcfg.LineRef]bool{}
	for _, es := range edits {
		for _, e := range es.Edits {
			switch ed := e.(type) {
			case netcfg.DeleteLine:
				editedLines[netcfg.LineRef{Device: es.Device, Line: ed.At}] = true
			case netcfg.ReplaceLine:
				editedLines[netcfg.LineRef{Device: es.Device, Line: ed.At}] = true
			}
		}
	}
	rep := &Report{Verdicts: make([]Verdict, len(iv.Intents))}
	for i, in := range iv.Intents {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		base := iv.report.Verdicts[i]
		if broad || iv.intentAffected(base, in, affected, editedLines) {
			rep.Verdicts[i] = checkIntent(newNet, newOut, in)
			stats.IntentsReverified++
		} else {
			rep.Verdicts[i] = base
		}
	}
	return rep, stats, nil
}

// intentAffected decides whether a cached verdict may be stale.
func (iv *Incremental) intentAffected(base Verdict, in Intent, affected map[netip.Prefix]bool, edited map[netcfg.LineRef]bool) bool {
	pkt := in.Packet()
	for p := range affected {
		if p.Contains(pkt.Dst) {
			return true
		}
	}
	for _, l := range base.Lines() {
		if edited[l] {
			return true
		}
	}
	// Intents that previously matched no prefix must be re-checked when
	// new prefixes appear covering them — handled above since new
	// originations are in `affected`.
	return false
}

// sessionFingerprint summarizes the established-session set.
func sessionFingerprint(n *bgp.Net) string {
	var sb strings.Builder
	for _, name := range n.Order {
		for _, s := range n.Routers[name].Sessions {
			fmt.Fprintf(&sb, "%s-%s;", name, s.PeerAddr)
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// FullCheck verifies the base with edits applied from scratch — no reuse.
// It exists for the incremental-vs-full ablation.
func (iv *Incremental) FullCheck(edits []netcfg.EditSet) (*Report, error) {
	return iv.FullCheckCtx(context.Background(), edits)
}

// FullCheckCtx is FullCheck with cooperative cancellation.
func (iv *Incremental) FullCheckCtx(ctx context.Context, edits []netcfg.EditSet) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	newConfigs, err := iv.applyEdits(edits)
	if err != nil {
		return nil, err
	}
	files := map[string]*netcfg.File{}
	for d, c := range newConfigs {
		f, _ := netcfg.Parse(c)
		files[d] = f
	}
	n := bgp.Compile(iv.Topo, files)
	simOpts := iv.SimOpts
	simOpts.Ctx = ctx
	out := bgp.Simulate(n, simOpts)
	if out.Canceled() {
		return nil, ctx.Err()
	}
	return Verify(n, out, iv.Intents), nil
}

// Commit applies edits to the base permanently, rebuilding the dependency
// index (full recomputation; commits happen once per accepted repair).
func (iv *Incremental) Commit(edits []netcfg.EditSet) error {
	newConfigs, err := iv.applyEdits(edits)
	if err != nil {
		return err
	}
	iv.rebase(newConfigs)
	return nil
}
