package verify

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"acr/internal/analysis"
	"acr/internal/bgp"
	"acr/internal/dataplane"
	"acr/internal/netcfg"
	"acr/internal/provenance"
	"acr/internal/topo"
)

// Stats reports how much work an incremental check performed, for the
// paper's claim that validation is efficient with incremental verifiers
// (§3.2, observation 3).
type Stats struct {
	PrefixesTotal     int
	PrefixesSimulated int
	// PrefixesDerived counts prefixes whose candidate outcome was obtained
	// by patching leaf entries of the base outcome (bgp.RederiveLeaves)
	// instead of a full prefix simulation.
	PrefixesDerived int
	// PrefixesDelta counts prefixes answered by delta re-simulation
	// (bgp.DeltaSimulatePrefix): seeded from the base outcome, only the
	// edit's wave of routers re-activated.
	PrefixesDelta int
	// DeltaFallbacks counts prefixes where the delta path refused the
	// shortcut (non-converged base, pass bound) and a cold simulation ran.
	DeltaFallbacks int
	// Activations totals router activations across every simulation this
	// check ran — the device·prefix work unit the delta benchmark compares.
	Activations       int
	IntentsTotal      int
	IntentsReverified int
	// Broad marks a change the dependency analysis could not scope (e.g. a
	// session-level edit), forcing full re-verification.
	Broad bool
	// Refuted marks a candidate the static impact analysis proved unable
	// to influence any intent: the base verdicts were returned with zero
	// simulations and zero re-verifications.
	Refuted bool
}

// String renders the stats compactly.
func (s Stats) String() string {
	if s.Refuted {
		return fmt.Sprintf("statically refuted: 0/%d prefixes simulated, 0/%d intents reverified",
			s.PrefixesTotal, s.IntentsTotal)
	}
	return fmt.Sprintf("simulated %d/%d prefixes, reverified %d/%d intents (broad=%v)",
		s.PrefixesSimulated, s.PrefixesTotal, s.IntentsReverified, s.IntentsTotal, s.Broad)
}

// Incremental is a DNA-style incremental verifier. It holds a verified
// base configuration; Check evaluates candidate edit sets against that
// base, re-simulating only affected prefixes and re-checking only affected
// intents. Commit advances the base to an accepted candidate.
type Incremental struct {
	Topo    *topo.Network
	Intents []Intent
	SimOpts bgp.Options

	// NoImpact disables the static impact analysis and falls back to the
	// original line/literal dependency heuristic — the ablation baseline
	// (`acr repair -no-impact`).
	NoImpact bool
	// Differential replays every pruned decision against a from-scratch
	// full check and fails the check with a *DivergenceError when any
	// intent verdict differs — the soundness enforcement mode.
	Differential bool
	// NoDelta disables delta re-simulation on the impact-scoped path and
	// runs every needed prefix simulation from a cold start — the ablation
	// baseline (`acr repair -no-delta`).
	NoDelta bool
	// DeltaDifferential replays every delta-simulated prefix against a
	// cold full simulation and fails the check with a
	// *DeltaDivergenceError (minimized repro attached by CheckCtx) when
	// the outcomes differ — the soundness enforcement mode for the delta
	// simulator (`acr repair -delta-differential`).
	DeltaDifferential bool

	configs map[string]*netcfg.Config
	files   map[string]*netcfg.File
	net     *bgp.Net
	out     *bgp.Outcome
	prov    *provenance.Graph
	report  *Report

	// lineDeps maps each configuration line to the prefixes whose
	// provenance executed it.
	lineDeps map[netcfg.LineRef]map[netip.Prefix]bool

	// graph and impact are the cross-device influence graph and the static
	// impact analyzer over the current base; both are sealed read-only
	// after rebase and shared by reference across clones.
	graph  *provenance.DeviceGraph
	impact *analysis.ImpactAnalyzer

	// batch, when non-nil, memoizes candidate parses across the sibling
	// checks of one batch (BeginBatch/EndBatch): sibling candidates that
	// produce the same post-edit text on a device share one parsed
	// *netcfg.File, which is safe because parsed files are immutable.
	// Never shared across goroutines — Clone resets it.
	batch map[parseKey]*netcfg.File
}

// parseKey identifies a candidate parse by device and full post-edit text.
type parseKey struct{ device, text string }

// NewIncremental verifies the base configuration fully and builds the
// dependency index.
func NewIncremental(t *topo.Network, configs map[string]*netcfg.Config, intents []Intent, opts bgp.Options) *Incremental {
	iv := &Incremental{Topo: t, Intents: intents, SimOpts: opts}
	iv.rebase(configs)
	return iv
}

func (iv *Incremental) rebase(configs map[string]*netcfg.Config) {
	iv.configs = configs
	iv.files = map[string]*netcfg.File{}
	for d, c := range configs { //acrvet:ordered
		f, _ := netcfg.Parse(c) // partial ASTs are fine; broken lines are repair candidates
		iv.files[d] = f
	}
	iv.net = bgp.Compile(iv.Topo, iv.files)
	iv.out = bgp.Simulate(iv.net, iv.SimOpts)
	iv.prov = bgp.BuildProvenance(iv.net, iv.out)
	iv.report = Verify(iv.net, iv.out, iv.Intents)
	iv.lineDeps = map[netcfg.LineRef]map[netip.Prefix]bool{}
	for _, p := range iv.prov.Prefixes() {
		for _, l := range iv.prov.LinesForPrefix(p) {
			m := iv.lineDeps[l]
			if m == nil {
				m = map[netip.Prefix]bool{}
				iv.lineDeps[l] = m
			}
			m[p] = true
		}
	}
	iv.graph = bgp.DeviceGraphOf(iv.net)
	origins := map[netip.Prefix][]string{}
	for _, name := range iv.net.Order {
		for _, o := range iv.net.Routers[name].Origins {
			origins[o.Prefix] = append(origins[o.Prefix], name)
		}
	}
	iv.impact = analysis.NewImpactAnalyzer(iv.files, iv.net.AllPrefixes(), origins, iv.graph)
}

// Clone returns an independently usable verifier over the same base.
//
// Everything behind a clone is shared by reference and immutable once
// rebase returns: the parsed files, the compiled bgp.Net, the simulation
// Outcome and its per-prefix outcomes, the provenance graph, the base
// report, and the line-dependency index are built once and only ever read
// afterward (CheckCtx constructs fresh maps for candidate state and reuses
// base entries by pointer; rebase replaces the maps wholesale rather than
// mutating them). Clone therefore only copies the top-level map headers,
// so a Commit on one clone — which rebases that clone onto new maps —
// can never be observed, even partially, by checks running on another.
// Concurrent CheckCtx/FullCheckCtx calls on distinct clones are race-free;
// a single Incremental is still not safe for concurrent use with Commit.
func (iv *Incremental) Clone() *Incremental {
	cp := *iv
	cp.configs = make(map[string]*netcfg.Config, len(iv.configs))
	for d, c := range iv.configs { //acrvet:ordered
		cp.configs[d] = c
	}
	cp.files = make(map[string]*netcfg.File, len(iv.files))
	for d, f := range iv.files { //acrvet:ordered
		cp.files[d] = f
	}
	cp.lineDeps = make(map[netcfg.LineRef]map[netip.Prefix]bool, len(iv.lineDeps))
	for l, m := range iv.lineDeps { //acrvet:ordered
		cp.lineDeps[l] = m // inner maps are read-only after rebase
	}
	cp.batch = nil // batch memos are per-goroutine; never inherited
	return &cp
}

// BeginBatch installs a parse memo shared by the checks that follow on
// this verifier: sibling candidates producing identical post-edit text on
// a device parse it once. Purely a cache of a deterministic function —
// verdicts and reports are byte-identical with or without it. Not safe
// for concurrent use; batch on the clone that runs the checks.
func (iv *Incremental) BeginBatch() { iv.batch = map[parseKey]*netcfg.File{} }

// EndBatch drops the parse memo installed by BeginBatch.
func (iv *Incremental) EndBatch() { iv.batch = nil }

// parseFile parses a candidate config, answering from the batch memo when
// one is installed.
func (iv *Incremental) parseFile(d string, c *netcfg.Config) *netcfg.File {
	if iv.batch == nil {
		f, _ := netcfg.Parse(c)
		return f
	}
	k := parseKey{device: d, text: c.Text()}
	if f, ok := iv.batch[k]; ok {
		return f
	}
	f, _ := netcfg.Parse(c)
	iv.batch[k] = f
	return f
}

// Base accessors.

// BaseReport returns the verification report of the current base.
func (iv *Incremental) BaseReport() *Report { return iv.report }

// BaseOutcome returns the simulation outcome of the current base.
func (iv *Incremental) BaseOutcome() *bgp.Outcome { return iv.out }

// BaseNet returns the compiled base network.
func (iv *Incremental) BaseNet() *bgp.Net { return iv.net }

// BaseProvenance returns the base derivation graph.
func (iv *Incremental) BaseProvenance() *provenance.Graph { return iv.prov }

// BaseConfigs returns the base configuration documents.
func (iv *Incremental) BaseConfigs() map[string]*netcfg.Config { return iv.configs }

// BaseFiles returns the parsed base configurations.
func (iv *Incremental) BaseFiles() map[string]*netcfg.File { return iv.files }

// applyEdits produces the candidate configuration map.
func (iv *Incremental) applyEdits(edits []netcfg.EditSet) (map[string]*netcfg.Config, error) {
	out := make(map[string]*netcfg.Config, len(iv.configs))
	for d, c := range iv.configs { //acrvet:ordered
		out[d] = c
	}
	for _, es := range edits {
		base, ok := out[es.Device]
		if !ok {
			return nil, fmt.Errorf("edit set for unknown device %q", es.Device)
		}
		next, err := es.Apply(base)
		if err != nil {
			return nil, err
		}
		out[es.Device] = next
	}
	return out, nil
}

// prefixLiterals extracts prefix tokens ("a.b.c.d/len") from a line.
func prefixLiterals(line string) []netip.Prefix {
	var out []netip.Prefix
	for _, tok := range strings.Fields(line) {
		if p, err := netip.ParsePrefix(tok); err == nil {
			out = append(out, p.Masked())
		}
	}
	return out
}

// Check verifies the base with edits applied, incrementally. The returned
// report covers every intent (cached verdicts are reused for unaffected
// ones). The base is not modified.
func (iv *Incremental) Check(edits []netcfg.EditSet) (*Report, Stats, error) {
	return iv.CheckCtx(context.Background(), edits)
}

// CheckCtx is Check with cooperative cancellation: the context is checked
// between per-prefix simulations and threaded into the simulation passes,
// so a deadline interrupts validation mid-candidate. On cancellation it
// returns the context's error and no report.
//
// By default the static impact analysis scopes the work (see
// checkImpactCtx); NoImpact selects the original line/literal dependency
// heuristic. With Differential set, the pruned result is replayed against
// a full check and any verdict mismatch returns a *DivergenceError.
func (iv *Incremental) CheckCtx(ctx context.Context, edits []netcfg.EditSet) (*Report, Stats, error) {
	rep, stats, err := iv.checkPrunedCtx(ctx, edits)
	if err != nil {
		// A delta divergence surfaces here from deep inside the per-prefix
		// loop; attach the minimized reproduction before it propagates.
		var dde *DeltaDivergenceError
		if errors.As(err, &dde) && dde.Edits == nil {
			dde.Edits = iv.minimizeDeltaDivergence(ctx, edits)
		}
		return rep, stats, err
	}
	if !iv.Differential {
		return rep, stats, err
	}
	full, err := iv.FullCheckCtx(ctx, edits)
	if err != nil {
		return nil, stats, err
	}
	if d := reportsDiverge(rep, full); d != nil {
		d.Refuted = stats.Refuted
		d.Edits = iv.minimizeDivergence(ctx, edits)
		return nil, stats, d
	}
	return rep, stats, nil
}

// checkPrunedCtx dispatches to the configured pruning strategy without
// differential replay (the replay driver calls it directly).
func (iv *Incremental) checkPrunedCtx(ctx context.Context, edits []netcfg.EditSet) (*Report, Stats, error) {
	if iv.NoImpact || iv.impact == nil {
		return iv.checkDependencyCtx(ctx, edits)
	}
	return iv.checkImpactCtx(ctx, edits)
}

// checkDependencyCtx is the pre-impact dependency heuristic: provenance
// line history plus prefix literals, with any unscopable edit degrading to
// a full re-simulation. Kept verbatim as the `-no-impact` ablation
// baseline and as the fallback when no impact analyzer exists.
func (iv *Incremental) checkDependencyCtx(ctx context.Context, edits []netcfg.EditSet) (*Report, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	newConfigs, err := iv.applyEdits(edits)
	if err != nil {
		return nil, Stats{}, err
	}
	// --- dependency analysis -------------------------------------------
	affected := map[netip.Prefix]bool{}
	broad := false
	oldPrefixes := iv.net.AllPrefixes()
	markOverlaps := func(lit netip.Prefix) {
		hit := false
		for _, p := range oldPrefixes {
			if p.Overlaps(lit) {
				affected[p] = true
				hit = true
			}
		}
		_ = hit
	}
	for _, es := range edits {
		baseCfg := iv.configs[es.Device]
		for _, e := range es.Edits {
			var oldText, newText string
			var anchorRef netcfg.LineRef
			switch ed := e.(type) {
			case netcfg.InsertBefore:
				newText = ed.Text
			case netcfg.DeleteLine:
				oldText = baseCfg.Line(ed.At)
				anchorRef = netcfg.LineRef{Device: es.Device, Line: ed.At}
			case netcfg.ReplaceLine:
				oldText = baseCfg.Line(ed.At)
				newText = ed.Text
				anchorRef = netcfg.LineRef{Device: es.Device, Line: ed.At}
			default:
				broad = true
				continue
			}
			scoped := false
			if anchorRef.Line > 0 {
				for p := range iv.lineDeps[anchorRef] { //acrvet:ordered
					affected[p] = true
					scoped = true
				}
			}
			lits := append(prefixLiterals(oldText), prefixLiterals(newText)...)
			for _, lit := range lits {
				markOverlaps(lit)
				scoped = true
			}
			if !scoped {
				// A line with no prefix literal and no provenance history
				// (e.g. a new policy attachment or session stanza) can
				// influence any prefix through that device.
				broad = true
			}
		}
	}

	// --- recompile and re-simulate --------------------------------------
	newFiles := map[string]*netcfg.File{}
	for d, c := range newConfigs { //acrvet:ordered
		if c == iv.configs[d] {
			newFiles[d] = iv.files[d]
			continue
		}
		newFiles[d] = iv.parseFile(d, c)
	}
	newNet := bgp.Compile(iv.Topo, newFiles)

	newAll := newNet.AllPrefixes()
	newSet := map[netip.Prefix]bool{}
	for _, p := range newAll {
		newSet[p] = true
	}
	oldSet := map[netip.Prefix]bool{}
	for _, p := range oldPrefixes {
		oldSet[p] = true
		if !newSet[p] {
			affected[p] = true // origination removed
		}
	}
	for _, p := range newAll {
		if !oldSet[p] {
			affected[p] = true // new origination
		}
	}
	// Session changes (up or down) affect everything.
	if sessionFingerprint(iv.net) != sessionFingerprint(newNet) {
		broad = true
	}

	stats := Stats{PrefixesTotal: len(newAll), IntentsTotal: len(iv.Intents), Broad: broad}
	simOpts := iv.SimOpts
	simOpts.Ctx = ctx
	newOut := &bgp.Outcome{Net: newNet, ByPrefix: map[netip.Prefix]*bgp.PrefixOutcome{}}
	for _, p := range newAll {
		if broad || affected[p] {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
			po := bgp.SimulatePrefix(newNet, p, simOpts)
			if po.Canceled {
				return nil, stats, ctx.Err()
			}
			newOut.ByPrefix[p] = po
			stats.PrefixesSimulated++
			stats.Activations += po.Activations
		} else {
			newOut.ByPrefix[p] = iv.out.ByPrefix[p]
		}
	}

	// --- re-verify affected intents --------------------------------------
	editedLines := map[netcfg.LineRef]bool{}
	for _, es := range edits {
		for _, e := range es.Edits {
			switch ed := e.(type) {
			case netcfg.DeleteLine:
				editedLines[netcfg.LineRef{Device: es.Device, Line: ed.At}] = true
			case netcfg.ReplaceLine:
				editedLines[netcfg.LineRef{Device: es.Device, Line: ed.At}] = true
			}
		}
	}
	rep := &Report{Verdicts: make([]Verdict, len(iv.Intents))}
	for i, in := range iv.Intents {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		base := iv.report.Verdicts[i]
		if broad || iv.intentAffected(base, in, affected, editedLines) {
			rep.Verdicts[i] = checkIntent(newNet, newOut, in)
			stats.IntentsReverified++
		} else {
			rep.Verdicts[i] = base
		}
	}
	return rep, stats, nil
}

// checkImpactCtx verifies edits scoped by the static impact analysis:
//
//  1. diff the candidate's parsed ASTs against the base (semantic diff —
//     line-number-only shifts have no impact) to get the over-approximate
//     impact set: affected prefixes, origination literals, dataplane
//     devices, and whether sessions may change;
//  2. cross-check the prediction against the compiled candidate network
//     (session fingerprint, origination diff) — any construct the analysis
//     missed degrades the check to broad rather than going unsound;
//  3. decide per intent whether its cached verdict can be stale; when no
//     intent is triggered the candidate is *statically refuted*: the base
//     verdicts stand and zero prefixes are simulated;
//  4. otherwise simulate only the affected prefixes some triggered intent
//     actually consults (covering-prefix containment for flow intents,
//     exact-key lookup for global ones); untouched prefixes reuse the base
//     outcome, and prefixes nobody will read are skipped outright.
func (iv *Incremental) checkImpactCtx(ctx context.Context, edits []netcfg.EditSet) (*Report, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	newConfigs, err := iv.applyEdits(edits)
	if err != nil {
		return nil, Stats{}, err
	}
	newFiles := map[string]*netcfg.File{}
	for d, c := range newConfigs { //acrvet:ordered
		if c == iv.configs[d] {
			newFiles[d] = iv.files[d]
			continue
		}
		newFiles[d] = iv.parseFile(d, c)
	}
	im := iv.impact.Compare(newFiles)
	newNet := bgp.Compile(iv.Topo, newFiles)
	broad := im.Broad

	// The dirty set for delta re-simulation: exactly the devices whose
	// configuration text changed (re-parsed above). Collected in topology
	// order for determinism.
	var dirty []string
	for _, d := range iv.net.Order {
		if newFiles[d] != iv.files[d] {
			dirty = append(dirty, d)
		}
	}

	// Cross-check 1: the session set must not change unless predicted.
	fpChanged := sessionFingerprint(iv.net) != sessionFingerprint(newNet)
	if !broad && !im.SessionsMayChange && fpChanged {
		broad = true
	}
	// Deferred session-identity changes (peer stanza presence/remote-as,
	// interface shutdown) influence behavior only through which sessions
	// establish. The compile above already decided that: expand them to
	// full control scope when the session set changed; otherwise they were
	// behaviorally inert and contribute nothing — a wrong-value remote-as
	// guess on a down session refutes statically instead of re-simulating
	// the whole component.
	if fpChanged && len(im.SessionDevices) > 0 {
		iv.impact.ExpandSessions(im)
	}
	// Cross-check 2: every origination entering or leaving the universe
	// must have been predicted as a literal (or already-affected prefix).
	affected := make(map[netip.Prefix]bool, len(im.Prefixes))
	for p := range im.Prefixes { //acrvet:ordered
		affected[p] = true
	}
	newAll := newNet.AllPrefixes()
	newSet := map[netip.Prefix]bool{}
	for _, p := range newAll {
		newSet[p] = true
	}
	oldSet := map[netip.Prefix]bool{}
	for _, p := range iv.net.AllPrefixes() {
		oldSet[p] = true
		if !newSet[p] {
			affected[p] = true
			if !im.Prefixes[p] && !im.Literals[p] {
				broad = true
			}
		}
	}
	for _, p := range newAll {
		if !oldSet[p] {
			affected[p] = true
			if !im.Prefixes[p] && !im.Literals[p] {
				broad = true
			}
		}
	}

	stats := Stats{PrefixesTotal: len(newAll), IntentsTotal: len(iv.Intents), Broad: broad}

	editedLines := map[netcfg.LineRef]bool{}
	for _, es := range edits {
		for _, e := range es.Edits {
			switch ed := e.(type) {
			case netcfg.DeleteLine:
				editedLines[netcfg.LineRef{Device: es.Device, Line: ed.At}] = true
			case netcfg.ReplaceLine:
				editedLines[netcfg.LineRef{Device: es.Device, Line: ed.At}] = true
			}
		}
	}

	// localWatch marks intents that observe a leaf device whose local
	// control plane changed (im.LocalDevices): the change is invisible to
	// the rest of the network, but these intents read routing state *at*
	// the leaf, so every prefix they consult must be freshly simulated —
	// copying a base outcome would reuse the leaf's stale FIB.
	localWatch := make([]bool, len(iv.Intents))
	if !broad && len(im.LocalDevices) > 0 {
		for i, in := range iv.Intents {
			localWatch[i] = iv.observesLocalDevices(iv.report.Verdicts[i], in, im)
		}
	}

	// leafObs[i] lists the LocalPrefixes leaves intent i observes: only
	// those intents can see a leaf-local change, and only for the prefixes
	// held locally at an observed leaf.
	var leafObs []map[string]bool
	if !broad && len(im.LocalPrefixes) > 0 {
		leaves := make([]string, 0, len(im.LocalPrefixes))
		for d := range im.LocalPrefixes { //acrvet:ordered — collected then sorted below
			leaves = append(leaves, d)
		}
		sort.Strings(leaves)
		leafObs = make([]map[string]bool, len(iv.Intents))
		for i, in := range iv.Intents {
			for _, d := range leaves {
				if iv.observesDevice(iv.report.Verdicts[i], in, d) {
					if leafObs[i] == nil {
						leafObs[i] = map[string]bool{}
					}
					leafObs[i][d] = true
				}
			}
		}
	}
	localTriggers := func(i int, in Intent) bool {
		if leafObs == nil || leafObs[i] == nil {
			return false
		}
		for d := range leafObs[i] { //acrvet:ordered — any-match boolean
			for p := range im.LocalPrefixes[d] { //acrvet:ordered — any-match boolean
				if consultsPrefix(in, p) {
					return true
				}
			}
		}
		return false
	}

	reverify := make([]bool, len(iv.Intents))
	any := false
	for i, in := range iv.Intents {
		if broad || localWatch[i] || localTriggers(i, in) ||
			iv.impactTriggers(iv.report.Verdicts[i], in, im, affected, editedLines) {
			reverify[i] = true
			any = true
		}
	}
	if !any && !broad {
		// Statically refuted: the impact set is disjoint from every
		// intent's dependencies, so the candidate provably cannot change
		// any verdict. The base report stands, at zero simulations.
		stats.Refuted = true
		return &Report{Verdicts: append([]Verdict(nil), iv.report.Verdicts...)}, stats, nil
	}

	// simNeeded reports whether prefix p must be freshly simulated: some
	// triggered intent reads its outcome (flow intents read the longest
	// ByPrefix key covering their destination — any covering key is
	// potentially selected — global intents read their DstPrefix key
	// exactly), and either the prefix itself is affected or the reader
	// observes a changed leaf device, whose base outcome for p carries a
	// stale local FIB.
	simNeeded := func(p netip.Prefix) bool {
		for i, in := range iv.Intents {
			if !reverify[i] {
				continue
			}
			if consultsPrefix(in, p) && (affected[p] || localWatch[i]) {
				return true
			}
		}
		return false
	}
	// deriveLeaves returns the leaf routers to patch when prefix p changed
	// only as observed at leaves (im.LocalPrefixes) and some triggered
	// intent observing such a leaf reads p. Every leaf holding p locally is
	// patched — not just the observed ones — so the re-derived outcome
	// equals the full simulation's on every device and any read is safe.
	// Disabled when the session set changed: the leaf-locality argument is
	// made against the base session structure.
	deriveLeaves := func(p netip.Prefix) []string {
		if fpChanged || leafObs == nil {
			return nil
		}
		needed := false
		for i, in := range iv.Intents {
			if !reverify[i] || leafObs[i] == nil || !consultsPrefix(in, p) {
				continue
			}
			for d := range leafObs[i] { //acrvet:ordered — any-match boolean
				if im.LocalPrefixes[d][p] {
					needed = true
					break
				}
			}
			if needed {
				break
			}
		}
		if !needed {
			return nil
		}
		var leaves []string
		for d, ps := range im.LocalPrefixes { //acrvet:ordered — collected then sorted below
			if ps[p] {
				leaves = append(leaves, d)
			}
		}
		sort.Strings(leaves)
		return leaves
	}

	simOpts := iv.SimOpts
	simOpts.Ctx = ctx
	newOut := &bgp.Outcome{Net: newNet, ByPrefix: map[netip.Prefix]*bgp.PrefixOutcome{}}
	// Delta re-simulation seeds each needed prefix from the base outcome
	// and propagates only from the dirty devices. It requires an unchanged
	// session fingerprint: the seed state's adj-in structure must be the
	// candidate's session structure. Broad impact is fine — broad widens
	// which prefixes are simulated, not how each one is.
	useDelta := !iv.NoDelta && !fpChanged && len(dirty) > 0
	simulate := func(p netip.Prefix) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if useDelta {
			if po, ok := bgp.DeltaSimulatePrefix(newNet, iv.out.ByPrefix[p], dirty, p, simOpts); ok {
				if iv.DeltaDifferential {
					full := bgp.SimulatePrefix(newNet, p, simOpts)
					if full.Canceled {
						return ctx.Err()
					}
					if dev, dk, fk := deltaOutcomesDiverge(po, full, newNet.Order); dev != "" {
						return &DeltaDivergenceError{Prefix: p, Device: dev, Delta: dk, Full: fk}
					}
				}
				newOut.ByPrefix[p] = po
				stats.PrefixesDelta++
				stats.Activations += po.Activations
				return nil
			}
			stats.DeltaFallbacks++
		}
		po := bgp.SimulatePrefix(newNet, p, simOpts)
		if po.Canceled {
			return ctx.Err()
		}
		newOut.ByPrefix[p] = po
		stats.PrefixesSimulated++
		stats.Activations += po.Activations
		return nil
	}
	for _, p := range newAll {
		if broad || simNeeded(p) {
			if err := simulate(p); err != nil {
				return nil, stats, err
			}
			continue
		}
		if leaves := deriveLeaves(p); len(leaves) > 0 {
			// Leaf-local slice: re-derive just the leaves' entries of the
			// base outcome instead of simulating the whole prefix. The
			// result is exact; RederiveLeaves refuses (and we simulate)
			// when its preconditions fail.
			if po, ok := bgp.RederiveLeaves(newNet, iv.out.ByPrefix[p], p, leaves); ok {
				newOut.ByPrefix[p] = po
				stats.PrefixesDerived++
			} else if err := simulate(p); err != nil {
				return nil, stats, err
			}
			continue
		}
		if iv.out.ByPrefix[p] != nil {
			// Unaffected (or affected but unread this round): reuse the
			// base outcome so covering-prefix selection sees the same key
			// set a full simulation would produce.
			newOut.ByPrefix[p] = iv.out.ByPrefix[p]
		}
		// Else: new origination no triggered intent consults — skip. Only
		// triggered intents read newOut, and none selects this key.
	}

	rep := &Report{Verdicts: make([]Verdict, len(iv.Intents))}
	for i, in := range iv.Intents {
		if !reverify[i] {
			rep.Verdicts[i] = iv.report.Verdicts[i]
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		rep.Verdicts[i] = checkIntent(newNet, newOut, in)
		stats.IntentsReverified++
	}
	return rep, stats, nil
}

// impactTriggers decides whether an intent's cached verdict may be stale
// under the given impact set:
//
//   - an affected prefix, or a prefix entering/leaving the universe,
//     covers the intent's destination (control-plane trigger);
//   - a device whose forwarding decisions may change appears on the
//     intent's base traces — global intents keep only a capped sample of
//     failing traces, so any dataplane change re-triggers them;
//   - as a belt: an edit touches a line the base traces executed.
func (iv *Incremental) impactTriggers(base Verdict, in Intent, im *analysis.Impact, affected map[netip.Prefix]bool, edited map[netcfg.LineRef]bool) bool {
	pkt := in.Packet()
	for p := range affected { //acrvet:ordered
		if p.Contains(pkt.Dst) {
			return true
		}
	}
	if im.CoversAddr(pkt.Dst) {
		return true
	}
	if len(im.DataplaneDevices) > 0 {
		switch in.Kind {
		case LoopFree, BlackholeFree:
			return true
		default:
			for _, tr := range base.Traces {
				for dev := range im.DataplaneDevices { //acrvet:ordered
					if tr.Visits(dev) {
						return true
					}
				}
			}
		}
	}
	for _, l := range base.Lines() {
		if edited[l] {
			return true
		}
	}
	return false
}

// observesLocalDevices reports whether an intent reads routing state at
// any device in im.LocalDevices. Global intents always do (they trace from
// every router holding a route, leaves included). A flow intent observes a
// leaf when it is injected there or when its base traces visit it — and a
// trace that avoided the leaf in the base still avoids it after the edit,
// because every upstream forwarding decision steering toward the leaf
// depends only on state the leaf cannot influence (non-leaf FIBs for
// prefixes the leaf does not originate; leaf-originated prefixes are in
// the affected set and trigger through the ordinary prefix channel).
func (iv *Incremental) observesLocalDevices(base Verdict, in Intent, im *analysis.Impact) bool {
	for dev := range im.LocalDevices { //acrvet:ordered — any-match boolean
		if iv.observesDevice(base, in, dev) {
			return true
		}
	}
	return false
}

// observesDevice reports whether an intent reads routing state at dev:
// global intents always do (they trace from every router holding a
// route), a flow intent when it is injected there or its base traces
// visit it.
func (iv *Incremental) observesDevice(base Verdict, in Intent, dev string) bool {
	switch in.Kind {
	case LoopFree, BlackholeFree:
		return true
	}
	if from := dataplane.InjectionPoint(iv.Topo, in.Packet().Src); from == dev {
		return true
	}
	for _, tr := range base.Traces {
		if tr.Visits(dev) {
			return true
		}
	}
	return false
}

// consultsPrefix reports whether re-checking the intent reads prefix p's
// outcome: flow intents read any ByPrefix key covering their destination
// (the longest is selected, but any covering key is potentially it),
// global intents read their DstPrefix key exactly.
func consultsPrefix(in Intent, p netip.Prefix) bool {
	switch in.Kind {
	case LoopFree, BlackholeFree:
		return p == in.DstPrefix
	}
	return p.Contains(in.Packet().Dst)
}

// intentAffected decides whether a cached verdict may be stale.
func (iv *Incremental) intentAffected(base Verdict, in Intent, affected map[netip.Prefix]bool, edited map[netcfg.LineRef]bool) bool {
	pkt := in.Packet()
	for p := range affected { //acrvet:ordered
		if p.Contains(pkt.Dst) {
			return true
		}
	}
	for _, l := range base.Lines() {
		if edited[l] {
			return true
		}
	}
	// Intents that previously matched no prefix must be re-checked when
	// new prefixes appear covering them — handled above since new
	// originations are in `affected`.
	return false
}

// sessionFingerprint summarizes the established-session set.
func sessionFingerprint(n *bgp.Net) string {
	var sb strings.Builder
	for _, name := range n.Order {
		for _, s := range n.Routers[name].Sessions {
			fmt.Fprintf(&sb, "%s-%s;", name, s.PeerAddr)
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// FullCheck verifies the base with edits applied from scratch — no reuse.
// It exists for the incremental-vs-full ablation.
func (iv *Incremental) FullCheck(edits []netcfg.EditSet) (*Report, error) {
	return iv.FullCheckCtx(context.Background(), edits)
}

// FullCheckCtx is FullCheck with cooperative cancellation.
func (iv *Incremental) FullCheckCtx(ctx context.Context, edits []netcfg.EditSet) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	newConfigs, err := iv.applyEdits(edits)
	if err != nil {
		return nil, err
	}
	files := map[string]*netcfg.File{}
	for d, c := range newConfigs { //acrvet:ordered
		// The batch memo is safe here too: parsing is pure, so a full check
		// reusing a sibling's parse still recompiles and re-simulates from
		// scratch — which is the reuse FullCheck promises not to do.
		files[d] = iv.parseFile(d, c)
	}
	n := bgp.Compile(iv.Topo, files)
	simOpts := iv.SimOpts
	simOpts.Ctx = ctx
	out := bgp.Simulate(n, simOpts)
	if out.Canceled() {
		return nil, ctx.Err()
	}
	return Verify(n, out, iv.Intents), nil
}

// Commit applies edits to the base permanently, rebuilding the dependency
// index (full recomputation; commits happen once per accepted repair).
func (iv *Incremental) Commit(edits []netcfg.EditSet) error {
	newConfigs, err := iv.applyEdits(edits)
	if err != nil {
		return err
	}
	iv.rebase(newConfigs)
	return nil
}
