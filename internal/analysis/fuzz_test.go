package analysis_test

import (
	"testing"

	"acr/internal/analysis"
	"acr/internal/netcfg"
)

// FuzzAnalyze throws arbitrary configuration text at the full analyzer
// registry and checks the robustness contract the repair engine depends
// on: no analyzer panics on partial ASTs, and every diagnostic anchors at
// a real line of the input. Seeds mirror the FuzzParse corpus in
// internal/netcfg plus shapes that exercise each analyzer.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"",
		"\n\n\n",
		"# only a comment\n",
		"bgp 65001\n",
		"bgp 65001\n router-id 1.0.0.1\n peer 10.0.0.2 as-number 64601\n",
		"bgp not-a-number\n",
		"bgp 65001\n peer 10.0.0.999 as-number 1\n",
		"route-policy P permit node 10\n match ip-prefix pl\n apply local-preference 200\n",
		"route-policy P deny node nope\n",
		"ip prefix-list pl index 10 permit 10.0.0.0/8 le 24\n",
		"ip prefix-list pl index ten permit 10.0.0.0/8\n",
		"ip route static 10.0.0.0/8 next-hop 10.1.1.2\n",
		"pbr policy P\n if source 10.0.0.0/8 then next-hop 10.1.1.2\n",
		"interface eth0\n ip address 10.1.1.1/30\n",
		"interface eth0\n shutdown\n",
		"   leading indentation\n",
		"unknown keyword soup\n",
		"bgp 65001\n\tpeer 10.0.0.2 as-number 1\n", // tab, not space
		"bgp 65001\n  peer 10.0.0.2\n   orphan deep indent\n",
		"route-policy P permit node 10\nroute-policy P permit node 10\n",
		"bgp 1\nbgp 2\n",
		"peer 10.0.0.2 as-number 1\n", // body line at top level
		// Analyzer-specific shapes.
		"bgp 1\n peer 1.1.1.1 route-policy Nope import\n",
		"ip prefix-list pl index 10 permit 0.0.0.0/0 le 32\nip prefix-list pl index 20 permit 20.0.0.0/16\n",
		"bgp 1\n peer 1.1.1.1 as-number 2\n peer 1.1.1.1 route-policy M import\nroute-policy M deny node 10\n",
		"bgp 1\n peer 1.1.1.1 as-number 2\nip route static 9.0.0.0/8 null0\n",
		"pbr policy P\n rule 5 permit\n  match destination 10.0.0.0/8\n rule 10 permit\n  match destination 10.1.0.0/16\ninterface eth0\n pbr policy P\n",
		"pbr policy P\n rule 5 deny\ninterface eth0\n pbr policy P\n",
		"bgp 1\n peer 1.1.1.1 as-number 1\nroute-policy P permit node 10\n apply as-path overwrite 99\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c := netcfg.NewConfig("fuzz", text)
		configs := map[string]*netcfg.Config{"fuzz": c}
		res := analysis.Analyze(nil, configs, nil) // must not panic
		for _, d := range res.Diagnostics {
			if d.Line.Device != "fuzz" {
				t.Fatalf("diagnostic on unknown device %q: %s", d.Line.Device, d.String())
			}
			if d.Line.Line < 1 || d.Line.Line > c.NumLines() {
				t.Fatalf("diagnostic outside the input (%d lines): %s", c.NumLines(), d.String())
			}
			for _, rel := range d.Related {
				if rel.Device == "fuzz" && (rel.Line < 1 || rel.Line > c.NumLines()) {
					t.Fatalf("related ref outside the input: %s (from %s)", rel, d.String())
				}
			}
		}
		// The single-file wrapper must agree and not panic either.
		file, _ := netcfg.Parse(c)
		_ = analysis.Validate(file)
	})
}
