package analysis_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"acr/internal/analysis"
	"acr/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestLintJSONGolden pins the exact JSON `acr lint -json` derives from the
// Figure 2 case: the diagnostic ORDER is part of the contract (sorted by
// line, severity, analyzer, message), so any analyzer that starts emitting
// in map-iteration order shows up here as a diff instead of a flaky CI run.
func TestLintJSONGolden(t *testing.T) {
	s := scenario.Figure2()
	res := analysis.Analyze(s.Topo, s.Configs, nil)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "lint_figure2.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/analysis -run LintJSONGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("lint JSON drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestLintJSONDeterministic hammers the full registry over a case whose
// consensus analyzers walk maps (peer observations, group membership) and
// asserts byte-identical output across runs.
func TestLintJSONDeterministic(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	var first []byte
	for i := 0; i < 10; i++ {
		res := analysis.Analyze(s.Topo, s.Configs, nil)
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
			continue
		}
		if !bytes.Equal(b, first) {
			t.Fatalf("run %d produced different JSON:\n%s\nvs\n%s", i, b, first)
		}
	}
}
