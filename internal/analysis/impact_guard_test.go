package analysis_test

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"acr/internal/netcfg"
)

// TestImpactCoversASTSurface pins the full field inventory of the parsed
// configuration AST (everything reachable from netcfg.File). Two layers
// compute semantic diffs over exactly these fields: the impact analysis
// (internal/analysis/impact.go), whose diff prunes the candidate space,
// and the delta re-simulation seed (internal/verify, which derives the
// dirty device set a delta run re-activates from the edited configs). A
// field neither layer knows about is silently ignored, which makes the
// impact set and the dirty frontier too narrow — the unsound direction
// for both. Adding a field to the AST therefore must fail THIS test until
// someone (a) extends the impact diff to account for the new field, or
// convinces themselves the existing handling subsumes it, (b) confirms
// the delta path re-activates every router the field can influence (the
// dirty set is per-device, so per-device fields are covered; anything
// with cross-device reach needs explicit handling), and (c) adds the
// field to the inventory below. The differential corpus sweeps
// (TestImpactDifferentialCorpus, TestDeltaDifferentialCorpus) would
// eventually catch a missed field too, but only if the corpus happens to
// exercise it; this guard catches it at compile-adjacent time.
func TestImpactCoversASTSurface(t *testing.T) {
	known := []string{
		"ApplyClause.ASN",
		"ApplyClause.Count",
		"ApplyClause.Kind",
		"ApplyClause.Line",
		"ApplyClause.Value",
		"BGPBlock.ASN",
		"BGPBlock.End",
		"BGPBlock.Groups",
		"BGPBlock.Line",
		"BGPBlock.Networks",
		"BGPBlock.Peers",
		"BGPBlock.Redistribute",
		"BGPBlock.RouterID",
		"BGPBlock.RouterIDLine",
		"DropApply.Line",
		"File.BGP",
		"File.Device",
		"File.Interfaces",
		"File.PBRPolicies",
		"File.Policies",
		"File.PrefixLists",
		"File.Statics",
		"Interface.Addr",
		"Interface.AddrLine",
		"Interface.End",
		"Interface.Line",
		"Interface.Name",
		"Interface.PBRLine",
		"Interface.PBRPolicy",
		"Interface.ShutLine",
		"Interface.Shutdown",
		"MatchClause.Kind",
		"MatchClause.Line",
		"MatchClause.PrefixList",
		"NetworkStmt.Line",
		"NetworkStmt.Prefix",
		"NextHopApply.Line",
		"NextHopApply.NextHop",
		"PBRPolicy.End",
		"PBRPolicy.Line",
		"PBRPolicy.Name",
		"PBRPolicy.Rules",
		"PBRRule.ApplyDrop",
		"PBRRule.ApplyNextHop",
		"PBRRule.End",
		"PBRRule.Index",
		"PBRRule.Line",
		"PBRRule.MatchDest",
		"PBRRule.MatchDstPort",
		"PBRRule.MatchProto",
		"PBRRule.MatchSource",
		"PBRRule.Permit",
		"PeerGroup.External",
		"PeerGroup.Line",
		"PeerGroup.Name",
		"PeerGroup.Policies",
		"Peer.ASN",
		"Peer.ASNLine",
		"Peer.Addr",
		"Peer.Group",
		"Peer.GroupLine",
		"Peer.Policies",
		"PolicyAttach.Direction",
		"PolicyAttach.Line",
		"PolicyAttach.Policy",
		"PortMatch.Line",
		"PortMatch.Port",
		"PrefixList.GE",
		"PrefixList.Index",
		"PrefixList.LE",
		"PrefixList.Line",
		"PrefixList.Name",
		"PrefixList.Permit",
		"PrefixList.Prefix",
		"PrefixMatch.Line",
		"PrefixMatch.Prefix",
		"ProtoMatch.Line",
		"ProtoMatch.Proto",
		"RedistributeStmt.Line",
		"RedistributeStmt.Policy",
		"RoutePolicy.Applies",
		"RoutePolicy.End",
		"RoutePolicy.Line",
		"RoutePolicy.Matches",
		"RoutePolicy.Name",
		"RoutePolicy.Node",
		"RoutePolicy.Permit",
		"StaticRoute.Line",
		"StaticRoute.NextHop",
		"StaticRoute.Null0",
		"StaticRoute.Prefix",
	}
	got := astFields(reflect.TypeOf(netcfg.File{}))
	sort.Strings(got)
	sort.Strings(known)
	if !reflect.DeepEqual(got, known) {
		missing := diffSets(got, known)
		stale := diffSets(known, got)
		if len(missing) > 0 {
			t.Errorf("netcfg AST grew fields the impact analysis and delta re-simulation have never reviewed: %v\n"+
				"Extend the semantic diff in internal/analysis/impact.go to account for them "+
				"(or document why existing handling subsumes them), confirm the delta dirty-set "+
				"derivation in internal/verify re-activates every router the fields can influence, "+
				"then add them to this inventory.",
				missing)
		}
		if len(stale) > 0 {
			t.Errorf("inventory lists fields the AST no longer has: %v — remove them here", stale)
		}
	}
}

// astFields walks the exported struct fields reachable from root (through
// pointers, slices, and maps), confined to the netcfg package, and returns
// them as "Type.Field" strings.
func astFields(root reflect.Type) []string {
	seen := map[reflect.Type]bool{}
	var out []string
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
			walk(t.Elem())
			return
		case reflect.Struct:
		default:
			return
		}
		if !strings.HasSuffix(t.PkgPath(), "internal/netcfg") || seen[t] {
			return
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			out = append(out, t.Name()+"."+f.Name)
			walk(f.Type)
		}
	}
	walk(root)
	return out
}

// diffSets returns the elements of a that are not in b (both sorted or not).
func diffSets(a, b []string) []string {
	in := map[string]bool{}
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}
