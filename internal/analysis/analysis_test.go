package analysis_test

import (
	"strings"
	"testing"

	"acr/internal/analysis"
	"acr/internal/netcfg"
	"acr/internal/scenario"
)

func parse(t *testing.T, device, text string) *netcfg.File {
	t.Helper()
	f, err := netcfg.Parse(netcfg.NewConfig(device, text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

// Migrated from the former netcfg.File.Validate tests: dangling references
// of all three kinds are reported, with the offending name in the message.
func TestDanglingReferences(t *testing.T) {
	text := strings.Join([]string{
		"bgp 100",
		" peer 1.1.1.1 as-number 200",
		" peer 1.1.1.1 route-policy NoSuchPolicy import",
		"route-policy P permit node 10",
		" match ip-prefix NoSuchList",
		"interface eth0",
		" pbr policy NoSuchPBR",
	}, "\n")
	probs := analysis.Validate(parse(t, "X", text))
	for _, w := range []string{"NoSuchPolicy", "NoSuchList", "NoSuchPBR"} {
		found := false
		for _, p := range probs {
			if strings.Contains(p, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Validate missing problem mentioning %q; got %v", w, probs)
		}
	}
}

func TestCleanConfigNoFindings(t *testing.T) {
	text := strings.Join([]string{
		"bgp 65001",
		" router-id 1.0.0.1",
		" peer 10.0.0.2 as-number 65002",
		" peer 10.0.0.2 route-policy Import_All import",
		" network 10.1.0.0/16",
		"route-policy Import_All permit node 10",
		"ip prefix-list pl index 10 permit 10.1.0.0/16",
		"ip route static 10.1.0.0/16 null0",
	}, "\n")
	if probs := analysis.Validate(parse(t, "X", text)); len(probs) != 0 {
		t.Errorf("clean config flagged: %v", probs)
	}
}

func TestShadowedPrefixListEntry(t *testing.T) {
	text := strings.Join([]string{
		"ip prefix-list pl index 10 permit 0.0.0.0/0 le 32",
		"ip prefix-list pl index 20 permit 20.0.0.0/16",
		"route-policy P deny node 10",
		" match ip-prefix pl",
	}, "\n")
	res := analysis.AnalyzeFiles(nil, nil, map[string]*netcfg.File{"X": parse(t, "X", text)},
		[]*analysis.Analyzer{analysis.ShadowedPrefixList})
	if len(res.Diagnostics) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Line != (netcfg.LineRef{Device: "X", Line: 1}) {
		t.Errorf("anchored at %s, want X:1", d.Line)
	}
	if d.Class != analysis.ClassMissingPrefixListItem {
		t.Errorf("class %q", d.Class)
	}
	if len(d.Related) != 1 || d.Related[0].Line != 2 {
		t.Errorf("related = %v, want the shadowed entry X:2", d.Related)
	}
}

func TestDormantPolicyOnlyWhenAttached(t *testing.T) {
	// Unattached deny-all (deliberate dormant state) must stay quiet...
	dormant := strings.Join([]string{
		"bgp 100",
		" peer 1.1.1.1 as-number 200",
		"route-policy Maintenance deny node 10",
	}, "\n")
	if probs := analysis.Validate(parse(t, "X", dormant)); len(probs) != 0 {
		t.Errorf("unattached deny-all flagged: %v", probs)
	}
	// ...while the same policy attached to a session is the "fail to
	// dis-enable route map" incident.
	attached := strings.Join([]string{
		"bgp 100",
		" peer 1.1.1.1 as-number 200",
		" peer 1.1.1.1 route-policy Maintenance import",
		"route-policy Maintenance deny node 10",
	}, "\n")
	res := analysis.AnalyzeFiles(nil, nil, map[string]*netcfg.File{"X": parse(t, "X", attached)},
		[]*analysis.Analyzer{analysis.DormantPolicy})
	if len(res.Diagnostics) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", res.Diagnostics)
	}
	if d := res.Diagnostics[0]; d.Line.Line != 3 || d.Class != analysis.ClassLeftoverRouteMap {
		t.Errorf("got %s class %q, want line 3 class %q", d.Line, d.Class, analysis.ClassLeftoverRouteMap)
	}
}

func TestMissingRedistribution(t *testing.T) {
	text := strings.Join([]string{
		"bgp 100",
		" peer 1.1.1.1 as-number 200",
		" network 10.1.0.0/16",
		"ip route static 10.1.0.0/16 null0", // covered by the network stmt
		"ip route static 10.9.0.0/16 null0", // orphaned
	}, "\n")
	res := analysis.AnalyzeFiles(nil, nil, map[string]*netcfg.File{"X": parse(t, "X", text)},
		[]*analysis.Analyzer{analysis.MissingRedistribution})
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Line.Line != 5 {
		t.Fatalf("want exactly the orphaned static at X:5, got %v", res.Diagnostics)
	}
	// Adding `redistribute static` silences it.
	fixed := text + "\n"
	fixed = strings.Replace(fixed, " network 10.1.0.0/16", " network 10.1.0.0/16\n redistribute static", 1)
	res = analysis.AnalyzeFiles(nil, nil, map[string]*netcfg.File{"X": parse(t, "X", fixed)},
		[]*analysis.Analyzer{analysis.MissingRedistribution})
	if len(res.Diagnostics) != 0 {
		t.Errorf("redistribute static still flagged: %v", res.Diagnostics)
	}
}

func TestPBRShadowAndNoPermit(t *testing.T) {
	text := strings.Join([]string{
		"pbr policy Scrub",
		" rule 5 permit",
		"  match destination 10.2.0.0/16",
		"  apply next-hop 172.16.0.1",
		" rule 10 permit",
		"  match destination 10.2.0.0/16",
		"  match dst-port 9999",
		"  apply next-hop 172.16.0.1",
		"interface eth0",
		" pbr policy Scrub",
	}, "\n")
	res := analysis.AnalyzeFiles(nil, nil, map[string]*netcfg.File{"X": parse(t, "X", text)},
		[]*analysis.Analyzer{analysis.ShadowedPBRRule})
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Line.Line != 2 {
		t.Fatalf("want the broad rule 5 flagged at X:2, got %v", res.Diagnostics)
	}
	if res.Diagnostics[0].Class != analysis.ClassExtraPBRRedirect {
		t.Errorf("class %q", res.Diagnostics[0].Class)
	}

	empty := strings.Join([]string{
		"pbr policy Scrub",
		" rule 10 deny",
		"  match destination 10.2.0.0/16",
		"interface eth0",
		" pbr policy Scrub",
	}, "\n")
	res = analysis.AnalyzeFiles(nil, nil, map[string]*netcfg.File{"X": parse(t, "X", empty)},
		[]*analysis.Analyzer{analysis.UnfilteredPBRPolicy})
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Line.Line != 1 {
		t.Fatalf("want the permit-less bound policy flagged at X:1, got %v", res.Diagnostics)
	}
}

func TestASOverrideMismatch(t *testing.T) {
	text := strings.Join([]string{
		"bgp 65001",
		" peer 1.1.1.1 as-number 65002",
		"route-policy P permit node 10",
		" apply as-path overwrite 64999",
	}, "\n")
	res := analysis.AnalyzeFiles(nil, nil, map[string]*netcfg.File{"X": parse(t, "X", text)},
		[]*analysis.Analyzer{analysis.ASOverrideMismatch})
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Line.Line != 4 {
		t.Fatalf("want the foreign-AS overwrite at X:4, got %v", res.Diagnostics)
	}
	if res.Diagnostics[0].Severity != analysis.Warning {
		t.Errorf("severity %v, want warning", res.Diagnostics[0].Severity)
	}
}

// The Figure 2 incident: the shadowed default_all entries on A and C — and
// nothing else — must be flagged, with the paper's error class.
func TestFigure2Analysis(t *testing.T) {
	s := scenario.Figure2()
	res := analysis.Analyze(s.Topo, s.Configs, nil)
	if len(res.ParseErrors) != 0 {
		t.Fatalf("parse errors: %v", res.ParseErrors)
	}
	want := map[netcfg.LineRef]bool{}
	for _, l := range s.FaultyLines {
		want[l] = true
	}
	got := map[netcfg.LineRef]bool{}
	for _, d := range res.Diagnostics {
		got[d.Line] = true
		if !want[d.Line] {
			t.Errorf("false positive: %s", d.String())
		}
		if d.Class != analysis.ClassMissingPrefixListItem {
			t.Errorf("%s: class %q, want %q", d.Line, d.Class, analysis.ClassMissingPrefixListItem)
		}
	}
	for l := range want {
		if !got[l] {
			t.Errorf("ground-truth line %s not flagged", l)
		}
	}
}

// Zero false positives on every clean network the repo ships.
func TestCleanNetworksNoFindings(t *testing.T) {
	cases := []*scenario.Scenario{
		scenario.Figure2Correct(),
		scenario.WAN(6, 4, 3, scenario.GenOptions{StaticOriginEvery: 2}),
		scenario.WAN(6, 4, 3, scenario.GenOptions{}),
		scenario.DCN(4, scenario.GenOptions{WithScrubber: true, StaticOriginEvery: 2}),
		scenario.DCN(4, scenario.GenOptions{}),
	}
	for _, s := range cases {
		res := analysis.Analyze(s.Topo, s.Configs, nil)
		for _, d := range res.Diagnostics {
			t.Errorf("%s: false positive: %s", s.Name, d.String())
		}
	}
}

func TestAnalyzeSurvivesParseErrors(t *testing.T) {
	configs := map[string]*netcfg.Config{
		"broken": netcfg.NewConfig("broken", "bgp 100\nbogus line here\nroute-policy P deny node 10\n peer 1.1.1.1 route-policy Nope import\n"),
	}
	res := analysis.Analyze(nil, configs, nil)
	if len(res.ParseErrors) != 1 {
		t.Fatalf("want 1 parse error, got %v", res.ParseErrors)
	}
	// Analysis still ran over the statements that parsed.
	for _, d := range res.Diagnostics {
		if d.Line.Device != "broken" {
			t.Errorf("diagnostic on unknown device: %v", d)
		}
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []analysis.Severity{analysis.Info, analysis.Warning, analysis.Error} {
		got, err := analysis.ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := analysis.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) should fail")
	}
}

func TestResultFilterAndFormat(t *testing.T) {
	s := scenario.Figure2()
	res := analysis.Analyze(s.Topo, s.Configs, nil)
	if n := len(res.Filter(analysis.Error)); n != len(res.Diagnostics) {
		t.Errorf("all Figure 2 findings are errors; Filter(Error) kept %d of %d", n, len(res.Diagnostics))
	}
	if res.MaxSeverity() != analysis.Error {
		t.Errorf("MaxSeverity = %v", res.MaxSeverity())
	}
	out := res.Format(analysis.Info)
	if !strings.Contains(out, "shadowed-prefix-list") || !strings.Contains(out, "finding(s)") {
		t.Errorf("Format output unexpected:\n%s", out)
	}
	if len(res.ByLine()) != len(res.Diagnostics) {
		t.Errorf("ByLine lost lines")
	}
}

func TestRegistryNamesUniqueAndClassed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.Analyzers() {
		if a.Name == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 8 {
		t.Errorf("only %d analyzers registered", len(seen))
	}
}
