// Package analysis is a go/analysis-style static-analysis framework over
// parsed network configurations: pluggable Analyzers inspect per-device
// ASTs (and, when a topology is available, a network-wide view) and report
// Diagnostics anchored at configuration lines.
//
// Every one of Table 1's misconfiguration classes has a static signature —
// dangling route-policy references, shadowed prefix-list entries,
// asymmetric peer groups — so a pass over the text flags suspect lines
// before any simulation runs. The repair engine folds these diagnostics
// into localization as a prior (see internal/core and internal/sbfl), and
// `acr lint` exposes them directly.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/topo"
)

// Severity grades a diagnostic: Error marks a definite misconfiguration,
// Warning a strong cross-device consensus violation, Info a hygiene note.
type Severity uint8

// Severities, in ascending order.
const (
	Info Severity = iota + 1
	Warning
	Error
)

// String renders the severity keyword.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalJSON renders the severity as its keyword.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ParseSeverity parses a severity keyword.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return Info, nil
	case "warning", "warn":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warning, or error)", s)
}

// Diagnostic is one finding: a line, the analyzer that produced it, the
// Table 1 error class it indicates (when one applies), and related lines
// (e.g. the entry a shadowing entry hides).
type Diagnostic struct {
	Line     netcfg.LineRef   `json:"line"`
	Analyzer string           `json:"analyzer"`
	Class    errclass.Class   `json:"class,omitempty"`
	Severity Severity         `json:"severity"`
	Message  string           `json:"message"`
	Related  []netcfg.LineRef `json:"related,omitempty"`
}

// String renders the diagnostic in compiler style.
func (d *Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Line, d.Severity, d.Message, d.Analyzer)
}

// Analyzer is one static check. Run inspects the Pass and reports
// diagnostics through it.
type Analyzer struct {
	// Name identifies the analyzer (kebab-case, unique).
	Name string
	// Doc is a one-line description.
	Doc string
	// Class is the Table 1 misconfiguration class this analyzer's
	// diagnostics indicate (empty for generic hygiene checks). The shared
	// errclass constants guarantee it matches Template.ErrorClass in
	// internal/core.
	Class errclass.Class
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass carries one analysis run's inputs to an Analyzer: per-device parsed
// files plus the network-wide view. Cross-device analyzers must tolerate a
// nil Topo (single-device validation has none).
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Topo is the network topology, nil for single-device analysis.
	Topo *topo.Network
	// Configs holds raw configurations by device (may be nil).
	Configs map[string]*netcfg.Config
	// Files holds the parsed ASTs by device. Files may be partial when the
	// source had parse errors; analyzers must tolerate missing blocks.
	Files map[string]*netcfg.File

	devices []string
	diags   *[]Diagnostic
}

// Devices returns the device names in sorted order, for deterministic
// iteration.
func (p *Pass) Devices() []string { return p.devices }

// File returns the parsed file of a device (nil when unknown).
func (p *Pass) File(device string) *netcfg.File { return p.Files[device] }

// NodeKind returns the topology kind of a device, or false when no
// topology is attached or the device is not a node.
func (p *Pass) NodeKind(device string) (topo.Kind, bool) {
	if p.Topo == nil {
		return 0, false
	}
	nd := p.Topo.Node(device)
	if nd == nil {
		return 0, false
	}
	return nd.Kind, true
}

// PeerNodeOf resolves a configured BGP peer address on a device to the
// adjacent node's name via the topology ("" when unresolvable).
func (p *Pass) PeerNodeOf(device string, peer *netcfg.Peer) string {
	if p.Topo == nil || peer == nil {
		return ""
	}
	for _, adj := range p.Topo.Adjacencies(device) {
		if adj.PeerAddr == peer.Addr {
			return adj.PeerNode
		}
	}
	return ""
}

// Report records a diagnostic, filling in the analyzer name, its default
// class, and a default Error severity.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	if d.Class == "" {
		d.Class = p.Analyzer.Class
	}
	if d.Severity == 0 {
		d.Severity = Error
	}
	*p.diags = append(*p.diags, d)
}

// Reportf records an Error-severity diagnostic with a formatted message.
func (p *Pass) Reportf(line netcfg.LineRef, format string, args ...any) {
	p.Report(Diagnostic{Line: line, Message: fmt.Sprintf(format, args...)})
}

// Result is one analysis run's outcome.
type Result struct {
	// Diagnostics is sorted by line, then severity (descending), then
	// analyzer name.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// ParseErrors maps devices whose configuration failed to parse to the
	// error; analysis still ran over the statements that parsed.
	ParseErrors map[string]string `json:"parseErrors,omitempty"`
	// PerAnalyzer counts diagnostics per analyzer name.
	PerAnalyzer map[string]int `json:"perAnalyzer,omitempty"`
}

// Filter returns the diagnostics at or above a minimum severity.
func (r *Result) Filter(min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// MaxSeverity returns the highest severity present (0 when clean).
func (r *Result) MaxSeverity() Severity {
	var max Severity
	for _, d := range r.Diagnostics {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// ByLine indexes the diagnostics by line.
func (r *Result) ByLine() map[netcfg.LineRef][]Diagnostic {
	out := map[netcfg.LineRef][]Diagnostic{}
	for _, d := range r.Diagnostics {
		out[d.Line] = append(out[d.Line], d)
	}
	return out
}

// Format renders the diagnostics at or above min severity in compiler
// style, one per line, followed by a summary line.
func (r *Result) Format(min Severity) string {
	var sb strings.Builder
	shown := r.Filter(min)
	counts := map[Severity]int{}
	for i := range shown {
		d := &shown[i]
		counts[d.Severity]++
		sb.WriteString(d.String())
		sb.WriteByte('\n')
		for _, rel := range d.Related {
			fmt.Fprintf(&sb, "    related: %s\n", rel)
		}
	}
	if len(shown) == 0 {
		sb.WriteString("no findings\n")
	} else {
		fmt.Fprintf(&sb, "%d finding(s): %d error, %d warning, %d info\n",
			len(shown), counts[Error], counts[Warning], counts[Info])
	}
	for _, dev := range sortedKeys(r.ParseErrors) {
		fmt.Fprintf(&sb, "parse error: %s: %s\n", dev, r.ParseErrors[dev])
	}
	return sb.String()
}

// Analyzers returns the full registry, in execution order.
func Analyzers() []*Analyzer {
	return append([]*Analyzer(nil), registry...)
}

// registry lists every analyzer; single-device checks first, then the
// cross-device consensus checks (which no-op without a topology).
var registry = []*Analyzer{
	DanglingPolicyRef,
	DanglingPrefixList,
	DanglingPBRBinding,
	DuplicatePeer,
	ShadowedPrefixList,
	DormantPolicy,
	MissingRedistribution,
	ShadowedPBRRule,
	UnfilteredPBRPolicy,
	ASOverrideMismatch,
	SessionASNMismatch,
	MissingPeerGroup,
	ExtraGroupItem,
	PrefixListConsistency,
}

// Analyze parses every configuration and runs the given analyzers (nil for
// the full registry) over the network. Parse failures are reported in the
// result and do not stop analysis: partial ASTs are analyzed as far as
// they go.
func Analyze(t *topo.Network, configs map[string]*netcfg.Config, analyzers []*Analyzer) *Result {
	files := make(map[string]*netcfg.File, len(configs))
	parseErrs := map[string]string{}
	for d, c := range configs { //acrvet:ordered
		f, err := netcfg.Parse(c)
		if err != nil {
			parseErrs[d] = err.Error()
		}
		files[d] = f
	}
	res := AnalyzeFiles(t, configs, files, analyzers)
	if len(parseErrs) > 0 {
		res.ParseErrors = parseErrs
	}
	return res
}

// AnalyzeFiles runs the given analyzers (nil for the full registry) over
// already-parsed files. Configs may be nil; it is only used to bound line
// references in reports.
func AnalyzeFiles(t *topo.Network, configs map[string]*netcfg.Config, files map[string]*netcfg.File, analyzers []*Analyzer) *Result {
	if analyzers == nil {
		analyzers = registry
	}
	devices := make([]string, 0, len(files))
	for d := range files {
		devices = append(devices, d)
	}
	sort.Strings(devices)

	var diags []Diagnostic
	perAnalyzer := map[string]int{}
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Topo: t, Configs: configs, Files: files, devices: devices, diags: &diags}
		before := len(diags)
		a.Run(pass)
		if n := len(diags) - before; n > 0 {
			perAnalyzer[a.Name] += n
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line.Less(diags[j].Line)
		}
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity > diags[j].Severity
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		// Message is the final tiebreaker: without it, two same-line
		// diagnostics from one analyzer keep their emission order, and any
		// analyzer that walks a map emits in random order — `acr lint -json`
		// output must be byte-stable run to run.
		return diags[i].Message < diags[j].Message
	})
	res := &Result{Diagnostics: diags}
	if len(perAnalyzer) > 0 {
		res.PerAnalyzer = perAnalyzer
	}
	return res
}

// Validate runs the single-device subset of the registry over one parsed
// file and renders the findings as strings — the successor of the former
// netcfg.File.Validate, kept as a convenience for callers that check one
// configuration in isolation (no topology, so cross-device consensus
// checks do not apply).
func Validate(f *netcfg.File) []string {
	if f == nil {
		return nil
	}
	res := AnalyzeFiles(nil, nil, map[string]*netcfg.File{f.Device: f}, nil)
	var out []string
	for i := range res.Diagnostics {
		out = append(out, res.Diagnostics[i].String())
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
