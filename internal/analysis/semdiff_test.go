package analysis_test

import (
	"reflect"
	"strings"
	"testing"

	"acr/internal/analysis"
	"acr/internal/netcfg"
)

func parseSet(t *testing.T, texts map[string]string) map[string]*netcfg.File {
	t.Helper()
	out := map[string]*netcfg.File{}
	for dev, text := range texts {
		out[dev] = parse(t, dev, text)
	}
	return out
}

// TestSemanticDiffFactKinds: one before/after pair exercising most of the
// fact vocabulary — the diff the template miner learns from must name every
// construct change precisely.
func TestSemanticDiffFactKinds(t *testing.T) {
	before := strings.Join([]string{
		"bgp 65001",
		" router-id 1.0.0.1",
		" redistribute static route-policy Export",
		" peer 10.0.0.2 as-number 65002",
		" peer 10.0.0.3 as-number 65003",
		" peer 10.0.0.3 group EDGE",
		" peer-group EDGE route-policy NoLeak export",
		" network 10.1.0.0/16",
		"route-policy NoLeak permit node 10",
		"route-policy Export permit node 10",
		"ip prefix-list pl index 10 permit 10.1.0.0/16",
		"ip prefix-list pl index 20 permit 10.2.0.0/16",
		"ip route static 10.1.0.0/16 null0",
		"ip route static 10.9.0.0/16 null0",
	}, "\n")
	after := strings.Join([]string{
		"bgp 65001",
		" router-id 1.0.0.1",
		" peer 10.0.0.2 as-number 65099",
		" peer 10.0.0.3 as-number 65003",
		" peer 10.0.0.3 group EDGE",
		" peer 10.0.0.4 as-number 65004",
		" network 10.1.0.0/16",
		"route-policy NoLeak permit node 10",
		"ip prefix-list pl index 10 permit 10.1.0.0/16",
		"ip route static 10.1.0.0/16 null0",
	}, "\n")

	facts := analysis.SemanticDiff(
		parseSet(t, map[string]string{"X": before}),
		parseSet(t, map[string]string{"X": after}),
	)
	got := map[analysis.FactKind]int{}
	for _, f := range facts {
		if f.Device != "X" {
			t.Errorf("fact on unexpected device: %v", f)
		}
		got[f.Kind]++
	}
	want := map[analysis.FactKind]int{
		analysis.FactRedistributeRemoved: 1,
		analysis.FactPeerASNChanged:      1,
		analysis.FactPeerAdded:           1,
		analysis.FactGroupPolicyDetached: 1,
		analysis.FactPolicyRemoved:       1,
		analysis.FactListEntryRemoved:    1,
		analysis.FactStaticRemoved:       1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fact kinds = %v, want %v\nfacts: %v", got, want, facts)
	}
	for _, f := range facts {
		switch f.Kind {
		case analysis.FactPeerASNChanged:
			if f.OldASN != 65002 || f.NewASN != 65099 || f.Addr.String() != "10.0.0.2" {
				t.Errorf("asn-changed fact malformed: %+v", f)
			}
		case analysis.FactGroupPolicyDetached:
			if f.Name != "EDGE" || f.Direction != "export" || !strings.Contains(f.Detail, "NoLeak") {
				t.Errorf("detach fact malformed: %+v", f)
			}
		case analysis.FactStaticRemoved:
			if f.Prefix.String() != "10.9.0.0/16" {
				t.Errorf("static fact malformed: %+v", f)
			}
		case analysis.FactRedistributeRemoved:
			if f.Name != "Export" {
				t.Errorf("redistribute fact should carry its policy: %+v", f)
			}
		}
	}
}

// TestSemanticDiffIgnoresLayout: reordering top-level constructs moves
// every line number but changes nothing semantic — zero facts.
func TestSemanticDiffIgnoresLayout(t *testing.T) {
	a := strings.Join([]string{
		"ip route static 10.1.0.0/16 null0",
		"ip route static 10.9.0.0/16 null0",
		"route-policy P permit node 10",
		"bgp 65001",
		" peer 10.0.0.2 as-number 65002",
		" redistribute static",
	}, "\n")
	b := strings.Join([]string{
		"route-policy P permit node 10",
		"bgp 65001",
		" redistribute static",
		" peer 10.0.0.2 as-number 65002",
		"ip route static 10.9.0.0/16 null0",
		"ip route static 10.1.0.0/16 null0",
	}, "\n")
	facts := analysis.SemanticDiff(
		parseSet(t, map[string]string{"X": a}),
		parseSet(t, map[string]string{"X": b}),
	)
	if len(facts) != 0 {
		t.Errorf("layout-only change produced facts: %v", facts)
	}
}

// TestSemanticDiffDeviceScope: a device present on only one side reports
// its constructs as whole-file facts, and multi-device output is sorted by
// device then kind then detail — the determinism the miner's pattern
// grouping depends on.
func TestSemanticDiffDeviceScope(t *testing.T) {
	before := parseSet(t, map[string]string{
		"B": "bgp 65002\n peer 10.0.0.1 as-number 65001",
	})
	after := parseSet(t, map[string]string{
		"A": "ip route static 10.1.0.0/16 null0",
		"B": "bgp 65002\n peer 10.0.0.1 as-number 65001",
	})
	facts := analysis.SemanticDiff(before, after)
	if len(facts) != 1 || facts[0].Device != "A" || facts[0].Kind != analysis.FactStaticAdded {
		t.Fatalf("facts = %v", facts)
	}
	again := analysis.SemanticDiff(before, after)
	if !reflect.DeepEqual(facts, again) {
		t.Error("SemanticDiff is not deterministic")
	}
}
