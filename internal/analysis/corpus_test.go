package analysis_test

import (
	"testing"

	"acr/internal/analysis"
	"acr/internal/incidents"
	"acr/internal/netcfg"
)

// TestCorpusIncidentsLocalized is the analyzer-precision regression net:
// for every incident in the synthetic corpus, static analysis alone must
// flag the injected misconfiguration — right Table 1 class, right
// device:line — before any simulation runs.
func TestCorpusIncidentsLocalized(t *testing.T) {
	incs, err := incidents.GenerateCorpus(incidents.CorpusOptions{Size: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perClass := map[string]int{}
	for _, inc := range incs {
		s := inc.Scenario
		res := analysis.Analyze(s.Topo, s.Configs, nil)
		if len(res.ParseErrors) != 0 {
			t.Errorf("%s: parse errors: %v", inc.ID, res.ParseErrors)
			continue
		}
		truth := map[netcfg.LineRef]bool{}
		for _, l := range s.FaultyLines {
			truth[l] = true
		}
		found := false
		for _, d := range res.Diagnostics {
			if d.Class == incidents.Info(inc.Class).Name && truth[d.Line] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s (%s): no diagnostic of the injected class at a ground-truth line\n  truth: %v\n  diags: %v",
				inc.ID, inc.Class, s.FaultyLines, res.Diagnostics)
			continue
		}
		perClass[inc.Class.String()]++
	}
	// Every Table 1 class the corpus exercises must be represented.
	for _, ci := range incidents.Table1 {
		if perClass[string(ci.Name)] == 0 {
			t.Errorf("class %q: no incident verified (corpus gap or analyzer miss)", ci.Name)
		}
	}
}
