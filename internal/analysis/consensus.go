package analysis

import (
	"sort"

	"acr/internal/netcfg"
	"acr/internal/topo"
)

// The analyzers in this file compare a device's configuration against its
// peers' — session symmetry and "devices in the same role configure the
// same thing" consensus. All of them no-op without a topology: with one
// device there is no consensus to check against.

// SessionASNMismatch flags a `peer <ip> as-number <asn>` whose ASN differs
// from the AS the adjacent device actually runs: the session will never
// establish. This is the direct signature of the "override to wrong AS
// number" incidents.
var SessionASNMismatch = &Analyzer{
	Name:  "session-asn-mismatch",
	Doc:   "a peer statement names an AS the adjacent device does not run",
	Class: ClassWrongASNumber,
	Run: func(p *Pass) {
		if p.Topo == nil {
			return
		}
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil || f.BGP == nil {
				continue
			}
			for _, pe := range f.BGP.Peers {
				other := p.PeerNodeOf(dev, pe)
				if other == "" || pe.ASN == 0 || pe.ASNLine <= 0 {
					continue
				}
				of := p.File(other)
				if of == nil || of.BGP == nil || of.BGP.ASN == 0 {
					continue
				}
				if pe.ASN != of.BGP.ASN {
					p.Report(Diagnostic{
						Line: netcfg.LineRef{Device: dev, Line: pe.ASNLine},
						Message: sprintf("peer %s is configured as AS %d, but %s runs AS %d: the session cannot establish",
							pe.Addr, pe.ASN, other, of.BGP.ASN),
						Related: []netcfg.LineRef{{Device: other, Line: of.BGP.Line}},
					})
				}
			}
		}
	},
}

// peerObservation is one (device, peer) edge annotated with both ends'
// topology kinds and the peer's grouping state.
type peerObservation struct {
	device  string
	peer    *netcfg.Peer
	grouped bool
}

// edgeKinds keys observations by the (local kind, remote kind) pair so
// consensus is computed among like-for-like sessions only.
type edgeKinds struct{ local, remote topo.Kind }

// collectPeerObservations gathers every resolvable BGP peer edge, bucketed
// by kind pair.
func collectPeerObservations(p *Pass) map[edgeKinds][]peerObservation {
	out := map[edgeKinds][]peerObservation{}
	for _, dev := range p.Devices() {
		f := p.File(dev)
		lk, ok := p.NodeKind(dev)
		if f == nil || f.BGP == nil || !ok {
			continue
		}
		for _, pe := range f.BGP.Peers {
			other := p.PeerNodeOf(dev, pe)
			if other == "" {
				continue
			}
			rk, ok := p.NodeKind(other)
			if !ok {
				continue
			}
			k := edgeKinds{local: lk, remote: rk}
			out[k] = append(out[k], peerObservation{device: dev, peer: pe, grouped: pe.Group != ""})
		}
	}
	return out
}

// MissingPeerGroup flags an ungrouped peer whose like-for-like sessions
// elsewhere in the network are all grouped. The quorum is strict — at
// least two grouped sessions on OTHER devices and zero ungrouped ones —
// because many designs legitimately leave a session class ungrouped
// (e.g. backbone-to-backbone), and those classes then carry ungrouped
// witnesses that veto the finding.
var MissingPeerGroup = &Analyzer{
	Name:  "missing-peer-group",
	Doc:   "an ungrouped peer where all comparable sessions use a peer group",
	Class: ClassMissingPeerGroup,
	Run: func(p *Pass) {
		if p.Topo == nil {
			return
		}
		byKinds := collectPeerObservations(p)
		keys := make([]edgeKinds, 0, len(byKinds))
		for k := range byKinds {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].local != keys[j].local {
				return keys[i].local < keys[j].local
			}
			return keys[i].remote < keys[j].remote
		})
		for _, k := range keys {
			obs := byKinds[k]
			for _, o := range obs {
				if o.grouped || o.peer.ASNLine <= 0 {
					continue
				}
				groupedOthers, ungroupedOthers := 0, 0
				for _, w := range obs {
					if w.device == o.device {
						continue
					}
					if w.grouped {
						groupedOthers++
					} else {
						ungroupedOthers++
					}
				}
				if groupedOthers >= 2 && ungroupedOthers == 0 {
					p.Report(Diagnostic{
						Line:     netcfg.LineRef{Device: o.device, Line: o.peer.ASNLine},
						Severity: Warning,
						Message: sprintf("peer %s is not in a peer group, but all %d comparable sessions on other devices are",
							o.peer.Addr, groupedOthers),
					})
				}
			}
		}
	},
}

// ExtraGroupItem flags a peer placed into a group whose other members
// (network-wide, by group name) face a different kind of neighbor. Quorum:
// the dominant neighbor kind must hold at least three members and at
// least 75% of the group before minority members are flagged, so small
// legitimately-mixed groups stay quiet.
var ExtraGroupItem = &Analyzer{
	Name:  "extra-group-item",
	Doc:   "a peer group member faces a different neighbor kind than the rest of the group",
	Class: ClassExtraPeerGroupItem,
	Run: func(p *Pass) {
		if p.Topo == nil {
			return
		}
		type member struct {
			device string
			peer   *netcfg.Peer
			kind   topo.Kind
		}
		byGroup := map[string][]member{}
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil || f.BGP == nil {
				continue
			}
			for _, pe := range f.BGP.Peers {
				if pe.Group == "" {
					continue
				}
				other := p.PeerNodeOf(dev, pe)
				if other == "" {
					continue
				}
				rk, ok := p.NodeKind(other)
				if !ok {
					continue
				}
				byGroup[pe.Group] = append(byGroup[pe.Group], member{device: dev, peer: pe, kind: rk})
			}
		}
		names := make([]string, 0, len(byGroup))
		for g := range byGroup {
			names = append(names, g)
		}
		sort.Strings(names)
		for _, g := range names {
			members := byGroup[g]
			counts := map[topo.Kind]int{}
			for _, m := range members {
				counts[m.kind]++
			}
			var domKind topo.Kind
			dom := 0
			// Ties break toward the smaller Kind so the dominant kind — and
			// therefore which members get flagged — never depends on map
			// iteration order.
			for k, c := range counts { //acrvet:ordered
				if c > dom || (c == dom && k < domKind) {
					domKind, dom = k, c
				}
			}
			if dom < 3 || dom*4 < len(members)*3 {
				continue
			}
			for _, m := range members {
				if m.kind != domKind && m.peer.GroupLine > 0 {
					p.Report(Diagnostic{
						Line:     netcfg.LineRef{Device: m.device, Line: m.peer.GroupLine},
						Severity: Warning,
						Message: sprintf("peer %s joins group %q, but %d of %d members of that group face %s neighbors and this one faces a %s",
							m.peer.Addr, g, dom, len(members), domKind, m.kind),
					})
				}
			}
		}
	},
}

// PrefixListConsistency flags a prefix-list that is missing an entry its
// same-kind siblings agree on: when the same-named list appears on at
// least three devices of one kind and an entry shape (action, prefix,
// ge/le) is present on at least two others covering at least 75% of them,
// a device without it is flagged. The finding anchors at the attach sites
// of the policies that match the list — the lines whose behavior the
// missing entry changes — falling back to the list's first entry.
var PrefixListConsistency = &Analyzer{
	Name:  "prefix-list-consistency",
	Doc:   "a prefix-list lacks an entry its same-kind siblings agree on",
	Class: ClassMissingPrefixListItem,
	Run: func(p *Pass) {
		if p.Topo == nil {
			return
		}
		// holders[kind][list name] = devices of that kind defining the list.
		holders := map[topo.Kind]map[string][]string{}
		for _, dev := range p.Devices() {
			f := p.File(dev)
			k, ok := p.NodeKind(dev)
			if f == nil || !ok {
				continue
			}
			for name := range f.PrefixListNames() {
				if holders[k] == nil {
					holders[k] = map[string][]string{}
				}
				holders[k][name] = append(holders[k][name], dev)
			}
		}
		kinds := make([]topo.Kind, 0, len(holders))
		for k := range holders {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			names := make([]string, 0, len(holders[k]))
			for n := range holders[k] {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, name := range names {
				devs := holders[k][name]
				if len(devs) < 3 {
					continue
				}
				shapes := map[string]map[string][]string{} // shape key -> dev set (sorted later)
				for _, dev := range devs {
					for _, e := range p.File(dev).PrefixListEntries(name) {
						key := entryKey(e)
						if shapes[key] == nil {
							shapes[key] = map[string][]string{}
						}
						shapes[key][dev] = nil
					}
				}
				for _, dev := range devs {
					var missing []string
					for key, on := range shapes {
						if _, ok := on[dev]; ok {
							continue
						}
						others := len(on)
						if others >= 2 && others*4 >= (len(devs)-1)*3 {
							missing = append(missing, key)
						}
					}
					if len(missing) == 0 {
						continue
					}
					sort.Strings(missing)
					f := p.File(dev)
					for _, line := range listAnchorLines(f, name) {
						p.Report(Diagnostic{
							Line:     netcfg.LineRef{Device: dev, Line: line},
							Severity: Warning,
							Message: sprintf("prefix-list %q is missing %d entr%s its peer %s devices agree on (e.g. %s)",
								name, len(missing), plural(len(missing), "y", "ies"), k, missing[0]),
						})
					}
				}
			}
		}
	},
}

// entryKey is the content identity of a prefix-list entry: action, masked
// prefix, and bounds — the Index is layout, not meaning.
func entryKey(e *netcfg.PrefixList) string {
	action := "deny"
	if e.Permit {
		action = "permit"
	}
	return sprintf("%s %s ge=%d le=%d", action, e.Prefix.Masked(), e.GE, e.LE)
}

// listAnchorLines returns where a finding about the named list should
// anchor on device f: the attach sites of every policy that matches the
// list, else the list's first entry line.
func listAnchorLines(f *netcfg.File, name string) []int {
	matching := map[string]bool{}
	for _, pol := range f.Policies {
		for _, m := range pol.Matches {
			if m.Kind == netcfg.MatchIPPrefix && m.PrefixList == name {
				matching[pol.Name] = true
			}
		}
	}
	var lines []int
	for _, site := range f.PolicyAttachSites() {
		if matching[site.Policy] && site.Line > 0 {
			lines = append(lines, site.Line)
		}
	}
	if len(lines) == 0 {
		if entries := f.PrefixListEntries(name); len(entries) > 0 && entries[0].Line > 0 {
			lines = append(lines, entries[0].Line)
		}
	}
	sort.Ints(lines)
	return lines
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
