package analysis

import (
	"fmt"
	"net/netip"
	"sort"

	"acr/internal/netcfg"
)

// This file implements the historical-diff face of the semantic AST diff:
// where impact.go interprets a diff forward (what can this edit influence?),
// SemanticDiff reports the diff itself as a stream of typed facts — "this
// device gained a redistribute statement", "this peer's remote AS changed
// from 64520 to 63000". The template miner (internal/tmplreg/mine)
// consumes these facts from before/after pairs of historical repairs and
// generalizes recurring fact shapes into parameterized change templates.
// Both passes share the semantic accessors at the bottom of impact.go, so
// the two views of "what changed" can never drift apart.

// FactKind classifies one semantic difference between two configuration
// versions of a device.
type FactKind string

// The fact vocabulary. Each kind names the construct that appeared,
// vanished, or changed — line numbers and formatting are invisible here.
const (
	FactRedistributeAdded   FactKind = "redistribute-added"
	FactRedistributeRemoved FactKind = "redistribute-removed"
	FactStaticAdded         FactKind = "static-added"
	FactStaticRemoved       FactKind = "static-removed"
	FactNetworkAdded        FactKind = "network-added"
	FactNetworkRemoved      FactKind = "network-removed"
	FactPeerAdded           FactKind = "peer-added"
	FactPeerRemoved         FactKind = "peer-removed"
	FactPeerASNChanged      FactKind = "peer-asn-changed"
	FactMembershipChanged   FactKind = "group-membership-changed"
	FactGroupPolicyAttached FactKind = "group-policy-attached"
	FactGroupPolicyDetached FactKind = "group-policy-detached"
	FactPolicyDefined       FactKind = "policy-defined"
	FactPolicyRemoved       FactKind = "policy-removed"
	FactPolicyNodeChanged   FactKind = "policy-node-changed"
	FactListEntryAdded      FactKind = "prefix-list-entry-added"
	FactListEntryRemoved    FactKind = "prefix-list-entry-removed"
	FactPBRChanged          FactKind = "pbr-changed"
)

// Fact is one semantic difference, with the identifying construct fields
// its kind uses (the rest stay zero).
type Fact struct {
	Kind   FactKind `json:"kind"`
	Device string   `json:"device"`
	// Name identifies the construct: policy, group, or prefix-list name.
	Name string `json:"name,omitempty"`
	// Prefix carries origination/static/list-entry prefixes.
	Prefix netip.Prefix `json:"prefix,omitempty"`
	// Addr carries the peer address for session facts.
	Addr netip.Addr `json:"addr,omitempty"`
	// OldASN/NewASN carry the AS change for peer-asn-changed.
	OldASN uint32 `json:"oldASN,omitempty"`
	NewASN uint32 `json:"newASN,omitempty"`
	// Direction qualifies policy attach/detach facts.
	Direction string `json:"direction,omitempty"`
	// Detail is the human-readable rendering (also the sort tiebreaker).
	Detail string `json:"detail,omitempty"`
}

// String renders the fact compactly.
func (f Fact) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Device, f.Kind, f.Detail)
}

// SemanticDiff compares two parsed configuration sets and returns the
// semantic facts distinguishing them, sorted by device, kind, then detail.
// Devices present in only one version contribute whole-file facts for
// every construct they carry. Line positions never influence the output:
// reformatting or reordering without semantic change yields no facts.
func SemanticDiff(before, after map[string]*netcfg.File) []Fact {
	devices := map[string]bool{}
	for d := range before { //acrvet:ordered — collected then sorted below
		devices[d] = true
	}
	for d := range after { //acrvet:ordered — collected then sorted below
		devices[d] = true
	}
	names := make([]string, 0, len(devices))
	for d := range devices { //acrvet:ordered — collected then sorted below
		names = append(names, d)
	}
	sort.Strings(names)

	var facts []Fact
	for _, dev := range names {
		f0, f1 := before[dev], after[dev]
		if f0 == nil {
			f0 = &netcfg.File{Device: dev}
		}
		if f1 == nil {
			f1 = &netcfg.File{Device: dev}
		}
		facts = append(facts, diffDeviceFacts(dev, f0, f1)...)
	}
	sort.SliceStable(facts, func(i, j int) bool {
		if facts[i].Device != facts[j].Device {
			return facts[i].Device < facts[j].Device
		}
		if facts[i].Kind != facts[j].Kind {
			return facts[i].Kind < facts[j].Kind
		}
		return facts[i].Detail < facts[j].Detail
	})
	return facts
}

func diffDeviceFacts(dev string, f0, f1 *netcfg.File) []Fact {
	var out []Fact
	add := func(f Fact) {
		f.Device = dev
		out = append(out, f)
	}

	// Redistribution (shared accessor with impact.go's diffOriginations).
	r0, p0 := redistOf(f0.BGP)
	r1, p1 := redistOf(f1.BGP)
	switch {
	case !r0 && r1:
		add(Fact{Kind: FactRedistributeAdded, Name: p1, Detail: "redistribute static" + policySuffix(p1)})
	case r0 && !r1:
		add(Fact{Kind: FactRedistributeRemoved, Name: p0, Detail: "redistribute static" + policySuffix(p0)})
	case r0 && r1 && p0 != p1:
		add(Fact{Kind: FactRedistributeRemoved, Name: p0, Detail: "redistribute static" + policySuffix(p0)})
		add(Fact{Kind: FactRedistributeAdded, Name: p1, Detail: "redistribute static" + policySuffix(p1)})
	}

	// Statics, as multisets.
	s0 := staticSet(f0)
	s1 := staticSet(f1)
	forEachStatic(s0, func(k staticKey, c int) {
		if s1[k] < c {
			add(Fact{Kind: FactStaticRemoved, Prefix: k.prefix, Detail: "ip route static " + k.prefix.String()})
		}
	})
	forEachStatic(s1, func(k staticKey, c int) {
		if s0[k] < c {
			add(Fact{Kind: FactStaticAdded, Prefix: k.prefix, Detail: "ip route static " + k.prefix.String()})
		}
	})

	// Network statements.
	n0 := networkSet(f0.BGP)
	n1 := networkSet(f1.BGP)
	forEachPrefix(n0, func(p netip.Prefix, c int) {
		if n1[p] < c {
			add(Fact{Kind: FactNetworkRemoved, Prefix: p, Detail: "network " + p.String()})
		}
	})
	forEachPrefix(n1, func(p netip.Prefix, c int) {
		if n0[p] < c {
			add(Fact{Kind: FactNetworkAdded, Prefix: p, Detail: "network " + p.String()})
		}
	})

	// Peers: presence, remote AS, group membership.
	out = append(out, diffPeerFacts(dev, f0, f1)...)

	// Group policy attachments.
	out = append(out, diffGroupFacts(dev, f0, f1)...)

	// Policy definitions and node bodies.
	out = append(out, diffPolicyFacts(dev, f0, f1)...)

	// Prefix-list entries, as per-name multisets (shared encoder).
	out = append(out, diffListFacts(dev, f0, f1)...)

	// PBR: a single opaque changed fact (the miner does not generalize PBR
	// yet; the encoder keeps the comparison semantic).
	if encodePBR(f0) != encodePBR(f1) {
		out = append(out, Fact{Kind: FactPBRChanged, Device: dev, Detail: "pbr policies differ"})
	}
	return out
}

func diffPeerFacts(dev string, f0, f1 *netcfg.File) []Fact {
	var out []Fact
	b0, b1 := f0.BGP, f1.BGP
	if b0 == nil && b1 == nil {
		return nil
	}
	peers := func(b *netcfg.BGPBlock) map[netip.Addr]*netcfg.Peer {
		if b == nil {
			return map[netip.Addr]*netcfg.Peer{}
		}
		m, _ := peersByAddr(b)
		return m
	}
	m0, m1 := peers(b0), peers(b1)
	addrs := map[netip.Addr]bool{}
	for a := range m0 { //acrvet:ordered — collected then sorted below
		addrs[a] = true
	}
	for a := range m1 { //acrvet:ordered — collected then sorted below
		addrs[a] = true
	}
	sorted := make([]netip.Addr, 0, len(addrs))
	for a := range addrs { //acrvet:ordered — collected then sorted below
		sorted = append(sorted, a)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for _, a := range sorted {
		q0, q1 := m0[a], m1[a]
		switch {
		case q0 == nil:
			out = append(out, Fact{Kind: FactPeerAdded, Device: dev, Addr: a, NewASN: q1.ASN,
				Detail: fmt.Sprintf("peer %s as-number %d", a, q1.ASN)})
		case q1 == nil:
			out = append(out, Fact{Kind: FactPeerRemoved, Device: dev, Addr: a, OldASN: q0.ASN,
				Detail: fmt.Sprintf("peer %s as-number %d", a, q0.ASN)})
		default:
			if q0.ASN != q1.ASN {
				out = append(out, Fact{Kind: FactPeerASNChanged, Device: dev, Addr: a,
					OldASN: q0.ASN, NewASN: q1.ASN,
					Detail: fmt.Sprintf("peer %s as-number %d -> %d", a, q0.ASN, q1.ASN)})
			}
			if q0.Group != q1.Group {
				out = append(out, Fact{Kind: FactMembershipChanged, Device: dev, Addr: a, Name: q1.Group,
					Detail: fmt.Sprintf("peer %s group %q -> %q", a, q0.Group, q1.Group)})
			}
		}
	}
	return out
}

func diffGroupFacts(dev string, f0, f1 *netcfg.File) []Fact {
	var out []Fact
	groups := func(f *netcfg.File) map[string]*netcfg.PeerGroup {
		if f.BGP == nil {
			return map[string]*netcfg.PeerGroup{}
		}
		m, _ := groupsByName(f.BGP)
		return m
	}
	g0, g1 := groups(f0), groups(f1)
	names := map[string]bool{}
	for n := range g0 { //acrvet:ordered — collected then sorted below
		names[n] = true
	}
	for n := range g1 { //acrvet:ordered — collected then sorted below
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names { //acrvet:ordered — collected then sorted below
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	attKey := func(a *netcfg.PolicyAttach) string { return a.Policy + "|" + a.Direction.String() }
	for _, name := range sorted {
		var a0, a1 []*netcfg.PolicyAttach
		if g0[name] != nil {
			a0 = g0[name].Policies
		}
		if g1[name] != nil {
			a1 = g1[name].Policies
		}
		c1 := map[string]int{}
		for _, a := range a1 {
			c1[attKey(a)]++
		}
		c0 := map[string]int{}
		for _, a := range a0 {
			c0[attKey(a)]++
		}
		for _, a := range a0 {
			k := attKey(a)
			if c1[k] > 0 {
				c1[k]--
				c0[k]--
				continue
			}
		}
		for _, a := range a0 {
			if c0[attKey(a)] > 0 {
				c0[attKey(a)]--
				out = append(out, Fact{Kind: FactGroupPolicyDetached, Device: dev, Name: name,
					Direction: a.Direction.String(),
					Detail:    fmt.Sprintf("group %s route-policy %s %s", name, a.Policy, a.Direction)})
			}
		}
		for _, a := range a1 {
			if c1[attKey(a)] > 0 {
				c1[attKey(a)]--
				out = append(out, Fact{Kind: FactGroupPolicyAttached, Device: dev, Name: name,
					Direction: a.Direction.String(),
					Detail:    fmt.Sprintf("group %s route-policy %s %s", name, a.Policy, a.Direction)})
			}
		}
	}
	return out
}

func diffPolicyFacts(dev string, f0, f1 *netcfg.File) []Fact {
	var out []Fact
	idx := func(f *netcfg.File) map[string][]*netcfg.RoutePolicy {
		m := map[string][]*netcfg.RoutePolicy{}
		for _, p := range f.Policies {
			m[p.Name] = append(m[p.Name], p)
		}
		return m
	}
	m0, m1 := idx(f0), idx(f1)
	names := map[string]bool{}
	for n := range m0 { //acrvet:ordered — collected then sorted below
		names[n] = true
	}
	for n := range m1 { //acrvet:ordered — collected then sorted below
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names { //acrvet:ordered — collected then sorted below
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		p0, p1 := m0[name], m1[name]
		switch {
		case len(p0) == 0:
			out = append(out, Fact{Kind: FactPolicyDefined, Device: dev, Name: name,
				Detail: fmt.Sprintf("route-policy %s (%d nodes)", name, len(p1))})
		case len(p1) == 0:
			out = append(out, Fact{Kind: FactPolicyRemoved, Device: dev, Name: name,
				Detail: fmt.Sprintf("route-policy %s (%d nodes)", name, len(p0))})
		default:
			if !eqPolicyNodes(p0, p1) {
				out = append(out, Fact{Kind: FactPolicyNodeChanged, Device: dev, Name: name,
					Detail: "route-policy " + name + " nodes differ"})
			}
		}
	}
	return out
}

func eqPolicyNodes(a, b []*netcfg.RoutePolicy) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || !eqPolicyNode(a[i], b[i]) {
			return false
		}
	}
	return true
}

func diffListFacts(dev string, f0, f1 *netcfg.File) []Fact {
	var out []Fact
	names := map[string]bool{}
	for _, e := range f0.PrefixLists {
		names[e.Name] = true
	}
	for _, e := range f1.PrefixLists {
		names[e.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names { //acrvet:ordered — collected then sorted below
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		e0 := encodeEntries(f0.PrefixListEntries(name))
		e1 := encodeEntries(f1.PrefixListEntries(name))
		keys := map[string]bool{}
		for k := range e0 { //acrvet:ordered — collected then sorted below
			keys[k] = true
		}
		for k := range e1 { //acrvet:ordered — collected then sorted below
			keys[k] = true
		}
		ks := make([]string, 0, len(keys))
		for k := range keys { //acrvet:ordered — collected then sorted below
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			c0, c1 := 0, 0
			var entry *netcfg.PrefixList
			if e0[k] != nil {
				c0, entry = e0[k].count, e0[k].entry
			}
			if e1[k] != nil {
				c1, entry = e1[k].count, e1[k].entry
			}
			switch {
			case c1 > c0:
				out = append(out, Fact{Kind: FactListEntryAdded, Device: dev, Name: name, Prefix: entry.Prefix,
					Detail: fmt.Sprintf("ip prefix-list %s index %d %s", name, entry.Index, entry.Prefix)})
			case c0 > c1:
				out = append(out, Fact{Kind: FactListEntryRemoved, Device: dev, Name: name, Prefix: entry.Prefix,
					Detail: fmt.Sprintf("ip prefix-list %s index %d %s", name, entry.Index, entry.Prefix)})
			}
		}
	}
	return out
}

func policySuffix(policy string) string {
	if policy == "" {
		return ""
	}
	return " route-policy " + policy
}

func forEachStatic(m map[staticKey]int, f func(staticKey, int)) {
	keys := make([]staticKey, 0, len(m))
	for k := range m { //acrvet:ordered — collected then sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].prefix != keys[j].prefix {
			if keys[i].prefix.Addr() != keys[j].prefix.Addr() {
				return keys[i].prefix.Addr().Less(keys[j].prefix.Addr())
			}
			return keys[i].prefix.Bits() < keys[j].prefix.Bits()
		}
		return keys[i].nextHop.Less(keys[j].nextHop)
	})
	for _, k := range keys {
		f(k, m[k])
	}
}

func forEachPrefix(m map[netip.Prefix]int, f func(netip.Prefix, int)) {
	keys := make([]netip.Prefix, 0, len(m))
	for k := range m { //acrvet:ordered — collected then sorted below
		keys = append(keys, k)
	}
	sortPrefixes(keys)
	for _, k := range keys {
		f(k, m[k])
	}
}
