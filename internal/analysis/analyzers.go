package analysis

import (
	"fmt"
	"net/netip"
	"sort"

	"acr/internal/errclass"
	"acr/internal/netcfg"
)

// sprintf keeps message construction in the analyzer bodies terse.
var sprintf = fmt.Sprintf

// Table 1 error classes — aliases of the shared typed constants in
// internal/errclass, kept under their historical analysis names. The
// engine matches Diagnostic.Class against Template.ErrorClass when
// pruning candidates; sharing one constant per class makes a spelling
// drift a compile error instead of a silently dead prior.
const (
	ClassMissingRedistribution = errclass.MissingRedistribution
	ClassMissingPBRPermit      = errclass.MissingPBRPermit
	ClassExtraPBRRedirect      = errclass.ExtraPBRRedirect
	ClassMissingPeerGroup      = errclass.MissingPeerGroup
	ClassExtraPeerGroupItem    = errclass.ExtraPeerGroupItem
	ClassMissingRoutingPolicy  = errclass.MissingRoutingPolicy
	ClassLeftoverRouteMap      = errclass.LeftoverRouteMap
	ClassWrongASNumber         = errclass.WrongASNumber
	ClassMissingPrefixListItem = errclass.MissingPrefixListItem
)

// DanglingPolicyRef flags route-policy attachments (peer, peer-group, or
// redistribute) whose policy is not defined on the device: the attachment
// silently filters everything, the "missing a routing policy" class.
var DanglingPolicyRef = &Analyzer{
	Name:  "dangling-policy-ref",
	Doc:   "route-policy attached but not defined on the device",
	Class: ClassMissingRoutingPolicy,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil {
				continue
			}
			defined := f.PolicyNames()
			for _, site := range f.PolicyAttachSites() {
				if !defined[site.Policy] && site.Line > 0 {
					p.Reportf(netcfg.LineRef{Device: dev, Line: site.Line},
						"route-policy %q is not defined (attached to %s)", site.Policy, site.Where)
				}
			}
		}
	},
}

// DanglingPrefixList flags `match ip-prefix` clauses naming a list with no
// entries: the match can never hold, so the node is dead.
var DanglingPrefixList = &Analyzer{
	Name:  "dangling-prefix-list",
	Doc:   "route-policy matches a prefix-list with no entries",
	Class: ClassMissingPrefixListItem,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil {
				continue
			}
			lists := f.PrefixListNames()
			for _, pol := range f.Policies {
				for _, m := range pol.Matches {
					if m.Kind == netcfg.MatchIPPrefix && !lists[m.PrefixList] && m.Line > 0 {
						p.Reportf(netcfg.LineRef{Device: dev, Line: m.Line},
							"prefix-list %q is not defined (matched by route-policy %s node %d)",
							m.PrefixList, pol.Name, pol.Node)
					}
				}
			}
		}
	},
}

// DanglingPBRBinding flags interfaces bound to a PBR policy that is not
// defined on the device.
var DanglingPBRBinding = &Analyzer{
	Name:  "dangling-pbr-binding",
	Doc:   "interface applies a pbr policy that is not defined",
	Class: ClassMissingPBRPermit,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil {
				continue
			}
			for _, itf := range f.Interfaces {
				if itf.PBRPolicy != "" && f.PBRPolicyByName(itf.PBRPolicy) == nil && itf.PBRLine > 0 {
					p.Reportf(netcfg.LineRef{Device: dev, Line: itf.PBRLine},
						"pbr policy %q is not defined (applied on interface %s)", itf.PBRPolicy, itf.Name)
				}
			}
		}
	},
}

// DuplicatePeer flags a neighbor address configured more than once inside
// one bgp block — the later stanza silently shadows the earlier one.
var DuplicatePeer = &Analyzer{
	Name: "duplicate-peer",
	Doc:  "the same neighbor address is configured twice",
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil || f.BGP == nil {
				continue
			}
			seen := map[netip.Addr]bool{}
			for _, pe := range f.BGP.Peers {
				if seen[pe.Addr] {
					line := pe.ASNLine
					if line == 0 {
						line = pe.GroupLine
					}
					if line == 0 {
						line = f.BGP.Line
					}
					p.Reportf(netcfg.LineRef{Device: dev, Line: line}, "duplicate peer %s", pe.Addr)
				}
				seen[pe.Addr] = true
			}
		}
	},
}

// ShadowedPrefixList flags a prefix-list entry that covers everything a
// later-index entry of the same list matches: first match wins, so the
// later entry is unreachable. This is the Figure 2 misconfiguration — the
// over-broad `0.0.0.0/0 le 32` entry swallowing the restricted one.
var ShadowedPrefixList = &Analyzer{
	Name:  "shadowed-prefix-list",
	Doc:   "an earlier prefix-list entry makes a later entry unreachable",
	Class: ClassMissingPrefixListItem,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil {
				continue
			}
			for _, name := range sortedListNames(f) {
				entries := f.PrefixListEntries(name)
				for i, e := range entries {
					for _, o := range entries[i+1:] {
						if e.Line > 0 && e.Covers(o) {
							p.Report(Diagnostic{
								Line: netcfg.LineRef{Device: dev, Line: e.Line},
								Message: sprintf("prefix-list %q index %d (%s) covers index %d (%s): the later entry is unreachable",
									name, e.Index, entryShape(e), o.Index, entryShape(o)),
								Related: []netcfg.LineRef{{Device: dev, Line: o.Line}},
							})
							break // one finding per shadowing entry
						}
					}
				}
			}
		}
	},
}

// DormantPolicy flags attached route-policies that statically deny every
// route (every node is a deny) — the "fail to dis-enable route map"
// pattern: a maintenance deny-all left attached after the maintenance
// window. Defined-but-unattached deny-all policies are deliberate dormant
// state and are not flagged.
var DormantPolicy = &Analyzer{
	Name:  "dormant-policy",
	Doc:   "an attached route-policy denies every route",
	Class: ClassLeftoverRouteMap,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil {
				continue
			}
			for _, site := range f.PolicyAttachSites() {
				nodes := f.PolicyNodes(site.Policy)
				if len(nodes) == 0 || site.Line <= 0 {
					continue // dangling: DanglingPolicyRef's finding
				}
				denyAll := true
				for _, n := range nodes {
					if n.Permit {
						denyAll = false
					}
				}
				if denyAll {
					p.Report(Diagnostic{
						Line: netcfg.LineRef{Device: dev, Line: site.Line},
						Message: sprintf("route-policy %q attached to %s denies every route (left-over maintenance policy?)",
							site.Policy, site.Where),
						Related: []netcfg.LineRef{{Device: dev, Line: nodes[0].Line}},
					})
				}
			}
		}
	},
}

// MissingRedistribution flags static routes on a BGP speaker that are
// neither redistributed (`redistribute static`) nor covered by a `network`
// statement: the prefix is routable locally but invisible to peers.
var MissingRedistribution = &Analyzer{
	Name:  "missing-redistribution",
	Doc:   "static routes exist but are not redistributed into BGP",
	Class: ClassMissingRedistribution,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil || f.BGP == nil || f.BGP.Redistribute != nil || len(f.Statics) == 0 {
				continue
			}
			for _, s := range f.Statics {
				if !s.Prefix.IsValid() || s.Line <= 0 {
					continue
				}
				covered := false
				for _, n := range f.BGP.Networks {
					if n.Prefix.IsValid() && n.Prefix.Overlaps(s.Prefix) {
						covered = true
					}
				}
				if !covered {
					p.Reportf(netcfg.LineRef{Device: dev, Line: s.Line},
						"static route %s is not advertised: bgp %d has no `redistribute static` and no covering network statement",
						s.Prefix, f.BGP.ASN)
				}
			}
		}
	},
}

// ShadowedPBRRule flags a PBR rule whose match set covers everything a
// later-index rule matches: the later rule can never apply. An injected
// redirect without the original's port qualifier lands here — the "extra
// redirect rule" class.
var ShadowedPBRRule = &Analyzer{
	Name:  "shadowed-pbr-rule",
	Doc:   "an earlier pbr rule makes a later rule unreachable",
	Class: ClassExtraPBRRedirect,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil {
				continue
			}
			for _, pol := range f.PBRPolicies {
				rules := append([]*netcfg.PBRRule(nil), pol.Rules...)
				sort.SliceStable(rules, func(i, j int) bool { return rules[i].Index < rules[j].Index })
				for i, r := range rules {
					for _, o := range rules[i+1:] {
						if r.Line > 0 && ruleCovers(r, o) {
							p.Report(Diagnostic{
								Line: netcfg.LineRef{Device: dev, Line: r.Line},
								Message: sprintf("pbr policy %q rule %d covers rule %d: the later rule is unreachable",
									pol.Name, r.Index, o.Index),
								Related: []netcfg.LineRef{{Device: dev, Line: o.Line}},
							})
							break
						}
					}
				}
			}
		}
	},
}

// UnfilteredPBRPolicy flags a PBR policy bound to an interface with no
// permit rules left: the policy steers nothing, the "missing permit rules"
// class (a deleted scrubber redirect leaves exactly this shape).
var UnfilteredPBRPolicy = &Analyzer{
	Name:  "pbr-no-permit",
	Doc:   "a bound pbr policy has no permit rules",
	Class: ClassMissingPBRPermit,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil {
				continue
			}
			for _, itf := range f.Interfaces {
				if itf.PBRPolicy == "" {
					continue
				}
				pol := f.PBRPolicyByName(itf.PBRPolicy)
				if pol == nil || pol.Line <= 0 {
					continue // dangling: DanglingPBRBinding's finding
				}
				permits := 0
				for _, r := range pol.Rules {
					if r.Permit {
						permits++
					}
				}
				if permits == 0 {
					p.Report(Diagnostic{
						Line: netcfg.LineRef{Device: dev, Line: pol.Line},
						Message: sprintf("pbr policy %q is applied on interface %s but has no permit rules: it steers nothing",
							pol.Name, itf.Name),
						Related: []netcfg.LineRef{{Device: dev, Line: itf.PBRLine}},
					})
				}
			}
		}
	},
}

// ASOverrideMismatch flags `apply as-path overwrite <asn>` clauses whose
// ASN is not the device's own AS: overwriting with a foreign AS forges the
// path origin (the benign idiom overwrites with the local AS to hide an
// internal hop).
var ASOverrideMismatch = &Analyzer{
	Name:  "as-override-mismatch",
	Doc:   "as-path overwrite uses an AS other than the device's own",
	Class: ClassWrongASNumber,
	Run: func(p *Pass) {
		for _, dev := range p.Devices() {
			f := p.File(dev)
			if f == nil || f.BGP == nil || f.BGP.ASN == 0 {
				continue
			}
			for _, pol := range f.Policies {
				for _, a := range pol.Applies {
					if a.Kind == netcfg.ApplyASPathOverwrite && a.ASN != 0 && a.ASN != f.BGP.ASN && a.Line > 0 {
						p.Report(Diagnostic{
							Line:     netcfg.LineRef{Device: dev, Line: a.Line},
							Severity: Warning,
							Message: sprintf("route-policy %s node %d overwrites AS_PATH with %d, but this device is AS %d",
								pol.Name, pol.Node, a.ASN, f.BGP.ASN),
						})
					}
				}
			}
		}
	},
}

// sortedListNames returns the distinct prefix-list names of a file, sorted.
func sortedListNames(f *netcfg.File) []string {
	names := f.PrefixListNames()
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// entryShape renders an entry's matching shape for messages.
func entryShape(e *netcfg.PrefixList) string {
	s := e.Prefix.String()
	if e.GE > 0 {
		s += sprintf(" ge %d", e.GE)
	}
	if e.LE > 0 {
		s += sprintf(" le %d", e.LE)
	}
	return s
}

// ruleCovers reports whether every packet matched by rule o is also
// matched by rule r: per dimension, r's constraint must be at least as
// broad as o's (a missing constraint matches everything).
func ruleCovers(r, o *netcfg.PBRRule) bool {
	if r.MatchSource != nil && !prefixMatchCovers(r.MatchSource, o.MatchSource) {
		return false
	}
	if r.MatchDest != nil && !prefixMatchCovers(r.MatchDest, o.MatchDest) {
		return false
	}
	if r.MatchProto != nil && r.MatchProto.Proto != "any" {
		if o.MatchProto == nil || o.MatchProto.Proto != r.MatchProto.Proto {
			return false
		}
	}
	if r.MatchDstPort != nil {
		if o.MatchDstPort == nil || o.MatchDstPort.Port != r.MatchDstPort.Port {
			return false
		}
	}
	return true
}

// prefixMatchCovers reports whether prefix constraint a contains b's
// entire range (b nil means match-all, which a proper prefix cannot cover
// unless a is the default route).
func prefixMatchCovers(a, b *netcfg.PrefixMatch) bool {
	if !a.Prefix.IsValid() {
		return false
	}
	ap := a.Prefix.Masked()
	if b == nil || !b.Prefix.IsValid() {
		return ap.Bits() == 0
	}
	bp := b.Prefix.Masked()
	if ap.Addr().Is4() != bp.Addr().Is4() {
		return false
	}
	return ap.Contains(bp.Addr()) && bp.Bits() >= ap.Bits()
}
