package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"acr/internal/netcfg"
	"acr/internal/provenance"
)

// This file implements the candidate impact analysis: a static dataflow
// pass that, given the parsed base configurations and a candidate's parsed
// post-edit configurations, computes an over-approximate *impact set* —
// the prefixes, devices, and session state the edit can possibly influence
// — without running a single simulation.
//
// The analysis is a semantic AST diff interpreted through the simulator's
// own consumption structure. Simulation output is a pure function of
// (topology, parsed files), so two configurations with semantically equal
// ASTs behave identically; only constructs that differ can change
// behavior, and each construct kind has a statically known influence
// channel:
//
//   - session identity (BGP presence, ASN, peer stanzas, interface
//     shutdown) gates which sessions establish → the whole connected
//     component of the device is in scope and the session set may change;
//   - route selection inputs (router-id, policy attachments, peer groups)
//     reshape best-path decisions for any prefix routed in the component;
//   - originations (network statements, redistributed statics) scope to
//     the prefixes they name;
//   - route-policy nodes and prefix-list entries scope to the prefixes
//     their match clauses can accept — and to nothing at all when the
//     policy is attached nowhere (dormant code);
//   - dataplane constructs (statics without redistribution, PBR, interface
//     addresses) never touch the control plane: they scope to the edited
//     device's forwarding decisions only.
//
// Cross-device propagation is bounded by the provenance DeviceGraph
// (internal/provenance): BGP routes travel only over adjacencies, so a
// device's connected component is a sound influence bound. The component
// relation is computed over *all* adjacencies — configured or not —
// because an edit can bring a session up where none exists today, but can
// never create a physical link.
//
// Soundness is enforced downstream, not assumed here: the incremental
// verifier cross-checks the predicted impact against the compiled network
// (session fingerprint, origination diff) and falls back to a full
// re-simulation on any mismatch, and a differential mode replays every
// pruned decision against full simulation (see internal/verify).

// Impact is the over-approximate blast radius of one candidate edit set.
// The zero value means "provably no behavioral change".
type Impact struct {
	// Broad marks an impact the analysis could not scope (unknown device,
	// pathological AST): everything must be re-checked.
	Broad bool
	// SessionsMayChange reports that the edit touches session-identity
	// inputs, so the established-session set of the new network may differ
	// from the base. When false, the verifier treats a session-fingerprint
	// mismatch as an analyzer defect and degrades to a full check.
	SessionsMayChange bool
	// Prefixes are the base-universe origination prefixes whose routes the
	// edit can influence; only these need re-simulation.
	Prefixes map[netip.Prefix]bool
	// Literals are origination prefixes the edit adds or removes (network
	// statements, redistributed statics): prefixes that may enter or leave
	// the universe, so intents whose destination they cover must be
	// re-verified even though the prefix has no base outcome.
	Literals map[netip.Prefix]bool
	// DataplaneDevices are devices whose forwarding decisions may change
	// independently of any route (statics, PBR, interface bindings).
	// Intents whose traces visit one must be re-verified.
	DataplaneDevices map[string]bool
	// Devices is the control-plane influence closure: every device whose
	// routing state the edit can reach through session edges.
	Devices map[string]bool
	// LocalDevices are leaf (non-transit) devices whose control plane
	// changed: every prefix routed in their component may change, but only
	// as observed *at* these devices — the rest of the network sees a
	// difference only through the prefixes the leaf originates (already in
	// Prefixes). Intents that observe a local device (global checks, flows
	// injected there, flows whose base traces visit it) must re-verify with
	// fresh simulations of the prefixes they consult.
	LocalDevices map[string]bool
	// SessionDevices are devices with a *deferred* session-identity change:
	// inputs that influence behavior only through which sessions establish
	// (peer stanza presence and remote-as, interface shutdown). The scope
	// decision is postponed to the verifier, which compiles the candidate
	// anyway: if the established-session set equals the base's, the change
	// was behaviorally inert and contributes nothing; otherwise the
	// verifier calls ExpandSessions to widen to full control scope.
	SessionDevices map[string]bool
	// LocalPrefixes records prefixes affected only as observed *at* one
	// leaf device: an export-policy delta on a transit router toward a
	// non-transit peer changes what that peer hears and nothing else (its
	// re-advertisements die to AS-path loop detection, and it originates
	// none of these prefixes). The verifier re-derives just the leaf's
	// entry of the base outcome instead of running a full prefix
	// simulation, and only intents observing the leaf re-verify.
	LocalPrefixes map[string]map[netip.Prefix]bool
}

// newImpact returns an empty, fully allocated impact set.
func newImpact() *Impact {
	return &Impact{
		Prefixes:         map[netip.Prefix]bool{},
		Literals:         map[netip.Prefix]bool{},
		DataplaneDevices: map[string]bool{},
		Devices:          map[string]bool{},
		LocalDevices:     map[string]bool{},
		SessionDevices:   map[string]bool{},
		LocalPrefixes:    map[string]map[netip.Prefix]bool{},
	}
}

// Empty reports a provably behavior-preserving edit: nothing to
// re-simulate, nothing to re-verify.
func (im *Impact) Empty() bool {
	return !im.Broad && !im.SessionsMayChange &&
		len(im.Prefixes) == 0 && len(im.Literals) == 0 &&
		len(im.DataplaneDevices) == 0 && len(im.Devices) == 0 &&
		len(im.LocalDevices) == 0 && len(im.SessionDevices) == 0 &&
		len(im.LocalPrefixes) == 0
}

// CoversAddr reports whether any affected prefix or literal contains addr
// — the trigger deciding whether an intent destined there must be
// re-verified.
func (im *Impact) CoversAddr(addr netip.Addr) bool {
	for p := range im.Prefixes { //acrvet:ordered
		if p.Contains(addr) {
			return true
		}
	}
	for p := range im.Literals { //acrvet:ordered
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// String renders the impact compactly for logs and stats.
func (im *Impact) String() string {
	if im.Broad {
		return "broad"
	}
	localpfx := 0
	for _, m := range im.LocalPrefixes { //acrvet:ordered — counts only
		localpfx += len(m)
	}
	return fmt.Sprintf("prefixes=%d literals=%d dataplane=%d devices=%d locals=%d gated=%d localpfx=%d sessions=%v",
		len(im.Prefixes), len(im.Literals), len(im.DataplaneDevices), len(im.Devices),
		len(im.LocalDevices), len(im.SessionDevices), localpfx, im.SessionsMayChange)
}

// Digest returns a canonical SHA-256 of the impact set. Two candidates
// with equal digests influence the same slice of the network; the digest
// is stable across map iteration order.
func (im *Impact) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "broad=%v sessions=%v\n", im.Broad, im.SessionsMayChange)
	writePrefixes := func(label string, m map[netip.Prefix]bool) {
		ps := make([]netip.Prefix, 0, len(m))
		for p := range m { //acrvet:ordered — collected then sorted below
			ps = append(ps, p)
		}
		sortPrefixes(ps)
		fmt.Fprintf(h, "%s:", label)
		for _, p := range ps {
			fmt.Fprintf(h, " %s", p)
		}
		fmt.Fprintln(h)
	}
	writeDevices := func(label string, m map[string]bool) {
		ds := make([]string, 0, len(m))
		for d := range m { //acrvet:ordered — collected then sorted below
			ds = append(ds, d)
		}
		sort.Strings(ds)
		fmt.Fprintf(h, "%s: %s\n", label, strings.Join(ds, " "))
	}
	writePrefixes("prefixes", im.Prefixes)
	writePrefixes("literals", im.Literals)
	writeDevices("dataplane", im.DataplaneDevices)
	writeDevices("devices", im.Devices)
	writeDevices("locals", im.LocalDevices)
	writeDevices("gated", im.SessionDevices)
	leaves := make([]string, 0, len(im.LocalPrefixes))
	for d := range im.LocalPrefixes { //acrvet:ordered — collected then sorted below
		leaves = append(leaves, d)
	}
	sort.Strings(leaves)
	for _, d := range leaves {
		writePrefixes("localpfx "+d, im.LocalPrefixes[d])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr().Less(ps[j].Addr())
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// ImpactAnalyzer computes impact sets against a fixed verified base. Build
// one per base (it indexes the base once); Compare is read-only and safe
// for concurrent use from multiple goroutines.
type ImpactAnalyzer struct {
	base     map[string]*netcfg.File
	universe []netip.Prefix
	origins  map[netip.Prefix][]string
	graph    *provenance.DeviceGraph

	// compPrefixes memoizes, per device, which universe prefixes are
	// originated inside that device's connected component — the set a
	// component-wide change can influence. Precomputed eagerly so Compare
	// stays lock-free.
	compPrefixes map[string]map[netip.Prefix]bool

	// leaf marks non-transit devices (at most one session neighbor): their
	// control-plane changes reach other devices only through prefixes they
	// originate, because re-advertisements back toward the single neighbor
	// are dropped by AS-path loop detection.
	leaf map[string]bool

	// addrOwner maps an interface address to the device owning it in the
	// base, resolving peer-stanza addresses to the session's remote end.
	// Valid for candidates too: the verifier falls back to a full check
	// whenever the established-session set deviates from the base.
	addrOwner map[netip.Addr]string
}

// NewImpactAnalyzer indexes a verified base: its parsed files, the
// origination universe (prefix → originating devices), and the
// cross-device influence graph.
func NewImpactAnalyzer(base map[string]*netcfg.File, universe []netip.Prefix, origins map[netip.Prefix][]string, graph *provenance.DeviceGraph) *ImpactAnalyzer {
	a := &ImpactAnalyzer{
		base:         base,
		universe:     append([]netip.Prefix(nil), universe...),
		origins:      origins,
		graph:        graph,
		compPrefixes: map[string]map[netip.Prefix]bool{},
		leaf:         map[string]bool{},
		addrOwner:    map[netip.Addr]string{},
	}
	bdevs := make([]string, 0, len(base))
	for d := range base { //acrvet:ordered — collected then sorted below
		bdevs = append(bdevs, d)
	}
	sort.Strings(bdevs)
	for _, d := range bdevs {
		for _, i := range base[d].Interfaces {
			if i.Addr.IsValid() {
				a.addrOwner[i.Addr.Addr()] = d
			}
		}
	}
	for _, dev := range graph.Devices() {
		a.leaf[dev] = !graph.Transit(dev)
		m := map[netip.Prefix]bool{}
		for _, p := range a.universe {
			devs := origins[p]
			if len(devs) == 0 {
				m[p] = true // unknown origin: conservatively in scope
				continue
			}
			for _, d := range devs {
				if graph.SameComponent(dev, d) {
					m[p] = true
					break
				}
			}
		}
		a.compPrefixes[dev] = m
	}
	return a
}

// Compare diffs the candidate's parsed files against the base and returns
// the edit's impact set. Devices whose *netcfg.File pointer is unchanged
// are skipped without inspection (the incremental verifier reuses base
// pointers for unedited devices).
func (a *ImpactAnalyzer) Compare(newFiles map[string]*netcfg.File) *Impact {
	im := newImpact()
	devs := make([]string, 0, len(newFiles))
	for d := range newFiles { //acrvet:ordered — collected then sorted below
		devs = append(devs, d)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		f1 := newFiles[dev]
		f0 := a.base[dev]
		if f0 == f1 {
			continue
		}
		if f0 == nil || f1 == nil {
			im.Broad = true
			return im
		}
		a.diffDevice(im, dev, f0, f1)
	}
	return im
}

// --- scope helpers --------------------------------------------------------

// componentScope marks every prefix originated in dev's component and
// every device reachable from dev: the widest sound scope for a
// control-plane change on dev.
func (a *ImpactAnalyzer) componentScope(im *Impact, dev string) {
	for p := range a.compPrefixes[dev] { //acrvet:ordered
		im.Prefixes[p] = true
	}
	reach := a.graph.Reachable(dev)
	if len(reach) == 0 {
		im.Devices[dev] = true
		return
	}
	for _, d := range reach {
		im.Devices[d] = true
	}
}

// controlScope marks a control-plane change on dev with the narrowest
// sound scope. On a transit device that is the full component scope. On a
// leaf (non-transit) device the change escapes only through the prefixes
// the leaf originates — everything the leaf re-advertises goes back toward
// its single neighbor, which drops it on AS-path loop detection (export
// prepends the leaf's ASN) — so only those prefixes are globally affected,
// and every other prefix changes only as observed at the leaf itself
// (recorded in LocalDevices for the verifier's intent triggers).
// Transit-ness is a topology property: edits can reconfigure sessions but
// never create physical links, so it is stable under any candidate.
func (a *ImpactAnalyzer) controlScope(im *Impact, dev string) {
	if !a.leaf[dev] {
		a.componentScope(im, dev)
		return
	}
	for _, p := range a.universe {
		for _, d := range a.origins[p] {
			if d == dev {
				im.Prefixes[p] = true
				break
			}
		}
	}
	im.LocalDevices[dev] = true
	im.Devices[dev] = true
}

// sessionChange marks a change to session-identity inputs on dev whose
// influence is not limited to session establishment (BGP block presence,
// the device ASN — which feeds AS-path prepending and loop rejection —
// and duplicate-stanza resolution): full control scope, immediately.
func (a *ImpactAnalyzer) sessionChange(im *Impact, dev string) {
	im.SessionsMayChange = true
	a.controlScope(im, dev)
}

// sessionGate records a deferred session-identity change on dev: the
// changed inputs (peer stanza presence, its remote-as value, interface
// shutdown) feed nothing in the simulator but the session-establishment
// predicates, so their behavioral effect is fully captured by whether the
// established-session set changes — which the verifier observes for free
// when it compiles the candidate. No scope is added here; the verifier
// calls ExpandSessions exactly when the session set differs. A candidate
// that, say, rewrites a down session's remote-as to another wrong value
// keeps the session down and is provably inert on this channel.
func (a *ImpactAnalyzer) sessionGate(im *Impact, dev string) {
	im.SessionsMayChange = true
	im.SessionDevices[dev] = true
}

// ExpandSessions widens every deferred session device to full control
// scope. The verifier calls it after compiling the candidate, exactly when
// the established-session set differs from the base's; when the set is
// unchanged the deferred inputs were behaviorally inert and contribute no
// scope at all.
func (a *ImpactAnalyzer) ExpandSessions(im *Impact) {
	devs := make([]string, 0, len(im.SessionDevices))
	for d := range im.SessionDevices { //acrvet:ordered — collected then sorted below
		devs = append(devs, d)
	}
	sort.Strings(devs)
	for _, d := range devs {
		a.controlScope(im, d)
	}
}

// attachScope scopes an attachment change on peer stanza s — present as s0
// in the base file and s1 in the candidate — by diffing the effective
// per-direction policy chains the simulator will evaluate. Only the chains'
// delta is scoped; policies common to both versions act identically on any
// route the rest of the analysis leaves unscoped, so they drop out. The
// affected session is the stanza's own, so export-side deltas can localize
// to its remote end when that end is a leaf.
func (a *ImpactAnalyzer) attachScope(im *Impact, dev string, f0 *netcfg.File, s0 *netcfg.Peer, f1 *netcfg.File, s1 *netcfg.Peer) {
	var remotes []string
	if r := a.addrOwner[s0.Addr]; r != "" {
		remotes = []string{r}
	}
	for _, d := range []netcfg.Direction{netcfg.Import, netcfg.Export} {
		a.attachDeltaScope(im, dev, f0, f0.EffectivePolicies(s0, d), f1, f1.EffectivePolicies(s1, d), remotes)
	}
}

// attachDeltaScope scopes the difference between two policy chains. A route
// r is processed identically by both chains if every policy acting
// non-trivially on r (matching a non-transparent node) is common to both
// chains in the same relative order: deleting r's no-op policies from each
// chain leaves the same sequence. So when the common attachments preserve
// their relative order, only the symmetric difference needs scoping; a
// reorder of common elements falls back to scoping both chains whole
// (duplicate applies — e.g. double prepend — make even a repeated common
// policy order-sensitive, which the multiset pairing handles).
func (a *ImpactAnalyzer) attachDeltaScope(im *Impact, dev string, f0 *netcfg.File, eff0 []*netcfg.PolicyAttach, f1 *netcfg.File, eff1 []*netcfg.PolicyAttach, remotes []string) {
	key := func(at *netcfg.PolicyAttach) string {
		return at.Policy + "\x00" + string(rune(at.Direction))
	}
	count1 := map[string]int{}
	for _, at := range eff1 {
		count1[key(at)]++
	}
	// Pair each eff0 element with an eff1 occurrence (multiset
	// intersection); unpaired elements form the v0 side of the delta.
	var common0 []string
	var delta0 []*netcfg.PolicyAttach
	for _, at := range eff0 {
		k := key(at)
		if count1[k] > 0 {
			count1[k]--
			common0 = append(common0, k)
		} else {
			delta0 = append(delta0, at)
		}
	}
	count0 := map[string]int{}
	for _, at := range eff0 {
		count0[key(at)]++
	}
	var common1 []string
	var delta1 []*netcfg.PolicyAttach
	for _, at := range eff1 {
		k := key(at)
		if count0[k] > 0 {
			count0[k]--
			common1 = append(common1, k)
		} else {
			delta1 = append(delta1, at)
		}
	}
	ordered := len(common0) == len(common1)
	for i := range common0 {
		if !ordered || common0[i] != common1[i] {
			ordered = false
			break
		}
	}
	if !ordered {
		a.attachesScope(im, dev, f0, eff0, remotes)
		a.attachesScope(im, dev, f1, eff1, remotes)
		return
	}
	a.attachesScope(im, dev, f0, delta0, remotes)
	a.attachesScope(im, dev, f1, delta1, remotes)
}

// attachesScope scopes a set of delta attachments. Export-direction
// attachments whose affected sessions all terminate at leaf remotes
// localize: what the delta policies can match changes only as observed at
// those leaves (their re-advertisements die to AS-path loop detection), so
// the matched prefixes go to LocalPrefixes instead of the global set —
// except prefixes a remote itself originates, whose best-route flip at the
// leaf could alter what it re-exports, and prefixes with unknown origin.
// Import-direction deltas change the edited (transit) device's own RIB and
// stay global.
func (a *ImpactAnalyzer) attachesScope(im *Impact, dev string, f *netcfg.File, attaches []*netcfg.PolicyAttach, remotes []string) {
	leafOnly := len(remotes) > 0
	for _, r := range remotes {
		if !a.leaf[r] {
			leafOnly = false
			break
		}
	}
	for _, at := range attaches {
		if leafOnly && at.Direction == netcfg.Export {
			if set, ok := a.policyMatchSet(dev, f, at.Policy); ok {
				ps := make([]netip.Prefix, 0, len(set))
				for p := range set { //acrvet:ordered — collected then sorted below
					ps = append(ps, p)
				}
				sortPrefixes(ps)
				for _, p := range ps {
					if a.originatedByAny(p, remotes) {
						im.Prefixes[p] = true
						continue
					}
					for _, r := range remotes {
						if im.LocalPrefixes[r] == nil {
							im.LocalPrefixes[r] = map[netip.Prefix]bool{}
						}
						im.LocalPrefixes[r][p] = true
					}
				}
				continue
			}
		}
		a.policyScope(im, dev, f, at.Policy)
	}
	im.Devices[dev] = true
}

// policyMatchSet collects the universe prefixes the policy's
// non-transparent nodes can match, resolved in file f and bounded by dev's
// component. ok is false when some node matches everything (no match
// clauses): the caller must fall back to full policy scope.
func (a *ImpactAnalyzer) policyMatchSet(dev string, f *netcfg.File, name string) (map[netip.Prefix]bool, bool) {
	set := map[netip.Prefix]bool{}
	for _, n := range f.PolicyNodes(name) {
		if n.Permit && len(n.Applies) == 0 {
			continue
		}
		if len(n.Matches) == 0 {
			return nil, false
		}
		for _, mc := range n.Matches {
			for _, e := range f.PrefixListEntries(mc.PrefixList) {
				for _, p := range a.universe {
					if e.Matches(p) && a.compPrefixes[dev][p] {
						set[p] = true
					}
				}
			}
		}
	}
	return set, true
}

// originatedByAny reports whether any of the devices originates p in the
// base. An unknown origin set is conservatively treated as originated.
func (a *ImpactAnalyzer) originatedByAny(p netip.Prefix, devs []string) bool {
	owners := a.origins[p]
	if len(owners) == 0 {
		return true
	}
	for _, o := range owners {
		for _, d := range devs {
			if o == d {
				return true
			}
		}
	}
	return false
}

// attachListScope scopes a policy-attachment change: evalPolicy accepts
// routes matched by no node unchanged (implicit permit), so attaching,
// detaching, or swapping policies affects exactly the prefixes some node
// of an involved policy can match — resolved against the file version the
// attachment refers into. An undefined policy is a no-op permit (zero
// scope); a node without match clauses accepts everything (full control
// scope, via nodeScope).
func (a *ImpactAnalyzer) attachListScope(im *Impact, dev string, f *netcfg.File, attaches []*netcfg.PolicyAttach) {
	for _, at := range attaches {
		a.policyScope(im, dev, f, at.Policy)
	}
	im.Devices[dev] = true
}

// policyScope marks the prefixes the policy as a whole can alter. A route
// changes only when the first node matching it is a deny or carries apply
// clauses; a permit node without applies passes the route through
// unchanged — exactly the implicit-permit outcome — so it is transparent
// for whole-policy scoping. (It can pre-empt a later node, but any route
// it shields is matched by that later node too, so the union over
// non-transparent nodes already covers it. Per-node *edits* are different:
// diffPolicies must stay conservative about transparent nodes, whose
// presence reshapes which node fires.)
func (a *ImpactAnalyzer) policyScope(im *Impact, dev string, f *netcfg.File, name string) {
	for _, n := range f.PolicyNodes(name) {
		if n.Permit && len(n.Applies) == 0 {
			continue
		}
		a.nodeScope(im, dev, n, f)
	}
	im.Devices[dev] = true
}

// originScope marks a changed origination: universe prefixes overlapping
// lit must re-simulate, and lit itself is recorded so intents destined
// inside a prefix that enters or leaves the universe re-verify.
func (a *ImpactAnalyzer) originScope(im *Impact, dev string, lit netip.Prefix) {
	if !lit.IsValid() {
		return
	}
	for _, p := range a.universe {
		if p.Overlaps(lit) && a.compPrefixes[dev][p] {
			im.Prefixes[p] = true
		}
	}
	im.Literals[lit] = true
	im.Devices[dev] = true
}

// matchedScope marks the universe prefixes accepted by one prefix-list
// entry, within dev's component.
func (a *ImpactAnalyzer) matchedScope(im *Impact, dev string, e *netcfg.PrefixList) {
	for _, p := range a.universe {
		if e.Matches(p) && a.compPrefixes[dev][p] {
			im.Prefixes[p] = true
		}
	}
	im.Devices[dev] = true
}

// --- per-device semantic diff ---------------------------------------------

func (a *ImpactAnalyzer) diffDevice(im *Impact, dev string, f0, f1 *netcfg.File) {
	a.diffSessionIdentity(im, dev, f0, f1)
	a.diffRouteSelection(im, dev, f0, f1)
	a.diffOriginations(im, dev, f0, f1)
	a.diffPolicies(im, dev, f0, f1)
	a.diffPrefixLists(im, dev, f0, f1)
	a.diffDataplane(im, dev, f0, f1)
}

// diffSessionIdentity covers every input of bgp session resolution: BGP
// block presence, the local ASN (checked by both ends), peer stanzas
// (address, as-number, group membership feeds no session predicate but is
// diffed under route selection), and interface shutdown state.
func (a *ImpactAnalyzer) diffSessionIdentity(im *Impact, dev string, f0, f1 *netcfg.File) {
	b0, b1 := f0.BGP, f1.BGP
	if (b0 == nil) != (b1 == nil) || asnOf(b0) != asnOf(b1) {
		a.sessionChange(im, dev)
		return
	}
	if b0 == nil {
		return
	}
	p0, dup0 := peersByAddr(b0)
	p1, dup1 := peersByAddr(b1)
	if dup0 || dup1 {
		// Duplicate stanzas for one address: resolution picks the first;
		// diffing per address is unsound, so any textual difference in the
		// peer section is a session change.
		if encodePeers(b0) != encodePeers(b1) {
			a.sessionChange(im, dev)
		}
	} else {
		for addr, s0 := range p0 { //acrvet:ordered — sets flags, emits nothing
			s1 := p1[addr]
			if s1 == nil || s0.ASN != s1.ASN || (s0.ASNLine == 0) != (s1.ASNLine == 0) {
				a.sessionGate(im, dev)
			} else if s0.Group != s1.Group || !eqAttaches(s0.Policies, s1.Policies) {
				// Same session predicates, different effective policies:
				// routes matched by no node of any involved policy pass
				// through unchanged, so scope to what the chains' delta
				// matches.
				a.attachScope(im, dev, f0, s0, f1, s1)
			}
		}
		for addr := range p1 { //acrvet:ordered — sets flags, emits nothing
			if p0[addr] == nil {
				a.sessionGate(im, dev)
			}
		}
	}
	// Interface shutdown gates sessions on both ends of an adjacency. A
	// missing block counts as up (bgp.ifaceUp).
	i0 := ifacesByName(f0)
	i1 := ifacesByName(f1)
	shut := func(i *netcfg.Interface) bool { return i != nil && i.Shutdown }
	for name, a0 := range i0 { //acrvet:ordered — sets flags, emits nothing
		if shut(a0) != shut(i1[name]) {
			a.sessionGate(im, dev)
			im.DataplaneDevices[dev] = true
		}
	}
	for name, a1 := range i1 { //acrvet:ordered — sets flags, emits nothing
		if i0[name] == nil && shut(a1) {
			a.sessionGate(im, dev)
			im.DataplaneDevices[dev] = true
		}
	}
}

// diffRouteSelection covers best-path inputs that cannot change the
// session set: router-id (tie-breaking) and peer-group definitions
// (attached policies, external flag).
func (a *ImpactAnalyzer) diffRouteSelection(im *Impact, dev string, f0, f1 *netcfg.File) {
	b0, b1 := f0.BGP, f1.BGP
	if ridOf(b0) != ridOf(b1) {
		a.controlScope(im, dev)
	}
	if b0 == nil || b1 == nil {
		return
	}
	g0, dup0 := groupsByName(b0)
	g1, dup1 := groupsByName(b1)
	if dup0 || dup1 {
		if encodeGroups(b0) != encodeGroups(b1) {
			a.controlScope(im, dev)
		}
		return
	}
	for name, x0 := range g0 { //acrvet:ordered — sets flags, emits nothing
		x1 := g1[name]
		switch {
		case x1 == nil:
			// Group removed: member peers lose exactly its policies.
			a.attachesScope(im, dev, f0, x0.Policies, a.groupRemotes(name, f0, f1))
		case x0.External != x1.External:
			a.controlScope(im, dev)
		case !eqAttaches(x0.Policies, x1.Policies):
			// Member peers' chains share the peer-attach prefix and this
			// group's suffix; only the suffix delta needs scoping.
			a.attachDeltaScope(im, dev, f0, x0.Policies, f1, x1.Policies, a.groupRemotes(name, f0, f1))
		}
	}
	for name, x1 := range g1 { //acrvet:ordered — sets flags, emits nothing
		if g0[name] == nil {
			a.attachesScope(im, dev, f1, x1.Policies, a.groupRemotes(name, f0, f1))
		}
	}
}

// groupRemotes resolves the remote devices of every session whose chain
// includes group name — its member peers in either file version. A nil
// return (no members, or a peer address the base cannot place) disables
// export-side localization for the group's delta.
func (a *ImpactAnalyzer) groupRemotes(name string, f0, f1 *netcfg.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range []*netcfg.File{f0, f1} {
		if f.BGP == nil {
			continue
		}
		for _, p := range f.BGP.Peers {
			if p.Group != name {
				continue
			}
			r := a.addrOwner[p.Addr]
			if r == "" {
				return nil
			}
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// diffOriginations covers network statements and the redistribute
// statement. Statics themselves are diffed under dataplane; their
// control-plane face (they originate routes when redistribution is on)
// is handled here and by diffDataplane's redistribution check.
func (a *ImpactAnalyzer) diffOriginations(im *Impact, dev string, f0, f1 *netcfg.File) {
	n0 := networkSet(f0.BGP)
	n1 := networkSet(f1.BGP)
	for p, c := range n0 { //acrvet:ordered — marks scope maps, emits nothing
		if n1[p] != c {
			a.originScope(im, dev, p)
		}
	}
	for p, c := range n1 { //acrvet:ordered — marks scope maps, emits nothing
		if n0[p] != c {
			a.originScope(im, dev, p)
		}
	}
	r0has, r0pol := redistOf(f0.BGP)
	r1has, r1pol := redistOf(f1.BGP)
	if r0has != r1has || r0pol != r1pol {
		// Every static on the device enters or leaves the control plane,
		// or flows through a different policy.
		for _, s := range f0.Statics {
			a.originScope(im, dev, s.Prefix)
		}
		for _, s := range f1.Statics {
			a.originScope(im, dev, s.Prefix)
		}
		im.Devices[dev] = true
	}
}

// diffPolicies diffs route-policy nodes keyed by (name, node). A changed
// node influences exactly the prefixes its match clauses (old or new
// version) can accept — prefixes matched by neither behave identically
// before and after, whatever the node's action — and nothing at all when
// the policy is attached nowhere in either version.
func (a *ImpactAnalyzer) diffPolicies(im *Impact, dev string, f0, f1 *netcfg.File) {
	type key struct {
		name string
		node int
	}
	idx := func(f *netcfg.File) map[key]*netcfg.RoutePolicy {
		m := map[key]*netcfg.RoutePolicy{}
		for _, p := range f.Policies {
			k := key{p.Name, p.Node}
			if m[k] != nil {
				// Duplicate (name, node): evaluation order among duplicates
				// is positional; treat the whole policy as changed broadly.
				m[k] = nil
			} else {
				m[k] = p
			}
		}
		return m
	}
	m0, m1 := idx(f0), idx(f1)
	changed := map[key]bool{}
	for k, p := range m0 { //acrvet:ordered — fills a set, emits nothing
		if q, ok := m1[k]; !ok || p == nil || q == nil || !eqPolicyNode(p, q) {
			changed[k] = true
		}
	}
	for k := range m1 { //acrvet:ordered — fills a set, emits nothing
		if _, ok := m0[k]; !ok {
			changed[k] = true
		}
	}
	for k := range changed { //acrvet:ordered — marks scope maps, emits nothing
		if !policyAttached(f0, k.name) && !policyAttached(f1, k.name) {
			continue // dormant policy: no evaluation path reaches it
		}
		a.nodeScope(im, dev, m0[k], f0)
		a.nodeScope(im, dev, m1[k], f1)
	}
}

// nodeScope marks the prefixes a policy node can accept, resolving its
// match clauses against the prefix lists of the file version it lives in.
// A node without match clauses accepts everything in scope.
func (a *ImpactAnalyzer) nodeScope(im *Impact, dev string, n *netcfg.RoutePolicy, f *netcfg.File) {
	if n == nil {
		return
	}
	if len(n.Matches) == 0 {
		a.controlScope(im, dev)
		return
	}
	for _, mc := range n.Matches {
		for _, e := range f.PrefixListEntries(mc.PrefixList) {
			a.matchedScope(im, dev, e)
		}
	}
	im.Devices[dev] = true
}

// diffPrefixLists diffs prefix-list entries as per-name multisets. A
// changed entry influences exactly the prefixes it accepts (old or new
// version) — first-match-wins means prefixes matched by neither version
// take the same path through the list — and nothing when no attached
// policy references the list.
func (a *ImpactAnalyzer) diffPrefixLists(im *Impact, dev string, f0, f1 *netcfg.File) {
	names := map[string]bool{}
	for _, e := range f0.PrefixLists {
		names[e.Name] = true
	}
	for _, e := range f1.PrefixLists {
		names[e.Name] = true
	}
	for name := range names { //acrvet:ordered — marks scope maps, emits nothing
		if !listLive(f0, name) && !listLive(f1, name) {
			continue // referenced by no attached policy in either version
		}
		e0 := encodeEntries(f0.PrefixListEntries(name))
		e1 := encodeEntries(f1.PrefixListEntries(name))
		for k, v := range e0 { //acrvet:ordered — marks scope maps, emits nothing
			if w := e1[k]; w == nil || w.count != v.count {
				a.matchedScope(im, dev, v.entry)
			}
		}
		for k, v := range e1 { //acrvet:ordered — marks scope maps, emits nothing
			if w := e0[k]; w == nil || w.count != v.count {
				a.matchedScope(im, dev, v.entry)
			}
		}
	}
}

// diffDataplane covers constructs the control plane never reads: static
// routes (except their redistribution face), PBR policies, and interface
// addresses / PBR bindings. Changes scope to the edited device's own
// forwarding decisions.
func (a *ImpactAnalyzer) diffDataplane(im *Impact, dev string, f0, f1 *netcfg.File) {
	s0 := staticSet(f0)
	s1 := staticSet(f1)
	redist := func(f *netcfg.File) bool { has, _ := redistOf(f.BGP); return has }
	anyRedist := redist(f0) || redist(f1)
	markStatic := func(s staticKey) {
		im.DataplaneDevices[dev] = true
		if anyRedist {
			// The static originates a BGP route; its change is control-plane
			// visible. (Redistribute-statement changes are diffed above.)
			a.originScope(im, dev, s.prefix)
		}
	}
	for s, c := range s0 { //acrvet:ordered — marks scope maps, emits nothing
		if s1[s] != c {
			markStatic(s)
		}
	}
	for s, c := range s1 { //acrvet:ordered — marks scope maps, emits nothing
		if s0[s] != c {
			markStatic(s)
		}
	}
	if encodePBR(f0) != encodePBR(f1) {
		im.DataplaneDevices[dev] = true
	}
	i0 := ifacesByName(f0)
	i1 := ifacesByName(f1)
	ifKey := func(i *netcfg.Interface) string {
		if i == nil {
			return "-"
		}
		return fmt.Sprintf("%s|%s", i.Addr, i.PBRPolicy)
	}
	for name, a0 := range i0 { //acrvet:ordered — sets flags, emits nothing
		if ifKey(a0) != ifKey(i1[name]) {
			im.DataplaneDevices[dev] = true
		}
	}
	for name, a1 := range i1 { //acrvet:ordered — sets flags, emits nothing
		if i0[name] == nil && ifKey(a1) != ifKey(nil) {
			im.DataplaneDevices[dev] = true
		}
	}
}

// --- semantic accessors and encoders (line numbers excluded) --------------

func asnOf(b *netcfg.BGPBlock) uint32 {
	if b == nil {
		return 0
	}
	return b.ASN
}

func ridOf(b *netcfg.BGPBlock) netip.Addr {
	if b == nil {
		return netip.Addr{}
	}
	return b.RouterID
}

func redistOf(b *netcfg.BGPBlock) (bool, string) {
	if b == nil || b.Redistribute == nil {
		return false, ""
	}
	return true, b.Redistribute.Policy
}

func networkSet(b *netcfg.BGPBlock) map[netip.Prefix]int {
	m := map[netip.Prefix]int{}
	if b == nil {
		return m
	}
	for _, n := range b.Networks {
		if n.Prefix.IsValid() {
			m[n.Prefix]++
		}
	}
	return m
}

func peersByAddr(b *netcfg.BGPBlock) (map[netip.Addr]*netcfg.Peer, bool) {
	m := map[netip.Addr]*netcfg.Peer{}
	dup := false
	for _, p := range b.Peers {
		if m[p.Addr] != nil {
			dup = true
		}
		if m[p.Addr] == nil {
			m[p.Addr] = p
		}
	}
	return m, dup
}

func groupsByName(b *netcfg.BGPBlock) (map[string]*netcfg.PeerGroup, bool) {
	m := map[string]*netcfg.PeerGroup{}
	dup := false
	for _, g := range b.Groups {
		if m[g.Name] != nil {
			dup = true
		}
		if m[g.Name] == nil {
			m[g.Name] = g
		}
	}
	return m, dup
}

func ifacesByName(f *netcfg.File) map[string]*netcfg.Interface {
	m := map[string]*netcfg.Interface{}
	for _, i := range f.Interfaces {
		if m[i.Name] == nil {
			m[i.Name] = i
		}
	}
	return m
}

func eqAttaches(a, b []*netcfg.PolicyAttach) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Policy != b[i].Policy || a[i].Direction != b[i].Direction {
			return false
		}
	}
	return true
}

func encodeAttaches(sb *strings.Builder, as []*netcfg.PolicyAttach) {
	for _, a := range as {
		fmt.Fprintf(sb, "@%s/%s", a.Policy, a.Direction)
	}
}

func encodePeers(b *netcfg.BGPBlock) string {
	var sb strings.Builder
	for _, p := range b.Peers {
		fmt.Fprintf(&sb, "peer %s as %d (decl=%v) group %q", p.Addr, p.ASN, p.ASNLine != 0, p.Group)
		encodeAttaches(&sb, p.Policies)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func encodeGroups(b *netcfg.BGPBlock) string {
	var sb strings.Builder
	for _, g := range b.Groups {
		fmt.Fprintf(&sb, "group %q ext=%v", g.Name, g.External)
		encodeAttaches(&sb, g.Policies)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func eqPolicyNode(a, b *netcfg.RoutePolicy) bool {
	if a.Permit != b.Permit || len(a.Matches) != len(b.Matches) || len(a.Applies) != len(b.Applies) {
		return false
	}
	for i := range a.Matches {
		if a.Matches[i].Kind != b.Matches[i].Kind || a.Matches[i].PrefixList != b.Matches[i].PrefixList {
			return false
		}
	}
	for i := range a.Applies {
		x, y := a.Applies[i], b.Applies[i]
		if x.Kind != y.Kind || x.ASN != y.ASN || x.Count != y.Count || x.Value != y.Value {
			return false
		}
	}
	return true
}

// policyAttached reports whether the named policy is referenced from any
// attach site (peer, group, redistribute) in f.
func policyAttached(f *netcfg.File, name string) bool {
	for _, s := range f.PolicyAttachSites() {
		if s.Policy == name {
			return true
		}
	}
	return false
}

// listLive reports whether the named prefix list is referenced by a match
// clause of any policy that is attached somewhere in f.
func listLive(f *netcfg.File, name string) bool {
	for _, s := range f.PolicyAttachSites() {
		for _, n := range f.PolicyNodes(s.Policy) {
			for _, mc := range n.Matches {
				if mc.Kind == netcfg.MatchIPPrefix && mc.PrefixList == name {
					return true
				}
			}
		}
	}
	return false
}

// entryEnc is the multiset cell for one semantically distinct prefix-list
// entry: its multiplicity plus a representative pointer for Matches
// evaluation (semantically equal entries are interchangeable for that).
type entryEnc struct {
	count int
	entry *netcfg.PrefixList
}

func encodeEntries(es []*netcfg.PrefixList) map[string]*entryEnc {
	m := map[string]*entryEnc{}
	for _, e := range es {
		k := fmt.Sprintf("%d|%v|%s|%d|%d", e.Index, e.Permit, e.Prefix, e.GE, e.LE)
		if m[k] == nil {
			m[k] = &entryEnc{entry: e}
		}
		m[k].count++
	}
	return m
}

type staticKey struct {
	prefix  netip.Prefix
	nextHop netip.Addr
	null0   bool
}

func staticSet(f *netcfg.File) map[staticKey]int {
	m := map[staticKey]int{}
	for _, s := range f.Statics {
		m[staticKey{s.Prefix, s.NextHop, s.Null0}]++
	}
	return m
}

func encodePBR(f *netcfg.File) string {
	var sb strings.Builder
	for _, p := range f.PBRPolicies {
		fmt.Fprintf(&sb, "pbr %q\n", p.Name)
		for _, r := range p.Rules {
			fmt.Fprintf(&sb, " rule %d permit=%v", r.Index, r.Permit)
			if r.MatchSource != nil {
				fmt.Fprintf(&sb, " src=%s", r.MatchSource.Prefix)
			}
			if r.MatchDest != nil {
				fmt.Fprintf(&sb, " dst=%s", r.MatchDest.Prefix)
			}
			if r.MatchProto != nil {
				fmt.Fprintf(&sb, " proto=%s", r.MatchProto.Proto)
			}
			if r.MatchDstPort != nil {
				fmt.Fprintf(&sb, " port=%d", r.MatchDstPort.Port)
			}
			if r.ApplyNextHop != nil {
				fmt.Fprintf(&sb, " nh=%s", r.ApplyNextHop.NextHop)
			}
			if r.ApplyDrop != nil {
				sb.WriteString(" drop")
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
