package conformance

import (
	"testing"

	"acr/internal/analysis"
	"acr/internal/core"
	"acr/internal/errclass"
	"acr/internal/incidents"
	"acr/internal/netcfg"
	"acr/internal/tmplreg"
)

// quick keeps test runs fast: one seed, modest iteration budget.
var quick = Options{Seeds: []int64{1}, MaxIterations: 30}

// TestAllBuiltinsConform is the acceptance gate: every builtin template —
// the nine Table 1 families (11 structs) and the two universal operators —
// passes conformance, and the verdicts land in the registry.
func TestAllBuiltinsConform(t *testing.T) {
	reg := tmplreg.NewBuiltin()
	rep, err := Run(reg, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 13 {
		t.Fatalf("checked %d templates, want 13", len(rep.Results))
	}
	for _, tr := range rep.Results {
		if !tr.Conformant {
			t.Errorf("%s (%s): not conformant: %v %v", tr.Name, tr.Class, tr.Reasons, tr.GenerateErrors)
			continue
		}
		if tr.Class.Table1() && (tr.Attempts == 0 || tr.Repaired == 0) {
			t.Errorf("%s: power check did not run (%d/%d)", tr.Name, tr.Repaired, tr.Attempts)
		}
		e, ok := reg.Lookup(tr.Name)
		if !ok || !e.Conformant {
			t.Errorf("%s: verdict not recorded in registry", tr.Name)
		}
	}
	if rep.RegistryDigest != reg.Digest() {
		t.Error("report does not carry the registry digest")
	}
}

// brokenTemplate emits an edit far past the end of every file — the
// deliberately broken fixture the harness must reject.
type brokenTemplate struct{}

func (brokenTemplate) Name() string               { return "fixture-broken-edit" }
func (brokenTemplate) ErrorClass() errclass.Class { return errclass.MissingPeerGroup }
func (brokenTemplate) Generate(ctx *core.Context, line netcfg.LineRef) []core.Update {
	return []core.Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
			netcfg.DeleteLine{At: 99999},
		}}},
		Desc: "fixture-broken-edit " + line.String(),
	}}
}

// uselessTemplate never generates anything, so it cannot repair its
// declared class.
type uselessTemplate struct{}

func (uselessTemplate) Name() string               { return "fixture-useless" }
func (uselessTemplate) ErrorClass() errclass.Class { return errclass.WrongASNumber }
func (uselessTemplate) Generate(*core.Context, netcfg.LineRef) []core.Update {
	return nil
}

// panickyTemplate panics on any backbone anchor.
type panickyTemplate struct{}

func (panickyTemplate) Name() string               { return "fixture-panicky" }
func (panickyTemplate) ErrorClass() errclass.Class { return errclass.LeftoverRouteMap }
func (panickyTemplate) Generate(ctx *core.Context, line netcfg.LineRef) []core.Update {
	panic("fixture bug at " + line.String())
}

// TestBrokenFixturesRejected: malformed-edit, powerless, and panicking
// templates are all refused admission, each with a reason, while builtins
// in the same registry still pass.
func TestBrokenFixturesRejected(t *testing.T) {
	reg := tmplreg.NewBuiltin()
	for _, f := range []core.Template{brokenTemplate{}, uselessTemplate{}, panickyTemplate{}} {
		err := reg.Register(tmplreg.Meta{
			Name:        f.Name(),
			Description: "deliberately broken conformance fixture",
			Class:       f.ErrorClass(),
			UseCase:     "harness rejection test",
			Version:     "0.0.1",
			Provenance:  tmplreg.Operator,
		}, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Run(reg, Options{
		Seeds:         quick.Seeds,
		MaxIterations: quick.MaxIterations,
		Names:         []string{"fixture-broken-edit", "fixture-useless", "fixture-panicky", "fix-peer-asn"},
	})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]TemplateResult{}
	for _, tr := range rep.Results {
		verdicts[tr.Name] = tr
	}
	if tr := verdicts["fixture-broken-edit"]; tr.Conformant || len(tr.GenerateErrors) == 0 {
		t.Errorf("broken-edit fixture admitted: %+v", tr)
	}
	if tr := verdicts["fixture-useless"]; tr.Conformant || tr.Repaired != 0 || len(tr.Reasons) == 0 {
		t.Errorf("useless fixture admitted: %+v", tr)
	}
	if tr := verdicts["fixture-panicky"]; tr.Conformant || len(tr.GenerateErrors) == 0 {
		t.Errorf("panicky fixture admitted: %+v", tr)
	}
	if tr := verdicts["fix-peer-asn"]; !tr.Conformant {
		t.Errorf("builtin rejected alongside fixtures: %+v", tr)
	}
	if e, _ := reg.Lookup("fixture-broken-edit"); e.Conformant {
		t.Error("rejection not recorded in registry")
	}
	got := rep.Rejected()
	if len(got) != 3 {
		t.Errorf("Rejected() = %v", got)
	}
}

// TestRunUnknownName: restricting to an unregistered template is an error,
// not a silent skip.
func TestRunUnknownName(t *testing.T) {
	if _, err := Run(tmplreg.NewBuiltin(), Options{Names: []string{"no-such"}}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestEveryClassFullyCovered is the Table 1 closure cross-check: each of
// the paper's nine error classes has at least one static analyzer, at
// least one incident injector, and at least one conformant change
// template. A class missing any leg would silently degrade the
// localize–fix–validate loop.
func TestEveryClassFullyCovered(t *testing.T) {
	reg := tmplreg.NewBuiltin()
	rep, err := Run(reg, quick)
	if err != nil {
		t.Fatal(err)
	}
	conformant := map[errclass.Class]int{}
	for _, tr := range rep.Results {
		if tr.Conformant {
			conformant[tr.Class]++
		}
	}
	analyzers := map[errclass.Class]int{}
	for _, a := range analysis.Analyzers() {
		if a.Class != "" {
			analyzers[a.Class]++
		}
	}
	for _, class := range errclass.All() {
		if analyzers[class] == 0 {
			t.Errorf("%s: no static analyzer declares this class", class)
		}
		if _, ok := incidents.ByClass(class); !ok {
			t.Errorf("%s: no incident injector for this class", class)
		}
		if conformant[class] == 0 {
			t.Errorf("%s: no conformant template repairs this class", class)
		}
	}
}
