// Package conformance is the template admission harness: before a change
// template may sit in the registry as trusted, it must prove, on synthetic
// incidents of its own declared error class, that it can drive fitness to
// zero — and prove it does no harm on clean substrates. The harness is
// what keeps the registry honest as mined and operator templates join the
// builtin library: a template that cannot repair its class, or whose
// generator emits edits that do not even apply, is rejected with a
// recorded reason.
//
// Two checks per template:
//
//  1. Repair power. For every fault-shape variant of the template's class
//     (incidents.InjectVariant) and every harness seed, the engine runs
//     with ONLY this template. The template passes when at least one
//     visible incident is driven to fitness zero. Universal pseudo-class
//     operators have no injector, so the power check is vacuous for them
//     and admission rests on the clean checks.
//
//  2. Clean hands. On clean WAN and DCN substrates the engine (again with
//     only this template) must terminate feasible with configurations
//     unchanged; and a Generate sweep over every line of both substrates
//     must neither panic nor emit an edit set that fails to apply.
package conformance

import (
	"fmt"
	"math/rand"
	"sort"

	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/errclass"
	"acr/internal/incidents"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/tmplreg"
	"acr/internal/verify"
)

// Options tunes a conformance run.
type Options struct {
	// Seeds are the engine seeds tried per fault variant (default {1, 2}).
	Seeds []int64
	// MaxIterations bounds each single-template repair run (default 30).
	MaxIterations int
	// Names restricts the run to specific templates (default: all
	// registered).
	Names []string
	// Corpus sizes the incident substrates (zero values take the corpus
	// defaults: WAN 6/4/3, fat-tree k=4).
	Corpus incidents.CorpusOptions
}

func (o Options) withDefaults() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2}
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 30
	}
	return o
}

// TemplateResult is one template's conformance verdict.
type TemplateResult struct {
	Name       string             `json:"name"`
	Class      errclass.Class     `json:"class"`
	Provenance tmplreg.Provenance `json:"provenance"`
	// Attempts and Repaired count the power check's visible incident runs
	// and how many reached fitness zero (both zero for universal
	// pseudo-class operators).
	Attempts int `json:"attempts"`
	Repaired int `json:"repaired"`
	// CleanOK reports the clean-hands check passed; GenerateErrors lists
	// sweep failures (panics, inapplicable edits), capped at 5.
	CleanOK        bool     `json:"cleanOK"`
	GenerateErrors []string `json:"generateErrors,omitempty"`
	// Conformant is the admission verdict; Reasons explains a rejection.
	Conformant bool     `json:"conformant"`
	Reasons    []string `json:"reasons,omitempty"`
}

// Report is a full conformance run.
type Report struct {
	RegistryDigest string           `json:"registryDigest"`
	Results        []TemplateResult `json:"results"`
}

// Rejected returns the names of non-conformant templates, sorted.
func (r *Report) Rejected() []string {
	var out []string
	for _, tr := range r.Results {
		if !tr.Conformant {
			out = append(out, tr.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Run checks every selected template in the registry and records each
// verdict back into it via SetConformant. Results are ordered by template
// name.
func Run(reg *tmplreg.Registry, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	entries := reg.List()
	if len(opts.Names) > 0 {
		want := map[string]bool{}
		for _, n := range opts.Names {
			want[n] = true
		}
		var kept []tmplreg.Entry
		for _, e := range entries {
			if want[e.Name] {
				kept = append(kept, e)
				delete(want, e.Name)
			}
		}
		if len(want) > 0 {
			for n := range want { //acrvet:ordered
				return nil, fmt.Errorf("conformance: unknown template %q", n)
			}
		}
		entries = kept
	}

	sub := newSubstrates(opts)
	rep := &Report{RegistryDigest: reg.Digest()}
	for _, e := range entries {
		tr := checkTemplate(e, sub, opts)
		reg.SetConformant(e.Name, tr.Conformant)
		rep.Results = append(rep.Results, tr)
	}
	return rep, nil
}

// substrates caches the clean networks every template is swept over.
type substrates struct {
	wan, dcn *scenario.Scenario
}

func newSubstrates(opts Options) *substrates {
	c := opts.Corpus
	if c.WANRouters == 0 {
		c.WANRouters = 6
	}
	if c.WANPoPs == 0 {
		c.WANPoPs = 4
	}
	if c.WANDCNs == 0 {
		c.WANDCNs = 3
	}
	if c.FatTreeK == 0 {
		c.FatTreeK = 4
	}
	return &substrates{
		wan: scenario.WAN(c.WANRouters, c.WANPoPs, c.WANDCNs,
			scenario.GenOptions{StaticOriginEvery: 2, FullIsolation: true}),
		dcn: scenario.DCN(c.FatTreeK, scenario.GenOptions{WithScrubber: true, StaticOriginEvery: 3}),
	}
}

func checkTemplate(e tmplreg.Entry, sub *substrates, opts Options) TemplateResult {
	tr := TemplateResult{Name: e.Name, Class: e.Class, Provenance: e.Provenance}
	tmpl := e.Described()

	// Power: repair incidents of the declared class with this template
	// alone. Each (variant, seed) pair injects with its own deterministic
	// rng so runs are independent and reproducible.
	if ic, ok := incidents.ByClass(e.Class); ok {
		for v := 0; v < incidents.Variants(ic); v++ {
			for _, seed := range opts.Seeds {
				inc, err := incidents.InjectVariant(ic, v, opts.Corpus, rand.New(rand.NewSource(seed)))
				if err != nil || !incidents.Visible(inc) {
					continue
				}
				tr.Attempts++
				res := core.Repair(core.Problem{
					Topo:    inc.Scenario.Topo,
					Configs: inc.Scenario.Configs,
					Intents: inc.Scenario.Intents,
				}, core.Options{
					Templates:     []core.Template{tmpl},
					MaxIterations: opts.MaxIterations,
					Seed:          seed,
				})
				if res.Feasible {
					tr.Repaired++
				}
			}
		}
		if tr.Attempts == 0 {
			tr.Reasons = append(tr.Reasons, "no visible incident of class "+string(e.Class)+" could be injected")
		} else if tr.Repaired == 0 {
			tr.Reasons = append(tr.Reasons,
				fmt.Sprintf("cannot drive fitness to zero on its own class (%d incidents attempted)", tr.Attempts))
		}
	} else if e.Class.Table1() {
		tr.Reasons = append(tr.Reasons, "declared class has no injector: "+string(e.Class))
	}

	// Clean hands, part 1: the engine on a clean substrate must come back
	// feasible with configurations untouched.
	tr.CleanOK = true
	for _, s := range []*scenario.Scenario{sub.wan, sub.dcn} {
		res := core.Repair(core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents},
			core.Options{Templates: []core.Template{tmpl}, MaxIterations: 2, Seed: opts.Seeds[0]})
		if !res.Feasible || len(res.Applied) != 0 {
			tr.CleanOK = false
			tr.Reasons = append(tr.Reasons, "regresses a clean substrate: "+res.Summary())
		}
	}

	// Clean hands, part 2: sweep Generate over every line of both clean
	// substrates; candidates must be well-formed even where the template
	// does not logically apply.
	for _, s := range []*scenario.Scenario{sub.wan, sub.dcn} {
		errs := sweepGenerate(tmpl, s)
		tr.GenerateErrors = append(tr.GenerateErrors, errs...)
	}
	if len(tr.GenerateErrors) > 0 {
		tr.CleanOK = false
		tr.Reasons = append(tr.Reasons, fmt.Sprintf("%d malformed candidate(s) in the clean sweep", len(tr.GenerateErrors)))
		if len(tr.GenerateErrors) > 5 {
			tr.GenerateErrors = tr.GenerateErrors[:5]
		}
	}

	tr.Conformant = tr.CleanOK && (tr.Attempts == 0 || tr.Repaired > 0) && len(tr.Reasons) == 0
	return tr
}

// sweepGenerate anchors the template at every line of every device of a
// clean scenario and checks each emitted candidate applies cleanly.
func sweepGenerate(tmpl core.Template, s *scenario.Scenario) (errs []string) {
	p := core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	ctx := core.NewContext(p, iv, sbfl.Tarantula, rand.New(rand.NewSource(1)))
	for _, nd := range s.Topo.Nodes() {
		cfg := s.Configs[nd.Name]
		if cfg == nil {
			continue
		}
		for line := 1; line <= cfg.NumLines(); line++ {
			ref := netcfg.LineRef{Device: nd.Name, Line: line}
			for _, up := range safeGenerate(tmpl, ctx, ref, &errs) {
				for _, es := range up.Edits {
					base := s.Configs[es.Device]
					if base == nil {
						errs = append(errs, fmt.Sprintf("%s: edit targets unknown device %s", ref, es.Device))
						continue
					}
					if _, err := es.Apply(base); err != nil {
						errs = append(errs, fmt.Sprintf("%s: inapplicable edit: %v", ref, err))
					}
				}
			}
		}
	}
	return errs
}

// safeGenerate shields the sweep from template panics.
func safeGenerate(tmpl core.Template, ctx *core.Context, ref netcfg.LineRef, errs *[]string) (ups []core.Update) {
	defer func() {
		if r := recover(); r != nil {
			*errs = append(*errs, fmt.Sprintf("%s: generate panicked: %v", ref, r))
			ups = nil
		}
	}()
	return tmpl.Generate(ctx, ref)
}
