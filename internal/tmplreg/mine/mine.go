// Package mine learns candidate change templates from historical
// configuration diffs. Given before/after pairs of real repairs, it runs
// the semantic AST diff (analysis.SemanticDiff), looks for recurring fact
// shapes — "a redistribute statement appeared on a device that had
// orphaned statics", "a peer's remote AS was corrected" — and generalizes
// each recurring shape into a parameterized edit pattern: an anchor role
// set, a guard re-deriving the pattern's observed precondition, and a line
// skeleton whose holes are solved against the live repair context (the
// integer holes by the constraint solver in internal/smt).
//
// Mined candidates carry provenance "mined" and are NOT trusted: Admit
// registers them and runs the conformance harness, and only templates that
// repair their declared class without harming clean substrates come back
// admitted. The engine then opts in per run via Registry.Resolve — mined
// templates never join the default library implicitly.
package mine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"acr/internal/analysis"
	"acr/internal/core"
	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/tmplreg"
	"acr/internal/tmplreg/conformance"
)

// Pair is one historical repair: the configuration set before the human
// fix and after it.
type Pair struct {
	Name   string
	Before map[string]*netcfg.Config
	After  map[string]*netcfg.Config
}

// Options tunes a mining run.
type Options struct {
	// MinSupport is the number of pairs that must exhibit a fact shape
	// before it is generalized (default 1 — a single well-curated example
	// mines a candidate; conformance is the real gate).
	MinSupport int
}

// Candidate is one mined template proposal.
type Candidate struct {
	Meta     tmplreg.Meta
	Support  int      // pairs exhibiting the pattern
	Evidence []string // names of those pairs, sorted

	tmpl core.Template
}

// Template returns the candidate's change operator.
func (c Candidate) Template() core.Template { return c.tmpl }

// LoadDir reads a fixture corpus of historical diffs laid out as
// <dir>/<pair>/{before,after}/<device>.cfg.
func LoadDir(dir string) ([]Pair, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pairs []Pair
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		p := Pair{Name: ent.Name()}
		for _, side := range []struct {
			name string
			dst  *map[string]*netcfg.Config
		}{{"before", &p.Before}, {"after", &p.After}} {
			cfgs, err := loadConfigs(filepath.Join(dir, ent.Name(), side.name))
			if err != nil {
				return nil, fmt.Errorf("mine: pair %s: %w", ent.Name(), err)
			}
			*side.dst = cfgs
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return pairs, nil
}

func loadConfigs(dir string) (map[string]*netcfg.Config, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string]*netcfg.Config{}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".cfg") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		device := strings.TrimSuffix(ent.Name(), ".cfg")
		out[device] = netcfg.NewConfig(device, string(text))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no .cfg files in %s", dir)
	}
	return out, nil
}

// Mine diffs every pair and generalizes recurring fact shapes into
// candidate templates, sorted by name. A generalizer only fires when the
// observed before-state satisfies the precondition its template will guard
// on — the pattern must be learnable from the evidence, not assumed.
func Mine(pairs []Pair, opts Options) ([]Candidate, error) {
	if opts.MinSupport <= 0 {
		opts.MinSupport = 1
	}
	support := map[string][]string{} // generalizer name -> supporting pair names
	for _, p := range pairs {
		before, err := parseSet(p.Before)
		if err != nil {
			return nil, fmt.Errorf("mine: pair %s before: %w", p.Name, err)
		}
		after, err := parseSet(p.After)
		if err != nil {
			return nil, fmt.Errorf("mine: pair %s after: %w", p.Name, err)
		}
		facts := analysis.SemanticDiff(before, after)
		for _, g := range generalizers {
			if g.supports(before, after, facts) {
				support[g.name] = append(support[g.name], p.Name)
			}
		}
	}
	var out []Candidate
	for _, g := range generalizers {
		ev := support[g.name]
		if len(ev) < opts.MinSupport {
			continue
		}
		sort.Strings(ev)
		out = append(out, Candidate{
			Meta: tmplreg.Meta{
				Name:        g.name,
				Description: g.description,
				Class:       g.class,
				UseCase:     fmt.Sprintf("mined from %d historical diff(s): %s", len(ev), strings.Join(ev, ", ")),
				Version:     "0.1.0",
				Provenance:  tmplreg.Mined,
			},
			Support:  len(ev),
			Evidence: ev,
			tmpl:     g.build(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.Name < out[j].Meta.Name })
	return out, nil
}

func parseSet(cfgs map[string]*netcfg.Config) (map[string]*netcfg.File, error) {
	out := map[string]*netcfg.File{}
	for dev, c := range cfgs { //acrvet:ordered — map rebuild, order-free
		f, err := netcfg.Parse(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dev, err)
		}
		out[dev] = f
	}
	return out, nil
}

// Admit registers the candidates into reg and runs the conformance harness
// over exactly them. It returns the names admitted (conformant, recorded in
// the registry) plus the full report. Non-conformant candidates stay
// registered with Conformant=false so their rejection is auditable; callers
// select templates through Resolve by admitted name, so rejected ones are
// never handed to the engine.
func Admit(reg *tmplreg.Registry, cands []Candidate, opts conformance.Options) ([]string, *conformance.Report, error) {
	if len(cands) == 0 {
		return nil, &conformance.Report{}, nil
	}
	names := make([]string, 0, len(cands))
	for _, c := range cands {
		if err := reg.Register(c.Meta, c.tmpl); err != nil {
			return nil, nil, err
		}
		names = append(names, c.Meta.Name)
	}
	opts.Names = names
	rep, err := conformance.Run(reg, opts)
	if err != nil {
		return nil, nil, err
	}
	var admitted []string
	for _, tr := range rep.Results {
		if tr.Conformant {
			admitted = append(admitted, tr.Name)
		}
	}
	sort.Strings(admitted)
	return admitted, rep, nil
}

// generalizer maps one recurring fact shape to a parameterized template.
type generalizer struct {
	name        string
	description string
	class       errclass.Class
	// supports reports whether this pair evidences the pattern AND its
	// before-state satisfies the precondition the template will guard on.
	supports func(before, after map[string]*netcfg.File, facts []analysis.Fact) bool
	// build constructs the generalized template.
	build func() core.Template
}

// generalizers is the pattern vocabulary the miner can learn, keyed by the
// semantic fact each one recognizes. Adding a fact kind to
// analysis.SemanticDiff plus an entry here teaches the miner a new family.
var generalizers = []generalizer{
	{
		name:        "mined-add-redistribute-static",
		description: "insert `redistribute static` into a bgp block whose statics are stranded without redistribution",
		class:       errclass.MissingRedistribution,
		supports: func(before, _ map[string]*netcfg.File, facts []analysis.Fact) bool {
			for _, fa := range facts {
				if fa.Kind != analysis.FactRedistributeAdded {
					continue
				}
				// Learnable only if the before-state shows the guard's
				// shape: a bgp block with statics and no redistribution.
				if f := before[fa.Device]; f != nil && f.BGP != nil && f.BGP.Redistribute == nil && len(f.Statics) > 0 {
					return true
				}
			}
			return false
		},
		build: func() core.Template {
			return &Pattern{
				PatternName:  "mined-add-redistribute-static",
				Class:        errclass.MissingRedistribution,
				AnchorRoles:  []core.LineRole{core.RoleStaticRoute, core.RoleBGPHeader},
				Guard:        guardStrandedStatics,
				LineSkeleton: " redistribute static",
				Placement:    placeBGPBlockEnd,
			}
		},
	},
	{
		name:        "mined-fix-peer-asn",
		description: "rewrite a failed session's remote AS with the solver-derived value the session constraint admits",
		class:       errclass.WrongASNumber,
		supports: func(before, after map[string]*netcfg.File, facts []analysis.Fact) bool {
			for _, fa := range facts {
				if fa.Kind == analysis.FactPeerASNChanged && fa.OldASN != fa.NewASN {
					return true
				}
			}
			return false
		},
		build: func() core.Template {
			return &Pattern{
				PatternName:  "mined-fix-peer-asn",
				Class:        errclass.WrongASNumber,
				AnchorRoles:  []core.LineRole{core.RolePeerASN},
				Guard:        guardFailedSession,
				LineSkeleton: " peer {addr} as-number {asn}",
				Holes: []Hole{
					{Name: "addr", Solve: solvePeerAddr},
					{Name: "asn", Solve: solveSessionASN},
				},
				Placement: placeReplaceAnchor,
			}
		},
	},
}
