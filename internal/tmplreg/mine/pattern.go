package mine

import (
	"fmt"
	"strings"

	"acr/internal/core"
	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/smt"
)

// Pattern is a mined change template: a generalized edit learned from
// historical diffs, represented as data rather than code. At Generate time
// the pattern checks its anchor role and guard, solves every hole against
// the live context, substitutes the solutions into the line skeleton, and
// places the resulting line. A hole that cannot be solved (no model, no
// evidence in the context) vetoes the candidate — a mined pattern never
// guesses.
type Pattern struct {
	PatternName string
	Class       errclass.Class
	// AnchorRoles are the line roles the pattern activates on.
	AnchorRoles []core.LineRole
	// Guard re-derives the precondition observed in the mining evidence.
	Guard func(ctx *core.Context, line netcfg.LineRef) bool
	// LineSkeleton is the learned line with {hole} placeholders.
	LineSkeleton string
	// Holes are solved in order; every solution substitutes {name}.
	Holes []Hole
	// Placement turns the instantiated line into a concrete edit.
	Placement func(ctx *core.Context, line netcfg.LineRef, text string) []netcfg.Edit
}

// Hole is one solved parameter of a pattern skeleton.
type Hole struct {
	Name string
	// Solve derives the hole's value from the live context; ok=false
	// vetoes the whole candidate.
	Solve func(ctx *core.Context, line netcfg.LineRef) (string, bool)
}

// Name implements core.Template.
func (p *Pattern) Name() string { return p.PatternName }

// ErrorClass implements core.Template.
func (p *Pattern) ErrorClass() errclass.Class { return p.Class }

// Generate implements core.Template.
func (p *Pattern) Generate(ctx *core.Context, line netcfg.LineRef) []core.Update {
	f := ctx.Files[line.Device]
	if f == nil {
		return nil
	}
	role := core.Classify(f, line.Line)
	anchored := false
	for _, r := range p.AnchorRoles {
		if role == r {
			anchored = true
			break
		}
	}
	if !anchored {
		return nil
	}
	if p.Guard != nil && !p.Guard(ctx, line) {
		return nil
	}
	text := p.LineSkeleton
	for _, h := range p.Holes {
		v, ok := h.Solve(ctx, line)
		if !ok {
			return nil
		}
		text = strings.ReplaceAll(text, "{"+h.Name+"}", v)
	}
	edits := p.Placement(ctx, line, text)
	if len(edits) == 0 {
		return nil
	}
	return []core.Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: edits}},
		Desc:  fmt.Sprintf("%s at %s", p.PatternName, line),
	}}
}

// --- guards -----------------------------------------------------------------

// guardStrandedStatics: the device has a bgp block, statics, no
// redistribution, and a failing test whose destination one of the statics
// covers — the precondition observed in every supporting diff.
func guardStrandedStatics(ctx *core.Context, line netcfg.LineRef) bool {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil || f.BGP.Redistribute != nil || len(f.Statics) == 0 {
		return false
	}
	for _, v := range ctx.FailingVerdicts() {
		if !v.Intent.DstPrefix.IsValid() {
			continue
		}
		for _, s := range f.Statics {
			if s.Prefix.IsValid() && s.Prefix.Overlaps(v.Intent.DstPrefix) {
				return true
			}
		}
	}
	return false
}

// guardFailedSession: the anchor is the as-number line of a session the
// simulation reports failed.
func guardFailedSession(ctx *core.Context, line netcfg.LineRef) bool {
	pe := peerAtLine(ctx, line)
	if pe == nil {
		return false
	}
	for _, fs := range ctx.Net.Failed {
		if fs.Router == line.Device && fs.PeerAddr == pe.Addr {
			return true
		}
	}
	return false
}

// --- hole solvers -----------------------------------------------------------

func peerAtLine(ctx *core.Context, line netcfg.LineRef) *netcfg.Peer {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil {
		return nil
	}
	for _, pe := range f.BGP.Peers {
		if pe.ASNLine == line.Line {
			return pe
		}
	}
	return nil
}

// solvePeerAddr fills {addr} with the anchor stanza's peer address.
func solvePeerAddr(ctx *core.Context, line netcfg.LineRef) (string, bool) {
	pe := peerAtLine(ctx, line)
	if pe == nil {
		return "", false
	}
	return pe.Addr.String(), true
}

// solveSessionASN fills {asn} by constraint solving: the only value under
// which the session can establish is the neighbor's actual AS, so the hole
// is an smt integer variable constrained to it. No model (unknown
// neighbor, or the configured value already satisfies the constraint)
// vetoes the candidate.
func solveSessionASN(ctx *core.Context, line netcfg.LineRef) (string, bool) {
	pe := peerAtLine(ctx, line)
	if pe == nil {
		return "", false
	}
	var neighborASN uint32
	for _, adj := range ctx.Topo.Adjacencies(line.Device) {
		if adj.PeerAddr == pe.Addr {
			if nf := ctx.Files[adj.PeerNode]; nf != nil && nf.BGP != nil {
				neighborASN = nf.BGP.ASN
			}
		}
	}
	if neighborASN == 0 || neighborASN == pe.ASN {
		return "", false
	}
	v := smt.IntVar("asn")
	prob := smt.NewProblem()
	prob.IntDomain(v, neighborASN)
	model, ok := prob.Solve(smt.EqInt(v, neighborASN))
	if !ok {
		return "", false
	}
	asn, ok := model.Int("asn")
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%d", asn), true
}

// --- placements -------------------------------------------------------------

// placeBGPBlockEnd inserts the line as the last statement of the device's
// bgp block.
func placeBGPBlockEnd(ctx *core.Context, line netcfg.LineRef, text string) []netcfg.Edit {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil {
		return nil
	}
	return []netcfg.Edit{netcfg.InsertBefore{At: f.BGP.End + 1, Text: text}}
}

// placeReplaceAnchor rewrites the anchor line itself.
func placeReplaceAnchor(_ *core.Context, line netcfg.LineRef, text string) []netcfg.Edit {
	return []netcfg.Edit{netcfg.ReplaceLine{At: line.Line, Text: text}}
}
