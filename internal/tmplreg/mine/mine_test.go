package mine

import (
	"math/rand"
	"strings"
	"testing"

	"acr/internal/core"
	"acr/internal/incidents"
	"acr/internal/netcfg"
	"acr/internal/tmplreg"
	"acr/internal/tmplreg/conformance"
)

var quick = conformance.Options{Seeds: []int64{1}, MaxIterations: 30}

// TestLoadDirAndMine: the held-out fixture corpus mines both pattern
// families, each with the right class, provenance, and evidence trail.
func TestLoadDirAndMine(t *testing.T) {
	pairs, err := LoadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("loaded %d pairs, want 2", len(pairs))
	}
	cands, err := Mine(pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("mined %d candidates, want 2: %+v", len(cands), cands)
	}
	byName := map[string]Candidate{}
	for _, c := range cands {
		byName[c.Meta.Name] = c
		if c.Meta.Provenance != tmplreg.Mined {
			t.Errorf("%s: provenance %q, want mined", c.Meta.Name, c.Meta.Provenance)
		}
		if c.Meta.Version == "" || c.Meta.Description == "" {
			t.Errorf("%s: incomplete descriptor: %+v", c.Meta.Name, c.Meta)
		}
		if c.Template() == nil || c.Template().Name() != c.Meta.Name {
			t.Errorf("%s: template/descriptor mismatch", c.Meta.Name)
		}
	}
	if c := byName["mined-add-redistribute-static"]; c.Support != 1 || len(c.Evidence) != 1 || c.Evidence[0] != "missing-redistribution" {
		t.Errorf("redistribute candidate evidence = %+v", c)
	}
	if c := byName["mined-fix-peer-asn"]; c.Support != 1 || c.Evidence[0] != "wrong-asn" {
		t.Errorf("asn candidate evidence = %+v", c)
	}
}

// TestMineRequiresEvidence: a diff that adds redistribution to a device
// with no statics does not support the stranded-statics pattern — the
// precondition must be learnable from the before-state, not assumed.
func TestMineRequiresEvidence(t *testing.T) {
	pair := Pair{
		Name: "no-statics",
		Before: map[string]*netcfg.Config{
			"r1": netcfg.NewConfig("r1", "bgp 65001\n peer 10.0.0.2 as-number 65002"),
		},
		After: map[string]*netcfg.Config{
			"r1": netcfg.NewConfig("r1", "bgp 65001\n redistribute static\n peer 10.0.0.2 as-number 65002"),
		},
	}
	cands, err := Mine([]Pair{pair}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Meta.Name == "mined-add-redistribute-static" {
			t.Errorf("pattern mined without its precondition in evidence: %+v", c)
		}
	}
}

// TestMinedTemplatesAdmitted: both mined candidates clear the conformance
// harness, land in the registry as conformant, and shift the registry
// digest (mined entries are part of the content address).
func TestMinedTemplatesAdmitted(t *testing.T) {
	pairs, err := LoadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Mine(pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := tmplreg.NewBuiltin()
	base := reg.Digest()
	admitted, rep, err := Admit(reg, cands, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 2 {
		t.Fatalf("admitted %v (report %+v)", admitted, rep.Results)
	}
	for _, name := range admitted {
		e, ok := reg.Lookup(name)
		if !ok || !e.Conformant || e.Provenance != tmplreg.Mined {
			t.Errorf("%s: registry entry %+v", name, e)
		}
	}
	if reg.Digest() == base {
		t.Error("registry digest unchanged by mined admissions")
	}
	// Mined templates must not leak into the default engine library.
	for _, tm := range reg.EngineTemplates() {
		if strings.HasPrefix(tm.Name(), "mined-") {
			t.Errorf("mined template %s in default engine set", tm.Name())
		}
	}
}

// TestAdmitRejectsBrokenCandidate: a mined candidate that cannot repair
// its class is registered but not admitted.
func TestAdmitRejectsBrokenCandidate(t *testing.T) {
	reg := tmplreg.NewBuiltin()
	dud := Candidate{
		Meta: tmplreg.Meta{
			Name:        "mined-dud",
			Description: "pattern with an unsatisfiable guard",
			Class:       "Missing redistribution of static route",
			UseCase:     "rejection test",
			Version:     "0.1.0",
			Provenance:  tmplreg.Mined,
		},
		tmpl: &Pattern{
			PatternName: "mined-dud",
			Class:       "Missing redistribution of static route",
			AnchorRoles: []core.LineRole{core.RoleStaticRoute},
			Guard:       func(*core.Context, netcfg.LineRef) bool { return false },
			Placement:   placeBGPBlockEnd,
		},
	}
	admitted, rep, err := Admit(reg, []Candidate{dud}, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 0 {
		t.Fatalf("dud admitted: %v", admitted)
	}
	if got := rep.Rejected(); len(got) != 1 || got[0] != "mined-dud" {
		t.Errorf("Rejected() = %v", got)
	}
	if e, ok := reg.Lookup("mined-dud"); !ok || e.Conformant {
		t.Errorf("rejection not recorded: %+v", e)
	}
}

// TestMinedTemplateRepairsEndToEnd is the acceptance check: mine the
// held-out missing-redistribution diff, admit the candidate, resolve it
// from the registry, and let the engine repair a fresh incident of that
// class using ONLY the mined template.
func TestMinedTemplateRepairsEndToEnd(t *testing.T) {
	pairs, err := LoadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Mine(pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := tmplreg.NewBuiltin()
	admitted, _, err := Admit(reg, cands, quick)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range admitted {
		found = found || n == "mined-add-redistribute-static"
	}
	if !found {
		t.Fatalf("held-out fixture did not yield an admitted redistribution template: %v", admitted)
	}

	tmpls, err := reg.Resolve("mined-add-redistribute-static")
	if err != nil {
		t.Fatal(err)
	}
	ic, ok := incidents.ByClass("Missing redistribution of static route")
	if !ok {
		t.Fatal("no injector for the mined class")
	}
	inc, err := incidents.InjectVariant(ic, 0, incidents.CorpusOptions{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !incidents.Visible(inc) {
		t.Fatal("injected incident not visible")
	}
	res := core.Repair(core.Problem{
		Topo:    inc.Scenario.Topo,
		Configs: inc.Scenario.Configs,
		Intents: inc.Scenario.Intents,
	}, core.Options{Templates: tmpls, MaxIterations: 30, Seed: 3})
	if !res.Feasible {
		t.Fatalf("mined template failed to repair: %s", res.Termination)
	}
	if len(res.Applied) == 0 || !strings.Contains(strings.Join(res.Applied, "\n"), "mined-add-redistribute-static") {
		t.Errorf("repair not attributed to the mined template: %v", res.Applied)
	}
	repaired := false
	for _, cfg := range res.FinalConfigs { //acrvet:ordered — existence check
		f := netcfg.MustParse(cfg)
		if f.BGP != nil && f.BGP.Redistribute != nil {
			repaired = true
		}
	}
	if !repaired {
		t.Error("no repaired device carries the mined redistribute statement")
	}
}
