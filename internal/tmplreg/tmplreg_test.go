package tmplreg

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/verify"
)

// TestEngineTemplatesMatchBuiltinOrder: registry resolution must be
// trajectory-identical to the pre-registry engine — same templates, same
// order, same names, same classes.
func TestEngineTemplatesMatchBuiltinOrder(t *testing.T) {
	got := Default.EngineTemplates()
	want := core.BuiltinTemplates()
	if len(got) != len(want) {
		t.Fatalf("EngineTemplates has %d templates, builtins %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name() != want[i].Name() {
			t.Errorf("position %d: %q != builtin %q", i, got[i].Name(), want[i].Name())
		}
		if got[i].ErrorClass() != want[i].ErrorClass() {
			t.Errorf("%s: class %q != builtin %q", got[i].Name(), got[i].ErrorClass(), want[i].ErrorClass())
		}
		if _, ok := got[i].(core.DescribedTemplate); !ok {
			t.Errorf("%s: registry-resolved template is not a DescribedTemplate", got[i].Name())
		}
	}
}

// TestRegistryResolvedRepairIsByteIdentical: a repair run with registry
// resolution produces the exact Canonical bytes of a run on the raw
// builtin structs.
func TestRegistryResolvedRepairIsByteIdentical(t *testing.T) {
	s := scenario.Figure2()
	p := core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
	raw := core.Repair(p, core.Options{Seed: 1, Templates: core.BuiltinTemplates()})
	reg := core.Repair(p, core.Options{Seed: 1, Templates: Default.EngineTemplates()})
	if raw.Canonical() != reg.Canonical() {
		t.Fatalf("registry resolution changed the repair trajectory:\nraw: %s\nreg: %s", raw.Summary(), reg.Summary())
	}
}

// TestSearchDigestFoldsDescriptors: the registry-resolved library yields a
// different SearchDigest than the bare structs (descriptor digests are in
// the fingerprint), and changing any descriptor field changes it again.
func TestSearchDigestFoldsDescriptors(t *testing.T) {
	base := core.Options{Seed: 1, Templates: core.BuiltinTemplates()}.SearchDigest()
	regd := core.Options{Seed: 1, Templates: Default.EngineTemplates()}.SearchDigest()
	if base == regd {
		t.Fatal("descriptor digests not folded into SearchDigest")
	}

	// Same code, bumped version → different digest.
	r2 := New()
	for _, e := range Default.List() {
		m := e.Meta
		if m.Name == "fix-peer-asn" {
			m.Version = "1.0.1"
		}
		if err := r2.Register(m, e.Template()); err != nil {
			t.Fatal(err)
		}
	}
	bumped := core.Options{Seed: 1, Templates: r2.EngineTemplates()}.SearchDigest()
	if bumped == regd {
		t.Fatal("version bump did not change SearchDigest")
	}
}

// TestRegisterValidation: descriptors that disagree with the template, or
// collide, are rejected.
func TestRegisterValidation(t *testing.T) {
	r := New()
	tmpl := core.FixPeerASN{}
	good := Meta{Name: tmpl.Name(), Description: "d", Class: tmpl.ErrorClass(),
		UseCase: "u", Version: "1", Provenance: Operator}
	if err := r.Register(good, tmpl); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	cases := []struct {
		name string
		m    Meta
	}{
		{"duplicate", good},
		{"wrong name", Meta{Name: "other", Description: "d", Class: tmpl.ErrorClass(), UseCase: "u", Version: "1", Provenance: Operator}},
		{"wrong class", Meta{Name: tmpl.Name(), Description: "d", Class: errclass.MissingPeerGroup, UseCase: "u", Version: "1", Provenance: Operator}},
		{"no description", Meta{Name: tmpl.Name(), Class: tmpl.ErrorClass(), UseCase: "u", Version: "1", Provenance: Operator}},
		{"no version", Meta{Name: tmpl.Name(), Description: "d", Class: tmpl.ErrorClass(), UseCase: "u", Provenance: Operator}},
		{"bad provenance", Meta{Name: tmpl.Name(), Description: "d", Class: tmpl.ErrorClass(), UseCase: "u", Version: "1", Provenance: "wild"}},
	}
	for _, c := range cases {
		if err := r.Register(c.m, tmpl); err == nil {
			t.Errorf("%s: registration accepted", c.name)
		}
	}
	if err := r.Register(good, nil); err == nil {
		t.Error("nil template accepted")
	}
}

// TestListSortedAndLookup: List is name-sorted regardless of registration
// order; Lookup and Resolve find entries; Resolve errors on unknowns.
func TestListSortedAndLookup(t *testing.T) {
	list := Default.List()
	if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].Name < list[j].Name }) {
		t.Error("List not sorted by name")
	}
	if len(list) != 13 {
		t.Errorf("builtin registry holds %d entries, want 13 (11 Table 1 + 2 universal)", len(list))
	}
	e, ok := Default.Lookup("symbolize-prefix-list")
	if !ok || e.Provenance != Builtin || e.Class != errclass.MissingPrefixListItem {
		t.Errorf("Lookup symbolize-prefix-list = %+v, %v", e, ok)
	}
	if e.Digest != e.Meta.Digest() || len(e.Digest) != 64 {
		t.Errorf("entry digest %q inconsistent with Meta.Digest()", e.Digest)
	}
	ts, err := Default.Resolve("fix-peer-asn", "add-redistribute-static")
	if err != nil || len(ts) != 2 || ts[0].Name() != "fix-peer-asn" {
		t.Errorf("Resolve = %v, %v", ts, err)
	}
	if _, err := Default.Resolve("no-such-template"); err == nil {
		t.Error("Resolve of unknown name succeeded")
	}
}

// TestUniversalExcludedFromEngineSet: the §6 ablation operators are
// registered but never join the default engine library.
func TestUniversalExcludedFromEngineSet(t *testing.T) {
	for _, tm := range Default.EngineTemplates() {
		if !tm.ErrorClass().Table1() {
			t.Errorf("universal operator %s leaked into the engine set", tm.Name())
		}
	}
	if got := Default.UniversalTemplates(); len(got) != 2 ||
		got[0].Name() != "universal-delete-line" || got[1].Name() != "universal-copy-from-role-peer" {
		t.Errorf("UniversalTemplates = %v", names(got))
	}
}

// TestRegistryDigestStable: the registry digest is deterministic and
// metadata-sensitive.
func TestRegistryDigestStable(t *testing.T) {
	if Default.Digest() != Default.Digest() {
		t.Fatal("Digest not deterministic")
	}
	r2 := New()
	registerBuiltins(r2)
	if r2.Digest() != Default.Digest() {
		t.Fatal("two identically populated registries disagree")
	}
	r2.MustRegister(Meta{Name: "universal-delete-line-2", Description: "d",
		Class: errclass.UniversalSyntactic, UseCase: "u", Version: "1", Provenance: Operator},
		renamed{core.DeleteSuspiciousLine{}, "universal-delete-line-2"})
	if r2.Digest() == Default.Digest() {
		t.Fatal("extra entry did not change registry digest")
	}
}

// renamed gives a template a different name, for collision-free test
// registrations.
type renamed struct {
	core.Template
	name string
}

func (r renamed) Name() string { return r.name }

// TestRegistryParallelAccess hammers one registry from many goroutines —
// the CI race step selects it via -run Parallel.
func TestRegistryParallelAccess(t *testing.T) {
	r := New()
	registerBuiltins(r)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("universal-delete-line-p%d", i)
			err := r.Register(Meta{Name: name, Description: "d", Class: errclass.UniversalSyntactic,
				UseCase: "u", Version: "1", Provenance: Operator}, renamed{core.DeleteSuspiciousLine{}, name})
			if err != nil {
				t.Error(err)
			}
			for j := 0; j < 50; j++ {
				r.List()
				r.Digest()
				r.EngineTemplates()
				r.Lookup("fix-peer-asn")
				r.SetConformant("fix-peer-asn", j%2 == 0)
				if _, err := r.Resolve("fix-peer-asn"); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if got := len(r.List()); got != 13+8 {
		t.Fatalf("registry holds %d entries after parallel registration, want 21", got)
	}
}

// TestSetConformant: verdicts stick and unknown names report false.
func TestSetConformant(t *testing.T) {
	r := New()
	registerBuiltins(r)
	if !r.SetConformant("fix-peer-asn", true) {
		t.Fatal("SetConformant on registered name failed")
	}
	if e, _ := r.Lookup("fix-peer-asn"); !e.Conformant {
		t.Error("conformance verdict not recorded")
	}
	if r.SetConformant("missing", true) {
		t.Error("SetConformant on unknown name succeeded")
	}
}

// names projects template names (test helper).
func names(ts []core.Template) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name()
	}
	return out
}

// TestDescribedDelegatesGenerate: the wrapper must not perturb identity or
// candidate generation.
func TestDescribedDelegatesGenerate(t *testing.T) {
	e, ok := Default.Lookup("symbolize-prefix-list")
	if !ok {
		t.Fatal("symbolize-prefix-list not registered")
	}
	d := e.Described()
	if d.Name() != "symbolize-prefix-list" || d.ErrorClass() != errclass.MissingPrefixListItem {
		t.Errorf("wrapper identity drift: %s %s", d.Name(), d.ErrorClass())
	}
	dt, ok := d.(core.DescribedTemplate)
	if !ok || dt.DescriptorDigest() != e.Digest {
		t.Errorf("wrapper digest drift")
	}
	s := scenario.Figure2()
	p := core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	ctx := core.NewContext(p, iv, sbfl.Tarantula, rand.New(rand.NewSource(1)))
	anchor := netcfg.LineRef{Device: "A", Line: scenario.FigureALinePrefixList}
	raw := e.Template().Generate(ctx, anchor)
	wrapped := d.Generate(ctx, anchor)
	if len(raw) != len(wrapped) || len(raw) == 0 || raw[0].Desc != wrapped[0].Desc {
		t.Errorf("wrapper perturbed generation: %d vs %d candidates", len(raw), len(wrapped))
	}
}
