package tmplreg

import (
	"acr/internal/core"
)

// registerBuiltins populates a registry with the shipped library: the
// eleven Table 1 change templates in core.BuiltinTemplates order — the
// order IS the engine's candidate-generation order, so it must never be
// reshuffled — followed by the two §6 universal operators.
func registerBuiltins(r *Registry) {
	builtin := func(t core.Template, desc, useCase string) {
		r.MustRegister(Meta{
			Name:        t.Name(),
			Description: desc,
			Class:       t.ErrorClass(),
			UseCase:     useCase,
			Version:     "1.0.0",
			Provenance:  Builtin,
		}, t)
	}
	builtin(core.SymbolizePrefixList{},
		"Replace a prefix-list's entries with an SMT-solved set satisfying the failing and passing reachability constraints",
		"A prefix-list filters traffic an intent requires, or admits traffic an intent forbids")
	builtin(core.AddRedistribute{},
		"Insert a redistribute-static line into the bgp block of a device whose static route covers a failing destination",
		"A static route exists but is never announced because redistribution was dropped")
	builtin(core.AddStaticOrigination{},
		"Insert a static route (solved over the failing destinations originating at the device) next to existing redistribution",
		"Redistribution is configured but the static route it should announce was deleted")
	builtin(core.AddPBRPermitRule{},
		"Insert a permit rule for the failing flow ahead of the PBR rule that drops or redirects it",
		"A PBR policy redirects or drops traffic an intent requires to pass")
	builtin(core.RemovePBRRule{},
		"Delete an entire PBR rule block whose redirect captures a failing flow",
		"A leftover redirect rule (e.g. a scrubber detour) still captures production traffic")
	builtin(core.AddPeerToGroup{},
		"Insert a group-membership line for an ungrouped peer, one candidate per existing group",
		"A BGP peer lost its peer-group membership and with it the group's policies")
	builtin(core.RemoveGroupMembership{},
		"Delete a peer's group-membership line",
		"A peer was added to a group whose policies it must not inherit")
	builtin(core.RemovePolicyAttach{},
		"Delete a route-policy attachment from a peer group",
		"A route map that should have been dis-enabled is still attached and filters valid routes")
	builtin(core.FixPeerASN{},
		"Rewrite a peer's remote AS number to the SMT-solved value matching the neighbor's actual AS",
		"An eBGP session stays down because the configured remote AS is wrong")
	builtin(core.AttachPolicyLikePeers{},
		"Attach a locally defined route policy to a group, mirroring same-role devices",
		"A group lost a policy attachment its role peers still carry")
	builtin(core.CopyPolicyFromRole{},
		"Reconstruct a missing route-policy definition by copying it from a same-role device",
		"A dangling attach references a policy whose definition was deleted")
	builtin(core.DeleteSuspiciousLine{},
		"Delete any single line covered by a failing test",
		"§6 universal ablation: the history-free \"this statement is wrong, drop it\" operator")
	builtin(core.CopyFromRolePeer{},
		"Insert, verbatim, lines a quorum of same-role devices carry but this device lacks",
		"§6 universal ablation: the naive plastic-surgery operator, parameters and all")
}
