// Package tmplreg is the change-template registry: the single authority
// over which change operators the repair engine may apply, what each one
// is for, and where it came from. Every template is registered with a
// descriptor — name, description, Table 1 error class, use-case, version,
// provenance — and the engine resolves its library through the registry
// instead of hard-coding the builtin list, so mined and operator-supplied
// templates plug in beside the paper's nine families without touching
// internal/core.
//
// Descriptors are content-addressed: each entry's digest folds into
// core.Options.SearchDigest via the DescribedTemplate wrapper, so a
// journaled session refuses to -resume (and the fleet refuses to dedup)
// against a template set whose metadata changed — not merely one whose
// names changed.
package tmplreg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"acr/internal/core"
	"acr/internal/errclass"
)

// Provenance records where a template came from.
type Provenance string

// The recognized provenances.
const (
	// Builtin templates are the paper's Table 1 library plus the §6
	// universal operators, shipped with the engine.
	Builtin Provenance = "builtin"
	// Mined templates were learned from historical configuration diffs by
	// tmplreg/mine and admitted by the conformance harness.
	Mined Provenance = "mined"
	// Operator templates were registered by an operator extension.
	Operator Provenance = "operator"
)

// valid reports whether p is a recognized provenance.
func (p Provenance) valid() bool {
	return p == Builtin || p == Mined || p == Operator
}

// Meta is a template descriptor: everything the registry knows about a
// change operator besides its code.
type Meta struct {
	// Name is the unique registry key; it must equal Template.Name().
	Name string `json:"name"`
	// Description is a one-line summary of the edit the template makes.
	Description string `json:"description"`
	// Class is the Table 1 error class the template repairs (or a
	// universal pseudo-class); it must equal Template.ErrorClass().
	Class errclass.Class `json:"class"`
	// UseCase says when an operator would reach for this template.
	UseCase string `json:"useCase"`
	// Version is bumped whenever the template's generation logic changes;
	// it feeds the descriptor digest, so a version bump orphans journals.
	Version string `json:"version"`
	// Provenance is builtin, mined, or operator.
	Provenance Provenance `json:"provenance"`
}

// Digest content-addresses the descriptor: 64 hex characters over every
// Meta field. Two registries agree on a template iff the digests match.
func (m Meta) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s\ndescription=%s\nclass=%s\nusecase=%s\nversion=%s\nprovenance=%s\n",
		m.Name, m.Description, m.Class, m.UseCase, m.Version, m.Provenance)
	return hex.EncodeToString(h.Sum(nil))
}

// validate rejects descriptors that would corrupt the registry.
func (m Meta) validate(t core.Template) error {
	switch {
	case m.Name == "":
		return fmt.Errorf("tmplreg: empty template name")
	case t == nil:
		return fmt.Errorf("tmplreg: %s: nil template", m.Name)
	case t.Name() != m.Name:
		return fmt.Errorf("tmplreg: descriptor name %q != Template.Name() %q", m.Name, t.Name())
	case t.ErrorClass() != m.Class:
		return fmt.Errorf("tmplreg: %s: descriptor class %q != Template.ErrorClass() %q", m.Name, m.Class, t.ErrorClass())
	case m.Description == "":
		return fmt.Errorf("tmplreg: %s: empty description", m.Name)
	case m.Version == "":
		return fmt.Errorf("tmplreg: %s: empty version", m.Name)
	case !m.Provenance.valid():
		return fmt.Errorf("tmplreg: %s: unknown provenance %q", m.Name, m.Provenance)
	}
	return nil
}

// Entry is one registered template with its descriptor and conformance
// status.
type Entry struct {
	Meta
	// Digest is the descriptor digest (denormalized for -json output).
	Digest string `json:"digest"`
	// Conformant reports whether the conformance harness admitted this
	// template in this process (false until a conform run marks it).
	Conformant bool `json:"conformant"`

	tmpl core.Template
}

// Template returns the registered change operator.
func (e Entry) Template() core.Template { return e.tmpl }

// Described wraps the entry's template with its descriptor digest, making
// it a core.DescribedTemplate whose identity folds into SearchDigest.
func (e Entry) Described() core.Template {
	return described{Template: e.tmpl, digest: e.Digest}
}

// described decorates a Template with its registry descriptor digest. It
// delegates Name/ErrorClass/Generate untouched, so a registry-resolved
// library is behaviorally identical to the raw structs.
type described struct {
	core.Template
	digest string
}

// DescriptorDigest implements core.DescribedTemplate.
func (d described) DescriptorDigest() string { return d.digest }

// Registry is a set of registered templates. The zero value is unusable;
// call New. A Registry is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	order  []string // registration order — the engine's application order
	byName map[string]*Entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*Entry{}}
}

// Register adds a template under its descriptor. It rejects duplicate
// names and descriptors that disagree with the template's own Name or
// ErrorClass, so registry metadata can never drift from the code.
func (r *Registry) Register(m Meta, t core.Template) error {
	if err := m.validate(t); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.Name]; dup {
		return fmt.Errorf("tmplreg: template %q already registered", m.Name)
	}
	r.order = append(r.order, m.Name)
	r.byName[m.Name] = &Entry{Meta: m, Digest: m.Digest(), tmpl: t}
	return nil
}

// MustRegister is Register, panicking on error — for package init blocks.
func (r *Registry) MustRegister(m Meta, t core.Template) {
	if err := r.Register(m, t); err != nil {
		panic(err)
	}
}

// Lookup returns the entry registered under name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// List returns every entry sorted by name — the deterministic order every
// human-facing surface (acr templates list, -json goldens) uses.
func (r *Registry) List() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, *r.byName[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByClass returns the entries declaring the given error class, sorted by
// name.
func (r *Registry) ByClass(c errclass.Class) []Entry {
	var out []Entry
	for _, e := range r.List() {
		if e.Class == c {
			out = append(out, e)
		}
	}
	return out
}

// Resolve returns the named templates, wrapped with their descriptor
// digests, in the order given. Unknown names are an error: a repair run
// must never silently proceed with fewer templates than asked for.
func (r *Registry) Resolve(names ...string) ([]core.Template, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]core.Template, 0, len(names))
	for _, name := range names {
		e, ok := r.byName[name]
		if !ok {
			return nil, fmt.Errorf("tmplreg: unknown template %q", name)
		}
		out = append(out, described{Template: e.tmpl, digest: e.Digest})
	}
	return out, nil
}

// EngineTemplates is the default repair library: the builtin Table 1
// templates in registration order — exactly core.BuiltinTemplates order,
// so registry resolution is trajectory-identical to the pre-registry
// engine — each wrapped with its descriptor digest. Mined and operator
// templates never join the default set implicitly (that would silently
// change every journaled session's digest); callers opt in via Resolve.
// Universal pseudo-class operators are likewise excluded: they are the §6
// ablation set, selected by -universal.
func (r *Registry) EngineTemplates() []core.Template {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []core.Template
	for _, name := range r.order {
		e := r.byName[name]
		if e.Provenance == Builtin && e.Class.Table1() {
			out = append(out, described{Template: e.tmpl, digest: e.Digest})
		}
	}
	return out
}

// UniversalTemplates is the §6 ablation library: the universal
// pseudo-class operators in registration order, wrapped with their
// descriptor digests.
func (r *Registry) UniversalTemplates() []core.Template {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []core.Template
	for _, name := range r.order {
		e := r.byName[name]
		if !e.Class.Table1() {
			out = append(out, described{Template: e.tmpl, digest: e.Digest})
		}
	}
	return out
}

// Digest content-addresses the whole registry: the hash of every entry's
// descriptor digest, by sorted name. Two processes hold the same template
// set iff their registry digests match — the fleet surfaces it in job
// metadata.
func (r *Registry) Digest() string {
	h := sha256.New()
	for _, e := range r.List() {
		fmt.Fprintf(h, "%s %s\n", e.Name, e.Digest)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SetConformant records a conformance verdict for a named template. It
// reports false when the name is not registered.
func (r *Registry) SetConformant(name string, ok bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, found := r.byName[name]
	if !found {
		return false
	}
	e.Conformant = ok
	return true
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// NewBuiltin returns a fresh registry pre-populated with the builtin
// library — an isolated copy of Default's initial state, for harness runs
// and tests that record verdicts without touching the process registry.
func NewBuiltin() *Registry {
	r := New()
	registerBuiltins(r)
	return r
}

// Default is the process-wide registry, pre-populated with the builtin
// library. Its EngineTemplates feed core.Options.Templates whenever a
// binary linking this package leaves Templates nil.
var Default = New()

func init() {
	registerBuiltins(Default)
	core.SetTemplateSource(Default.EngineTemplates)
}
