package tmplreg

import (
	"context"
	"strings"
	"testing"

	"acr/internal/core"
	"acr/internal/journal"
	"acr/internal/scenario"
)

// rebuildWithVersion reconstructs the builtin registry in registration
// order, bumping one template's version — the same code under a changed
// descriptor, which must be enough to orphan a journal.
func rebuildWithVersion(t *testing.T, name, version string) *Registry {
	t.Helper()
	src := NewBuiltin()
	out := New()
	for _, n := range src.Names() {
		e, ok := src.Lookup(n)
		if !ok {
			t.Fatalf("builtin %s vanished", n)
		}
		m := e.Meta
		if n == name {
			m.Version = version
		}
		if err := out.Register(m, e.Template()); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestResumeRefusesChangedTemplateSet is the registry/journal contract: a
// session journaled under one registry digest refuses to resume against a
// template set whose descriptors changed — even a version bump with
// identical code — with a KindJournal error naming the digest mismatch.
// The same journal resumes cleanly under an identical registry, proving
// the refusal is the digest and nothing else.
func TestResumeRefusesChangedTemplateSet(t *testing.T) {
	s := scenario.Figure2()
	p := core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
	journaled := core.Options{Seed: 7, MaxIterations: 10, Templates: NewBuiltin().EngineTemplates()}

	// Journal only the session header — a run that died before its first
	// checkpoint. The digest check precedes any checkpoint logic, so this
	// is the minimal resumable artifact.
	dir := t.TempDir()
	w, err := journal.Create(dir, core.SessionHeader("tmplreg-test", p, journaled))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sess, err := journal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Resumable() {
		t.Fatal("header-only session not resumable")
	}

	// Same case, same seed, same template CODE — but fix-peer-asn's
	// descriptor version was bumped, so the registry digest differs.
	bumped := rebuildWithVersion(t, "fix-peer-asn", "9.9.9")
	res := core.RepairContext(context.Background(), p, core.Options{
		Seed: 7, MaxIterations: 10, Templates: bumped.EngineTemplates(), Resume: sess,
	})
	if res.Resumed {
		t.Fatal("resumed a session journaled under a different template set")
	}
	found := false
	for _, e := range res.Errors {
		if e.Kind == core.KindJournal && strings.Contains(e.Err.Error(), "options digest") {
			found = true
		}
	}
	if !found {
		t.Errorf("template-set mismatch not surfaced as a KindJournal digest error: %v", res.Errors)
	}

	// Control: an identical registry resumes without complaint (the run
	// restarts fresh — no checkpoint — but records no journal error).
	res = core.RepairContext(context.Background(), p, core.Options{
		Seed: 7, MaxIterations: 10, Templates: NewBuiltin().EngineTemplates(), Resume: sess,
	})
	for _, e := range res.Errors {
		if e.Kind == core.KindJournal {
			t.Errorf("identical template set refused: %v", e)
		}
	}
}
