// Package rolesim quantifies the paper's §6 hypothesis for ACR — the
// plastic surgery hypothesis transplanted to networks: "devices in DCNs
// are grouped into several roles, and devices with the same role often
// have similar configurations". It normalizes configuration lines
// (parameters like addresses, prefixes, AS numbers, and indexes become
// placeholders), measures Jaccard similarity between devices' normalized
// line sets, and aggregates intra-role vs inter-role similarity. A large
// intra/inter gap is what makes copy-from-role-peer repair templates
// plausible.
package rolesim

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"acr/internal/netcfg"
	"acr/internal/topo"
)

// NormalizeLine abstracts a configuration line to its syntactic shape:
// IP addresses and prefixes become <addr>/<prefix>, numbers become <n>,
// and free-form names (policy/list/group identifiers) are preserved —
// they encode role semantics ("Override_All", "PoPFacing").
func NormalizeLine(line string) string {
	fields := strings.Fields(line)
	for i, f := range fields {
		switch {
		case isPrefix(f):
			fields[i] = "<prefix>"
		case isAddr(f):
			fields[i] = "<addr>"
		case isNumber(f):
			fields[i] = "<n>"
		}
	}
	return strings.Join(fields, " ")
}

func isPrefix(s string) bool {
	_, err := netip.ParsePrefix(s)
	return err == nil
}

func isAddr(s string) bool {
	_, err := netip.ParseAddr(s)
	return err == nil
}

func isNumber(s string) bool {
	_, err := strconv.ParseUint(s, 10, 64)
	return err == nil
}

// Shape is a device's normalized line set.
type Shape map[string]bool

// ShapeOf computes the normalized line set of a configuration (blank and
// comment lines ignored).
func ShapeOf(c *netcfg.Config) Shape {
	s := Shape{}
	for i := 1; i <= c.NumLines(); i++ {
		line := strings.TrimSpace(c.Line(i))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s[NormalizeLine(line)] = true
	}
	return s
}

// Jaccard computes |a∩b| / |a∪b| (1.0 for two empty shapes).
func Jaccard(a, b Shape) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1.0
	}
	inter := 0
	for l := range a {
		if b[l] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// RoleReport aggregates similarity for one role.
type RoleReport struct {
	Role    topo.Kind
	Devices int
	// IntraMean is the mean pairwise Jaccard similarity within the role.
	IntraMean float64
	// InterMean is the mean similarity between this role's devices and
	// all other roles' devices.
	InterMean float64
}

// Gap is the hypothesis signal: intra-role minus inter-role similarity.
func (r RoleReport) Gap() float64 { return r.IntraMean - r.InterMean }

// Report is the whole-network analysis.
type Report struct {
	Roles []RoleReport
}

// Supported reports whether every multi-device role is more similar
// within than across (the hypothesis holds), requiring a minimum gap.
func (r *Report) Supported(minGap float64) bool {
	any := false
	for _, role := range r.Roles {
		if role.Devices < 2 {
			continue
		}
		any = true
		if role.Gap() < minGap {
			return false
		}
	}
	return any
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %12s %12s %8s\n", "role", "devices", "intra-Jacc", "inter-Jacc", "gap")
	for _, role := range r.Roles {
		fmt.Fprintf(&sb, "%-10s %8d %12.3f %12.3f %+8.3f\n",
			role.Role, role.Devices, role.IntraMean, role.InterMean, role.Gap())
	}
	return sb.String()
}

// Analyze computes the role-similarity report for a network's configs.
func Analyze(t *topo.Network, configs map[string]*netcfg.Config) *Report {
	shapes := map[string]Shape{}
	byRole := map[topo.Kind][]string{}
	for _, nd := range t.Nodes() {
		c, ok := configs[nd.Name]
		if !ok {
			continue
		}
		shapes[nd.Name] = ShapeOf(c)
		byRole[nd.Kind] = append(byRole[nd.Kind], nd.Name)
	}
	roles := make([]topo.Kind, 0, len(byRole))
	for k := range byRole {
		roles = append(roles, k)
	}
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })

	rep := &Report{}
	for _, role := range roles {
		devs := byRole[role]
		rr := RoleReport{Role: role, Devices: len(devs)}
		intraN, interN := 0, 0
		for i, a := range devs {
			for _, b := range devs[i+1:] {
				rr.IntraMean += Jaccard(shapes[a], shapes[b])
				intraN++
			}
			for _, other := range roles {
				if other == role {
					continue
				}
				for _, b := range byRole[other] {
					rr.InterMean += Jaccard(shapes[a], shapes[b])
					interN++
				}
			}
		}
		if intraN > 0 {
			rr.IntraMean /= float64(intraN)
		} else {
			rr.IntraMean = 1.0 // single device: trivially self-similar
		}
		if interN > 0 {
			rr.InterMean /= float64(interN)
		}
		rep.Roles = append(rep.Roles, rr)
	}
	return rep
}

// MissingShapes returns, for a device, the normalized lines present on at
// least `quorum` fraction of its role peers but absent from it — the raw
// material of plastic-surgery repair (and of the universal
// copy-from-role-peer operator). Each returned entry carries a concrete
// example line from a peer that has it.
func MissingShapes(t *topo.Network, configs map[string]*netcfg.Config, device string, quorum float64) []MissingShape {
	nd := t.Node(device)
	if nd == nil || configs[device] == nil {
		return nil
	}
	mine := ShapeOf(configs[device])
	occ := map[string]*occur{}
	peers := 0
	for _, other := range t.Nodes() {
		if other.Name == device || other.Kind != nd.Kind || configs[other.Name] == nil {
			continue
		}
		peers++
		c := configs[other.Name]
		seen := map[string]bool{}
		for i := 1; i <= c.NumLines(); i++ {
			raw := c.Line(i)
			line := strings.TrimSpace(raw)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			norm := NormalizeLine(line)
			if seen[norm] {
				continue
			}
			seen[norm] = true
			o := occ[norm]
			if o == nil {
				o = &occur{example: raw, device: other.Name}
				occ[norm] = o
			}
			o.count++
		}
	}
	if peers == 0 {
		return nil
	}
	var out []MissingShape
	for norm, o := range occ {
		if mine[norm] {
			continue
		}
		if float64(o.count)/float64(peers) >= quorum {
			out = append(out, MissingShape{
				Normalized: norm,
				Example:    o.example,
				FromDevice: o.device,
				PeerShare:  float64(o.count) / float64(peers),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PeerShare != out[j].PeerShare {
			return out[i].PeerShare > out[j].PeerShare
		}
		return out[i].Normalized < out[j].Normalized
	})
	return out
}

// occur tracks how many role peers carry a normalized line, with one
// concrete example.
type occur struct {
	count   int
	example string
	device  string
}

// MissingShape is one role-consensus line a device lacks.
type MissingShape struct {
	Normalized string
	Example    string
	FromDevice string
	PeerShare  float64
}
