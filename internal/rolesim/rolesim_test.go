package rolesim

import (
	"strings"
	"testing"

	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/topo"
)

func TestNormalizeLine(t *testing.T) {
	cases := []struct{ in, want string }{
		{" peer 172.16.0.2 as-number 65002", "peer <addr> as-number <n>"},
		{"ip prefix-list L index 10 permit 10.0.0.0/16", "ip prefix-list L index <n> permit <prefix>"},
		{" apply as-path overwrite 65001", "apply as-path overwrite <n>"},
		{"route-policy Override_All permit node 10", "route-policy Override_All permit node <n>"},
		{" ip address 172.16.0.1/30", "ip address <prefix>"},
		{"redistribute static", "redistribute static"},
	}
	for _, tc := range cases {
		if got := NormalizeLine(tc.in); got != tc.want {
			t.Errorf("NormalizeLine(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestJaccard(t *testing.T) {
	a := Shape{"x": true, "y": true}
	b := Shape{"y": true, "z": true}
	if got := Jaccard(a, b); got != 1.0/3.0 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if Jaccard(a, a) != 1.0 {
		t.Error("self similarity != 1")
	}
	if Jaccard(Shape{}, Shape{}) != 1.0 {
		t.Error("empty-empty != 1")
	}
	if Jaccard(a, Shape{}) != 0.0 {
		t.Error("disjoint with empty != 0")
	}
}

// TestHypothesisHoldsInFatTree is §6's hypothesis, measured: fat-tree
// devices of the same role are substantially more similar to each other
// than to other roles.
func TestHypothesisHoldsInFatTree(t *testing.T) {
	s := scenario.DCN(6, scenario.GenOptions{StaticOriginEvery: 0})
	rep := Analyze(s.Topo, s.Configs)
	if !rep.Supported(0.05) {
		t.Fatalf("plastic surgery hypothesis not supported:\n%s", rep)
	}
	for _, rr := range rep.Roles {
		if rr.Role == topo.Leaf && rr.IntraMean < 0.8 {
			t.Errorf("leaf intra-similarity = %.3f, want high", rr.IntraMean)
		}
	}
	t.Logf("\n%s", rep)
}

func TestHypothesisWANRoles(t *testing.T) {
	s := scenario.WAN(8, 4, 3, scenario.GenOptions{StaticOriginEvery: 2})
	rep := Analyze(s.Topo, s.Configs)
	var bb RoleReport
	for _, rr := range rep.Roles {
		if rr.Role == topo.Backbone {
			bb = rr
		}
	}
	if bb.Devices == 0 || bb.Gap() <= 0 {
		t.Errorf("backbone gap = %+.3f, want positive:\n%s", bb.Gap(), rep)
	}
}

func TestMissingShapesDetectsDeletedLine(t *testing.T) {
	s := scenario.DCN(4, scenario.GenOptions{StaticOriginEvery: 0})
	// Delete leaf1-1's network statement; role peers all have one.
	f := netcfg.MustParse(s.Configs["leaf1-1"])
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: f.BGP.Networks[0].Line}}}.Apply(s.Configs["leaf1-1"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["leaf1-1"] = next
	missing := MissingShapes(s.Topo, s.Configs, "leaf1-1", 0.9)
	found := false
	for _, m := range missing {
		if strings.Contains(m.Normalized, "network") {
			found = true
			if m.Example == "" || m.FromDevice == "" || m.PeerShare < 0.9 {
				t.Errorf("missing shape metadata incomplete: %+v", m)
			}
		}
	}
	if !found {
		t.Errorf("deleted network statement not detected; missing = %+v", missing)
	}
}

func TestMissingShapesNoneForConformingDevice(t *testing.T) {
	s := scenario.DCN(4, scenario.GenOptions{StaticOriginEvery: 0})
	missing := MissingShapes(s.Topo, s.Configs, "leaf1-1", 0.9)
	if len(missing) != 0 {
		t.Errorf("conforming device reported missing shapes: %+v", missing)
	}
}

func TestMissingShapesUnknownDevice(t *testing.T) {
	s := scenario.DCN(4, scenario.GenOptions{})
	if got := MissingShapes(s.Topo, s.Configs, "nope", 0.5); got != nil {
		t.Errorf("unknown device = %v", got)
	}
}
