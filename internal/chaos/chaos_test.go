package chaos

import (
	"context"
	"testing"
	"time"

	"acr/internal/core"
	"acr/internal/incidents"
	"acr/internal/scenario"
)

func figure2Problem() core.Problem {
	s := scenario.Figure2()
	return core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
}

// validTerminations is every way a run may legitimately end.
var validTerminations = map[string]bool{
	"feasible": true, "exhausted": true, "iteration-cap": true,
	"deadline": true, "canceled": true,
}

// assertNoRegression checks the best-effort guarantee: whatever happened,
// the result never reports a configuration worse than the base.
func assertNoRegression(t *testing.T, res *core.Result) {
	t.Helper()
	if res.BestEffortConfigs == nil {
		t.Fatal("BestEffortConfigs not populated")
	}
	if res.BestEffortFitness > res.BaseFailing {
		t.Fatalf("fitness regressed: best-effort %d > base %d", res.BestEffortFitness, res.BaseFailing)
	}
	if res.Improved && res.BestEffortFitness >= res.BaseFailing {
		t.Fatalf("Improved=true but fitness %d !< base %d", res.BestEffortFitness, res.BaseFailing)
	}
	if !validTerminations[res.Termination] {
		t.Fatalf("unexpected termination %q", res.Termination)
	}
}

// TestFigure2SurvivesInjectedPanics is the acceptance scenario: panics in
// ≥10% of prefix simulations must not crash the engine or regress
// fitness, and every injected panic that reached a candidate must be
// accounted for.
func TestFigure2SurvivesInjectedPanics(t *testing.T) {
	inj := New(Plan{Seed: 1, PanicEveryN: 10}) // every 10th simulation = 10%
	opts := inj.Wire(core.Options{Strategy: core.BruteForce})
	res := core.RepairContext(context.Background(), figure2Problem(), opts)

	if got := inj.Stats(); got.PanicsInjected == 0 {
		t.Fatalf("plan injected no panics (sims=%d)", got.Simulations)
	}
	if res.CandidatesPanicked == 0 {
		t.Fatal("engine did not account for any quarantined candidate")
	}
	if res.Termination != "feasible" && res.Termination != "deadline" {
		t.Fatalf("termination = %q, want feasible or deadline\n%s", res.Termination, res.Summary())
	}
	assertNoRegression(t, res)
	// The quarantine must have left a usable audit trail.
	found := false
	for _, e := range res.Errors {
		if e.Kind == core.KindCandidatePanic {
			found = true
			if len(e.Stack) == 0 {
				t.Error("candidate-panic error missing captured stack")
			}
		}
	}
	if !found {
		t.Error("no candidate-panic error recorded")
	}
}

// TestFigure2DeadlineTrip injects per-simulation delays so the wall-clock
// budget trips mid-run; the engine must stop with "deadline" and still
// return a usable best-effort result.
func TestFigure2DeadlineTrip(t *testing.T) {
	inj := New(Plan{Seed: 1, DelayPerSim: 5 * time.Millisecond})
	opts := inj.Wire(core.Options{Strategy: core.BruteForce, MaxWallClock: 25 * time.Millisecond})
	start := time.Now()
	res := core.RepairContext(context.Background(), figure2Problem(), opts)
	elapsed := time.Since(start)

	if res.Termination != "deadline" {
		t.Fatalf("termination = %q, want deadline\n%s", res.Termination, res.Summary())
	}
	if elapsed > time.Second {
		t.Fatalf("deadline honored too slowly: %s", elapsed)
	}
	assertNoRegression(t, res)
}

// TestFigure2PanicsAndDeadlineTogether combines both acceptance faults:
// seeded panics plus one deadline trip.
func TestFigure2PanicsAndDeadlineTogether(t *testing.T) {
	inj := New(Plan{Seed: 7, PanicEveryN: 10, DelayPerSim: 2 * time.Millisecond})
	opts := inj.Wire(core.Options{Strategy: core.BruteForce, MaxWallClock: 60 * time.Millisecond})
	res := core.RepairContext(context.Background(), figure2Problem(), opts)

	if res.Termination != "feasible" && res.Termination != "deadline" {
		t.Fatalf("termination = %q, want feasible or deadline\n%s", res.Termination, res.Summary())
	}
	assertNoRegression(t, res)
}

// TestTransientRetries proves the retry-with-backoff path: injected
// transient verifier errors are retried and the run still succeeds.
func TestTransientRetries(t *testing.T) {
	// The static prior narrows Figure 2 to a handful of validator calls,
	// so inject aggressively to guarantee the retry path is exercised.
	inj := New(Plan{Seed: 1, TransientEveryN: 2, MaxTransients: 4})
	opts := inj.Wire(core.Options{Strategy: core.BruteForce, RetryBackoff: 100 * time.Microsecond})
	res := core.RepairContext(context.Background(), figure2Problem(), opts)

	if got := inj.Stats(); got.TransientsInjected == 0 {
		t.Fatalf("plan injected no transients (validate calls=%d)", got.ValidateCalls)
	}
	if res.ValidationRetries == 0 {
		t.Fatal("engine recorded no retries")
	}
	if !res.Feasible {
		t.Fatalf("run did not recover from transient faults:\n%s", res.Summary())
	}
	assertNoRegression(t, res)
}

// TestCorpusSliceSurvivesChaos runs a slice of the 120-incident corpus
// under combined chaos (panics + transients) and requires every run to
// end cleanly with the best-effort guarantee intact.
func TestCorpusSliceSurvivesChaos(t *testing.T) {
	incs, err := incidents.GenerateCorpus(incidents.CorpusOptions{Size: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stride := 12
	if testing.Short() {
		stride = 40
	}
	ran := 0
	for idx := 0; idx < len(incs); idx += stride {
		inc := incs[idx]
		inj := New(Plan{Seed: int64(idx), PanicEveryN: 10, TransientEveryN: 50})
		opts := inj.Wire(core.Options{
			RetryBackoff: 100 * time.Microsecond,
			MaxWallClock: 10 * time.Second,
		})
		p := core.Problem{Topo: inc.Scenario.Topo, Configs: inc.Scenario.Configs, Intents: inc.Scenario.Intents}
		res := core.RepairContext(context.Background(), p, opts)
		assertNoRegression(t, res)
		if res.BaseFailing > 0 && !res.Feasible && !res.Improved && res.Termination == "feasible" {
			t.Errorf("incident %d: inconsistent result: %s", idx, res.Summary())
		}
		ran++
	}
	if ran < 3 {
		t.Fatalf("corpus slice too small: ran %d", ran)
	}
}

// TestInjectorDeterminism: the same plan observes the same sequence and
// injects the same faults.
func TestInjectorDeterminism(t *testing.T) {
	run := func() (Stats, *core.Result) {
		inj := New(Plan{Seed: 3, PanicRate: 0.15, TransientEveryN: 9})
		opts := inj.Wire(core.Options{Strategy: core.BruteForce, RetryBackoff: 100 * time.Microsecond})
		res := core.RepairContext(context.Background(), figure2Problem(), opts)
		return inj.Stats(), res
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Fatalf("injector stats diverged: %+v vs %+v", s1, s2)
	}
	if r1.Termination != r2.Termination || r1.CandidatesPanicked != r2.CandidatesPanicked {
		t.Fatalf("engine results diverged: %q/%d vs %q/%d",
			r1.Termination, r1.CandidatesPanicked, r2.Termination, r2.CandidatesPanicked)
	}
}

// TestMaxPanicsCap: the injector honors its panic budget.
func TestMaxPanicsCap(t *testing.T) {
	inj := New(Plan{Seed: 1, PanicEveryN: 2, MaxPanics: 1})
	opts := inj.Wire(core.Options{Strategy: core.BruteForce})
	res := core.RepairContext(context.Background(), figure2Problem(), opts)
	if got := inj.Stats().PanicsInjected; got != 1 {
		t.Fatalf("PanicsInjected = %d, want exactly 1", got)
	}
	assertNoRegression(t, res)
}
