package chaos

import (
	"context"
	"testing"

	"acr/internal/core"
	"acr/internal/incidents"
	"acr/internal/journal"
	"acr/internal/netcfg"
)

// journaledRun runs a repair with a fresh journal session in dir and no
// faults, returning the result and the number of records appended.
func journaledRun(t *testing.T, dir string, p core.Problem, opts core.Options) (*core.Result, int) {
	t.Helper()
	w, err := journal.Create(dir, core.SessionHeader("crash-test", p, opts))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	opts.Journal = w
	return core.RepairContext(context.Background(), p, opts), w.Appends()
}

// crashRun runs a repair that the injector kills after `appends` journal
// records, leaving dir the way a dead process would.
func crashRun(t *testing.T, dir string, p core.Problem, opts core.Options, plan Plan) (crashed bool) {
	t.Helper()
	w, err := journal.Create(dir, core.SessionHeader("crash-test", p, opts))
	if err != nil {
		t.Fatal(err)
	}
	opts.Journal = w
	opts = New(plan).Wire(opts)
	defer func() {
		rec := recover()
		if rec == nil {
			w.Close()
			return
		}
		if _, ok := rec.(CrashPanic); !ok {
			panic(rec) // a real bug, not our simulated crash
		}
		crashed = true // the "dead" process closes nothing
	}()
	core.RepairContext(context.Background(), p, opts)
	return false
}

// resumeRun recovers the session in dir and continues it to completion.
func resumeRun(t *testing.T, dir string, p core.Problem, opts core.Options) *core.Result {
	t.Helper()
	sess, err := journal.Replay(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !sess.Resumable() {
		t.Fatal("crashed session not resumable")
	}
	w, err := journal.Resume(dir, sess)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	opts.Journal = w
	opts.Resume = sess
	res := core.RepairContext(context.Background(), p, opts)
	for _, e := range res.Errors {
		if e.Kind == core.KindJournal {
			t.Errorf("resume degraded: %v", e)
		}
	}
	return res
}

// TestCrashResumeByteIdentical is the central recovery invariant: a run
// SIGKILLed (simulated) after any number of journal appends — including
// with a torn final write — resumes to a Result byte-identical to the
// uninterrupted run with the same seed. No validated candidate is lost,
// no iteration or counter is double-counted.
func TestCrashResumeByteIdentical(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25}

	straight, appends := journaledRun(t, t.TempDir(), p, opts)
	if !straight.Feasible {
		t.Fatalf("uninterrupted run infeasible: %s", straight.Summary())
	}
	want := straight.Canonical()
	if appends < 4 {
		t.Fatalf("run too short to crash interestingly: %d appends", appends)
	}

	// Crash points spread across the whole run: right after the header,
	// around the base checkpoint, mid-iteration, and near the end.
	points := []int{1, 2, 3, appends / 2, appends - 1}
	for i, n := range points {
		torn := i%2 == 1 // alternate clean kills and torn final writes
		dir := t.TempDir()
		if !crashRun(t, dir, p, opts, Plan{CrashAfterAppends: n, CrashTornTail: torn}) {
			t.Fatalf("crash point %d not reached", n)
		}
		sess, err := journal.Replay(dir)
		if err != nil {
			t.Fatalf("crash@%d: replay: %v", n, err)
		}
		if torn && !sess.Truncated {
			t.Errorf("crash@%d: torn tail not detected", n)
		}
		res := resumeRun(t, dir, p, opts)
		if !res.Resumed && sess.Checkpoint != nil {
			t.Errorf("crash@%d: checkpoint present but run not resumed", n)
		}
		if got := res.Canonical(); got != want {
			t.Errorf("crash@%d (torn=%v): resumed result diverges from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s",
				n, torn, want, got)
		}
		// The resumed session's journal must now be clean and closed.
		final, err := journal.Replay(dir)
		if err != nil {
			t.Fatalf("crash@%d: final replay: %v", n, err)
		}
		if final.Truncated {
			t.Errorf("crash@%d: resumed WAL still torn: %s", n, final.TruncatedReason)
		}
		if final.Terminal == nil || final.Terminal.Termination != "feasible" {
			t.Errorf("crash@%d: final terminal = %+v", n, final.Terminal)
		}
	}
}

// TestCrashResumeCorpus repeats the invariant over a corpus slice:
// different misconfiguration classes exercise different templates,
// populations, and widen/stagnation paths.
func TestCrashResumeCorpus(t *testing.T) {
	incs, err := incidents.GenerateCorpus(incidents.CorpusOptions{Size: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tested := 0
	for _, inc := range incs {
		if tested >= 3 {
			break
		}
		p := core.Problem{Topo: inc.Scenario.Topo, Configs: inc.Scenario.Configs, Intents: inc.Scenario.Intents}
		opts := core.Options{Seed: 11, MaxIterations: 20}
		straight, appends := journaledRun(t, t.TempDir(), p, opts)
		if straight.BaseFailing == 0 || appends < 4 {
			continue // injection invisible to the intent suite
		}
		tested++
		want := straight.Canonical()
		for _, n := range []int{2, appends - 1} {
			dir := t.TempDir()
			if !crashRun(t, dir, p, opts, Plan{CrashAfterAppends: n, CrashTornTail: true}) {
				t.Fatalf("%s: crash point %d not reached", inc.ID, n)
			}
			res := resumeRun(t, dir, p, opts)
			if got := res.Canonical(); got != want {
				t.Errorf("%s crash@%d: resumed result diverges\n--- want ---\n%s\n--- got ---\n%s",
					inc.ID, n, want, got)
			}
		}
	}
	if tested == 0 {
		t.Fatal("no visible incidents in corpus slice")
	}
}

// TestResumeRefusesWrongCase: a journal from one case must not silently
// steer a repair of another.
func TestResumeRefusesWrongCase(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25}
	dir := t.TempDir()
	if !crashRun(t, dir, p, opts, Plan{CrashAfterAppends: 5}) {
		t.Fatal("crash point not reached")
	}
	sess, err := journal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	other := figure2Problem()
	for d, c := range other.Configs {
		other.Configs[d] = netcfg.FromLines(d, append(c.Lines(), "! tampered"))
		break
	}
	res := core.RepairContext(context.Background(), other, core.Options{
		Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25, Resume: sess,
	})
	if res.Resumed {
		t.Fatal("resumed a session for a different case")
	}
	found := false
	for _, e := range res.Errors {
		if e.Kind == core.KindJournal {
			found = true
		}
	}
	if !found {
		t.Error("digest mismatch not surfaced as a KindJournal error")
	}
	// A different seed is likewise a different search.
	res = core.RepairContext(context.Background(), p, core.Options{
		Strategy: core.Evolutionary, Seed: 8, MaxIterations: 25, Resume: sess,
	})
	if res.Resumed {
		t.Fatal("resumed a session journaled under a different seed")
	}
}

// TestJournaledRunMatchesPlain: journaling is pure observation — it must
// not perturb the search.
func TestJournaledRunMatchesPlain(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25}
	plain := core.RepairContext(context.Background(), p, opts)
	journaled, _ := journaledRun(t, t.TempDir(), p, opts)
	if plain.Canonical() != journaled.Canonical() {
		t.Errorf("journaling changed the result\n--- plain ---\n%s\n--- journaled ---\n%s",
			plain.Canonical(), journaled.Canonical())
	}
}
