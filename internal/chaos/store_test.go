package chaos

import (
	"testing"
	"time"

	"acr/internal/core"
	"acr/internal/evalstore"
	"acr/internal/journal"
)

// mustStore opens an evalstore in dir or fails the test.
func mustStore(t *testing.T, dir string, maxBytes int64) *evalstore.Store {
	t.Helper()
	s, err := evalstore.Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreFaultMatrixByteIdentity is the tentpole robustness proof: under
// every injected storage fault — read EIO, write EIO, ENOSPC, at-rest bit
// flips, torn tails, slow I/O, and their combination — a repair running
// over the persistent store terminates the same way and renders Canonical()
// output byte-identical to a storeless run. Faults are visible only in the
// store cost counters (StoreMisses, StoreCorrupt) and the injector's own
// stats. Each plan runs twice over one directory: the first run writes
// through the faults, the second reads back whatever survived them.
func TestStoreFaultMatrixByteIdentity(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.BruteForce, Parallelism: 1}
	baseline := core.Repair(p, opts)
	if !baseline.Feasible {
		t.Fatalf("baseline infeasible: %s", baseline.Summary())
	}
	want := baseline.Canonical()

	plans := []struct {
		name string
		plan StorePlan
		// wantCorrupt: the second (read-back) run must quarantine entries.
		wantCorrupt bool
	}{
		{"read-eio-every-2", StorePlan{ReadErrEveryN: 2}, false},
		{"write-eio-every-2", StorePlan{WriteErrEveryN: 2}, false},
		{"enospc-always", StorePlan{ENOSPCEveryN: 1}, false},
		{"bitflip-every-entry", StorePlan{FlipBitEveryN: 1}, true},
		{"torn-tail-every-2", StorePlan{TornTailEveryN: 2}, true},
		{"slow-io", StorePlan{SlowIO: 50 * time.Microsecond}, false},
		// The combined plan's periods are tuned to the workload: figure2
		// under BruteForce stores only a handful of entries, so every fault
		// class must fire within the first few operations.
		{"combined", StorePlan{ReadErrEveryN: 5, WriteErrEveryN: 3, FlipBitEveryN: 2}, true},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := NewStore(tc.plan)
			store := inj.Wire(mustStore(t, dir, 0))
			o := opts
			o.Store = store

			first := core.Repair(p, o)
			if got := first.Canonical(); got != want {
				t.Fatalf("write-through run diverges from storeless baseline\n--- want ---\n%s\n--- got ---\n%s", want, got)
			}
			if first.Termination != baseline.Termination || first.Feasible != baseline.Feasible {
				t.Fatalf("write-through run terminated differently: %s vs %s", first.Termination, baseline.Termination)
			}

			second := core.Repair(p, o)
			if got := second.Canonical(); got != want {
				t.Fatalf("read-back run diverges from storeless baseline\n--- want ---\n%s\n--- got ---\n%s", want, got)
			}
			if tc.wantCorrupt && second.StoreCorrupt == 0 {
				t.Errorf("expected quarantined entries on read-back, got none (stats %+v)", inj.StoreStats())
			}
			if !tc.wantCorrupt && second.StoreCorrupt != 0 {
				t.Errorf("unexpected corruption: %d (stats %+v)", second.StoreCorrupt, inj.StoreStats())
			}

			st := inj.StoreStats()
			if st.Reads == 0 || st.Writes == 0 {
				t.Fatalf("injector saw no traffic: %+v", st)
			}
			switch {
			case tc.plan.ReadErrEveryN > 0 && st.ReadErrsInjected == 0:
				t.Errorf("plan injected no read errors: %+v", st)
			case (tc.plan.WriteErrEveryN > 0 || tc.plan.ENOSPCEveryN > 0) && st.WriteErrsInjected == 0:
				t.Errorf("plan injected no write errors: %+v", st)
			case tc.plan.FlipBitEveryN > 0 && st.FlipsInjected == 0:
				t.Errorf("plan flipped no bits: %+v", st)
			case tc.plan.TornTailEveryN > 0 && st.TearsInjected == 0:
				t.Errorf("plan tore no entries: %+v", st)
			}
		})
	}
}

// TestWarmStoreAnswersWholeSession is the store's economic claim at engine
// scale: a second session over a fully warm, fault-free store re-simulates
// nothing — zero validation prefix simulations — while still producing the
// byte-identical result. (Result.PrefixSimulations counts validation work
// only; preservation re-verification is accounted separately by design.)
func TestWarmStoreAnswersWholeSession(t *testing.T) {
	p := figure2Problem()
	dir := t.TempDir()
	opts := core.Options{Strategy: core.BruteForce, Parallelism: 1, Store: mustStore(t, dir, 0)}
	first := core.Repair(p, opts)
	if !first.Feasible || first.StoreMisses == 0 {
		t.Fatalf("populate run: %s", first.Summary())
	}

	// A fresh Store instance on the same directory: a new process.
	opts.Store = mustStore(t, dir, 0)
	second := core.Repair(p, opts)
	if second.Canonical() != first.Canonical() {
		t.Fatalf("warm run diverges\n--- first ---\n%s\n--- second ---\n%s", first.Canonical(), second.Canonical())
	}
	if second.StoreMisses != 0 || second.StoreHits != second.CacheMisses {
		t.Fatalf("warm run store counters: %s", second.Summary())
	}
	if second.PrefixSimulations != 0 {
		t.Fatalf("warm run still simulated %d prefixes during validation", second.PrefixSimulations)
	}
}

// TestStoreEvictionChurnByteIdentity runs the repair over a store whose
// byte budget forces eviction on nearly every write — the concurrent-
// eviction race in its most aggressive form. Readers see entries vanish
// between classification and nothing else; the result must not move.
func TestStoreEvictionChurnByteIdentity(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.BruteForce, Parallelism: 1}
	want := core.Repair(p, opts).Canonical()

	dir := t.TempDir()
	store := mustStore(t, dir, 128) // one ~100-byte entry: every further Put evicts
	o := opts
	o.Store = store
	for i := 0; i < 2; i++ {
		if got := core.Repair(p, o).Canonical(); got != want {
			t.Fatalf("run %d under eviction churn diverged\n--- want ---\n%s\n--- got ---\n%s", i, want, got)
		}
	}
	if st := store.Stats(); st.Evicted == 0 {
		t.Fatalf("budget of 128 bytes evicted nothing: %+v", st)
	}
}

// TestCrashResumeWarmStore extends the central recovery invariant to a
// warm persistent store: a crashed session resumed over (a) the same store
// it was writing, (b) a completely fresh store, and (c) no store at all
// must all render the uninterrupted run's exact bytes. The store changes
// what resume re-simulates, never what it concludes.
func TestCrashResumeWarmStore(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25}

	straight, appends := journaledRun(t, t.TempDir(), p, opts)
	if !straight.Feasible {
		t.Fatalf("uninterrupted run infeasible: %s", straight.Summary())
	}
	want := straight.Canonical()
	if appends < 4 {
		t.Fatalf("run too short to crash interestingly: %d appends", appends)
	}

	for _, resume := range []string{"same-store", "fresh-store", "no-store"} {
		t.Run(resume, func(t *testing.T) {
			dir := t.TempDir()
			storeDir := t.TempDir()
			o := opts
			o.Store = mustStore(t, storeDir, 0)
			if !crashRun(t, dir, p, o, Plan{CrashAfterAppends: appends / 2, CrashTornTail: true}) {
				t.Fatal("crash point not reached")
			}
			switch resume {
			case "same-store":
				o.Store = mustStore(t, storeDir, 0)
			case "fresh-store":
				o.Store = mustStore(t, t.TempDir(), 0)
			case "no-store":
				o.Store = nil
			}
			res := resumeRun(t, dir, p, o)
			if !res.Resumed {
				t.Fatal("session did not resume from checkpoint")
			}
			if got := res.Canonical(); got != want {
				t.Fatalf("resume over %s diverges from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s", resume, want, got)
			}
		})
	}
}

// TestCrashResumeFaultyStore combines both chaos seams: the session crashes
// mid-run AND the store both injects I/O errors and corrupts entries at
// rest. Resume must still reproduce the uninterrupted bytes.
func TestCrashResumeFaultyStore(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25}
	straight, appends := journaledRun(t, t.TempDir(), p, opts)
	want := straight.Canonical()

	dir := t.TempDir()
	storeDir := t.TempDir()
	o := opts
	o.Store = NewStore(StorePlan{ReadErrEveryN: 3, FlipBitEveryN: 2}).Wire(mustStore(t, storeDir, 0))
	if !crashRun(t, dir, p, o, Plan{CrashAfterAppends: appends / 3}) {
		t.Fatal("crash point not reached")
	}
	o.Store = NewStore(StorePlan{ReadErrEveryN: 3, FlipBitEveryN: 2}).Wire(mustStore(t, storeDir, 0))
	res := resumeRun(t, dir, p, o)
	if got := res.Canonical(); got != want {
		t.Fatalf("resume over faulty store diverges\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestWarmResumeSharesStoreAcrossSessions checks the adoption write-back:
// resuming a crashed session warms the store with the journaled candidates
// (the dead node's work), so a later fresh session over the same store
// starts from those evaluations.
func TestWarmResumeSharesStoreAcrossSessions(t *testing.T) {
	p := figure2Problem()
	opts := core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25}
	_, appends := journaledRun(t, t.TempDir(), p, opts)

	// Crash a storeless session (the dead node had no store wired)...
	dir := t.TempDir()
	if !crashRun(t, dir, p, opts, Plan{CrashAfterAppends: appends / 2}) {
		t.Fatal("crash point not reached")
	}
	// ...and resume it on a "node" that has one: the journal replay must
	// write the dead session's evaluations through to the store.
	storeDir := t.TempDir()
	o := opts
	o.Store = mustStore(t, storeDir, 0)
	sess, err := journal.Replay(dir)
	if err != nil || sess.Checkpoint == nil {
		t.Fatalf("replay: err=%v checkpoint=%v", err, sess != nil && sess.Checkpoint != nil)
	}
	res := resumeRun(t, dir, p, o)
	if !res.Resumed {
		t.Fatal("did not resume")
	}
	store := mustStore(t, storeDir, 0)
	if st := store.Stats(); st.Entries == 0 {
		t.Fatalf("resume warmed nothing into the store: %+v", st)
	}

	warm := core.Repair(p, o)
	if warm.StoreHits == 0 {
		t.Fatalf("follow-up session got no store hits: %s", warm.Summary())
	}
	if warm.Canonical() != res.Canonical() {
		t.Fatal("follow-up session diverged from resumed session")
	}
}
