package chaos

import (
	"fmt"
	"os"
	"sync"
	"time"

	"acr/internal/evalstore"
)

// StorePlan is a deterministic fault plan for the persistent evaluation
// store (internal/evalstore). Counter-driven like Plan: the engine consults
// the store on a single goroutine in proposal order, so a plan's injection
// sequence reproduces exactly across runs and parallelism levels.
type StorePlan struct {
	// ReadErrEveryN injects an I/O error (an EIO-shaped read failure) into
	// every Nth store read (0 = off). The store must answer with a miss.
	ReadErrEveryN int
	// WriteErrEveryN injects an I/O error into every Nth store write
	// (0 = off). The entry is simply never stored.
	WriteErrEveryN int
	// ENOSPCEveryN injects a no-space failure into every Nth store write
	// (0 = off). Semantically identical to WriteErrEveryN at the store's
	// contract boundary — both degrade to "the write did not happen" — but
	// kept separate so fault schedules can mix the two shapes.
	ENOSPCEveryN int
	// FlipBitEveryN flips one bit in every Nth entry after it lands on disk
	// (0 = off): at-rest bit rot. The next read of that entry must detect
	// the damage (CRC), quarantine it, and fall back to simulation.
	FlipBitEveryN int
	// TornTailEveryN truncates every Nth entry to half its length after it
	// lands (0 = off): a write torn by power loss. Detected by framing.
	TornTailEveryN int
	// SlowIO sleeps this long before every store read and write (0 = off):
	// a pathologically slow disk. Purely a latency tax — nothing about the
	// result may change.
	SlowIO time.Duration
}

// StoreStats counts what the store injector actually did.
type StoreStats struct {
	// Reads and Writes count store operations observed.
	Reads, Writes int
	// ReadErrsInjected and WriteErrsInjected count injected I/O failures
	// (WriteErrsInjected includes the ENOSPC shape).
	ReadErrsInjected, WriteErrsInjected int
	// FlipsInjected and TearsInjected count entries damaged at rest.
	FlipsInjected, TearsInjected int
}

// StoreError is an injected storage I/O failure.
type StoreError struct {
	// Op is "read" or "write"; N is the 1-based operation count.
	Op string
	N  int
	// NoSpace marks the ENOSPC shape.
	NoSpace bool
}

// Error implements error.
func (e StoreError) Error() string {
	if e.NoSpace {
		return fmt.Sprintf("chaos: injected ENOSPC on store %s %d", e.Op, e.N)
	}
	return fmt.Sprintf("chaos: injected I/O error on store %s %d", e.Op, e.N)
}

// StoreInjector executes a StorePlan against one evalstore.Store via its
// fault hooks. Safe for concurrent use; the engine drives it
// deterministically regardless.
type StoreInjector struct {
	mu    sync.Mutex
	plan  StorePlan
	stats StoreStats
}

// NewStore builds a store injector for the plan.
func NewStore(plan StorePlan) *StoreInjector {
	return &StoreInjector{plan: plan}
}

// Wire installs the injector's hooks on a store and returns the store, so
// call sites can wire inline: inj.Wire(mustOpen(dir)).
func (si *StoreInjector) Wire(s *evalstore.Store) *evalstore.Store {
	s.SetHooks(evalstore.Hooks{
		BeforeRead:  si.beforeRead,
		BeforeWrite: si.beforeWrite,
		AfterWrite:  si.afterWrite,
	})
	return s
}

func (si *StoreInjector) beforeRead(string) error {
	si.mu.Lock()
	si.stats.Reads++
	n := si.stats.Reads
	inject := si.plan.ReadErrEveryN > 0 && n%si.plan.ReadErrEveryN == 0
	if inject {
		si.stats.ReadErrsInjected++
	}
	delay := si.plan.SlowIO
	si.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if inject {
		return StoreError{Op: "read", N: n}
	}
	return nil
}

func (si *StoreInjector) beforeWrite(string) error {
	si.mu.Lock()
	si.stats.Writes++
	n := si.stats.Writes
	var inject error
	if si.plan.WriteErrEveryN > 0 && n%si.plan.WriteErrEveryN == 0 {
		inject = StoreError{Op: "write", N: n}
	} else if si.plan.ENOSPCEveryN > 0 && n%si.plan.ENOSPCEveryN == 0 {
		inject = StoreError{Op: "write", N: n, NoSpace: true}
	}
	if inject != nil {
		si.stats.WriteErrsInjected++
	}
	delay := si.plan.SlowIO
	si.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return inject
}

// afterWrite damages every Nth freshly written entry in place: the on-disk
// state bit rot or a torn write would leave, applied right after the write
// so the very next read must already cope.
func (si *StoreInjector) afterWrite(path string) {
	si.mu.Lock()
	n := si.stats.Writes
	flip := si.plan.FlipBitEveryN > 0 && n%si.plan.FlipBitEveryN == 0
	tear := si.plan.TornTailEveryN > 0 && n%si.plan.TornTailEveryN == 0
	if flip {
		si.stats.FlipsInjected++
	}
	if tear && !flip {
		si.stats.TearsInjected++
	}
	si.mu.Unlock()
	if !flip && !tear {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	if flip {
		data[len(data)/2] ^= 0x01
	} else {
		data = data[:len(data)/2]
	}
	os.WriteFile(path, data, 0o644)
}

// StoreStats returns a snapshot of the store-injection counters.
func (si *StoreInjector) StoreStats() StoreStats {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.stats
}
