package chaos

import (
	"context"
	"testing"

	"acr/internal/core"
	"acr/internal/journal"
)

// crashRunParallel is crashRun with the crash seam wired directly onto the
// journal writer instead of through Wire(opts): Wire also installs the
// simulation hook, which the engine detects and answers by dropping to
// serial validation. Wiring only the journal hook leaves opts.Chaos nil, so
// validation genuinely fans out across workers while the crash still fires
// after the planned number of appends (journal appends are serialized
// behind the merge step, so the crash point is deterministic).
func crashRunParallel(t *testing.T, dir string, p core.Problem, opts core.Options, plan Plan) (crashed bool) {
	t.Helper()
	w, err := journal.Create(dir, core.SessionHeader("crash-test", p, opts))
	if err != nil {
		t.Fatal(err)
	}
	opts.Journal = w
	New(plan).WireJournal(w)
	defer func() {
		rec := recover()
		if rec == nil {
			w.Close()
			return
		}
		if _, ok := rec.(CrashPanic); !ok {
			panic(rec)
		}
		crashed = true
	}()
	core.RepairContext(context.Background(), p, opts)
	return false
}

// TestCrashResumeParallelValidation extends the byte-identity recovery
// invariant to parallel validation: a run crashed mid-search with 8
// validation workers resumes — at any worker count — to the result of the
// uninterrupted serial run. The resumed engine also warms its evaluation
// cache from the journaled candidate digests, so the hit/miss counters in
// Canonical() survive the crash too.
func TestCrashResumeParallelValidation(t *testing.T) {
	p := figure2Problem()
	serial := core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25, Parallelism: 1}
	straight, appends := journaledRun(t, t.TempDir(), p, serial)
	if !straight.Feasible {
		t.Fatalf("uninterrupted run infeasible: %s", straight.Summary())
	}
	want := straight.Canonical()
	if appends < 4 {
		t.Fatalf("run too short to crash interestingly: %d appends", appends)
	}

	par := serial
	par.Parallelism = 8
	for _, n := range []int{2, appends / 2, appends - 1} {
		for _, resumeWorkers := range []int{1, 8} {
			dir := t.TempDir()
			if !crashRunParallel(t, dir, p, par, Plan{CrashAfterAppends: n}) {
				t.Fatalf("crash point %d not reached", n)
			}
			resumeOpts := serial
			resumeOpts.Parallelism = resumeWorkers
			res := resumeRun(t, dir, p, resumeOpts)
			if got := res.Canonical(); got != want {
				t.Errorf("crash@%d resumed -p %d: diverges from uninterrupted serial run\n--- want ---\n%s\n--- got ---\n%s",
					n, resumeWorkers, want, got)
			}
		}
	}
}
