// Package chaos is a deterministic fault-injection harness for the repair
// pipeline. It wraps the engine's two resilience seams — the per-prefix
// simulation hook (bgp.Options.PrefixHook) and the validation boundary
// (core.Options.Chaos) — with seeded fault plans: panics on the Nth
// prefix simulation, injected delays that trip deadlines, and transient
// verifier errors that exercise the engine's retry-with-backoff path.
//
// Plans are deterministic given their Seed and the engine's own
// determinism, so a chaos failure reproduces exactly. Typical use:
//
//	inj := chaos.New(chaos.Plan{Seed: 1, PanicEveryN: 10})
//	res := core.RepairContext(ctx, problem, inj.Wire(core.Options{}))
//	// res.CandidatesPanicked accounts for every injected panic that
//	// reached a candidate; inj.Stats() accounts for every injection.
package chaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"sync"
	"time"

	"acr/internal/core"
	"acr/internal/journal"
)

// Plan is a seeded, deterministic fault plan.
type Plan struct {
	// Seed drives the probabilistic injections (PanicRate).
	Seed int64
	// PanicEveryN injects a panic into every Nth per-prefix simulation
	// (0 = off). The first injection happens on simulation number N.
	PanicEveryN int
	// PanicRate additionally injects a panic into each simulation with
	// this seeded probability (0 = off).
	PanicRate float64
	// MaxPanics caps the total injected panics (0 = unlimited).
	MaxPanics int
	// DelayPerSim sleeps this long at the start of every per-prefix
	// simulation — the knob for tripping deadlines mid-validation.
	DelayPerSim time.Duration
	// TransientEveryN returns a retryable error from every Nth validation
	// attempt at the engine boundary (0 = off).
	TransientEveryN int
	// MaxTransients caps the total injected transient errors
	// (0 = unlimited).
	MaxTransients int

	// --- crash points (journal seam) ------------------------------------

	// CrashAfterAppends simulates a process crash once N journal records
	// have been appended (0 = off): the next append never reaches the
	// WAL. With CrashKill the injector SIGKILLs its own process — a real,
	// unmaskable crash for end-to-end recovery tests; otherwise it panics
	// with CrashPanic, which unwinds the engine (the emission points sit
	// outside every quarantine boundary) for in-process tests to recover.
	CrashAfterAppends int
	// CrashTornTail additionally writes a torn frame — a plausible length
	// prefix, a garbage checksum, and a truncated payload — to the WAL
	// before crashing, simulating a write cut mid-record by the kill.
	CrashTornTail bool
	// CrashKill selects SIGKILL over panic at the crash point.
	CrashKill bool
}

// Stats counts what the injector actually did.
type Stats struct {
	// Simulations counts per-prefix simulations observed.
	Simulations int
	// PanicsInjected counts panics raised into the simulator.
	PanicsInjected int
	// ValidateCalls counts validation attempts observed at the engine
	// boundary.
	ValidateCalls int
	// TransientsInjected counts retryable errors handed to the engine.
	TransientsInjected int
	// JournalAppends counts journal appends observed.
	JournalAppends int
	// CrashesInjected counts simulated crashes raised at the journal seam
	// (0 or 1: a crash ends the run).
	CrashesInjected int
}

// PanicValue is the value an injected panic carries, so recovery sites
// (and tests) can tell harness panics from real bugs.
type PanicValue struct {
	// Sim is the 1-based simulation count at injection time.
	Sim int
	// Prefix is the prefix whose simulation was killed.
	Prefix netip.Prefix
}

// String renders the panic value.
func (v PanicValue) String() string {
	return fmt.Sprintf("chaos: injected panic on simulation %d (prefix %s)", v.Sim, v.Prefix)
}

// TransientError is a retryable injected fault; it satisfies the engine's
// Transient() retry contract.
type TransientError struct {
	// Call is the 1-based validation-attempt count at injection time.
	Call int
}

// Error implements error.
func (e TransientError) Error() string {
	return fmt.Sprintf("chaos: injected transient verifier error on attempt %d", e.Call)
}

// Transient marks the error retryable.
func (e TransientError) Transient() bool { return true }

// Injector executes a Plan. It is safe for concurrent use; its counters
// advance in the deterministic order the (deterministic, single-threaded)
// engine drives it.
type Injector struct {
	mu    sync.Mutex
	plan  Plan
	rng   *rand.Rand
	stats Stats
	// wal is the journal's WAL path, captured by WireJournal so a torn
	// tail can be written at the crash point.
	wal string
	// writer is the wired journal writer, abandoned (descriptor and
	// session lock released, nothing synced) when a simulated in-process
	// crash fires — the state a real process death leaves behind.
	writer *journal.Writer
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Wire installs the injector into repair options: the simulator seam
// (every per-prefix simulation the engine or its verifier performs), the
// validation boundary, and — when the options carry a journal writer —
// the journal-append seam for crash-point injection. It returns the
// modified options.
func (i *Injector) Wire(opts core.Options) core.Options {
	opts.SimOpts.PrefixHook = i.PrefixHook
	opts.Chaos = i
	if opts.Journal != nil {
		i.WireJournal(opts.Journal)
	}
	return opts
}

// WireJournal installs the crash-point seam on a journal writer.
func (i *Injector) WireJournal(w *journal.Writer) {
	i.mu.Lock()
	i.wal = journal.WALPath(w.Dir())
	i.writer = w
	i.mu.Unlock()
	w.Hook = i.JournalHook
}

// CrashPanic is the value a simulated (non-SIGKILL) crash panics with.
// It deliberately unwinds the whole engine: journal emission points sit
// outside every candidate-quarantine boundary, so nothing absorbs it
// before the test harness does.
type CrashPanic struct {
	// Appends is the number of records durably appended before the crash.
	Appends int
}

// String renders the panic value.
func (c CrashPanic) String() string {
	return fmt.Sprintf("chaos: injected crash after %d journal appends", c.Appends)
}

// JournalHook is the journal seam (journal.AppendHook): called before the
// nth append, it simulates a crash once the plan's append budget is
// spent. Exactly CrashAfterAppends records reach the WAL.
func (i *Injector) JournalHook(n int, _ *journal.Record) error {
	i.mu.Lock()
	i.stats.JournalAppends = n
	crash := i.plan.CrashAfterAppends > 0 && n > i.plan.CrashAfterAppends
	if crash {
		i.stats.CrashesInjected++
	}
	torn, kill, wal, w := i.plan.CrashTornTail, i.plan.CrashKill, i.wal, i.writer
	appended := i.plan.CrashAfterAppends
	i.mu.Unlock()
	if !crash {
		return nil
	}
	if torn && wal != "" {
		tearWAL(wal)
	}
	if kill {
		// A real SIGKILL: no deferred functions, no recovery — the
		// strongest possible crash for end-to-end resume tests.
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Kill()
			// Kill is asynchronous; do not let the engine race ahead.
			select {}
		}
	}
	if w != nil {
		// Release the WAL descriptor and session lock the way process
		// death would, so the same process can replay and resume the dir.
		w.Abandon()
	}
	panic(CrashPanic{Appends: appended})
}

// KillSwitch is the daemon-scale crash point: a single counter shared by
// every journal writer of a multi-job process (the `acr serve` worker
// pool), SIGKILLing the whole process once the total number of appends —
// across all jobs, in whatever order the pool interleaves them — reaches
// its budget. Unlike Plan.CrashAfterAppends, which crashes one engine run,
// the KillSwitch takes down a daemon mid-flight so recovery tests can
// assert every in-flight job resumes on restart.
type KillSwitch struct {
	mu    sync.Mutex
	after int
	seen  int
	fired bool
	// kill is the crash action, overridable by tests; the default SIGKILLs
	// this process.
	kill func()
}

// NewKillSwitch arms a switch that kills the process on append number
// after+1 (so exactly `after` records across all writers reach the WALs,
// mirroring Plan.CrashAfterAppends). after <= 0 disarms it.
func NewKillSwitch(after int) *KillSwitch {
	return &KillSwitch{after: after, kill: func() {
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Kill()
			select {} // Kill is asynchronous; never let the caller race ahead
		}
	}}
}

// Hook is the journal.AppendHook to install on every writer the process
// opens. The per-writer append count n is ignored: the switch counts
// process-wide.
func (k *KillSwitch) Hook(_ int, _ *journal.Record) error {
	k.mu.Lock()
	k.seen++
	fire := k.after > 0 && k.seen > k.after && !k.fired
	if fire {
		k.fired = true
	}
	kill := k.kill
	k.mu.Unlock()
	if fire {
		kill()
	}
	return nil
}

// Seen reports the process-wide append count observed so far.
func (k *KillSwitch) Seen() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.seen
}

// tearWAL appends a torn frame to the WAL: a header promising a 200-byte
// payload, a garbage checksum, and 24 bytes of debris — the on-disk shape
// of a record cut mid-write. Best effort: a tear that cannot be written
// is simply a clean crash.
func tearWAL(path string) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	tail := make([]byte, 8+24)
	binary.BigEndian.PutUint32(tail[0:4], 200)
	binary.BigEndian.PutUint32(tail[4:8], 0xDEADBEEF)
	copy(tail[8:], `{"seq":999,"type":"checkp`)
	f.Write(tail)
}

// PrefixHook is the simulator seam: it observes one per-prefix simulation
// and may sleep (DelayPerSim) or panic (PanicEveryN / PanicRate) per plan.
func (i *Injector) PrefixHook(p netip.Prefix) {
	i.mu.Lock()
	i.stats.Simulations++
	n := i.stats.Simulations
	inject := false
	if i.plan.PanicEveryN > 0 && n%i.plan.PanicEveryN == 0 {
		inject = true
	}
	if i.plan.PanicRate > 0 && i.rng.Float64() < i.plan.PanicRate {
		inject = true
	}
	if inject && i.plan.MaxPanics > 0 && i.stats.PanicsInjected >= i.plan.MaxPanics {
		inject = false
	}
	if inject {
		i.stats.PanicsInjected++
	}
	delay := i.plan.DelayPerSim
	i.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if inject {
		panic(PanicValue{Sim: n, Prefix: p})
	}
}

// BeforeValidate is the engine-boundary seam (core.FaultInjector): it may
// return a transient error per plan, which the engine retries with
// backoff.
func (i *Injector) BeforeValidate() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stats.ValidateCalls++
	n := i.stats.ValidateCalls
	if i.plan.TransientEveryN > 0 && n%i.plan.TransientEveryN == 0 {
		if i.plan.MaxTransients == 0 || i.stats.TransientsInjected < i.plan.MaxTransients {
			i.stats.TransientsInjected++
			return TransientError{Call: n}
		}
	}
	return nil
}

// Stats returns a snapshot of the injection counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}
