package scenario

import (
	"fmt"
	"net/netip"

	"acr/internal/netcfg"
	"acr/internal/topo"
	"acr/internal/verify"
)

// GenOptions parameterizes the correct-scenario generators.
type GenOptions struct {
	// StaticOriginEvery makes every Nth originating stub use the
	// static-route + `redistribute static` origination style instead of a
	// network statement (0 disables). This is the configuration idiom
	// whose missing redistribution line is the paper's most common
	// misconfiguration (Table 1, 20.8%).
	StaticOriginEvery int
	// ReachPerPrefix is the number of reachability intents generated per
	// originated prefix (sources rotate across other stubs). Default 2.
	ReachPerPrefix int
	// WithScrubber (DCN only) attaches a scrubber appliance to spine0-0
	// and steers dst-port-9999 flows from leaf0-0 through it with PBR,
	// plus the waypoint intents asserting that.
	WithScrubber bool
	// WithGlobalIntents adds loop-free intents per prefix.
	WithGlobalIntents bool
	// FullIsolation (WAN only) generates an isolation intent for EVERY
	// PoP×DCN pair instead of two rotating pairs per PoP, so any single
	// leak is visible to the test suite (the incident corpus needs this).
	FullIsolation bool
}

func (o GenOptions) reachPerPrefix() int {
	if o.ReachPerPrefix <= 0 {
		return 2
	}
	return o.ReachPerPrefix
}

// ScrubberPort is the destination port steered through the scrubber.
const ScrubberPort = 9999

// DCN builds a correct k-ary fat-tree scenario.
func DCN(k int, opts GenOptions) *Scenario {
	t := topo.FatTree(topo.FatTreeOpts{K: k})
	var scrubHost string
	if opts.WithScrubber {
		sc := t.AddNode("scrubber", topo.DCN, 62000, netip.MustParseAddr("1.0.200.1"))
		_ = sc
		t.Connect("scrubber", "spine0-0")
		scrubHost = "scrubber"
	}
	s := &Scenario{
		Name:    fmt.Sprintf("dcn-k%d", k),
		Topo:    t,
		Configs: map[string]*netcfg.Config{},
		Notes:   fmt.Sprintf("correct %d-ary fat-tree; eBGP everywhere", k),
	}

	// Leaf origination styles alternate per StaticOriginEvery.
	leafIdx := 0
	for _, nd := range t.Nodes() {
		switch nd.Kind {
		case topo.Leaf:
			static := opts.StaticOriginEvery > 0 && leafIdx%opts.StaticOriginEvery == 0
			s.Configs[nd.Name] = fabricConfig(t, nd.Name, static, opts, scrubHost)
			leafIdx++
		case topo.Spine, topo.Core:
			s.Configs[nd.Name] = fabricConfig(t, nd.Name, false, opts, scrubHost)
		case topo.DCN: // the scrubber
			s.Configs[nd.Name] = stubConfig(t, nd.Name, false)
		}
	}

	s.Intents = genReachIntents(t, opts)
	if opts.WithScrubber {
		src := t.Node("leaf0-0").Originates[0]
		for l := 1; l < k/2; l++ {
			dst := t.Node(fmt.Sprintf("leaf0-%d", l)).Originates[0]
			s.Intents = append(s.Intents, verify.Intent{
				ID:        fmt.Sprintf("waypoint-scrub-%d", l),
				Kind:      verify.Waypoint,
				SrcPrefix: src,
				DstPrefix: dst,
				Via:       "scrubber",
				DstPort:   ScrubberPort,
			})
		}
	}
	if opts.WithGlobalIntents {
		for i, p := range t.AllOriginated() {
			s.Intents = append(s.Intents, verify.LoopFreeIntent(fmt.Sprintf("loopfree-%d", i), p))
		}
	}
	return s
}

// fabricConfig emits a fat-tree node's configuration: plain eBGP to every
// adjacency, origination for leaves, and the scrubber PBR on spine0-0.
func fabricConfig(t *topo.Network, name string, originStatic bool, opts GenOptions, scrubHost string) *netcfg.Config {
	nd := t.Node(name)
	b := netcfg.NewBuilder(name)
	g := b.BGP(nd.ASN).RouterID(nd.RouterID)
	for _, adj := range t.Adjacencies(name) {
		g.Peer(adj.PeerAddr, t.Node(adj.PeerNode).ASN)
	}
	if originStatic {
		g.RedistributeStatic("")
	} else {
		for _, p := range nd.Originates {
			g.Network(p)
		}
	}
	b = g.End()
	if originStatic {
		for _, p := range nd.Originates {
			b.StaticNull(p)
		}
	}
	pbrBind := map[string]string{}
	if scrubHost != "" && name == "spine0-0" {
		scrubAddr := adjacencyAddr(t, name, scrubHost)
		pb := b.PBRPolicy("Scrub")
		idx := 10
		for _, adj := range t.Adjacencies(name) {
			leaf := t.Node(adj.PeerNode)
			if leaf.Kind != topo.Leaf || leaf.Name == "leaf0-0" {
				continue
			}
			pb.Rule(idx, true).
				MatchDest(leaf.Originates[0]).
				MatchDstPort(ScrubberPort).
				ApplyNextHop(scrubAddr)
			idx += 10
		}
		b = pb.End()
		// Bind on the ingress from leaf0-0.
		for _, adj := range t.Adjacencies(name) {
			if adj.PeerNode == "leaf0-0" {
				pbrBind[adj.Iface] = "Scrub"
			}
		}
	}
	emitInterfaces(b, nd, pbrBind)
	return b.Build()
}

// WANGroupPoPFacing and friends name the peer groups of WAN backbone
// routers; the incident injector targets their lines.
const (
	WANGroupPoPFacing = "PoPFacing"
	WANGroupDCNFacing = "DCNFacing"
	WANPolicyNoLeak   = "NoLeakDCN"
	WANPolicyMaint    = "Maintenance"
	WANListDCN        = "DCN_PREFIXES"
)

// WAN builds a correct wide-area scenario: a backbone ring with chords,
// PoP and DCN stubs, and the isolation policy structure of a production
// WAN — DCN prefixes must never be announced toward PoPs, enforced by a
// deny route-policy attached to the PoPFacing peer group on every
// backbone router. A dormant Maintenance deny-all policy is defined (but
// not attached) everywhere, mirroring the paper's "fail to dis-enable
// route map" error class.
func WAN(routers, pops, dcns int, opts GenOptions) *Scenario {
	t := topo.BackboneMesh(topo.BackboneOpts{Routers: routers, Chord: 2, PoPs: pops, DCNs: dcns})
	s := &Scenario{
		Name:    fmt.Sprintf("wan-%dx%dx%d", routers, pops, dcns),
		Topo:    t,
		Configs: map[string]*netcfg.Config{},
		Notes:   "correct WAN backbone with DCN-isolation export policies",
	}
	var dcnPrefixes []netip.Prefix
	for _, nd := range t.Nodes() {
		if nd.Kind == topo.DCN {
			dcnPrefixes = append(dcnPrefixes, nd.Originates...)
		}
	}
	stubIdx := 0
	for _, nd := range t.Nodes() {
		switch nd.Kind {
		case topo.Backbone:
			s.Configs[nd.Name] = wanBackboneConfig(t, nd.Name, dcnPrefixes)
		case topo.PoP, topo.DCN:
			static := opts.StaticOriginEvery > 0 && stubIdx%opts.StaticOriginEvery == 0
			s.Configs[nd.Name] = stubConfig(t, nd.Name, static)
			stubIdx++
		}
	}
	s.Intents = genReachIntents(t, opts)
	// Isolation: every PoP must be unable to reach every DCN (rotating
	// pairs to bound the suite size).
	popNodes, dcnNodes := stubsOf(t, topo.PoP), stubsOf(t, topo.DCN)
	pairsPerPoP := min(2, len(dcnNodes))
	if opts.FullIsolation {
		pairsPerPoP = len(dcnNodes)
	}
	for i, pop := range popNodes {
		for j := 0; j < pairsPerPoP; j++ {
			dcn := dcnNodes[(i+j)%len(dcnNodes)]
			s.Intents = append(s.Intents, verify.IsolationIntent(
				fmt.Sprintf("isolate-%s-%s", pop.Name, dcn.Name),
				pop.Originates[0], dcn.Originates[0]))
		}
	}
	if opts.WithGlobalIntents {
		for i, p := range t.AllOriginated() {
			s.Intents = append(s.Intents, verify.LoopFreeIntent(fmt.Sprintf("loopfree-%d", i), p))
		}
	}
	return s
}

func wanBackboneConfig(t *topo.Network, name string, dcnPrefixes []netip.Prefix) *netcfg.Config {
	nd := t.Node(name)
	b := netcfg.NewBuilder(name)
	g := b.BGP(nd.ASN).RouterID(nd.RouterID)
	hasPoP := false
	for _, adj := range t.Adjacencies(name) {
		peer := t.Node(adj.PeerNode)
		g.Peer(adj.PeerAddr, peer.ASN)
		switch peer.Kind {
		case topo.PoP:
			g.PeerInGroup(adj.PeerAddr, WANGroupPoPFacing)
			hasPoP = true
		case topo.DCN:
			g.PeerInGroup(adj.PeerAddr, WANGroupDCNFacing)
		}
	}
	if hasPoP {
		g.GroupPolicy(WANGroupPoPFacing, WANPolicyNoLeak, netcfg.Export)
	}
	b = g.End()
	for i, p := range dcnPrefixes {
		b.PrefixListEntry(WANListDCN, 10*(i+1), true, p, 0, 0)
	}
	b.RoutePolicy(WANPolicyNoLeak, false, 10).
		MatchIPPrefix(WANListDCN).
		End().
		RoutePolicy(WANPolicyNoLeak, true, 20).
		End()
	// Dormant maintenance policy: deny everything; attaching it to a peer
	// kills that session's routes. Correct configs leave it unattached.
	b.RoutePolicy(WANPolicyMaint, false, 10).End()
	emitInterfaces(b, nd, nil)
	return b.Build()
}

// genReachIntents creates ReachPerPrefix reachability intents per
// originated prefix, rotating sources among the other originating stubs
// of a compatible side (PoPs reach PoPs, DCNs reach DCNs, leaves reach
// leaves), so a correct WAN passes despite isolation policies.
func genReachIntents(t *topo.Network, opts GenOptions) []verify.Intent {
	var intents []verify.Intent
	origins := originators(t)
	for i, nd := range origins {
		picked := 0
		for r := 1; r < len(origins) && picked < opts.reachPerPrefix(); r++ {
			src := origins[(i+r)%len(origins)]
			if src.Name == nd.Name || !compatible(src.Kind, nd.Kind) {
				continue
			}
			picked++
			intents = append(intents, verify.ReachIntent(
				fmt.Sprintf("reach-%s-from-%s", nd.Name, src.Name),
				src.Originates[0], nd.Originates[0]))
		}
	}
	return intents
}

// compatible reports whether a flow from kind a to kind b is expected to
// be reachable in a correct network.
func compatible(a, b topo.Kind) bool {
	if a == topo.PoP && b == topo.DCN || a == topo.DCN && b == topo.PoP {
		return false // isolated by policy in WAN scenarios
	}
	return true
}

func originators(t *topo.Network) []*topo.Node {
	var out []*topo.Node
	for _, nd := range t.Nodes() {
		if len(nd.Originates) > 0 {
			out = append(out, nd)
		}
	}
	return out
}

func stubsOf(t *topo.Network, k topo.Kind) []*topo.Node {
	var out []*topo.Node
	for _, nd := range t.Nodes() {
		if nd.Kind == k {
			out = append(out, nd)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
