package scenario

import (
	"fmt"
	"net/netip"

	"acr/internal/netcfg"
	"acr/internal/topo"
	"acr/internal/verify"
)

// Prefixes of the Figure 2 network.
var (
	PrefixPoPA = netip.MustParsePrefix("10.70.0.0/16") // PoP attached to A
	PrefixPoPB = netip.MustParsePrefix("10.0.0.0/16")  // PoP attached to B — the flapping prefix
	PrefixDCNS = netip.MustParsePrefix("20.0.0.0/16")  // DCN attached to S
)

// Line anchors in router A's Figure 2b configuration. The layout is built
// so the paper's references hold exactly: line 9 is the DCN-side import
// attachment (Tarantula 0.67 in §5 step 1), line 11 the overbroad
// prefix-list entry the repair rewrites, lines 13-16 the as-path override
// policy, and lines 1 and 15 carry the router's AS number.
const (
	FigureALineBGP        = 1  // bgp 65001
	FigureALineDCNImport  = 9  // peer-group DCNSide route-policy Override_All import
	FigureALinePoPImport  = 10 // peer-group PoPSide route-policy Override_All import
	FigureALinePrefixList = 11 // ip prefix-list default_all index 10 permit 0.0.0.0/0 le 32
	FigureALinePolicy     = 13 // route-policy Override_All permit node 10
	FigureALineOverwrite  = 15 // apply as-path overwrite 65001
)

// Line anchors in router C's configuration.
const (
	FigureCLineDCNImport  = 7 // peer-group DCNSide route-policy Override_All import
	FigureCLinePrefixList = 8 // ip prefix-list default_all index 10 permit 0.0.0.0/0 le 32
)

// Figure2 builds the worked incident of the paper: the four-router
// backbone with the newly added S–C session, AS-path override policies on
// A and C whose prefix-lists match everything (the misconfiguration), and
// correctly restricted override policies on B and S. Under simulation,
// prefix 10.0.0.0/16 flaps (it has no stable routing state) and the
// DCN-S → PoP-B reachability intent is the only failing test of three.
func Figure2() *Scenario {
	t := topo.ExampleGraph(true)
	s := &Scenario{
		Name:    "figure2-incident",
		Topo:    t,
		Configs: map[string]*netcfg.Config{},
		Notes: "HotNets'24 ACR §2.2 example: override policies on A and C rewrite " +
			"AS_PATH of all routes received from the DCN side, disabling BGP loop " +
			"prevention and creating a route flap for 10.0.0.0/16.",
	}
	s.Configs["A"] = figure2RouterA(t, true)
	s.Configs["B"] = figure2RouterB(t)
	s.Configs["C"] = figure2RouterC(t, true)
	s.Configs["S"] = figure2RouterS(t)
	s.Configs["PoP-A"] = stubConfig(t, "PoP-A", false)
	s.Configs["PoP-B"] = stubConfig(t, "PoP-B", false)
	s.Configs["DCN-S"] = stubConfig(t, "DCN-S", false)
	s.Intents = Figure2Intents()
	s.FaultyLines = []netcfg.LineRef{
		{Device: "A", Line: FigureALinePrefixList},
		{Device: "C", Line: FigureCLinePrefixList},
	}
	return s
}

// Figure2Correct builds the same network with the repaired prefix-lists
// (the operators' fix from §2.2: the match-everything entries restricted
// to the prefixes that legitimately need rewriting). Every intent passes.
func Figure2Correct() *Scenario {
	s := Figure2()
	s.Name = "figure2-repaired"
	s.Configs["A"] = figure2RouterA(s.Topo, false)
	s.Configs["C"] = figure2RouterC(s.Topo, false)
	s.FaultyLines = nil
	s.Notes = "Figure 2 network with the operators' repair applied."
	return s
}

// Figure2Intents returns the three test properties of the worked example —
// one per subnetwork, as in the coverage table of Figure 2b. The
// DCN-S → PoP-B intent is the new requirement that triggered the incident.
func Figure2Intents() []verify.Intent {
	return []verify.Intent{
		verify.ReachIntent("reach-pop-a", PrefixDCNS, PrefixPoPA),
		verify.ReachIntent("reach-pop-b", PrefixDCNS, PrefixPoPB),
		verify.ReachIntent("reach-dcn-s", PrefixPoPA, PrefixDCNS),
	}
}

// figure2RouterA emits router A's configuration; faulty selects the
// original overbroad prefix-list (line 11), otherwise the repaired one.
func figure2RouterA(t *topo.Network, faulty bool) *netcfg.Config {
	aB := adjacencyAddr(t, "A", "B")
	aPoP := adjacencyAddr(t, "A", "PoP-A")
	aS := adjacencyAddr(t, "A", "S")
	b := netcfg.NewBuilder("A")
	g := b.BGP(65001). // line 1
				RouterID(netip.MustParseAddr("1.0.0.1")).              // line 2
				Peer(aB, 65002).                                       // line 3
				PeerInGroup(aB, "BackboneSide").                       // line 4
				Peer(aPoP, 64601).                                     // line 5
				PeerInGroup(aPoP, "PoPSide").                          // line 6
				Peer(aS, 65004).                                       // line 7
				PeerInGroup(aS, "DCNSide").                            // line 8
				GroupPolicy("DCNSide", "Override_All", netcfg.Import). // line 9
				GroupPolicy("PoPSide", "Override_All", netcfg.Import)  // line 10
	b = g.End()
	if faulty {
		// Line 11: the misconfiguration — rewrites every route.
		b.PrefixListEntry("default_all", 10, true, netip.MustParsePrefix("0.0.0.0/0"), 0, 32)
	} else {
		// The repair: only routes originated by the connected PoP and DCN.
		b.PrefixListEntry("default_all", 10, true, PrefixPoPA, 0, 0)
	}
	// Line 12: present in both variants so line numbering is identical;
	// under the faulty match-everything entry at index 10 it is never
	// reached (first match wins).
	b.PrefixListEntry("default_all", 20, true, PrefixDCNS, 0, 0)
	b.RoutePolicy("Override_All", true, 10). // line 13
							MatchIPPrefix("default_all"). // line 14
							ApplyASPathOverwrite(65001).  // line 15
							End().
							RoutePolicy("Override_All", true, 20). // line 16: explicit pass-through
							End()
	emitInterfaces(b, t.Node("A"), nil)
	return b.Build()
}

func figure2RouterB(t *topo.Network) *netcfg.Config {
	bA := adjacencyAddr(t, "B", "A")
	bC := adjacencyAddr(t, "B", "C")
	bPoP := adjacencyAddr(t, "B", "PoP-B")
	b := netcfg.NewBuilder("B")
	g := b.BGP(65002).
		RouterID(netip.MustParseAddr("1.0.0.2")).
		Peer(bA, 65001).
		PeerInGroup(bA, "BackboneSide").
		Peer(bC, 65003).
		PeerInGroup(bC, "BackboneSide").
		Peer(bPoP, 64602).
		PeerInGroup(bPoP, "PoPSide").
		GroupPolicy("PoPSide", "Override_Part", netcfg.Import)
	b = g.End()
	// B's override is correctly scoped to its connected PoP's prefix.
	b.PrefixListEntry("pop_prefixes", 10, true, PrefixPoPB, 0, 0)
	b.RoutePolicy("Override_Part", true, 10).
		MatchIPPrefix("pop_prefixes").
		ApplyASPathOverwrite(65002).
		End().
		RoutePolicy("Override_Part", true, 20).
		End()
	emitInterfaces(b, t.Node("B"), nil)
	return b.Build()
}

func figure2RouterC(t *topo.Network, faulty bool) *netcfg.Config {
	cB := adjacencyAddr(t, "C", "B")
	cS := adjacencyAddr(t, "C", "S")
	b := netcfg.NewBuilder("C")
	g := b.BGP(65003). // line 1
				RouterID(netip.MustParseAddr("1.0.0.3")).             // line 2
				Peer(cB, 65002).                                      // line 3
				PeerInGroup(cB, "BackboneSide").                      // line 4
				Peer(cS, 65004).                                      // line 5: the new session
				PeerInGroup(cS, "DCNSide").                           // line 6
				GroupPolicy("DCNSide", "Override_All", netcfg.Import) // line 7
	b = g.End()
	if faulty {
		// Line 8: same misconfiguration as A.
		b.PrefixListEntry("default_all", 10, true, netip.MustParsePrefix("0.0.0.0/0"), 0, 32)
	} else {
		b.PrefixListEntry("default_all", 10, true, PrefixPoPA, 0, 0)
	}
	b.PrefixListEntry("default_all", 20, true, PrefixDCNS, 0, 0) // line 9
	b.RoutePolicy("Override_All", true, 10).
		MatchIPPrefix("default_all").
		ApplyASPathOverwrite(65003).
		End().
		RoutePolicy("Override_All", true, 20).
		End()
	emitInterfaces(b, t.Node("C"), nil)
	return b.Build()
}

func figure2RouterS(t *topo.Network) *netcfg.Config {
	sA := adjacencyAddr(t, "S", "A")
	sC := adjacencyAddr(t, "S", "C")
	sD := adjacencyAddr(t, "S", "DCN-S")
	b := netcfg.NewBuilder("S")
	g := b.BGP(65004).
		RouterID(netip.MustParseAddr("1.0.0.4")).
		Peer(sA, 65001).
		PeerInGroup(sA, "BackboneSide").
		Peer(sC, 65003). // the new session
		PeerInGroup(sC, "BackboneSide").
		Peer(sD, 64701).
		PeerInGroup(sD, "DCNSide").
		GroupPolicy("DCNSide", "Override_Part", netcfg.Import)
	b = g.End()
	b.PrefixListEntry("dcn_prefixes", 10, true, PrefixDCNS, 0, 0)
	b.RoutePolicy("Override_Part", true, 10).
		MatchIPPrefix("dcn_prefixes").
		ApplyASPathOverwrite(65004).
		End().
		RoutePolicy("Override_Part", true, 20).
		End()
	emitInterfaces(b, t.Node("S"), nil)
	return b.Build()
}

// Figure2PaperRepair returns the reference repair as edit sets against the
// faulty scenario: restrict A's and C's default_all lists to the prefixes
// of the connected PoP and DCN (the §2.2 fix). Useful as a regression
// oracle for the repair engine.
func Figure2PaperRepair() []netcfg.EditSet {
	return []netcfg.EditSet{
		{Device: "A", Edits: []netcfg.Edit{netcfg.ReplaceLine{
			At:   FigureALinePrefixList,
			Text: netcfg.FormatPrefixListEntry("default_all", 10, true, PrefixPoPA, 0, 0),
		}}},
		{Device: "C", Edits: []netcfg.Edit{netcfg.ReplaceLine{
			At:   FigureCLinePrefixList,
			Text: netcfg.FormatPrefixListEntry("default_all", 10, true, PrefixPoPA, 0, 0),
		}}},
	}
}

// lineText is a debugging helper: the text of a LineRef in this scenario.
func (s *Scenario) lineText(ref netcfg.LineRef) string {
	return fmt.Sprintf("%s: %s", ref, s.Configs[ref.Device].Line(ref.Line))
}
