// Package scenario assembles complete, verifiable network cases: a
// topology, one configuration per device, and an intent specification.
// It provides the paper's Figure 2 incident with line-accurate
// configurations (the worked example of §2.2/§5), and generators for
// correct fat-tree DCN and WAN scenarios that the incident corpus injects
// the nine Table 1 error classes into.
package scenario

import (
	"fmt"
	"net/netip"
	"sort"

	"acr/internal/netcfg"
	"acr/internal/topo"
	"acr/internal/verify"
)

// Scenario is one complete case.
type Scenario struct {
	Name    string
	Topo    *topo.Network
	Configs map[string]*netcfg.Config
	Intents []verify.Intent
	// FaultyLines is ground truth for localization metrics: the lines an
	// operator would identify as the root cause. Empty for correct
	// scenarios.
	FaultyLines []netcfg.LineRef
	// Notes documents the case for reports.
	Notes string
}

// Files parses every configuration (panicking on malformed generated
// configs — generators must produce well-formed text).
func (s *Scenario) Files() map[string]*netcfg.File {
	out := make(map[string]*netcfg.File, len(s.Configs))
	for d, c := range s.Configs {
		out[d] = netcfg.MustParse(c)
	}
	return out
}

// Clone deep-copies the scenario (configs are immutable and shared; the
// maps and slices are fresh).
func (s *Scenario) Clone() *Scenario {
	cp := *s
	cp.Configs = make(map[string]*netcfg.Config, len(s.Configs))
	for d, c := range s.Configs {
		cp.Configs[d] = c
	}
	cp.Intents = append([]verify.Intent(nil), s.Intents...)
	cp.FaultyLines = append([]netcfg.LineRef(nil), s.FaultyLines...)
	return &cp
}

// TotalConfigLines sums configuration sizes — the denominator in search
// space comparisons.
func (s *Scenario) TotalConfigLines() int {
	n := 0
	for _, c := range s.Configs {
		n += c.NumLines()
	}
	return n
}

// adjacencyAddr returns the address of `peer` on its link with `router`.
func adjacencyAddr(t *topo.Network, router, peer string) netip.Addr {
	for _, adj := range t.Adjacencies(router) {
		if adj.PeerNode == peer {
			return adj.PeerAddr
		}
	}
	panic(fmt.Sprintf("scenario: no adjacency %s-%s", router, peer))
}

// emitInterfaces appends interface blocks for every assigned interface, in
// name order, optionally applying PBR policies per interface.
func emitInterfaces(b *netcfg.Builder, nd *topo.Node, pbr map[string]string) {
	names := make([]string, 0, len(nd.Ifaces))
	for n := range nd.Ifaces {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ib := b.Interface(n).Address(nd.Ifaces[n])
		if pol := pbr[n]; pol != "" {
			ib.PBR(pol)
		}
		ib.End()
	}
}

// stubConfig builds the standard configuration of a single-homed stub
// (PoP, DCN, leaf-like) router: session to its attachment router plus
// origination of its prefixes. originStatic selects the
// static+redistribute origination style instead of network statements —
// the style whose missing `redistribute static` line is the paper's most
// common misconfiguration.
func stubConfig(t *topo.Network, name string, originStatic bool) *netcfg.Config {
	nd := t.Node(name)
	b := netcfg.NewBuilder(name)
	g := b.BGP(nd.ASN).RouterID(nd.RouterID)
	for _, adj := range t.Adjacencies(name) {
		g.Peer(adj.PeerAddr, t.Node(adj.PeerNode).ASN)
	}
	if originStatic {
		g.RedistributeStatic("")
	} else {
		for _, p := range nd.Originates {
			g.Network(p)
		}
	}
	b = g.End()
	if originStatic {
		for _, p := range nd.Originates {
			b.StaticNull(p)
		}
	}
	emitInterfaces(b, nd, nil)
	return b.Build()
}
