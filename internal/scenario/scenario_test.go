package scenario

import (
	"net/netip"
	"strings"
	"testing"

	"acr/internal/analysis"
	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/topo"
	"acr/internal/verify"
)

func verifyScenario(t *testing.T, s *Scenario) (*bgp.Net, *bgp.Outcome, *verify.Report) {
	t.Helper()
	n := bgp.Compile(s.Topo, s.Files())
	out := bgp.Simulate(n, bgp.Options{})
	return n, out, verify.Verify(n, out, s.Intents)
}

func TestFigure2LineAnchors(t *testing.T) {
	s := Figure2()
	a := s.Configs["A"]
	cases := []struct {
		line int
		want string
	}{
		{FigureALineBGP, "bgp 65001"},
		{FigureALineDCNImport, "peer-group DCNSide route-policy Override_All import"},
		{FigureALinePoPImport, "peer-group PoPSide route-policy Override_All import"},
		{FigureALinePrefixList, "ip prefix-list default_all index 10 permit 0.0.0.0/0 le 32"},
		{FigureALinePolicy, "route-policy Override_All permit node 10"},
		{FigureALineOverwrite, "apply as-path overwrite 65001"},
	}
	for _, tc := range cases {
		got := strings.TrimSpace(a.Line(tc.line))
		if got != tc.want {
			t.Errorf("A line %d = %q, want %q", tc.line, got, tc.want)
		}
	}
	c := s.Configs["C"]
	if got := strings.TrimSpace(c.Line(FigureCLineDCNImport)); got != "peer-group DCNSide route-policy Override_All import" {
		t.Errorf("C line %d = %q", FigureCLineDCNImport, got)
	}
	if got := strings.TrimSpace(c.Line(FigureCLinePrefixList)); !strings.HasPrefix(got, "ip prefix-list default_all index 10 permit 0.0.0.0/0") {
		t.Errorf("C line %d = %q", FigureCLinePrefixList, got)
	}
	// Line 16 is the explicit pass-through node closing the policy span
	// 13-16, matching the paper's "lines 13-16".
	if got := strings.TrimSpace(a.Line(16)); got != "route-policy Override_All permit node 20" {
		t.Errorf("A line 16 = %q", got)
	}
}

func TestFigure2ConfigsParseClean(t *testing.T) {
	s := Figure2()
	for d, c := range s.Configs {
		f, err := netcfg.Parse(c)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		probs := analysis.Validate(f)
		// Static analysis correctly flags the seeded shadowed prefix-list
		// entry on A and C; every other device must be clean.
		wantFaulty := d == "A" || d == "C"
		if wantFaulty && len(probs) == 0 {
			t.Errorf("%s: expected the shadowed prefix-list finding, got none", d)
		}
		if !wantFaulty && len(probs) != 0 {
			t.Errorf("%s: validate: %v", d, probs)
		}
	}
}

func TestFigure2IncidentBehavior(t *testing.T) {
	s := Figure2()
	_, out, rep := verifyScenario(t, s)

	po := out.ByPrefix[PrefixPoPB]
	if po == nil || po.Converged {
		t.Fatalf("10.0.0.0/16 should flap; outcome: %+v", po)
	}
	// The other two prefixes are stable.
	for _, p := range []netip.Prefix{PrefixPoPA, PrefixDCNS} {
		if !out.ByPrefix[p].Converged {
			t.Errorf("%s should converge", p)
		}
	}
	if got := rep.NumFailed(); got != 1 {
		t.Fatalf("failed intents = %d, want exactly 1 (the paper's single failed case)\n%s", got, rep.Summary())
	}
	v := rep.ByID("reach-pop-b")
	if v == nil || v.Pass {
		t.Fatalf("reach-pop-b should be the failing intent\n%s", rep.Summary())
	}
	if !v.Flapping {
		t.Error("failing verdict should be marked flapping")
	}
}

func TestFigure2CorrectAllPass(t *testing.T) {
	s := Figure2Correct()
	_, out, rep := verifyScenario(t, s)
	if !out.Converged() {
		t.Fatalf("repaired network must converge: %v", out.FlappingPrefixes())
	}
	if rep.NumFailed() != 0 {
		t.Fatalf("repaired network must pass all intents:\n%s", rep.Summary())
	}
}

func TestFigure2PaperRepairFixes(t *testing.T) {
	s := Figure2()
	configs := map[string]*netcfg.Config{}
	for d, c := range s.Configs {
		configs[d] = c
	}
	for _, es := range Figure2PaperRepair() {
		next, err := es.Apply(configs[es.Device])
		if err != nil {
			t.Fatal(err)
		}
		configs[es.Device] = next
	}
	files := map[string]*netcfg.File{}
	for d, c := range configs {
		files[d] = netcfg.MustParse(c)
	}
	n := bgp.Compile(s.Topo, files)
	out := bgp.Simulate(n, bgp.Options{})
	rep := verify.Verify(n, out, s.Intents)
	if !out.Converged() || rep.NumFailed() != 0 {
		t.Fatalf("paper repair does not fix the network:\n%s\n%s", out.Describe(), rep.Summary())
	}
}

func TestFigure2PartialRepairLeavesCSProblem(t *testing.T) {
	// Repair only A (the provenance baselines' mistake, §2.3): the flap
	// persists through C and S, and some phase exhibits the C–S loop.
	s := Figure2()
	es := Figure2PaperRepair()[0] // A only
	next, err := es.Apply(s.Configs["A"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["A"] = next
	_, out, rep := verifyScenario(t, s)
	po := out.ByPrefix[PrefixPoPB]
	if po.Converged {
		t.Fatal("partial repair should not stabilize 10.0.0.0/16")
	}
	if got := rep.NumFailed(); got != 1 {
		t.Fatalf("failed intents after partial repair = %d, want 1 (unchanged)\n%s", got, rep.Summary())
	}
	flapping := po.FlappingRouters()
	hasC, hasS := false, false
	for _, r := range flapping {
		if r == "C" {
			hasC = true
		}
		if r == "S" {
			hasS = true
		}
	}
	if !hasC || !hasS {
		t.Errorf("flapping routers = %v, want C and S involved", flapping)
	}
	// The C–S forwarding loop phase from the paper.
	foundLoop := false
	for _, ph := range po.Phases() {
		c, sr := ph["C"], ph["S"]
		if c == nil || sr == nil {
			continue
		}
		if c.PeerAddr == adjacencyAddr(s.Topo, "C", "S") && sr.PeerAddr == adjacencyAddr(s.Topo, "S", "C") {
			foundLoop = true
		}
	}
	if !foundLoop {
		t.Error("no phase exhibits the C–S forwarding loop the paper describes")
	}
}

func TestFigure2GroundTruthLines(t *testing.T) {
	s := Figure2()
	for _, ref := range s.FaultyLines {
		text := s.Configs[ref.Device].Line(ref.Line)
		if !strings.Contains(text, "0.0.0.0/0") {
			t.Errorf("ground-truth line %v = %q, want the overbroad prefix-list entry", ref, text)
		}
	}
	_ = s.lineText(s.FaultyLines[0]) // exercise the debug helper
}

func TestDCNScenarioCorrect(t *testing.T) {
	s := DCN(4, GenOptions{StaticOriginEvery: 2, WithScrubber: true, WithGlobalIntents: true})
	if len(s.Intents) == 0 {
		t.Fatal("no intents generated")
	}
	_, out, rep := verifyScenario(t, s)
	if !out.Converged() {
		t.Fatalf("correct DCN must converge: %v", out.FlappingPrefixes())
	}
	if rep.NumFailed() != 0 {
		t.Fatalf("correct DCN must pass:\n%s", rep.Summary())
	}
	var hasWaypoint bool
	for _, in := range s.Intents {
		if in.Kind == verify.Waypoint {
			hasWaypoint = true
		}
	}
	if !hasWaypoint {
		t.Error("scrubber scenario generated no waypoint intents")
	}
}

func TestDCNWaypointActuallyTraverses(t *testing.T) {
	s := DCN(4, GenOptions{WithScrubber: true})
	_, _, rep := verifyScenario(t, s)
	for _, v := range rep.Verdicts {
		if v.Intent.Kind != verify.Waypoint {
			continue
		}
		if !v.Pass {
			t.Fatalf("waypoint intent failed: %s (%s)", v.Intent, v.Reason)
		}
		for _, tr := range v.Traces {
			if !tr.Visits("scrubber") {
				t.Errorf("trace %s does not visit scrubber", tr.PathString())
			}
		}
	}
}

func TestWANScenarioCorrect(t *testing.T) {
	s := WAN(6, 3, 2, GenOptions{StaticOriginEvery: 3, WithGlobalIntents: true})
	_, out, rep := verifyScenario(t, s)
	if !out.Converged() {
		t.Fatalf("correct WAN must converge: %v", out.FlappingPrefixes())
	}
	if rep.NumFailed() != 0 {
		t.Fatalf("correct WAN must pass:\n%s", rep.Summary())
	}
	var isolations int
	for _, in := range s.Intents {
		if in.Kind == verify.Isolation {
			isolations++
		}
	}
	if isolations == 0 {
		t.Error("WAN generated no isolation intents")
	}
}

func TestWANIsolationEnforced(t *testing.T) {
	// Remove the NoLeak attachment on one backbone router: its PoP must
	// now reach DCN prefixes — isolation intents fail.
	s := WAN(6, 3, 2, GenOptions{})
	var victim string
	var attachLine int
	for d, c := range s.Configs {
		f := netcfg.MustParse(c)
		if g := f.GroupByName(WANGroupPoPFacing); g != nil && len(g.Policies) > 0 {
			victim = d
			attachLine = g.Policies[0].Line
			break
		}
	}
	if victim == "" {
		t.Fatal("no backbone router with PoPFacing policy found")
	}
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: attachLine}}}.Apply(s.Configs[victim])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs[victim] = next
	_, _, rep := verifyScenario(t, s)
	if rep.NumFailed() == 0 {
		t.Fatalf("deleting NoLeak attachment on %s should break isolation\n%s", victim, rep.Summary())
	}
	for _, v := range rep.Failed() {
		if v.Intent.Kind != verify.Isolation {
			t.Errorf("unexpected non-isolation failure: %s (%s)", v.Intent, v.Reason)
		}
	}
}

func TestScenarioClone(t *testing.T) {
	s := Figure2()
	c := s.Clone()
	c.Configs["A"] = netcfg.NewConfig("A", "bgp 1\n")
	c.Intents = c.Intents[:1]
	if s.Configs["A"].NumLines() < 10 || len(s.Intents) != 3 {
		t.Error("Clone shares state with original")
	}
	if s.TotalConfigLines() == 0 {
		t.Error("TotalConfigLines = 0")
	}
}

func TestStubStaticOrigination(t *testing.T) {
	s := WAN(4, 2, 2, GenOptions{StaticOriginEvery: 1}) // every stub static
	for _, nd := range s.Topo.Nodes() {
		if nd.Kind != topo.PoP && nd.Kind != topo.DCN {
			continue
		}
		f := netcfg.MustParse(s.Configs[nd.Name])
		if f.BGP.Redistribute == nil {
			t.Errorf("%s: static origination missing redistribute", nd.Name)
		}
		if len(f.Statics) != len(nd.Originates) {
			t.Errorf("%s: %d statics for %d prefixes", nd.Name, len(f.Statics), len(nd.Originates))
		}
	}
	_, out, rep := verifyScenario(t, s)
	if !out.Converged() || rep.NumFailed() != 0 {
		t.Fatalf("static-origin WAN broken:\n%s", rep.Summary())
	}
}
