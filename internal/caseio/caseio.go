// Package caseio loads and saves repair cases as plain-text directories,
// so the cmd/acr tool can operate on user-supplied networks:
//
//	casedir/
//	  topology.txt    # nodes and links
//	  intents.txt     # the specification
//	  configs/<device>.cfg
//
// Topology format (one statement per line; '#' comments):
//
//	node <name> <kind> <asn> <router-id> [originates <prefix>[,<prefix>...]]
//	link <nodeA> <nodeB>
//
// Kinds: backbone, pop, dcn, spine, leaf, core. Links allocate interface
// addresses deterministically in declaration order, so configs generated
// against a topology remain valid across reloads.
//
// Intent format:
//
//	reach <id> <src-prefix> <dst-prefix> [port <n>] [proto tcp|udp]
//	isolate <id> <src-prefix> <dst-prefix>
//	waypoint <id> <src-prefix> <dst-prefix> via <router> [port <n>]
//	loopfree <id> <prefix>
//	blackholefree <id> <prefix>
package caseio

import (
	"errors"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"acr/internal/journal"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/topo"
	"acr/internal/verify"
)

// Load reads a case directory.
func Load(dir string) (*scenario.Scenario, error) {
	topoText, err := os.ReadFile(filepath.Join(dir, "topology.txt"))
	if err != nil {
		return nil, err
	}
	t, err := ParseTopology(filepath.Base(dir), string(topoText))
	if err != nil {
		return nil, fmt.Errorf("topology.txt: %w", err)
	}
	intentText, err := os.ReadFile(filepath.Join(dir, "intents.txt"))
	if err != nil {
		return nil, err
	}
	intents, err := ParseIntents(string(intentText))
	if err != nil {
		return nil, fmt.Errorf("intents.txt: %w", err)
	}
	configs := map[string]*netcfg.Config{}
	entries, err := os.ReadDir(filepath.Join(dir, "configs"))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cfg") {
			continue
		}
		device := strings.TrimSuffix(e.Name(), ".cfg")
		if t.Node(device) == nil {
			return nil, fmt.Errorf("configs/%s: device not in topology", e.Name())
		}
		text, err := os.ReadFile(filepath.Join(dir, "configs", e.Name()))
		if err != nil {
			return nil, err
		}
		configs[device] = netcfg.NewConfig(device, string(text))
	}
	if len(configs) == 0 {
		return nil, errors.New("no configs/*.cfg files")
	}
	return &scenario.Scenario{
		Name:    filepath.Base(dir),
		Topo:    t,
		Configs: configs,
		Intents: intents,
	}, nil
}

// Save writes a case directory (creating it as needed). Every file is
// written atomically (temp file + rename + fsync), so a crash mid-save —
// including one that interrupts overwriting an existing case with a
// repaired one — never leaves a torn topology, intent file, or config.
func Save(dir string, s *scenario.Scenario) error {
	if err := os.MkdirAll(filepath.Join(dir, "configs"), 0o755); err != nil {
		return err
	}
	if err := journal.WriteFileAtomic(filepath.Join(dir, "topology.txt"), []byte(FormatTopology(s.Topo)), 0o644); err != nil {
		return err
	}
	if err := journal.WriteFileAtomic(filepath.Join(dir, "intents.txt"), []byte(FormatIntents(s.Intents)), 0o644); err != nil {
		return err
	}
	devices := make([]string, 0, len(s.Configs))
	for d := range s.Configs {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	for _, d := range devices {
		path := filepath.Join(dir, "configs", d+".cfg")
		if err := journal.WriteFileAtomic(path, []byte(s.Configs[d].Text()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Upload is the wire form of a user-supplied case — the JSON body the
// repair service accepts on POST /v1/repairs. Topology and Intents carry
// the same text formats Load reads from topology.txt and intents.txt;
// Configs maps device name to raw configuration text.
type Upload struct {
	Name     string            `json:"name"`
	Topology string            `json:"topology"`
	Intents  string            `json:"intents"`
	Configs  map[string]string `json:"configs"`
}

// FromUpload decodes an uploaded case into a scenario, validating it the
// way Load validates a case directory: the topology must parse and
// validate, every config device must exist in the topology, and at least
// one config must be present. Config text is NOT required to parse —
// broken lines are repair candidates, exactly as with on-disk cases.
func FromUpload(u Upload) (*scenario.Scenario, error) {
	name := u.Name
	if name == "" {
		name = "upload"
	}
	t, err := ParseTopology(name, u.Topology)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	intents, err := ParseIntents(u.Intents)
	if err != nil {
		return nil, fmt.Errorf("intents: %w", err)
	}
	if len(u.Configs) == 0 {
		return nil, errors.New("no configs")
	}
	configs := map[string]*netcfg.Config{}
	for device, text := range u.Configs {
		if t.Node(device) == nil {
			return nil, fmt.Errorf("config %q: device not in topology", device)
		}
		configs[device] = netcfg.NewConfig(device, text)
	}
	return &scenario.Scenario{Name: name, Topo: t, Configs: configs, Intents: intents}, nil
}

// ToUpload renders a scenario as an Upload — the inverse of FromUpload,
// used by clients submitting an in-memory case to the repair service.
func ToUpload(s *scenario.Scenario) Upload {
	u := Upload{
		Name:     s.Name,
		Topology: FormatTopology(s.Topo),
		Intents:  FormatIntents(s.Intents),
		Configs:  map[string]string{},
	}
	for d, c := range s.Configs {
		u.Configs[d] = c.Text()
	}
	return u
}

// ParseTopology parses the topology format.
func ParseTopology(name, text string) (*topo.Network, error) {
	t := topo.New(name)
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "node":
			if len(f) < 5 {
				return nil, fmt.Errorf("line %d: usage: node <name> <kind> <asn> <router-id> [originates p1,p2]", i+1)
			}
			kind, err := parseKind(f[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			asn, err := strconv.ParseUint(f[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad asn %q", i+1, f[3])
			}
			rid, err := netip.ParseAddr(f[4])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad router-id %q", i+1, f[4])
			}
			nd := t.AddNode(f[1], kind, uint32(asn), rid)
			if len(f) == 7 && f[5] == "originates" {
				for _, ps := range strings.Split(f[6], ",") {
					p, err := netip.ParsePrefix(ps)
					if err != nil {
						return nil, fmt.Errorf("line %d: bad prefix %q", i+1, ps)
					}
					nd.Originates = append(nd.Originates, p.Masked())
				}
			} else if len(f) != 5 {
				return nil, fmt.Errorf("line %d: trailing tokens", i+1)
			}
		case "link":
			if len(f) != 3 {
				return nil, fmt.Errorf("line %d: usage: link <a> <b>", i+1)
			}
			if t.Node(f[1]) == nil || t.Node(f[2]) == nil {
				return nil, fmt.Errorf("line %d: link references unknown node", i+1)
			}
			t.Connect(f[1], f[2])
		default:
			return nil, fmt.Errorf("line %d: unknown statement %q", i+1, f[0])
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// FormatTopology renders a topology in the Load format. Node and link
// declaration order is preserved, which keeps address allocation stable
// across a Save/Load round trip.
func FormatTopology(t *topo.Network) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# topology %s: %d nodes, %d links\n", t.Name, t.NumNodes(), len(t.Links))
	for _, nd := range t.Nodes() {
		fmt.Fprintf(&sb, "node %s %s %d %s", nd.Name, nd.Kind, nd.ASN, nd.RouterID)
		if len(nd.Originates) > 0 {
			parts := make([]string, len(nd.Originates))
			for i, p := range nd.Originates {
				parts[i] = p.String()
			}
			fmt.Fprintf(&sb, " originates %s", strings.Join(parts, ","))
		}
		sb.WriteByte('\n')
	}
	for _, l := range t.Links {
		fmt.Fprintf(&sb, "link %s %s\n", l.A.Node, l.B.Node)
	}
	return sb.String()
}

func parseKind(s string) (topo.Kind, error) {
	switch s {
	case "backbone":
		return topo.Backbone, nil
	case "pop":
		return topo.PoP, nil
	case "dcn":
		return topo.DCN, nil
	case "spine":
		return topo.Spine, nil
	case "leaf":
		return topo.Leaf, nil
	case "core":
		return topo.Core, nil
	}
	return 0, fmt.Errorf("unknown node kind %q", s)
}

// ParseIntents parses the intent format.
func ParseIntents(text string) ([]verify.Intent, error) {
	var out []verify.Intent
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		bad := func(usage string) error {
			return fmt.Errorf("line %d: usage: %s", i+1, usage)
		}
		switch f[0] {
		case "reach", "isolate":
			if len(f) < 4 {
				return nil, bad(f[0] + " <id> <src> <dst> [port <n>] [proto tcp|udp]")
			}
			src, err1 := netip.ParsePrefix(f[2])
			dst, err2 := netip.ParsePrefix(f[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad prefix", i+1)
			}
			in := verify.ReachIntent(f[1], src.Masked(), dst.Masked())
			if f[0] == "isolate" {
				in.Kind = verify.Isolation
			}
			if err := parseFlowOpts(f[4:], &in); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			out = append(out, in)
		case "waypoint":
			if len(f) < 6 || f[4] != "via" {
				return nil, bad("waypoint <id> <src> <dst> via <router> [port <n>]")
			}
			src, err1 := netip.ParsePrefix(f[2])
			dst, err2 := netip.ParsePrefix(f[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad prefix", i+1)
			}
			in := verify.WaypointIntent(f[1], src.Masked(), dst.Masked(), f[5])
			if err := parseFlowOpts(f[6:], &in); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			out = append(out, in)
		case "loopfree", "blackholefree":
			if len(f) != 3 {
				return nil, bad(f[0] + " <id> <prefix>")
			}
			p, err := netip.ParsePrefix(f[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad prefix %q", i+1, f[2])
			}
			if f[0] == "loopfree" {
				out = append(out, verify.LoopFreeIntent(f[1], p.Masked()))
			} else {
				out = append(out, verify.BlackholeFreeIntent(f[1], p.Masked()))
			}
		default:
			return nil, fmt.Errorf("line %d: unknown intent kind %q", i+1, f[0])
		}
	}
	return out, nil
}

func parseFlowOpts(rest []string, in *verify.Intent) error {
	for len(rest) >= 2 {
		switch rest[0] {
		case "port":
			v, err := strconv.ParseUint(rest[1], 10, 16)
			if err != nil {
				return fmt.Errorf("bad port %q", rest[1])
			}
			in.DstPort = uint16(v)
		case "proto":
			if rest[1] != "tcp" && rest[1] != "udp" {
				return fmt.Errorf("bad proto %q", rest[1])
			}
			in.Proto = rest[1]
		default:
			return fmt.Errorf("unknown option %q", rest[0])
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("trailing tokens %v", rest)
	}
	return nil
}

// FormatIntents renders intents in the Load format.
func FormatIntents(intents []verify.Intent) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %d intents\n", len(intents))
	for _, in := range intents {
		switch in.Kind {
		case verify.Reachability:
			fmt.Fprintf(&sb, "reach %s %s %s", in.ID, in.SrcPrefix, in.DstPrefix)
		case verify.Isolation:
			fmt.Fprintf(&sb, "isolate %s %s %s", in.ID, in.SrcPrefix, in.DstPrefix)
		case verify.Waypoint:
			fmt.Fprintf(&sb, "waypoint %s %s %s via %s", in.ID, in.SrcPrefix, in.DstPrefix, in.Via)
		case verify.LoopFree:
			fmt.Fprintf(&sb, "loopfree %s %s\n", in.ID, in.DstPrefix)
			continue
		case verify.BlackholeFree:
			fmt.Fprintf(&sb, "blackholefree %s %s\n", in.ID, in.DstPrefix)
			continue
		}
		if in.DstPort != 0 {
			fmt.Fprintf(&sb, " port %d", in.DstPort)
		}
		if in.Proto != "" {
			fmt.Fprintf(&sb, " proto %s", in.Proto)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
