package caseio

import (
	"net/netip"
	"path/filepath"
	"strings"
	"testing"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/topo"
	"acr/internal/verify"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := scenario.Figure2()
	dir := filepath.Join(t.TempDir(), "fig2")
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topo.NumNodes() != s.Topo.NumNodes() || len(got.Topo.Links) != len(s.Topo.Links) {
		t.Fatalf("topology shape changed: %d/%d nodes, %d/%d links",
			got.Topo.NumNodes(), s.Topo.NumNodes(), len(got.Topo.Links), len(s.Topo.Links))
	}
	// Link address allocation must be identical (declaration order).
	for i, l := range s.Topo.Links {
		if got.Topo.Links[i].Subnet != l.Subnet || got.Topo.Links[i].AddrA != l.AddrA {
			t.Fatalf("link %d addressing changed", i)
		}
	}
	if len(got.Intents) != len(s.Intents) {
		t.Fatalf("intents = %d, want %d", len(got.Intents), len(s.Intents))
	}
	for d, cfg := range s.Configs {
		if got.Configs[d] == nil || got.Configs[d].Text() != cfg.Text() {
			t.Errorf("config %s changed across round trip", d)
		}
	}
	// Behavioral equivalence: the loaded case still shows the incident.
	n := bgp.Compile(got.Topo, got.Files())
	out := bgp.Simulate(n, bgp.Options{})
	rep := verify.Verify(n, out, got.Intents)
	if rep.NumFailed() != 1 {
		t.Fatalf("loaded case fails %d intents, want 1", rep.NumFailed())
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"bad kind", "node a blimp 1 1.0.0.1\n", "unknown node kind"},
		{"bad asn", "node a pop x 1.0.0.1\n", "bad asn"},
		{"bad rid", "node a pop 1 zzz\n", "bad router-id"},
		{"unknown link node", "node a pop 1 1.0.0.1\nlink a b\n", "unknown node"},
		{"bad stmt", "frob a\n", "unknown statement"},
		{"trailing", "node a pop 1 1.0.0.1 extra\n", "trailing"},
		{"dup asn", "node a pop 1 1.0.0.1\nnode b pop 1 1.0.0.2\n", "ASN 1 reused"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology("t", tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want contains %q", err, tc.want)
			}
		})
	}
}

func TestParseTopologyOriginates(t *testing.T) {
	tp, err := ParseTopology("t", "node a pop 1 1.0.0.1 originates 10.0.0.0/16,10.1.0.0/16\n")
	if err != nil {
		t.Fatal(err)
	}
	nd := tp.Node("a")
	if len(nd.Originates) != 2 || nd.Originates[0] != netip.MustParsePrefix("10.0.0.0/16") {
		t.Fatalf("originates = %v", nd.Originates)
	}
	if nd.Kind != topo.PoP {
		t.Errorf("kind = %v", nd.Kind)
	}
}

func TestParseIntentsAllKinds(t *testing.T) {
	text := strings.Join([]string{
		"# comment",
		"reach r1 10.0.0.0/16 10.1.0.0/16",
		"reach r2 10.0.0.0/16 10.1.0.0/16 port 443 proto udp",
		"isolate i1 10.0.0.0/16 20.0.0.0/16",
		"waypoint w1 10.0.0.0/16 10.1.0.0/16 via scrubber port 9999",
		"loopfree l1 10.1.0.0/16",
		"blackholefree b1 10.1.0.0/16",
	}, "\n")
	intents, err := ParseIntents(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(intents) != 6 {
		t.Fatalf("intents = %d, want 6", len(intents))
	}
	if intents[1].DstPort != 443 || intents[1].Proto != "udp" {
		t.Errorf("flow opts lost: %+v", intents[1])
	}
	if intents[3].Kind != verify.Waypoint || intents[3].Via != "scrubber" || intents[3].DstPort != 9999 {
		t.Errorf("waypoint intent = %+v", intents[3])
	}
	// Round trip through the formatter.
	again, err := ParseIntents(FormatIntents(intents))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(intents) {
		t.Fatalf("format/parse round trip lost intents: %d vs %d", len(again), len(intents))
	}
	for i := range intents {
		if again[i] != intents[i] {
			t.Errorf("intent %d changed: %+v vs %+v", i, again[i], intents[i])
		}
	}
}

func TestParseIntentsErrors(t *testing.T) {
	for _, tc := range []struct{ text, want string }{
		{"reach r1 10.0.0.0/16\n", "usage"},
		{"reach r1 nope 10.0.0.0/16\n", "bad prefix"},
		{"waypoint w 10.0.0.0/16 10.1.0.0/16 thru x\n", "usage"},
		{"hover h 10.0.0.0/16\n", "unknown intent kind"},
		{"reach r1 10.0.0.0/16 10.1.0.0/16 port many\n", "bad port"},
	} {
		if _, err := ParseIntents(tc.text); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseIntents(%q) err = %v, want contains %q", tc.text, err, tc.want)
		}
	}
}

func TestLoadMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir); err == nil {
		t.Error("Load of empty dir should fail")
	}
}

// TestSaveAtomic: Save must leave no temp debris and must replace an
// existing case in place (the overwrite path a crash-recovery e2e uses to
// write the repaired configs back out).
func TestSaveAtomic(t *testing.T) {
	s := scenario.Figure2()
	dir := filepath.Join(t.TempDir(), "fig2")
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place with a modified scenario.
	mod := *s
	mod.Configs = map[string]*netcfg.Config{}
	for d, c := range s.Configs {
		mod.Configs[d] = netcfg.FromLines(d, append(c.Lines(), "! resaved"))
	}
	if err := Save(dir, &mod); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for d := range mod.Configs {
		if got.Configs[d].Text() != mod.Configs[d].Text() {
			t.Errorf("config %s not replaced", d)
		}
	}
	for _, sub := range []string{"", "configs"} {
		debris, _ := filepath.Glob(filepath.Join(dir, sub, "*.tmp*"))
		if len(debris) != 0 {
			t.Fatalf("temp files left behind: %v", debris)
		}
	}
}

func TestUploadRoundTrip(t *testing.T) {
	sc := scenario.Figure2()
	u := ToUpload(sc)
	if u.Name != sc.Name || u.Topology == "" || u.Intents == "" || len(u.Configs) != len(sc.Configs) {
		t.Fatalf("ToUpload = %+v", u)
	}
	got, err := FromUpload(u)
	if err != nil {
		t.Fatalf("FromUpload: %v", err)
	}
	if got.Name != sc.Name || len(got.Intents) != len(sc.Intents) {
		t.Fatalf("round trip: name %q intents %d", got.Name, len(got.Intents))
	}
	for d, c := range sc.Configs {
		rt, ok := got.Configs[d]
		if !ok || rt.Text() != c.Text() {
			t.Fatalf("config %s did not round-trip", d)
		}
	}
}

func TestFromUploadErrors(t *testing.T) {
	sc := scenario.Figure2()
	base := ToUpload(sc)
	for name, mutate := range map[string]func(*Upload){
		"bad topology":   func(u *Upload) { u.Topology = "node" },
		"bad intents":    func(u *Upload) { u.Intents = "reach onlytwo 10.0.0.0/24" },
		"no configs":     func(u *Upload) { u.Configs = nil },
		"unknown device": func(u *Upload) { u.Configs["ghost"] = "router bgp 65000" },
	} {
		u := base
		u.Configs = map[string]string{}
		for d, c := range base.Configs {
			u.Configs[d] = c
		}
		mutate(&u)
		if _, err := FromUpload(u); err == nil {
			t.Errorf("%s: FromUpload succeeded", name)
		}
	}
}
