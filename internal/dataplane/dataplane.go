// Package dataplane forwards model packets over a simulated control-plane
// state: longest-prefix match across BGP-selected routes and static routes
// (statics win ties, as with administrative distance), policy-based
// routing applied at ingress interfaces, local delivery at originating
// edge nodes, and loop/blackhole detection on traces. Traces record the
// configuration lines they execute (PBR rules, static routes), extending
// the provenance-based coverage the SBFL localizer consumes to dataplane
// behavior.
package dataplane

import (
	"fmt"
	"net/netip"
	"strings"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/topo"
)

// Packet is the 5-tuple the paper samples from each property's header
// space (§4.1).
type Packet struct {
	Src, Dst netip.Addr
	Proto    string // "tcp" or "udp"
	SrcPort  uint16
	DstPort  uint16
}

// String renders the packet for reports.
func (p Packet) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s", p.Src, p.SrcPort, p.Dst, p.DstPort, p.Proto)
}

// Disposition is a trace's final outcome.
type Disposition uint8

// Trace outcomes.
const (
	Delivered Disposition = iota
	Looped
	Blackholed
	Dropped // explicit PBR drop
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case Looped:
		return "looped"
	case Blackholed:
		return "blackholed"
	case Dropped:
		return "dropped"
	}
	return "unknown"
}

// TraceResult is the outcome of forwarding one packet.
type TraceResult struct {
	Outcome Disposition
	// Path lists the routers traversed in order, starting at the injection
	// point; the final element is where the packet was delivered, dropped,
	// blackholed, or where the loop closed.
	Path []string
	// Reason is a human-readable explanation for non-delivery.
	Reason string
	// Lines are the dataplane configuration lines executed (PBR and static
	// routes); control-plane lines come from provenance.
	Lines []netcfg.LineRef
}

// PathString renders the path as "A -> B -> C".
func (t *TraceResult) PathString() string { return strings.Join(t.Path, " -> ") }

// Visits reports whether router name is on the path.
func (t *TraceResult) Visits(name string) bool {
	for _, n := range t.Path {
		if n == name {
			return true
		}
	}
	return false
}

const maxTTL = 64

// Trace forwards pkt starting at router `from`, under the per-prefix
// control-plane state `routes` (best route per router for the prefix
// containing pkt.Dst; nil entries mean no BGP route). The prefix argument
// is that covering prefix (invalid when the destination is in no
// originated prefix — statics may still forward it).
func Trace(n *bgp.Net, routes map[string]*bgp.Route, prefix netip.Prefix, pkt Packet, from string) *TraceResult {
	res := &TraceResult{}
	type hop struct {
		router  string
		ingress string
	}
	visited := map[hop]bool{}
	cur := from
	ingress := ""
	for ttl := 0; ttl < maxTTL; ttl++ {
		res.Path = append(res.Path, cur)
		h := hop{cur, ingress}
		if visited[h] {
			res.Outcome = Looped
			res.Reason = fmt.Sprintf("forwarding loop at %s", cur)
			return res
		}
		visited[h] = true

		next, nextIngress, done := step(n, routes, prefix, pkt, cur, ingress, res)
		if done {
			return res
		}
		cur, ingress = next, nextIngress
	}
	res.Outcome = Looped
	res.Reason = "TTL exceeded"
	return res
}

// step executes one forwarding decision. When the packet's journey ends it
// fills res and returns done=true; otherwise it returns the next router
// and the ingress interface there.
func step(n *bgp.Net, routes map[string]*bgp.Route, prefix netip.Prefix, pkt Packet, router, ingress string, res *TraceResult) (string, string, bool) {
	r := n.Routers[router]
	f := r.File
	node := n.Topo.Node(router)

	// 1. Policy-based routing on the ingress interface.
	if ingress != "" {
		if itf := f.InterfaceByName(ingress); itf != nil && itf.PBRPolicy != "" {
			if pol := f.PBRPolicyByName(itf.PBRPolicy); pol != nil {
				if nh, disp, hit := evalPBR(f, itf, pol, pkt, res); hit {
					switch disp {
					case Dropped:
						res.Outcome = Dropped
						res.Reason = fmt.Sprintf("PBR drop at %s", router)
						return "", "", true
					default:
						return forwardTo(n, router, nh, "PBR next-hop", res)
					}
				}
			}
		}
	}

	// 2. Local delivery at the node that owns the destination.
	for _, p := range node.Originates {
		if p.Contains(pkt.Dst) {
			res.Outcome = Delivered
			return "", "", true
		}
	}

	// 3. Longest-prefix match across statics and the BGP route; statics
	// win equal-length ties (administrative distance).
	var (
		bestBits   = -1
		bestStatic *netcfg.StaticRoute
		useBGP     bool
	)
	for _, s := range f.Statics {
		if s.Prefix.IsValid() && s.Prefix.Contains(pkt.Dst) && s.Prefix.Bits() > bestBits {
			bestBits = s.Prefix.Bits()
			bestStatic = s
		}
	}
	if rt := routes[router]; rt != nil && prefix.IsValid() && prefix.Contains(pkt.Dst) && prefix.Bits() > bestBits {
		useBGP = true
	}
	switch {
	case useBGP:
		rt := routes[router]
		if rt.Src == bgp.SrcLocal {
			if rt.NextHop.IsValid() {
				return forwardTo(n, router, rt.NextHop, "redistributed static next-hop", res)
			}
			// Originated here but the destination is not locally attached:
			// the router advertises a prefix it cannot deliver.
			res.Outcome = Blackholed
			res.Reason = fmt.Sprintf("%s originates %s but has no attachment for %s", router, prefix, pkt.Dst)
			return "", "", true
		}
		return forwardTo(n, router, rt.NextHop, "BGP next-hop", res)
	case bestStatic != nil:
		res.Lines = append(res.Lines, netcfg.LineRef{Device: router, Line: bestStatic.Line})
		if bestStatic.Null0 {
			res.Outcome = Blackholed
			res.Reason = fmt.Sprintf("static null0 at %s", router)
			return "", "", true
		}
		return forwardTo(n, router, bestStatic.NextHop, "static next-hop", res)
	default:
		res.Outcome = Blackholed
		res.Reason = fmt.Sprintf("no route for %s at %s", pkt.Dst, router)
		return "", "", true
	}
}

// evalPBR evaluates the rules of pol for pkt. hit reports whether a permit
// rule applied; the returned disposition is Dropped for `apply drop`,
// otherwise the next hop is returned. Deny rules exempt the packet (no
// hit). Matching and deciding lines are recorded.
func evalPBR(f *netcfg.File, itf *netcfg.Interface, pol *netcfg.PBRPolicy, pkt Packet, res *TraceResult) (netip.Addr, Disposition, bool) {
	for _, rule := range pol.Rules {
		if !ruleMatches(rule, pkt) {
			continue
		}
		res.Lines = append(res.Lines,
			netcfg.LineRef{Device: f.Device, Line: itf.PBRLine},
			netcfg.LineRef{Device: f.Device, Line: pol.Line},
			netcfg.LineRef{Device: f.Device, Line: rule.Line},
		)
		if !rule.Permit {
			return netip.Addr{}, Delivered, false
		}
		if rule.ApplyDrop != nil {
			res.Lines = append(res.Lines, netcfg.LineRef{Device: f.Device, Line: rule.ApplyDrop.Line})
			return netip.Addr{}, Dropped, true
		}
		if rule.ApplyNextHop != nil {
			res.Lines = append(res.Lines, netcfg.LineRef{Device: f.Device, Line: rule.ApplyNextHop.Line})
			return rule.ApplyNextHop.NextHop, Delivered, true
		}
		// Permit with no action: exempt.
		return netip.Addr{}, Delivered, false
	}
	return netip.Addr{}, Delivered, false
}

func ruleMatches(rule *netcfg.PBRRule, pkt Packet) bool {
	if rule.MatchSource != nil && !rule.MatchSource.Prefix.Contains(pkt.Src) {
		return false
	}
	if rule.MatchDest != nil && !rule.MatchDest.Prefix.Contains(pkt.Dst) {
		return false
	}
	if rule.MatchProto != nil && rule.MatchProto.Proto != "any" && rule.MatchProto.Proto != pkt.Proto {
		return false
	}
	if rule.MatchDstPort != nil && rule.MatchDstPort.Port != pkt.DstPort {
		return false
	}
	return true
}

// forwardTo resolves a next-hop address to a directly connected neighbor.
func forwardTo(n *bgp.Net, router string, nh netip.Addr, what string, res *TraceResult) (string, string, bool) {
	if !nh.IsValid() {
		res.Outcome = Blackholed
		res.Reason = fmt.Sprintf("invalid %s at %s", what, router)
		return "", "", true
	}
	for _, adj := range n.Topo.Adjacencies(router) {
		if adj.PeerAddr == nh {
			return adj.PeerNode, adj.PeerIface, false
		}
	}
	res.Outcome = Blackholed
	res.Reason = fmt.Sprintf("%s %s at %s is not a connected neighbor", what, nh, router)
	return "", "", true
}

// SamplePacket draws a deterministic representative packet for a flow from
// src prefix to dst prefix: the .1 host address on each side, TCP to port
// 80. This is the paper's "sample a packet from its header space" (§4.1).
func SamplePacket(src, dst netip.Prefix) Packet {
	return Packet{
		Src:     hostAddr(src),
		Dst:     hostAddr(dst),
		Proto:   "tcp",
		SrcPort: 40000,
		DstPort: 80,
	}
}

func hostAddr(p netip.Prefix) netip.Addr {
	a := p.Masked().Addr().As4()
	a[3] |= 1
	return netip.AddrFrom4(a)
}

// InjectionPoint maps a packet source address to the router where the
// packet enters the network: the node originating the longest matching
// prefix. Returns "" when no node owns the source.
func InjectionPoint(t *topo.Network, src netip.Addr) string {
	if nd := t.OriginOf(src); nd != nil {
		return nd.Name
	}
	return ""
}
