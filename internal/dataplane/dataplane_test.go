package dataplane

import (
	"net/netip"
	"sort"
	"testing"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/topo"
)

// build compiles and simulates a small network whose configs are produced
// by mk (called once per node with an open bgp block).
func build(t *testing.T, net *topo.Network, mk func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder)) (*bgp.Net, *bgp.Outcome) {
	t.Helper()
	files := map[string]*netcfg.File{}
	for _, nd := range net.Nodes() {
		b := netcfg.NewBuilder(nd.Name)
		g := b.BGP(nd.ASN).RouterID(nd.RouterID)
		for _, adj := range net.Adjacencies(nd.Name) {
			g.Peer(adj.PeerAddr, net.Node(adj.PeerNode).ASN)
		}
		for _, p := range nd.Originates {
			g.Network(p)
		}
		if mk != nil {
			mk(nd.Name, b, g)
		}
		names := make([]string, 0, len(nd.Ifaces))
		for ifn := range nd.Ifaces {
			names = append(names, ifn)
		}
		sort.Strings(names)
		for _, ifn := range names {
			b.Interface(ifn).Address(nd.Ifaces[ifn]).End()
		}
		f, err := netcfg.Parse(b.Build())
		if err != nil {
			t.Fatalf("config %s: %v", nd.Name, err)
		}
		files[nd.Name] = f
	}
	n := bgp.Compile(net, files)
	return n, bgp.Simulate(n, bgp.Options{})
}

func lineNet() *topo.Network {
	n := topo.New("line")
	src := n.AddNode("SRC", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	src.Originates = []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}
	n.AddNode("M", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	dst := n.AddNode("DST", topo.PoP, 64501, netip.MustParseAddr("1.0.0.3"))
	dst.Originates = []netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")}
	n.Connect("SRC", "M")
	n.Connect("M", "DST")
	return n
}

func phaseFor(t *testing.T, out *bgp.Outcome, p string) (map[string]*bgp.Route, netip.Prefix) {
	t.Helper()
	pre := netip.MustParsePrefix(p)
	po := out.ByPrefix[pre]
	if po == nil {
		return nil, pre
	}
	return po.Phases()[0], pre
}

func TestTraceDelivered(t *testing.T) {
	net := lineNet()
	n, out := build(t, net, nil)
	routes, pre := phaseFor(t, out, "10.2.0.0/16")
	pkt := SamplePacket(netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("10.2.0.0/16"))
	res := Trace(n, routes, pre, pkt, "SRC")
	if res.Outcome != Delivered {
		t.Fatalf("outcome = %s (%s), want delivered; path %s", res.Outcome, res.Reason, res.PathString())
	}
	if res.PathString() != "SRC -> M -> DST" {
		t.Errorf("path = %s", res.PathString())
	}
}

func TestTraceBlackholeNoRoute(t *testing.T) {
	net := lineNet()
	n, out := build(t, net, nil)
	routes, pre := phaseFor(t, out, "10.2.0.0/16")
	pkt := SamplePacket(netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("99.0.0.0/16"))
	// Destination outside every originated prefix: no route anywhere.
	res := Trace(n, routes, netip.Prefix{}, pkt, "SRC")
	if res.Outcome != Blackholed {
		t.Fatalf("outcome = %s, want blackholed", res.Outcome)
	}
	_ = pre
}

func TestTraceStaticNull0(t *testing.T) {
	net := lineNet()
	n, out := build(t, net, func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder) {
		if name == "M" {
			g.End().StaticNull(netip.MustParsePrefix("10.2.0.0/16"))
		}
	})
	routes, pre := phaseFor(t, out, "10.2.0.0/16")
	pkt := SamplePacket(netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("10.2.0.0/16"))
	res := Trace(n, routes, pre, pkt, "SRC")
	// The /16 static ties the /16 BGP route and statics win.
	if res.Outcome != Blackholed {
		t.Fatalf("outcome = %s, want blackholed by static null0; path %s", res.Outcome, res.PathString())
	}
	if len(res.Lines) == 0 || res.Lines[len(res.Lines)-1].Device != "M" {
		t.Errorf("static line not recorded: %v", res.Lines)
	}
}

func TestTraceStaticLongerPrefixWins(t *testing.T) {
	// A /24 static inside the /16 BGP prefix diverts those packets only.
	net := lineNet()
	n, out := build(t, net, func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder) {
		if name == "M" {
			g.End().StaticNull(netip.MustParsePrefix("10.2.5.0/24"))
		}
	})
	routes, pre := phaseFor(t, out, "10.2.0.0/16")
	in := Packet{Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.5.9"), Proto: "tcp", DstPort: 80}
	outPkt := Packet{Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.9.9"), Proto: "tcp", DstPort: 80}
	if res := Trace(n, routes, pre, in, "SRC"); res.Outcome != Blackholed {
		t.Errorf("/24 packet: outcome = %s, want blackholed", res.Outcome)
	}
	if res := Trace(n, routes, pre, outPkt, "SRC"); res.Outcome != Delivered {
		t.Errorf("/16 packet: outcome = %s (%s), want delivered", res.Outcome, res.Reason)
	}
}

func TestTracePBRRedirectAndDrop(t *testing.T) {
	// Square: SRC—M—DST plus waypoint W hanging off M. PBR on M's ingress
	// from SRC redirects port-443 traffic to W; W sends it back (it has a
	// BGP route via M). Port-22 traffic is dropped.
	net := topo.New("pbr")
	src := net.AddNode("SRC", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	src.Originates = []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}
	net.AddNode("M", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	dst := net.AddNode("DST", topo.PoP, 64501, netip.MustParseAddr("1.0.0.3"))
	dst.Originates = []netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")}
	net.AddNode("W", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.4"))
	net.Connect("SRC", "M")
	net.Connect("M", "DST")
	net.Connect("M", "W")

	var wAddr netip.Addr
	for _, adj := range net.Adjacencies("M") {
		if adj.PeerNode == "W" {
			wAddr = adj.PeerAddr
		}
	}
	n, out := build(t, net, func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder) {
		if name != "M" {
			return
		}
		b2 := g.End()
		b2.PBRPolicy("Steer").
			Rule(10, true).
			MatchDstPort(443).
			ApplyNextHop(wAddr).
			Rule(20, true).
			MatchDstPort(22).
			ApplyDrop().
			End()
		// Bind on M's ingress from SRC (eth0: first connection).
		b2.Interface("eth0").Address(net.Node("M").Ifaces["eth0"]).PBR("Steer").End()
	})
	routes, pre := phaseFor(t, out, "10.2.0.0/16")

	norm := Packet{Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.0.1"), Proto: "tcp", DstPort: 80}
	res := Trace(n, routes, pre, norm, "SRC")
	if res.Outcome != Delivered || res.Visits("W") {
		t.Errorf("port 80: %s via %s, want direct delivery", res.Outcome, res.PathString())
	}

	way := Packet{Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.0.1"), Proto: "tcp", DstPort: 443}
	res = Trace(n, routes, pre, way, "SRC")
	if res.Outcome != Delivered {
		t.Fatalf("port 443: outcome = %s (%s), path %s", res.Outcome, res.Reason, res.PathString())
	}
	if !res.Visits("W") {
		t.Errorf("port 443 skipped waypoint: %s", res.PathString())
	}
	if len(res.Lines) == 0 {
		t.Error("PBR lines not recorded")
	}

	drop := Packet{Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.0.1"), Proto: "tcp", DstPort: 22}
	res = Trace(n, routes, pre, drop, "SRC")
	if res.Outcome != Dropped {
		t.Errorf("port 22: outcome = %s, want dropped", res.Outcome)
	}
}

func TestTracePBRDenyExempts(t *testing.T) {
	net := lineNet()
	n, out := build(t, net, func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder) {
		if name != "M" {
			return
		}
		b2 := g.End()
		b2.PBRPolicy("Steer").
			Rule(5, false). // deny exempts everything
			Rule(10, true).
			ApplyDrop().
			End()
		b2.Interface("eth0").Address(net.Node("M").Ifaces["eth0"]).PBR("Steer").End()
	})
	routes, pre := phaseFor(t, out, "10.2.0.0/16")
	pkt := SamplePacket(netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("10.2.0.0/16"))
	res := Trace(n, routes, pre, pkt, "SRC")
	if res.Outcome != Delivered {
		t.Errorf("deny rule should exempt: got %s", res.Outcome)
	}
}

func TestTraceForwardingLoop(t *testing.T) {
	// Two routers with statics pointing at each other.
	net := topo.New("looper")
	src := net.AddNode("SRC", topo.PoP, 64500, netip.MustParseAddr("1.0.0.1"))
	src.Originates = []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}
	net.AddNode("X", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.2"))
	net.AddNode("Y", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.3"))
	net.Connect("SRC", "X")
	net.Connect("X", "Y")
	var xAddrOnY, yAddrOnX netip.Addr
	for _, adj := range net.Adjacencies("X") {
		if adj.PeerNode == "Y" {
			yAddrOnX = adj.PeerAddr
		}
	}
	for _, adj := range net.Adjacencies("Y") {
		if adj.PeerNode == "X" {
			xAddrOnY = adj.PeerAddr
		}
	}
	n, out := build(t, net, func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder) {
		switch name {
		case "X":
			g.End().StaticRoute(netip.MustParsePrefix("10.9.0.0/16"), yAddrOnX)
		case "Y":
			g.End().StaticRoute(netip.MustParsePrefix("10.9.0.0/16"), xAddrOnY)
		}
	})
	_ = out
	pkt := Packet{Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.9.0.1"), Proto: "tcp", DstPort: 80}
	res := Trace(n, nil, netip.Prefix{}, pkt, "X")
	if res.Outcome != Looped {
		t.Fatalf("outcome = %s (%s), want looped; path %s", res.Outcome, res.Reason, res.PathString())
	}
	// Forwarding state is (router, ingress), so the loop closes when Y is
	// revisited with the same ingress interface.
	if got := res.PathString(); got != "X -> Y -> X -> Y" {
		t.Errorf("loop path = %s", got)
	}
}

func TestTraceBadNextHopBlackholes(t *testing.T) {
	net := lineNet()
	n, _ := build(t, net, func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder) {
		if name == "M" {
			g.End().StaticRoute(netip.MustParsePrefix("10.9.0.0/16"), netip.MustParseAddr("9.9.9.9"))
		}
	})
	pkt := Packet{Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.9.0.1"), Proto: "tcp", DstPort: 80}
	res := Trace(n, nil, netip.Prefix{}, pkt, "SRC")
	if res.Outcome != Blackholed {
		t.Fatalf("outcome = %s, want blackholed on unresolvable next hop", res.Outcome)
	}
}

func TestSamplePacketDeterministic(t *testing.T) {
	a := SamplePacket(netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("10.2.0.0/16"))
	b := SamplePacket(netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("10.2.0.0/16"))
	if a != b {
		t.Error("SamplePacket not deterministic")
	}
	if !netip.MustParsePrefix("10.1.0.0/16").Contains(a.Src) {
		t.Errorf("sample src %v outside prefix", a.Src)
	}
	if !netip.MustParsePrefix("10.2.0.0/16").Contains(a.Dst) {
		t.Errorf("sample dst %v outside prefix", a.Dst)
	}
}

func TestInjectionPoint(t *testing.T) {
	net := lineNet()
	if got := InjectionPoint(net, netip.MustParseAddr("10.1.3.4")); got != "SRC" {
		t.Errorf("InjectionPoint = %q, want SRC", got)
	}
	if got := InjectionPoint(net, netip.MustParseAddr("99.0.0.1")); got != "" {
		t.Errorf("InjectionPoint = %q, want empty", got)
	}
}

func TestTraceFlappingPhases(t *testing.T) {
	// The override gadget from the bgp tests: tracing in the loop phase
	// must report a loop, in the other phase delivery.
	net := topo.New("gadget")
	net.AddNode("A", topo.Backbone, 65001, netip.MustParseAddr("1.0.0.1"))
	net.AddNode("B", topo.Backbone, 65002, netip.MustParseAddr("1.0.0.2"))
	net.AddNode("C", topo.Backbone, 65003, netip.MustParseAddr("1.0.0.3"))
	net.AddNode("S", topo.Backbone, 65004, netip.MustParseAddr("1.0.0.4"))
	pb := net.AddNode("PB", topo.PoP, 64602, netip.MustParseAddr("1.0.0.6"))
	pb.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	ds := net.AddNode("DS", topo.DCN, 64701, netip.MustParseAddr("1.0.0.7"))
	ds.Originates = []netip.Prefix{netip.MustParsePrefix("20.0.0.0/16")}
	net.Connect("A", "B")
	net.Connect("B", "C")
	net.Connect("A", "S")
	net.Connect("C", "S")
	net.Connect("PB", "B")
	net.Connect("DS", "S")
	n, out := build(t, net, func(name string, b *netcfg.Builder, g *netcfg.BGPBuilder) {
		if name != "A" && name != "C" {
			return
		}
		var sAddr netip.Addr
		for _, adj := range net.Adjacencies(name) {
			if adj.PeerNode == "S" {
				sAddr = adj.PeerAddr
			}
		}
		g.PeerPolicy(sAddr, "Override_All", netcfg.Import)
		g.End().
			RoutePolicy("Override_All", true, 10).
			MatchIPPrefix("default_all").
			ApplyASPathOverwrite(net.Node(name).ASN).
			End().
			PrefixListEntry("default_all", 10, true, netip.MustParsePrefix("0.0.0.0/0"), 0, 32)
	})
	pre := netip.MustParsePrefix("10.0.0.0/16")
	po := out.ByPrefix[pre]
	if po.Converged {
		t.Fatal("gadget should flap")
	}
	// Pre-repair, every cycle phase loops: one phase has the A–S loop, the
	// other the C–S loop (the paper's §2.2 mechanics).
	pkt := SamplePacket(netip.MustParsePrefix("20.0.0.0/16"), pre)
	var loops int
	var loopRouters []string
	for _, phase := range po.Phases() {
		res := Trace(n, phase, pre, pkt, "DS")
		if res.Outcome != Looped {
			t.Errorf("phase outcome = %s (%s), want looped; path %s", res.Outcome, res.Reason, res.PathString())
			continue
		}
		loops++
		loopRouters = append(loopRouters, res.Path[len(res.Path)-1])
	}
	if loops != len(po.Phases()) {
		t.Fatalf("only %d of %d phases looped", loops, len(po.Phases()))
	}
	// The two phases must close their loops at different routers (A vs C).
	if len(loopRouters) == 2 && loopRouters[0] == loopRouters[1] {
		t.Errorf("both phases loop at %s; want distinct loop sites", loopRouters[0])
	}
}
