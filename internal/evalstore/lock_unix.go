//go:build unix

package evalstore

import "syscall"

// flockWait takes a blocking exclusive flock on fd. The store's write
// sections are short (one atomic file write plus eviction bookkeeping), so
// writers queue instead of failing: unlike the journal's session lock,
// contention here is expected — every process sharing a cache directory
// writes through it. The lock belongs to the open file description and dies
// with the process, so a SIGKILL mid-write never wedges the directory.
func flockWait(fd uintptr) error {
	return syscall.Flock(int(fd), syscall.LOCK_EX)
}

// flockRelease drops the flock held on fd.
func flockRelease(fd uintptr) error {
	return syscall.Flock(int(fd), syscall.LOCK_UN)
}
