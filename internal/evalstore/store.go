// Package evalstore is the durable layer under the engine's in-memory
// evaluation cache: a disk-backed content-addressed store mapping the
// SHA-256 digest of a post-edit configuration set to the fitness
// (failing-intent count) validation computed for it. Fitness is a pure
// function of the configuration set under a fixed problem, so entries are
// exact and never expire — a repair session, a daemon worker, or a whole
// fleet sharing one cache directory pays for each distinct evaluation once.
//
// The store is advisory by contract. It may lose entries (eviction, ENOSPC,
// crashes), refuse them (I/O errors), or reject what it finds on disk (bit
// rot, torn writes, hostile files) — and none of that may ever change a
// repair's result, only its cost. Concretely:
//
//   - Every entry is one CRC-framed record (the journal's WAL framing,
//     [length][CRC-32C][JSON payload]) whose payload repeats the digest it
//     is stored under. A read verifies frame length, checksum, and digest;
//     any mismatch quarantines the file and reports a corruption-flagged
//     miss, falling back to simulation.
//   - Writes go through journal.WriteFileAtomic (temp file + fsync + rename
//     + parent-dir fsync) under a blocking flock on the store's lock file,
//     so concurrent writers — other workers, other processes, fleet peers —
//     serialize and readers only ever observe whole entries.
//   - Eviction is LRU by a logical recency clock seeded from entry mtimes,
//     bounded by a byte budget. A reader racing a concurrent eviction sees
//     ENOENT: a miss.
//   - Every failure path degrades to a cache miss and a counter bump; no
//     Store method can fail a repair.
//
// Layout of a cache directory:
//
//	cachedir/
//	  store.lock        # flock'd during writes and eviction
//	  entries/ab/<digest>   # one framed record per digest, sharded by prefix
//	  quarantine/<digest>   # entries that failed verification, kept for autopsy
package evalstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"acr/internal/journal"
)

// DefaultMaxBytes is the eviction budget when none is configured: large
// enough that a repair fleet's working set never thrashes, small enough to
// forget about.
const DefaultMaxBytes int64 = 256 << 20

// Hooks are the storage fault-injection seams (internal/chaos wires them;
// production stores leave them nil). BeforeRead and BeforeWrite may return
// an error to inject an I/O failure; AfterWrite sees the entry path after a
// successful write and may corrupt it in place to simulate at-rest damage.
type Hooks struct {
	BeforeRead  func(digest string) error
	BeforeWrite func(digest string) error
	AfterWrite  func(path string)
}

// Stats is a point-in-time snapshot of one Store's counters and footprint.
// Hit/miss/corrupt count this process's reads; Entries/Bytes reflect the
// store's view of the directory (other processes may have added entries it
// has not observed yet).
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Corrupt     int64 `json:"corrupt"`
	Evicted     int64 `json:"evicted"`
	ReadErrors  int64 `json:"readErrors"`
	WriteErrors int64 `json:"writeErrors"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Quarantined int   `json:"quarantined"`
}

// record is an entry's JSON payload. Digest repeats the name the entry is
// stored under so a renamed, copied, or hostile file cannot answer for a
// different configuration set: content addresses are verified, not trusted.
type record struct {
	Digest  string `json:"digest"`
	Fitness int    `json:"fitness"`
}

// entryInfo is the in-memory bookkeeping for one entry.
type entryInfo struct {
	size  int64
	stamp int64 // logical recency; higher = more recently used
}

// Store is a disk-backed content-addressed evaluation store. All methods
// are safe for concurrent use by multiple goroutines, and any number of
// Stores (in any number of processes) may share one directory.
type Store struct {
	dir      string
	maxBytes int64

	mu     sync.Mutex
	hooks  Hooks
	idx    map[string]entryInfo
	bytes  int64
	clock  int64 // logical recency clock (seeded from mtimes, not wall time)
	closed bool

	hits, misses, corrupt, evicted int64
	readErrs, writeErrs            int64
}

// Open opens (creating as needed) the store in dir with the given eviction
// budget in bytes (<= 0 selects DefaultMaxBytes). Existing entries are
// indexed with recency seeded from their mtimes; unreadable entries are
// simply not indexed — they will be verified (and quarantined if bad) when
// first read.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, "entries"), 0o755); err != nil {
		return nil, fmt.Errorf("evalstore: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("evalstore: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, idx: map[string]entryInfo{}}
	s.scan()
	return s, nil
}

// SetHooks installs fault-injection seams (testing only).
func (s *Store) SetHooks(h Hooks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = h
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// scan rebuilds the index from the directory. Caller holds no lock (Open)
// or s.mu (GC). Recency stamps come from file mtimes so LRU order survives
// restarts; the logical clock resumes past the newest stamp seen.
func (s *Store) scan() {
	idx := map[string]entryInfo{}
	var bytes, clock int64
	shards, _ := os.ReadDir(filepath.Join(s.dir, "entries")) // sorted
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		ents, _ := os.ReadDir(filepath.Join(s.dir, "entries", sh.Name())) // sorted
		for _, e := range ents {
			if e.IsDir() || strings.Contains(e.Name(), ".tmp") {
				continue
			}
			fi, err := e.Info()
			if err != nil {
				continue
			}
			stamp := fi.ModTime().Unix()
			if stamp > clock {
				clock = stamp
			}
			idx[e.Name()] = entryInfo{size: fi.Size(), stamp: stamp}
			bytes += fi.Size()
		}
	}
	s.idx, s.bytes, s.clock = idx, bytes, clock
}

// validDigest gates what the store will use as a file name: lowercase hex,
// long enough to shard. Anything else is unaddressable and answered as a
// miss — a defense in depth against path escapes, not an expected input
// (core only produces 64-char SHA-256 hex digests).
func validDigest(d string) bool {
	if len(d) < 4 {
		return false
	}
	for _, c := range d {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) entryPath(digest string) string {
	return filepath.Join(s.dir, "entries", digest[:2], digest)
}

func (s *Store) quarantinePath(digest string) string {
	return filepath.Join(s.dir, "quarantine", digest)
}

// Get looks a digest up. ok reports a verified entry; corrupt reports that
// a file existed under this digest but failed verification (it has been
// quarantined, and the lookup is a miss). Get never returns an error: every
// failure — injected or real — is a miss.
func (s *Store) Get(digest string) (fitness int, ok, corrupt bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !validDigest(digest) {
		s.misses++
		return 0, false, false
	}
	if s.hooks.BeforeRead != nil {
		if err := s.hooks.BeforeRead(digest); err != nil {
			s.readErrs++
			s.misses++
			return 0, false, false
		}
	}
	path := s.entryPath(digest)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.readErrs++
		}
		s.misses++
		return 0, false, false
	}
	rec, err := decodeRecord(data)
	if err != nil || rec.Digest != digest || rec.Fitness < 0 {
		s.quarantineLocked(digest, path)
		s.misses++
		return 0, false, true
	}
	s.hits++
	s.touchLocked(digest, path, int64(len(data)))
	return rec.Fitness, true, false
}

// decodeRecord verifies framing and parses one entry payload.
func decodeRecord(data []byte) (record, error) {
	payload, err := journal.Unframe(data)
	if err != nil {
		return record{}, err
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, err
	}
	return rec, nil
}

// quarantineLocked moves a failed entry aside (keeping it for autopsy) and
// forgets it. If even the rename fails, the entry is deleted outright: a
// corrupt file must never be read twice.
func (s *Store) quarantineLocked(digest, path string) {
	s.corrupt++
	if err := os.Rename(path, s.quarantinePath(digest)); err != nil {
		os.Remove(path)
	}
	if info, ok := s.idx[digest]; ok {
		s.bytes -= info.size
		delete(s.idx, digest)
	}
}

// touchLocked records a use of digest for LRU purposes. The stamp is a
// logical clock, not wall time (determinism lint bans time.Now in library
// paths, and logical order is all LRU needs); it is mirrored into the
// file's mtime best-effort so recency survives restarts and is shared
// across processes.
func (s *Store) touchLocked(digest, path string, size int64) {
	s.clock++
	prev, known := s.idx[digest]
	s.idx[digest] = entryInfo{size: size, stamp: s.clock}
	if known {
		s.bytes += size - prev.size
	} else {
		// First sighting of an entry another process wrote.
		s.bytes += size
	}
	_ = os.Chtimes(path, time.Unix(s.clock, 0), time.Unix(s.clock, 0))
}

// Put stores a fitness under its digest. First write wins; rewriting an
// identical record would be harmless but is skipped. Put never returns an
// error: a failed write (injected fault, ENOSPC, unwritable directory) is
// counted and forgotten — the entry simply is not there next time.
func (s *Store) Put(digest string, fitness int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !validDigest(digest) || fitness < 0 {
		return
	}
	if _, ok := s.idx[digest]; ok {
		return
	}
	if s.hooks.BeforeWrite != nil {
		if err := s.hooks.BeforeWrite(digest); err != nil {
			s.writeErrs++
			return
		}
	}
	payload, err := json.Marshal(record{Digest: digest, Fitness: fitness})
	if err != nil {
		s.writeErrs++
		return
	}
	frame, err := journal.Frame(payload)
	if err != nil {
		s.writeErrs++
		return
	}
	path := s.entryPath(digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.writeErrs++
		return
	}
	// Serialize against writers in other processes. A failed lock degrades
	// to an unserialized (still atomic) write rather than a lost entry.
	lock := s.flockStore()
	defer s.unflockStore(lock)
	if err := journal.WriteFileAtomic(path, frame, 0o644); err != nil {
		s.writeErrs++
		return
	}
	if s.hooks.AfterWrite != nil {
		s.hooks.AfterWrite(path)
	}
	s.touchLocked(digest, path, int64(len(frame)))
	s.evictLocked()
}

// flockStore takes the store's cross-process write lock (blocking).
func (s *Store) flockStore() *os.File {
	l, err := os.OpenFile(filepath.Join(s.dir, "store.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil
	}
	if err := flockWait(l.Fd()); err != nil {
		l.Close()
		return nil
	}
	return l
}

func (s *Store) unflockStore(l *os.File) {
	if l != nil {
		flockRelease(l.Fd())
		l.Close()
	}
}

// evictLocked enforces the byte budget: least-recently-used entries are
// deleted until the store fits, by (stamp, digest) so ties break the same
// way on every run. The newest entry is never evicted — a single record
// larger than the whole budget would otherwise thrash forever.
func (s *Store) evictLocked() {
	for s.bytes > s.maxBytes && len(s.idx) > 1 {
		victim := ""
		var oldest entryInfo
		for d, info := range s.idx { //acrvet:ordered — min-selection is iteration-order independent
			if victim == "" || info.stamp < oldest.stamp ||
				(info.stamp == oldest.stamp && d < victim) {
				victim, oldest = d, info
			}
		}
		if oldest.stamp >= s.clock {
			return
		}
		os.Remove(s.entryPath(victim))
		s.bytes -= oldest.size
		delete(s.idx, victim)
		s.evicted++
	}
}

// Stats snapshots the store's counters and footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, _ := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	return Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		Corrupt:     s.corrupt,
		Evicted:     s.evicted,
		ReadErrors:  s.readErrs,
		WriteErrors: s.writeErrs,
		Entries:     len(s.idx),
		Bytes:       s.bytes,
		Quarantined: len(q),
	}
}

// VerifyReport summarizes a full integrity pass.
type VerifyReport struct {
	Checked     int   `json:"checked"`
	Intact      int   `json:"intact"`
	Corrupt     int   `json:"corrupt"`
	Unreadable  int   `json:"unreadable"`
	Bytes       int64 `json:"bytes"`
	Quarantined int   `json:"quarantined"`
}

// Verify reads and verifies every entry in the directory (including ones
// this Store has not observed yet), quarantining failures exactly as a
// read-through would. It is the `acr cache verify` implementation.
func (s *Store) Verify() VerifyReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep VerifyReport
	s.scan()
	digests := make([]string, 0, len(s.idx))
	for d := range s.idx {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	for _, d := range digests {
		rep.Checked++
		path := s.entryPath(d)
		data, err := os.ReadFile(path)
		if err != nil {
			rep.Unreadable++
			continue
		}
		rec, err := decodeRecord(data)
		if err != nil || rec.Digest != d || rec.Fitness < 0 {
			s.quarantineLocked(d, path)
			rep.Corrupt++
			continue
		}
		rep.Intact++
		rep.Bytes += int64(len(data))
	}
	q, _ := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	rep.Quarantined = len(q)
	return rep
}

// GCReport summarizes a garbage-collection pass.
type GCReport struct {
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	Evicted    int64 `json:"evicted"`
	Purged     int   `json:"purgedQuarantine"`
	FreedBytes int64 `json:"freedBytes"`
}

// GC rebuilds the index from disk (adopting entries other processes wrote),
// enforces the byte budget, and empties the quarantine. It is the
// `acr cache gc` implementation.
func (s *Store) GC() GCReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	lock := s.flockStore()
	defer s.unflockStore(lock)
	s.scan()
	var rep GCReport
	before, beforeEvicted := s.bytes, s.evicted
	s.evictLocked()
	rep.Evicted = s.evicted - beforeEvicted
	rep.FreedBytes = before - s.bytes
	qdir := filepath.Join(s.dir, "quarantine")
	q, _ := os.ReadDir(qdir) // sorted
	for _, e := range q {
		fi, err := e.Info()
		if err == nil {
			rep.FreedBytes += fi.Size()
		}
		if os.Remove(filepath.Join(qdir, e.Name())) == nil {
			rep.Purged++
		}
	}
	rep.Entries, rep.Bytes = len(s.idx), s.bytes
	return rep
}

// Close marks the store closed; subsequent Gets miss and Puts drop. The
// store holds no descriptors between calls, so there is nothing to flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
