package evalstore_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"testing"

	"acr/internal/core"
	"acr/internal/evalstore"
	"acr/internal/scenario"
)

// TestMain doubles as a repair worker process: re-exec'd with
// ACR_EVALSTORE_WORKER=1 the test binary runs one full repair over the
// store directory named by ACR_EVALSTORE_DIR — a stand-in for a concurrent
// `acr repair -cache-dir` invocation — so the multi-process sharing test
// exercises real cross-process file and flock traffic.
func TestMain(m *testing.M) {
	if os.Getenv("ACR_EVALSTORE_WORKER") == "1" {
		if err := runWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerReport is what each re-exec'd repair prints on stdout.
type workerReport struct {
	CanonicalSHA256 string `json:"canonicalSha256"`
	StoreHits       int    `json:"storeHits"`
	StoreMisses     int    `json:"storeMisses"`
	StoreCorrupt    int    `json:"storeCorrupt"`
	PrefixSims      int    `json:"prefixSimulations"`
	Feasible        bool   `json:"feasible"`
}

func runWorker() error {
	st, err := evalstore.Open(os.Getenv("ACR_EVALSTORE_DIR"), 0)
	if err != nil {
		return err
	}
	defer st.Close()
	s := scenario.Figure2()
	p := core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
	res := core.RepairContext(context.Background(), p,
		core.Options{Strategy: core.BruteForce, Parallelism: 2, Store: st})
	sum := sha256.Sum256([]byte(res.Canonical()))
	return json.NewEncoder(os.Stdout).Encode(workerReport{
		CanonicalSHA256: hex.EncodeToString(sum[:]),
		StoreHits:       res.StoreHits,
		StoreMisses:     res.StoreMisses,
		StoreCorrupt:    res.StoreCorrupt,
		PrefixSims:      res.PrefixSimulations,
		Feasible:        res.Feasible,
	})
}

// TestMultiProcessStoreSharing runs two concurrent repair *processes* over
// one store directory — the `two acr repair -cache-dir <same>` scenario.
// Neither may observe a torn entry (StoreCorrupt must stay 0: every read
// either verifies or misses), both must land the byte-identical result,
// and once the dust settles the store holds the full evaluation set: a
// third run simulates nothing.
func TestMultiProcessStoreSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process; skipped in -short")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	type procResult struct {
		rep workerReport
		err error
	}
	results := make(chan procResult, 2)
	for i := 0; i < 2; i++ {
		go func() {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				"ACR_EVALSTORE_WORKER=1", "ACR_EVALSTORE_DIR="+dir)
			out, err := cmd.Output()
			if err != nil {
				results <- procResult{err: fmt.Errorf("worker: %v (%s)", err, out)}
				return
			}
			var rep workerReport
			if err := json.Unmarshal(out, &rep); err != nil {
				results <- procResult{err: fmt.Errorf("bad worker output %q: %v", out, err)}
				return
			}
			results <- procResult{rep: rep}
		}()
	}
	var reps []workerReport
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		reps = append(reps, r.rep)
	}
	for i, r := range reps {
		if !r.Feasible {
			t.Fatalf("worker %d infeasible: %+v", i, r)
		}
		if r.StoreCorrupt != 0 {
			t.Fatalf("worker %d read a torn or corrupt entry: %+v", i, r)
		}
	}
	if reps[0].CanonicalSHA256 != reps[1].CanonicalSHA256 {
		t.Fatalf("concurrent processes diverged: %s vs %s",
			reps[0].CanonicalSHA256, reps[1].CanonicalSHA256)
	}

	// Settle check: the surviving store answers everything — no process
	// double-simulates from here on.
	st, err := evalstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := scenario.Figure2()
	p := core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
	res := core.RepairContext(context.Background(), p,
		core.Options{Strategy: core.BruteForce, Parallelism: 1, Store: st})
	if res.StoreMisses != 0 || res.PrefixSimulations != 0 {
		t.Fatalf("settled store still missed: misses=%d prefixSims=%d",
			res.StoreMisses, res.PrefixSimulations)
	}
	sum := sha256.Sum256([]byte(res.Canonical()))
	if got := hex.EncodeToString(sum[:]); got != reps[0].CanonicalSHA256 {
		t.Fatalf("settled run diverged: %s vs %s", got, reps[0].CanonicalSHA256)
	}
}
