package evalstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"acr/internal/journal"
)

// td returns a deterministic test digest for i.
func td(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("digest-%d", i)))
	return hex.EncodeToString(sum[:])
}

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 10; i++ {
		s.Put(td(i), i)
	}
	for i := 0; i < 10; i++ {
		fit, ok, corrupt := s.Get(td(i))
		if !ok || corrupt || fit != i {
			t.Fatalf("Get(%d) = %d,%v,%v", i, fit, ok, corrupt)
		}
	}
	if _, ok, _ := s.Get(td(99)); ok {
		t.Fatal("absent digest reported ok")
	}
	st := s.Stats()
	if st.Hits != 10 || st.Misses != 1 || st.Entries != 10 || st.Corrupt != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// A second Store on the same directory sees everything.
	s2 := open(t, dir, 0)
	for i := 0; i < 10; i++ {
		if fit, ok, _ := s2.Get(td(i)); !ok || fit != i {
			t.Fatalf("reopened Get(%d) = %d,%v", i, fit, ok)
		}
	}
}

func TestCrossStoreVisibilityWithoutReopen(t *testing.T) {
	// Two Stores open on the same directory (two workers, two processes):
	// an entry written through one is readable through the other without
	// any reindexing, because reads go to the filesystem.
	dir := t.TempDir()
	a := open(t, dir, 0)
	b := open(t, dir, 0)
	a.Put(td(1), 7)
	if fit, ok, _ := b.Get(td(1)); !ok || fit != 7 {
		t.Fatalf("cross-store Get = %d,%v", fit, ok)
	}
}

func TestFirstWriteWins(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	s.Put(td(1), 3)
	s.Put(td(1), 9)
	if fit, ok, _ := s.Get(td(1)); !ok || fit != 3 {
		t.Fatalf("Get = %d,%v, want 3,true", fit, ok)
	}
}

func TestInvalidDigestsAreUnaddressable(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	for _, d := range []string{"", "ab", "../../etc/passwd", "ABCDEF012345", "zzzz9999"} {
		s.Put(d, 1)
		if _, ok, corrupt := s.Get(d); ok || corrupt {
			t.Fatalf("digest %q: ok=%v corrupt=%v", d, ok, corrupt)
		}
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("unaddressable digests created entries: %+v", st)
	}
}

// mangle corrupts one on-disk entry in the given way and returns its path.
func mangle(t *testing.T, s *Store, digest, how string) string {
	t.Helper()
	path := s.entryPath(digest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	switch how {
	case "bitflip":
		data[len(data)-2] ^= 0x40
	case "torn":
		data = data[:len(data)/2]
	case "empty":
		data = nil
	case "garbage":
		data = []byte("not a frame at all")
	case "alias":
		// A verbatim copy of another digest's (valid) entry: framing and
		// CRC pass, the embedded digest does not.
		other := s.entryPath(td(7777))
		data, err = os.ReadFile(other)
		if err != nil {
			t.Fatalf("read alias source: %v", err)
		}
	case "negative":
		payload, err := journal.Frame([]byte(fmt.Sprintf(`{"digest":%q,"fitness":-5}`, digest)))
		if err != nil {
			t.Fatal(err)
		}
		data = payload
	default:
		t.Fatalf("unknown mangle %q", how)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("mangle: %v", err)
	}
	return path
}

func TestCorruptEntriesQuarantine(t *testing.T) {
	for _, how := range []string{"bitflip", "torn", "empty", "garbage", "alias", "negative"} {
		t.Run(how, func(t *testing.T) {
			s := open(t, t.TempDir(), 0)
			s.Put(td(7777), 42) // alias source
			d := td(1)
			s.Put(d, 5)
			mangle(t, s, d, how)

			fit, ok, corrupt := s.Get(d)
			if ok || !corrupt || fit != 0 {
				t.Fatalf("corrupt Get = %d,%v,%v, want 0,false,true", fit, ok, corrupt)
			}
			if _, err := os.Stat(s.entryPath(d)); !os.IsNotExist(err) {
				t.Fatal("corrupt entry still present after quarantine")
			}
			if _, err := os.Stat(s.quarantinePath(d)); err != nil {
				t.Fatalf("quarantined copy missing: %v", err)
			}
			// A second read is a plain miss, not a second corruption.
			if _, ok, corrupt := s.Get(d); ok || corrupt {
				t.Fatalf("second Get after quarantine: ok=%v corrupt=%v", ok, corrupt)
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Quarantined != 1 {
				t.Fatalf("stats after quarantine: %+v", st)
			}
			// The slot is writable again.
			s.Put(d, 6)
			if fit, ok, _ := s.Get(d); !ok || fit != 6 {
				t.Fatalf("rewrite after quarantine: %d,%v", fit, ok)
			}
		})
	}
}

func TestLRUEviction(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	s.Put(td(1), 1)
	entrySize := s.Stats().Bytes
	if entrySize <= 0 {
		t.Fatal("no bytes accounted")
	}
	// Budget for exactly three entries.
	s.maxBytes = 3 * entrySize
	s.Put(td(2), 2)
	s.Put(td(3), 3)
	// Touch 1 so 2 becomes the least recently used.
	if _, ok, _ := s.Get(td(1)); !ok {
		t.Fatal("warm Get missed")
	}
	s.Put(td(4), 4)
	if _, ok, _ := s.Get(td(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok, _ := s.Get(td(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	if st := s.Stats(); st.Evicted != 1 || st.Entries != 3 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestInjectedFaultsDegradeToMiss(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	readErr, writeErr := errors.New("injected EIO"), errors.New("injected ENOSPC")
	var failReads, failWrites bool
	s.SetHooks(Hooks{
		BeforeRead: func(string) error {
			if failReads {
				return readErr
			}
			return nil
		},
		BeforeWrite: func(string) error {
			if failWrites {
				return writeErr
			}
			return nil
		},
	})

	failWrites = true
	s.Put(td(1), 1)
	failWrites = false
	if _, ok, _ := s.Get(td(1)); ok {
		t.Fatal("entry exists despite injected write failure")
	}
	s.Put(td(1), 1)
	failReads = true
	if _, ok, corrupt := s.Get(td(1)); ok || corrupt {
		t.Fatal("injected read failure did not degrade to a plain miss")
	}
	failReads = false
	if fit, ok, _ := s.Get(td(1)); !ok || fit != 1 {
		t.Fatal("store did not recover once faults cleared")
	}
	st := s.Stats()
	if st.ReadErrors != 1 || st.WriteErrors != 1 {
		t.Fatalf("error counters: %+v", st)
	}
}

func TestAtRestCorruptionViaAfterWrite(t *testing.T) {
	// The AfterWrite seam damages every entry as it lands; every read must
	// come back as a quarantining corruption, never a wrong answer.
	s := open(t, t.TempDir(), 0)
	s.SetHooks(Hooks{AfterWrite: func(path string) {
		data, err := os.ReadFile(path)
		if err != nil || len(data) == 0 {
			return
		}
		data[len(data)-1] ^= 0xff
		os.WriteFile(path, data, 0o644)
	}})
	for i := 0; i < 5; i++ {
		s.Put(td(i), i)
	}
	for i := 0; i < 5; i++ {
		if _, ok, corrupt := s.Get(td(i)); ok || !corrupt {
			t.Fatalf("entry %d: ok=%v corrupt=%v, want quarantine", i, ok, corrupt)
		}
	}
	if st := s.Stats(); st.Corrupt != 5 || st.Quarantined != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestVerifyAndGC(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 6; i++ {
		s.Put(td(i), i)
	}
	mangle(t, s, td(0), "bitflip")
	mangle(t, s, td(1), "torn")

	rep := s.Verify()
	if rep.Checked != 6 || rep.Corrupt != 2 || rep.Intact != 4 || rep.Quarantined != 2 {
		t.Fatalf("verify: %+v", rep)
	}
	// Verify already quarantined the bad ones; a second pass is clean.
	if rep := s.Verify(); rep.Corrupt != 0 || rep.Checked != 4 {
		t.Fatalf("second verify: %+v", rep)
	}

	gc := s.GC()
	if gc.Purged != 2 || gc.Entries != 4 {
		t.Fatalf("gc: %+v", gc)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("quarantine not emptied: %+v", st)
	}

	// GC under a tight budget evicts down to it.
	s.maxBytes = 1
	gc = s.GC()
	if gc.Entries != 1 || gc.Evicted != 3 {
		t.Fatalf("gc under budget: %+v", gc)
	}
}

func TestClosedStoreIsInert(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	s.Put(td(1), 1)
	s.Close()
	s.Put(td(2), 2)
	if _, ok, _ := s.Get(td(1)); ok {
		t.Fatal("closed store answered a Get")
	}
	if _, err := os.Stat(s.entryPath(td(2))); !os.IsNotExist(err) {
		t.Fatal("closed store wrote an entry")
	}
}

// TestConcurrentStoreSharing is the in-process race test for multi-writer
// sharing: several goroutines across two Store instances on one directory
// hammer overlapping digests under a byte budget small enough to force
// constant eviction. Every successful Get must return the digest's one
// true fitness — torn or aliased reads would surface here under -race.
func TestConcurrentStoreSharing(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, 8<<10)
	b := open(t, dir, 8<<10)
	stores := []*Store{a, b}
	const digests = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := stores[g%2]
			for i := 0; i < 200; i++ {
				d := (g*31 + i) % digests
				s.Put(td(d), d)
				if fit, ok, corrupt := s.Get(td(d)); ok && fit != d {
					t.Errorf("goroutine %d: Get(%d) returned %d", g, d, fit)
				} else if corrupt {
					t.Errorf("goroutine %d: clean store reported corruption on %d", g, d)
				}
			}
		}(g)
	}
	wg.Wait()
	// After settling, everything still on disk verifies clean.
	if rep := a.Verify(); rep.Corrupt != 0 || rep.Unreadable != 0 {
		t.Fatalf("post-race verify: %+v", rep)
	}
}

func TestEvictionRaceDegradesToMiss(t *testing.T) {
	// One store evicts aggressively while another reads: readers must only
	// ever see hits or misses, never corruption or wrong values.
	dir := t.TempDir()
	writer := open(t, dir, 1) // budget of one byte: every Put evicts the rest
	reader := open(t, dir, 1<<20)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			writer.Put(td(i%8), i%8)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if fit, ok, corrupt := reader.Get(td(i % 8)); corrupt {
				t.Error("eviction race surfaced as corruption")
			} else if ok && fit != i%8 {
				t.Errorf("eviction race returned wrong fitness %d for %d", fit, i%8)
			}
		}
	}()
	wg.Wait()
}

func TestScanSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	s.Put(td(1), 1)
	// A crashed writer's leftover temp file must not be indexed.
	tmp := filepath.Join(dir, "entries", td(2)[:2], td(2)+".tmp123")
	os.MkdirAll(filepath.Dir(tmp), 0o755)
	os.WriteFile(tmp, []byte("partial"), 0o644)
	s2 := open(t, dir, 0)
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("temp file indexed: %+v", st)
	}
}

func FuzzStoreRead(f *testing.F) {
	// Seed with a valid entry, a truncation, and a few classic mutations;
	// the property is total: decodeRecord either returns a well-formed
	// record or an error, and Get on arbitrary bytes never reports ok with
	// a digest mismatch.
	d := td(1)
	payload, _ := journal.Frame([]byte(fmt.Sprintf(`{"digest":%q,"fitness":3}`, d)))
	f.Add(payload)
	f.Add(payload[:len(payload)/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data)
		if err == nil && rec.Digest == "" {
			// Decoded clean but carries no digest: Get must still reject it.
			_ = rec
		}
		dir := t.TempDir()
		s, err := Open(dir, 0)
		if err != nil {
			t.Skip()
		}
		path := s.entryPath(d)
		os.MkdirAll(filepath.Dir(path), 0o755)
		os.WriteFile(path, data, 0o644)
		fit, ok, _ := s.Get(d)
		if ok {
			rec, err := decodeRecord(data)
			if err != nil || rec.Digest != d || rec.Fitness != fit {
				t.Fatalf("Get accepted bytes that do not verify: fit=%d rec=%+v err=%v", fit, rec, err)
			}
		}
	})
}
