//go:build !unix

package evalstore

// flockWait is a no-op where flock is unavailable. Writes remain safe —
// journal.WriteFileAtomic renames are atomic — but cross-process eviction
// bookkeeping is advisory-only on such platforms, which the store's
// contract already tolerates (any inconsistency degrades to a miss).
func flockWait(uintptr) error { return nil }

// flockRelease is the matching no-op.
func flockRelease(uintptr) error { return nil }
