package netcfg

import (
	"net/netip"
	"strings"
	"testing"
)

const routerAText = `bgp 65001
 router-id 1.0.0.1
 peer-group PoPSide external
 peer-group DCNSide external
 peer 10.1.1.2 as-number 64601
 peer 10.1.1.2 group PoPSide
 peer 10.2.1.2 as-number 65004
 peer 10.2.1.2 group DCNSide
 peer-group DCNSide route-policy Override_All import
 peer-group PoPSide route-policy Override_All import
ip prefix-list default_all index 10 permit 0.0.0.0/0 le 32
ip route static 10.70.0.0/16 next-hop 10.1.1.2
route-policy Override_All permit node 10
 match ip-prefix default_all
 apply as-path overwrite 65001
interface eth0
 ip address 10.1.1.1/30
`

func parseA(t *testing.T) *File {
	t.Helper()
	cfg := NewConfig("A", routerAText)
	f, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseBGPBlock(t *testing.T) {
	f := parseA(t)
	if f.BGP == nil {
		t.Fatal("no BGP block parsed")
	}
	if f.BGP.ASN != 65001 {
		t.Errorf("ASN = %d, want 65001", f.BGP.ASN)
	}
	if got, want := f.BGP.RouterID, netip.MustParseAddr("1.0.0.1"); got != want {
		t.Errorf("RouterID = %v, want %v", got, want)
	}
	if f.BGP.Line != 1 {
		t.Errorf("BGP.Line = %d, want 1", f.BGP.Line)
	}
	if f.BGP.End != 10 {
		t.Errorf("BGP.End = %d, want 10", f.BGP.End)
	}
	if len(f.BGP.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(f.BGP.Groups))
	}
	if len(f.BGP.Peers) != 2 {
		t.Fatalf("got %d peers, want 2", len(f.BGP.Peers))
	}
}

func TestParsePeerAssembly(t *testing.T) {
	f := parseA(t)
	p := f.PeerByAddr(netip.MustParseAddr("10.1.1.2"))
	if p == nil {
		t.Fatal("peer 10.1.1.2 not found")
	}
	if p.ASN != 64601 {
		t.Errorf("peer ASN = %d, want 64601", p.ASN)
	}
	if p.ASNLine != 5 {
		t.Errorf("ASNLine = %d, want 5", p.ASNLine)
	}
	if p.Group != "PoPSide" || p.GroupLine != 6 {
		t.Errorf("group = %q@%d, want PoPSide@6", p.Group, p.GroupLine)
	}
}

func TestParseGroupPolicyAttachment(t *testing.T) {
	f := parseA(t)
	g := f.GroupByName("DCNSide")
	if g == nil {
		t.Fatal("group DCNSide not found")
	}
	if len(g.Policies) != 1 {
		t.Fatalf("got %d policies on DCNSide, want 1", len(g.Policies))
	}
	a := g.Policies[0]
	if a.Policy != "Override_All" || a.Direction != Import || a.Line != 9 {
		t.Errorf("attach = %q %s @%d, want Override_All import @9", a.Policy, a.Direction, a.Line)
	}
}

func TestEffectivePolicies(t *testing.T) {
	f := parseA(t)
	p := f.PeerByAddr(netip.MustParseAddr("10.2.1.2"))
	pols := f.EffectivePolicies(p, Import)
	if len(pols) != 1 || pols[0].Policy != "Override_All" {
		t.Fatalf("EffectivePolicies(import) = %+v, want one Override_All", pols)
	}
	if got := f.EffectivePolicies(p, Export); len(got) != 0 {
		t.Errorf("EffectivePolicies(export) = %+v, want none", got)
	}
}

func TestParsePrefixList(t *testing.T) {
	f := parseA(t)
	es := f.PrefixListEntries("default_all")
	if len(es) != 1 {
		t.Fatalf("got %d entries, want 1", len(es))
	}
	e := es[0]
	if e.Index != 10 || !e.Permit || e.LE != 32 || e.GE != 0 {
		t.Errorf("entry = %+v", e)
	}
	if e.Line != 11 {
		t.Errorf("entry line = %d, want 11", e.Line)
	}
	if !e.Matches(netip.MustParsePrefix("10.0.0.0/16")) {
		t.Error("0.0.0.0/0 le 32 should match 10.0.0.0/16")
	}
}

func TestParseStaticRoute(t *testing.T) {
	f := parseA(t)
	if len(f.Statics) != 1 {
		t.Fatalf("got %d statics, want 1", len(f.Statics))
	}
	s := f.Statics[0]
	if s.Prefix != netip.MustParsePrefix("10.70.0.0/16") || s.NextHop != netip.MustParseAddr("10.1.1.2") {
		t.Errorf("static = %+v", s)
	}
}

func TestParseRoutePolicy(t *testing.T) {
	f := parseA(t)
	nodes := f.PolicyNodes("Override_All")
	if len(nodes) != 1 {
		t.Fatalf("got %d nodes, want 1", len(nodes))
	}
	n := nodes[0]
	if !n.Permit || n.Node != 10 {
		t.Errorf("node = %+v", n)
	}
	if len(n.Matches) != 1 || n.Matches[0].PrefixList != "default_all" {
		t.Errorf("matches = %+v", n.Matches)
	}
	if len(n.Applies) != 1 || n.Applies[0].Kind != ApplyASPathOverwrite || n.Applies[0].ASN != 65001 {
		t.Errorf("applies = %+v", n.Applies)
	}
	if n.Line != 13 || n.End != 15 {
		t.Errorf("span = [%d,%d], want [13,15]", n.Line, n.End)
	}
}

func TestParseInterface(t *testing.T) {
	f := parseA(t)
	itf := f.InterfaceByName("eth0")
	if itf == nil {
		t.Fatal("interface eth0 not found")
	}
	if itf.Addr != netip.MustParsePrefix("10.1.1.1/30") {
		t.Errorf("addr = %v", itf.Addr)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	text := "# header comment\n\nbgp 100\n # inner comment\n router-id 9.9.9.9\n\nip route static 1.0.0.0/8 null0\n"
	f, err := Parse(NewConfig("X", text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.BGP == nil || f.BGP.ASN != 100 {
		t.Fatalf("BGP = %+v", f.BGP)
	}
	if f.BGP.RouterIDLine != 5 {
		t.Errorf("RouterIDLine = %d, want 5 (comments occupy lines)", f.BGP.RouterIDLine)
	}
	if len(f.Statics) != 1 || !f.Statics[0].Null0 {
		t.Errorf("statics = %+v", f.Statics)
	}
}

func TestParsePBR(t *testing.T) {
	text := strings.Join([]string{
		"pbr policy FromDCN",
		" rule 10 permit",
		"  match source 10.0.0.0/16",
		"  match protocol tcp",
		"  match dst-port 443",
		"  apply next-hop 10.2.1.2",
		" rule 20 deny",
		"  match destination 20.0.0.0/16",
		"interface eth1",
		" ip address 10.9.9.1/30",
		" pbr policy FromDCN",
	}, "\n")
	f, err := Parse(NewConfig("X", text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pol := f.PBRPolicyByName("FromDCN")
	if pol == nil {
		t.Fatal("policy FromDCN not found")
	}
	if len(pol.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(pol.Rules))
	}
	r := pol.Rules[0]
	if !r.Permit || r.Index != 10 {
		t.Errorf("rule0 = %+v", r)
	}
	if r.MatchSource == nil || r.MatchSource.Prefix != netip.MustParsePrefix("10.0.0.0/16") {
		t.Errorf("rule0 source = %+v", r.MatchSource)
	}
	if r.MatchProto == nil || r.MatchProto.Proto != "tcp" {
		t.Errorf("rule0 proto = %+v", r.MatchProto)
	}
	if r.MatchDstPort == nil || r.MatchDstPort.Port != 443 {
		t.Errorf("rule0 port = %+v", r.MatchDstPort)
	}
	if r.ApplyNextHop == nil || r.ApplyNextHop.NextHop != netip.MustParseAddr("10.2.1.2") {
		t.Errorf("rule0 next-hop = %+v", r.ApplyNextHop)
	}
	if pol.Rules[1].Permit {
		t.Error("rule 20 should be deny")
	}
	itf := f.InterfaceByName("eth1")
	if itf == nil || itf.PBRPolicy != "FromDCN" {
		t.Errorf("interface binding = %+v", itf)
	}
}

func TestParseErrorsAreReported(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"unknown top-level", "frobnicate 1\n", "unknown top-level keyword"},
		{"bad asn", "bgp zero\n", "invalid AS number"},
		{"bad prefix", "ip route static 10.0.0.300/16 null0\n", "invalid prefix"},
		{"bad direction", "bgp 1\n peer 1.1.1.1 route-policy P inward\n", "direction must be import or export"},
		{"stray indent", " lonely\n", "unexpected indentation"},
		{"bad prefix-list", "ip prefix-list L 10 permit 1.0.0.0/8\n", "usage: ip prefix-list"},
		{"bad pbr proto", "pbr policy P\n rule 1 permit\n  match protocol icmp\n", "protocol must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(NewConfig("X", tc.text))
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParsePartialResultOnError(t *testing.T) {
	text := "bgp 100\n router-id 1.1.1.1\nbogus line here\nip route static 9.0.0.0/8 null0\n"
	f, err := Parse(NewConfig("X", text))
	if err == nil {
		t.Fatal("want error for bogus line")
	}
	if f.BGP == nil || len(f.Statics) != 1 {
		t.Errorf("partial parse lost good statements: bgp=%v statics=%d", f.BGP != nil, len(f.Statics))
	}
}

func TestPrefixListMatchesSemantics(t *testing.T) {
	mk := func(p string, ge, le int) *PrefixList {
		return &PrefixList{Prefix: netip.MustParsePrefix(p), GE: ge, LE: le, Permit: true}
	}
	cases := []struct {
		entry *PrefixList
		probe string
		want  bool
	}{
		{mk("0.0.0.0/0", 0, 32), "10.0.0.0/16", true},
		{mk("0.0.0.0/0", 0, 32), "0.0.0.0/0", true},
		{mk("0.0.0.0/0", 0, 0), "10.0.0.0/16", false}, // exact-match only
		{mk("0.0.0.0/0", 0, 0), "0.0.0.0/0", true},
		{mk("10.0.0.0/8", 16, 24), "10.1.0.0/16", true},
		{mk("10.0.0.0/8", 16, 24), "10.0.0.0/8", false},  // shorter than ge
		{mk("10.0.0.0/8", 16, 24), "10.1.2.0/25", false}, // longer than le
		{mk("10.0.0.0/8", 16, 24), "11.1.0.0/16", false}, // outside base
		{mk("10.70.0.0/16", 0, 0), "10.70.0.0/16", true},
		{mk("10.70.0.0/16", 0, 0), "10.70.1.0/24", false},
	}
	for _, tc := range cases {
		got := tc.entry.Matches(netip.MustParsePrefix(tc.probe))
		if got != tc.want {
			t.Errorf("entry %v ge=%d le=%d Matches(%s) = %v, want %v",
				tc.entry.Prefix, tc.entry.GE, tc.entry.LE, tc.probe, got, tc.want)
		}
	}
}

func TestPolicyNodesOrdering(t *testing.T) {
	text := strings.Join([]string{
		"route-policy P permit node 20",
		" match ip-prefix L2",
		"route-policy P deny node 10",
		" match ip-prefix L1",
	}, "\n")
	f, err := Parse(NewConfig("X", text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	nodes := f.PolicyNodes("P")
	if len(nodes) != 2 || nodes[0].Node != 10 || nodes[1].Node != 20 {
		t.Fatalf("nodes misordered: %+v", nodes)
	}
	if nodes[0].Permit {
		t.Error("node 10 should be deny")
	}
}

func TestPrefixListEntriesOrdering(t *testing.T) {
	text := "ip prefix-list L index 20 permit 2.0.0.0/8\nip prefix-list L index 5 permit 1.0.0.0/8\nip prefix-list M index 1 deny 3.0.0.0/8\n"
	f, err := Parse(NewConfig("X", text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	es := f.PrefixListEntries("L")
	if len(es) != 2 || es[0].Index != 5 || es[1].Index != 20 {
		t.Fatalf("entries misordered: %+v", es)
	}
}

func TestPeerSessionLines(t *testing.T) {
	f := parseA(t)
	p := f.PeerByAddr(netip.MustParseAddr("10.2.1.2"))
	refs := f.PeerSessionLines(p)
	want := map[int]bool{7: true, 8: true, 4: true} // as-number, group membership, group decl
	if len(refs) != 3 {
		t.Fatalf("got %d refs (%v), want 3", len(refs), refs)
	}
	for _, r := range refs {
		if r.Device != "A" || !want[r.Line] {
			t.Errorf("unexpected ref %v", r)
		}
	}
}
