package netcfg

import (
	"fmt"
	"sort"
	"strings"
)

// LineRef identifies one line of configuration on one device. Line numbers
// are 1-based, matching how the paper (and operators) talk about
// configuration lines.
type LineRef struct {
	Device string
	Line   int
}

// String renders the reference as "device:line".
func (r LineRef) String() string { return fmt.Sprintf("%s:%d", r.Device, r.Line) }

// Less orders references by device name, then line number.
func (r LineRef) Less(o LineRef) bool {
	if r.Device != o.Device {
		return r.Device < o.Device
	}
	return r.Line < o.Line
}

// Config is an immutable, line-addressable configuration document for a
// single device. Mutating operations return a new Config.
type Config struct {
	Device string
	lines  []string
}

// NewConfig builds a Config for device from raw text. Trailing newlines are
// tolerated; interior line structure is preserved exactly.
func NewConfig(device, text string) *Config {
	text = strings.TrimRight(text, "\n")
	var lines []string
	if text != "" {
		lines = strings.Split(text, "\n")
	}
	return &Config{Device: device, lines: lines}
}

// FromLines builds a Config from a slice of lines (copied).
func FromLines(device string, lines []string) *Config {
	cp := make([]string, len(lines))
	copy(cp, lines)
	return &Config{Device: device, lines: cp}
}

// NumLines reports the number of lines in the document.
func (c *Config) NumLines() int { return len(c.lines) }

// Line returns the text of the 1-based line n. It panics if n is out of
// range, mirroring slice semantics: callers hold LineRefs they obtained
// from this same document.
func (c *Config) Line(n int) string {
	if n < 1 || n > len(c.lines) {
		panic(fmt.Sprintf("netcfg: line %d out of range [1,%d] on %s", n, len(c.lines), c.Device))
	}
	return c.lines[n-1]
}

// Lines returns a copy of all lines.
func (c *Config) Lines() []string {
	cp := make([]string, len(c.lines))
	copy(cp, c.lines)
	return cp
}

// Text renders the whole document.
func (c *Config) Text() string { return strings.Join(c.lines, "\n") + "\n" }

// Refs returns a LineRef for every line in the document.
func (c *Config) Refs() []LineRef {
	refs := make([]LineRef, len(c.lines))
	for i := range c.lines {
		refs[i] = LineRef{Device: c.Device, Line: i + 1}
	}
	return refs
}

// Edit is a single line-level change to a Config.
type Edit interface {
	// apply mutates the line slice in place and returns the new slice.
	apply(lines []string) ([]string, error)
	// anchor is the 1-based line this edit is keyed on, used to order
	// edits within an EditSet.
	anchor() int
	// String renders a human-readable description for repair reports.
	String() string
}

// InsertBefore inserts Text so that it becomes line At; the previous line
// At (and everything after) shifts down. At may be NumLines+1 to append.
type InsertBefore struct {
	At   int
	Text string
}

func (e InsertBefore) anchor() int { return e.At }

func (e InsertBefore) apply(lines []string) ([]string, error) {
	if e.At < 1 || e.At > len(lines)+1 {
		return nil, fmt.Errorf("insert at line %d out of range [1,%d]", e.At, len(lines)+1)
	}
	out := make([]string, 0, len(lines)+1)
	out = append(out, lines[:e.At-1]...)
	out = append(out, e.Text)
	out = append(out, lines[e.At-1:]...)
	return out, nil
}

func (e InsertBefore) String() string { return fmt.Sprintf("insert@%d %q", e.At, e.Text) }

// DeleteLine removes the 1-based line At.
type DeleteLine struct {
	At int
}

func (e DeleteLine) anchor() int { return e.At }

func (e DeleteLine) apply(lines []string) ([]string, error) {
	if e.At < 1 || e.At > len(lines) {
		return nil, fmt.Errorf("delete line %d out of range [1,%d]", e.At, len(lines))
	}
	out := make([]string, 0, len(lines)-1)
	out = append(out, lines[:e.At-1]...)
	out = append(out, lines[e.At:]...)
	return out, nil
}

func (e DeleteLine) String() string { return fmt.Sprintf("delete@%d", e.At) }

// ReplaceLine substitutes the text of the 1-based line At.
type ReplaceLine struct {
	At   int
	Text string
}

func (e ReplaceLine) anchor() int { return e.At }

func (e ReplaceLine) apply(lines []string) ([]string, error) {
	if e.At < 1 || e.At > len(lines) {
		return nil, fmt.Errorf("replace line %d out of range [1,%d]", e.At, len(lines))
	}
	out := make([]string, len(lines))
	copy(out, lines)
	out[e.At-1] = e.Text
	return out, nil
}

func (e ReplaceLine) String() string { return fmt.Sprintf("replace@%d %q", e.At, e.Text) }

// EditSet is an ordered set of edits against one base document. All line
// numbers refer to the ORIGINAL document; Apply sorts edits bottom-up so
// earlier anchors are unaffected by later insertions or deletions. Two
// edits may not share an anchor line unless both are inserts (multiple
// inserts at the same anchor apply in the order given).
type EditSet struct {
	Device string
	Edits  []Edit
}

// Apply produces a new Config with every edit applied, or an error if any
// edit is out of range or the set is internally conflicting.
func (s EditSet) Apply(c *Config) (*Config, error) {
	if s.Device != "" && s.Device != c.Device {
		return nil, fmt.Errorf("edit set for %s applied to config of %s", s.Device, c.Device)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	// Sort by anchor descending, preserving relative order of same-anchor
	// inserts (stable sort on the reversed comparison keeps the original
	// order for equal anchors; we then apply in that order).
	idx := make([]int, len(s.Edits))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Edits[idx[a]].anchor() > s.Edits[idx[b]].anchor()
	})
	lines := c.Lines()
	// Same-anchor inserts must apply in declaration order; after the stable
	// descending sort they are adjacent and in declaration order already,
	// but applying the first insert shifts nothing at the same anchor (we
	// insert before), so apply them in reverse to keep declaration order in
	// the output.
	for a := 0; a < len(idx); {
		b := a
		for b+1 < len(idx) && s.Edits[idx[b+1]].anchor() == s.Edits[idx[a]].anchor() {
			b++
		}
		for j := b; j >= a; j-- {
			var err error
			lines, err = s.Edits[idx[j]].apply(lines)
			if err != nil {
				return nil, fmt.Errorf("device %s: %w", c.Device, err)
			}
		}
		a = b + 1
	}
	return FromLines(c.Device, lines), nil
}

func (s EditSet) validate() error {
	seen := map[int]Edit{}
	for _, e := range s.Edits {
		_, isInsert := e.(InsertBefore)
		if prev, ok := seen[e.anchor()]; ok {
			_, prevInsert := prev.(InsertBefore)
			if !isInsert || !prevInsert {
				return fmt.Errorf("conflicting edits at line %d: %s vs %s", e.anchor(), prev, e)
			}
		}
		if !isInsert {
			seen[e.anchor()] = e
		} else if _, ok := seen[e.anchor()]; !ok {
			seen[e.anchor()] = e
		}
	}
	return nil
}

// String renders the edit set for reports.
func (s EditSet) String() string {
	parts := make([]string, len(s.Edits))
	for i, e := range s.Edits {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s{%s}", s.Device, strings.Join(parts, ", "))
}

// Diff renders a minimal unified-style diff between two configurations of
// the same device, using an LCS alignment. It is used in repair reports.
func Diff(before, after *Config) string {
	a, b := before.lines, after.lines
	// LCS table.
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s (before)\n+++ %s (after)\n", before.Device, after.Device)
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			fmt.Fprintf(&sb, "-%4d %s\n", i+1, a[i])
			i++
		default:
			fmt.Fprintf(&sb, "+%4d %s\n", j+1, b[j])
			j++
		}
	}
	for ; i < n; i++ {
		fmt.Fprintf(&sb, "-%4d %s\n", i+1, a[i])
	}
	for ; j < m; j++ {
		fmt.Fprintf(&sb, "+%4d %s\n", j+1, b[j])
	}
	return sb.String()
}
