package netcfg

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func linesOf(t *testing.T, c *Config) []string {
	t.Helper()
	return c.Lines()
}

func TestNewConfigLineAccounting(t *testing.T) {
	c := NewConfig("X", "a\nb\nc\n")
	if c.NumLines() != 3 {
		t.Fatalf("NumLines = %d, want 3", c.NumLines())
	}
	if c.Line(1) != "a" || c.Line(3) != "c" {
		t.Errorf("Line() wrong: %q %q", c.Line(1), c.Line(3))
	}
	if got := c.Text(); got != "a\nb\nc\n" {
		t.Errorf("Text() = %q", got)
	}
}

func TestConfigLinePanicsOutOfRange(t *testing.T) {
	c := NewConfig("X", "a\n")
	defer func() {
		if recover() == nil {
			t.Error("Line(0) did not panic")
		}
	}()
	c.Line(0)
}

func TestInsertBefore(t *testing.T) {
	c := NewConfig("X", "a\nb\n")
	got, err := EditSet{Edits: []Edit{InsertBefore{At: 2, Text: "mid"}}}.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "mid", "b"}; !reflect.DeepEqual(linesOf(t, got), want) {
		t.Errorf("lines = %v, want %v", linesOf(t, got), want)
	}
	// Original untouched.
	if c.NumLines() != 2 {
		t.Error("source config mutated")
	}
}

func TestInsertAppend(t *testing.T) {
	c := NewConfig("X", "a\n")
	got, err := EditSet{Edits: []Edit{InsertBefore{At: 2, Text: "z"}}}.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "z"}; !reflect.DeepEqual(linesOf(t, got), want) {
		t.Errorf("lines = %v, want %v", linesOf(t, got), want)
	}
}

func TestDeleteAndReplace(t *testing.T) {
	c := NewConfig("X", "a\nb\nc\n")
	got, err := EditSet{Edits: []Edit{DeleteLine{At: 2}, ReplaceLine{At: 3, Text: "C"}}}.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "C"}; !reflect.DeepEqual(linesOf(t, got), want) {
		t.Errorf("lines = %v, want %v", linesOf(t, got), want)
	}
}

func TestEditSetAnchorsAreOriginalLines(t *testing.T) {
	// Insert at 2 and delete original line 4; the delete must remove "d"
	// even though the insert shifted it.
	c := NewConfig("X", "a\nb\nc\nd\ne\n")
	got, err := EditSet{Edits: []Edit{
		InsertBefore{At: 2, Text: "x"},
		DeleteLine{At: 4},
	}}.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "x", "b", "c", "e"}; !reflect.DeepEqual(linesOf(t, got), want) {
		t.Errorf("lines = %v, want %v", linesOf(t, got), want)
	}
}

func TestEditSetMultipleInsertsSameAnchorKeepOrder(t *testing.T) {
	c := NewConfig("X", "a\nb\n")
	got, err := EditSet{Edits: []Edit{
		InsertBefore{At: 2, Text: "first"},
		InsertBefore{At: 2, Text: "second"},
	}}.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "first", "second", "b"}; !reflect.DeepEqual(linesOf(t, got), want) {
		t.Errorf("lines = %v, want %v", linesOf(t, got), want)
	}
}

func TestEditSetConflictRejected(t *testing.T) {
	c := NewConfig("X", "a\nb\n")
	_, err := EditSet{Edits: []Edit{
		DeleteLine{At: 2},
		ReplaceLine{At: 2, Text: "B"},
	}}.Apply(c)
	if err == nil || !strings.Contains(err.Error(), "conflicting edits") {
		t.Errorf("err = %v, want conflicting-edits error", err)
	}
}

func TestEditSetDeviceMismatch(t *testing.T) {
	c := NewConfig("X", "a\n")
	_, err := EditSet{Device: "Y", Edits: []Edit{DeleteLine{At: 1}}}.Apply(c)
	if err == nil {
		t.Error("want device-mismatch error")
	}
}

func TestEditOutOfRange(t *testing.T) {
	c := NewConfig("X", "a\n")
	for _, e := range []Edit{InsertBefore{At: 3, Text: "z"}, DeleteLine{At: 2}, ReplaceLine{At: 0, Text: "q"}} {
		if _, err := (EditSet{Edits: []Edit{e}}).Apply(c); err == nil {
			t.Errorf("edit %v out of range accepted", e)
		}
	}
}

func TestDiffOutput(t *testing.T) {
	before := NewConfig("A", "keep\nold\nkeep2\n")
	after := NewConfig("A", "keep\nnew\nkeep2\nadded\n")
	d := Diff(before, after)
	for _, want := range []string{"-   2 old", "+   2 new", "+   4 added"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "keep2\n-") || strings.Contains(d, "-   1 keep") {
		t.Errorf("diff touched unchanged lines:\n%s", d)
	}
}

func TestDiffIdentical(t *testing.T) {
	c := NewConfig("A", "a\nb\n")
	d := Diff(c, c)
	if strings.Count(d, "\n") != 2 { // only the two header lines
		t.Errorf("diff of identical configs not empty:\n%s", d)
	}
}

// Property: applying InsertBefore then DeleteLine of the inserted line is
// the identity.
func TestQuickInsertDeleteIdentity(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%20) + 1
		lines := make([]string, size)
		for i := range lines {
			lines[i] = strings.Repeat("x", rng.Intn(5)+1)
		}
		c := FromLines("X", lines)
		at := rng.Intn(size+1) + 1
		ins, err := EditSet{Edits: []Edit{InsertBefore{At: at, Text: "INSERTED"}}}.Apply(c)
		if err != nil {
			return false
		}
		back, err := EditSet{Edits: []Edit{DeleteLine{At: at}}}.Apply(ins)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Lines(), c.Lines())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: parse(Canonical(parse(x))) produces the same Canonical text —
// canonicalization is a fixed point.
func TestQuickCanonicalFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		cfg := randomConfig(rand.New(rand.NewSource(seed)))
		ast, err := Parse(cfg)
		if err != nil {
			return false // randomConfig must produce well-formed text
		}
		canon := Canonical(ast)
		ast2, err := Parse(NewConfig(cfg.Device, canon))
		if err != nil {
			return false
		}
		return Canonical(ast2) == canon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: EditSet with a single ReplaceLine preserves line count.
func TestQuickReplacePreservesCount(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%30) + 1
		lines := make([]string, size)
		for i := range lines {
			lines[i] = "line"
		}
		c := FromLines("X", lines)
		got, err := EditSet{Edits: []Edit{ReplaceLine{At: rng.Intn(size) + 1, Text: "changed"}}}.Apply(c)
		return err == nil && got.NumLines() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
