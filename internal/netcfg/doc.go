// Package netcfg implements a vendor-style router configuration language:
// a line-oriented, indentation-blocked grammar modeled on the configuration
// snippet of Figure 2b in "Automatic Configuration Repair" (HotNets '24).
//
// The package provides:
//
//   - Config: an immutable, line-addressable configuration document. Every
//     analysis in this repository (coverage, spectrum-based fault
//     localization, change operators) is expressed in terms of
//     (device, line-number) references, so Config keeps the raw text and
//     all edits are line edits.
//   - Parse: a parser producing a typed AST (File) whose every node records
//     the 1-based line span it came from.
//   - Builder: a programmatic constructor used by topology generators to
//     emit well-formed configurations.
//   - Edit / EditSet: insert, delete, and replace operations with
//     deterministic offset handling, plus unified-style diffs for reports.
//
// Grammar summary (one space of indentation per block level):
//
//	bgp <asn>
//	 router-id <ipv4>
//	 peer-group <name> [external]
//	 peer-group <name> route-policy <policy> (import|export)
//	 peer <ip> as-number <asn>
//	 peer <ip> group <group>
//	 peer <ip> route-policy <policy> (import|export)
//	 network <prefix>
//	 redistribute static [route-policy <policy>]
//	route-policy <name> (permit|deny) node <n>
//	 match ip-prefix <prefix-list>
//	 apply as-path overwrite <asn>
//	 apply as-path prepend <asn> [count]
//	 apply local-preference <n>
//	 apply med <n>
//	ip prefix-list <name> index <n> (permit|deny) <prefix> [ge <n>] [le <n>]
//	ip route static <prefix> (next-hop <ip>|null0)
//	pbr policy <name>
//	 rule <n> (permit|deny)
//	  match source <prefix>
//	  match destination <prefix>
//	  match protocol (tcp|udp|any)
//	  match dst-port <n>
//	  apply next-hop <ip>
//	  apply drop
//	interface <name>
//	 ip address <prefix>
//	 pbr policy <name>
//	 shutdown
//
// Comment lines start with '#' and blank lines are permitted anywhere; both
// are preserved (they occupy line numbers) but produce no AST nodes.
package netcfg
