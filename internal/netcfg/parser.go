package netcfg

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ParseError describes one syntactic problem found while parsing.
type ParseError struct {
	Ref LineRef
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Ref, e.Msg) }

// Parse parses a Config into its typed AST. It returns the File and an
// error joining every ParseError found; the File is still usable for the
// statements that parsed cleanly (analyses want to keep going on partially
// broken configs — a broken line is itself a repair candidate).
func Parse(c *Config) (*File, error) {
	p := &parser{cfg: c, file: &File{Device: c.Device}}
	p.run()
	if len(p.errs) == 0 {
		return p.file, nil
	}
	errs := make([]error, len(p.errs))
	for i, e := range p.errs {
		errs[i] = e
	}
	return p.file, errors.Join(errs...)
}

// MustParse parses and panics on error; for tests and generators whose
// output is well-formed by construction.
func MustParse(c *Config) *File {
	f, err := Parse(c)
	if err != nil {
		panic(fmt.Sprintf("netcfg: MustParse(%s): %v", c.Device, err))
	}
	return f
}

type parser struct {
	cfg  *Config
	file *File
	errs []*ParseError
	pos  int // 0-based index into lines
}

func (p *parser) errorf(line int, format string, args ...any) {
	p.errs = append(p.errs, &ParseError{
		Ref: LineRef{Device: p.cfg.Device, Line: line},
		Msg: fmt.Sprintf(format, args...),
	})
}

// indent returns the indentation level (number of leading spaces) and the
// trimmed content of the 0-based line i.
func (p *parser) indent(i int) (int, string) {
	raw := p.cfg.lines[i]
	trimmed := strings.TrimLeft(raw, " ")
	return len(raw) - len(trimmed), strings.TrimRight(trimmed, " ")
}

func skippable(s string) bool {
	// TrimSpace, not just the == "" check: indent() only strips spaces, so
	// content may still be all tabs/form-feeds — on which strings.Fields
	// returns an empty slice and the keyword dispatch would index past it.
	return strings.TrimSpace(s) == "" || strings.HasPrefix(s, "#")
}

func (p *parser) run() {
	n := p.cfg.NumLines()
	for p.pos < n {
		ind, content := p.indent(p.pos)
		line := p.pos + 1
		if skippable(content) {
			p.pos++
			continue
		}
		if ind != 0 {
			p.errorf(line, "unexpected indentation at top level")
			p.pos++
			continue
		}
		fields := strings.Fields(content)
		switch fields[0] {
		case "bgp":
			p.parseBGP(fields, line)
		case "route-policy":
			p.parseRoutePolicy(fields, line)
		case "ip":
			p.parseIP(fields, line)
			p.pos++
		case "pbr":
			p.parsePBR(fields, line)
		case "interface":
			p.parseInterface(fields, line)
		default:
			p.errorf(line, "unknown top-level keyword %q", fields[0])
			p.pos++
		}
	}
}

// block collects the 0-based indexes of the body lines of a block whose
// header is at p.pos with the given indentation; it advances p.pos past the
// block and returns the body line indexes (content indent > headerIndent).
func (p *parser) block(headerIndent int) []int {
	var body []int
	p.pos++
	for p.pos < p.cfg.NumLines() {
		ind, content := p.indent(p.pos)
		if skippable(content) {
			p.pos++
			continue
		}
		if ind <= headerIndent {
			break
		}
		body = append(body, p.pos)
		p.pos++
	}
	return body
}

func (p *parser) parseASN(s string, line int) uint32 {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil || v == 0 {
		p.errorf(line, "invalid AS number %q", s)
		return 0
	}
	return uint32(v)
}

func (p *parser) parseAddr(s string, line int) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		p.errorf(line, "invalid IP address %q", s)
		return netip.Addr{}
	}
	return a
}

func (p *parser) parsePrefix(s string, line int) netip.Prefix {
	pf, err := netip.ParsePrefix(s)
	if err != nil {
		p.errorf(line, "invalid prefix %q", s)
		return netip.Prefix{}
	}
	return pf.Masked()
}

func (p *parser) parseInt(s string, line int) int {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		p.errorf(line, "invalid number %q", s)
		return 0
	}
	return v
}

// --- bgp -------------------------------------------------------------------

func (p *parser) parseBGP(fields []string, line int) {
	if len(fields) != 2 {
		p.errorf(line, "usage: bgp <asn>")
		p.pos++
		return
	}
	if p.file.BGP != nil {
		p.errorf(line, "duplicate bgp block (first at line %d)", p.file.BGP.Line)
	}
	b := &BGPBlock{Line: line, ASN: p.parseASN(fields[1], line)}
	body := p.block(0)
	b.End = line
	if len(body) > 0 {
		b.End = body[len(body)-1] + 1
	}
	peers := map[netip.Addr]*Peer{}
	peerOrder := []netip.Addr{}
	getPeer := func(a netip.Addr) *Peer {
		if pe, ok := peers[a]; ok {
			return pe
		}
		pe := &Peer{Addr: a}
		peers[a] = pe
		peerOrder = append(peerOrder, a)
		return pe
	}
	for _, i := range body {
		_, content := p.indent(i)
		ln := i + 1
		f := strings.Fields(content)
		switch f[0] {
		case "router-id":
			if len(f) != 2 {
				p.errorf(ln, "usage: router-id <ipv4>")
				continue
			}
			b.RouterID = p.parseAddr(f[1], ln)
			b.RouterIDLine = ln
		case "peer-group":
			p.parsePeerGroupLine(b, f, ln)
		case "peer":
			p.parsePeerLine(b, getPeer, f, ln)
		case "network":
			if len(f) != 2 {
				p.errorf(ln, "usage: network <prefix>")
				continue
			}
			b.Networks = append(b.Networks, &NetworkStmt{Line: ln, Prefix: p.parsePrefix(f[1], ln)})
		case "redistribute":
			switch {
			case len(f) == 2 && f[1] == "static":
				b.Redistribute = &RedistributeStmt{Line: ln}
			case len(f) == 4 && f[1] == "static" && f[2] == "route-policy":
				b.Redistribute = &RedistributeStmt{Line: ln, Policy: f[3]}
			default:
				p.errorf(ln, "usage: redistribute static [route-policy <name>]")
			}
		default:
			p.errorf(ln, "unknown bgp statement %q", f[0])
		}
	}
	for _, a := range peerOrder {
		b.Peers = append(b.Peers, peers[a])
	}
	p.file.BGP = b
}

func (p *parser) parsePeerGroupLine(b *BGPBlock, f []string, ln int) {
	if len(f) < 2 {
		p.errorf(ln, "usage: peer-group <name> [external] | peer-group <name> route-policy <pol> (import|export)")
		return
	}
	name := f[1]
	find := func() *PeerGroup {
		for _, g := range b.Groups {
			if g.Name == name {
				return g
			}
		}
		return nil
	}
	switch {
	case len(f) == 2 || (len(f) == 3 && f[2] == "external"):
		if find() != nil {
			p.errorf(ln, "duplicate peer-group %q", name)
			return
		}
		b.Groups = append(b.Groups, &PeerGroup{Line: ln, Name: name, External: len(f) == 3})
	case len(f) == 5 && f[2] == "route-policy":
		g := find()
		if g == nil {
			// Attachment before declaration: declare implicitly so the
			// attachment is not lost (matching vendor behavior, where the
			// first reference creates the group).
			g = &PeerGroup{Line: ln, Name: name}
			b.Groups = append(b.Groups, g)
		}
		d, ok := parseDirection(f[4])
		if !ok {
			p.errorf(ln, "direction must be import or export, got %q", f[4])
			return
		}
		g.Policies = append(g.Policies, &PolicyAttach{Line: ln, Policy: f[3], Direction: d})
	default:
		p.errorf(ln, "unknown peer-group statement")
	}
}

func (p *parser) parsePeerLine(b *BGPBlock, getPeer func(netip.Addr) *Peer, f []string, ln int) {
	if len(f) < 3 {
		p.errorf(ln, "usage: peer <ip> (as-number <asn> | group <name> | route-policy <pol> (import|export))")
		return
	}
	addr := p.parseAddr(f[1], ln)
	if !addr.IsValid() {
		return
	}
	pe := getPeer(addr)
	switch f[2] {
	case "as-number":
		if len(f) != 4 {
			p.errorf(ln, "usage: peer <ip> as-number <asn>")
			return
		}
		pe.ASN = p.parseASN(f[3], ln)
		pe.ASNLine = ln
	case "group":
		if len(f) != 4 {
			p.errorf(ln, "usage: peer <ip> group <name>")
			return
		}
		pe.Group = f[3]
		pe.GroupLine = ln
		// Membership implicitly declares the group (vendor behavior).
		exists := false
		for _, g := range b.Groups {
			if g.Name == pe.Group {
				exists = true
				break
			}
		}
		if !exists {
			b.Groups = append(b.Groups, &PeerGroup{Line: ln, Name: pe.Group})
		}
	case "route-policy":
		if len(f) != 5 {
			p.errorf(ln, "usage: peer <ip> route-policy <pol> (import|export)")
			return
		}
		d, ok := parseDirection(f[4])
		if !ok {
			p.errorf(ln, "direction must be import or export, got %q", f[4])
			return
		}
		pe.Policies = append(pe.Policies, &PolicyAttach{Line: ln, Policy: f[3], Direction: d})
	default:
		p.errorf(ln, "unknown peer statement %q", f[2])
	}
}

func parseDirection(s string) (Direction, bool) {
	switch s {
	case "import":
		return Import, true
	case "export":
		return Export, true
	}
	return Import, false
}

// --- route-policy ----------------------------------------------------------

func (p *parser) parseRoutePolicy(fields []string, line int) {
	if len(fields) != 5 || fields[3] != "node" {
		p.errorf(line, "usage: route-policy <name> (permit|deny) node <n>")
		p.pos++
		return
	}
	rp := &RoutePolicy{Line: line, Name: fields[1], Node: p.parseInt(fields[4], line)}
	switch fields[2] {
	case "permit":
		rp.Permit = true
	case "deny":
	default:
		p.errorf(line, "action must be permit or deny, got %q", fields[2])
	}
	body := p.block(0)
	rp.End = line
	if len(body) > 0 {
		rp.End = body[len(body)-1] + 1
	}
	for _, i := range body {
		_, content := p.indent(i)
		ln := i + 1
		f := strings.Fields(content)
		switch f[0] {
		case "match":
			if len(f) == 3 && f[1] == "ip-prefix" {
				rp.Matches = append(rp.Matches, &MatchClause{Line: ln, Kind: MatchIPPrefix, PrefixList: f[2]})
			} else {
				p.errorf(ln, "usage: match ip-prefix <list>")
			}
		case "apply":
			p.parseApply(rp, f, ln)
		default:
			p.errorf(ln, "unknown route-policy statement %q", f[0])
		}
	}
	p.file.Policies = append(p.file.Policies, rp)
}

func (p *parser) parseApply(rp *RoutePolicy, f []string, ln int) {
	bad := func() { p.errorf(ln, "unknown apply clause %q", strings.Join(f, " ")) }
	if len(f) < 2 {
		bad()
		return
	}
	switch f[1] {
	case "as-path":
		switch {
		case len(f) == 4 && f[2] == "overwrite":
			rp.Applies = append(rp.Applies, &ApplyClause{Line: ln, Kind: ApplyASPathOverwrite, ASN: p.parseASN(f[3], ln)})
		case (len(f) == 4 || len(f) == 5) && f[2] == "prepend":
			c := &ApplyClause{Line: ln, Kind: ApplyASPathPrepend, ASN: p.parseASN(f[3], ln), Count: 1}
			if len(f) == 5 {
				c.Count = p.parseInt(f[4], ln)
			}
			rp.Applies = append(rp.Applies, c)
		default:
			bad()
		}
	case "local-preference":
		if len(f) != 3 {
			bad()
			return
		}
		rp.Applies = append(rp.Applies, &ApplyClause{Line: ln, Kind: ApplyLocalPref, Value: uint32(p.parseInt(f[2], ln))})
	case "med":
		if len(f) != 3 {
			bad()
			return
		}
		rp.Applies = append(rp.Applies, &ApplyClause{Line: ln, Kind: ApplyMED, Value: uint32(p.parseInt(f[2], ln))})
	default:
		bad()
	}
}

// --- ip (prefix-list, static routes) ----------------------------------------

func (p *parser) parseIP(f []string, line int) {
	if len(f) < 2 {
		p.errorf(line, "incomplete ip statement")
		return
	}
	switch f[1] {
	case "prefix-list":
		p.parsePrefixList(f, line)
	case "route":
		p.parseStaticRoute(f, line)
	default:
		p.errorf(line, "unknown ip statement %q", f[1])
	}
}

func (p *parser) parsePrefixList(f []string, line int) {
	// ip prefix-list <name> index <n> (permit|deny) <prefix> [ge <n>] [le <n>]
	if len(f) < 7 || f[3] != "index" {
		p.errorf(line, "usage: ip prefix-list <name> index <n> (permit|deny) <prefix> [ge <n>] [le <n>]")
		return
	}
	e := &PrefixList{
		Line:  line,
		Name:  f[2],
		Index: p.parseInt(f[4], line),
	}
	switch f[5] {
	case "permit":
		e.Permit = true
	case "deny":
	default:
		p.errorf(line, "action must be permit or deny, got %q", f[5])
		return
	}
	e.Prefix = p.parsePrefix(f[6], line)
	rest := f[7:]
	for len(rest) >= 2 {
		switch rest[0] {
		case "ge":
			e.GE = p.parseInt(rest[1], line)
		case "le":
			e.LE = p.parseInt(rest[1], line)
		default:
			p.errorf(line, "unknown prefix-list qualifier %q", rest[0])
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		p.errorf(line, "trailing tokens in prefix-list entry")
	}
	p.file.PrefixLists = append(p.file.PrefixLists, e)
}

func (p *parser) parseStaticRoute(f []string, line int) {
	// ip route static <prefix> (next-hop <ip> | null0)
	if len(f) < 4 || f[2] != "static" {
		p.errorf(line, "usage: ip route static <prefix> (next-hop <ip>|null0)")
		return
	}
	sr := &StaticRoute{Line: line, Prefix: p.parsePrefix(f[3], line)}
	switch {
	case len(f) == 5 && f[4] == "null0":
		sr.Null0 = true
	case len(f) == 6 && f[4] == "next-hop":
		sr.NextHop = p.parseAddr(f[5], line)
	default:
		p.errorf(line, "usage: ip route static <prefix> (next-hop <ip>|null0)")
		return
	}
	p.file.Statics = append(p.file.Statics, sr)
}

// --- pbr ---------------------------------------------------------------------

func (p *parser) parsePBR(fields []string, line int) {
	if len(fields) != 3 || fields[1] != "policy" {
		p.errorf(line, "usage: pbr policy <name>")
		p.pos++
		return
	}
	pol := &PBRPolicy{Line: line, Name: fields[2]}
	body := p.block(0)
	pol.End = line
	if len(body) > 0 {
		pol.End = body[len(body)-1] + 1
	}
	var rule *PBRRule
	flush := func() {
		if rule != nil {
			pol.Rules = append(pol.Rules, rule)
			rule = nil
		}
	}
	for _, i := range body {
		ind, content := p.indent(i)
		ln := i + 1
		f := strings.Fields(content)
		if ind == 1 {
			if f[0] != "rule" || len(f) != 3 {
				p.errorf(ln, "usage: rule <n> (permit|deny)")
				continue
			}
			flush()
			rule = &PBRRule{Line: ln, End: ln, Index: p.parseInt(f[1], ln)}
			switch f[2] {
			case "permit":
				rule.Permit = true
			case "deny":
			default:
				p.errorf(ln, "action must be permit or deny, got %q", f[2])
			}
			continue
		}
		if rule == nil {
			p.errorf(ln, "statement outside any rule")
			continue
		}
		rule.End = ln
		switch {
		case len(f) == 3 && f[0] == "match" && f[1] == "source":
			rule.MatchSource = &PrefixMatch{Line: ln, Prefix: p.parsePrefix(f[2], ln)}
		case len(f) == 3 && f[0] == "match" && f[1] == "destination":
			rule.MatchDest = &PrefixMatch{Line: ln, Prefix: p.parsePrefix(f[2], ln)}
		case len(f) == 3 && f[0] == "match" && f[1] == "protocol":
			proto := f[2]
			if proto != "tcp" && proto != "udp" && proto != "any" {
				p.errorf(ln, "protocol must be tcp, udp, or any")
				continue
			}
			rule.MatchProto = &ProtoMatch{Line: ln, Proto: proto}
		case len(f) == 3 && f[0] == "match" && f[1] == "dst-port":
			rule.MatchDstPort = &PortMatch{Line: ln, Port: uint16(p.parseInt(f[2], ln))}
		case len(f) == 3 && f[0] == "apply" && f[1] == "next-hop":
			rule.ApplyNextHop = &NextHopApply{Line: ln, NextHop: p.parseAddr(f[2], ln)}
		case len(f) == 2 && f[0] == "apply" && f[1] == "drop":
			rule.ApplyDrop = &DropApply{Line: ln}
		default:
			p.errorf(ln, "unknown pbr rule statement %q", content)
		}
	}
	flush()
	p.file.PBRPolicies = append(p.file.PBRPolicies, pol)
}

// --- interface ----------------------------------------------------------------

func (p *parser) parseInterface(fields []string, line int) {
	if len(fields) != 2 {
		p.errorf(line, "usage: interface <name>")
		p.pos++
		return
	}
	itf := &Interface{Line: line, Name: fields[1]}
	body := p.block(0)
	itf.End = line
	if len(body) > 0 {
		itf.End = body[len(body)-1] + 1
	}
	for _, i := range body {
		_, content := p.indent(i)
		ln := i + 1
		f := strings.Fields(content)
		switch {
		case len(f) == 3 && f[0] == "ip" && f[1] == "address":
			pf, err := netip.ParsePrefix(f[2])
			if err != nil {
				p.errorf(ln, "invalid interface address %q", f[2])
				continue
			}
			itf.Addr = pf // keep host bits: the address identifies the interface
			itf.AddrLine = ln
		case len(f) == 3 && f[0] == "pbr" && f[1] == "policy":
			itf.PBRPolicy = f[2]
			itf.PBRLine = ln
		case len(f) == 1 && f[0] == "shutdown":
			itf.Shutdown = true
			itf.ShutLine = ln
		default:
			p.errorf(ln, "unknown interface statement %q", content)
		}
	}
	p.file.Interfaces = append(p.file.Interfaces, itf)
}
