package netcfg

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
)

// randomConfig builds a random but well-formed configuration, used by
// property tests.
func randomConfig(rng *rand.Rand) *Config {
	b := NewBuilder(fmt.Sprintf("R%d", rng.Intn(100)))
	asn := uint32(rng.Intn(60000) + 1)
	g := b.BGP(asn).RouterID(randAddr(rng))
	nGroups := rng.Intn(3)
	for i := 0; i < nGroups; i++ {
		g.PeerGroup(fmt.Sprintf("G%d", i), rng.Intn(2) == 0)
	}
	nPeers := rng.Intn(4)
	for i := 0; i < nPeers; i++ {
		addr := randAddr(rng)
		g.Peer(addr, uint32(rng.Intn(60000)+1))
		if nGroups > 0 && rng.Intn(2) == 0 {
			g.PeerInGroup(addr, fmt.Sprintf("G%d", rng.Intn(nGroups)))
		}
		if rng.Intn(2) == 0 {
			g.PeerPolicy(addr, "Pol", Import)
		}
	}
	if rng.Intn(2) == 0 {
		g.Network(randPrefix(rng))
	}
	if rng.Intn(2) == 0 {
		g.RedistributeStatic("")
	}
	b = g.End()
	pb := b.RoutePolicy("Pol", true, 10).MatchIPPrefix("L")
	switch rng.Intn(3) {
	case 0:
		pb.ApplyASPathOverwrite(asn)
	case 1:
		pb.ApplyASPathPrepend(asn, rng.Intn(3)+1)
	default:
		pb.ApplyLocalPref(uint32(rng.Intn(300)))
	}
	b = pb.End()
	b.PrefixListEntry("L", 10, true, randPrefix(rng), 0, 32)
	if rng.Intn(2) == 0 {
		b.StaticRoute(randPrefix(rng), randAddr(rng))
	}
	ifb := b.Interface("eth0").Address(netip.PrefixFrom(randAddr(rng), 30))
	if rng.Intn(3) == 0 {
		ifb.Shutdown()
	}
	b = ifb.End()
	return b.Build()
}

func randAddr(rng *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(254) + 1)})
}

func randPrefix(rng *rand.Rand) netip.Prefix {
	bits := rng.Intn(17) + 8
	return netip.PrefixFrom(randAddr(rng), bits).Masked()
}

func TestBuilderOutputParses(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := randomConfig(rand.New(rand.NewSource(seed)))
		if _, err := Parse(cfg); err != nil {
			t.Fatalf("seed %d: builder output does not parse: %v\n%s", seed, err, cfg.Text())
		}
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("10.1.1.2")
	cfg := NewBuilder("A").
		Comment("router A").
		BGP(65001).
		RouterID(netip.MustParseAddr("1.0.0.1")).
		PeerGroup("PoPSide", true).
		Peer(addr, 64601).
		PeerInGroup(addr, "PoPSide").
		GroupPolicy("PoPSide", "Override_All", Import).
		Network(netip.MustParsePrefix("10.70.0.0/16")).
		RedistributeStatic("RedistPol").
		End().
		RoutePolicy("Override_All", true, 10).
		MatchIPPrefix("default_all").
		ApplyASPathOverwrite(65001).
		End().
		PrefixListEntry("default_all", 10, true, netip.MustParsePrefix("0.0.0.0/0"), 0, 32).
		StaticRoute(netip.MustParsePrefix("10.70.0.0/16"), addr).
		Build()

	f, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.BGP.ASN != 65001 {
		t.Errorf("ASN = %d", f.BGP.ASN)
	}
	p := f.PeerByAddr(addr)
	if p == nil || p.ASN != 64601 || p.Group != "PoPSide" {
		t.Fatalf("peer = %+v", p)
	}
	if f.BGP.Redistribute == nil || f.BGP.Redistribute.Policy != "RedistPol" {
		t.Errorf("redistribute = %+v", f.BGP.Redistribute)
	}
	g := f.GroupByName("PoPSide")
	if g == nil || !g.External || len(g.Policies) != 1 {
		t.Fatalf("group = %+v", g)
	}
	if len(f.PolicyNodes("Override_All")) != 1 {
		t.Error("policy missing")
	}
}

func TestBuilderPBR(t *testing.T) {
	cfg := NewBuilder("X").
		PBRPolicy("Redirect").
		Rule(10, true).
		MatchSource(netip.MustParsePrefix("10.0.0.0/16")).
		MatchDest(netip.MustParsePrefix("20.0.0.0/16")).
		MatchProtocol("udp").
		MatchDstPort(53).
		ApplyNextHop(netip.MustParseAddr("10.1.1.2")).
		Rule(20, false).
		ApplyDrop().
		End().
		Interface("eth0").
		Address(netip.MustParsePrefix("10.1.1.1/30")).
		PBR("Redirect").
		End().
		Build()
	f, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, cfg.Text())
	}
	pol := f.PBRPolicyByName("Redirect")
	if pol == nil || len(pol.Rules) != 2 {
		t.Fatalf("pbr = %+v", pol)
	}
	if pol.Rules[0].MatchDstPort.Port != 53 {
		t.Errorf("port = %d", pol.Rules[0].MatchDstPort.Port)
	}
	if pol.Rules[1].ApplyDrop == nil {
		t.Error("rule 20 missing drop")
	}
	if f.InterfaceByName("eth0").PBRPolicy != "Redirect" {
		t.Error("interface PBR binding lost")
	}
}

func TestFormatHelpers(t *testing.T) {
	got := FormatPrefixListEntry("L", 5, true, netip.MustParsePrefix("10.70.0.0/16"), 0, 0)
	if want := "ip prefix-list L index 5 permit 10.70.0.0/16"; got != want {
		t.Errorf("FormatPrefixListEntry = %q, want %q", got, want)
	}
	got = FormatPrefixListEntry("L", 10, false, netip.MustParsePrefix("0.0.0.0/0"), 8, 24)
	if want := "ip prefix-list L index 10 deny 0.0.0.0/0 ge 8 le 24"; got != want {
		t.Errorf("FormatPrefixListEntry = %q, want %q", got, want)
	}
	if got := FormatGroupPolicyLine("G", "P", Export); got != " peer-group G route-policy P export" {
		t.Errorf("FormatGroupPolicyLine = %q", got)
	}
	if got := FormatPeerPolicyLine("1.2.3.4", "P", Import); got != " peer 1.2.3.4 route-policy P import" {
		t.Errorf("FormatPeerPolicyLine = %q", got)
	}
}

func TestCanonicalParsesBack(t *testing.T) {
	f := MustParse(NewConfig("A", routerAText))
	canon := Canonical(f)
	f2, err := Parse(NewConfig("A", canon))
	if err != nil {
		t.Fatalf("Canonical output does not parse: %v\n%s", err, canon)
	}
	if f2.BGP.ASN != f.BGP.ASN || len(f2.BGP.Peers) != len(f.BGP.Peers) ||
		len(f2.Policies) != len(f.Policies) || len(f2.PrefixLists) != len(f.PrefixLists) {
		t.Error("canonical round trip changed structure")
	}
}
