package netcfg

import (
	"testing"
)

// FuzzParse throws arbitrary text at the parser and checks the robustness
// contract the repair engine depends on:
//
//   - Parse never panics and never returns a nil File, no matter how
//     broken the input (broken lines are repair candidates, so analyses
//     must keep going on partial ASTs);
//   - the document round-trip (Config.Text → NewConfig → Parse) is
//     stable: the reprinted text reprints identically and parses to the
//     same verdict.
func FuzzParse(f *testing.F) {
	seeds := []string{
		routerAText,
		"",
		"\n\n\n",
		"# only a comment\n",
		"bgp 65001\n",
		"bgp 65001\n router-id 1.0.0.1\n peer 10.0.0.2 as-number 64601\n",
		"bgp not-a-number\n",
		"bgp 65001\n peer 10.0.0.999 as-number 1\n",
		"route-policy P permit node 10\n match ip-prefix pl\n apply local-preference 200\n",
		"route-policy P deny node nope\n",
		"ip prefix-list pl index 10 permit 10.0.0.0/8 le 24\n",
		"ip prefix-list pl index ten permit 10.0.0.0/8\n",
		"ip route static 10.0.0.0/8 next-hop 10.1.1.2\n",
		"pbr policy P\n if source 10.0.0.0/8 then next-hop 10.1.1.2\n",
		"interface eth0\n ip address 10.1.1.1/30\n",
		"interface eth0\n shutdown\n",
		"   leading indentation\n",
		"unknown keyword soup\n",
		"bgp 65001\n\tpeer 10.0.0.2 as-number 1\n", // tab, not space
		"bgp 65001\n  peer 10.0.0.2\n   orphan deep indent\n",
		"route-policy P permit node 10\nroute-policy P permit node 10\n",
		"bgp 1\nbgp 2\n",
		"peer 10.0.0.2 as-number 1\n", // body line at top level
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c := NewConfig("fuzz", text)
		file, err := Parse(c) // must not panic
		if file == nil {
			t.Fatal("Parse returned nil File")
		}
		// Round-trip: print and reparse. (Static checks over partial ASTs
		// are exercised by FuzzAnalyze in internal/analysis.)
		printed := NewConfig("fuzz", c.Text())
		if printed.Text() != c.Text() {
			t.Fatalf("reprint not stable:\n%q\nvs\n%q", printed.Text(), c.Text())
		}
		file2, err2 := Parse(printed)
		if file2 == nil {
			t.Fatal("reparse returned nil File")
		}
		if (err == nil) != (err2 == nil) {
			t.Fatalf("parse verdict changed across reprint: %v vs %v", err, err2)
		}
		if err != nil && err.Error() != err2.Error() {
			t.Fatalf("parse errors changed across reprint:\n%v\nvs\n%v", err, err2)
		}
	})
}
