package netcfg

import (
	"fmt"
	"net/netip"
	"strings"
)

// Builder constructs well-formed configurations programmatically. Topology
// generators use it so that generated text always parses cleanly; it is
// also the printer for synthesized repairs when a whole block is inserted.
type Builder struct {
	device string
	lines  []string
}

// NewBuilder returns a Builder for the named device.
func NewBuilder(device string) *Builder {
	return &Builder{device: device}
}

// Raw appends a raw top-level line (used sparingly, e.g. comments).
func (b *Builder) Raw(line string) *Builder {
	b.lines = append(b.lines, line)
	return b
}

// Comment appends a '# ...' comment line.
func (b *Builder) Comment(format string, args ...any) *Builder {
	return b.Raw("# " + fmt.Sprintf(format, args...))
}

// Blank appends an empty line.
func (b *Builder) Blank() *Builder { return b.Raw("") }

// Build returns the accumulated Config.
func (b *Builder) Build() *Config { return FromLines(b.device, b.lines) }

// BGPBuilder accumulates the body of a `bgp` block.
type BGPBuilder struct {
	parent *Builder
}

// BGP opens a `bgp <asn>` block; statements added through the returned
// BGPBuilder are indented one level.
func (b *Builder) BGP(asn uint32) *BGPBuilder {
	b.lines = append(b.lines, fmt.Sprintf("bgp %d", asn))
	return &BGPBuilder{parent: b}
}

func (g *BGPBuilder) add(format string, args ...any) *BGPBuilder {
	g.parent.lines = append(g.parent.lines, " "+fmt.Sprintf(format, args...))
	return g
}

// RouterID emits `router-id <ip>`.
func (g *BGPBuilder) RouterID(a netip.Addr) *BGPBuilder { return g.add("router-id %s", a) }

// PeerGroup emits `peer-group <name> [external]`.
func (g *BGPBuilder) PeerGroup(name string, external bool) *BGPBuilder {
	if external {
		return g.add("peer-group %s external", name)
	}
	return g.add("peer-group %s", name)
}

// GroupPolicy emits `peer-group <name> route-policy <pol> <dir>`.
func (g *BGPBuilder) GroupPolicy(group, policy string, d Direction) *BGPBuilder {
	return g.add("peer-group %s route-policy %s %s", group, policy, d)
}

// Peer emits `peer <ip> as-number <asn>`.
func (g *BGPBuilder) Peer(addr netip.Addr, asn uint32) *BGPBuilder {
	return g.add("peer %s as-number %d", addr, asn)
}

// PeerInGroup emits `peer <ip> group <name>`.
func (g *BGPBuilder) PeerInGroup(addr netip.Addr, group string) *BGPBuilder {
	return g.add("peer %s group %s", addr, group)
}

// PeerPolicy emits `peer <ip> route-policy <pol> <dir>`.
func (g *BGPBuilder) PeerPolicy(addr netip.Addr, policy string, d Direction) *BGPBuilder {
	return g.add("peer %s route-policy %s %s", addr, policy, d)
}

// Network emits `network <prefix>`.
func (g *BGPBuilder) Network(p netip.Prefix) *BGPBuilder { return g.add("network %s", p) }

// RedistributeStatic emits `redistribute static [route-policy <pol>]`.
func (g *BGPBuilder) RedistributeStatic(policy string) *BGPBuilder {
	if policy == "" {
		return g.add("redistribute static")
	}
	return g.add("redistribute static route-policy %s", policy)
}

// End closes the block, returning the parent Builder.
func (g *BGPBuilder) End() *Builder { return g.parent }

// PolicyBuilder accumulates one route-policy node.
type PolicyBuilder struct {
	parent *Builder
}

// RoutePolicy opens a `route-policy <name> <action> node <n>` block.
func (b *Builder) RoutePolicy(name string, permit bool, node int) *PolicyBuilder {
	action := "deny"
	if permit {
		action = "permit"
	}
	b.lines = append(b.lines, fmt.Sprintf("route-policy %s %s node %d", name, action, node))
	return &PolicyBuilder{parent: b}
}

func (pb *PolicyBuilder) add(format string, args ...any) *PolicyBuilder {
	pb.parent.lines = append(pb.parent.lines, " "+fmt.Sprintf(format, args...))
	return pb
}

// MatchIPPrefix emits `match ip-prefix <list>`.
func (pb *PolicyBuilder) MatchIPPrefix(list string) *PolicyBuilder {
	return pb.add("match ip-prefix %s", list)
}

// ApplyASPathOverwrite emits `apply as-path overwrite <asn>`.
func (pb *PolicyBuilder) ApplyASPathOverwrite(asn uint32) *PolicyBuilder {
	return pb.add("apply as-path overwrite %d", asn)
}

// ApplyASPathPrepend emits `apply as-path prepend <asn> [count]`.
func (pb *PolicyBuilder) ApplyASPathPrepend(asn uint32, count int) *PolicyBuilder {
	if count == 1 {
		return pb.add("apply as-path prepend %d", asn)
	}
	return pb.add("apply as-path prepend %d %d", asn, count)
}

// ApplyLocalPref emits `apply local-preference <n>`.
func (pb *PolicyBuilder) ApplyLocalPref(v uint32) *PolicyBuilder {
	return pb.add("apply local-preference %d", v)
}

// ApplyMED emits `apply med <n>`.
func (pb *PolicyBuilder) ApplyMED(v uint32) *PolicyBuilder { return pb.add("apply med %d", v) }

// End closes the block.
func (pb *PolicyBuilder) End() *Builder { return pb.parent }

// PrefixListEntry emits a single prefix-list entry line.
func (b *Builder) PrefixListEntry(name string, index int, permit bool, p netip.Prefix, ge, le int) *Builder {
	b.lines = append(b.lines, FormatPrefixListEntry(name, index, permit, p, ge, le))
	return b
}

// FormatPrefixListEntry renders a prefix-list entry line; change operators
// use it to synthesize insertions.
func FormatPrefixListEntry(name string, index int, permit bool, p netip.Prefix, ge, le int) string {
	action := "deny"
	if permit {
		action = "permit"
	}
	s := fmt.Sprintf("ip prefix-list %s index %d %s %s", name, index, action, p)
	if ge > 0 {
		s += fmt.Sprintf(" ge %d", ge)
	}
	if le > 0 {
		s += fmt.Sprintf(" le %d", le)
	}
	return s
}

// StaticRoute emits `ip route static <prefix> next-hop <ip>`.
func (b *Builder) StaticRoute(p netip.Prefix, nh netip.Addr) *Builder {
	b.lines = append(b.lines, fmt.Sprintf("ip route static %s next-hop %s", p, nh))
	return b
}

// StaticNull emits `ip route static <prefix> null0`.
func (b *Builder) StaticNull(p netip.Prefix) *Builder {
	b.lines = append(b.lines, fmt.Sprintf("ip route static %s null0", p))
	return b
}

// PBRBuilder accumulates a PBR policy block.
type PBRBuilder struct {
	parent *Builder
}

// PBRPolicy opens a `pbr policy <name>` block.
func (b *Builder) PBRPolicy(name string) *PBRBuilder {
	b.lines = append(b.lines, fmt.Sprintf("pbr policy %s", name))
	return &PBRBuilder{parent: b}
}

// Rule opens a `rule <n> (permit|deny)` sub-block (indent level 1).
func (pb *PBRBuilder) Rule(index int, permit bool) *PBRBuilder {
	action := "deny"
	if permit {
		action = "permit"
	}
	pb.parent.lines = append(pb.parent.lines, fmt.Sprintf(" rule %d %s", index, action))
	return pb
}

func (pb *PBRBuilder) add(format string, args ...any) *PBRBuilder {
	pb.parent.lines = append(pb.parent.lines, "  "+fmt.Sprintf(format, args...))
	return pb
}

// MatchSource emits `match source <prefix>` in the current rule.
func (pb *PBRBuilder) MatchSource(p netip.Prefix) *PBRBuilder { return pb.add("match source %s", p) }

// MatchDest emits `match destination <prefix>` in the current rule.
func (pb *PBRBuilder) MatchDest(p netip.Prefix) *PBRBuilder {
	return pb.add("match destination %s", p)
}

// MatchProtocol emits `match protocol <proto>` in the current rule.
func (pb *PBRBuilder) MatchProtocol(proto string) *PBRBuilder {
	return pb.add("match protocol %s", proto)
}

// MatchDstPort emits `match dst-port <n>` in the current rule.
func (pb *PBRBuilder) MatchDstPort(port uint16) *PBRBuilder {
	return pb.add("match dst-port %d", port)
}

// ApplyNextHop emits `apply next-hop <ip>` in the current rule.
func (pb *PBRBuilder) ApplyNextHop(nh netip.Addr) *PBRBuilder {
	return pb.add("apply next-hop %s", nh)
}

// ApplyDrop emits `apply drop` in the current rule.
func (pb *PBRBuilder) ApplyDrop() *PBRBuilder { return pb.add("apply drop") }

// End closes the policy block.
func (pb *PBRBuilder) End() *Builder { return pb.parent }

// InterfaceBuilder accumulates an interface block.
type InterfaceBuilder struct {
	parent *Builder
}

// Interface opens an `interface <name>` block.
func (b *Builder) Interface(name string) *InterfaceBuilder {
	b.lines = append(b.lines, "interface "+name)
	return &InterfaceBuilder{parent: b}
}

func (ib *InterfaceBuilder) add(format string, args ...any) *InterfaceBuilder {
	ib.parent.lines = append(ib.parent.lines, " "+fmt.Sprintf(format, args...))
	return ib
}

// Address emits `ip address <prefix>` (prefix keeps its host bits).
func (ib *InterfaceBuilder) Address(p netip.Prefix) *InterfaceBuilder {
	return ib.add("ip address %s", p)
}

// PBR emits `pbr policy <name>`.
func (ib *InterfaceBuilder) PBR(name string) *InterfaceBuilder { return ib.add("pbr policy %s", name) }

// Shutdown emits `shutdown`.
func (ib *InterfaceBuilder) Shutdown() *InterfaceBuilder { return ib.add("shutdown") }

// End closes the block.
func (ib *InterfaceBuilder) End() *Builder { return ib.parent }

// FormatPeerPolicyLine renders a `peer ... route-policy ...` body line used
// by change templates when attaching a policy to a peer or group. The
// returned text includes the single-space bgp-block indentation.
func FormatPeerPolicyLine(target string, policy string, d Direction) string {
	return fmt.Sprintf(" peer %s route-policy %s %s", target, policy, d)
}

// FormatGroupPolicyLine renders a `peer-group <g> route-policy ...` body
// line (with bgp-block indentation).
func FormatGroupPolicyLine(group, policy string, d Direction) string {
	return fmt.Sprintf(" peer-group %s route-policy %s %s", group, policy, d)
}

// Canonical reformats a parsed configuration back to canonical text. The
// parser tolerates extra whitespace; Canonical is the fixed-point form. It
// is primarily exercised by round-trip tests: Parse(Canonical(f)) must
// equal Parse of the original for all well-formed inputs.
func Canonical(f *File) string {
	var sb strings.Builder
	if f.BGP != nil {
		fmt.Fprintf(&sb, "bgp %d\n", f.BGP.ASN)
		if f.BGP.RouterID.IsValid() {
			fmt.Fprintf(&sb, " router-id %s\n", f.BGP.RouterID)
		}
		for _, g := range f.BGP.Groups {
			if g.External {
				fmt.Fprintf(&sb, " peer-group %s external\n", g.Name)
			} else {
				fmt.Fprintf(&sb, " peer-group %s\n", g.Name)
			}
		}
		for _, p := range f.BGP.Peers {
			if p.ASNLine > 0 {
				fmt.Fprintf(&sb, " peer %s as-number %d\n", p.Addr, p.ASN)
			}
			if p.Group != "" {
				fmt.Fprintf(&sb, " peer %s group %s\n", p.Addr, p.Group)
			}
			for _, a := range p.Policies {
				fmt.Fprintf(&sb, " peer %s route-policy %s %s\n", p.Addr, a.Policy, a.Direction)
			}
		}
		for _, g := range f.BGP.Groups {
			for _, a := range g.Policies {
				fmt.Fprintf(&sb, " peer-group %s route-policy %s %s\n", g.Name, a.Policy, a.Direction)
			}
		}
		for _, n := range f.BGP.Networks {
			fmt.Fprintf(&sb, " network %s\n", n.Prefix)
		}
		if f.BGP.Redistribute != nil {
			if f.BGP.Redistribute.Policy != "" {
				fmt.Fprintf(&sb, " redistribute static route-policy %s\n", f.BGP.Redistribute.Policy)
			} else {
				fmt.Fprintf(&sb, " redistribute static\n")
			}
		}
	}
	for _, rp := range f.Policies {
		action := "deny"
		if rp.Permit {
			action = "permit"
		}
		fmt.Fprintf(&sb, "route-policy %s %s node %d\n", rp.Name, action, rp.Node)
		for _, m := range rp.Matches {
			fmt.Fprintf(&sb, " match ip-prefix %s\n", m.PrefixList)
		}
		for _, a := range rp.Applies {
			switch a.Kind {
			case ApplyASPathOverwrite:
				fmt.Fprintf(&sb, " apply as-path overwrite %d\n", a.ASN)
			case ApplyASPathPrepend:
				if a.Count == 1 {
					fmt.Fprintf(&sb, " apply as-path prepend %d\n", a.ASN)
				} else {
					fmt.Fprintf(&sb, " apply as-path prepend %d %d\n", a.ASN, a.Count)
				}
			case ApplyLocalPref:
				fmt.Fprintf(&sb, " apply local-preference %d\n", a.Value)
			case ApplyMED:
				fmt.Fprintf(&sb, " apply med %d\n", a.Value)
			}
		}
	}
	for _, e := range f.PrefixLists {
		sb.WriteString(FormatPrefixListEntry(e.Name, e.Index, e.Permit, e.Prefix, e.GE, e.LE))
		sb.WriteByte('\n')
	}
	for _, s := range f.Statics {
		if s.Null0 {
			fmt.Fprintf(&sb, "ip route static %s null0\n", s.Prefix)
		} else {
			fmt.Fprintf(&sb, "ip route static %s next-hop %s\n", s.Prefix, s.NextHop)
		}
	}
	for _, pol := range f.PBRPolicies {
		fmt.Fprintf(&sb, "pbr policy %s\n", pol.Name)
		for _, r := range pol.Rules {
			action := "deny"
			if r.Permit {
				action = "permit"
			}
			fmt.Fprintf(&sb, " rule %d %s\n", r.Index, action)
			if r.MatchSource != nil {
				fmt.Fprintf(&sb, "  match source %s\n", r.MatchSource.Prefix)
			}
			if r.MatchDest != nil {
				fmt.Fprintf(&sb, "  match destination %s\n", r.MatchDest.Prefix)
			}
			if r.MatchProto != nil {
				fmt.Fprintf(&sb, "  match protocol %s\n", r.MatchProto.Proto)
			}
			if r.MatchDstPort != nil {
				fmt.Fprintf(&sb, "  match dst-port %d\n", r.MatchDstPort.Port)
			}
			if r.ApplyNextHop != nil {
				fmt.Fprintf(&sb, "  apply next-hop %s\n", r.ApplyNextHop.NextHop)
			}
			if r.ApplyDrop != nil {
				fmt.Fprintf(&sb, "  apply drop\n")
			}
		}
	}
	for _, itf := range f.Interfaces {
		fmt.Fprintf(&sb, "interface %s\n", itf.Name)
		if itf.Addr.IsValid() {
			fmt.Fprintf(&sb, " ip address %s\n", itf.Addr)
		}
		if itf.PBRPolicy != "" {
			fmt.Fprintf(&sb, " pbr policy %s\n", itf.PBRPolicy)
		}
		if itf.Shutdown {
			fmt.Fprintf(&sb, " shutdown\n")
		}
	}
	return sb.String()
}
