package netcfg

import (
	"net/netip"
	"sort"
)

// File is the parsed form of one device's configuration. Every node records
// the 1-based line (and for blocks, the end line) it was parsed from, so
// analyses can translate between semantic constructs and LineRefs.
type File struct {
	Device string

	BGP         *BGPBlock
	Policies    []*RoutePolicy // in file order; one entry per "node"
	PrefixLists []*PrefixList  // in file order, grouped by name on demand
	Statics     []*StaticRoute
	PBRPolicies []*PBRPolicy
	Interfaces  []*Interface
}

// BGPBlock is the `bgp <asn>` block.
type BGPBlock struct {
	Line, End    int
	ASN          uint32
	RouterID     netip.Addr
	RouterIDLine int

	Groups       []*PeerGroup
	Peers        []*Peer
	Networks     []*NetworkStmt
	Redistribute *RedistributeStmt // nil when absent
}

// PeerGroup is a named peer group with optional attached policies.
type PeerGroup struct {
	Line     int
	Name     string
	External bool
	Policies []*PolicyAttach
}

// Peer is a single BGP neighbor assembled from its `peer <ip> ...` lines.
type Peer struct {
	Addr      netip.Addr
	ASN       uint32
	ASNLine   int // line of `peer <ip> as-number <asn>`
	Group     string
	GroupLine int // 0 when the peer is not in a group
	Policies  []*PolicyAttach
}

// PolicyAttach records a `... route-policy <name> (import|export)` line.
type PolicyAttach struct {
	Line      int
	Policy    string
	Direction Direction
}

// Direction distinguishes import from export policy application.
type Direction uint8

// Policy application directions.
const (
	Import Direction = iota
	Export
)

// String renders the direction keyword.
func (d Direction) String() string {
	if d == Export {
		return "export"
	}
	return "import"
}

// NetworkStmt is a `network <prefix>` origination line.
type NetworkStmt struct {
	Line   int
	Prefix netip.Prefix
}

// RedistributeStmt is a `redistribute static [route-policy <name>]` line.
type RedistributeStmt struct {
	Line   int
	Policy string // empty when no policy is attached
}

// RoutePolicy is one `route-policy <name> <action> node <n>` block. A policy
// with several nodes parses into several RoutePolicy values sharing a Name;
// nodes evaluate in ascending Node order, first matching node wins.
type RoutePolicy struct {
	Line, End int
	Name      string
	Permit    bool
	Node      int
	Matches   []*MatchClause
	Applies   []*ApplyClause
}

// MatchKind enumerates match clause types.
type MatchKind uint8

// Match clause kinds.
const (
	MatchIPPrefix MatchKind = iota // match ip-prefix <list>
)

// MatchClause is one `match ...` line inside a route-policy node.
type MatchClause struct {
	Line       int
	Kind       MatchKind
	PrefixList string
}

// ApplyKind enumerates apply clause types.
type ApplyKind uint8

// Apply clause kinds.
const (
	ApplyASPathOverwrite ApplyKind = iota // apply as-path overwrite <asn>
	ApplyASPathPrepend                    // apply as-path prepend <asn> [count]
	ApplyLocalPref                        // apply local-preference <n>
	ApplyMED                              // apply med <n>
)

// ApplyClause is one `apply ...` line inside a route-policy node.
type ApplyClause struct {
	Line  int
	Kind  ApplyKind
	ASN   uint32 // for as-path clauses
	Count int    // for prepend
	Value uint32 // for local-preference / med
}

// PrefixList is one `ip prefix-list ...` entry line. Entries with the same
// Name form a list evaluated in ascending Index order, first match wins; a
// list with no matching entry denies.
type PrefixList struct {
	Line   int
	Name   string
	Index  int
	Permit bool
	Prefix netip.Prefix
	GE     int // 0 means unset
	LE     int // 0 means unset
}

// Matches reports whether this single entry matches prefix p, honoring the
// ge/le bounds: with neither, the entry matches only exactly; with bounds,
// p must be contained in Prefix and have length within [ge, le] (a missing
// bound defaults to the entry's own length for ge and to the max for le
// only when ge is present — mirroring common vendor semantics).
func (e *PrefixList) Matches(p netip.Prefix) bool {
	if e.GE == 0 && e.LE == 0 {
		return p == e.Prefix.Masked()
	}
	base := e.Prefix.Masked()
	if !base.Contains(p.Addr()) || p.Bits() < base.Bits() {
		return false
	}
	ge := e.GE
	if ge == 0 {
		ge = base.Bits()
	}
	le := e.LE
	if le == 0 {
		le = p.Addr().BitLen()
	}
	return p.Bits() >= ge && p.Bits() <= le
}

// StaticRoute is an `ip route static ...` line.
type StaticRoute struct {
	Line    int
	Prefix  netip.Prefix
	NextHop netip.Addr // invalid (zero) when Null0
	Null0   bool
}

// PBRPolicy is a `pbr policy <name>` block.
type PBRPolicy struct {
	Line, End int
	Name      string
	Rules     []*PBRRule
}

// PBRRule is a `rule <n> (permit|deny)` block inside a PBR policy. Rules
// evaluate in ascending Index order; the first rule whose matches all hold
// applies. A permit rule applies its action; a deny rule exempts the packet
// from the policy.
type PBRRule struct {
	Line, End int
	Index     int
	Permit    bool

	MatchSource  *PrefixMatch // nil when absent
	MatchDest    *PrefixMatch
	MatchProto   *ProtoMatch
	MatchDstPort *PortMatch

	ApplyNextHop *NextHopApply
	ApplyDrop    *DropApply
}

// PrefixMatch is a `match source|destination <prefix>` line.
type PrefixMatch struct {
	Line   int
	Prefix netip.Prefix
}

// ProtoMatch is a `match protocol <tcp|udp|any>` line.
type ProtoMatch struct {
	Line  int
	Proto string
}

// PortMatch is a `match dst-port <n>` line.
type PortMatch struct {
	Line int
	Port uint16
}

// NextHopApply is an `apply next-hop <ip>` line.
type NextHopApply struct {
	Line    int
	NextHop netip.Addr
}

// DropApply is an `apply drop` line.
type DropApply struct {
	Line int
}

// Interface is an `interface <name>` block.
type Interface struct {
	Line, End int
	Name      string
	Addr      netip.Prefix // invalid when no address configured
	AddrLine  int
	PBRPolicy string // policy applied to traffic entering this interface
	PBRLine   int
	Shutdown  bool
	ShutLine  int
}

// --- lookup helpers -------------------------------------------------------

// PrefixListEntries returns the entries of the named prefix list in
// ascending index order (stable on line number for equal indexes).
func (f *File) PrefixListEntries(name string) []*PrefixList {
	var out []*PrefixList
	for _, e := range f.PrefixLists {
		if e.Name == name {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// PolicyNodes returns the nodes of the named route-policy in ascending node
// order.
func (f *File) PolicyNodes(name string) []*RoutePolicy {
	var out []*RoutePolicy
	for _, p := range f.Policies {
		if p.Name == name {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// PBRPolicy returns the named PBR policy, or nil.
func (f *File) PBRPolicyByName(name string) *PBRPolicy {
	for _, p := range f.PBRPolicies {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// InterfaceByName returns the named interface block, or nil.
func (f *File) InterfaceByName(name string) *Interface {
	for _, i := range f.Interfaces {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// PeerByAddr returns the peer with the given neighbor address, or nil.
func (f *File) PeerByAddr(a netip.Addr) *Peer {
	if f.BGP == nil {
		return nil
	}
	for _, p := range f.BGP.Peers {
		if p.Addr == a {
			return p
		}
	}
	return nil
}

// GroupByName returns the named peer group, or nil.
func (f *File) GroupByName(name string) *PeerGroup {
	if f.BGP == nil {
		return nil
	}
	for _, g := range f.BGP.Groups {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// EffectivePolicies returns the policy attachments that apply to peer p in
// direction d: the peer's own attachments first, then its group's. This is
// the order the simulator evaluates them in (first attachment that changes
// or rejects the route wins per clause semantics; in practice our policies
// are evaluated in sequence).
func (f *File) EffectivePolicies(p *Peer, d Direction) []*PolicyAttach {
	var out []*PolicyAttach
	for _, a := range p.Policies {
		if a.Direction == d {
			out = append(out, a)
		}
	}
	if p.Group != "" {
		if g := f.GroupByName(p.Group); g != nil {
			for _, a := range g.Policies {
				if a.Direction == d {
					out = append(out, a)
				}
			}
		}
	}
	return out
}

// PeerSessionLines returns the LineRefs that establish the session with
// peer p: its as-number line and, when grouped, the group membership line
// and the group declaration line. Provenance tags route imports with these.
func (f *File) PeerSessionLines(p *Peer) []LineRef {
	var out []LineRef
	if p.ASNLine > 0 {
		out = append(out, LineRef{f.Device, p.ASNLine})
	}
	if p.GroupLine > 0 {
		out = append(out, LineRef{f.Device, p.GroupLine})
	}
	if p.Group != "" {
		if g := f.GroupByName(p.Group); g != nil {
			out = append(out, LineRef{f.Device, g.Line})
		}
	}
	return out
}

// --- reference-resolution helpers ------------------------------------------
//
// Static checks (dangling references, shadowing, cross-device consistency)
// live in internal/analysis; the helpers below give analyses a uniform view
// of the file's name spaces and reference sites. The former File.Validate
// is now analysis.Validate, a thin wrapper over the analyzer registry.

// PolicyNames returns the set of route-policy names defined in the file.
func (f *File) PolicyNames() map[string]bool {
	out := map[string]bool{}
	for _, p := range f.Policies {
		out[p.Name] = true
	}
	return out
}

// PrefixListNames returns the set of prefix-list names with at least one
// entry in the file.
func (f *File) PrefixListNames() map[string]bool {
	out := map[string]bool{}
	for _, e := range f.PrefixLists {
		out[e.Name] = true
	}
	return out
}

// AttachSite is one place a route-policy is referenced from: a peer, a
// peer group, or the redistribute statement.
type AttachSite struct {
	// Where describes the attachment point for messages, e.g.
	// `peer 10.0.0.2` or `peer-group PoPFacing`.
	Where string
	// Line is the attachment line; Policy the referenced policy name.
	Line   int
	Policy string
	// Direction is meaningful for peer/group attaches only.
	Direction Direction
}

// PolicyAttachSites enumerates every route-policy reference in the file, in
// declaration order: per-peer attaches, per-group attaches, and the
// redistribute statement's policy (when present).
func (f *File) PolicyAttachSites() []AttachSite {
	var out []AttachSite
	if f.BGP == nil {
		return out
	}
	for _, p := range f.BGP.Peers {
		for _, a := range p.Policies {
			out = append(out, AttachSite{Where: "peer " + p.Addr.String(), Line: a.Line, Policy: a.Policy, Direction: a.Direction})
		}
	}
	for _, g := range f.BGP.Groups {
		for _, a := range g.Policies {
			out = append(out, AttachSite{Where: "peer-group " + g.Name, Line: a.Line, Policy: a.Policy, Direction: a.Direction})
		}
	}
	if r := f.BGP.Redistribute; r != nil && r.Policy != "" {
		out = append(out, AttachSite{Where: "redistribute static", Line: r.Line, Policy: r.Policy, Direction: Export})
	}
	return out
}

// EffectiveRange returns the closed range of prefix lengths this entry can
// match, mirroring Matches: an entry without bounds matches only its own
// exact prefix; with bounds, lengths run from ge (default: the entry's own
// length) to le (default: the address family's bit length).
func (e *PrefixList) EffectiveRange() (ge, le int) {
	if !e.Prefix.IsValid() {
		return 0, -1 // empty range: matches nothing
	}
	bits := e.Prefix.Masked().Bits()
	if e.GE == 0 && e.LE == 0 {
		return bits, bits
	}
	ge, le = e.GE, e.LE
	if ge < bits {
		ge = bits // containment already forces p.Bits() >= base.Bits()
	}
	if le == 0 {
		le = e.Prefix.Addr().BitLen()
	}
	return ge, le
}

// Covers reports whether every prefix matched by entry o is also matched by
// entry e — the shadowing relation: when e precedes o in a first-match-wins
// list and e.Covers(o), entry o is unreachable.
func (e *PrefixList) Covers(o *PrefixList) bool {
	if !e.Prefix.IsValid() || !o.Prefix.IsValid() {
		return false
	}
	eBase, oBase := e.Prefix.Masked(), o.Prefix.Masked()
	if eBase.Addr().Is4() != oBase.Addr().Is4() {
		return false
	}
	if !eBase.Contains(oBase.Addr()) || oBase.Bits() < eBase.Bits() {
		return false
	}
	ege, ele := e.EffectiveRange()
	oge, ole := o.EffectiveRange()
	if ole < oge {
		return false // o matches nothing; nothing to shadow
	}
	return oge >= ege && ole <= ele
}
