package netcfg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomEditSet builds a valid edit set against a document of n lines:
// distinct non-insert anchors, inserts anywhere.
func randomEditSet(rng *rand.Rand, n int) EditSet {
	var edits []Edit
	// An anchor may carry several inserts OR one delete/replace, never a
	// mix (EditSet.validate rejects that), so track both kinds.
	usedAnchor := map[int]string{}
	k := rng.Intn(4) + 1
	for i := 0; i < k; i++ {
		switch rng.Intn(3) {
		case 0:
			at := rng.Intn(n+1) + 1
			if usedAnchor[at] == "mod" {
				continue
			}
			usedAnchor[at] = "ins"
			edits = append(edits, InsertBefore{At: at, Text: fmt.Sprintf("ins%d", i)})
		case 1:
			at := rng.Intn(n) + 1
			if usedAnchor[at] != "" {
				continue
			}
			usedAnchor[at] = "mod"
			edits = append(edits, DeleteLine{At: at})
		default:
			at := rng.Intn(n) + 1
			if usedAnchor[at] != "" {
				continue
			}
			usedAnchor[at] = "mod"
			edits = append(edits, ReplaceLine{At: at, Text: fmt.Sprintf("rep%d", i)})
		}
	}
	return EditSet{Edits: edits}
}

// Property: line-count bookkeeping — after applying a valid edit set, the
// new length equals old + inserts − deletes.
func TestQuickEditSetLineAccounting(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 5
		lines := make([]string, n)
		for i := range lines {
			lines[i] = fmt.Sprintf("orig%d", i)
		}
		c := FromLines("X", lines)
		es := randomEditSet(rng, n)
		ins, del := 0, 0
		for _, e := range es.Edits {
			switch e.(type) {
			case InsertBefore:
				ins++
			case DeleteLine:
				del++
			}
		}
		out, err := es.Apply(c)
		if err != nil {
			return false
		}
		return out.NumLines() == n+ins-del
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: non-insert edits never move untouched original lines relative
// to each other (order preservation).
func TestQuickEditSetPreservesRelativeOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 5
		lines := make([]string, n)
		for i := range lines {
			lines[i] = fmt.Sprintf("orig%d", i)
		}
		c := FromLines("X", lines)
		es := randomEditSet(rng, n)
		out, err := es.Apply(c)
		if err != nil {
			return false
		}
		// Collect surviving originals in output order; their indices must
		// be strictly increasing.
		last := -1
		for _, l := range out.Lines() {
			if !strings.HasPrefix(l, "orig") {
				continue
			}
			var idx int
			fmt.Sscanf(l, "orig%d", &idx)
			if idx <= last {
				return false
			}
			last = idx
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Diff of a config against an edited version mentions every
// replaced line's new text.
func TestQuickDiffMentionsChanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		lines := make([]string, n)
		for i := range lines {
			lines[i] = fmt.Sprintf("line-%d", i)
		}
		c := FromLines("X", lines)
		at := rng.Intn(n) + 1
		text := fmt.Sprintf("CHANGED-%d", rng.Intn(1000))
		out, err := (EditSet{Edits: []Edit{ReplaceLine{At: at, Text: text}}}).Apply(c)
		if err != nil {
			return false
		}
		d := Diff(c, out)
		return strings.Contains(d, text) && strings.Contains(d, fmt.Sprintf("line-%d", at-1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: parsing is total — arbitrary text never panics, always
// returns a usable (possibly empty) File.
func TestQuickParseNeverPanics(t *testing.T) {
	words := []string{"bgp", "peer", "route-policy", "ip", "prefix-list", "match",
		"apply", "65001", "10.0.0.0/16", "1.2.3.4", "permit", "deny", "node",
		"index", "interface", "pbr", "rule", "static", "###", ""}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			indent := strings.Repeat(" ", rng.Intn(3))
			k := rng.Intn(5) + 1
			var parts []string
			for j := 0; j < k; j++ {
				parts = append(parts, words[rng.Intn(len(words))])
			}
			sb.WriteString(indent + strings.Join(parts, " ") + "\n")
		}
		file, _ := Parse(NewConfig("X", sb.String()))
		return file != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
