// Package errclass defines the Table 1 misconfiguration classes as typed
// constants — the single vocabulary shared by the change templates
// (internal/core, internal/tmplreg), the static analyzers
// (internal/analysis), and the incident injectors (internal/incidents).
// The engine prunes template applications by comparing a diagnostic's
// class against a template's declared class, and the conformance harness
// pairs templates with injectors by class, so all three layers must spell
// the classes identically; before this package each spelled them as its
// own free-form string literals.
package errclass

// Class is one misconfiguration class. The canonical values are Table 1's
// "Types" column, verbatim; operator-registered templates may introduce
// new classes (any non-empty string), but only Table 1 classes have
// injectors and therefore conformance coverage.
type Class string

// The nine classes of Table 1.
const (
	MissingRedistribution Class = "Missing redistribution of static route"
	MissingPBRPermit      Class = "Missing permit rules in PBR"
	ExtraPBRRedirect      Class = "Extra redirect rule in PBR"
	MissingPeerGroup      Class = "Missing peer group"
	ExtraPeerGroupItem    Class = "Extra items in peer group"
	MissingRoutingPolicy  Class = "Missing a routing policy"
	LeftoverRouteMap      Class = "Fail to dis-enable route map"
	WrongASNumber         Class = "Override to wrong AS number"
	MissingPrefixListItem Class = "Missing items in ip prefix-list"
)

// Pseudo-classes of the §6 universal-operator ablation. They are not
// Table 1 rows: no analyzer diagnoses them and no injector produces them,
// so templates declaring them are exempt from per-class conformance.
const (
	UniversalSyntactic      Class = "universal (syntactic)"
	UniversalPlasticSurgery Class = "universal (plastic surgery)"
)

// String returns the class spelling.
func (c Class) String() string { return string(c) }

// Table1 reports whether c is one of the nine historical classes — the
// ones with analyzer, injector, and conformance coverage.
func (c Class) Table1() bool {
	for _, k := range All() {
		if c == k {
			return true
		}
	}
	return false
}

// All returns the nine Table 1 classes in the table's row order.
func All() []Class {
	return []Class{
		MissingRedistribution,
		MissingPBRPermit,
		ExtraPBRRedirect,
		MissingPeerGroup,
		ExtraPeerGroupItem,
		MissingRoutingPolicy,
		LeftoverRouteMap,
		WrongASNumber,
		MissingPrefixListItem,
	}
}
