package service_test

import (
	"testing"
	"time"

	"acr/internal/service"
)

// waitTerminal polls one node's local view of a job until it is terminal.
func waitTerminal(t *testing.T, n *fleetNode, id string) service.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if job, ok := n.srv.Job(id); ok && job.State.Terminal() {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	job, _ := n.srv.Job(id)
	t.Fatalf("job %s never reached a terminal state on %s (now %s, error %q)",
		id, n.addr, job.State, job.Error)
	return service.Job{}
}

// TestFleetStoreDedupAcrossPeers is the acceptance e2e for the shared
// persistent evaluation store: a three-peer fleet pointed at one cache
// directory answers a duplicate incident on a *different* peer with zero
// additional prefix simulations — the first peer's run paid for the whole
// fleet. Submit() is used directly (no ring forwarding), so the second peer
// genuinely executes a full engine run of its own; only the store makes it
// free.
func TestFleetStoreDedupAcrossPeers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet; skipped in -short")
	}
	lns, addrs := newFleetListeners(t, 3)
	fleetDir := t.TempDir()
	cacheDir := t.TempDir() // the shared evaluation store, as -fleet-dir wires it
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		peers := []string{}
		for k, a := range addrs {
			if k != i {
				peers = append(peers, a)
			}
		}
		nodes[i] = startFleetNode(t, service.Config{
			StateDir: t.TempDir(),
			CacheDir: cacheDir,
		}, lns[i], addrs[i], peers, fleetDir)
	}

	req := service.JobRequest{Builtin: "figure2", Seed: 11, Strategy: "bruteforce"}

	// Incident lands on peer 0: a cold store, so the run simulates.
	jobA, err := nodes[0].srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, nodes[0], jobA.ID)
	if first.State != service.StateDone || first.Result == nil {
		t.Fatalf("first run: state %s, error %q", first.State, first.Error)
	}
	if first.Result.PrefixSimulations == 0 || first.Result.StoreMisses == 0 {
		t.Fatalf("first run should have simulated into a cold store: %+v", first.Result)
	}

	// The same incident strikes peer 2. Local submission, local run — but
	// the store already holds every evaluation, fleet-wide.
	jobB, err := nodes[2].srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	second := waitTerminal(t, nodes[2], jobB.ID)
	if second.State != service.StateDone || second.Result == nil {
		t.Fatalf("second run: state %s, error %q", second.State, second.Error)
	}
	if second.Result.PrefixSimulations != 0 {
		t.Fatalf("duplicate incident on peer 2 still simulated %d prefixes; store dedup failed (%+v)",
			second.Result.PrefixSimulations, second.Result)
	}
	if second.Result.StoreHits == 0 || second.Result.StoreMisses != 0 {
		t.Fatalf("second run store counters: hits=%d misses=%d, want all hits",
			second.Result.StoreHits, second.Result.StoreMisses)
	}
	if second.Result.CanonicalSHA256 != first.Result.CanonicalSHA256 {
		t.Fatalf("store-answered run diverged: %s vs %s",
			second.Result.CanonicalSHA256, first.Result.CanonicalSHA256)
	}

	// The store gauges surface the dedup on the answering node's /varz.
	var varz map[string]int64
	getFrom(t, addrs[2], "/varz", &varz)
	if varz["store_hits"] == 0 {
		t.Fatalf("varz store_hits = 0 after a fully store-answered run (%v)", varz)
	}
	if _, ok := varz["store_bytes"]; !ok {
		t.Fatalf("varz lacks store_bytes gauge (%v)", varz)
	}
}
