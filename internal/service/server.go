package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/caseio"
	"acr/internal/journal"
	"acr/internal/scenario"
)

// Config sizes and wires a Server.
type Config struct {
	// StateDir is the daemon's persistence root; every job lives in a
	// subdirectory with its journal, so the daemon survives SIGKILL.
	StateDir string
	// Workers is the worker-pool size (<=0 means 1).
	Workers int
	// QueueCap bounds the queued-job count for admission control
	// (<=0 means DefaultQueueCap). A full queue answers 429 + Retry-After.
	QueueCap int
	// JobParallelism is the per-job validation-worker budget: a job's
	// requested parallelism is clamped to it, and a request of 0 takes the
	// whole budget. <=0 means GOMAXPROCS divided across the worker pool
	// (at least 1), so a fully busy daemon does not oversubscribe the host.
	JobParallelism int
	// JournalHook, when non-nil, is installed on every job's journal
	// writer before the event mirror — the seam crash tests use to SIGKILL
	// the daemon after N appends (chaos.KillSwitch) or to block appends.
	JournalHook journal.AppendHook
}

// DefaultQueueCap is the admission-control bound when Config leaves
// QueueCap zero.
const DefaultQueueCap = 64

// Server is the repair daemon: store + queue + worker pool + HTTP API.
type Server struct {
	cfg   Config
	store *store
	queue *queue

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	started  bool
	draining bool

	busyWorkers         atomic.Int64
	candidatesValidated atomic.Int64
	panicsQuarantined   atomic.Int64

	startedAt time.Time
}

// New opens (or initializes) the state directory and reconstructs the job
// index. Jobs the previous process left queued or running are requeued —
// running ones carry a journal and resume from their last checkpoint.
// Call Start to launch the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("service: Config.StateDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = runtime.GOMAXPROCS(0) / cfg.Workers
		if cfg.JobParallelism < 1 {
			cfg.JobParallelism = 1
		}
	}
	st, err := openStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     st,
		queue:     newQueue(cfg.QueueCap),
		baseCtx:   ctx,
		cancelAll: cancel,
		startedAt: time.Now(),
	}
	return s, nil
}

// Start requeues recovered jobs and launches the worker pool.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	// Recovered jobs bypass admission control: they were admitted once.
	for _, j := range s.store.list() {
		if j.state() == StateQueued {
			s.queue.push(j)
		}
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
}

// Shutdown drains the daemon: admission stops, queued jobs stay queued on
// disk for the next boot, and running jobs are interrupted at the next
// engine checkpoint, journaled as resumable, and persisted back to
// "queued". It returns when every worker has exited or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.queue.close()
	for _, j := range s.store.list() {
		j.mu.Lock()
		if j.rec.State == StateRunning && j.cancel != nil {
			j.drained = true
			j.cancel()
		}
		j.mu.Unlock()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll() // hard-cancel stragglers; journals stay resumable
		<-done
		return ctx.Err()
	}
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/repairs", s.handleSubmit)
	mux.HandleFunc("GET /v1/repairs", s.handleList)
	mux.HandleFunc("GET /v1/repairs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/repairs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/repairs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /varz", s.handleVarz)
	return mux
}

// Submit validates, persists, and enqueues one job — the programmatic
// core of POST /v1/repairs, also used by tests.
func (s *Server) Submit(req JobRequest) (Job, error) {
	if (req.Builtin == "") == (req.Case == nil) {
		return Job{}, &apiError{http.StatusBadRequest,
			"exactly one of builtin and case must be set"}
	}
	if _, err := req.Options(); err != nil {
		return Job{}, &apiError{http.StatusBadRequest, err.Error()}
	}
	var sc *scenario.Scenario
	var err error
	if req.Builtin != "" {
		if sc, err = builtinScenario(req.Builtin); err != nil {
			return Job{}, &apiError{http.StatusBadRequest, err.Error()}
		}
	} else {
		if sc, err = caseio.FromUpload(*req.Case); err != nil {
			return Job{}, &apiError{http.StatusBadRequest, fmt.Sprintf("bad case: %v", err)}
		}
	}
	// Reserve the admission slot before the (slow, fallible) persistence
	// work so concurrent submissions cannot overshoot the cap.
	if err := s.queue.reserve(); err != nil {
		if errors.Is(err, ErrQueueFull) {
			return Job{}, &apiError{http.StatusTooManyRequests, err.Error()}
		}
		return Job{}, &apiError{http.StatusServiceUnavailable, err.Error()}
	}
	j, err := s.store.create(req, sc)
	if err != nil {
		s.queue.unreserve()
		return Job{}, &apiError{http.StatusInternalServerError, err.Error()}
	}
	s.queue.pushReserved(j)
	return j.snapshot(), nil
}

// Cancel cancels a job: a queued job terminates immediately; a running
// one is interrupted cooperatively at the engine's next context check and
// terminates with its best-effort result attached.
func (s *Server) Cancel(id string) (Job, error) {
	j := s.store.get(id)
	if j == nil {
		return Job{}, &apiError{http.StatusNotFound, "no such job"}
	}
	j.mu.Lock()
	state := j.rec.State
	switch {
	case state.Terminal():
		rec := j.rec
		j.mu.Unlock()
		return rec, nil // idempotent
	case state == StateQueued && s.queue.remove(id):
		j.rec.State = StateCanceled
		j.rec.Error = "canceled by operator"
		j.mu.Unlock()
		s.persistAndEvent(j, Event{Type: "state", State: StateCanceled, Error: "canceled by operator"})
		j.events.close()
	default:
		// Running, or popped by a worker a moment ago: flag the request
		// and fire the context if the worker already installed one.
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	return j.snapshot(), nil
}

// Job returns one job's current record.
func (s *Server) Job(id string) (Job, bool) {
	j := s.store.get(id)
	if j == nil {
		return Job{}, false
	}
	return j.snapshot(), true
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []Job {
	var out []Job
	for _, j := range s.store.list() {
		out = append(out, j.snapshot())
	}
	return out
}

// --- HTTP handlers ---------------------------------------------------------

// apiError carries an HTTP status through the Submit/Cancel helpers.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, &apiError{http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err)})
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/repairs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := JobState(r.URL.Query().Get("state"))
	if filter != "" && !filter.valid() {
		writeErr(w, &apiError{http.StatusBadRequest, fmt.Sprintf("unknown state %q", filter)})
		return
	}
	jobs := []Job{}
	for _, j := range s.store.list() {
		rec := j.snapshot()
		if filter == "" || rec.State == filter {
			jobs = append(jobs, rec)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, &apiError{http.StatusNotFound, "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleEvents streams a job's event log as server-sent events, replaying
// history (from Last-Event-ID on reconnect) and then following the live
// stream until the job reaches a terminal state or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, &apiError{http.StatusNotFound, "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &apiError{http.StatusNotImplemented, "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			after = n
		}
	}
	wake := j.events.subscribe()
	defer j.events.unsubscribe(wake)
	for {
		evs, closed := j.events.since(after)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
			after = e.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptimeSeconds":  time.Since(s.startedAt).Seconds(),
		"workers":        s.cfg.Workers,
		"jobParallelism": s.cfg.JobParallelism,
		"busyWorkers":    s.busyWorkers.Load(),
		"queueDepth":     s.queue.depth(),
	})
}

// handleVarz serves expvar-style counters. The map is rebuilt per request
// from live state and is deliberately unpublished (no expvar.Publish):
// publishing is process-global and would collide across test servers.
func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	byState := map[JobState]int{}
	for _, j := range s.store.list() {
		byState[j.state()]++
	}
	m := new(expvar.Map).Init()
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		v := new(expvar.Int)
		v.Set(int64(byState[st]))
		m.Set("jobs_"+string(st), v)
	}
	set := func(name string, val int64) {
		v := new(expvar.Int)
		v.Set(val)
		m.Set(name, v)
	}
	set("queue_depth", int64(s.queue.depth()))
	set("workers", int64(s.cfg.Workers))
	set("workers_busy", s.busyWorkers.Load())
	set("candidates_validated", s.candidatesValidated.Load())
	set("panics_quarantined", s.panicsQuarantined.Load())
	w.Header().Set("Content-Type", "application/json")
	// expvar.Map renders itself as a JSON object.
	fmt.Fprintln(w, m.String())
}
