package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/caseio"
	"acr/internal/core"
	"acr/internal/evalstore"
	"acr/internal/journal"
	"acr/internal/scenario"
)

// Config sizes and wires a Server.
type Config struct {
	// StateDir is the daemon's persistence root; every job lives in a
	// subdirectory with its journal, so the daemon survives SIGKILL.
	StateDir string
	// Workers is the worker-pool size (<=0 means 1).
	Workers int
	// QueueCap bounds the queued-job count for admission control
	// (<=0 means DefaultQueueCap). A full queue answers 429 + Retry-After.
	QueueCap int
	// JobParallelism is the per-job validation-worker budget: a job's
	// requested parallelism is clamped to it, and a request of 0 takes the
	// whole budget. <=0 means GOMAXPROCS divided across the worker pool
	// (at least 1), so a fully busy daemon does not oversubscribe the host.
	JobParallelism int
	// JournalHook, when non-nil, is installed on every job's journal
	// writer before the event mirror — the seam crash tests use to SIGKILL
	// the daemon after N appends (chaos.KillSwitch) or to block appends.
	JournalHook journal.AppendHook
	// Fleet, when non-nil, joins this node to a peer fleet: jobs are
	// placed on a consistent-hash ring, leased while running, and adopted
	// from peers that go down (acr serve -peers).
	Fleet *FleetConfig
	// CacheDir, when non-empty, opens a persistent evaluation store there
	// and wires it under every job's in-memory cache, so repeated and
	// duplicate incidents are answered from disk instead of re-simulated.
	// In fleet mode the CLI points every peer at one shared directory. The
	// store is advisory: corrupt or unreadable entries degrade to cache
	// misses, never to failed jobs.
	CacheDir string
	// CacheMaxBytes bounds the store (<=0 means evalstore.DefaultMaxBytes).
	CacheMaxBytes int64
}

// DefaultQueueCap is the admission-control bound when Config leaves
// QueueCap zero.
const DefaultQueueCap = 64

// Server is the repair daemon: store + queue + worker pool + HTTP API.
type Server struct {
	cfg       Config
	store     *store
	queue     *queue
	fleet     *fleet           // nil outside fleet mode
	evalStore *evalstore.Store // nil without Config.CacheDir

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	started  bool
	draining bool

	// ready gates /healthz (readiness): false while the node is still
	// recovering journaled jobs on boot or once it starts draining, so
	// peers and load balancers stop routing to a node that cannot admit.
	ready atomic.Bool

	// creating guards in-flight keyed submissions, closing the window
	// between the dedup lookup and the store insert for duplicate keys.
	subMu    sync.Mutex
	creating map[string]chan struct{}

	busyWorkers         atomic.Int64
	candidatesValidated atomic.Int64
	panicsQuarantined   atomic.Int64
	deltaReused         atomic.Int64
	deltaResimulated    atomic.Int64
	simActivations      atomic.Int64

	startedAt time.Time
}

// New opens (or initializes) the state directory and reconstructs the job
// index. Jobs the previous process left queued or running are requeued —
// running ones carry a journal and resume from their last checkpoint.
// Call Start to launch the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("service: Config.StateDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = runtime.GOMAXPROCS(0) / cfg.Workers
		if cfg.JobParallelism < 1 {
			cfg.JobParallelism = 1
		}
	}
	st, err := openStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     st,
		queue:     newQueue(cfg.QueueCap),
		creating:  map[string]chan struct{}{},
		baseCtx:   ctx,
		cancelAll: cancel,
		startedAt: time.Now(),
	}
	if cfg.Fleet != nil {
		f, err := newFleet(*cfg.Fleet)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("%w: %v", ErrFleetSetup, err)
		}
		if err := f.register(cfg.StateDir); err != nil {
			cancel()
			return nil, fmt.Errorf("%w: registration: %v", ErrFleetSetup, err)
		}
		s.fleet = f
	}
	if cfg.CacheDir != "" {
		es, err := evalstore.Open(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("open evaluation store %s: %w", cfg.CacheDir, err)
		}
		s.evalStore = es
	}
	return s, nil
}

// Start requeues recovered jobs and launches the worker pool.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	// Recovered jobs bypass admission control: they were admitted once.
	for _, j := range s.store.list() {
		if j.state() != StateQueued {
			continue
		}
		if s.fleet != nil {
			// Whatever node owned this job before, it is in our state dir
			// now (our own crash, or a crash mid-adoption after the
			// rename): claim it so peers see a live owner.
			j.mu.Lock()
			j.rec.Owner = s.fleet.cfg.Self
			j.mu.Unlock()
			s.store.persist(j)
		}
		s.queue.push(j)
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	if s.fleet != nil {
		s.fleet.wg.Add(2)
		go s.fleet.healthLoop()
		go s.adoptLoop()
	}
	s.ready.Store(true)
}

// Shutdown drains the daemon: admission stops, queued jobs stay queued on
// disk for the next boot, and running jobs are interrupted at the next
// engine checkpoint, journaled as resumable, and persisted back to
// "queued". It returns when every worker has exited or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.ready.Store(false)

	if s.fleet != nil {
		s.fleet.shutdown()
	}
	s.queue.close()
	for _, j := range s.store.list() {
		j.mu.Lock()
		if j.rec.State == StateRunning && j.cancel != nil {
			j.drained = true
			j.cancel()
		}
		j.mu.Unlock()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.closeEvalStore()
		return nil
	case <-ctx.Done():
		s.cancelAll() // hard-cancel stragglers; journals stay resumable
		<-done
		s.closeEvalStore()
		return ctx.Err()
	}
}

// closeEvalStore marks the persistent evaluation store inert after the
// worker pool has drained; late stragglers see misses, never errors.
func (s *Server) closeEvalStore() {
	if s.evalStore != nil {
		s.evalStore.Close()
	}
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/repairs", s.handleSubmit)
	mux.HandleFunc("GET /v1/repairs", s.handleList)
	mux.HandleFunc("GET /v1/repairs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/repairs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/repairs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/peers", s.handlePeers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /varz", s.handleVarz)
	return mux
}

// submission is a validated, materialized job request: the decoded
// scenario plus (in fleet mode) the placement key and the key-derived ID.
type submission struct {
	req JobRequest
	sc  *scenario.Scenario
	key string
	id  string
}

// prepare validates a request and materializes its scenario. In fleet
// mode it also computes the placement key — the digest of the case and
// the search-steering options, i.e. the same identity the journal header
// carries — and the job ID derived from it.
func (s *Server) prepare(req JobRequest) (*submission, error) {
	if (req.Builtin == "") == (req.Case == nil) {
		return nil, &apiError{http.StatusBadRequest,
			"exactly one of builtin and case must be set"}
	}
	opts, err := req.Options()
	if err != nil {
		return nil, &apiError{http.StatusBadRequest, err.Error()}
	}
	var sc *scenario.Scenario
	if req.Builtin != "" {
		if sc, err = builtinScenario(req.Builtin); err != nil {
			return nil, &apiError{http.StatusBadRequest, err.Error()}
		}
	} else {
		if sc, err = caseio.FromUpload(*req.Case); err != nil {
			return nil, &apiError{http.StatusBadRequest, fmt.Sprintf("bad case: %v", err)}
		}
	}
	sub := &submission{req: req, sc: sc}
	if s.fleet != nil {
		hdr := core.SessionHeader(sc.Name, core.Problem{Topo: sc.Topo, Configs: sc.Configs, Intents: sc.Intents}, opts)
		sum := sha256.Sum256([]byte(hdr.CaseDigest + "|" + hdr.OptionsDigest))
		sub.key = hex.EncodeToString(sum[:])
		sub.id = "f" + sub.key[:16]
	}
	return sub, nil
}

// Submit validates, persists, and enqueues one job — the programmatic
// core of POST /v1/repairs, also used by tests. The bool reports whether
// a job was created: false means an equivalent job already existed (fleet
// dedup) and that one is returned.
func (s *Server) Submit(req JobRequest) (Job, error) {
	sub, err := s.prepare(req)
	if err != nil {
		return Job{}, err
	}
	job, _, err := s.admit(sub)
	return job, err
}

// admit runs keyed dedup and admission control, then persists and
// enqueues. In fleet mode two submissions with the same key are the same
// repair: a live duplicate returns the existing job, and a terminal one
// returns its cached result (duplicate incidents across a fleet cost one
// engine run). created is false for deduplicated returns.
func (s *Server) admit(sub *submission) (job Job, created bool, err error) {
	for {
		if sub.key != "" {
			if existing := s.store.findKey(sub.key, false); existing != nil {
				return existing.snapshot(), false, nil
			}
			// Claim the key against concurrent identical submissions; wait
			// and re-check if someone else holds it.
			s.subMu.Lock()
			if ch := s.creating[sub.key]; ch != nil {
				s.subMu.Unlock()
				<-ch
				continue
			}
			ch := make(chan struct{})
			s.creating[sub.key] = ch
			s.subMu.Unlock()
			defer func() {
				s.subMu.Lock()
				delete(s.creating, sub.key)
				s.subMu.Unlock()
				close(ch)
			}()
		}
		break
	}
	// Reserve the admission slot before the (slow, fallible) persistence
	// work so concurrent submissions cannot overshoot the cap.
	if err := s.queue.reserve(); err != nil {
		if errors.Is(err, ErrQueueFull) {
			return Job{}, false, &apiError{http.StatusTooManyRequests, err.Error()}
		}
		return Job{}, false, &apiError{http.StatusServiceUnavailable, err.Error()}
	}
	owner := ""
	if s.fleet != nil {
		owner = s.fleet.cfg.Self
	}
	j, err := s.store.create(sub.req, sub.sc, sub.id, sub.key, owner)
	if err != nil {
		s.queue.unreserve()
		return Job{}, false, &apiError{http.StatusInternalServerError, err.Error()}
	}
	s.queue.pushReserved(j)
	return j.snapshot(), true, nil
}

// Cancel cancels a job: a queued job terminates immediately; a running
// one is interrupted cooperatively at the engine's next context check and
// terminates with its best-effort result attached.
func (s *Server) Cancel(id string) (Job, error) {
	j := s.store.get(id)
	if j == nil {
		return Job{}, &apiError{http.StatusNotFound, "no such job"}
	}
	j.mu.Lock()
	state := j.rec.State
	switch {
	case state.Terminal():
		rec := j.rec
		j.mu.Unlock()
		return rec, nil // idempotent
	case state == StateQueued && s.queue.remove(id):
		j.rec.State = StateCanceled
		j.rec.Error = "canceled by operator"
		j.mu.Unlock()
		s.persistAndEvent(j, Event{Type: "state", State: StateCanceled, Error: "canceled by operator"})
		j.events.close()
	default:
		// Running, or popped by a worker a moment ago: flag the request
		// and fire the context if the worker already installed one.
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	return j.snapshot(), nil
}

// Job returns one job's current record.
func (s *Server) Job(id string) (Job, bool) {
	j := s.store.get(id)
	if j == nil {
		return Job{}, false
	}
	return j.snapshot(), true
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []Job {
	var out []Job
	for _, j := range s.store.list() {
		out = append(out, j.snapshot())
	}
	return out
}

// --- HTTP handlers ---------------------------------------------------------

// apiError carries an HTTP status through the Submit/Cancel helpers.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, &apiError{http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err)})
		return
	}
	sub, err := s.prepare(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Fleet placement: route the job to its ring owner unless this request
	// was already forwarded once (one hop maximum — a membership
	// disagreement must not bounce a request around the ring) or the owner
	// walk lands back on self. When every preferred peer is unreachable
	// the job is admitted locally: a partitioned fleet degrades to
	// single-node service, never to refusal.
	if s.fleet != nil && r.Header.Get(forwardHeader) == "" {
		if prefs := s.fleet.placement(sub.key); prefs[0] != s.fleet.cfg.Self {
			if s.fleet.forwardSubmit(w, req, prefs) {
				return
			}
		}
	}
	job, created, err := s.admit(sub)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/repairs/"+job.ID)
	status := http.StatusAccepted
	if !created {
		// Keyed duplicate: same repair, same record — report the existing
		// job rather than admitting twice.
		status = http.StatusOK
	}
	writeJSON(w, status, job)
}

// fanOut reports whether a read/cancel should consult peers: fleet mode,
// and neither forwarded nor explicitly scoped to this node.
func (s *Server) fanOut(r *http.Request) bool {
	return s.fleet != nil && r.Header.Get(forwardHeader) == "" &&
		r.URL.Query().Get("scope") != "local"
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := JobState(r.URL.Query().Get("state"))
	if filter != "" && !filter.valid() {
		writeErr(w, &apiError{http.StatusBadRequest, fmt.Sprintf("unknown state %q", filter)})
		return
	}
	jobs := []Job{}
	for _, j := range s.store.list() {
		rec := j.snapshot()
		if filter == "" || rec.State == filter {
			jobs = append(jobs, rec)
		}
	}
	if s.fanOut(r) {
		// Merge every live peer's local view. Down peers are skipped — the
		// jobs they owned surface again once a peer adopts them.
		path := "/v1/repairs?scope=local"
		if filter != "" {
			path += "&state=" + string(filter)
		}
		for _, p := range s.fleet.upPeers() {
			body, status, err := s.fleet.peerGet(p, path)
			if err != nil || status != http.StatusOK {
				continue
			}
			peerJobs, err := decodePeerJobList(body)
			if err != nil {
				s.fleet.health.observe(p, false, fmt.Sprintf("bad list body: %v", err))
				continue
			}
			jobs = append(jobs, peerJobs...)
		}
		sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := s.store.get(id); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	if s.fanOut(r) {
		for _, p := range s.fleet.upPeers() {
			body, status, err := s.fleet.peerGet(p, "/v1/repairs/"+id+"?scope=local")
			if err != nil || status != http.StatusOK {
				continue
			}
			job, err := decodePeerJob(body)
			if err != nil {
				s.fleet.health.observe(p, false, fmt.Sprintf("bad job body: %v", err))
				continue
			}
			writeJSON(w, http.StatusOK, job)
			return
		}
	}
	writeErr(w, &apiError{http.StatusNotFound, "no such job"})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.store.get(id) == nil && s.fanOut(r) {
		// Not ours: relay the cancel to whichever live peer holds it.
		for _, p := range s.fleet.upPeers() {
			hreq, err := http.NewRequest(http.MethodDelete, "http://"+p+"/v1/repairs/"+id+"?scope=local", nil)
			if err != nil {
				break
			}
			hreq.Header.Set(forwardHeader, s.fleet.cfg.Self)
			resp, err := s.fleet.client.Do(hreq)
			if err != nil {
				s.fleet.health.observe(p, false, err.Error())
				continue
			}
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			resp.Body.Close()
			if rerr != nil || resp.StatusCode == http.StatusNotFound {
				continue
			}
			s.fleet.forwarded.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			w.Write(body)
			return
		}
	}
	job, err := s.Cancel(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleEvents streams a job's event log as server-sent events, replaying
// history (from Last-Event-ID on reconnect) and then following the live
// stream until the job reaches a terminal state or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, &apiError{http.StatusNotFound, "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &apiError{http.StatusNotImplemented, "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			after = n
		}
	}
	wake := j.events.subscribe()
	defer j.events.unsubscribe(wake)
	for {
		evs, closed := j.events.since(after)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
			after = e.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz is the *readiness* probe: it answers 503 with a reason
// while the node cannot usefully take traffic — still recovering journaled
// jobs on boot, or draining for shutdown. Peer healthchecks and load
// balancers key off this. Liveness is /livez.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		status, reason := "booting", "recovering journaled jobs"
		if draining {
			status, reason = "draining", "shutting down; queued jobs persist for the next boot"
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": status,
			"reason": reason,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptimeSeconds":  time.Since(s.startedAt).Seconds(),
		"workers":        s.cfg.Workers,
		"jobParallelism": s.cfg.JobParallelism,
		"busyWorkers":    s.busyWorkers.Load(),
		"queueDepth":     s.queue.depth(),
	})
}

// handleLivez is the *liveness* probe: if the process can answer HTTP at
// all it is alive, including while booting or draining. Supervisors
// restart on /livez failure; routers drop on /healthz failure.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// handlePeers reports fleet membership as this node sees it: the static
// member list, each peer's health-probe state, and the fleet counters.
func (s *Server) handlePeers(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"fleet": false,
			"self":  "",
			"peers": []peerStatus{},
		})
		return
	}
	up, down := s.fleet.health.counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"fleet":             true,
		"self":              s.fleet.cfg.Self,
		"members":           s.fleet.members,
		"peers":             s.fleet.health.snapshot(),
		"peersUp":           up,
		"peersDown":         down,
		"requestsForwarded": s.fleet.forwarded.Load(),
		"leasesAdopted":     s.fleet.adopted.Load(),
		"leaseRenewals":     s.fleet.renewals.Load(),
	})
}

// handleVarz serves expvar-style counters. The map is rebuilt per request
// from live state and is deliberately unpublished (no expvar.Publish):
// publishing is process-global and would collide across test servers.
func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	byState := map[JobState]int{}
	for _, j := range s.store.list() {
		byState[j.state()]++
	}
	m := new(expvar.Map).Init()
	for _, st := range allStates {
		v := new(expvar.Int)
		v.Set(int64(byState[st]))
		m.Set("jobs_"+string(st), v)
	}
	set := func(name string, val int64) {
		v := new(expvar.Int)
		v.Set(val)
		m.Set(name, v)
	}
	set("queue_depth", int64(s.queue.depth()))
	set("workers", int64(s.cfg.Workers))
	set("workers_busy", s.busyWorkers.Load())
	set("candidates_validated", s.candidatesValidated.Load())
	set("panics_quarantined", s.panicsQuarantined.Load())
	set("delta_reused", s.deltaReused.Load())
	set("delta_resimulated", s.deltaResimulated.Load())
	set("sim_activations", s.simActivations.Load())
	if s.evalStore != nil {
		st := s.evalStore.Stats()
		set("store_hits", st.Hits)
		set("store_misses", st.Misses)
		set("store_corrupt", st.Corrupt)
		set("store_evicted", st.Evicted)
		set("store_bytes", st.Bytes)
	}
	if s.fleet != nil {
		up, down := s.fleet.health.counts()
		set("peers_up", int64(up))
		set("peers_down", int64(down))
		set("requests_forwarded", s.fleet.forwarded.Load())
		set("leases_adopted", s.fleet.adopted.Load())
		set("lease_renewals", s.fleet.renewals.Load())
	}
	w.Header().Set("Content-Type", "application/json")
	// expvar.Map renders itself as a JSON object.
	fmt.Fprintln(w, m.String())
}
