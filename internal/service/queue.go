package service

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is the admission-control refusal: the queue is at capacity
// and the client should retry later (the HTTP layer maps it to 429 +
// Retry-After).
var ErrQueueFull = errors.New("service: job queue full")

// queue is a bounded priority FIFO: higher Priority pops first, ties pop
// in submission (seq) order. pop blocks until an item arrives or the queue
// closes; close lets drained workers exit.
type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	cap      int
	items    jobHeap
	reserved int // admission slots claimed by in-flight submissions
	closed   bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues without admission control — the boot path, requeueing
// jobs recovered from the state directory (they were admitted once; a
// restart must never drop them because the cap shrank).
func (q *queue) push(j *job) {
	q.mu.Lock()
	heap.Push(&q.items, j)
	q.cond.Signal()
	q.mu.Unlock()
}

// reserve claims one admission slot ahead of the (fallible, slow) work of
// persisting a new job, so concurrent submissions can never overshoot the
// cap. Pair with pushReserved or unreserve.
func (q *queue) reserve() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("service: shutting down")
	}
	if q.cap > 0 && q.items.Len()+q.reserved >= q.cap {
		return ErrQueueFull
	}
	q.reserved++
	return nil
}

// pushReserved converts a reservation into a queued job.
func (q *queue) pushReserved(j *job) {
	q.mu.Lock()
	q.reserved--
	heap.Push(&q.items, j)
	q.cond.Signal()
	q.mu.Unlock()
}

// unreserve releases a reservation whose job creation failed.
func (q *queue) unreserve() {
	q.mu.Lock()
	q.reserved--
	q.mu.Unlock()
}

// pop blocks for the next job; ok is false once the queue closes. A
// closed queue stops dispatching even with items still queued: shutdown
// leaves them persisted as "queued" for the next boot to pick up.
func (q *queue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed || q.items.Len() == 0 {
		return nil, false
	}
	return heap.Pop(&q.items).(*job), true
}

// remove pulls a queued job out (cancellation before a worker claims it).
func (q *queue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.id == id {
			heap.Remove(&q.items, i)
			return true
		}
	}
	return false
}

// depth reports the queued-job count (admission headroom, /varz).
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// close stops admission and wakes every blocked pop.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// jobHeap orders by (priority desc, seq asc). Only the queue touches it,
// under the queue's lock.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
