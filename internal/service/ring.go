package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is the fleet's consistent-hash placement policy: each node owns a
// set of virtual points on a 64-bit circle, and a job key is placed on the
// first point at or clockwise past its own hash. Virtual nodes smooth the
// load split; consistency means a node joining or leaving moves only the
// keys adjacent to its points, so a static fleet that loses one node
// redistributes only that node's jobs (exactly the adoption path).
//
// The ring is immutable after construction — membership is static
// (-peers), and liveness is layered on top by walking the preference order
// and skipping nodes the health view says are down.
type ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// ringVnodes is the virtual-node count per member. 64 points per node
// keeps the expected load imbalance of a small fleet under ~15% while the
// whole ring for a dozen nodes still fits in one cache page.
const ringVnodes = 64

// newRing builds the ring over the deduplicated member list. Order of the
// input does not matter: points are positioned by hash, so every node
// computes the identical ring from the same membership, however its
// -peers flag happened to be ordered.
func newRing(members []string) *ring {
	seen := map[string]bool{}
	r := &ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.nodes = append(r.nodes, m)
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, i)), node: m})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Hash ties (astronomically rare) break by name so every node
		// still sorts the identical ring.
		return r.points[i].node < r.points[k].node
	})
	return r
}

// order returns the key's full preference walk: every member exactly once,
// in the order their points are met clockwise from the key's hash. The
// first entry is the key's owner; the rest are the failover sequence the
// adoption scanner consults when owners are down.
func (r *ring) order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// ringHash positions a label on the circle: the first 8 bytes of its
// SHA-256. A cryptographic hash is overkill for balance but keeps
// placement independent of Go's per-process string hashing, so every node
// (and every test) computes identical positions.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
