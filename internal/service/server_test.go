package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acr/internal/caseio"
	"acr/internal/journal"
	"acr/internal/scenario"
	"acr/internal/service"
)

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, req service.JobRequest) (service.Job, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/repairs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var job service.Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatalf("decode job: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return job, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) service.Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/repairs/" + id)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var job service.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return job
}

func waitState(t *testing.T, ts *httptest.Server, id string, pred func(service.Job) bool) service.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job := getJob(t, ts, id)
		if pred(job) {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached wanted state (last: %+v)", id, getJob(t, ts, id))
	return service.Job{}
}

// unsatisfiableUpload is a case no repair can fix: it demands reachability
// to a prefix nothing originates, so the engine grinds until canceled or
// capped — the controllable long-running job the cancel and backpressure
// tests need.
func unsatisfiableUpload(t *testing.T) *caseio.Upload {
	t.Helper()
	u := caseio.ToUpload(scenario.Figure2())
	u.Name = "unsat"
	u.Intents = "reach impossible 10.0.1.0/24 203.0.113.0/24\n"
	return &u
}

func TestSubmitRunsToDone(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	job, resp := submit(t, ts, service.JobRequest{Builtin: "figure2", Seed: 7})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/repairs/"+job.ID {
		t.Fatalf("Location = %q", loc)
	}
	done := waitState(t, ts, job.ID, func(j service.Job) bool { return j.State.Terminal() })
	if done.State != service.StateDone {
		t.Fatalf("state = %s (error %q), want done", done.State, done.Error)
	}
	if done.Result == nil {
		t.Fatal("terminal job has no result")
	}
	if !done.Result.Feasible || done.Result.Outcome != "feasible" || done.Result.ExitCode != 0 {
		t.Fatalf("result = %+v, want feasible/0", done.Result)
	}
	if done.Result.CanonicalSHA256 == "" || len(done.Result.Configs) == 0 {
		t.Fatalf("result missing canonical digest or configs: %+v", done.Result)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	for _, req := range []service.JobRequest{
		{},                                  // neither builtin nor case
		{Builtin: "nope"},                   // unknown builtin
		{Builtin: "figure2", Strategy: "x"}, // unknown strategy
	} {
		if _, resp := submit(t, ts, req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%+v) = %d, want 400", req, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/repairs/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET nosuch = %d, want 404", resp.StatusCode)
	}
}

func TestBackpressure429(t *testing.T) {
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	hook := func(int, *journal.Record) error { <-release; return nil }
	_, ts := newTestServer(t, service.Config{Workers: 1, QueueCap: 1, JournalHook: hook})

	unsat := unsatisfiableUpload(t)
	// Job A occupies the lone worker (blocked on its first journal append).
	a, _ := submit(t, ts, service.JobRequest{Case: unsat, Seed: 1})
	waitState(t, ts, a.ID, func(j service.Job) bool { return j.State == service.StateRunning })
	// Job B fills the queue (cap 1).
	b, respB := submit(t, ts, service.JobRequest{Case: unsat, Seed: 2})
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", respB.StatusCode)
	}
	// Job C must be refused with 429 + Retry-After.
	_, respC := submit(t, ts, service.JobRequest{Case: unsat, Seed: 3})
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", respC.StatusCode)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Canceling queued job B frees its slot immediately.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/repairs/"+b.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getJob(t, ts, b.ID); got.State != service.StateCanceled {
		t.Fatalf("canceled queued job state = %s", got.State)
	}
	if _, respD := submit(t, ts, service.JobRequest{Case: unsat, Seed: 4}); respD.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after cancel = %d, want 202", respD.StatusCode)
	}

	// Unblock the worker and cancel the rest so Shutdown drains fast.
	close(release)
	for _, id := range []string{a.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/repairs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestCancelMidRun(t *testing.T) {
	release := make(chan struct{})
	hook := func(int, *journal.Record) error { <-release; return nil }
	_, ts := newTestServer(t, service.Config{Workers: 1, JournalHook: hook})

	job, _ := submit(t, ts, service.JobRequest{Case: unsatisfiableUpload(t), Seed: 1, MaxIterations: 100000})
	waitState(t, ts, job.ID, func(j service.Job) bool { return j.State == service.StateRunning })

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/repairs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	close(release) // let the engine reach its next context check

	got := waitState(t, ts, job.ID, func(j service.Job) bool { return j.State.Terminal() })
	if got.State != service.StateCanceled {
		t.Fatalf("state = %s, want canceled", got.State)
	}
	if got.Result == nil || got.Result.Termination != "canceled" || got.Result.ExitCode != service.ExitDeadline {
		t.Fatalf("canceled result = %+v", got.Result)
	}
	// DELETE is idempotent on terminal jobs.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/repairs/"+job.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second DELETE = %d", resp2.StatusCode)
	}
}

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	id    int
	event string
	data  service.Event
}

func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	raw, err := io.ReadAll(body)
	if err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	var out []sseEvent
	for _, frame := range strings.Split(string(raw), "\n\n") {
		if strings.TrimSpace(frame) == "" {
			continue
		}
		var e sseEvent
		for _, line := range strings.Split(frame, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				fmt.Sscanf(line, "id: %d", &e.id)
			case strings.HasPrefix(line, "event: "):
				e.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e.data); err != nil {
					t.Fatalf("bad SSE data %q: %v", line, err)
				}
			}
		}
		out = append(out, e)
	}
	return out
}

func TestEventsSSEOrdering(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	job, _ := submit(t, ts, service.JobRequest{Builtin: "figure2", Seed: 7})
	waitState(t, ts, job.ID, func(j service.Job) bool { return j.State.Terminal() })

	resp, err := http.Get(ts.URL + "/v1/repairs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) < 3 {
		t.Fatalf("got %d events, want at least queued/running/done", len(events))
	}
	// Seqs strictly increase and match the data payload.
	for i, e := range events {
		if e.id != e.data.Seq {
			t.Fatalf("event %d: id %d != data.seq %d", i, e.id, e.data.Seq)
		}
		if i > 0 && e.id <= events[i-1].id {
			t.Fatalf("event %d: seq %d not increasing after %d", i, e.id, events[i-1].id)
		}
		if e.event != e.data.Type {
			t.Fatalf("event %d: event name %q != data.type %q", i, e.event, e.data.Type)
		}
	}
	// Lifecycle bracketing: queued first, then running, done last, with
	// engine progress strictly between running and done.
	if events[0].data.Type != "state" || events[0].data.State != service.StateQueued {
		t.Fatalf("first event = %+v, want queued", events[0].data)
	}
	if events[1].data.Type != "state" || events[1].data.State != service.StateRunning {
		t.Fatalf("second event = %+v, want running", events[1].data)
	}
	last := events[len(events)-1].data
	if last.Type != "state" || last.State != service.StateDone {
		t.Fatalf("last event = %+v, want done", last)
	}
	engine := 0
	for _, e := range events[2 : len(events)-1] {
		switch e.data.Type {
		case "candidate", "iteration", "checkpoint":
			engine++
		default:
			t.Fatalf("unexpected mid-stream event %+v", e.data)
		}
	}
	if engine == 0 {
		t.Fatal("no engine progress events between running and done")
	}

	// Last-Event-ID resumes mid-stream.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/repairs/"+job.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(events[1].id))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest := readSSE(t, resp2.Body)
	if len(rest) != len(events)-2 {
		t.Fatalf("Last-Event-ID replay = %d events, want %d", len(rest), len(events)-2)
	}
	if rest[0].id != events[2].id {
		t.Fatalf("replay starts at %d, want %d", rest[0].id, events[2].id)
	}
}

func TestHealthzAndVarz(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 3})
	job, _ := submit(t, ts, service.JobRequest{Builtin: "figure2", Seed: 7})
	waitState(t, ts, job.ID, func(j service.Job) bool { return j.State.Terminal() })

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["workers"] != float64(3) {
		t.Fatalf("healthz = %v", health)
	}

	resp2, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var varz map[string]int64
	if err := json.NewDecoder(resp2.Body).Decode(&varz); err != nil {
		t.Fatal(err)
	}
	if varz["jobs_done"] != 1 || varz["workers"] != 3 {
		t.Fatalf("varz = %v", varz)
	}
	if varz["candidates_validated"] == 0 {
		t.Fatalf("varz candidates_validated = 0: %v", varz)
	}
}

func TestListFiltering(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	job, _ := submit(t, ts, service.JobRequest{Builtin: "figure2", Seed: 7})
	waitState(t, ts, job.ID, func(j service.Job) bool { return j.State.Terminal() })

	var list struct {
		Jobs []service.Job `json:"jobs"`
	}
	resp, err := http.Get(ts.URL + "/v1/repairs?state=done")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("list done = %+v", list.Jobs)
	}
	resp2, err := http.Get(ts.URL + "/v1/repairs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus filter = %d, want 400", resp2.StatusCode)
	}
}

// TestShutdownDrainRequeuesAndResumes exercises the graceful path the
// SIGKILL e2e exercises violently: a drain interrupts a running job at a
// checkpoint, persists it back to "queued", and the next boot on the same
// state directory resumes and finishes it.
func TestShutdownDrainRequeuesAndResumes(t *testing.T) {
	stateDir := t.TempDir()
	release := make(chan struct{})
	hook := func(int, *journal.Record) error { <-release; return nil }
	srv1, err := service.New(service.Config{StateDir: stateDir, Workers: 1, JournalHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	ts1 := httptest.NewServer(srv1.Handler())
	job, _ := submit(t, ts1, service.JobRequest{Case: unsatisfiableUpload(t), Seed: 1, MaxIterations: 5})
	waitState(t, ts1, job.ID, func(j service.Job) bool { return j.State == service.StateRunning })
	ts1.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- srv1.Shutdown(ctx)
	}()
	// Let the drain reach its job-cancel step before unparking the engine;
	// released too early, the tiny unsatisfiable search can finish before
	// the cancel lands and the job goes terminal instead of requeueing.
	time.Sleep(250 * time.Millisecond)
	close(release) // the blocked engine wakes, sees the drain, checkpoints
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	srv2, err := service.New(service.Config{StateDir: stateDir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	}()
	got := waitState(t, ts2, job.ID, func(j service.Job) bool { return j.State.Terminal() })
	if got.State != service.StateDone {
		t.Fatalf("state after reboot = %s (error %q), want done", got.State, got.Error)
	}
	if got.Attempts != 2 {
		t.Fatalf("attempts = %d, want the drained attempt plus the resumed one", got.Attempts)
	}
	if got.Result == nil || got.Result.Feasible {
		t.Fatalf("unsatisfiable case produced %+v", got.Result)
	}
}
