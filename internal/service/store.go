package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"acr/internal/caseio"
	"acr/internal/journal"
	"acr/internal/scenario"
)

// Store layout, one directory per job under the daemon's -state-dir:
//
//	statedir/jobs/<id>/
//	  job.json   # the wire Job record, written atomically on every transition
//	  case/      # caseio.Save of an uploaded case (absent for builtins)
//	  journal/   # the crash-safe session journal of the job's engine run
//
// job.json is the recovery index: a rebooted daemon scans these, keeps
// terminal jobs for listing, and requeues every job found queued or
// running (running means the previous process died mid-run; the journal
// directory lets the next attempt resume from the last checkpoint instead
// of restarting the search).

// job is one repair job: the persisted wire record plus runtime-only
// state (cancellation, event stream). rec is guarded by mu; id, seq,
// priority, and events are immutable after construction.
type job struct {
	id       string
	seq      int
	priority int
	events   *eventLog

	mu     sync.Mutex
	rec    Job
	cancel context.CancelFunc
	// cancelRequested marks an operator DELETE that raced the worker
	// picking the job up; runJob honors it as soon as it has a context.
	cancelRequested bool
	drained         bool // shutdown drain, not operator cancel
}

// snapshot returns a copy of the wire record.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// state returns the current lifecycle state.
func (j *job) state() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.State
}

// store owns the state directory and the in-memory job index.
type store struct {
	root string

	mu      sync.Mutex
	jobs    map[string]*job
	byKey   map[string]*job // newest job per placement key (fleet dedup)
	order   []*job          // submission order (seq asc)
	nextSeq int
}

// openStore loads (or initializes) a state directory. Jobs found queued or
// running are normalized to queued; the caller enqueues them.
func openStore(root string) (*store, error) {
	s := &store{root: root, jobs: map[string]*job{}, byKey: map[string]*job{}, nextSeq: 1}
	jobsDir := filepath.Join(root, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(jobsDir, e.Name(), "job.json"))
		if err != nil {
			// A job dir without a readable record (crash between MkdirAll
			// and the first atomic job.json write) holds nothing worth
			// recovering: skip it rather than refuse to boot.
			continue
		}
		var rec Job
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != e.Name() || !rec.State.valid() {
			continue
		}
		if !rec.State.Terminal() && rec.State != StateQueued {
			// The previous process died (or was mid-claim/mid-adoption) —
			// running, leased, orphaned, and adopted all mean the same
			// thing on boot: the journal under the job dir carries the
			// checkpointed search. Requeue for resume.
			rec.State = StateQueued
		}
		j := &job{id: rec.ID, seq: rec.Seq, priority: rec.Priority, events: newEventLog(), rec: rec}
		j.events.append(Event{Type: "state", State: rec.State, Error: rec.Error})
		if rec.State.Terminal() {
			j.events.close()
		}
		s.jobs[j.id] = j
		s.indexKeyLocked(j)
		s.order = append(s.order, j)
		if rec.Seq >= s.nextSeq {
			s.nextSeq = rec.Seq + 1
		}
	}
	sort.Slice(s.order, func(i, k int) bool { return s.order[i].seq < s.order[k].seq })
	return s, nil
}

// indexKeyLocked records j as the newest job for its placement key.
// Caller holds s.mu (or has exclusive access during openStore).
func (s *store) indexKeyLocked(j *job) {
	key := j.rec.Key
	if key == "" {
		return
	}
	if prev := s.byKey[key]; prev == nil || j.seq >= prev.seq {
		s.byKey[key] = j
	}
}

// findKey returns the newest job for a placement key. With liveOnly set,
// terminal jobs don't count (the single-node dedup semantic: resubmitting
// a finished repair reruns it); otherwise a terminal job is returned too
// (the fleet semantic: same key = same repair = same cached result).
func (s *store) findKey(key string, liveOnly bool) *job {
	if key == "" {
		return nil
	}
	s.mu.Lock()
	j := s.byKey[key]
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	if liveOnly && j.state().Terminal() {
		return nil
	}
	return j
}

// create allocates, persists, and indexes a new queued job. For uploaded
// cases the decoded scenario is saved under the job's case/ dir so a
// rebooted daemon can re-materialize it. In fleet mode id is the
// key-derived job ID and key/owner carry placement identity; single-node
// callers pass "" for all three and get a sequential ID.
func (s *store) create(req JobRequest, sc *scenario.Scenario, id, key, owner string) (*job, error) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	if id == "" {
		id = fmt.Sprintf("j%06d", seq)
	}
	rec := Job{
		ID:             id,
		Seq:            seq,
		State:          StateQueued,
		Priority:       req.Priority,
		Case:           sc.Name,
		Builtin:        req.Builtin,
		Seed:           req.Seed,
		Strategy:       req.Strategy,
		MaxIterations:  req.MaxIterations,
		TimeoutSeconds: req.TimeoutSeconds,
		Parallelism:    req.Parallelism,
		Key:            key,
		Owner:          owner,
	}
	j := &job{id: rec.ID, seq: seq, priority: req.Priority, events: newEventLog(), rec: rec}
	if err := os.MkdirAll(s.jobDir(j.id), 0o755); err != nil {
		return nil, err
	}
	if req.Builtin == "" {
		// Uploaded case: persist it so restart-resume can reload it.
		if err := caseio.Save(s.caseDir(j.id), sc); err != nil {
			return nil, err
		}
	}
	if err := s.persist(j); err != nil {
		return nil, err
	}
	j.events.append(Event{Type: "state", State: StateQueued})

	s.mu.Lock()
	s.jobs[j.id] = j
	s.indexKeyLocked(j)
	s.order = append(s.order, j)
	s.mu.Unlock()
	return j, nil
}

// adoptIndex registers a job directory just renamed into this store (the
// fleet adoption path): the record is reloaded from disk post-rename and
// indexed under a fresh local seq so list order stays coherent.
func (s *store) adoptIndex(id string) (*job, error) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "job.json"))
	if err != nil {
		return nil, err
	}
	var rec Job
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	if rec.ID != id || !rec.State.valid() {
		return nil, fmt.Errorf("service: adopted job %s has a malformed record", id)
	}
	s.mu.Lock()
	if existing := s.jobs[id]; existing != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: job %s already indexed", id)
	}
	seq := s.nextSeq
	s.nextSeq++
	rec.Seq = seq
	j := &job{id: id, seq: seq, priority: rec.Priority, events: newEventLog(), rec: rec}
	s.jobs[id] = j
	s.indexKeyLocked(j)
	s.order = append(s.order, j)
	s.mu.Unlock()
	return j, nil
}

// persist writes the job's current record atomically (temp file + rename
// + parent-dir fsync), so a crash at any point leaves the previous record
// or the new one, never a torn mix.
func (s *store) persist(j *job) error {
	data, err := json.MarshalIndent(j.snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return journal.WriteFileAtomic(filepath.Join(s.jobDir(j.id), "job.json"), data, 0o644)
}

func (s *store) jobDir(id string) string     { return filepath.Join(s.root, "jobs", id) }
func (s *store) caseDir(id string) string    { return filepath.Join(s.jobDir(id), "case") }
func (s *store) journalDir(id string) string { return filepath.Join(s.jobDir(id), "journal") }

// get looks a job up by id.
func (s *store) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// list returns every job in submission order.
func (s *store) list() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, len(s.order))
	copy(out, s.order)
	return out
}

// loadCase re-materializes the job's repair case: builtins are rebuilt
// (generation is deterministic), uploads reload from the job's case dir.
func (s *store) loadCase(j *job) (*scenario.Scenario, error) {
	rec := j.snapshot()
	if rec.Builtin != "" {
		return builtinScenario(rec.Builtin)
	}
	sc, err := caseio.Load(s.caseDir(j.id))
	if err != nil {
		return nil, err
	}
	// Directory loads name the case (and its topology) after the directory
	// ("case"); restore the submitted name so the journal's case digest
	// matches the original upload across a daemon reboot.
	sc.Name = rec.Case
	sc.Topo.Name = rec.Case
	return sc, nil
}

// builtinScenario maps the builtin names the CLI accepts to generated
// cases. Generation is deterministic, so a job rerun after a reboot
// rebuilds the byte-identical problem (the journal's case digest checks
// this).
func builtinScenario(name string) (*scenario.Scenario, error) {
	switch name {
	case "figure2":
		return scenario.Figure2(), nil
	case "figure2-repaired":
		return scenario.Figure2Correct(), nil
	case "dcn4":
		return scenario.DCN(4, scenario.GenOptions{WithScrubber: true, StaticOriginEvery: 2}), nil
	case "wan":
		return scenario.WAN(6, 4, 3, scenario.GenOptions{StaticOriginEvery: 2}), nil
	}
	return nil, fmt.Errorf("unknown builtin case %q", name)
}
