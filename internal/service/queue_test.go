package service

import (
	"errors"
	"testing"
)

func TestQueueOrderingAndAdmission(t *testing.T) {
	q := newQueue(3)
	mk := func(id string, seq, prio int) *job {
		return &job{id: id, seq: seq, priority: prio}
	}
	for _, j := range []*job{mk("a", 1, 0), mk("b", 2, 5), mk("c", 3, 0)} {
		if err := q.reserve(); err != nil {
			t.Fatalf("reserve: %v", err)
		}
		q.pushReserved(j)
	}
	if err := q.reserve(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("reserve over cap = %v, want ErrQueueFull", err)
	}
	// Priority first, then FIFO among equals.
	want := []string{"b", "a", "c"}
	for _, id := range want {
		j, ok := q.pop()
		if !ok || j.id != id {
			t.Fatalf("pop = %v,%v want %s", j, ok, id)
		}
	}
	// Reservations release admission slots on failure.
	if err := q.reserve(); err != nil {
		t.Fatalf("reserve after drain: %v", err)
	}
	q.unreserve()
	if d := q.depth(); d != 0 {
		t.Fatalf("depth = %d, want 0", d)
	}
}

func TestQueueCloseStopsDispatch(t *testing.T) {
	q := newQueue(2)
	q.push(&job{id: "a", seq: 1})
	q.close()
	// A closed queue never dispatches, even with items left: shutdown
	// leaves them persisted for the next boot.
	if j, ok := q.pop(); ok {
		t.Fatalf("pop after close returned %s", j.id)
	}
	if err := q.reserve(); err == nil {
		t.Fatal("reserve after close succeeded")
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(0)
	q.push(&job{id: "a", seq: 1})
	q.push(&job{id: "b", seq: 2})
	if !q.remove("a") {
		t.Fatal("remove a failed")
	}
	if q.remove("a") {
		t.Fatal("second remove a succeeded")
	}
	j, ok := q.pop()
	if !ok || j.id != "b" {
		t.Fatalf("pop = %v, want b", j)
	}
}
