package service_test

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"acr/internal/service"
)

// TestFleetSIGKILLAdoption is the fleet acceptance-criteria end-to-end:
// three real daemon processes share a fleet directory; the one holding
// in-flight jobs is SIGKILLed mid-repair, and the surviving peers must
// detect the death, adopt the orphaned jobs, and finish each with a
// canonical result byte-identical to an uninterrupted run.
func TestFleetSIGKILLAdoption(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	const nodes = 3

	// Reserve three ports so every daemon can be told the full membership
	// up front (static peer lists; see DESIGN.md §12).
	addrs := make([]string, nodes)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	fleetDir := t.TempDir()
	stateDirs := make([]string, nodes)
	for i := range stateDirs {
		stateDirs[i] = t.TempDir()
	}
	peersOf := func(i int) string {
		var ps []string
		for j, a := range addrs {
			if j != i {
				ps = append(ps, a)
			}
		}
		return strings.Join(ps, ",")
	}
	fleetEnv := func(i int) []string {
		return []string{
			"ACR_SERVICE_ADDR=" + addrs[i],
			"ACR_SERVICE_FLEET_DIR=" + fleetDir,
			"ACR_SERVICE_PEERS=" + peersOf(i),
			"ACR_SERVICE_LEASE_MS=500",
			"ACR_SERVICE_HEALTH_MS=100",
		}
	}

	// Node 0 is the designated victim: its journal appends are held until
	// submissions finish, then a kill switch SIGKILLs it 3 appends in.
	// 3 is deliberate: with two workers, neither job can reach a terminal
	// append that fast, so both victims are guaranteed non-terminal at the
	// kill — a job that finishes before dying would be stranded (terminal
	// jobs are never adopted), not orphaned.
	holdFile := filepath.Join(t.TempDir(), "go")
	cmd0, _ := startDaemon(t, stateDirs[0], 3, holdFile, fleetEnv(0)...)
	cmd1, _ := startDaemon(t, stateDirs[1], 0, "", fleetEnv(1)...)
	defer cmd1.Process.Kill()
	cmd2, _ := startDaemon(t, stateDirs[2], 0, "", fleetEnv(2)...)
	defer cmd2.Process.Kill()

	// Submit through the victim until the ring has placed at least two jobs
	// on it (those park on the held journal hook; jobs forwarded to the
	// survivors just run to completion and are ignored here).
	victims := map[int64]service.Job{}
	for seed := int64(1); seed <= 64 && len(victims) < 2; seed++ {
		job := postJob(t, addrs[0], service.JobRequest{Builtin: "figure2", Seed: seed})
		if job.Owner == addrs[0] {
			victims[seed] = job
		}
	}
	if len(victims) < 2 {
		t.Fatalf("ring placed only %d jobs on the victim node in 64 seeds", len(victims))
	}

	// Ground truth: uninterrupted in-process runs of the victim seeds.
	expected := map[int64]string{}
	for seed := range victims {
		expected[seed] = referenceSHA(t, service.JobRequest{Builtin: "figure2", Seed: seed})
	}

	// Release the hold; the kill switch fires mid-repair.
	if err := os.WriteFile(holdFile, []byte("go"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmd0.Wait(); err == nil {
		t.Fatal("victim daemon exited cleanly; expected SIGKILL")
	}
	if ws, ok := cmd0.ProcessState.Sys().(syscall.WaitStatus); ok {
		if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("victim died with %v, want SIGKILL", ws)
		}
	}

	// Survivors: mark the victim down, adopt its jobs, resume, finish.
	// Fan-out reads mean either survivor can answer for any job.
	deadline := time.Now().Add(120 * time.Second)
	final := map[int64]service.Job{}
	for len(final) < len(victims) && time.Now().Before(deadline) {
		for seed, v := range victims {
			if _, ok := final[seed]; ok {
				continue
			}
			resp, err := http.Get("http://" + addrs[1] + "/v1/repairs/" + v.ID)
			if err != nil {
				break
			}
			var job service.Job
			err = json.NewDecoder(resp.Body).Decode(&job)
			resp.Body.Close()
			if err == nil && job.State.Terminal() {
				final[seed] = job
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(final) < len(victims) {
		t.Fatalf("only %d/%d victim jobs terminal after the kill", len(final), len(victims))
	}

	for seed, job := range final {
		if job.State != service.StateDone {
			t.Errorf("seed %d: state = %s (error %q), want done", seed, job.State, job.Error)
			continue
		}
		if job.Owner == addrs[0] || (job.Owner != addrs[1] && job.Owner != addrs[2]) {
			t.Errorf("seed %d: owner = %q, want a survivor", seed, job.Owner)
		}
		if job.AdoptedFrom != addrs[0] || job.Adoptions < 1 {
			t.Errorf("seed %d: adoptedFrom=%q adoptions=%d, want custody from the victim",
				seed, job.AdoptedFrom, job.Adoptions)
		}
		if job.Result == nil || job.Result.CanonicalSHA256 != expected[seed] {
			t.Errorf("seed %d: result %+v, want canonical sha %s (byte-identical adoption)",
				seed, job.Result, expected[seed])
		}
	}

	// Fleet counters: adoptions across the survivors account for every
	// victim job exactly once (the rename arbiter forbids double adoption),
	// and both survivors agree the victim is down.
	var totalAdopted int64
	for _, a := range addrs[1:] {
		var varz map[string]int64
		getFrom(t, a, "/varz", &varz)
		totalAdopted += varz["leases_adopted"]
		if varz["peers_down"] < 1 {
			t.Errorf("%s varz peers_down = %d, want >= 1", a, varz["peers_down"])
		}
	}
	if totalAdopted != int64(len(victims)) {
		t.Errorf("leases_adopted across survivors = %d, want %d", totalAdopted, len(victims))
	}

	// Membership view from a survivor names all three nodes.
	var peers struct {
		Members []string `json:"members"`
	}
	getFrom(t, addrs[1], "/v1/peers", &peers)
	if len(peers.Members) != nodes {
		t.Errorf("/v1/peers members = %v, want %d nodes", peers.Members, nodes)
	}
}
