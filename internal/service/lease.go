package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// Leases and adoption: partition tolerance without consensus.
//
// A fleet worker that picks a job up persists a *lease* — owner plus
// expiry — before running, and renews it at TTL/3 while the engine works.
// The adoption scanner on every node watches for peers the health view
// marks down, walks their registered job directories, and takes over any
// non-terminal job whose lease has expired, provided the ring (restricted
// to live nodes) names this node first for the job's key.
//
// Two mechanisms make a wrong "down" verdict (a partition, not a crash)
// safe rather than split-brained:
//
//  1. The adoption itself is os.Rename of the whole job directory from
//     the dead node's state dir into the adopter's — atomic on one
//     filesystem, so exactly one of several racing adopters wins (the
//     losers get ENOENT) and a half-adopted job cannot exist.
//  2. The journal's exclusive flock travels with the rename (it locks the
//     inode, not the path). If the "dead" owner is actually alive and
//     mid-append, the adopter's Resume fails with ErrLocked; the adopter
//     requeues the job and retries after a lease interval, by which time
//     the isolated owner has either finished the deterministic run (the
//     journal then carries a terminal record and the adopter's rerun
//     reproduces the byte-identical result) or released the lock.
//
// The worst case under partition is therefore duplicate *work*, never
// divergent *results* — the PR 3/5 resume contract (byte-identical
// Canonical() from any checkpoint, or from scratch under the same seed)
// is what turns "at-least-once execution" into "exactly-one result".

// leaseDeadline returns the expiry for a claim made now.
func (f *fleet) leaseDeadline() int64 {
	return time.Now().Add(f.cfg.LeaseTTL).UnixMilli()
}

// leaseExpired reports whether a persisted lease is past due. A zero
// lease (job queued, never claimed) counts as expired: a queued job on a
// down node is adoptable immediately.
func leaseExpired(leaseUntilMs int64) bool {
	return leaseUntilMs <= time.Now().UnixMilli()
}

// renewLease keeps a running job's claim fresh until stop closes or the
// job leaves the running state.
func (s *Server) renewLease(j *job, stop <-chan struct{}) {
	t := time.NewTicker(s.fleet.cfg.LeaseTTL / 3)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			j.mu.Lock()
			if j.rec.State != StateRunning {
				j.mu.Unlock()
				return
			}
			j.rec.LeaseUntilMs = s.fleet.leaseDeadline()
			j.mu.Unlock()
			if err := s.store.persist(j); err == nil {
				s.fleet.renewals.Add(1)
			}
		}
	}
}

// adoptLoop periodically scans down peers for expired-lease jobs.
func (s *Server) adoptLoop() {
	defer s.fleet.wg.Done()
	t := time.NewTicker(s.fleet.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-s.fleet.stop:
			return
		case <-t.C:
			s.adoptScan()
		}
	}
}

// adoptScan walks every down peer's registered job directory and adopts
// what this node is entitled to.
func (s *Server) adoptScan() {
	for _, down := range s.fleet.health.downPeers() {
		stateDir, err := s.fleet.peerStateDir(down)
		if err != nil {
			continue // peer never registered (or fleet dir unreadable)
		}
		entries, err := os.ReadDir(filepath.Join(stateDir, "jobs"))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(stateDir, "jobs", e.Name(), "job.json"))
			if err != nil {
				continue
			}
			var rec Job
			if err := json.Unmarshal(data, &rec); err != nil ||
				rec.ID != e.Name() || !rec.State.valid() || rec.State.Terminal() {
				continue
			}
			if rec.Key == "" || !leaseExpired(rec.LeaseUntilMs) {
				continue
			}
			// Only the first *live* node on the job's ring order adopts;
			// everyone else leaves it for them (and will see it again next
			// scan if they die too). Self is always live to itself.
			if s.fleet.placement(rec.Key)[0] != s.fleet.cfg.Self {
				continue
			}
			s.adoptJob(stateDir, rec.ID, down)
		}
	}
}

// adoptJob transfers one orphaned job from a down peer into this node:
// rename (the atomic arbiter), reindex, record the orphaned → adopted →
// queued transitions, and enqueue for resume.
func (s *Server) adoptJob(srcStateDir, id, from string) {
	if s.store.get(id) != nil {
		// Already ours (e.g. adopted in a previous scan tick, or a key
		// collision with a local job). Never overwrite local state.
		return
	}
	src := filepath.Join(srcStateDir, "jobs", id)
	dst := s.store.jobDir(id)
	if err := os.Rename(src, dst); err != nil {
		return // a racing adopter won, or the dir vanished — both fine
	}
	j, err := s.store.adoptIndex(id)
	if err != nil {
		return // record unreadable post-rename; leave it for inspection
	}
	j.mu.Lock()
	prevOwner := j.rec.Owner
	if prevOwner == "" {
		prevOwner = from
	}
	j.rec.State = StateOrphaned
	j.mu.Unlock()
	j.events.append(Event{Type: "state", State: StateOrphaned, Error: "owner " + from + " down, lease expired"})
	j.mu.Lock()
	j.rec.State = StateAdopted
	j.rec.Owner = s.fleet.cfg.Self
	j.rec.AdoptedFrom = prevOwner
	j.rec.Adoptions++
	j.rec.LeaseUntilMs = 0
	j.mu.Unlock()
	j.events.append(Event{Type: "state", State: StateAdopted})
	j.mu.Lock()
	j.rec.State = StateQueued
	j.mu.Unlock()
	s.persistAndEvent(j, Event{Type: "state", State: StateQueued})
	s.fleet.adopted.Add(1)
	// Adopted jobs bypass admission control like boot-recovered ones:
	// they were admitted once, somewhere.
	s.queue.push(j)
}
