// Package service is the repair daemon behind `acr serve`: a long-running
// process that accepts repair jobs over an HTTP/JSON API, runs them on a
// bounded worker pool, and persists every job under a state directory
// using the crash-safe session journal (internal/journal), so a SIGKILL'd
// daemon resumes its in-flight jobs on restart.
//
// API surface (all JSON):
//
//	POST   /v1/repairs             submit a job (builtin or uploaded case) → 202
//	GET    /v1/repairs             list jobs (?state= filters; fleet: fans out)
//	GET    /v1/repairs/{id}        one job, including its result when terminal
//	GET    /v1/repairs/{id}/events job lifecycle + engine progress as SSE
//	DELETE /v1/repairs/{id}        cancel (queued: immediate; running: cooperative)
//	GET    /healthz                readiness + basic gauges (503 while booting/draining)
//	GET    /livez                  liveness (200 while the process serves at all)
//	GET    /v1/peers               fleet membership and peer health (fleet mode)
//	GET    /varz                   expvar-style counters
//
// Job lifecycle: queued → running → done | failed | canceled. "done" means
// the engine produced a Result (feasible or not — the exit-code-equivalent
// classification in the result says which); "failed" means the job could
// not run at all (unloadable case, locked journal); "canceled" is an
// operator DELETE. A daemon shutdown drains the pool: running jobs are
// interrupted at the next engine checkpoint and persisted back to
// "queued", so the next boot — like a boot after a crash — picks them up
// and resumes them from their journals.
//
// In fleet mode (Config.Fleet / acr serve -peers) the lifecycle gains
// ownership states: queued → leased → running → {done, failed, canceled},
// with orphaned → adopted → queued spliced in when a job's owner node is
// marked down and its lease expires — a live peer renames the job
// directory into its own state dir and resumes the journal byte-
// identically. Jobs are placed on a consistent-hash ring keyed by the
// job's case+options digest; POST is forwarded to the owner, reads fan
// out across live peers.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"acr/internal/caseio"
	"acr/internal/core"
)

// JobState is one point of the job lifecycle.
type JobState string

// Job states. Queued, Leased, Running, Orphaned, and Adopted are live;
// Done, Failed, and Canceled are terminal. Leased/Orphaned/Adopted only
// occur in fleet mode: Leased is a worker's persisted ownership claim
// before Running; Orphaned marks a job found on a down peer with an
// expired lease; Adopted marks its transfer to this node (it is requeued
// immediately after).
const (
	StateQueued   JobState = "queued"
	StateLeased   JobState = "leased"
	StateRunning  JobState = "running"
	StateOrphaned JobState = "orphaned"
	StateAdopted  JobState = "adopted"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether a state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// valid reports whether s is a known state (used when loading job records
// a hostile or future process may have written).
func (s JobState) valid() bool {
	switch s {
	case StateQueued, StateLeased, StateRunning, StateOrphaned, StateAdopted,
		StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// allStates is every state in lifecycle order (the /varz jobs_<state>
// gauge set).
var allStates = []JobState{StateQueued, StateLeased, StateRunning, StateOrphaned,
	StateAdopted, StateDone, StateFailed, StateCanceled}

// JobRequest is the body of POST /v1/repairs. Exactly one of Builtin and
// Case selects the repair problem.
type JobRequest struct {
	// Builtin names a built-in case: figure2, figure2-repaired, dcn4, wan.
	Builtin string `json:"builtin,omitempty"`
	// Case uploads a user case (the caseio text formats).
	Case *caseio.Upload `json:"case,omitempty"`
	// Priority orders the queue: higher runs sooner; ties run FIFO.
	Priority int `json:"priority,omitempty"`
	// Seed is the engine's random seed (the same seed reproduces the same
	// repair, interrupted or not).
	Seed int64 `json:"seed,omitempty"`
	// Strategy is "evolutionary" (default) or "bruteforce".
	Strategy string `json:"strategy,omitempty"`
	// MaxIterations caps the search (0 = the paper's default, 500).
	MaxIterations int `json:"maxIterations,omitempty"`
	// TimeoutSeconds bounds the job's wall clock (0 = unlimited). A
	// resumed job gets a fresh budget: the deadline bounds one attempt,
	// not the job's lifetime (deadlines are excluded from the search
	// digest for exactly this reason).
	TimeoutSeconds float64 `json:"timeoutSeconds,omitempty"`
	// Parallelism requests this many validation workers for the job.
	// The server clamps it to its per-job budget (Config.JobParallelism);
	// 0 takes the budget. Parallelism never changes the repair result —
	// only how fast it arrives — so it is excluded from the search digest
	// and a job may resume under a different value.
	Parallelism int `json:"parallelism,omitempty"`
}

// Options converts the request's engine knobs to core.Options.
func (r *JobRequest) Options() (core.Options, error) {
	opts := core.Options{Seed: r.Seed, MaxIterations: r.MaxIterations}
	switch r.Strategy {
	case "", "evolutionary":
		opts.Strategy = core.Evolutionary
	case "bruteforce":
		opts.Strategy = core.BruteForce
	default:
		return opts, fmt.Errorf("unknown strategy %q", r.Strategy)
	}
	if r.TimeoutSeconds < 0 {
		return opts, fmt.Errorf("negative timeoutSeconds")
	}
	if r.Parallelism < 0 {
		return opts, fmt.Errorf("negative parallelism")
	}
	opts.MaxWallClock = time.Duration(r.TimeoutSeconds * float64(time.Second))
	opts.Parallelism = r.Parallelism
	return opts, nil
}

// Job is the wire (and on-disk) form of one repair job. The same record is
// returned by GET /v1/repairs/{id} and persisted as job.json in the job's
// state subdirectory; a daemon reboot reconstructs its world from these.
type Job struct {
	ID       string   `json:"id"`
	Seq      int      `json:"seq"`
	State    JobState `json:"state"`
	Priority int      `json:"priority,omitempty"`
	// Case is the case name (builtin name or the upload's name).
	Case    string `json:"case"`
	Builtin string `json:"builtin,omitempty"`
	Seed    int64  `json:"seed"`
	// Strategy, MaxIterations, TimeoutSeconds, Parallelism echo the request.
	Strategy       string  `json:"strategy,omitempty"`
	MaxIterations  int     `json:"maxIterations,omitempty"`
	TimeoutSeconds float64 `json:"timeoutSeconds,omitempty"`
	Parallelism    int     `json:"parallelism,omitempty"`
	// Attempts counts times a worker picked the job up (1 for a job that
	// ran once; higher after crash- or drain-resumes).
	Attempts int `json:"attempts,omitempty"`
	// Key is the job's placement/dedup identity: a digest of the case and
	// the search-steering options. Two submissions with the same key are
	// the same repair (set in fleet mode; empty for single-node jobs).
	Key string `json:"key,omitempty"`
	// Owner is the advertised address of the fleet node responsible for
	// the job (fleet mode only).
	Owner string `json:"owner,omitempty"`
	// LeaseUntilMs is the job claim's expiry as Unix milliseconds. A job
	// whose owner is marked down and whose lease has expired is adoptable
	// by the next live peer on the ring.
	LeaseUntilMs int64 `json:"leaseUntilMs,omitempty"`
	// AdoptedFrom names the down node this job was last adopted from.
	AdoptedFrom string `json:"adoptedFrom,omitempty"`
	// Adoptions counts ownership transfers over the job's lifetime.
	Adoptions int `json:"adoptions,omitempty"`
	// Resumed reports that the latest attempt restored engine state from
	// the job's journal instead of starting from scratch.
	Resumed bool `json:"resumed,omitempty"`
	// Error explains a failed or canceled job.
	Error string `json:"error,omitempty"`
	// Result is present once the engine produced one (state done, or
	// canceled mid-run with best-effort progress).
	Result *ResultJSON `json:"result,omitempty"`
}

// ResultJSON is the machine-readable form of core.Result — shared verbatim
// by the service API and `acr repair -o json`, so scripts parse one schema
// no matter which front end ran the repair. Configurations are rendered as
// text; CanonicalSHA256 digests Result.Canonical() so two runs can be
// compared for byte-identity without shipping the whole canonical string.
type ResultJSON struct {
	Feasible    bool   `json:"feasible"`
	Termination string `json:"termination"`
	// Outcome and ExitCode are the exit-code-equivalent classification
	// (the same table `acr repair` exits with; see ExitCode).
	Outcome  string `json:"outcome"`
	ExitCode int    `json:"exitCode"`

	Iterations  int `json:"iterations"`
	BaseFailing int `json:"baseFailing"`

	CandidatesValidated   int `json:"candidatesValidated"`
	PrefixSimulations     int `json:"prefixSimulations"`
	IntentChecks          int `json:"intentChecks"`
	StaticallyRefuted     int `json:"staticallyRefuted,omitempty"`
	ImpactScoped          int `json:"impactScoped,omitempty"`
	ImpactBroad           int `json:"impactBroad,omitempty"`
	StaticDiagnostics     int `json:"staticDiagnostics,omitempty"`
	PriorSeededLines      int `json:"priorSeededLines,omitempty"`
	TemplatesPrunedStatic int `json:"templatesPrunedStatic,omitempty"`
	CandidatesPanicked    int `json:"candidatesPanicked,omitempty"`
	CandidatesTimedOut    int `json:"candidatesTimedOut,omitempty"`
	ValidationRetries     int `json:"validationRetries,omitempty"`
	CacheHits             int `json:"cacheHits,omitempty"`
	CacheMisses           int `json:"cacheMisses,omitempty"`
	ParallelWorkers       int `json:"parallelWorkers,omitempty"`
	StoreHits             int `json:"storeHits,omitempty"`
	StoreMisses           int `json:"storeMisses,omitempty"`
	StoreCorrupt          int `json:"storeCorrupt,omitempty"`
	DeltaReused           int `json:"deltaReused,omitempty"`
	DeltaResimulated      int `json:"deltaResimulated,omitempty"`
	SimActivations        int `json:"simActivations,omitempty"`

	Applied []string `json:"applied,omitempty"`
	Diffs   []string `json:"diffs,omitempty"`
	// Configs is the repaired configuration text per device when feasible.
	Configs map[string]string `json:"configs,omitempty"`

	Improved          bool     `json:"improved"`
	BestEffortFitness int      `json:"bestEffortFitness"`
	BestEffortApplied []string `json:"bestEffortApplied,omitempty"`

	Resumed     bool     `json:"resumed,omitempty"`
	ResumedFrom int      `json:"resumedFrom,omitempty"`
	Errors      []string `json:"errors,omitempty"`

	WallClockSeconds float64 `json:"wallClockSeconds"`
	CanonicalSHA256  string  `json:"canonicalSha256"`
}

// NewResultJSON converts an engine result to the wire form.
func NewResultJSON(res *core.Result) *ResultJSON {
	sum := sha256.Sum256([]byte(res.Canonical()))
	code := ExitCode(res)
	out := &ResultJSON{
		Feasible:    res.Feasible,
		Termination: res.Termination,
		Outcome:     Outcome(code),
		ExitCode:    code,

		Iterations:  res.Iterations,
		BaseFailing: res.BaseFailing,

		CandidatesValidated:   res.CandidatesValidated,
		PrefixSimulations:     res.PrefixSimulations,
		IntentChecks:          res.IntentChecks,
		StaticallyRefuted:     res.StaticallyRefuted,
		ImpactScoped:          res.ImpactScoped,
		ImpactBroad:           res.ImpactBroad,
		StaticDiagnostics:     res.StaticDiagnostics,
		PriorSeededLines:      res.PriorSeededLines,
		TemplatesPrunedStatic: res.TemplatesPrunedStatic,
		CandidatesPanicked:    res.CandidatesPanicked,
		CandidatesTimedOut:    res.CandidatesTimedOut,
		ValidationRetries:     res.ValidationRetries,
		CacheHits:             res.CacheHits,
		CacheMisses:           res.CacheMisses,
		ParallelWorkers:       res.ParallelWorkers,
		StoreHits:             res.StoreHits,
		StoreMisses:           res.StoreMisses,
		StoreCorrupt:          res.StoreCorrupt,
		DeltaReused:           res.DeltaReused,
		DeltaResimulated:      res.DeltaResimulated,
		SimActivations:        res.SimActivations,

		Applied: res.Applied,
		Diffs:   res.Diffs,

		Improved:          res.Improved,
		BestEffortFitness: res.BestEffortFitness,
		BestEffortApplied: res.BestEffortApplied,

		Resumed:     res.Resumed,
		ResumedFrom: res.ResumedFrom,

		WallClockSeconds: res.WallClock.Seconds(),
		CanonicalSHA256:  hex.EncodeToString(sum[:]),
	}
	if res.Feasible && res.FinalConfigs != nil {
		out.Configs = map[string]string{}
		for d, c := range res.FinalConfigs {
			out.Configs[d] = c.Text()
		}
	}
	for _, e := range res.Errors {
		out.Errors = append(out.Errors, e.Error())
	}
	return out
}

// Exit-code-equivalent classification of a repair result, shared by
// `acr repair` (process exit code) and the service API (ResultJSON).
const (
	ExitFeasible        = 0 // all intents pass on the repaired configs
	ExitImproved        = 2 // infeasible, but the best-effort repair fixes some intents
	ExitNoProgress      = 3 // infeasible and nothing improved
	ExitDeadline        = 4 // the run was cut short by a deadline or cancellation
	ExitResumedFeasible = 5 // feasible, and the run resumed a crashed session
)

// ExitCode maps a repair result to its exit-code-equivalent class. A
// deadline/cancellation outranks "improved": a truncated run is a
// different operational condition than a completed-but-stuck one, and
// callers that care about partial progress can read Improved. A feasible
// run that recovered a crashed session classifies as ExitResumedFeasible
// so recovery tooling can tell "repaired after a crash" from "repaired in
// one run".
func ExitCode(res *core.Result) int {
	switch {
	case res.Feasible && res.Resumed:
		return ExitResumedFeasible
	case res.Feasible:
		return ExitFeasible
	case res.Termination == "deadline" || res.Termination == "canceled":
		return ExitDeadline
	case res.Improved:
		return ExitImproved
	default:
		return ExitNoProgress
	}
}

// Outcome names an exit-code class for humans and JSON.
func Outcome(code int) string {
	switch code {
	case ExitFeasible:
		return "feasible"
	case ExitImproved:
		return "improved"
	case ExitNoProgress:
		return "no-progress"
	case ExitDeadline:
		return "deadline"
	case ExitResumedFeasible:
		return "feasible-after-resume"
	}
	return fmt.Sprintf("exit-%d", code)
}

// Event is one server-sent event on GET /v1/repairs/{id}/events: a state
// transition or an engine progress record mirrored off the job's journal
// stream. Seq is per-job and strictly increasing; SSE clients use it as
// the event id for Last-Event-ID reconnection.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state", "candidate", "iteration", "checkpoint"
	// State is set on "state" events.
	State JobState `json:"state,omitempty"`
	// Error explains failed/canceled state events.
	Error string `json:"error,omitempty"`
	// Iteration and Fitness are set on engine progress events.
	Iteration int `json:"iteration,omitempty"`
	Fitness   int `json:"fitness,omitempty"`
	// Desc is the candidate description on "candidate" events.
	Desc string `json:"desc,omitempty"`
}
