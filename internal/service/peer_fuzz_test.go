package service

import (
	"testing"
)

// FuzzPeerDecode hammers every decoder a node applies to bytes received
// from a peer connection. The contract under fuzz: arbitrary input either
// decodes into a record whose trusted fields are sane, or returns an error
// (which the caller converts into a failed health probe) — never a panic,
// and never a "valid" record with an empty identity or an unknown state.
func FuzzPeerDecode(f *testing.F) {
	f.Add([]byte(`{"status":"ok"}`))
	f.Add([]byte(`{"status":"draining","reason":"shutting down"}`))
	f.Add([]byte(`{"id":"f0123","state":"running","owner":"a:1"}`))
	f.Add([]byte(`{"id":"j000001","state":"done","result":{"feasible":true}}`))
	f.Add([]byte(`{"jobs":[{"id":"a","state":"queued"},{"id":"b","state":"adopted"}]}`))
	f.Add([]byte(`{"jobs":[{"state":"queued"}]}`))
	f.Add([]byte(`{"id":"x","state":"exploded"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte("\x00\xff garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if hr, err := decodePeerHealth(data); err == nil && hr.Status == "" {
			t.Fatalf("decodePeerHealth accepted empty status: %q", data)
		}
		if j, err := decodePeerJob(data); err == nil {
			if j.ID == "" || !j.State.valid() {
				t.Fatalf("decodePeerJob accepted malformed job %+v from %q", j, data)
			}
		}
		if jobs, err := decodePeerJobList(data); err == nil {
			for _, j := range jobs {
				if j.ID == "" || !j.State.valid() {
					t.Fatalf("decodePeerJobList accepted malformed entry %+v from %q", j, data)
				}
			}
		}
	})
}
