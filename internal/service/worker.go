package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"acr/internal/core"
	"acr/internal/journal"
)

// workerLoop is one pool worker: pop, run, repeat until the queue closes.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one repair job end to end: transition to running, load
// the case, create or resume the job's journal, drive the engine, and
// record the terminal state (or hand the job back to "queued" when a
// shutdown drain interrupted it).
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.rec.State.Terminal() {
		// Canceled after popping but before we got here.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	preCanceled := j.cancelRequested
	if s.fleet != nil {
		// Claim the job before running it: lease persisted first, so a
		// peer scanning our jobs after we die sees who held it and until
		// when. Single-node mode skips the leased hop entirely.
		j.rec.State = StateLeased
		j.rec.Owner = s.fleet.cfg.Self
		j.rec.LeaseUntilMs = s.fleet.leaseDeadline()
	}
	j.mu.Unlock()
	defer cancel()
	if preCanceled {
		cancel()
	}
	if s.fleet != nil {
		s.persistAndEvent(j, Event{Type: "state", State: StateLeased})
	}
	j.mu.Lock()
	j.rec.State = StateRunning
	j.rec.Attempts++
	j.mu.Unlock()

	s.busyWorkers.Add(1)
	defer s.busyWorkers.Add(-1)

	// A job popped in the instant before Shutdown closed the queue is
	// invisible to the drain loop (it was still "queued" then); pick the
	// drain up here so it checkpoints and requeues like the rest.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		j.mu.Lock()
		j.drained = true
		j.mu.Unlock()
		cancel()
	}

	s.persistAndEvent(j, Event{Type: "state", State: StateRunning})

	sc, err := s.store.loadCase(j)
	if err != nil {
		s.finishFailed(j, fmt.Errorf("load case: %w", err))
		return
	}
	rec := j.snapshot()
	req := JobRequest{
		Seed:           rec.Seed,
		Strategy:       rec.Strategy,
		MaxIterations:  rec.MaxIterations,
		TimeoutSeconds: rec.TimeoutSeconds,
		Parallelism:    rec.Parallelism,
	}
	opts, err := req.Options()
	if err != nil {
		s.finishFailed(j, err)
		return
	}
	// Clamp the job's validation parallelism to the server budget; a
	// request of 0 takes the whole budget. Safe across resume: Parallelism
	// is excluded from the search digest, so a job journaled under one
	// budget resumes under another with a byte-identical result.
	if opts.Parallelism <= 0 || opts.Parallelism > s.cfg.JobParallelism {
		opts.Parallelism = s.cfg.JobParallelism
	}
	// Wire the shared persistent evaluation store under this job's cache.
	// The nil check must stay on the concrete field: assigning a nil
	// *evalstore.Store into the interface would make opts.Store non-nil.
	if s.evalStore != nil {
		opts.Store = s.evalStore
	}
	p := core.Problem{Topo: sc.Topo, Configs: sc.Configs, Intents: sc.Intents}

	w, sess, err := s.openJournal(j, p, opts)
	if err != nil {
		if s.fleet != nil && errors.Is(err, journal.ErrLocked) {
			// The journal's flock is still held — this is an adopted job
			// whose "dead" owner is actually alive on the far side of a
			// partition (the lock travels with the renamed inode). Don't
			// fail it: requeue and retry after a lease interval, by which
			// time the isolated owner has finished the deterministic run
			// or died for real. Worst case is duplicate work, never a
			// divergent result.
			s.requeueLocked(j)
			return
		}
		s.finishFailed(j, err)
		return
	}
	if s.fleet != nil {
		// Custody record: who ran this attempt, and from whom it was
		// adopted. Appended before the event mirror is installed, so owner
		// records neither feed the SSE stream nor count against a chaos
		// kill switch — replay treats them as provenance only.
		if err := w.AppendOwner(journal.Owner{
			Node:        s.fleet.cfg.Self,
			Attempt:     j.snapshot().Attempts,
			AdoptedFrom: j.snapshot().AdoptedFrom,
		}); err != nil {
			w.Close()
			s.finishFailed(j, journalErr(err))
			return
		}
		renewStop := make(chan struct{})
		go s.renewLease(j, renewStop)
		defer close(renewStop)
	}
	if sess != nil {
		// Provisional: the attempt starts from a journaled session. The
		// terminal update replaces this with the engine's own Resumed flag
		// (false when the journal held no checkpoint to restore — a fresh
		// run under the same seed IS the continuation then).
		j.mu.Lock()
		j.rec.Resumed = true
		j.mu.Unlock()
		opts.Resume = sess
	}
	// Mirror the journal stream onto the job's SSE event log, after any
	// configured hook (the chaos kill switch in crash tests) has had its
	// chance to take the process down first — exactly the order a real
	// crash interleaves durability and observability.
	hook := s.cfg.JournalHook
	w.Hook = func(n int, r *journal.Record) error {
		if hook != nil {
			if err := hook(n, r); err != nil {
				return err
			}
		}
		if e, ok := recordEvent(r); ok {
			j.events.append(e)
		}
		return nil
	}
	opts.Journal = w

	res := core.RepairContext(ctx, p, opts)
	w.Close()

	s.candidatesValidated.Add(int64(res.CandidatesValidated))
	s.panicsQuarantined.Add(int64(res.CandidatesPanicked))
	s.deltaReused.Add(int64(res.DeltaReused))
	s.deltaResimulated.Add(int64(res.DeltaResimulated))
	s.simActivations.Add(int64(res.SimActivations))

	j.mu.Lock()
	drained := j.drained
	canceled := j.cancelRequested
	j.mu.Unlock()

	switch {
	case drained && !canceled && res.Termination == "canceled":
		// Shutdown drain: the engine checkpointed and journaled a resumable
		// "canceled" terminal. Hand the job back to the queue state so the
		// next boot resumes it; keep the event stream open. (A drain that
		// raced a natural completion falls through to "done" instead.)
		j.mu.Lock()
		j.rec.State = StateQueued
		j.rec.LeaseUntilMs = 0
		j.mu.Unlock()
		s.persistAndEvent(j, Event{Type: "state", State: StateQueued})
	case canceled && res.Termination == "canceled":
		j.mu.Lock()
		j.rec.State = StateCanceled
		j.rec.LeaseUntilMs = 0
		j.rec.Error = "canceled by operator"
		j.rec.Resumed = res.Resumed
		j.rec.Result = NewResultJSON(res)
		j.mu.Unlock()
		s.persistAndEvent(j, Event{Type: "state", State: StateCanceled, Error: "canceled by operator"})
		j.events.close()
	default:
		j.mu.Lock()
		j.rec.State = StateDone
		j.rec.LeaseUntilMs = 0
		j.rec.Error = ""
		j.rec.Resumed = res.Resumed
		j.rec.Result = NewResultJSON(res)
		j.mu.Unlock()
		s.persistAndEvent(j, Event{Type: "state", State: StateDone})
		j.events.close()
	}
}

// openJournal creates the job's journal session, or resumes it when the
// directory holds a live one for the same case and search (the previous
// daemon died or drained mid-run); a non-nil sess means resume. A
// non-resumable leftover session — e.g. a crash landed between the
// terminal append and the job.json update — is truncated and rerun: the
// engine is deterministic, so the rerun reproduces the same result.
func (s *Server) openJournal(j *job, p core.Problem, opts core.Options) (w *journal.Writer, sess *journal.Session, err error) {
	dir := s.store.journalDir(j.id)
	hdr := core.SessionHeader(j.snapshot().Case, p, opts)
	sess, err = journal.Replay(dir)
	if err == nil && sess.Resumable() && sess.Records > 0 &&
		sess.Header.CaseDigest == hdr.CaseDigest &&
		sess.Header.OptionsDigest == hdr.OptionsDigest {
		w, err = journal.Resume(dir, sess)
		if err != nil {
			return nil, nil, journalErr(err)
		}
		return w, sess, nil
	}
	if err != nil && !errors.Is(err, journal.ErrNoSession) {
		return nil, nil, journalErr(err)
	}
	w, err = journal.Create(dir, hdr)
	if err != nil {
		return nil, nil, journalErr(err)
	}
	return w, nil, nil
}

// journalErr wraps journal-layer failures in the engine's error taxonomy
// so API clients see a classified failure.
func journalErr(err error) error {
	return &core.RepairError{Kind: core.KindJournal, Op: "service.journal", Err: err}
}

// requeueLocked hands an adopted-but-flocked job back to queued and
// schedules a retry one lease interval out (see the adoption notes in
// lease.go — this is the partition, not crash, path).
func (s *Server) requeueLocked(j *job) {
	j.mu.Lock()
	j.rec.State = StateQueued
	j.rec.LeaseUntilMs = 0
	j.mu.Unlock()
	s.persistAndEvent(j, Event{Type: "state", State: StateQueued,
		Error: "journal locked by previous owner; retrying after lease interval"})
	time.AfterFunc(s.fleet.cfg.LeaseTTL, func() {
		if j.state() == StateQueued {
			s.queue.push(j) // no-op dispatch if the queue closed meanwhile
		}
	})
}

// finishFailed records a job that could not run at all.
func (s *Server) finishFailed(j *job, err error) {
	msg := err.Error()
	j.mu.Lock()
	j.rec.State = StateFailed
	j.rec.LeaseUntilMs = 0
	j.rec.Error = msg
	j.mu.Unlock()
	s.persistAndEvent(j, Event{Type: "state", State: StateFailed, Error: msg})
	j.events.close()
}

// persistAndEvent writes the job record (atomically) and publishes a
// lifecycle event. Persistence errors are not fatal to the run — the
// in-memory state is still right — but they are surfaced on the stream.
func (s *Server) persistAndEvent(j *job, e Event) {
	if err := s.store.persist(j); err != nil {
		e.Error = joinErr(e.Error, fmt.Sprintf("persist: %v", err))
	}
	j.events.append(e)
}

func joinErr(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}

// recordEvent maps a journal record to its SSE mirror.
func recordEvent(r *journal.Record) (Event, bool) {
	switch r.Type {
	case journal.TypeCandidate:
		return Event{Type: "candidate", Iteration: r.Candidate.Iteration,
			Fitness: r.Candidate.Fitness, Desc: r.Candidate.Desc}, true
	case journal.TypeIteration:
		return Event{Type: "iteration", Iteration: r.Iteration.Iteration,
			Fitness: r.Iteration.BestFitness}, true
	case journal.TypeCheckpoint:
		return Event{Type: "checkpoint", Iteration: r.Checkpoint.Iteration}, true
	}
	return Event{}, false
}
