package service

import "sync"

// eventLog is one job's append-only event history plus subscriber
// notification. SSE handlers replay from any cursor and then block on a
// notify channel; append wakes every subscriber. The log is capped: SSE is
// observability, not a durable record (that's the journal), so a very long
// run drops its oldest engine events rather than growing without bound.
const maxJobEvents = 4096

type eventLog struct {
	mu      sync.Mutex
	nextSeq int
	events  []Event // events[i].Seq is contiguous; head may be trimmed
	closed  bool
	subs    map[chan struct{}]bool
}

func newEventLog() *eventLog {
	return &eventLog{nextSeq: 1, subs: map[chan struct{}]bool{}}
}

// append stamps the event's sequence number and wakes subscribers.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	e.Seq = l.nextSeq
	l.nextSeq++
	l.events = append(l.events, e)
	if len(l.events) > maxJobEvents {
		l.events = l.events[len(l.events)-maxJobEvents:]
	}
	l.notifyLocked()
	l.mu.Unlock()
}

// close marks the stream complete (job terminal) and wakes subscribers so
// they can flush and end.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.notifyLocked()
	l.mu.Unlock()
}

func (l *eventLog) notifyLocked() {
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending wakeup
		}
	}
}

// since returns every event with Seq > after, and whether the stream is
// complete.
func (l *eventLog) since(after int) (evs []Event, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.events {
		if e.Seq > after {
			evs = append(evs, e)
		}
	}
	return evs, l.closed
}

// subscribe registers a wakeup channel; the caller must unsubscribe.
func (l *eventLog) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	l.subs[ch] = true
	l.mu.Unlock()
	return ch
}

func (l *eventLog) unsubscribe(ch chan struct{}) {
	l.mu.Lock()
	delete(l.subs, ch)
	l.mu.Unlock()
}
