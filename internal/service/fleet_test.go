package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"acr/internal/caseio"
	"acr/internal/core"
	"acr/internal/journal"
	"acr/internal/scenario"
	"acr/internal/service"
)

// fleetNode is one in-process fleet member serving on a real TCP listener
// (peers dial each other by address, so httptest's client-only server is
// not enough).
type fleetNode struct {
	srv  *service.Server
	hs   *http.Server
	addr string
}

// newFleetListeners reserves n real listeners up front so every node knows
// the full membership before any server is constructed.
func newFleetListeners(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

// startFleetNode builds, starts, and serves one member. Mutate cfg (hooks,
// workers) before passing it in; Fleet is filled here.
func startFleetNode(t *testing.T, cfg service.Config, ln net.Listener, self string, peers []string, fleetDir string) *fleetNode {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	cfg.Fleet = &service.FleetConfig{
		Self:           self,
		Peers:          peers,
		Dir:            fleetDir,
		LeaseTTL:       300 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", self, err)
	}
	srv.Start()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	n := &fleetNode{srv: srv, hs: hs, addr: self}
	t.Cleanup(func() { n.stop(t) })
	return n
}

// stop drains and closes a node; safe to call twice.
func (n *fleetNode) stop(t *testing.T) {
	t.Helper()
	n.hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
}

func postTo(t *testing.T, addr string, req service.JobRequest) (service.Job, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+"/v1/repairs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", addr, err)
	}
	defer resp.Body.Close()
	var job service.Job
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatalf("decode job: %v", err)
		}
	}
	return job, resp
}

func getFrom(t *testing.T, addr, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s%s: %v", addr, path, err)
		}
	}
	return resp
}

// referenceSHA runs the submission uninterrupted in-process and returns the
// canonical result digest the fleet must reproduce.
func referenceSHA(t *testing.T, req service.JobRequest) string {
	t.Helper()
	opts, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	var sc *scenario.Scenario
	if req.Builtin != "" {
		sc = scenario.Figure2()
	} else {
		if sc, err = caseio.FromUpload(*req.Case); err != nil {
			t.Fatal(err)
		}
	}
	p := core.Problem{Topo: sc.Topo, Configs: sc.Configs, Intents: sc.Intents}
	res := core.RepairContext(context.Background(), p, opts)
	return service.NewResultJSON(res).CanonicalSHA256
}

// TestFleetForwardDedupFanout: a two-node fleet routes each submission to
// its ring owner, answers duplicates with the existing job, and serves
// reads for any job from any node.
func TestFleetForwardDedupFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet; skipped in -short")
	}
	lns, addrs := newFleetListeners(t, 2)
	fleetDir := t.TempDir()
	n1 := startFleetNode(t, service.Config{StateDir: t.TempDir()}, lns[0], addrs[0], []string{addrs[1]}, fleetDir)
	_ = startFleetNode(t, service.Config{StateDir: t.TempDir()}, lns[1], addrs[1], []string{addrs[0]}, fleetDir)

	// Keys spread over the ring, so within a few seeds one job must land on
	// the remote node (each seed changes the options digest and the key).
	var forwarded service.Job
	var fwdReq service.JobRequest
	for seed := int64(1); seed <= 32; seed++ {
		req := service.JobRequest{Builtin: "figure2", Seed: seed}
		job, resp := postTo(t, addrs[0], req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seed %d: status %d, want 202", seed, resp.StatusCode)
		}
		if job.Owner == addrs[1] {
			if got := resp.Header.Get("X-Acr-Owner"); got != addrs[1] {
				t.Errorf("forwarded response lacks X-Acr-Owner (got %q)", got)
			}
			forwarded, fwdReq = job, req
			break
		}
	}
	if forwarded.ID == "" {
		t.Fatal("no submission was owned by the remote node in 32 seeds")
	}

	// The same submission again — to the *non-owner* — returns the existing
	// job, not a second admission.
	dup, resp := postTo(t, addrs[0], fwdReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit status = %d, want 200", resp.StatusCode)
	}
	if dup.ID != forwarded.ID {
		t.Fatalf("duplicate created new job %s, want %s", dup.ID, forwarded.ID)
	}

	// Fan-out read: node1 does not hold the job locally but finds it.
	deadline := time.Now().Add(60 * time.Second)
	var got service.Job
	for time.Now().Before(deadline) {
		if r := getFrom(t, addrs[0], "/v1/repairs/"+forwarded.ID, &got); r.StatusCode != http.StatusOK {
			t.Fatalf("fan-out GET = %d", r.StatusCode)
		}
		if got.State.Terminal() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got.State != service.StateDone {
		t.Fatalf("remote job state = %s (error %q), want done", got.State, got.Error)
	}
	if sha := referenceSHA(t, fwdReq); got.Result == nil || got.Result.CanonicalSHA256 != sha {
		t.Fatalf("forwarded job result = %+v, want canonical sha %s", got.Result, sha)
	}

	// Merged list view: every job exactly once, from either node.
	var list struct {
		Jobs []service.Job `json:"jobs"`
	}
	getFrom(t, addrs[0], "/v1/repairs", &list)
	seen := map[string]int{}
	for _, j := range list.Jobs {
		seen[j.ID]++
	}
	if seen[forwarded.ID] != 1 {
		t.Fatalf("merged list shows remote job %d times: %v", seen[forwarded.ID], seen)
	}

	// Fleet counters and membership.
	var varz map[string]int64
	getFrom(t, addrs[0], "/varz", &varz)
	if varz["requests_forwarded"] < 1 {
		t.Fatalf("varz requests_forwarded = %d, want >= 1 (%v)", varz["requests_forwarded"], varz)
	}
	if varz["peers_up"] != 1 || varz["peers_down"] != 0 {
		t.Fatalf("varz peers = up %d / down %d, want 1/0", varz["peers_up"], varz["peers_down"])
	}
	var peers struct {
		Fleet   bool     `json:"fleet"`
		Self    string   `json:"self"`
		Members []string `json:"members"`
		Peers   []struct {
			Addr string `json:"addr"`
			Up   bool   `json:"up"`
		} `json:"peers"`
	}
	getFrom(t, addrs[0], "/v1/peers", &peers)
	if !peers.Fleet || peers.Self != addrs[0] || len(peers.Members) != 2 {
		t.Fatalf("/v1/peers = %+v", peers)
	}
	if len(peers.Peers) != 1 || peers.Peers[0].Addr != addrs[1] || !peers.Peers[0].Up {
		t.Fatalf("/v1/peers peers = %+v", peers.Peers)
	}

	_ = n1
}

// TestFleetAdoptionResumesByteIdentical: node A is drained mid-run and its
// listener closed (the graceful twin of the SIGKILL e2e); node B must mark
// A down, adopt the orphaned job through the shared fleet dir, resume it,
// and produce the byte-identical canonical result of an uninterrupted run.
func TestFleetAdoptionResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet; skipped in -short")
	}
	lns, addrs := newFleetListeners(t, 2)
	fleetDir := t.TempDir()

	release := make(chan struct{})
	hook := func(int, *journal.Record) error { <-release; return nil }
	stateA, stateB := t.TempDir(), t.TempDir()
	nA := startFleetNode(t, service.Config{StateDir: stateA, JournalHook: hook},
		lns[0], addrs[0], []string{addrs[1]}, fleetDir)
	_ = startFleetNode(t, service.Config{StateDir: stateB},
		lns[1], addrs[1], []string{addrs[0]}, fleetDir)
	// If an assertion fires while A's worker is still parked in the hook,
	// unpark it before the node cleanups run — otherwise A's Shutdown waits
	// on the parked worker forever and a plain failure becomes a package
	// timeout. Registered after both nodes so it runs before their stops.
	released := false
	t.Cleanup(func() {
		if !released {
			released = true
			close(release)
		}
	})

	// Find a submission the ring places on node A. Submitting via node B
	// exercises the forward path; A's journal hook then parks the run at
	// its first engine append, with the lease already persisted. The case
	// must be one the engine cannot finish in the instant between the hook
	// releasing and the drain's context-cancel check: figure2's real
	// incident keeps candidate validation (and its context checks) busy,
	// while an added impossible intent makes feasibility unreachable, so
	// the run grinds to its iteration cap — deterministically — unless
	// interrupted. (A purely impossible intent is no good here: static
	// pruning kills every template and the engine "exhausts" in
	// milliseconds without a single context check.)
	unsat := unsatisfiableUpload(t)
	unsat.Intents = caseio.ToUpload(scenario.Figure2()).Intents +
		"reach impossible 10.0.1.0/24 203.0.113.0/24\n"
	var victim service.Job
	var victimReq service.JobRequest
	for seed := int64(1); seed <= 32; seed++ {
		req := service.JobRequest{Case: unsat, Seed: seed, MaxIterations: 25}
		job, resp := postTo(t, addrs[1], req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		if job.Owner == addrs[0] {
			victim, victimReq = job, req
			break
		}
	}
	if victim.ID == "" {
		t.Fatal("no submission was owned by node A in 32 seeds")
	}
	// Wait until A's worker holds the job mid-run. Generous deadline: on a
	// small box under -race, node B grinding its share of the placement
	// probes can starve A's worker well past 30s before it pops the victim.
	deadline := time.Now().Add(120 * time.Second)
	for {
		var j service.Job
		getFrom(t, addrs[0], "/v1/repairs/"+victim.ID+"?scope=local", &j)
		if j.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never reached running (last %+v)", j)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// "Crash" A: close its listener first (probes start failing), then
	// drain. The drained job checkpoints and returns to queued in A's state
	// dir with its lease cleared — adoptable the moment B calls A down.
	nA.hs.Close()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- nA.srv.Shutdown(ctx)
	}()
	// Let the drain reach the job-cancel step before unparking the engine:
	// in fleet mode Shutdown first waits out the health/adopt loop ticks, so
	// releasing immediately can race the cancel and let the run finish on A.
	time.Sleep(time.Second)
	released = true
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("drain A: %v", err)
	}

	// B: down-detection (3 x 50ms), adoption scan, resume, completion.
	var adopted service.Job
	deadline = time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addrs[1] + "/v1/repairs/" + victim.ID + "?scope=local")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&adopted)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if adopted.State.Terminal() {
				break
			}
		} else {
			resp.Body.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
	if adopted.State != service.StateDone {
		t.Fatalf("adopted job = %+v, want done on node B", adopted)
	}
	if adopted.Owner != addrs[1] || adopted.AdoptedFrom != addrs[0] || adopted.Adoptions != 1 {
		t.Fatalf("custody = owner %q adoptedFrom %q adoptions %d, want B/A/1",
			adopted.Owner, adopted.AdoptedFrom, adopted.Adoptions)
	}
	if sha := referenceSHA(t, victimReq); adopted.Result == nil || adopted.Result.CanonicalSHA256 != sha {
		t.Fatalf("adopted result = %+v, want canonical sha %s (byte-identical resume)", adopted.Result, sha)
	}
	var varz map[string]int64
	getFrom(t, addrs[1], "/varz", &varz)
	if varz["leases_adopted"] != 1 {
		t.Fatalf("varz leases_adopted = %d, want 1", varz["leases_adopted"])
	}
	if varz["peers_down"] != 1 {
		t.Fatalf("varz peers_down = %d, want 1", varz["peers_down"])
	}
}

// TestReadinessSplitsFromLiveness: /healthz is readiness (503 + reason
// while booting or draining), /livez is liveness (200 whenever the process
// answers at all).
func TestReadinessSplitsFromLiveness(t *testing.T) {
	lns, addrs := newFleetListeners(t, 1)
	srv, err := service.New(service.Config{StateDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(lns[0])
	t.Cleanup(func() { hs.Close() })
	addr := addrs[0]

	check := func(path string, wantStatus int, wantBody string) {
		t.Helper()
		var body map[string]any
		resp := getFrom(t, addr, path, &body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s = %d (%v), want %d", path, resp.StatusCode, body, wantStatus)
		}
		if body["status"] != wantBody {
			t.Fatalf("%s status = %v, want %q", path, body["status"], wantBody)
		}
		if wantStatus == http.StatusServiceUnavailable && body["reason"] == "" {
			t.Fatalf("%s 503 without reason: %v", path, body)
		}
	}

	// Constructed but not started: alive, not ready.
	check("/livez", http.StatusOK, "alive")
	check("/healthz", http.StatusServiceUnavailable, "booting")

	srv.Start()
	check("/healthz", http.StatusOK, "ok")
	check("/livez", http.StatusOK, "alive")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	check("/healthz", http.StatusServiceUnavailable, "draining")
	check("/livez", http.StatusOK, "alive")
}

// TestAdmissionRaceAtCapacity: concurrent POSTs can neither overshoot the
// reserve-before-persist queue bound nor double-admit a duplicate key. A
// single-member fleet turns on keyed dedup without any peer machinery.
func TestAdmissionRaceAtCapacity(t *testing.T) {
	lns, addrs := newFleetListeners(t, 1)
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	hook := func(int, *journal.Record) error { <-release; return nil }
	node := startFleetNode(t,
		service.Config{StateDir: t.TempDir(), Workers: 1, QueueCap: 2, JournalHook: hook},
		lns[0], addrs[0], nil, t.TempDir())
	addr := addrs[0]

	// Occupy the lone worker: the job parks at its first engine append.
	blocker, resp := postTo(t, addr, service.JobRequest{Builtin: "figure2", Seed: 100})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var j service.Job
		getFrom(t, addr, "/v1/repairs/"+blocker.ID, &j)
		if j.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never ran (last %+v)", j)
		}
		time.Sleep(10 * time.Millisecond)
	}

	const racers = 16
	post := func(seed int64) int {
		body, _ := json.Marshal(service.JobRequest{Builtin: "figure2", Seed: seed})
		resp, err := http.Post("http://"+addr+"/v1/repairs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		var job service.Job
		json.NewDecoder(resp.Body).Decode(&job)
		return resp.StatusCode
	}

	// Phase 1: identical submissions — exactly one admission, the rest
	// deduplicated, never a 429 (a duplicate must not consume a slot).
	var wg sync.WaitGroup
	statuses := make([]int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i] = post(200)
		}(i)
	}
	wg.Wait()
	counts := map[int]int{}
	for _, s := range statuses {
		counts[s]++
	}
	if counts[http.StatusAccepted] != 1 || counts[http.StatusOK] != racers-1 {
		t.Fatalf("identical-submission race: %v, want 1x202 + %dx200", counts, racers-1)
	}
	var list struct {
		Jobs []service.Job `json:"jobs"`
	}
	getFrom(t, addr, "/v1/repairs", &list)
	dupes := 0
	for _, j := range list.Jobs {
		if j.Seed == 200 {
			dupes++
		}
	}
	if dupes != 1 {
		t.Fatalf("duplicate key admitted %d times", dupes)
	}

	// Phase 2: distinct submissions against one remaining slot (cap 2, one
	// held by the phase-1 job) — exactly one 202, the rest 429.
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i] = post(int64(300 + i))
		}(i)
	}
	wg.Wait()
	counts = map[int]int{}
	for _, s := range statuses {
		counts[s]++
	}
	if counts[http.StatusAccepted] != 1 || counts[http.StatusTooManyRequests] != racers-1 {
		t.Fatalf("capacity race: %v, want 1x202 + %dx429 (reserve-before-persist bound)", counts, racers-1)
	}

	close(release)
	_ = node // cleanup drains it
}

// TestFleetSingleNodeVarzStates: /varz exposes a gauge for every lifecycle
// state, including the fleet-only ones.
func TestFleetSingleNodeVarzStates(t *testing.T) {
	lns, addrs := newFleetListeners(t, 1)
	node := startFleetNode(t, service.Config{StateDir: t.TempDir()},
		lns[0], addrs[0], nil, t.TempDir())
	_ = node
	var varz map[string]int64
	getFrom(t, addrs[0], "/varz", &varz)
	for _, g := range []string{"jobs_queued", "jobs_leased", "jobs_running", "jobs_orphaned",
		"jobs_adopted", "jobs_done", "jobs_failed", "jobs_canceled",
		"peers_up", "peers_down", "requests_forwarded", "leases_adopted", "lease_renewals"} {
		if _, ok := varz[g]; !ok {
			t.Errorf("varz missing gauge %q (%v)", g, varz)
		}
	}
}
