package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"acr/internal/chaos"
	"acr/internal/core"
	"acr/internal/journal"
	"acr/internal/scenario"
	"acr/internal/service"
)

// TestMain doubles as the daemon for the SIGKILL end-to-end test: when
// re-exec'd with ACR_SERVICE_DAEMON=1 the test binary runs `acr serve`'s
// engine room (service.New + Start + HTTP) instead of the tests, so the
// e2e test can kill and reboot a real process.
func TestMain(m *testing.M) {
	if os.Getenv("ACR_SERVICE_DAEMON") == "1" {
		if err := runDaemon(); err != nil {
			fmt.Fprintln(os.Stderr, "daemon:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runDaemon() error {
	stateDir := os.Getenv("ACR_SERVICE_STATE")
	killAfter, _ := strconv.Atoi(os.Getenv("ACR_SERVICE_KILL_AFTER"))
	holdFile := os.Getenv("ACR_SERVICE_HOLD")
	cfg := service.Config{StateDir: stateDir, Workers: 2}
	// Fleet mode: a fixed listen address doubling as the advertised self,
	// plus the shared peer/fleet wiring (the fleet e2e drives this).
	listenAddr := "127.0.0.1:0"
	if addr := os.Getenv("ACR_SERVICE_ADDR"); addr != "" {
		listenAddr = addr
		if fleetDir := os.Getenv("ACR_SERVICE_FLEET_DIR"); fleetDir != "" {
			leaseMs, _ := strconv.Atoi(os.Getenv("ACR_SERVICE_LEASE_MS"))
			healthMs, _ := strconv.Atoi(os.Getenv("ACR_SERVICE_HEALTH_MS"))
			cfg.Fleet = &service.FleetConfig{
				Self:           addr,
				Peers:          strings.Split(os.Getenv("ACR_SERVICE_PEERS"), ","),
				Dir:            fleetDir,
				LeaseTTL:       time.Duration(leaseMs) * time.Millisecond,
				HealthInterval: time.Duration(healthMs) * time.Millisecond,
			}
		}
	}
	var hooks []journal.AppendHook
	if holdFile != "" {
		// Hold every append until the parent says go, so it can finish
		// submitting jobs before the kill switch can possibly fire.
		hooks = append(hooks, func(int, *journal.Record) error {
			for {
				if _, err := os.Stat(holdFile); err == nil {
					return nil
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
	if killAfter > 0 {
		hooks = append(hooks, chaos.NewKillSwitch(killAfter).Hook)
	}
	if len(hooks) > 0 {
		cfg.JournalHook = func(n int, rec *journal.Record) error {
			for _, h := range hooks {
				if err := h(n, rec); err != nil {
					return err
				}
			}
			return nil
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	if err := journal.WriteFileAtomic(filepath.Join(stateDir, "addr"),
		[]byte(ln.Addr().String()), 0o644); err != nil {
		return err
	}
	srv.Start()
	return http.Serve(ln, srv.Handler())
}

// startDaemon re-execs the test binary as a repair daemon on stateDir and
// waits for it to publish its listen address. extraEnv entries (KEY=VALUE)
// opt the daemon into fleet mode.
func startDaemon(t *testing.T, stateDir string, killAfter int, holdFile string, extraEnv ...string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(filepath.Join(stateDir, "addr"))
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"ACR_SERVICE_DAEMON=1",
		"ACR_SERVICE_STATE="+stateDir,
		"ACR_SERVICE_KILL_AFTER="+strconv.Itoa(killAfter),
		"ACR_SERVICE_HOLD="+holdFile,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	addrPath := filepath.Join(stateDir, "addr")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrPath); err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("daemon never published its address")
	return nil, ""
}

func postJob(t *testing.T, addr string, req service.JobRequest) service.Job {
	t.Helper()
	body, _ := json.Marshal(req)
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := http.Post("http://"+addr+"/v1/repairs", "application/json", bytes.NewReader(body))
		if err != nil {
			// The daemon publishes its address just before Serve; retry
			// through the window.
			lastErr = err
			time.Sleep(20 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST = %d: %s", resp.StatusCode, data)
		}
		var job service.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return job
	}
	t.Fatalf("POST never reached daemon: %v", lastErr)
	return service.Job{}
}

// TestDaemonSIGKILLResume is the acceptance-criteria end-to-end: a daemon
// with three in-flight jobs is SIGKILLed mid-run, restarted on the same
// state directory, and every job must reach a terminal state with a
// result byte-identical (canonical SHA-256) to an uninterrupted run.
func TestDaemonSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	seeds := []int64{1, 2, 3}

	// Uninterrupted reference runs, in-process, no journal: the engine is
	// deterministic, so these are the ground truth the crashed-and-resumed
	// daemon must reproduce byte for byte.
	expected := map[int64]string{}
	for _, seed := range seeds {
		req := service.JobRequest{Builtin: "figure2", Seed: seed}
		opts, err := req.Options()
		if err != nil {
			t.Fatal(err)
		}
		sc := scenario.Figure2()
		p := core.Problem{Topo: sc.Topo, Configs: sc.Configs, Intents: sc.Intents}
		res := core.RepairContext(context.Background(), p, opts)
		if !res.Feasible {
			t.Fatalf("reference run seed %d infeasible", seed)
		}
		expected[seed] = service.NewResultJSON(res).CanonicalSHA256
	}

	stateDir := t.TempDir()
	holdFile := filepath.Join(t.TempDir(), "go")

	// Boot 1: armed to SIGKILL itself after 6 journal appends across the
	// pool — mid-run for at least one job.
	cmd1, addr1 := startDaemon(t, stateDir, 6, holdFile)
	ids := map[int64]string{}
	for _, seed := range seeds {
		job := postJob(t, addr1, service.JobRequest{Builtin: "figure2", Seed: seed})
		ids[seed] = job.ID
	}
	if err := os.WriteFile(holdFile, []byte("go"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmd1.Wait()
	if err == nil {
		t.Fatal("daemon exited cleanly; expected SIGKILL")
	}
	if ws, ok := cmd1.ProcessState.Sys().(syscall.WaitStatus); ok {
		if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("daemon died with %v, want SIGKILL", ws)
		}
	}

	// Boot 2: same state directory, no kill switch. The daemon requeues
	// every non-terminal job and resumes the journaled ones.
	cmd2, addr2 := startDaemon(t, stateDir, 0, "")
	defer cmd2.Process.Kill()

	deadline := time.Now().Add(120 * time.Second)
	final := map[int64]service.Job{}
	for len(final) < len(seeds) && time.Now().Before(deadline) {
		for _, seed := range seeds {
			if _, ok := final[seed]; ok {
				continue
			}
			resp, err := http.Get("http://" + addr2 + "/v1/repairs/" + ids[seed])
			if err != nil {
				break
			}
			var job service.Job
			err = json.NewDecoder(resp.Body).Decode(&job)
			resp.Body.Close()
			if err == nil && job.State.Terminal() {
				final[seed] = job
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(final) < len(seeds) {
		t.Fatalf("only %d/%d jobs terminal after restart", len(final), len(seeds))
	}

	retried := 0
	for _, seed := range seeds {
		job := final[seed]
		if job.State != service.StateDone {
			t.Errorf("seed %d: state = %s (error %q), want done", seed, job.State, job.Error)
			continue
		}
		if job.Result == nil {
			t.Errorf("seed %d: no result", seed)
			continue
		}
		if job.Result.CanonicalSHA256 != expected[seed] {
			t.Errorf("seed %d: canonical sha %s != uninterrupted %s",
				seed, job.Result.CanonicalSHA256, expected[seed])
		}
		if job.Attempts > 1 {
			retried++
		}
		// Job-level Resumed means the engine restored a checkpoint, which
		// the exit-code classification must agree with.
		want := service.ExitFeasible
		if job.Resumed {
			want = service.ExitResumedFeasible
		}
		if job.Result.ExitCode != want {
			t.Errorf("seed %d: exit code %d (resumed=%v), want %d",
				seed, job.Result.ExitCode, job.Resumed, want)
		}
	}
	// The kill landed after appends had started, so at least one job was
	// mid-run and must have been picked up again after the reboot.
	if retried == 0 {
		t.Error("no job was re-attempted after the SIGKILL")
	}
}
