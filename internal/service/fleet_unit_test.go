package service

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"10.0.0.1:7365", "10.0.0.2:7365", "10.0.0.3:7365"}
	r1 := newRing(members)
	r2 := newRing([]string{members[2], members[0], members[1], members[0]}) // shuffled + dup
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != len(members) {
			t.Fatalf("order(%q) = %v, want all %d members", key, o1, len(members))
		}
		seen := map[string]bool{}
		for _, n := range o1 {
			if seen[n] {
				t.Fatalf("order(%q) repeats %s: %v", key, n, o1)
			}
			seen[n] = true
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("ring order depends on member input order: %v vs %v", o1, o2)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r := newRing(members)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.order(fmt.Sprintf("job-%d", i))[0]]++
	}
	for _, m := range members {
		// Perfect balance is 1/3; 64 vnodes should keep every member well
		// above a 15% floor.
		if share := float64(counts[m]) / keys; share < 0.15 {
			t.Errorf("member %s owns %.1f%% of keys, want >= 15%% (counts %v)", m, 100*share, counts)
		}
	}
}

// TestRingConsistency pins the property adoption relies on: removing one
// member reassigns only that member's keys — every other node's preference
// order is the original order with the dead node deleted.
func TestRingConsistency(t *testing.T) {
	full := newRing([]string{"a:1", "b:1", "c:1"})
	without := newRing([]string{"a:1", "c:1"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%d", i)
		var filtered []string
		for _, n := range full.order(key) {
			if n != "b:1" {
				filtered = append(filtered, n)
			}
		}
		got := without.order(key)
		for j := range got {
			if got[j] != filtered[j] {
				t.Fatalf("key %q: order without b = %v, want %v (full order minus b)", key, got, filtered)
			}
		}
	}
}

func TestHealthThresholds(t *testing.T) {
	h := newHealthView([]string{"p:1"}, 3, 2)
	if !h.up("p:1") {
		t.Fatal("peer should start up (optimistic)")
	}
	h.observe("p:1", false, "conn refused")
	h.observe("p:1", false, "conn refused")
	if !h.up("p:1") {
		t.Fatal("2 consecutive failures must not mark down (threshold 3)")
	}
	h.observe("p:1", false, "conn refused")
	if h.up("p:1") {
		t.Fatal("3rd consecutive failure must mark down")
	}
	h.observe("p:1", true, "")
	if h.up("p:1") {
		t.Fatal("1 success must not revive (threshold 2)")
	}
	h.observe("p:1", true, "")
	if !h.up("p:1") {
		t.Fatal("2nd consecutive success must revive")
	}
	// An interleaved success resets the failure streak.
	h.observe("p:1", false, "x")
	h.observe("p:1", false, "x")
	h.observe("p:1", true, "")
	h.observe("p:1", false, "x")
	h.observe("p:1", false, "x")
	if !h.up("p:1") {
		t.Fatal("failure streak must reset on success")
	}
	up, down := h.counts()
	if up != 1 || down != 0 {
		t.Fatalf("counts = (%d, %d), want (1, 0)", up, down)
	}
	// Unknown addresses (self) always count up.
	if !h.up("self:1") {
		t.Fatal("unknown address must count as up")
	}
}

func TestPlacementSkipsDownPeers(t *testing.T) {
	f, err := newFleet(FleetConfig{
		Self:  "a:1",
		Peers: []string{"b:1", "c:1"},
		Dir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by b, then take b down and check it reroutes.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("probe-%d", i)
		if f.ring.order(key)[0] == "b:1" {
			break
		}
	}
	if got := f.owner(key); got != "b:1" {
		t.Fatalf("owner(%q) = %s, want b:1", key, got)
	}
	for i := 0; i < DefaultFailThreshold; i++ {
		f.health.observe("b:1", false, "down")
	}
	prefs := f.placement(key)
	if prefs[0] == "b:1" {
		t.Fatalf("placement still names down peer first: %v", prefs)
	}
	for _, n := range prefs {
		if n == "b:1" {
			t.Fatalf("placement includes down peer: %v", prefs)
		}
	}
	// Everyone down: placement degrades to self.
	for i := 0; i < DefaultFailThreshold; i++ {
		f.health.observe("c:1", false, "down")
	}
	if prefs := f.placement(key); len(prefs) != 1 || prefs[0] != "a:1" {
		t.Fatalf("placement under total partition = %v, want [a:1]", prefs)
	}
}
