package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/journal"
)

// FleetConfig wires a Server into a peer fleet (acr serve -peers).
// Membership is static: every node is configured with the same peer list
// and computes the same consistent-hash ring; liveness is layered on by
// healthchecks. Dynamic membership (gossip) is a follow-up — see
// DESIGN.md §12.
type FleetConfig struct {
	// Self is this node's advertised address, exactly as it appears in
	// every node's Peers list.
	Self string
	// Peers is the fleet membership (advertised addresses). Self may be
	// included or not; it is always a member.
	Peers []string
	// Dir is the shared fleet directory (same filesystem as every node's
	// StateDir): each node registers a pointer to its state dir here, and
	// adopters resolve dead peers' job directories through it.
	Dir string
	// LeaseTTL is how long a job claim holds without renewal
	// (<=0 = DefaultLeaseTTL). Running jobs renew at TTL/3.
	LeaseTTL time.Duration
	// HealthInterval is the peer probe period (<=0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// FailThreshold / OkThreshold are the consecutive-probe counts that
	// drive the up/down view (<=0 = defaults 3 and 2).
	FailThreshold int
	OkThreshold   int
}

// ErrFleetSetup classifies fleet construction/registration failures so
// the CLI can exit with a distinct code (misconfiguration, not a state or
// bind problem).
var ErrFleetSetup = errors.New("service: fleet setup")

// forwardHeader marks a request already routed once by a fleet node.
// A receiving node admits such a request locally, whatever its own view of
// the ring says — one hop maximum, no forwarding loops during membership
// disagreement.
const forwardHeader = "X-Acr-Forwarded"

// fleet is the runtime half of FleetConfig: the ring, the health view,
// the HTTP clients, and the fleet counters.
type fleet struct {
	cfg     FleetConfig
	members []string // every node incl. self, sorted
	ring    *ring
	health  *healthView

	client *http.Client // forwards and fan-outs
	probe  *http.Client // healthchecks (tighter timeout)

	stop chan struct{}
	wg   sync.WaitGroup

	forwarded atomic.Int64 // requests routed to an owner peer
	adopted   atomic.Int64 // lease-expired jobs taken from down peers
	renewals  atomic.Int64 // lease renewals while running
}

func newFleet(cfg FleetConfig) (*fleet, error) {
	if cfg.Self == "" {
		return nil, errors.New("service: FleetConfig.Self is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("service: FleetConfig.Dir is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.OkThreshold <= 0 {
		cfg.OkThreshold = DefaultOkThreshold
	}
	seen := map[string]bool{cfg.Self: true}
	members := []string{cfg.Self}
	var others []string
	for _, p := range cfg.Peers {
		p = strings.TrimSpace(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		members = append(members, p)
		others = append(others, p)
	}
	probeTimeout := cfg.HealthInterval
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	return &fleet{
		cfg:     cfg,
		members: members,
		ring:    newRing(members),
		health:  newHealthView(others, cfg.FailThreshold, cfg.OkThreshold),
		client:  &http.Client{Timeout: 10 * time.Second},
		probe:   &http.Client{Timeout: probeTimeout},
		stop:    make(chan struct{}),
	}, nil
}

// nodeID sanitizes an advertised address into a directory name under the
// fleet dir.
func nodeID(addr string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		}
		return '_'
	}, addr)
}

// register publishes this node's state dir into the shared fleet dir, so
// peers can reach its job directories if it dies.
func (f *fleet) register(stateDir string) error {
	abs, err := filepath.Abs(stateDir)
	if err != nil {
		return err
	}
	dir := filepath.Join(f.cfg.Dir, "nodes", nodeID(f.cfg.Self))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return journal.WriteFileAtomic(filepath.Join(dir, "statedir"), []byte(abs), 0o644)
}

// peerStateDir resolves a peer's registered state dir.
func (f *fleet) peerStateDir(addr string) (string, error) {
	data, err := os.ReadFile(filepath.Join(f.cfg.Dir, "nodes", nodeID(addr), "statedir"))
	if err != nil {
		return "", err
	}
	dir := strings.TrimSpace(string(data))
	if dir == "" {
		return "", fmt.Errorf("service: empty state-dir registration for %s", addr)
	}
	return dir, nil
}

// upPeers lists the other members currently considered up.
func (f *fleet) upPeers() []string {
	var out []string
	for _, m := range f.members {
		if m != f.cfg.Self && f.health.up(m) {
			out = append(out, m)
		}
	}
	return out
}

// placement returns the key's preference order over live nodes (self
// always counts as live). Empty only for an empty ring, which cannot
// happen — self is always a member.
func (f *fleet) placement(key string) []string {
	var out []string
	for _, n := range f.ring.order(key) {
		if n == f.cfg.Self || f.health.up(n) {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []string{f.cfg.Self}
	}
	return out
}

// owner is the first live node in the key's preference order.
func (f *fleet) owner(key string) string { return f.placement(key)[0] }

// healthLoop probes every peer each interval until stop.
func (f *fleet) healthLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			for _, m := range f.members {
				if m == f.cfg.Self {
					continue
				}
				ok, errMsg := probePeer(f.probe, m)
				f.health.observe(m, ok, errMsg)
			}
		}
	}
}

// shutdown stops the fleet loops.
func (f *fleet) shutdown() {
	close(f.stop)
	f.wg.Wait()
}

// --- peer message decoding -------------------------------------------------
//
// Everything a node reads off a peer connection funnels through these
// three decoders, and FuzzPeerDecode hammers them with arbitrary bytes:
// a malformed or hostile peer response must come back as an error (which
// the caller feeds to the health view as a failed probe), never as a
// panic or an invalid record entering the local index.

// peerHealth is the subset of /healthz a prober interprets.
type peerHealth struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// decodePeerHealth parses a peer /healthz body.
func decodePeerHealth(data []byte) (peerHealth, error) {
	var hr peerHealth
	if err := json.Unmarshal(data, &hr); err != nil {
		return peerHealth{}, err
	}
	if hr.Status == "" {
		return peerHealth{}, errors.New("healthz body has no status")
	}
	return hr, nil
}

// decodePeerJob parses a peer's single-job response and sanity-checks the
// fields the caller will trust (identity and state).
func decodePeerJob(data []byte) (*Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	if j.ID == "" {
		return nil, errors.New("peer job has no id")
	}
	if !j.State.valid() {
		return nil, fmt.Errorf("peer job %s has unknown state %q", j.ID, j.State)
	}
	return &j, nil
}

// decodePeerJobList parses a peer's list response.
func decodePeerJobList(data []byte) ([]Job, error) {
	var body struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		return nil, err
	}
	for i := range body.Jobs {
		if body.Jobs[i].ID == "" || !body.Jobs[i].State.valid() {
			return nil, fmt.Errorf("peer job list entry %d is malformed", i)
		}
	}
	return body.Jobs, nil
}

// --- forwarding and fan-out ------------------------------------------------

// peerGet fetches a local-scope resource from a peer; a decode failure is
// observed as a peer-health failure.
func (f *fleet) peerGet(addr, path string) ([]byte, int, error) {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set(forwardHeader, f.cfg.Self)
	resp, err := f.client.Do(req)
	if err != nil {
		f.health.observe(addr, false, err.Error())
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		f.health.observe(addr, false, err.Error())
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

// forwardSubmit routes a submission to the owner (or the next live node in
// preference order), passing the peer's response through verbatim. ok is
// false when no peer could take it — the caller falls back to local
// admission, which keeps the fleet accepting work under full partition.
func (f *fleet) forwardSubmit(w http.ResponseWriter, req JobRequest, prefs []string) (ok bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	for _, node := range prefs {
		if node == f.cfg.Self {
			// Reaching self in the walk means every preferred peer ahead
			// of us is down; admit locally.
			return false
		}
		hreq, err := http.NewRequest(http.MethodPost, "http://"+node+"/v1/repairs", bytes.NewReader(body))
		if err != nil {
			return false
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(forwardHeader, f.cfg.Self)
		resp, err := f.client.Do(hreq)
		if err != nil {
			f.health.observe(node, false, err.Error())
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode >= http.StatusInternalServerError ||
			resp.StatusCode == http.StatusServiceUnavailable {
			f.health.observe(node, false, fmt.Sprintf("forward: status %d", resp.StatusCode))
			continue
		}
		// 2xx and client-side 4xx (bad request, queue full) are the
		// owner's authoritative answer; relay them untouched.
		f.forwarded.Add(1)
		if loc := resp.Header.Get("Location"); loc != "" {
			w.Header().Set("Location", loc)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Acr-Owner", node)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return true
	}
	return false
}
