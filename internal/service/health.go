package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Peer health: each node probes every peer's /healthz on a fixed interval
// and drives an up/down membership view through consecutive-failure /
// consecutive-success thresholds (the kraken healthcheck shape). The view
// is deliberately local — two partitioned nodes may disagree about a third
// — and the adoption protocol is built to tolerate that: marking a peer
// down only makes its jobs *candidates* for adoption, and the rename +
// journal-lock arbitration in lease.go keeps a wrong guess safe.

// Default fleet health parameters (overridable via FleetConfig).
const (
	// DefaultHealthInterval is the probe period per peer.
	DefaultHealthInterval = 1 * time.Second
	// DefaultFailThreshold is how many consecutive probe failures mark a
	// peer down. Three misses ride out one dropped packet or a GC pause
	// without flapping.
	DefaultFailThreshold = 3
	// DefaultOkThreshold is how many consecutive successes bring a down
	// peer back. Two means a single lucky response does not re-route load
	// to a still-sick node.
	DefaultOkThreshold = 2
	// DefaultLeaseTTL is how long a job claim is valid without renewal.
	DefaultLeaseTTL = 15 * time.Second
)

// peerStatus is one peer's health snapshot (the /v1/peers wire form).
type peerStatus struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// ConsecutiveFailures/Successes are the current streak lengths.
	ConsecutiveFailures  int `json:"consecutiveFailures"`
	ConsecutiveSuccesses int `json:"consecutiveSuccesses"`
	// Probes and Failures are lifetime counters.
	Probes   int64 `json:"probes"`
	Failures int64 `json:"failures"`
	// LastError is the most recent probe failure (sticky until a success).
	LastError string `json:"lastError,omitempty"`
}

// healthView is the threshold state machine over every peer. New peers
// start up (optimistic): a booting fleet routes normally and demotes peers
// only on observed failure, rather than refusing all placement until the
// first probe round completes.
type healthView struct {
	mu    sync.Mutex
	peers map[string]*peerStatus
	failN int
	okN   int
}

func newHealthView(peers []string, failN, okN int) *healthView {
	h := &healthView{peers: map[string]*peerStatus{}, failN: failN, okN: okN}
	for _, p := range peers {
		h.peers[p] = &peerStatus{Addr: p, Up: true}
	}
	return h
}

// observe feeds one probe (or probe-equivalent: a forwarded request that
// failed or returned garbage) into the state machine.
func (h *healthView) observe(addr string, ok bool, errMsg string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peers[addr]
	if p == nil {
		return // not a member; nothing to track
	}
	p.Probes++
	if ok {
		p.ConsecutiveFailures = 0
		p.ConsecutiveSuccesses++
		p.LastError = ""
		if !p.Up && p.ConsecutiveSuccesses >= h.okN {
			p.Up = true
		}
		return
	}
	p.Failures++
	p.ConsecutiveSuccesses = 0
	p.ConsecutiveFailures++
	p.LastError = errMsg
	if p.Up && p.ConsecutiveFailures >= h.failN {
		p.Up = false
	}
}

// up reports the view's verdict on addr. Unknown addresses (including
// self, which is never probed) count as up.
func (h *healthView) up(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peers[addr]
	return p == nil || p.Up
}

// snapshot returns every tracked peer, sorted by address.
func (h *healthView) snapshot() []peerStatus {
	h.mu.Lock()
	out := make([]peerStatus, 0, len(h.peers))
	for _, p := range h.peers {
		out = append(out, *p)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Addr < out[k].Addr })
	return out
}

// downPeers lists the peers currently marked down (the adoption scanner's
// work list).
func (h *healthView) downPeers() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, p := range h.peers {
		if !p.Up {
			out = append(out, p.Addr)
		}
	}
	return out
}

// counts returns (up, down) for /varz.
func (h *healthView) counts() (up, down int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.peers {
		if p.Up {
			up++
		} else {
			down++
		}
	}
	return up, down
}

// probePeer performs one healthcheck: GET /healthz must answer 200 with a
// decodable body whose status is "ok". A node that is booting (resuming
// journaled jobs) or draining answers 503, so readiness gates placement
// exactly as it gates load balancers.
func probePeer(client *http.Client, addr string) (ok bool, errMsg string) {
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return false, err.Error()
	}
	if resp.StatusCode != http.StatusOK {
		if hr, derr := decodePeerHealth(body); derr == nil && hr.Status != "" {
			return false, fmt.Sprintf("status %d (%s)", resp.StatusCode, hr.Status)
		}
		return false, fmt.Sprintf("status %d", resp.StatusCode)
	}
	hr, err := decodePeerHealth(body)
	if err != nil {
		// Malformed response from something listening on the peer's port:
		// treated exactly like a failed probe — mark toward down, never
		// crash (FuzzPeerDecode pins the decoder).
		return false, fmt.Sprintf("bad healthz body: %v", err)
	}
	if hr.Status != "ok" {
		return false, fmt.Sprintf("status %q", hr.Status)
	}
	return true, ""
}
