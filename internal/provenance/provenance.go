// Package provenance records route-derivation graphs: which advertisement
// was derived from which, and — crucially for this paper — which lines of
// configuration each derivation "executed". It plays the role of network
// provenance systems like Y! [Wu et al., SIGCOMM '14] and of configuration
// coverage à la NetCov [Xu et al., NSDI '23]: the coverage matrix that
// spectrum-based fault localization consumes is built from slices of this
// graph, and the MetaProv baseline's search space is its set of leaf
// configuration predicates.
package provenance

import (
	"net/netip"
	"sort"

	"acr/internal/netcfg"
)

// Kind classifies a derivation node.
type Kind uint8

// Derivation kinds.
const (
	// Origination: a router injects a prefix into BGP (network statement or
	// static redistribution).
	Origination Kind = iota
	// Import: a router accepts a neighbor's advertisement (after import
	// policy), deriving a candidate route.
	Import
	// Rejection: a router drops a neighbor's advertisement (loop check or
	// policy deny). Negative provenance — why a route is absent.
	Rejection
	// Selection: a router selects a best route among candidates.
	Selection
	// StaticInstall: a static route installed into the FIB.
	StaticInstall
	// PBRApply: a PBR rule steered a packet.
	PBRApply
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Origination:
		return "origination"
	case Import:
		return "import"
	case Rejection:
		return "rejection"
	case Selection:
		return "selection"
	case StaticInstall:
		return "static-install"
	case PBRApply:
		return "pbr-apply"
	}
	return "unknown"
}

// Node is one derivation.
type Node struct {
	ID     int
	Kind   Kind
	Router string
	Prefix netip.Prefix
	// Peer is the advertising neighbor for Import/Rejection nodes.
	Peer netip.Addr
	// Detail is a short human-readable description for reports.
	Detail string
	// Lines are the configuration lines this derivation executed.
	Lines []netcfg.LineRef
	// Parents are the IDs of the derivations this one was derived from
	// (e.g. an Import's parent is the neighbor's Selection).
	Parents []int
}

// Graph is an append-only derivation DAG: nodes are only ever added
// (during BuildProvenance), never modified or removed. A fully built
// graph is therefore read-only, which is what lets verify.Incremental
// clones share one base graph across concurrently validating workers.
type Graph struct {
	nodes    []*Node
	byPrefix map[netip.Prefix][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byPrefix: map[netip.Prefix][]int{}}
}

// Add appends a node, assigning and returning its ID.
func (g *Graph) Add(n Node) int {
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, &n)
	g.byPrefix[n.Prefix] = append(g.byPrefix[n.Prefix], n.ID)
	return n.ID
}

// Len reports the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id int) *Node {
	if id < 0 || id >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// ForPrefix returns all derivations concerning prefix p, in insertion order.
func (g *Graph) ForPrefix(p netip.Prefix) []*Node {
	ids := g.byPrefix[p]
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}

// Prefixes returns every prefix with at least one derivation, sorted.
func (g *Graph) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(g.byPrefix))
	for p := range g.byPrefix {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// LinesForPrefix returns the deduplicated, sorted set of configuration
// lines executed by any derivation for prefix p. This is the coverage set
// a test over p contributes to the SBFL spectrum.
func (g *Graph) LinesForPrefix(p netip.Prefix) []netcfg.LineRef {
	seen := map[netcfg.LineRef]bool{}
	var out []netcfg.LineRef
	for _, id := range g.byPrefix[p] {
		for _, l := range g.nodes[id].Lines {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Slice returns the ancestor closure of root (root included), i.e. the
// provenance tree of one event.
func (g *Graph) Slice(root int) []*Node {
	if g.Node(root) == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []*Node
	stack := []int{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		n := g.nodes[id]
		out = append(out, n)
		stack = append(stack, n.Parents...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LeafLines returns the distinct configuration-line predicates at the
// leaves of the provenance slice rooted at root. In MetaProv's framing
// (Figure 3a of the paper) these leaves ARE the search space: each is a
// candidate single-line repair site.
func LeafLines(g *Graph, root int) []netcfg.LineRef {
	seen := map[netcfg.LineRef]bool{}
	var out []netcfg.LineRef
	for _, n := range g.Slice(root) {
		for _, l := range n.Lines {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// LeafLinesForPrefix is LeafLines over every derivation of prefix p — the
// union of the provenance trees of all events concerning p.
func LeafLinesForPrefix(g *Graph, p netip.Prefix) []netcfg.LineRef {
	return g.LinesForPrefix(p)
}
