package provenance

import (
	"net/netip"
	"testing"

	"acr/internal/netcfg"
)

var (
	p1 = netip.MustParsePrefix("10.0.0.0/16")
	p2 = netip.MustParsePrefix("20.0.0.0/16")
)

func lr(d string, n int) netcfg.LineRef { return netcfg.LineRef{Device: d, Line: n} }

// buildSample constructs: orig(A) -> sel(A) -> imp(B) -> sel(B), plus an
// unrelated origination for p2 and a rejection for p1.
func buildSample() (*Graph, map[string]int) {
	g := NewGraph()
	ids := map[string]int{}
	ids["origA"] = g.Add(Node{Kind: Origination, Router: "A", Prefix: p1, Lines: []netcfg.LineRef{lr("A", 5)}})
	ids["selA"] = g.Add(Node{Kind: Selection, Router: "A", Prefix: p1, Parents: []int{ids["origA"]}})
	ids["impB"] = g.Add(Node{Kind: Import, Router: "B", Prefix: p1,
		Lines: []netcfg.LineRef{lr("B", 3), lr("A", 2)}, Parents: []int{ids["selA"]}})
	ids["selB"] = g.Add(Node{Kind: Selection, Router: "B", Prefix: p1, Parents: []int{ids["impB"]}})
	ids["rejC"] = g.Add(Node{Kind: Rejection, Router: "C", Prefix: p1,
		Lines: []netcfg.LineRef{lr("C", 9)}, Parents: []int{ids["selB"]}})
	ids["origX"] = g.Add(Node{Kind: Origination, Router: "X", Prefix: p2, Lines: []netcfg.LineRef{lr("X", 1)}})
	return g, ids
}

func TestAddAssignsSequentialIDs(t *testing.T) {
	g, ids := buildSample()
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6", g.Len())
	}
	if ids["origA"] != 0 || ids["selB"] != 3 {
		t.Errorf("unexpected IDs: %v", ids)
	}
	if g.Node(99) != nil || g.Node(-1) != nil {
		t.Error("out-of-range Node should be nil")
	}
}

func TestForPrefixSeparation(t *testing.T) {
	g, _ := buildSample()
	if got := len(g.ForPrefix(p1)); got != 5 {
		t.Errorf("ForPrefix(p1) = %d nodes, want 5", got)
	}
	if got := len(g.ForPrefix(p2)); got != 1 {
		t.Errorf("ForPrefix(p2) = %d nodes, want 1", got)
	}
	if got := len(g.Prefixes()); got != 2 {
		t.Errorf("Prefixes = %d, want 2", got)
	}
}

func TestLinesForPrefixDedupSorted(t *testing.T) {
	g, _ := buildSample()
	g.Add(Node{Kind: Import, Router: "D", Prefix: p1, Lines: []netcfg.LineRef{lr("A", 2), lr("A", 2)}})
	lines := g.LinesForPrefix(p1)
	want := []netcfg.LineRef{lr("A", 2), lr("A", 5), lr("B", 3), lr("C", 9)}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines[%d] = %v, want %v (sorted, deduplicated)", i, lines[i], want[i])
		}
	}
}

func TestSliceAncestorClosure(t *testing.T) {
	g, ids := buildSample()
	slice := g.Slice(ids["selB"])
	if len(slice) != 4 {
		t.Fatalf("slice of selB has %d nodes, want 4", len(slice))
	}
	for _, n := range slice {
		if n.Router == "C" || n.Router == "X" {
			t.Errorf("slice contains unrelated node %+v", n)
		}
	}
	if got := g.Slice(-5); got != nil {
		t.Errorf("Slice of invalid root = %v, want nil", got)
	}
}

func TestLeafLines(t *testing.T) {
	g, ids := buildSample()
	leaves := LeafLines(g, ids["selB"])
	want := map[netcfg.LineRef]bool{lr("A", 5): true, lr("B", 3): true, lr("A", 2): true}
	if len(leaves) != len(want) {
		t.Fatalf("leaves = %v", leaves)
	}
	for _, l := range leaves {
		if !want[l] {
			t.Errorf("unexpected leaf %v", l)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Origination, Import, Rejection, Selection, StaticInstall, PBRApply}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("Kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
